(** Deciders for 0-round solvability in the port-numbering model
    (Lemmas 12 and 15 of the paper, stated for arbitrary problems).

    In the PN model a 0-round deterministic algorithm sees nothing but
    its degree (and global parameters), so all nodes output the same
    configuration with the same assignment of labels to ports.  Two
    adversarial port numberings are considered:

    - {e mirrored} ports (the paper's Lemma 12 construction, where the
      input Δ-edge coloring doubles as the port numbering on both
      endpoints): an edge with color [i] sees the label at port [i] on
      both sides, so solvability requires a configuration in which the
      label assigned to each port is compatible with itself;
    - {e arbitrary} ports: an edge may connect any port to any other,
      so the multiset of labels used must be pairwise (and self-)
      compatible. *)

(** [solvable_mirrored p] returns a witness configuration in which
    every label is self-compatible, or [None] if no allowed node
    configuration has that property (hence 0 rounds are insufficient
    under the mirrored-port adversary, even given the edge coloring). *)
val solvable_mirrored : Problem.t -> Multiset.t option

(** [solvable_arbitrary_ports p] returns a witness configuration whose
    support is a self-compatible clique in the edge-compatibility
    graph, or [None].  The search enumerates only the {e maximal}
    cliques (Bron–Kerbosch with pivoting over bitsets) — a pool works
    iff every group of some node line meets it, which is monotone in
    the pool, so maximal cliques are exhaustive.  The old
    implementation swept all 2^n label subsets with no guard.

    The root of the Bron–Kerbosch tree is unrolled and its independent
    subtrees fan out over [pool] (default {!Parctl.default}).  Every
    subtree runs to completion — there is no cross-subtree
    cancellation — so the verdict, the witness (the DFS-first witness
    of the lowest-indexed subtree, which is exactly the witness the
    fully sequential search finds) and the merged counters are
    identical for every domain count.  Consequence: on solvable
    instances this explores subtrees beyond the witness-bearing one,
    so [bk_expansions] / [maximal_cliques] can exceed what a search
    that stops at the first witness would report.
    @param max_expansions bound on the Bron–Kerbosch recursion-tree
    size (default 10⁶); the number of maximal cliques can be
    exponential in pathological graphs.  The budget is shared across
    subtrees through an atomic counter, so whether it trips is a
    property of the instance, not of the schedule.
    @raise Budget.Budget_exceeded when the bound is exceeded. *)
val solvable_arbitrary_ports :
  ?max_expansions:int -> ?pool:Parallel.Pool.t -> Problem.t ->
  Multiset.t option

(** [iter_maximal_cliques compat n f] calls [f] on every maximal clique
    of the compatibility graph on labels [0 .. n-1], restricted to
    self-compatible labels.  Exposed for the equivalence tests and the
    benchmark harness.  Raise from [f] to stop early.
    @raise Budget.Budget_exceeded when [max_expansions] (default 10⁶)
    is exceeded. *)
val iter_maximal_cliques :
  ?max_expansions:int -> bool array array -> int -> (Labelset.t -> unit) -> unit

(** Lemma 15 generalized: when [solvable_mirrored p = None], every
    allowed configuration contains a label that is not self-compatible,
    and any randomized 0-round algorithm fails with probability at
    least [1 / (c·Δ)²] on the mirrored-port instance, where [c] is the
    number of concrete allowed node configurations.  Returns that bound
    ([None] when the problem is 0-round solvable).  The paper's family
    has [c = 3], giving the bound [1/(3Δ)² ≥ 1/Δ⁸] used by Theorem 14.
    @raise Budget.Budget_exceeded if the node constraint expansion
    exceeds [limit] (default 2e6). *)
val randomized_failure_bound : ?limit:float -> Problem.t -> float option

(** Labels compatible with themselves under the edge constraint. *)
val self_compatible : Problem.t -> Labelset.t

(** Counters for the clique-based 0-round decider: calls to
    {!solvable_arbitrary_ports}, maximal cliques emitted, Bron–Kerbosch
    recursion-tree nodes, and wall seconds spent deciding.  Parallel
    searches accumulate into per-domain records merged at join, so the
    integer counters are exact and domain-count-independent (only
    [clique_time_s] varies run to run). *)
type stats = {
  mutable clique_calls : int;
  mutable maximal_cliques : int;
  mutable bk_expansions : int;
  mutable clique_time_s : float;
}

val stats : stats

val reset_stats : unit -> unit

(** Verdict emission hook.  When set, it is invoked after every
    completed {!solvable_mirrored} ([`Mirrored]) and
    {!solvable_arbitrary_ports} ([`Arbitrary]) call with the problem
    and the verdict just returned; expansion-budget failures raise
    before the hook fires.  Intended for the independent re-checkers
    in [Certify.Hooks].  [None] by default. *)
val observer :
  (mode:[ `Mirrored | `Arbitrary ] -> Problem.t -> Multiset.t option -> unit)
  option
  ref
