type t = int

type label = int

let max_label = 60

let empty = 0

let is_empty s = s = 0

let check_label l =
  if l < 0 || l >= max_label then
    invalid_arg (Printf.sprintf "Labelset: label %d out of range" l)

let full n =
  if n < 0 || n > max_label then invalid_arg "Labelset.full";
  (1 lsl n) - 1

let singleton l =
  check_label l;
  1 lsl l

let mem l s = (s lsr l) land 1 = 1

let add l s = s lor singleton l

let remove l s = s land lnot (singleton l)

let union a b = a lor b

let inter a b = a land b

let diff a b = a land lnot b

let subset a b = a land lnot b = 0

let equal a b = a = b

let strict_subset a b = subset a b && a <> b

let compare (a : int) (b : int) = compare a b

let cardinal s =
  let rec count acc s = if s = 0 then acc else count (acc + 1) (s land (s - 1)) in
  count 0 s

let inter_cardinal a b = cardinal (a land b)

let elements s =
  let rec go l acc = if l < 0 then acc else go (l - 1) (if mem l s then l :: acc else acc) in
  go (max_label - 1) []

let of_list ls = List.fold_left (fun acc l -> add l acc) empty ls

let fold f s init = List.fold_left (fun acc l -> f l acc) init (elements s)

let iter f s = List.iter f (elements s)

let for_all p s = List.for_all p (elements s)

let exists p s = List.exists p (elements s)

let filter p s = fold (fun l acc -> if p l then add l acc else acc) s empty

let choose s = if s = 0 then raise Not_found else
  let rec go l = if mem l s then l else go (l + 1) in
  go 0

let nonempty_subsets s =
  (* Iterate sub-bitsets of [s] with the standard [(x - 1) land s] trick. *)
  let rec go x acc = if x = 0 then acc else go ((x - 1) land s) (x :: acc) in
  go s []

let hash (s : int) = Hashtbl.hash s

let of_bits b = b

let to_bits s = s
