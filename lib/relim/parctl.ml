let env_var = "RELIM_DOMAINS"

let domains_from_env () =
  match Sys.getenv_opt env_var with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> d
      | Some _ | None -> 1)

let default_pool =
  lazy (Parallel.Pool.create ~domains:(domains_from_env ()))

let default () = Lazy.force default_pool

let resolve = function Some pool -> pool | None -> default ()
