let env_var = "RELIM_DOMAINS"

(* A value is either absent, a well-formed positive domain count, or
   malformed (non-integer, zero or negative) — malformed values fall
   back to 1 but, unlike absence, deserve a warning: the user tried to
   configure parallelism and got silent sequential execution instead. *)
type parsed = Unset | Domains of int | Malformed of string

let parse_env = function
  | None -> Unset
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> Domains d
      | Some _ | None -> Malformed s)

(* Warnings are routed through a hook so tests can capture them without
   scraping the process's own stderr.  The default prints to stderr. *)
let warn_hook : (string -> unit) ref =
  ref (fun msg -> Printf.eprintf "%s\n%!" msg)

let warned = ref false

let warn_once msg =
  if not !warned then begin
    warned := true;
    !warn_hook msg
  end

let reset_warned () = warned := false

let domains_from_env () =
  match parse_env (Sys.getenv_opt env_var) with
  | Unset -> 1
  | Domains d -> d
  | Malformed s ->
      warn_once
        (Printf.sprintf
           "relim: warning: %s=%S is not a positive integer; running with 1 \
            domain"
           env_var s);
      1

let default_pool =
  lazy (Parallel.Pool.create ~domains:(domains_from_env ()))

let default () = Lazy.force default_pool

let resolve = function Some pool -> pool | None -> default ()
