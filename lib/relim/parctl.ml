let env_var = "RELIM_DOMAINS"

(* A value is either absent, a well-formed positive domain count, or
   malformed (non-integer, zero or negative) — malformed values fall
   back to 1 but, unlike absence, deserve a warning: the user tried to
   configure parallelism and got silent sequential execution instead. *)
type parsed = Unset | Domains of int | Malformed of string

let parse_env = function
  | None -> Unset
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> Domains d
      | Some _ | None -> Malformed s)

(* Warnings are routed through a hook so tests can capture them without
   scraping the process's own stderr.  The default prints to stderr. *)
let warn_hook : (string -> unit) ref =
  ref (fun msg -> Printf.eprintf "%s\n%!" msg)

let warned = ref false

let warn_once msg =
  if not !warned then begin
    warned := true;
    !warn_hook msg
  end

(* --- RELIM_ZDD ---------------------------------------------------- *)

let zdd_env_var = "RELIM_ZDD"

(* Same shape as the domain-count toggle: absent means off, a
   recognized boolean means what it says, anything else warns once and
   falls back to off (the user asked for the compressed path and is
   silently getting the explicit one). *)
type zdd_parsed = Zdd_unset | Zdd_enabled of bool | Zdd_malformed of string

let parse_zdd_env = function
  | None -> Zdd_unset
  | Some s -> (
      match String.lowercase_ascii (String.trim s) with
      | "1" | "true" | "yes" | "on" -> Zdd_enabled true
      | "0" | "false" | "no" | "off" | "" -> Zdd_enabled false
      | _ -> Zdd_malformed s)

let zdd_warned = ref false

let zdd_warn_once msg =
  if not !zdd_warned then begin
    zdd_warned := true;
    !warn_hook msg
  end

let zdd_from_env () =
  match parse_zdd_env (Sys.getenv_opt zdd_env_var) with
  | Zdd_unset -> false
  | Zdd_enabled b -> b
  | Zdd_malformed s ->
      zdd_warn_once
        (Printf.sprintf
           "relim: warning: %s=%S is not a boolean (1/0, true/false, yes/no, \
            on/off); running on the explicit-list path"
           zdd_env_var s);
      false

(* [Some b] forces; [None] defers to the environment. *)
let resolve_zdd = function Some b -> b | None -> zdd_from_env ()

let reset_warned () =
  warned := false;
  zdd_warned := false

let domains_from_env () =
  match parse_env (Sys.getenv_opt env_var) with
  | Unset -> 1
  | Domains d -> d
  | Malformed s ->
      warn_once
        (Printf.sprintf
           "relim: warning: %s=%S is not a positive integer; running with 1 \
            domain"
           env_var s);
      1

let default_pool =
  lazy (Parallel.Pool.create ~domains:(domains_from_env ()))

let default () = Lazy.force default_pool

let resolve = function Some pool -> pool | None -> default ()
