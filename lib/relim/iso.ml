type label = Labelset.label

(* Signature of a label inside a problem: how often it occurs in node /
   edge lines, with which group sizes — any renaming must preserve it. *)
let signature (p : Problem.t) l =
  let occurrences constr =
    List.concat_map
      (fun line ->
        List.filter_map
          (fun (s, c) ->
            if Labelset.mem l s then Some (Labelset.cardinal s, c) else None)
          (Line.groups line))
      (Constr.lines constr)
    |> List.sort compare
  in
  (occurrences p.node, occurrences p.edge)

let remap_problem (p : Problem.t) (alpha' : Alphabet.t) mapping =
  let remap_set s =
    Labelset.fold (fun l acc -> Labelset.add mapping.(l) acc) s Labelset.empty
  in
  let remap = Constr.map_lines (Line.map_syms remap_set) in
  Problem.make ~name:p.name ~alpha:alpha' ~node:(remap p.node) ~edge:(remap p.edge)

(* Renaming preserves every label's signature and permutes the label
   set, so hashing the sorted signature list (plus a few global counts)
   is invariant under isomorphism. *)
let invariant_hash (p : Problem.t) =
  let n = Alphabet.size p.alpha in
  let sigs = List.sort compare (List.init n (signature p)) in
  Hashtbl.hash
    ( Problem.delta p,
      n,
      List.length (Constr.lines p.node),
      List.length (Constr.lines p.edge),
      sigs )

let find_renaming (a : Problem.t) (b : Problem.t) =
  let na = Alphabet.size a.alpha and nb = Alphabet.size b.alpha in
  if na <> nb then None
  else begin
    let sig_a = Array.init na (signature a) in
    let sig_b = Array.init nb (signature b) in
    let labels_a = List.init na Fun.id in
    let labels_b = List.init nb Fun.id in
    let found = ref None in
    let check assoc =
      let mapping = Array.make na (-1) in
      List.iter (fun (la, lb) -> mapping.(la) <- lb) assoc;
      let renamed = remap_problem a b.alpha mapping in
      if Constr.equal renamed.node b.node && Constr.equal renamed.edge b.edge
      then begin
        found := Some assoc;
        true
      end
      else false
    in
    let compatible assoc =
      List.for_all (fun (la, lb) -> sig_a.(la) = sig_b.(lb)) assoc
    in
    let _ =
      Util.exists_bijection labels_a labels_b (fun assoc ->
          compatible assoc && check assoc)
    in
    !found
  end

let equal_up_to_renaming a b = find_renaming a b <> None

let apply_renaming (p : Problem.t) pairs =
  let n = Alphabet.size p.alpha in
  let new_names =
    List.init n (fun l ->
        let old = Alphabet.name p.alpha l in
        match List.assoc_opt old pairs with Some fresh -> fresh | None -> old)
  in
  let alpha' = Alphabet.create new_names in
  remap_problem p alpha' (Array.init n Fun.id)
