type denoted = { problem : Problem.t; denotations : Labelset.t array }

type stats = {
  mutable r_calls : int;
  mutable closures_visited : int;
  mutable closure_joins : int;
  mutable closure_revisits : int;
  mutable rbar_calls : int;
  mutable rc_sets : int;
  mutable boxes_emitted : int;
  mutable boxes_pruned : int;
  mutable box_dom_checks : int;
  mutable box_dom_cheap_skips : int;
  mutable box_transport_calls : int;
  mutable transport_cache_hits : int;
  mutable maxbox_tuples : int;
  mutable maxbox_cubes : int;
  mutable maxbox_maximal : int;
  mutable maxbox_enumerated : int;
  mutable r_time_s : float;
  mutable rbar_time_s : float;
  mutable maxbox_time_s : float;
}

let stats =
  {
    r_calls = 0;
    closures_visited = 0;
    closure_joins = 0;
    closure_revisits = 0;
    rbar_calls = 0;
    rc_sets = 0;
    boxes_emitted = 0;
    boxes_pruned = 0;
    box_dom_checks = 0;
    box_dom_cheap_skips = 0;
    box_transport_calls = 0;
    transport_cache_hits = 0;
    maxbox_tuples = 0;
    maxbox_cubes = 0;
    maxbox_maximal = 0;
    maxbox_enumerated = 0;
    r_time_s = 0.;
    rbar_time_s = 0.;
    maxbox_time_s = 0.;
  }

(* Wall-clock time: the engine may fan out over domains, so CPU time
   ([Sys.time], which sums over threads) would be misleading. *)
let now () = Unix.gettimeofday ()

(* Certificate emission hook: fired with (source problem, result) after
   every successful [r] / [rbar] call, in the calling domain.  Budget
   failures raise before the hook fires, so an installed checker only
   ever sees results the engine actually returned.  Installed by
   [Certify.Hooks]; [None] (the default) costs one load per call. *)
let observer : (op:[ `R | `Rbar ] -> source:Problem.t -> denoted -> unit) option ref =
  ref None

let notify op source result =
  match !observer with None -> () | Some f -> f ~op ~source result

let reset_stats () =
  stats.r_calls <- 0;
  stats.closures_visited <- 0;
  stats.closure_joins <- 0;
  stats.closure_revisits <- 0;
  stats.rbar_calls <- 0;
  stats.rc_sets <- 0;
  stats.boxes_emitted <- 0;
  stats.boxes_pruned <- 0;
  stats.box_dom_checks <- 0;
  stats.box_dom_cheap_skips <- 0;
  stats.box_transport_calls <- 0;
  stats.transport_cache_hits <- 0;
  stats.maxbox_tuples <- 0;
  stats.maxbox_cubes <- 0;
  stats.maxbox_maximal <- 0;
  stats.maxbox_enumerated <- 0;
  stats.r_time_s <- 0.;
  stats.rbar_time_s <- 0.;
  stats.maxbox_time_s <- 0.

(* Compatibility matrix of the edge constraint (symmetric). *)
let compat_matrix (p : Problem.t) =
  let n = Alphabet.size p.alpha in
  let compat = Array.make_matrix n n false in
  List.iter
    (fun line ->
      Line.expand line (fun m ->
          match Multiset.to_list m with
          | [ a; b ] ->
              compat.(a).(b) <- true;
              compat.(b).(a) <- true
          | _ -> invalid_arg "Rounde: edge line of arity <> 2"))
    (Constr.lines p.edge);
  compat

(* Per-label neighbor masks: nbr.(b) = { a | compat a b }. *)
let neighbor_masks compat n =
  Array.init n (fun b ->
      let acc = ref Labelset.empty in
      for a = 0 to n - 1 do
        if compat.(a).(b) then acc := Labelset.add a !acc
      done;
      !acc)

(* [neighbors nbr n s] = the set of labels compatible with every member
   of [s]: a fold of word-level ANDs over the members' masks. *)
let neighbors nbr n s =
  Labelset.fold (fun a acc -> Labelset.inter acc nbr.(a)) s (Labelset.full n)

(* All Galois-closed label sets cl(S) = N(N(S)) arising from non-empty
   S, where N is [neighbors].  Since the compatibility relation is
   symmetric, N is its own adjoint and cl(S) is the join (in the
   closure lattice) of the singleton closures cl({a}), a ∈ S — so a BFS
   from the singleton closures, joining each newly discovered closed
   set with every previously discovered one, visits each closed set
   exactly once.  The closure lattice is exponentially smaller than the
   2^n subset lattice in practice. *)
let closed_sets nbr n =
  let closure s = neighbors nbr n (neighbors nbr n s) in
  let visited = Hashtbl.create 64 in
  let queue = Queue.create () in
  let enqueue s =
    let key = Labelset.to_bits s in
    if Hashtbl.mem visited key then
      stats.closure_revisits <- stats.closure_revisits + 1
    else begin
      Hashtbl.add visited key ();
      Queue.add s queue
    end
  in
  (* cl({a}) = N(N({a})) and N({a}) is just the mask of a. *)
  for a = 0 to n - 1 do
    enqueue (neighbors nbr n nbr.(a))
  done;
  let closed = ref [] in
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    stats.closures_visited <- stats.closures_visited + 1;
    List.iter
      (fun t ->
        stats.closure_joins <- stats.closure_joins + 1;
        enqueue (closure (Labelset.union s t)))
      !closed;
    closed := s :: !closed
  done;
  !closed

(* Build a fresh alphabet whose label [i] denotes the label set
   [denots.(i)] of [base]. *)
let intern_sets base denots =
  let names = Array.to_list (Array.map (Alphabet.set_name base) denots) in
  Alphabet.create names

(* Counter samples mirror the cumulative legacy [stats] fields into the
   trace at span boundaries; [bench/validate_trace.ml] reconciles them
   against the span structure (e.g. the final [rounde.r_calls] must
   equal the number of closed [rounde.r] spans).  All [stats] writes
   happen in the calling domain (parallel sections merge at join before
   the span ends), so sampling here is race-free. *)
let sample_r_counters () =
  Trace.counters
    [
      ("rounde.r_calls", stats.r_calls);
      ("rounde.closures_visited", stats.closures_visited);
      ("rounde.closure_joins", stats.closure_joins);
      ("rounde.closure_revisits", stats.closure_revisits);
    ]

let sample_rbar_counters () =
  Trace.counters
    [
      ("rounde.rbar_calls", stats.rbar_calls);
      ("rounde.rc_sets", stats.rc_sets);
      ("rounde.boxes_emitted", stats.boxes_emitted);
      ("rounde.boxes_pruned", stats.boxes_pruned);
      ("rounde.box_dom_checks", stats.box_dom_checks);
      ("rounde.box_dom_cheap_skips", stats.box_dom_cheap_skips);
      ("rounde.box_transport_calls", stats.box_transport_calls);
      ("rounde.transport_cache_hits", stats.transport_cache_hits);
      (* Cumulative across all managers (and hence monotone between
         resets), whether or not the ZDD path ran this call. *)
      ("zdd.nodes", Zdd.stats.Zdd.nodes);
      ("zdd.cache_hits", Zdd.stats.Zdd.cache_hits);
      ("zdd.peak_unique", Zdd.stats.Zdd.peak_unique);
      (* Fully symbolic R̄ output side: family cardinalities of the
         slotted pipeline (0 whenever the symbolic path didn't run). *)
      ("zdd.maxbox_tuples", stats.maxbox_tuples);
      ("zdd.maxbox_cubes", stats.maxbox_cubes);
      ("zdd.maxbox_maximal", stats.maxbox_maximal);
      ("zdd.maxbox_enumerated", stats.maxbox_enumerated);
    ]

let r_impl (p : Problem.t) =
  let t0 = now () in
  stats.r_calls <- stats.r_calls + 1;
  let n = Alphabet.size p.alpha in
  let compat = compat_matrix p in
  let nbr = neighbor_masks compat n in
  (* Maximal valid pairs are the closed pairs of the Galois connection
     S ↦ neighbors(S): exactly the pairs (A, N(A)) over closed A with
     N(A) non-empty (each unordered pair arises from both of its
     components, which are both closed). *)
  let module LS = Set.Make (struct
    type t = Labelset.t * Labelset.t

    let compare (a1, a2) (b1, b2) =
      match Labelset.compare a1 b1 with 0 -> Labelset.compare a2 b2 | c -> c
  end) in
  let pairs = ref LS.empty in
  List.iter
    (fun s ->
      let t = neighbors nbr n s in
      if not (Labelset.is_empty t) then begin
        (* s is closed, so s = N(t) already. *)
        let pair = if Labelset.compare s t <= 0 then (s, t) else (t, s) in
        pairs := LS.add pair !pairs
      end)
    (closed_sets nbr n);
  let pairs = LS.elements !pairs in
  (* New alphabet: all sets occurring in maximal pairs. *)
  let module SS = Set.Make (struct
    type t = Labelset.t

    let compare = Labelset.compare
  end) in
  let sets =
    List.fold_left (fun acc (a, b) -> SS.add a (SS.add b acc)) SS.empty pairs
  in
  let denots = Array.of_list (SS.elements sets) in
  if Array.length denots > Labelset.max_label then
    Budget.exceeded ~budget:"Rounde.r: output alphabet width"
      ~limit:(float_of_int Labelset.max_label);
  let alpha' = intern_sets p.alpha denots in
  let index_of =
    let tbl = Hashtbl.create 16 in
    Array.iteri (fun i s -> Hashtbl.add tbl (Labelset.to_bits s) i) denots;
    fun s -> Hashtbl.find tbl (Labelset.to_bits s)
  in
  let edge_lines =
    List.map
      (fun (a, b) ->
        let ia = index_of a and ib = index_of b in
        if ia = ib then Line.make [ (Labelset.singleton ia, 2) ]
        else Line.make [ (Labelset.singleton ia, 1); (Labelset.singleton ib, 1) ])
      pairs
  in
  (* Node constraint: replace each original label y by the disjunction
     of new labels whose denotation contains y; group-wise this is the
     set of new labels intersecting the group's symbol set. *)
  let new_labels_meeting s_old =
    let acc = ref Labelset.empty in
    Array.iteri
      (fun i denot ->
        if not (Labelset.is_empty (Labelset.inter denot s_old)) then
          acc := Labelset.add i !acc)
      denots;
    !acc
  in
  let node_lines =
    List.filter_map
      (fun line ->
        let groups = Line.groups line in
        if
          List.for_all
            (fun (s, _) -> not (Labelset.is_empty (new_labels_meeting s)))
            groups
        then
          Some (Line.make (List.map (fun (s, c) -> (new_labels_meeting s, c)) groups))
        else None)
      (Constr.lines p.node)
  in
  (* Every node line can die (a group whose labels all lack compatible
     partners is unrealizable); fail as loudly as [rbar] does instead
     of letting [Constr.make] reject the empty list with a generic
     [Invalid_argument]. *)
  if node_lines = [] then
    failwith "Rounde.r: empty node constraint (no node line survived)";
  let problem =
    Problem.make
      ~name:(Printf.sprintf "R(%s)" p.name)
      ~alpha:alpha' ~node:(Constr.make node_lines)
      ~edge:(Constr.make edge_lines)
  in
  stats.r_time_s <- stats.r_time_s +. (now () -. t0);
  let result = { problem; denotations = denots } in
  notify `R p result;
  result

let r (p : Problem.t) =
  Trace.with_span "rounde.r"
    ~attrs:[ ("problem", p.name) ]
    (fun () ->
      let result = r_impl p in
      sample_r_counters ();
      result)

(* --- R̄ ---------------------------------------------------------- *)

module MsTbl = Hashtbl.Make (struct
  type t = Multiset.t

  let equal = Multiset.equal

  let hash = Multiset.hash
end)

(* All valid "boxes": multisets (B₁ … B_Δ) of right-closed label sets
   such that every choice (b₁ … b_Δ) ∈ B₁ × … × B_Δ is an allowed node
   configuration.  Enumerated by DFS over right-closed sets in
   non-decreasing order, pruning with the set of all sub-multisets of
   allowed configurations. *)
(* DFS work budget: one unit per (prefix, candidate-set) pair examined,
   plus one per partial multiset carried through it.  The old hard
   20-label cap is gone, so genuinely exponential instances (naive
   iteration on MIS quickly produces them) must be stopped by the work
   actually performed, and stopped as fast as the cap used to. *)
let box_work_limit = 5_000_000

(* Per-worker accumulator for the box DFS: merged into the global
   [stats] at join, so the counters are exact and race-free for any
   domain count. *)
type box_local = { mutable emitted : int; mutable pruned : int }

let valid_boxes_impl ?pool (p : Problem.t) ~expand_limit ~rc_limit =
  let pool = Parctl.resolve pool in
  let delta = Problem.delta p in
  if Constr.expansion_estimate p.node > expand_limit then
    Budget.exceeded ~budget:"Rounde.rbar: node constraint expansion"
      ~limit:expand_limit;
  (* Enumerate the right-closed sets before building the (much more
     expensive) sub-multiset table: the enumeration is output-sensitive
     and [rc_limit]-guarded, so hopeless instances die in milliseconds
     instead of after seconds of table filling. *)
  let diagram = Diagram.node_diagram p in
  let rc = Array.of_list (Diagram.right_closed_sets ~limit:rc_limit diagram) in
  stats.rc_sets <- stats.rc_sets + Array.length rc;
  let configs = Constr.expand ~limit:expand_limit p.node in
  (* Sub-multiset membership table for pruning; read-only once built. *)
  let subs = MsTbl.create 65536 in
  List.iter
    (fun m -> Multiset.sub_multisets m (fun sub -> MsTbl.replace subs sub ()))
    configs;
  let m = Array.length rc in
  (* The work budget is shared across branches through an atomic
     counter: the total demand is a fixed property of the instance, so
     whether some branch trips the budget — and hence the verdict — is
     identical for every domain count and schedule. *)
  let work = Atomic.make 0 in
  let charge amount =
    let before = Atomic.fetch_and_add work amount in
    if before + amount > box_work_limit then
      Budget.exceeded ~budget:"Rounde.rbar: box enumeration work"
        ~limit:(float_of_int box_work_limit)
  in
  let minimals = Array.map (Diagram.minimal_elements diagram) rc in
  (* The DFS fans out over the top-level right-closed-set choice: branch
     [top] explores every box whose smallest set index is [top].
     Branches are independent; each collects its boxes in its own
     prepend-order list ([branch_boxes.(top)]), and the final merge
     reproduces the sequential emission order exactly (see below).
     [partials] is the list of distinct minimal-choice multisets of the
     current prefix; all are sub-multisets of allowed configurations. *)
  let branch_boxes = Array.make (max 1 m) [] in
  let run_branch local top =
    let boxes = ref [] in
    let rec extend depth i (box : int list) partials =
      let extended = MsTbl.create 64 in
      let all_ok = ref true in
      charge (1 + List.length partials);
      List.iter
        (fun partial ->
          Labelset.iter
            (fun mn ->
              let next = Multiset.add mn partial in
              if MsTbl.mem subs next then MsTbl.replace extended next ()
              else all_ok := false)
            minimals.(i))
        partials;
      if !all_ok then begin
        let partials' = MsTbl.fold (fun k () acc -> k :: acc) extended [] in
        go (depth + 1) i (i :: box) partials'
      end
      else local.pruned <- local.pruned + 1
    and go depth lo box partials =
      if depth = delta then begin
        local.emitted <- local.emitted + 1;
        boxes := List.rev_map (fun i -> rc.(i)) box :: !boxes
      end
      else
        for i = lo to m - 1 do
          extend depth i box partials
        done
    in
    extend 0 top [] [ Multiset.of_list [] ];
    branch_boxes.(top) <- !boxes
  in
  if delta = 0 then begin
    (* Degenerate arity: the single (empty) box, as the sequential DFS
       emitted it. *)
    stats.boxes_emitted <- stats.boxes_emitted + 1;
    [ [] ]
  end
  else begin
    Parallel.Pool.run ~chunk:1 pool ~n:m
      ~init:(fun () -> { emitted = 0; pruned = 0 })
      ~body:run_branch
      ~merge:(fun l ->
        stats.boxes_emitted <- stats.boxes_emitted + l.emitted;
        stats.boxes_pruned <- stats.boxes_pruned + l.pruned);
    (* Sequentially, boxes were prepended to one shared list while the
       top-level index increased, so the final list was
       rev(e_{m-1}) @ ... @ rev(e_0) with e_t = branch t's emission
       sequence.  Each branch list is already rev(e_t); folding the
       branches in increasing order with [l @ acc] rebuilds exactly
       that list, so downstream consumers (the dominance filter's
       descending-total sort in particular) see a bit-identical input
       for every domain count. *)
    Array.fold_left (fun acc l -> l @ acc) [] branch_boxes
  end

(* Zdd budget trips (unique-table overrun) re-raised as the engine's
   typed budget error, keeping the realized node count. *)
let translate_zdd_limit f =
  try f ()
  with Zdd.Limit { what; limit; realized } ->
    Budget.exceeded
      ~budget:(Printf.sprintf "Rounde.rbar/%s (realized %d)" what realized)
      ~limit

(* ZDD-backed box search.  Instead of materializing the right-closed
   sets as a sorted array ([rc_limit]-guarded) and testing every
   (prefix, candidate) pair against the sub-multiset table, keep the
   family compressed and *restrict* it per prefix: with [partials] the
   distinct minimal-choice multisets of the prefix, a candidate [B]
   survives the explicit DFS's [all_ok] test iff

       B ⊆ allowed(partials) := { x | ∀ P ∈ partials: P + x ∈ subs }.

   ("⟸": minimals of B are members of B.  "⟹": on an exact diagram
   [geq] is the true strength preorder, so (i) every member of B is
   ≥ some minimal of B, and (ii) allowed is up-closed — P + x ∈ subs
   means P + x fits inside an allowed configuration, and substituting
   a stronger label keeps it allowed.)  So the per-candidate test
   disappears into one ZDD restriction per prefix, shared across
   prefixes by the operation cache, and candidates stream out of
   [Zdd.iter_ge] in exactly the non-decreasing order the explicit DFS
   scanned its array — emissions are byte-identical.  Only exactness
   of the diagram is used; inexact (condensed-approximation) diagrams
   return [None] and the caller falls back to the explicit path.

   There is no [rc_limit] here — nothing is materialized.  Runaway
   instances are stopped by the manager's node budget and by the same
   cumulative work budget as the explicit DFS (charged per prefix and
   per streamed candidate), under a distinct budget name since the
   work accounting necessarily differs.  [boxes_pruned] stays 0 on
   this path: pruned candidates are never even enumerated. *)
let valid_boxes_zdd_impl (p : Problem.t) ~expand_limit =
  let delta = Problem.delta p in
  if Constr.expansion_estimate p.node > expand_limit then
    Budget.exceeded ~budget:"Rounde.rbar: node constraint expansion"
      ~limit:expand_limit;
  let diagram = Diagram.node_diagram p in
  if not (Diagram.is_exact diagram) then None
  else begin
    let n = Alphabet.size p.alpha in
    let mgr, fam = Diagram.right_closed_family diagram in
    translate_zdd_limit @@ fun () ->
    stats.rc_sets <- stats.rc_sets + Zdd.count mgr fam;
    let configs = Constr.expand ~limit:expand_limit p.node in
    let subs = MsTbl.create 65536 in
    List.iter
      (fun m -> Multiset.sub_multisets m (fun sub -> MsTbl.replace subs sub ()))
      configs;
    if delta = 0 then begin
      stats.boxes_emitted <- stats.boxes_emitted + 1;
      Some [ [] ]
    end
    else begin
      let work = ref 0 in
      let charge amount =
        work := !work + amount;
        if !work > box_work_limit then
          Budget.exceeded ~budget:"Rounde.rbar: box enumeration work (zdd)"
            ~limit:(float_of_int box_work_limit)
      in
      (* allowed(partials) = ∩ rows; a row depends only on its partial
         multiset, and the same partials recur across sibling branches,
         so rows are memoized globally. *)
      let row_memo = MsTbl.create 1024 in
      let row partial =
        match MsTbl.find_opt row_memo partial with
        | Some r -> r
        | None ->
            let r = ref Labelset.empty in
            for x = 0 to n - 1 do
              if MsTbl.mem subs (Multiset.add x partial) then
                r := Labelset.add x !r
            done;
            MsTbl.add row_memo partial !r;
            !r
      in
      let minimals_memo = Hashtbl.create 4096 in
      let minimals mask =
        match Hashtbl.find_opt minimals_memo mask with
        | Some m -> m
        | None ->
            let m = Diagram.minimal_elements diagram (Labelset.of_bits mask) in
            Hashtbl.add minimals_memo mask m;
            m
      in
      let boxes = ref [] in
      let emitted = ref 0 in
      let rec go depth from_mask box partials =
        if depth = delta then begin
          incr emitted;
          boxes := List.rev_map Labelset.of_bits box :: !boxes
        end
        else begin
          charge (1 + List.length partials);
          let allowed =
            List.fold_left
              (fun acc partial -> Labelset.inter acc (row partial))
              (Labelset.full n) partials
          in
          let cands = Zdd.subsets_within mgr fam (Labelset.to_bits allowed) in
          Zdd.iter_ge mgr cands ~from:from_mask (fun bmask ->
              charge (1 + List.length partials);
              if depth + 1 = delta then go (depth + 1) bmask (bmask :: box) partials
              else begin
                let mins = minimals bmask in
                let extended = MsTbl.create 64 in
                List.iter
                  (fun partial ->
                    Labelset.iter
                      (fun mn ->
                        MsTbl.replace extended (Multiset.add mn partial) ())
                      mins)
                  partials;
                let partials' = MsTbl.fold (fun k () acc -> k :: acc) extended [] in
                go (depth + 1) bmask (bmask :: box) partials'
              end)
        end
      in
      go 0 0 [] [ Multiset.of_list [] ];
      stats.boxes_emitted <- stats.boxes_emitted + !emitted;
      (* Prepend order = last emission first: exactly the order the
         explicit path returns (sequentially and after its branch
         merge alike). *)
      Some !boxes
    end
  end

let valid_boxes ?pool ?zdd (p : Problem.t) ~expand_limit ~rc_limit =
  Trace.with_span "rounde.valid_boxes"
    ~attrs:[ ("problem", p.name) ]
    (fun () ->
      let explicit () = valid_boxes_impl ?pool p ~expand_limit ~rc_limit in
      if Parctl.resolve_zdd zdd then
        match valid_boxes_zdd_impl p ~expand_limit with
        | Some boxes -> boxes
        | None -> explicit ()
      else explicit ())

(* --- Fully symbolic output side ----------------------------------- *)

(* [arrangements groups delta f]: call [f] on every distinct assignment
   of the multiset of [groups] (mask, multiplicity) to the [delta]
   slots, as a reused [int array] of per-slot masks.  The number of
   calls is the multinomial Δ! / ∏ cᵢ!, never Δ! — condensed lines stay
   condensed. *)
let arrangements groups delta f =
  let groups = Array.of_list groups in
  let remaining = Array.map snd groups in
  let slotmasks = Array.make (max 1 delta) 0 in
  let rec fill s =
    if s = delta then f slotmasks
    else
      Array.iteri
        (fun g (mask, _) ->
          if remaining.(g) > 0 then begin
            remaining.(g) <- remaining.(g) - 1;
            slotmasks.(s) <- mask;
            fill (s + 1);
            remaining.(g) <- remaining.(g) + 1
          end)
        groups
  in
  fill 0

(* The box family itself as a ZDD, all the way through the dominance
   filter: no explicit box list exists until the final (already
   maximal) members stream out.  Returns [None] when the slotted
   encoding does not apply — inexact node diagram, Δ = 0, or Δ·n > 62
   bits — and the caller falls back to the streaming/explicit paths.

   Load-bearing facts (each pinned by the equivalence suite in
   test/zdd):

   - T, the relation of ordered label tuples of allowed configurations,
     is slot-wise up-closed when the diagram is exact (substituting a
     stronger label keeps a configuration allowed), so every maximal
     member of [Zdd.boxes T] automatically has right-closed slot
     components: the right-closed family never materializes here.
   - Box dominance — an injective matching of each set into a superset
     — is exactly ∃σ. b ⊆ σ(c) slot-wise, i.e. strict containment of
     encodings in the permutation-closed family.  T is built from all
     arrangements of each line, so [Zdd.boxes T] is permutation-closed
     and Coudert [Zdd.maximal] on it *is* the full dominance filter,
     transport matching included.
   - Order: the explicit path returns boxes in decreasing lexicographic
     order of their canonical (slot-sorted) encodings; [Zdd.iter]
     enumerates encodings increasing, so keeping the canonical members
     and prepending reproduces the explicit list byte for byte. *)
let symbolic_boxes_impl (p : Problem.t) =
  let delta = Problem.delta p in
  let n = Alphabet.size p.alpha in
  if delta = 0 || n = 0 || delta * n > 62 then None
  else
    let diagram = Diagram.node_diagram p in
    if not (Diagram.is_exact diagram) then None
    else begin
      let work = ref 0 in
      let charge budget amount =
        work := !work + amount;
        if !work > box_work_limit then
          Budget.exceeded ~budget ~limit:(float_of_int box_work_limit)
      in
      let lay = Zdd.layout ~slots:delta ~width:n in
      let mgr = Zdd.create ~nbits:(Zdd.layout_bits lay) () in
      let cube_fam =
        Trace.with_span "rounde.valid_boxes"
          ~attrs:[ ("problem", p.name) ]
        @@ fun () ->
        translate_zdd_limit @@ fun () ->
        (* [rc_sets] stays engine-independent: count the same family
           the other paths enumerate, without materializing it. *)
        stats.rc_sets <- stats.rc_sets + Diagram.right_closed_count diagram;
        let tuples = ref Zdd.bot in
        List.iter
          (fun line ->
            let groups =
              List.map
                (fun (s, c) -> (Labelset.to_bits s, c))
                (Line.groups line)
            in
            arrangements groups delta (fun slotmasks ->
                charge "Rounde.rbar: box family construction work (zdd)"
                  (1 + delta);
                tuples :=
                  Zdd.union mgr !tuples (Zdd.one_per_slot mgr lay slotmasks)))
          (Constr.lines p.node);
        stats.maxbox_tuples <- stats.maxbox_tuples + Zdd.count mgr !tuples;
        let cube_fam =
          Zdd.boxes ~work_limit:(box_work_limit - !work) mgr lay !tuples
        in
        stats.maxbox_cubes <- stats.maxbox_cubes + Zdd.count mgr cube_fam;
        cube_fam
      in
      let boxes =
        Trace.with_span "rounde.maximal_boxes"
          ~attrs:[ ("boxes", "symbolic") ]
        @@ fun () ->
        translate_zdd_limit @@ fun () ->
        let t0 = now () in
        let maxf = Zdd.maximal mgr cube_fam in
        stats.maxbox_maximal <- stats.maxbox_maximal + Zdd.count mgr maxf;
        let boxes = ref [] in
        let kept = ref 0 in
        Zdd.iter mgr maxf (fun enc ->
            charge "Rounde.rbar: maximal box enumeration (zdd)" 1;
            let slots = Zdd.decode_slots lay enc in
            let sorted = ref true in
            Array.iteri
              (fun i mask -> if i > 0 && mask < slots.(i - 1) then sorted := false)
              slots;
            if !sorted then begin
              incr kept;
              boxes := Array.to_list (Array.map Labelset.of_bits slots) :: !boxes
            end);
        stats.maxbox_enumerated <- stats.maxbox_enumerated + !kept;
        stats.boxes_emitted <- stats.boxes_emitted + !kept;
        stats.maxbox_time_s <- stats.maxbox_time_s +. (now () -. t0);
        !boxes
      in
      Some boxes
    end

(* Precomputed dominance keys.  If [box_leq b b'] (every set of [b]
   matched injectively into a superset in [b']) then necessarily:
   support(b) ⊆ support(b'), the total cardinality of [b] is at most
   that of [b'], and the ascending sorted cardinality vectors dominate
   elementwise (the matching sends the i-th smallest set of [b] into a
   set of [b'] of at least its size, for every prefix).  All three are
   word-level/O(Δ) screens, applied before the exact transportation
   matching; scanning candidates in decreasing total-cardinality order
   additionally confines possible dominators to a prefix. *)
type box_key = {
  sorted : Labelset.t list;  (* canonical form, for equality *)
  sets : Labelset.t array;  (* the canonical form again, for indexing *)
  sizes : int array;  (* set cardinalities, ascending *)
  total : int;
  support : Labelset.t;
}

let box_key box =
  let sorted = List.sort Labelset.compare box in
  let sizes = Array.of_list (List.sort compare (List.map Labelset.cardinal box)) in
  {
    sorted;
    sets = Array.of_list sorted;
    sizes;
    total = Array.fold_left ( + ) 0 sizes;
    support = List.fold_left Labelset.union Labelset.empty box;
  }

let sizes_dominated a b =
  (* Equal lengths: boxes of one constraint share the arity Δ. *)
  let ok = ref true in
  Array.iteri (fun i c -> if c > b.(i) then ok := false) a;
  !ok

(* Per-worker accumulator for the dominance screen.  The transport memo
   lives here too, keeping it race-free; the hit counter is therefore
   schedule-dependent when [domains > 1] (the only stats field that
   is — see the .mli). *)
type dom_local = {
  mutable checks : int;
  mutable cheap_skips : int;
  mutable transport_calls : int;
  mutable cache_hits : int;
  memo : (int array, bool) Hashtbl.t;
}

(* The exact transportation verdict for [bi ≤ bj] — does an injective
   map send every set of [bi] into a superset in [bj]? — with two
   layers in front of the matching search.  Fast path: if the ascending
   size vectors are equal, an injective matching into supersets has
   slack sum zero, hence forces set-wise equality, so feasibility
   reduces to equality of the canonical forms.  Memo: with all-ones
   supply/demand of the common arity Δ, the verdict is a function of
   the Δ×Δ subset-relation matrix alone — and the same matrix pattern
   recurs across many box pairs (the pairs themselves never repeat, so
   nothing finer could ever hit).  The matrix costs Δ² word-level
   subset tests, which the matching search would perform anyway; keys
   are the matrix bits packed into an int array. *)
let transport_verdict local bi bj =
  local.transport_calls <- local.transport_calls + 1;
  if bi.sizes = bj.sizes then List.equal Labelset.equal bi.sorted bj.sorted
  else begin
    let a = bi.sets and b = bj.sets in
    let d = Array.length a in
    let matrix = Array.make (d * d) false in
    let key = Array.make (((d * d) + 62) / 63) 0 in
    for i = 0 to d - 1 do
      for j = 0 to d - 1 do
        if Labelset.subset a.(i) b.(j) then begin
          let bit = (i * d) + j in
          matrix.(bit) <- true;
          key.(bit / 63) <- key.(bit / 63) lor (1 lsl (bit mod 63))
        end
      done
    done;
    match Hashtbl.find_opt local.memo key with
    | Some v ->
        local.cache_hits <- local.cache_hits + 1;
        v
    | None ->
        let v =
          Util.transport_feasible ~supply:(Array.make d 1)
            ~demand:(Array.make d 1)
            ~allowed:(fun i j -> matrix.((i * d) + j))
        in
        Hashtbl.add local.memo key v;
        v
  end

(* ZDD pre-screen for the dominance filter: build the family of box
   supports, extract its maximal members, and count support
   multiplicities.  A box whose support is a maximal member occurring
   exactly once is provably undominated — a dominator [b'] would need
   support(b) ⊆ support(b'), so by maximality support(b') = support(b),
   contradicting uniqueness — and skips the dominator scan entirely.
   Output-preserving by construction; only the scan counters shrink.
   A unique-table overrun just disables the screen. *)
let zdd_prescreen keyed =
  let m = Array.length keyed in
  let maxmask =
    Array.fold_left (fun acc k -> acc lor Labelset.to_bits k.support) 0 keyed
  in
  let nbits =
    let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
    bits maxmask 0
  in
  try
    let mgr = Zdd.create ~nbits () in
    let counts = Hashtbl.create (2 * m) in
    let fam = ref Zdd.bot in
    Array.iter
      (fun k ->
        let s = Labelset.to_bits k.support in
        Hashtbl.replace counts s
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts s));
        fam := Zdd.union mgr !fam (Zdd.of_mask mgr s))
      keyed;
    let maxf = Zdd.maximal mgr !fam in
    Array.map
      (fun k ->
        let s = Labelset.to_bits k.support in
        Hashtbl.find counts s = 1 && Zdd.mem mgr maxf s)
      keyed
  with Zdd.Limit _ -> Array.make m false

(* Complete dominance verdicts from Coudert maximal on the real Δ-slot
   family (the upgrade of the support prescreen above): insert every
   distinct arrangement of every box into a slotted family, extract the
   maximal members, and read each box's verdict off canonical-encoding
   membership — box dominance is exactly strict encoding containment up
   to a slot permutation, so this is the *whole* filter, not a screen:
   no dominator scan, no transport matching.  [None] when the encoding
   or the orbit expansion doesn't fit (falls back to the screen+scan
   path); a unique-table overrun likewise. *)
let zdd_slotted_verdicts keyed =
  let m = Array.length keyed in
  if m = 0 then None
  else
    let delta = Array.length keyed.(0).sets in
    let n =
      let maxmask =
        Array.fold_left (fun acc k -> acc lor Labelset.to_bits k.support) 0 keyed
      in
      let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
      bits maxmask 0
    in
    let orbit_bound =
      (* ≤ Δ! arrangements per box; cheap overestimate to bound the
         insertion work before starting. *)
      let rec fact k acc = if k <= 1 then acc else fact (k - 1) (k * acc) in
      m * fact (min delta 12) 1
    in
    if delta = 0 || n = 0 || delta * n > 62 || orbit_bound > 2_000_000 then None
    else
      try
        let lay = Zdd.layout ~slots:delta ~width:n in
        let mgr = Zdd.create ~nbits:(Zdd.layout_bits lay) () in
        let fam = ref Zdd.bot in
        let encode k =
          Zdd.encode_slots lay (Array.map Labelset.to_bits k.sets)
        in
        Array.iter
          (fun k ->
            (* Group equal sets so [arrangements] emits each distinct
               slot assignment exactly once. *)
            let groups =
              List.fold_left
                (fun acc s ->
                  let mask = Labelset.to_bits s in
                  match acc with
                  | (mask', c) :: rest when mask' = mask -> (mask, c + 1) :: rest
                  | _ -> (mask, 1) :: acc)
                [] k.sorted
            in
            arrangements groups delta (fun slotmasks ->
                fam :=
                  Zdd.union mgr !fam
                    (Zdd.of_mask mgr (Zdd.encode_slots lay slotmasks))))
          keyed;
        let maxf = Zdd.maximal mgr !fam in
        Some (Array.map (fun k -> not (Zdd.mem mgr maxf (encode k))) keyed)
      with Zdd.Limit _ -> None

let maximal_boxes_impl ?pool ~use_zdd boxes =
  let pool = Parctl.resolve pool in
  let t0 = now () in
  let keyed = Array.of_list (List.map box_key boxes) in
  let m = Array.length keyed in
  match if use_zdd then zdd_slotted_verdicts keyed else None with
  | Some dominated ->
      (* The slotted family answered every verdict: no scan at all.
         Output-identical to the scan below (the verdicts coincide box
         by box and the input order is preserved); only the scan
         counters ([box_dom_*], [*transport*]) stay at zero. *)
      let result = List.filteri (fun i _ -> not dominated.(i)) boxes in
      stats.maxbox_time_s <- stats.maxbox_time_s +. (now () -. t0);
      result
  | None ->
  let undominated =
    if use_zdd && m > 0 then zdd_prescreen keyed
    else Array.make (max 1 m) false
  in
  (* Candidate dominators, in non-increasing total cardinality. *)
  let order = Array.init m Fun.id in
  Array.sort (fun i j -> compare keyed.(j).total keyed.(i).total) order;
  (* On the compressed path the quadratic scan is charged against the
     same work limit as enumeration, through a shared atomic counter.
     Each box's check count is a fixed property of the instance (the
     scan order and early exits read only the immutable [keyed]/[order]
     tables), so the grand total — and hence the trip verdict — is
     identical for every domain count and schedule.  The explicit path
     stays uncharged: its inputs already passed the enumeration budget,
     and its scan cost is bounded by them. *)
  let scan_work = Atomic.make 0 in
  let charge_scan amount =
    if use_zdd then begin
      let before = Atomic.fetch_and_add scan_work amount in
      if before + amount > box_work_limit then
        Budget.exceeded ~budget:"Rounde.rbar: maximal box scan work (zdd)"
          ~limit:(float_of_int box_work_limit)
    end
  in
  let dominated local i =
    let bi = keyed.(i) in
    let rec scan idx =
      if idx >= m then false
      else
        let j = order.(idx) in
        if keyed.(j).total < bi.total then false
        else if j = i then scan (idx + 1)
        else begin
          local.checks <- local.checks + 1;
          let bj = keyed.(j) in
          if
            (not (Labelset.subset bi.support bj.support))
            || not (sizes_dominated bi.sizes bj.sizes)
          then begin
            local.cheap_skips <- local.cheap_skips + 1;
            scan (idx + 1)
          end
          else if List.equal Labelset.equal bi.sorted bj.sorted then
            scan (idx + 1)
          else if transport_verdict local bi bj then true
          else scan (idx + 1)
        end
    in
    scan 0
  in
  (* Each box's verdict is independent of the others' (the screen reads
     only the immutable [keyed]/[order] tables), so the boxes fan out
     over the pool; the flags array is written index-addressed and read
     after the join, preserving the input order exactly. *)
  let flags = Array.make (max 1 m) false in
  Parallel.Pool.run ~chunk:16 pool ~n:m
    ~init:(fun () ->
      { checks = 0; cheap_skips = 0; transport_calls = 0; cache_hits = 0;
        memo = Hashtbl.create 256 })
    ~body:(fun local i ->
      (* The charge is settled once per box (one atomic op, not one per
         check); a single box's scan is at most [m] checks, so the
         overshoot before a trip is registered stays bounded. *)
      let checks_before = local.checks in
      let verdict = (not undominated.(i)) && dominated local i in
      charge_scan (local.checks - checks_before);
      flags.(i) <- verdict)
    ~merge:(fun l ->
      stats.box_dom_checks <- stats.box_dom_checks + l.checks;
      stats.box_dom_cheap_skips <- stats.box_dom_cheap_skips + l.cheap_skips;
      stats.box_transport_calls <- stats.box_transport_calls + l.transport_calls;
      stats.transport_cache_hits <- stats.transport_cache_hits + l.cache_hits);
  let result = List.filteri (fun i _ -> not flags.(i)) boxes in
  stats.maxbox_time_s <- stats.maxbox_time_s +. (now () -. t0);
  result

let maximal_boxes ?pool ?zdd boxes =
  Trace.with_span "rounde.maximal_boxes"
    ~attrs:[ ("boxes", string_of_int (List.length boxes)) ]
    (fun () ->
      maximal_boxes_impl ?pool ~use_zdd:(Parctl.resolve_zdd zdd) boxes)

let rbar_impl ?(expand_limit = 2e6) ?(rc_limit = 100_000) ?pool ?zdd
    (p : Problem.t) =
  let t0 = now () in
  stats.rbar_calls <- stats.rbar_calls + 1;
  (* No label cap: the order-ideal enumeration behind
     [Diagram.right_closed_sets] is output-sensitive, and runaway
     instances are stopped by [rc_limit], [expand_limit] and the DFS
     work budget instead — all of which fail as fast as the old cap.
     With the ZDD path on, [rc_limit] does not apply at all (nothing is
     materialized); the manager's node budget takes its place.

     Engine ladder under [~zdd]: the fully symbolic pipeline
     ([symbolic_boxes_impl]: box family as a Δ-slot ZDD through Coudert
     maximal, the node constraint never expanded) when the slotted
     encoding applies; else the streaming compressed DFS inside
     [valid_boxes]; else the explicit DFS — each rung byte-identical to
     the others wherever both complete. *)
  let boxes =
    let fallback () =
      maximal_boxes ?pool ?zdd (valid_boxes ?pool ?zdd p ~expand_limit ~rc_limit)
    in
    if Parctl.resolve_zdd zdd then
      match symbolic_boxes_impl p with
      | Some boxes -> boxes
      | None -> fallback ()
    else fallback ()
  in
  if boxes = [] then failwith "Rounde.rbar: empty node constraint";
  (* New alphabet: the distinct sets used in maximal boxes. *)
  let module SS = Set.Make (struct
    type t = Labelset.t

    let compare = Labelset.compare
  end) in
  let sets =
    List.fold_left
      (fun acc box -> List.fold_left (fun acc s -> SS.add s acc) acc box)
      SS.empty boxes
  in
  let denots = Array.of_list (SS.elements sets) in
  if Array.length denots > Labelset.max_label then
    Budget.exceeded ~budget:"Rounde.rbar: output alphabet width"
      ~limit:(float_of_int Labelset.max_label);
  let alpha'' = intern_sets p.alpha denots in
  let index_of =
    let tbl = Hashtbl.create 16 in
    Array.iteri (fun i s -> Hashtbl.add tbl (Labelset.to_bits s) i) denots;
    fun s -> Hashtbl.find tbl (Labelset.to_bits s)
  in
  let node_lines =
    List.map
      (fun box ->
        Line.make
          (List.map (fun s -> (Labelset.singleton (index_of s), 1)) box))
      boxes
  in
  (* Edge constraint: pairs of used sets admitting a compatible choice
     in the old edge constraint. *)
  let compat = compat_matrix p in
  let choice_compatible s1 s2 =
    Labelset.exists (fun a -> Labelset.exists (fun b -> compat.(a).(b)) s2) s1
  in
  let edge_lines = ref [] in
  Array.iteri
    (fun i si ->
      Array.iteri
        (fun j sj ->
          if i <= j && choice_compatible si sj then
            edge_lines :=
              (if i = j then Line.make [ (Labelset.singleton i, 2) ]
               else
                 Line.make
                   [ (Labelset.singleton i, 1); (Labelset.singleton j, 1) ])
              :: !edge_lines)
        denots)
    denots;
  if !edge_lines = [] then failwith "Rounde.rbar: empty edge constraint";
  let problem =
    Problem.make
      ~name:(Printf.sprintf "Rbar(%s)" p.name)
      ~alpha:alpha'' ~node:(Constr.make node_lines)
      ~edge:(Constr.make !edge_lines)
  in
  stats.rbar_time_s <- stats.rbar_time_s +. (now () -. t0);
  let result = { problem; denotations = denots } in
  notify `Rbar p result;
  result

let rbar ?expand_limit ?rc_limit ?pool ?zdd (p : Problem.t) =
  Trace.with_span "rounde.rbar"
    ~attrs:[ ("problem", p.name) ]
    (fun () ->
      let result = rbar_impl ?expand_limit ?rc_limit ?pool ?zdd p in
      sample_rbar_counters ();
      result)

let step ?expand_limit ?rc_limit ?pool ?zdd p =
  Trace.with_span "rounde.step"
    ~attrs:[ ("problem", p.Problem.name) ]
  @@ fun () ->
  let { problem = p'; _ } = r p in
  let { problem = p''; denotations } =
    rbar ?expand_limit ?rc_limit ?pool ?zdd p'
  in
  (* No trim needed: every label of [rbar]'s output occurs in its node
     constraint by construction, so trimming would be a no-op and would
     desynchronize [denotations]. *)
  { problem = { p'' with name = Printf.sprintf "step(%s)" p.Problem.name };
    denotations }
