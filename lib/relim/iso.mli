(** Problem isomorphism: equality up to a bijective renaming of labels.

    Used to verify the paper's "after renaming" claims (e.g. Lemma 6:
    [R(Π_Δ(a,x))] equals a hand-stated 8-label problem after the given
    renaming). *)

type label = Labelset.label

(** [invariant_hash p] is invariant under label renaming:
    [equal_up_to_renaming a b] implies [invariant_hash a =
    invariant_hash b] (the converse need not hold).  Built from the
    sorted per-label occurrence signatures; used to bucket memoized
    speedup results in {!Fixedpoint}. *)
val invariant_hash : Problem.t -> int

(** [find_renaming a b] searches for a bijection σ from [a]'s labels to
    [b]'s labels such that applying σ to [a]'s node and edge
    constraints yields exactly [b]'s (as sets of configurations).
    Returns the bijection as an association list of labels, or [None].
    Backtracking with degree-signature pruning; alphabets beyond ~12
    labels may be slow. *)
val find_renaming : Problem.t -> Problem.t -> (label * label) list option

(** [equal_up_to_renaming a b] — convenience wrapper. *)
val equal_up_to_renaming : Problem.t -> Problem.t -> bool

(** [apply_renaming p pairs] renames [p]'s labels: label [l] of [p]
    becomes the label named [List.assoc (name l) pairs] (names not
    listed are kept).  The alphabet is rebuilt with the new names in
    the same index order.
    @raise Invalid_argument if renaming creates duplicates. *)
val apply_renaming : Problem.t -> (string * string) list -> Problem.t
