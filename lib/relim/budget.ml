exception Budget_exceeded of { budget : string; limit : float }

let message ~budget ~limit =
  (* Integral limits print as integers: "limit 5000000", not "5e+06". *)
  if Float.is_integer limit && Float.abs limit < 1e15 then
    Printf.sprintf "budget exceeded: %s (limit %.0f)" budget limit
  else Printf.sprintf "budget exceeded: %s (limit %g)" budget limit

let exceeded ~budget ~limit = raise (Budget_exceeded { budget; limit })

let () =
  Printexc.register_printer (function
    | Budget_exceeded { budget; limit } -> Some (message ~budget ~limit)
    | _ -> None)
