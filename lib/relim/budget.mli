(** Typed budget verdicts for the engine's work guards.

    Every enumeration in the engine is bounded — expansion estimates,
    right-closed-set counts, Bron–Kerbosch recursion, the R̄ box DFS,
    the output-alphabet width.  Historically an overrun raised a bare
    [Failure _], indistinguishable from a genuine engine error (an
    empty constraint, a parse error): callers could only string-match
    the message.  Overruns now raise {!Budget_exceeded}, which names
    the budget that tripped and its limit, so search drivers (the
    autopilot, [Upperbound.search], the fuzzer) can {e skip} oversized
    instances while still crashing loudly on real bugs.

    Genuine errors — an empty node/edge constraint after [R]/[R̄],
    malformed input — still raise [Failure]. *)

(** The named budget [budget] (e.g. ["Rounde.rbar box work"]) was
    exceeded; [limit] is the configured bound (integral budgets are
    reported as exact floats). *)
exception Budget_exceeded of { budget : string; limit : float }

(** [exceeded ~budget ~limit] raises {!Budget_exceeded}. *)
val exceeded : budget:string -> limit:float -> 'a

(** Human-readable rendering, as used by the registered exception
    printer: ["budget exceeded: <budget> (limit <limit>)"]. *)
val message : budget:string -> limit:float -> string
