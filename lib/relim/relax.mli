(** Relaxations of configurations (Definition 7 of the paper).

    A configuration [Y₁ … Y_Δ] relaxes to [Z₁ … Z_Δ] when some
    permutation ρ satisfies [Yᵢ ≤ Z_ρ(i)] for all [i], where [≤] is a
    caller-supplied partial order on labels — set inclusion of
    denotations in the round-elimination setting, where labels of
    [R(Π)] / [R̄(Π)] outputs stand for sets of base labels.

    Replacing a configuration by a relaxation is a 0-round output
    transformation: each node independently rewrites its own output. *)

type label = Labelset.label

(** [multiset_relaxes ~leq y z] — does the concrete configuration [y]
    relax to the concrete configuration [z]?  Decided as a
    transportation feasibility problem. *)
val multiset_relaxes :
  leq:(label -> label -> bool) -> Multiset.t -> Multiset.t -> bool

(** [multiset_relaxes_into_constr ~leq y c] — does [y] relax to some
    concrete configuration of [c]?  [c]'s lines must be concrete
    (singleton groups) — the precondition is enforced, not assumed.
    @raise Invalid_argument if any line of [c] contains a disjunction
    group; use {!constr_relaxes} (which handles disjunctive targets
    without expanding them) or expand [c] first. *)
val multiset_relaxes_into_constr :
  leq:(label -> label -> bool) -> Multiset.t -> Constr.t -> bool

(** [constr_relaxes ~leq a b] — does every concrete configuration of
    [a] relax into some configuration of [b]?  Expands [a] (guarded by
    [limit], default 2e6); [b] may contain disjunction groups and is
    never expanded (each group slot picks its witness label
    independently, so group-level transport is exact).
    @raise Budget.Budget_exceeded if the expansion is too large. *)
val constr_relaxes :
  ?limit:float -> leq:(label -> label -> bool) -> Constr.t -> Constr.t -> bool

(** Reflexive-by-equality order used for plain problems. *)
val label_equal : label -> label -> bool
