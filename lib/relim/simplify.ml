type label = Labelset.label

let merge (p : Problem.t) ~from_ ~into_ =
  let lf = Alphabet.find p.alpha from_ in
  let li = Alphabet.find p.alpha into_ in
  if lf = li then invalid_arg "Simplify.merge: labels coincide";
  let rewrite_set s =
    if Labelset.mem lf s then Labelset.add li (Labelset.remove lf s) else s
  in
  let rewrite = Constr.map_lines (Line.map_syms rewrite_set) in
  Problem.trim
    {
      p with
      Problem.name = Printf.sprintf "%s[%s->%s]" p.name from_ into_;
      node = rewrite p.node;
      edge = rewrite p.edge;
    }

let merge_is_sound ?expand_limit (p : Problem.t) ~from_ ~into_ =
  let lf = Alphabet.find p.alpha from_ in
  let li = Alphabet.find p.alpha into_ in
  let edge = Diagram.edge_diagram p in
  let node = Diagram.node_diagram ?expand_limit p in
  Diagram.geq edge li lf && Diagram.geq node li lf

let merge_equivalent ?expand_limit (p : Problem.t) =
  let edge = Diagram.edge_diagram p in
  let node = Diagram.node_diagram ?expand_limit p in
  let n = Alphabet.size p.alpha in
  let pair = ref None in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      if
        !pair = None
        && Diagram.equivalent edge a b
        && Diagram.equivalent node a b
      then pair := Some (a, b)
    done
  done;
  match !pair with
  | None -> p
  | Some (a, b) ->
      merge p ~from_:(Alphabet.name p.alpha b) ~into_:(Alphabet.name p.alpha a)

let drop_redundant_lines (p : Problem.t) =
  (* Keep exactly one representative per cover-equivalence class of the
     cover-maximal lines.  [Line.covers] is a preorder; a line is
     dropped iff a line we already decided to KEEP covers it, or some
     line strictly covers it (in which case the strict-cover chain ends
     at a maximal line whose class representative is kept).  Every
     dropped line is therefore covered by a kept line, and the first
     member of each maximal class always survives — the pruned
     constraint can never be empty or weaker, even if a future cover
     notion introduced genuine mutual-cover cycles.  (On today's
     canonical [Line.t] such cycles are impossible — [covers] is
     antisymmetric, see the `simplify-*` tests — so this keeps exactly
     the maximal lines; the previous implementation re-checked covers
     against a shifting mix of original and remaining lines and relied
     on that antisymmetry implicitly.) *)
  let prune constr =
    let lines = Constr.lines constr in
    let strictly_covered line =
      List.exists
        (fun other -> Line.covers other line && not (Line.covers line other))
        lines
    in
    let rec go kept = function
      | [] -> List.rev kept
      | line :: rest ->
          if
            List.exists (fun k -> Line.covers k line) kept
            || strictly_covered line
          then go kept rest
          else go (line :: kept) rest
    in
    Constr.make (go [] lines)
  in
  { p with Problem.node = prune p.node; edge = prune p.edge }

let normalize p = Problem.trim (drop_redundant_lines p)
