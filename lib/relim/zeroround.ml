type stats = {
  mutable clique_calls : int;
  mutable maximal_cliques : int;
  mutable bk_expansions : int;
  mutable clique_time_s : float;
}

let stats =
  { clique_calls = 0; maximal_cliques = 0; bk_expansions = 0; clique_time_s = 0. }

let reset_stats () =
  stats.clique_calls <- 0;
  stats.maximal_cliques <- 0;
  stats.bk_expansions <- 0;
  stats.clique_time_s <- 0.

(* Verdict emission hook: fired with (mode, problem, verdict) after
   every completed decider call (budget failures raise before it
   fires).  Installed by [Certify.Hooks]. *)
let observer :
    (mode:[ `Mirrored | `Arbitrary ] -> Problem.t -> Multiset.t option -> unit)
    option
    ref =
  ref None

let notify mode p verdict =
  match !observer with None -> () | Some f -> f ~mode p verdict

let compat_matrix (p : Problem.t) =
  let n = Alphabet.size p.alpha in
  let compat = Array.make_matrix n n false in
  List.iter
    (fun line ->
      Line.expand line (fun m ->
          match Multiset.to_list m with
          | [ a; b ] ->
              compat.(a).(b) <- true;
              compat.(b).(a) <- true
          | _ -> invalid_arg "Zeroround: edge line of arity <> 2"))
    (Constr.lines p.edge);
  compat

let self_compatible p =
  let compat = compat_matrix p in
  let n = Alphabet.size p.alpha in
  let acc = ref Labelset.empty in
  for l = 0 to n - 1 do
    if compat.(l).(l) then acc := Labelset.add l !acc
  done;
  !acc

(* Pick, for each group of [line], [count] labels from [pool ∩ syms];
   returns a witness configuration or [None] if some group has an empty
   intersection with the pool. *)
let pick_from_pool line pool =
  let rec go acc = function
    | [] -> Some (Multiset.of_counts acc)
    | (s, c) :: rest ->
        let usable = Labelset.inter s pool in
        if Labelset.is_empty usable then None
        else go ((Labelset.choose usable, c) :: acc) rest
  in
  go [] (Line.groups line)

let solvable_mirrored p =
  Trace.with_span "zeroround.mirrored"
    ~attrs:[ ("problem", p.Problem.name) ]
  @@ fun () ->
  let pool = self_compatible p in
  let verdict =
    List.find_map (fun line -> pick_from_pool line pool) (Constr.lines p.node)
  in
  notify `Mirrored p verdict;
  verdict

(* Maximal cliques of the compatibility graph, restricted to the
   self-compatible labels (a label incompatible with itself can never
   appear in a usable pool: the adversary may connect two equal ports),
   by bitset Bron–Kerbosch with pivoting.  [f] is called once per
   maximal clique; raise from [f] (e.g. a [Found] exception) to stop
   early.  [max_expansions] bounds the recursion-tree size: the number
   of maximal cliques can be exponential (Moon–Moser), so unlike the
   old silent 2^n subset sweep the enumeration fails loudly when the
   instance really is infeasible. *)
let iter_maximal_cliques ?(max_expansions = 1_000_000) compat n f =
  let vertices = ref Labelset.empty in
  for a = 0 to n - 1 do
    if compat.(a).(a) then vertices := Labelset.add a !vertices
  done;
  let nbr =
    Array.init n (fun a ->
        let acc = ref Labelset.empty in
        if compat.(a).(a) then
          Labelset.iter
            (fun b -> if b <> a && compat.(a).(b) then acc := Labelset.add b !acc)
            !vertices;
        !acc)
  in
  let expansions = ref 0 in
  let rec bk r p x =
    incr expansions;
    stats.bk_expansions <- stats.bk_expansions + 1;
    if !expansions > max_expansions then
      Budget.exceeded ~budget:"Zeroround: maximal-clique enumeration"
        ~limit:(float_of_int max_expansions);
    if Labelset.is_empty p && Labelset.is_empty x then begin
      if not (Labelset.is_empty r) then begin
        stats.maximal_cliques <- stats.maximal_cliques + 1;
        f r
      end
    end
    else begin
      (* Pivot on a vertex of P ∪ X with the most neighbors in P; only
         non-neighbors of the pivot start branches. *)
      let pivot = ref (-1) and best = ref (-1) in
      Labelset.iter
        (fun u ->
          let c = Labelset.inter_cardinal p nbr.(u) in
          if c > !best then begin
            best := c;
            pivot := u
          end)
        (Labelset.union p x);
      let p = ref p and x = ref x in
      Labelset.iter
        (fun v ->
          bk (Labelset.add v r) (Labelset.inter !p nbr.(v))
            (Labelset.inter !x nbr.(v));
          p := Labelset.remove v !p;
          x := Labelset.add v !x)
        (Labelset.diff !p nbr.(!pivot))
    end
  in
  bk Labelset.empty !vertices Labelset.empty

(* Per-worker accumulator for the parallel clique search, merged into
   the global [stats] at join. *)
type bk_local = { mutable cliques : int; mutable expansions : int }

let solvable_arbitrary_ports_impl ?(max_expansions = 1_000_000) ?pool p =
  let pool = Parctl.resolve pool in
  let t0 = Unix.gettimeofday () in
  stats.clique_calls <- stats.clique_calls + 1;
  let compat = compat_matrix p in
  let n = Alphabet.size p.alpha in
  let lines = Constr.lines p.node in
  (* A pool works iff every group of some node line meets it, and that
     predicate is monotone in the pool; since every clique extends to a
     maximal one, scanning maximal cliques only is complete.  The
     witness drawn by [pick_from_pool] is supported inside
     [line-sets ∩ clique], so no membership re-check is needed.

     The Bron–Kerbosch root is unrolled by hand: its children (one per
     non-neighbor of the root pivot) are independent subtrees, which
     fan out over the pool.  Every subtree runs to completion (stopping
     only at its own first witness), so the set of cliques visited, the
     merged counters, and the verdict — the DFS-first witness of the
     lowest-indexed subtree, exactly the witness the sequential search
     returns — are identical for every domain count.  The expansion
     budget is shared through an atomic counter for the same reason:
     the total demand is fixed, so whether it trips does not depend on
     the schedule. *)
  let budget = Atomic.make 0 in
  let charge local =
    local.expansions <- local.expansions + 1;
    let before = Atomic.fetch_and_add budget 1 in
    if before + 1 > max_expansions then
      Budget.exceeded ~budget:"Zeroround: maximal-clique enumeration"
        ~limit:(float_of_int max_expansions)
  in
  let vertices = ref Labelset.empty in
  for a = 0 to n - 1 do
    if compat.(a).(a) then vertices := Labelset.add a !vertices
  done;
  let vertices = !vertices in
  let nbr =
    Array.init n (fun a ->
        let acc = ref Labelset.empty in
        if compat.(a).(a) then
          Labelset.iter
            (fun b -> if b <> a && compat.(a).(b) then acc := Labelset.add b !acc)
            vertices;
        !acc)
  in
  let pivot_of p x =
    let pivot = ref (-1) and best = ref (-1) in
    Labelset.iter
      (fun u ->
        let c = Labelset.inter_cardinal p nbr.(u) in
        if c > !best then begin
          best := c;
          pivot := u
        end)
      (Labelset.union p x);
    !pivot
  in
  (* The root is an expansion like any other (so [max_expansions = 0]
     still fails loudly); it never emits a clique itself because its
     [r] is empty. *)
  let root = { cliques = 0; expansions = 0 } in
  charge root;
  stats.bk_expansions <- stats.bk_expansions + root.expansions;
  let result =
    if Labelset.is_empty vertices then None
    else begin
      (* Branch inputs, replayed exactly as the sequential loop would
         evolve P and X over the root's branching vertices. *)
      let branches =
        let acc = ref [] and p = ref vertices and x = ref Labelset.empty in
        Labelset.iter
          (fun v ->
            acc :=
              (Labelset.singleton v,
               Labelset.inter !p nbr.(v),
               Labelset.inter !x nbr.(v))
              :: !acc;
            p := Labelset.remove v !p;
            x := Labelset.add v !x)
          (Labelset.diff vertices nbr.(pivot_of vertices Labelset.empty));
        Array.of_list (List.rev !acc)
      in
      let results = Array.make (max 1 (Array.length branches)) None in
      let exception Found_in_branch of Multiset.t in
      let run_branch local k =
        let rec bk r p x =
          charge local;
          if Labelset.is_empty p && Labelset.is_empty x then begin
            (* [r] is non-empty: every branch starts from a singleton. *)
            local.cliques <- local.cliques + 1;
            match
              List.find_map (fun line -> pick_from_pool line r) lines
            with
            | Some witness -> raise (Found_in_branch witness)
            | None -> ()
          end
          else begin
            let pivot = pivot_of p x in
            let p = ref p and x = ref x in
            Labelset.iter
              (fun v ->
                bk (Labelset.add v r) (Labelset.inter !p nbr.(v))
                  (Labelset.inter !x nbr.(v));
                p := Labelset.remove v !p;
                x := Labelset.add v !x)
              (Labelset.diff !p nbr.(pivot))
          end
        in
        let r, p0, x0 = branches.(k) in
        match bk r p0 x0 with
        | () -> ()
        | exception Found_in_branch witness -> results.(k) <- Some witness
      in
      Parallel.Pool.run ~chunk:1 pool ~n:(Array.length branches)
        ~init:(fun () -> { cliques = 0; expansions = 0 })
        ~body:run_branch
        ~merge:(fun l ->
          stats.maximal_cliques <- stats.maximal_cliques + l.cliques;
          stats.bk_expansions <- stats.bk_expansions + l.expansions);
      Array.fold_left
        (fun acc r -> match acc with Some _ -> acc | None -> r)
        None results
    end
  in
  stats.clique_time_s <- stats.clique_time_s +. (Unix.gettimeofday () -. t0);
  notify `Arbitrary p result;
  result

let solvable_arbitrary_ports ?max_expansions ?pool (p : Problem.t) =
  Trace.with_span "zeroround.arbitrary_ports"
    ~attrs:[ ("problem", p.name) ]
    (fun () ->
      let result = solvable_arbitrary_ports_impl ?max_expansions ?pool p in
      Trace.counters
        [
          ("zeroround.clique_calls", stats.clique_calls);
          ("zeroround.maximal_cliques", stats.maximal_cliques);
          ("zeroround.bk_expansions", stats.bk_expansions);
        ];
      result)

let randomized_failure_bound ?(limit = 2e6) p =
  match solvable_mirrored p with
  | Some _ -> None
  | None ->
      let configs = Constr.expand ~limit p.node in
      let c = List.length configs in
      let delta = Problem.delta p in
      let denom = float_of_int (c * delta) in
      Some (1. /. (denom *. denom))
