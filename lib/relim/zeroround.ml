type stats = {
  mutable clique_calls : int;
  mutable maximal_cliques : int;
  mutable bk_expansions : int;
  mutable clique_time_s : float;
}

let stats =
  { clique_calls = 0; maximal_cliques = 0; bk_expansions = 0; clique_time_s = 0. }

let reset_stats () =
  stats.clique_calls <- 0;
  stats.maximal_cliques <- 0;
  stats.bk_expansions <- 0;
  stats.clique_time_s <- 0.

let compat_matrix (p : Problem.t) =
  let n = Alphabet.size p.alpha in
  let compat = Array.make_matrix n n false in
  List.iter
    (fun line ->
      Line.expand line (fun m ->
          match Multiset.to_list m with
          | [ a; b ] ->
              compat.(a).(b) <- true;
              compat.(b).(a) <- true
          | _ -> invalid_arg "Zeroround: edge line of arity <> 2"))
    (Constr.lines p.edge);
  compat

let self_compatible p =
  let compat = compat_matrix p in
  let n = Alphabet.size p.alpha in
  let acc = ref Labelset.empty in
  for l = 0 to n - 1 do
    if compat.(l).(l) then acc := Labelset.add l !acc
  done;
  !acc

(* Pick, for each group of [line], [count] labels from [pool ∩ syms];
   returns a witness configuration or [None] if some group has an empty
   intersection with the pool. *)
let pick_from_pool line pool =
  let rec go acc = function
    | [] -> Some (Multiset.of_counts acc)
    | (s, c) :: rest ->
        let usable = Labelset.inter s pool in
        if Labelset.is_empty usable then None
        else go ((Labelset.choose usable, c) :: acc) rest
  in
  go [] (Line.groups line)

let solvable_mirrored p =
  let pool = self_compatible p in
  List.find_map (fun line -> pick_from_pool line pool) (Constr.lines p.node)

(* Maximal cliques of the compatibility graph, restricted to the
   self-compatible labels (a label incompatible with itself can never
   appear in a usable pool: the adversary may connect two equal ports),
   by bitset Bron–Kerbosch with pivoting.  [f] is called once per
   maximal clique; raise from [f] (e.g. a [Found] exception) to stop
   early.  [max_expansions] bounds the recursion-tree size: the number
   of maximal cliques can be exponential (Moon–Moser), so unlike the
   old silent 2^n subset sweep the enumeration fails loudly when the
   instance really is infeasible. *)
let iter_maximal_cliques ?(max_expansions = 1_000_000) compat n f =
  let vertices = ref Labelset.empty in
  for a = 0 to n - 1 do
    if compat.(a).(a) then vertices := Labelset.add a !vertices
  done;
  let nbr =
    Array.init n (fun a ->
        let acc = ref Labelset.empty in
        if compat.(a).(a) then
          Labelset.iter
            (fun b -> if b <> a && compat.(a).(b) then acc := Labelset.add b !acc)
            !vertices;
        !acc)
  in
  let expansions = ref 0 in
  let rec bk r p x =
    incr expansions;
    stats.bk_expansions <- stats.bk_expansions + 1;
    if !expansions > max_expansions then
      failwith
        (Printf.sprintf
           "Zeroround: maximal-clique enumeration exceeded %d expansions"
           max_expansions);
    if Labelset.is_empty p && Labelset.is_empty x then begin
      if not (Labelset.is_empty r) then begin
        stats.maximal_cliques <- stats.maximal_cliques + 1;
        f r
      end
    end
    else begin
      (* Pivot on a vertex of P ∪ X with the most neighbors in P; only
         non-neighbors of the pivot start branches. *)
      let pivot = ref (-1) and best = ref (-1) in
      Labelset.iter
        (fun u ->
          let c = Labelset.inter_cardinal p nbr.(u) in
          if c > !best then begin
            best := c;
            pivot := u
          end)
        (Labelset.union p x);
      let p = ref p and x = ref x in
      Labelset.iter
        (fun v ->
          bk (Labelset.add v r) (Labelset.inter !p nbr.(v))
            (Labelset.inter !x nbr.(v));
          p := Labelset.remove v !p;
          x := Labelset.add v !x)
        (Labelset.diff !p nbr.(!pivot))
    end
  in
  bk Labelset.empty !vertices Labelset.empty

exception Found of Multiset.t

let solvable_arbitrary_ports ?max_expansions p =
  let t0 = Sys.time () in
  stats.clique_calls <- stats.clique_calls + 1;
  let compat = compat_matrix p in
  let n = Alphabet.size p.alpha in
  let lines = Constr.lines p.node in
  (* A pool works iff every group of some node line meets it, and that
     predicate is monotone in the pool; since every clique extends to a
     maximal one, scanning maximal cliques only is complete.  The
     witness drawn by [pick_from_pool] is supported inside
     [line-sets ∩ clique], so no membership re-check is needed. *)
  let result =
    match
      iter_maximal_cliques ?max_expansions compat n (fun clique ->
          match
            List.find_map (fun line -> pick_from_pool line clique) lines
          with
          | Some witness -> raise (Found witness)
          | None -> ())
    with
    | () -> None
    | exception Found witness -> Some witness
  in
  stats.clique_time_s <- stats.clique_time_s +. (Sys.time () -. t0);
  result

let randomized_failure_bound ?(limit = 2e6) p =
  match solvable_mirrored p with
  | Some _ -> None
  | None ->
      let configs = Constr.expand ~limit p.node in
      let c = List.length configs in
      let delta = Problem.delta p in
      let denom = float_of_int (c * delta) in
      Some (1. /. (denom *. denom))
