(** Upper bounds by iterated speedup (the "upper bound sequences" use
    of round elimination, Section 1.2 of the paper).

    By Theorem 3, Π is solvable in T rounds iff [R̄(R(Π))] is solvable
    in max(T-1, 0); so if T speedup steps reach a 0-round-solvable
    problem, the original is T-round solvable (on high-girth Δ-regular
    instances, in the PN model).

    The 0-round decider used here ({!Zeroround.solvable_arbitrary_ports})
    ignores the edge-port orientations the model technically provides,
    so it may declare some 0-round-solvable problems unsolvable — the
    reported upper bound is therefore {e sound} but possibly not tight.
    Blow-up limits make this practical only for a few steps, exactly as
    with the round-eliminator tool. *)

type outcome =
  | Solvable_in of int  (** 0-round solvable after this many steps. *)
  | Unknown_after of int
      (** Budget exhausted (steps or label blow-up) after this many
          completed steps. *)

(** [?pool] is passed through to the speedup steps and the 0-round
    decider (default {!Parctl.default}); the outcome is identical for
    every domain count.  [?zdd] selects the step engine (default
    {!Parctl.zdd_from_env}); note the capacity envelope moves with it —
    [expand_limit] is an explicit-path guard the fully symbolic rung
    does not consult (see {!Rounde.rbar}), so a tiny limit that stops
    the explicit search at step 0 may let the symbolic one run on. *)
val search :
  ?max_steps:int -> ?expand_limit:float -> ?pool:Parallel.Pool.t ->
  ?zdd:bool -> Problem.t -> outcome
