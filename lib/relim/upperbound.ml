type outcome = Solvable_in of int | Unknown_after of int

let search ?(max_steps = 4) ?expand_limit ?pool ?zdd (p : Problem.t) =
  Trace.with_span "upperbound.search"
    ~attrs:
      [ ("problem", p.Problem.name); ("max_steps", string_of_int max_steps) ]
  @@ fun () ->
  let verdict outcome =
    (match outcome with
    | Solvable_in k ->
        Trace.instant "upperbound.verdict"
          ~attrs:[ ("outcome", "solvable_in"); ("steps", string_of_int k) ]
    | Unknown_after k ->
        Trace.instant "upperbound.verdict"
          ~attrs:[ ("outcome", "unknown_after"); ("steps", string_of_int k) ]);
    outcome
  in
  let rec go p steps =
    if Zeroround.solvable_arbitrary_ports ?pool p <> None then
      verdict (Solvable_in steps)
    else if steps >= max_steps then verdict (Unknown_after steps)
    else begin
      Trace.instant "upperbound.step" ~attrs:[ ("steps", string_of_int steps) ];
      match Rounde.step ?expand_limit ?pool ?zdd p with
      | { Rounde.problem = next; _ } -> go (Simplify.normalize next) (steps + 1)
      | exception (Budget.Budget_exceeded _ | Failure _) ->
          verdict (Unknown_after steps)
    end
  in
  go (Simplify.normalize p) 0
