type outcome = Solvable_in of int | Unknown_after of int

let search ?(max_steps = 4) ?expand_limit ?pool p =
  let rec go p steps =
    if Zeroround.solvable_arbitrary_ports ?pool p <> None then Solvable_in steps
    else if steps >= max_steps then Unknown_after steps
    else
      match Rounde.step ?expand_limit ?pool p with
      | { Rounde.problem = next; _ } -> go (Simplify.normalize next) (steps + 1)
      | exception Failure _ -> Unknown_after steps
  in
  go (Simplify.normalize p) 0
