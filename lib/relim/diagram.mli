(** Label-strength diagrams (Section 2.3 of the paper).

    Label [A] is {e at least as strong as} [B] w.r.t. a constraint 𝒞 if
    replacing one occurrence of [B] by [A] in any configuration of 𝒞
    yields a configuration of 𝒞.  The edge diagram uses the edge
    constraint, the node diagram the node constraint (Figs. 1, 4, 5). *)

type t

type label = Labelset.label

(** Strength preorder w.r.t. the edge constraint.  Exact (edge
    constraints have arity 2 and expand trivially). *)
val edge_diagram : Problem.t -> t

(** Strength preorder w.r.t. the node constraint.  Exact when the node
    constraint expands within [expand_limit] concrete configurations
    (default 200_000); otherwise falls back to a sound condensed-level
    approximation that may miss relations (never invents them).
    [exact_node_diagram] reports which case applied. *)
val node_diagram : ?expand_limit:float -> Problem.t -> t

val is_exact : t -> bool

val alphabet : t -> Alphabet.t

(** [geq d a b] — [a] is at least as strong as [b]. *)
val geq : t -> label -> label -> bool

(** Strictly stronger. *)
val gt : t -> label -> label -> bool

val equivalent : t -> label -> label -> bool

(** Labels at least as strong as [l], excluding [l] itself; this is the
    "successors" notion used for right-closedness. *)
val above : t -> label -> Labelset.t

(** Is the set closed under taking stronger labels? *)
val is_right_closed : t -> Labelset.t -> bool

(** All non-empty right-closed subsets of the alphabet, in increasing
    bitset order.  Enumerated as the order ideals of the class
    condensation of the strength relation — only right-closed sets are
    ever constructed, so the cost is proportional to the output, never
    to 2^n, and there is no label cap.
    @param limit hard budget on the number of sets (default 5·10⁶).
    @raise Budget.Budget_exceeded when the budget is exceeded. *)
val right_closed_sets : ?limit:int -> t -> Labelset.t list

(** Iterator form of {!right_closed_sets}: calls [f] on every non-empty
    right-closed set without materializing the list, in unspecified
    order.  Raise from [f] (e.g. [Exit]) to stop early. *)
val iter_right_closed : ?limit:int -> t -> (Labelset.t -> unit) -> unit

(** The same family as {!right_closed_sets}, but as one hash-consed
    ZDD instead of an explicit list: node count is typically
    logarithmic in the member count (a [k]-antichain's [2^k - 1]
    up-sets take [k] nodes), and cardinality, membership, restriction
    and maximal-element extraction run on the compressed form.  The
    returned manager owns the family; keep them together.
    @param node_limit unique-table budget (default 2·10⁶).
    @raise Budget.Budget_exceeded with the realized node count if the
    construction overruns [node_limit]. *)
val right_closed_family : ?node_limit:int -> t -> Zdd.manager * Zdd.t

(** [|right_closed_sets d|] computed on the compressed family — no
    enumeration, no [limit]: the count the explicit path reports when
    it completes, available even where materializing the list would
    trip its budget.  Used to keep the [rc_sets] counter
    engine-independent on the fully symbolic R̄ path.
    @raise Budget.Budget_exceeded as {!right_closed_family}. *)
val right_closed_count : ?node_limit:int -> t -> int

(** ZDD-backed variant of {!iter_right_closed}: enumerates the same
    sets in increasing bitset order (the diagram's canonical member
    order — no sort needed).  [limit] budgets the number of sets
    produced, with the same trip-at-[limit+1] convention and a
    realized count in the [Budget_exceeded] payload. *)
val iter_right_closed_zdd :
  ?limit:int -> ?node_limit:int -> t -> (Labelset.t -> unit) -> unit

(** ZDD-backed variant of {!right_closed_sets}; byte-identical result
    on every diagram (pinned by the equivalence suite in
    [test/zdd]). *)
val right_closed_sets_zdd :
  ?limit:int -> ?node_limit:int -> t -> Labelset.t list

(** Minimal (weakest) elements of a set: members with no strictly
    weaker member in the set. *)
val minimal_elements : t -> Labelset.t -> Labelset.t

(** Transitively-reduced edges (weaker, stronger) for display, matching
    the paper's figures.  Equivalent labels produce a two-cycle. *)
val hasse_edges : t -> (label * label) list

val pp : Format.formatter -> t -> unit

(** GraphViz rendering of the Hasse reduction (edges point from weaker
    to stronger labels, as in the paper's figures). *)
val to_dot : ?name:string -> t -> string
