(** Node / edge constraints: finite collections of condensed
    configurations, all of the same arity. *)

type t

(** [make lines] deduplicates and sorts.
    @raise Invalid_argument if lines disagree on arity or the list is
    empty. *)
val make : Line.t list -> t

val lines : t -> Line.t list

val arity : t -> int

val equal : t -> t -> bool

val compare : t -> t -> int

(** Labels mentioned anywhere. *)
val support : t -> Labelset.t

(** Is the concrete configuration allowed, i.e. contained in some
    line? *)
val mem : t -> Multiset.t -> bool

(** [covers c line] — is every concrete configuration of [line] allowed
    by [c]?  Sound and complete only line-by-line (a configuration
    family split across several lines of [c] is reported as not
    covered); exact when used with concrete lines. *)
val covers_line : t -> Line.t -> bool

(** Estimated number of concrete configurations (with multiplicity
    across overlapping lines). *)
val expansion_estimate : t -> float

(** All distinct concrete configurations, deduplicated.
    @raise Budget.Budget_exceeded if the estimate exceeds [limit]
    (default 5e6). *)
val expand : ?limit:float -> t -> Multiset.t list

val map_lines : (Line.t -> Line.t) -> t -> t

val pp : Alphabet.t -> Format.formatter -> t -> unit

val to_string : Alphabet.t -> t -> string
