type label = Labelset.label

let multiset_relaxes ~leq y z =
  let ys = Array.of_list (Multiset.counts y) in
  let zs = Array.of_list (Multiset.counts z) in
  Util.transport_feasible
    ~supply:(Array.map snd ys)
    ~demand:(Array.map snd zs)
    ~allowed:(fun i j -> leq (fst ys.(i)) (fst zs.(j)))

(* Group-level transport against a (possibly disjunctive) line.  This is
   exact: a transport assignment sends each [y] slot to a group slot
   whose set contains some [z ≥ y], and every slot of a group picks its
   own witness label independently, so the witnesses assemble into a
   concrete configuration of the line — and conversely any concrete
   witness configuration induces a feasible transport.  Kept internal:
   the exported entry points commit to concrete lines (see the mli), and
   [constr_relaxes] goes through here so that right-closed relaxation
   targets never have to be expanded. *)
let relaxes_into_groups ~leq y line =
  let ys = Array.of_list (Multiset.counts y) in
  let groups = Array.of_list (Line.groups line) in
  Util.transport_feasible
    ~supply:(Array.map snd ys)
    ~demand:(Array.map snd groups)
    ~allowed:(fun i j ->
      Labelset.exists (fun z -> leq (fst ys.(i)) z) (fst groups.(j)))

let line_is_concrete line =
  List.for_all (fun (s, _) -> Labelset.cardinal s = 1) (Line.groups line)

let require_concrete ~what c =
  if not (List.for_all line_is_concrete (Constr.lines c)) then
    invalid_arg
      (what
     ^ ": constraint has a non-concrete line (disjunction group); expand it \
        first or use constr_relaxes")

let multiset_relaxes_into_constr ~leq y c =
  require_concrete ~what:"Relax.multiset_relaxes_into_constr" c;
  List.exists (relaxes_into_groups ~leq y) (Constr.lines c)

let constr_relaxes ?(limit = 2e6) ~leq a b =
  let configs = Constr.expand ~limit a in
  let lines = Constr.lines b in
  List.for_all
    (fun y -> List.exists (relaxes_into_groups ~leq y) lines)
    configs

let label_equal (a : label) (b : label) = a = b
