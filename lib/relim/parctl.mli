(** Engine-wide parallelism control.

    Every parallel hot path in the engine ([Rounde.rbar]'s box search
    and maximal-box filter, [Zeroround.solvable_arbitrary_ports]'s
    Bron–Kerbosch branch fan-out) takes an optional [?pool] argument.
    When the argument is omitted the path uses the process-wide default
    pool, whose domain count is read once from the [RELIM_DOMAINS]
    environment variable (unset, unparseable or [<= 1] means
    sequential).  Results are identical for every domain count — the
    variable is purely a performance knob, safe to set for an entire
    test run. *)

(** Name of the environment variable: ["RELIM_DOMAINS"]. *)
val env_var : string

(** Domain count requested by the environment ([>= 1]; [1] when the
    variable is unset or invalid). *)
val domains_from_env : unit -> int

(** The process-wide default pool.  Created lazily from
    {!domains_from_env} on first use. *)
val default : unit -> Parallel.Pool.t

(** [resolve pool] is [pool] if given, otherwise {!default} [()]. *)
val resolve : Parallel.Pool.t option -> Parallel.Pool.t
