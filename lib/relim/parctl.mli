(** Engine-wide parallelism control.

    Every parallel hot path in the engine ([Rounde.rbar]'s box search
    and maximal-box filter, [Zeroround.solvable_arbitrary_ports]'s
    Bron–Kerbosch branch fan-out) takes an optional [?pool] argument.
    When the argument is omitted the path uses the process-wide default
    pool, whose domain count is read once from the [RELIM_DOMAINS]
    environment variable (unset, unparseable or [<= 1] means
    sequential).  Results are identical for every domain count — the
    variable is purely a performance knob, safe to set for an entire
    test run. *)

(** Name of the environment variable: ["RELIM_DOMAINS"]. *)
val env_var : string

(** How a raw environment value reads: absent, a valid positive domain
    count, or malformed (non-integer, zero or negative — the original
    string is kept for the warning). *)
type parsed = Unset | Domains of int | Malformed of string

(** Pure classification of [Sys.getenv_opt env_var]'s result; no
    warning side effect. *)
val parse_env : string option -> parsed

(** Domain count requested by the environment ([>= 1]; [1] when the
    variable is unset or invalid).  A malformed value — [Malformed] per
    {!parse_env} — additionally emits a single warning through
    {!warn_hook} for the whole process lifetime: the user asked for
    parallelism and is silently getting none. *)
val domains_from_env : unit -> int

(** Warning sink used by {!domains_from_env}; defaults to printing the
    message on stderr.  Tests may replace it to capture the warning. *)
val warn_hook : (string -> unit) ref

(** Test-only: forget that the once-per-process warnings (domain count
    and ZDD toggle alike) were already emitted, so the next malformed
    read warns again. *)
val reset_warned : unit -> unit

(** {1 ZDD path toggle}

    [Rounde]'s box search and maximal-box filter can run on the
    hash-consed family representation from [lib/zdd] instead of
    explicit set lists.  The result is byte-identical either way; the
    toggle is purely a performance/capacity knob, safe to set for an
    entire run. *)

(** Name of the environment variable: ["RELIM_ZDD"]. *)
val zdd_env_var : string

type zdd_parsed = Zdd_unset | Zdd_enabled of bool | Zdd_malformed of string

(** Pure classification of [Sys.getenv_opt zdd_env_var]'s result; no
    warning side effect. *)
val parse_zdd_env : string option -> zdd_parsed

(** Whether the environment enables the ZDD path (off when unset).  A
    malformed value warns once through {!warn_hook} and reads as
    off. *)
val zdd_from_env : unit -> bool

(** [resolve_zdd zdd] is [b] for [Some b], otherwise
    {!zdd_from_env}[ ()] — the resolution every [?zdd] optional
    argument in [Rounde] goes through. *)
val resolve_zdd : bool option -> bool

(** The process-wide default pool.  Created lazily from
    {!domains_from_env} on first use. *)
val default : unit -> Parallel.Pool.t

(** [resolve pool] is [pool] if given, otherwise {!default} [()]. *)
val resolve : Parallel.Pool.t option -> Parallel.Pool.t
