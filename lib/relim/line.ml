type label = Labelset.label

(* Sorted by symbol set, counts strictly positive, sets non-empty. *)
type t = (Labelset.t * int) array

let make pairs =
  List.iter
    (fun (s, c) ->
      if Labelset.is_empty s then invalid_arg "Line.make: empty symbol set";
      if c < 0 then invalid_arg "Line.make: negative count";
      if c = 0 then
        invalid_arg "Line.make: zero count (dropping the group would change the arity)")
    pairs;
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (s, c) ->
      let key = Labelset.to_bits s in
      let cur = try Hashtbl.find tbl key with Not_found -> 0 in
      Hashtbl.replace tbl key (cur + c))
    pairs;
  let items =
    Hashtbl.fold
      (fun key c acc -> if c > 0 then (Labelset.of_bits key, c) :: acc else acc)
      tbl []
  in
  Array.of_list
    (List.sort (fun (a, _) (b, _) -> Labelset.compare a b) items)

let groups l = Array.to_list l

let arity l = Array.fold_left (fun acc (_, c) -> acc + c) 0 l

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) = compare a b

let hash (l : t) = Hashtbl.hash l

let of_multiset m =
  make (List.map (fun (l, c) -> (Labelset.singleton l, c)) (Multiset.counts m))

let to_multiset l =
  if Array.for_all (fun (s, _) -> Labelset.cardinal s = 1) l then
    Some (Multiset.of_counts (List.map (fun (s, c) -> (Labelset.choose s, c)) (groups l)))
  else None

let support l = Array.fold_left (fun acc (s, _) -> Labelset.union acc s) Labelset.empty l

let contains l m =
  let sources = Multiset.counts m in
  let supply = Array.of_list (List.map snd sources) in
  let labels = Array.of_list (List.map fst sources) in
  let demand = Array.map snd l in
  Util.transport_feasible ~supply ~demand ~allowed:(fun i j ->
      Labelset.mem labels.(i) (fst l.(j)))

let contains_partial l m =
  let slack = arity l - Multiset.size m in
  if slack < 0 then false
  else begin
    (* Add a slack source that may be routed anywhere. *)
    let sources = Multiset.counts m in
    let supply = Array.of_list (List.map snd sources @ [ slack ]) in
    let labels = Array.of_list (List.map fst sources) in
    let n_real = Array.length labels in
    let demand = Array.map snd l in
    Util.transport_feasible ~supply ~demand ~allowed:(fun i j ->
        i = n_real || Labelset.mem labels.(i) (fst l.(j)))
  end

let covers outer inner =
  let supply = Array.map snd inner in
  let demand = Array.map snd outer in
  Util.transport_feasible ~supply ~demand ~allowed:(fun i j ->
      Labelset.subset (fst inner.(i)) (fst outer.(j)))

let expansion_estimate l =
  Array.fold_left
    (fun acc (s, c) -> acc *. Util.choose_float (c + Labelset.cardinal s - 1) c)
    1. l

let expand l f =
  (* For each group, enumerate distributions of its count over its
     labels; combine distributions across groups. *)
  let groups = Array.to_list l in
  let rec go acc = function
    | [] -> f (Multiset.of_counts acc)
    | (s, c) :: rest ->
        let labels = Array.of_list (Labelset.elements s) in
        Util.compositions c (Array.length labels) (fun comp ->
            let picked = ref acc in
            Array.iteri
              (fun i cnt -> if cnt > 0 then picked := (labels.(i), cnt) :: !picked)
              comp;
            go !picked rest)
  in
  go [] groups

let map_syms f l = make (List.map (fun (s, c) -> (f s, c)) (groups l))

let pp alpha fmt l =
  Format.pp_open_hbox fmt ();
  let pp_group fmt (s, c) =
    let base =
      if Labelset.cardinal s = 1 then Alphabet.name alpha (Labelset.choose s)
      else begin
        let names = List.map (Alphabet.name alpha) (Labelset.elements s) in
        let sep = if List.for_all (fun n -> String.length n = 1) names then "" else " " in
        "[" ^ String.concat sep names ^ "]"
      end
    in
    if c = 1 then Format.pp_print_string fmt base
    else Format.fprintf fmt "%s^%d" base c
  in
  Format.pp_print_list ~pp_sep:Format.pp_print_space pp_group fmt (groups l);
  Format.pp_close_box fmt ()

let to_string alpha l = Format.asprintf "%a" (pp alpha) l
