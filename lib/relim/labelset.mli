(** Sets of labels, represented as integer bitsets.

    Labels are small non-negative integers (indices into an
    {!Alphabet.t}).  Alphabets in the round-elimination framework stay
    small — the paper's problems use at most 8 labels — so a single
    OCaml [int] comfortably holds any set we ever need.  The hard cap
    is {!max_label} labels per alphabet. *)

type t = private int

type label = int

(** Maximum number of distinct labels supported (bits in an [int],
    minus a safety margin). *)
val max_label : int

val empty : t

val is_empty : t -> bool

(** [full n] is the set of all labels [0 .. n-1].
    @raise Invalid_argument if [n < 0] or [n > max_label]. *)
val full : int -> t

(** @raise Invalid_argument if the label is out of range. *)
val singleton : label -> t

val mem : label -> t -> bool

val add : label -> t -> t

val remove : label -> t -> t

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t

val subset : t -> t -> bool

(** [strict_subset a b] is [subset a b && not (equal a b)]. *)
val strict_subset : t -> t -> bool

val equal : t -> t -> bool

(** Total order, suitable for functorized sets/maps.  The order is the
    numeric order of the underlying bitset; it refines cardinality only
    incidentally and carries no semantic meaning. *)
val compare : t -> t -> int

val cardinal : t -> int

(** [inter_cardinal a b = cardinal (inter a b)], without the
    intermediate set.  One AND plus a popcount loop — used on the hot
    path of the Bron–Kerbosch pivot choice. *)
val inter_cardinal : t -> t -> int

(** Elements in increasing label order. *)
val elements : t -> label list

val of_list : label list -> t

val fold : (label -> 'a -> 'a) -> t -> 'a -> 'a

val iter : (label -> unit) -> t -> unit

val for_all : (label -> bool) -> t -> bool

val exists : (label -> bool) -> t -> bool

val filter : (label -> bool) -> t -> t

(** [choose s] is the smallest label of [s].
    @raise Not_found on the empty set. *)
val choose : t -> label

(** All non-empty subsets of [s], in increasing bitset order. *)
val nonempty_subsets : t -> t list

(** Hash usable with [Hashtbl]. *)
val hash : t -> int

(** Unsafe embedding of a raw bitset; exposed for hashing/serialization
    helpers inside the library. *)
val of_bits : int -> t

val to_bits : t -> int
