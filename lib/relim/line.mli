(** Condensed configurations.

    The paper writes configurations as regular expressions such as
    [M^(Δ-x) X^x] or [\[PQ\] \[OUABPQ\]^(Δ-1)]: each position holds a
    {e disjunction} of labels, and a configuration with disjunctions
    stands for the collection of all concrete configurations obtained
    by picking one label per position.  A [Line.t] is such a condensed
    configuration: a multiset of (label-set, multiplicity) groups. *)

type t

type label = Labelset.label

(** [make groups] merges equal symbol sets and sorts.
    @raise Invalid_argument on empty symbol sets or non-positive counts
    (a silently dropped zero-count group would change the arity). *)
val make : (Labelset.t * int) list -> t

(** Groups in canonical order, counts positive, symbol sets distinct. *)
val groups : t -> (Labelset.t * int) list

(** Total multiplicity, i.e. the configuration length. *)
val arity : t -> int

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

(** A concrete multiset viewed as a line of singleton groups. *)
val of_multiset : Multiset.t -> t

(** [Some m] iff every group is a singleton. *)
val to_multiset : t -> Multiset.t option

(** Set of labels mentioned anywhere in the line. *)
val support : t -> Labelset.t

(** [contains l m] — is the concrete configuration [m] one of the
    configurations denoted by [l]?  (Transportation feasibility: every
    element of [m] must be routed to a group whose symbol set contains
    it, filling each group exactly.) *)
val contains : t -> Multiset.t -> bool

(** [contains_partial l m] — can the concrete multiset [m] (of size at
    most [arity l]) be extended to a configuration denoted by [l]?
    Used to check boundary nodes of degree smaller than Δ. *)
val contains_partial : t -> Multiset.t -> bool

(** [covers outer inner] — is every concrete configuration of [inner]
    also one of [outer]?  Decided group-wise: route [inner]'s groups
    into [outer]'s groups with symbol-set inclusion.  This is sound and
    complete for coverage by a {e single} line. *)
val covers : t -> t -> bool

(** Number of concrete configurations denoted (upper estimate as a
    float, used to guard expansions). *)
val expansion_estimate : t -> float

(** Enumerate all concrete configurations denoted by the line.  Each
    distinct multiset may be produced more than once when groups share
    labels; deduplicate on the consumer side if needed. *)
val expand : t -> (Multiset.t -> unit) -> unit

(** [map_syms f l] applies [f] to every group symbol set.
    @raise Invalid_argument if [f] produces an empty set. *)
val map_syms : (Labelset.t -> Labelset.t) -> t -> t

val pp : Alphabet.t -> Format.formatter -> t -> unit

val to_string : Alphabet.t -> t -> string
