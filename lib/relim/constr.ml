type t = { arity : int; lines : Line.t list }

let make lines =
  match lines with
  | [] -> invalid_arg "Constr.make: empty constraint"
  | first :: _ ->
      let arity = Line.arity first in
      List.iter
        (fun l ->
          if Line.arity l <> arity then
            invalid_arg "Constr.make: lines of different arity")
        lines;
      let lines = List.sort_uniq Line.compare lines in
      { arity; lines }

let lines c = c.lines

let arity c = c.arity

let equal a b = a.arity = b.arity && List.equal Line.equal a.lines b.lines

let compare a b =
  match compare a.arity b.arity with
  | 0 -> List.compare Line.compare a.lines b.lines
  | n -> n

let support c =
  List.fold_left (fun acc l -> Labelset.union acc (Line.support l)) Labelset.empty c.lines

let mem c m = List.exists (fun l -> Line.contains l m) c.lines

let covers_line c line = List.exists (fun l -> Line.covers l line) c.lines

let expansion_estimate c =
  List.fold_left (fun acc l -> acc +. Line.expansion_estimate l) 0. c.lines

let expand ?(limit = 5e6) c =
  if expansion_estimate c > limit then
    Budget.exceeded ~budget:"Constr.expand: constraint expansion" ~limit;
  let tbl = Hashtbl.create 1024 in
  List.iter
    (fun line ->
      Line.expand line (fun m ->
          if not (Hashtbl.mem tbl m) then Hashtbl.add tbl m ()))
    c.lines;
  Hashtbl.fold (fun m () acc -> m :: acc) tbl []

let map_lines f c = make (List.map f c.lines)

let pp alpha fmt c =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut (Line.pp alpha) fmt c.lines

let to_string alpha c = Format.asprintf "@[<v>%a@]" (pp alpha) c
