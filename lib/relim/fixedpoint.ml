type verdict =
  | Fixed_point of Problem.t * (Labelset.label * Labelset.label) list
  | Reaches_fixed_point of int * Problem.t
  | No_fixed_point_found of Problem.t

type stats = {
  mutable steps_applied : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable hash_conflicts : int;
  mutable step_time_s : float;
  mutable normalize_time_s : float;
}

let stats =
  {
    steps_applied = 0;
    cache_hits = 0;
    cache_misses = 0;
    hash_conflicts = 0;
    step_time_s = 0.;
    normalize_time_s = 0.;
  }

let reset_stats () =
  stats.steps_applied <- 0;
  stats.cache_hits <- 0;
  stats.cache_misses <- 0;
  stats.hash_conflicts <- 0;
  stats.step_time_s <- 0.;
  stats.normalize_time_s <- 0.

(* Fired with the fixed problem whenever [detect] confirms a fixed
   point (immediate or eventual).  Installed by [Certify.Hooks], whose
   checker replays one sequential speedup step from scratch — so a
   claim established entirely from the memo cache is still re-verified
   against a fresh computation. *)
let fixed_point_observer : (Problem.t -> unit) option ref = ref None

let notify_fixed_point p =
  match !fixed_point_observer with None -> () | Some f -> f p

(* Memo of normalized problem ↦ normalized speedup result, bucketed by
   the renaming-invariant hash; within a bucket candidates are compared
   up to isomorphism (cheap exact check first).  Since [R̄ ∘ R] commutes
   with label renaming, the cached result of an isomorphic input is a
   valid representative of the step result's isomorphism class — which
   is all fixed-point detection ever inspects. *)
let memo : (int, (Problem.t * Problem.t) list ref) Hashtbl.t = Hashtbl.create 64

let clear_cache () = Hashtbl.reset memo

let same_problem (a : Problem.t) (b : Problem.t) =
  (Alphabet.equal a.alpha b.alpha
   && Constr.equal a.node b.node && Constr.equal a.edge b.edge)
  || Iso.equal_up_to_renaming a b

(* Scan a bucket for an entry isomorphic to [p], counting the bucket
   entries that share [p]'s invariant hash but fail the isomorphism
   check.  [Iso.invariant_hash] is only ~64 bits of structure folded
   through [Hashtbl.hash]'s bounded traversal, so genuine collisions
   between non-isomorphic problems occur (see the engineered pair in
   the regression tests); trusting the hash alone would silently serve
   the wrong step result.  The conflict counter makes every such
   near-miss observable in [stats] and in the trace. *)
let bucket_find (p : Problem.t) entries =
  let rec scan skipped = function
    | [] ->
        stats.hash_conflicts <- stats.hash_conflicts + skipped;
        None
    | (q, next) :: rest ->
        if same_problem q p then begin
          stats.hash_conflicts <- stats.hash_conflicts + skipped;
          Some next
        end
        else scan (skipped + 1) rest
  in
  scan 0 entries

let sample_counters () =
  Trace.counters
    [
      ("fixedpoint.steps_applied", stats.steps_applied);
      ("fixedpoint.cache_hits", stats.cache_hits);
      ("fixedpoint.cache_misses", stats.cache_misses);
      ("fixedpoint.hash_conflicts", stats.hash_conflicts);
    ]

let step_normalized ?expand_limit ?pool (p : Problem.t) =
  Trace.with_span "fixedpoint.step"
    ~attrs:[ ("problem", p.Problem.name) ]
  @@ fun () ->
  Fun.protect ~finally:sample_counters @@ fun () ->
  stats.steps_applied <- stats.steps_applied + 1;
  let key = Iso.invariant_hash p in
  let bucket =
    match Hashtbl.find_opt memo key with
    | Some b -> b
    | None ->
        let b = ref [] in
        Hashtbl.add memo key b;
        b
  in
  match bucket_find p !bucket with
  | Some next ->
      stats.cache_hits <- stats.cache_hits + 1;
      next
  | None ->
      stats.cache_misses <- stats.cache_misses + 1;
      (* Wall time, not CPU time: the step may fan out over domains. *)
      let t0 = Unix.gettimeofday () in
      let { Rounde.problem = next; _ } = Rounde.step ?expand_limit ?pool p in
      let t1 = Unix.gettimeofday () in
      let next = Simplify.normalize next in
      let t2 = Unix.gettimeofday () in
      stats.normalize_time_s <- stats.normalize_time_s +. (t2 -. t1);
      stats.step_time_s <- stats.step_time_s +. (t2 -. t0);
      bucket := (p, next) :: !bucket;
      next

let detect ?(max_steps = 5) ?expand_limit ?pool (p : Problem.t) =
  Trace.with_span "fixedpoint.detect"
    ~attrs:
      [ ("problem", p.Problem.name); ("max_steps", string_of_int max_steps) ]
  @@ fun () ->
  let p0 = Simplify.normalize p in
  let first = step_normalized ?expand_limit ?pool p0 in
  match Iso.find_renaming first p0 with
  | Some assoc ->
      notify_fixed_point p0;
      Fixed_point (p0, assoc)
  | None ->
      (* [i] counts the speedup steps applied so far, including the one
         performed by the current iteration: the unrolled first step
         was number 1, so the loop starts at 2. *)
      let rec iterate prev i =
        if i > max_steps then No_fixed_point_found prev
        else begin
          let next = step_normalized ?expand_limit ?pool prev in
          if Iso.equal_up_to_renaming next prev then begin
            notify_fixed_point prev;
            Reaches_fixed_point (i, prev)
          end
          else iterate next (i + 1)
        end
      in
      iterate first 2

let lower_bound_statement verdict =
  let from_problem p =
    if Zeroround.solvable_arbitrary_ports p = None then
      Some
        (Printf.sprintf
           "problem %s is a non-trivial fixed point: Omega(log n) deterministic \
            and Omega(log log n) randomized LOCAL lower bounds"
           p.Problem.name)
    else None
  in
  match verdict with
  | Fixed_point (p, _) | Reaches_fixed_point (_, p) -> from_problem p
  | No_fixed_point_found _ -> None
