(** Fixed-point detection for round elimination.

    If a non-0-round-solvable problem Π satisfies [R̄(R(Π)) ≅ Π] (after
    normalization), then no finite chain of speedup steps ever reaches
    a 0-round-solvable problem, which by the standard argument yields
    Ω(log n) deterministic and Ω(log log n) randomized lower bounds in
    the LOCAL model (the "fixed points" technique of Section 1.2; the
    canonical example is sinkless orientation [Brandt et al. '16]). *)

type verdict =
  | Fixed_point of Problem.t * (Labelset.label * Labelset.label) list
      (** [R̄(R(Π))] is isomorphic to Π (normalized); the witnessing
          renaming maps labels of the speedup result to labels of the
          normalized input, which is returned. *)
  | Reaches_fixed_point of int * Problem.t
      (** [Reaches_fixed_point (i, p)]: iterating the speedup step
          stabilized; [i] is the exact number of [R̄ ∘ R] applications
          performed, and [p] — the fixed problem — is the result of
          [i - 1] of them (the [i]-th application confirmed [p ≅
          step p]).  So [i >= 2] always. *)
  | No_fixed_point_found of Problem.t
      (** Not stabilized within the step budget; the last problem
          reached is returned. *)

(** [detect ?normalize_first ?max_steps ?expand_limit p] iterates
    [R̄ ∘ R] (normalizing after each step) looking for stabilization up
    to renaming.

    Speedup results are memoized across calls in a process-global
    cache keyed by the normalized problem up to isomorphism
    ({!Iso.invariant_hash} buckets + isomorphism check), so repeated
    detection over a family of related problems reuses work.  A cache
    hit may return an isomorphic representative of the step result
    rather than the structurally identical problem — detection only
    ever compares up to renaming, so verdicts are unaffected.  The
    cache ignores [expand_limit] (memoized values are limit-independent
    results of successful steps) and [pool] (results are identical for
    every domain count, so the pool is purely a performance knob; it is
    passed through to {!Rounde.step}, defaulting to {!Parctl.default}).
    @raise Budget.Budget_exceeded if a step exceeds the engine's
    budgets. *)
val detect :
  ?max_steps:int -> ?expand_limit:float -> ?pool:Parallel.Pool.t ->
  Problem.t -> verdict

(** Counters for the memoized driver: logical step applications
    (including cache hits), cache hits/misses, and wall seconds spent in
    uncached steps (wall, not CPU: steps may fan out over domains).  [step_time_s] covers [Rounde.step] plus the
    subsequent [Simplify.normalize]; [normalize_time_s] is the
    normalization share of it. *)
type stats = {
  mutable steps_applied : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable hash_conflicts : int;
      (** Bucket entries whose {!Iso.invariant_hash} matched the query
          but which failed the in-bucket isomorphism check — i.e. hash
          collisions between non-isomorphic problems that the cache
          survived rather than trusted.  Also mirrored into the trace
          as [fixedpoint.hash_conflicts]. *)
  mutable step_time_s : float;
  mutable normalize_time_s : float;
}

val stats : stats

val reset_stats : unit -> unit

(** Drop all memoized speedup results. *)
val clear_cache : unit -> unit

(** Certificate emission hook.  When set, it is invoked with the fixed
    problem each time {!detect} confirms a fixed point — immediate
    ([Fixed_point]) or eventual ([Reaches_fixed_point]) — before the
    verdict is returned.  Intended for the independent re-checkers in
    [Certify.Hooks], which replay one sequential speedup step from
    scratch, bypassing the memo cache.  [None] by default. *)
val fixed_point_observer : (Problem.t -> unit) option ref

(** Convenience: [Some (det, rand)] lower-bound statement strings when
    a fixed point (immediate or eventual) was found and the fixed
    problem is not 0-round solvable under arbitrary ports. *)
val lower_bound_statement : verdict -> string option
