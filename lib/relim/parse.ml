let fail fmt = Printf.ksprintf failwith fmt

type token = { atom : string list; count : int }
(* [atom] is the list of label names of the group (singleton for a bare
   label), [count] its multiplicity. *)

let split_lines s =
  String.split_on_char '\n' s
  |> List.concat_map (String.split_on_char ';')
  |> List.map String.trim
  |> List.filter (fun l -> l <> "")

let bracket_content content =
  let content = String.trim content in
  if content = "" then fail "empty disjunction []";
  String.iter
    (fun c ->
      if c = '^' || c = '[' then
        fail "character %C not allowed inside a [...] group (in %S)" c content)
    content;
  if String.contains content ' ' then
    String.split_on_char ' ' content |> List.filter (fun s -> s <> "")
  else List.init (String.length content) (fun i -> String.make 1 content.[i])

(* Tokenize one configuration line into groups. *)
let tokenize line_str =
  let n = String.length line_str in
  let tokens = ref [] in
  let i = ref 0 in
  let read_count () =
    (* Parse an optional ^k suffix at position !i. *)
    if !i < n && line_str.[!i] = '^' then begin
      incr i;
      let start = !i in
      while !i < n && line_str.[!i] >= '0' && line_str.[!i] <= '9' do
        incr i
      done;
      if !i = start then fail "expected integer after ^ in %S" line_str;
      let count = int_of_string (String.sub line_str start (!i - start)) in
      if count = 0 then
        fail "zero count ^0 in %S (a dropped group would silently change the arity)"
          line_str;
      count
    end
    else 1
  in
  while !i < n do
    let c = line_str.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c = '[' then begin
      let close =
        match String.index_from_opt line_str !i ']' with
        | Some j -> j
        | None -> fail "unclosed [ in %S" line_str
      in
      let content = String.sub line_str (!i + 1) (close - !i - 1) in
      i := close + 1;
      let count = read_count () in
      tokens := { atom = bracket_content content; count } :: !tokens
    end
    else begin
      let start = !i in
      while
        !i < n
        &&
        let c = line_str.[!i] in
        c <> ' ' && c <> '\t' && c <> '[' && c <> ']' && c <> '^'
      do
        incr i
      done;
      if !i = start then fail "unexpected character %C in %S" c line_str;
      let name = String.sub line_str start (!i - start) in
      let count = read_count () in
      tokens := { atom = [ name ]; count } :: !tokens
    end
  done;
  List.rev !tokens

let scan_labels s =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun line_str ->
      List.iter
        (fun { atom; _ } ->
          List.iter
            (fun name ->
              if not (Hashtbl.mem seen name) then begin
                Hashtbl.add seen name ();
                order := name :: !order
              end)
            atom)
        (tokenize line_str))
    (split_lines s);
  List.rev !order

let line alpha s =
  let groups =
    List.map
      (fun { atom; count } ->
        let set =
          List.fold_left
            (fun acc name ->
              match Alphabet.find alpha name with
              | l -> Labelset.add l acc
              | exception Not_found -> fail "unknown label %S in %S" name s)
            Labelset.empty atom
        in
        (set, count))
      (tokenize s)
  in
  if groups = [] then fail "empty configuration";
  Line.make groups

let constr alpha ~arity s =
  let lines_str = split_lines s in
  if lines_str = [] then fail "empty constraint";
  let lines = List.map (line alpha) lines_str in
  List.iter2
    (fun l str ->
      if Line.arity l <> arity then
        fail "configuration %S has arity %d, expected %d" str (Line.arity l) arity)
    lines lines_str;
  Constr.make lines

let problem ~name ~node ~edge =
  let names = scan_labels node @ scan_labels edge in
  let names =
    List.fold_left (fun acc n -> if List.mem n acc then acc else n :: acc) [] names
    |> List.rev
  in
  let alpha = Alphabet.create names in
  let node_lines = List.map (line alpha) (split_lines node) in
  let delta =
    match node_lines with
    | [] -> fail "empty node constraint"
    | first :: _ -> Line.arity first
  in
  let node = constr alpha ~arity:delta node in
  let edge = constr alpha ~arity:2 edge in
  Problem.make ~name ~alpha ~node ~edge
