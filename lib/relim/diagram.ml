type label = Labelset.label

type t = { alpha : Alphabet.t; geq : bool array array; exact : bool }

let alphabet d = d.alpha

let is_exact d = d.exact

let geq d a b = d.geq.(a).(b)

let gt d a b = d.geq.(a).(b) && not d.geq.(b).(a)

let equivalent d a b = d.geq.(a).(b) && d.geq.(b).(a)

(* Compatibility matrix of an edge constraint: compat.(a).(b) iff the
   pair {a, b} is an allowed edge configuration. *)
let compat_matrix p =
  let n = Alphabet.size p.Problem.alpha in
  let compat = Array.make_matrix n n false in
  List.iter
    (fun line ->
      match Line.groups line with
      | [ (s, 2) ] ->
          Labelset.iter
            (fun a -> Labelset.iter (fun b -> compat.(a).(b) <- true) s)
            s
      | [ (s1, 1); (s2, 1) ] ->
          Labelset.iter
            (fun a ->
              Labelset.iter
                (fun b ->
                  compat.(a).(b) <- true;
                  compat.(b).(a) <- true)
                s2)
            s1
      | _ -> invalid_arg "Diagram: malformed edge line")
    (Constr.lines p.Problem.edge);
  compat

let edge_diagram p =
  let n = Alphabet.size p.Problem.alpha in
  let compat = compat_matrix p in
  let geq = Array.make_matrix n n false in
  (* a >= b iff N(b) subseteq N(a). *)
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      let ok = ref true in
      for c = 0 to n - 1 do
        if compat.(b).(c) && not compat.(a).(c) then ok := false
      done;
      geq.(a).(b) <- !ok
    done
  done;
  { alpha = p.Problem.alpha; geq; exact = true }

let node_diagram ?(expand_limit = 200_000.) p =
  let n = Alphabet.size p.Problem.alpha in
  let node = p.Problem.node in
  let geq = Array.make_matrix n n false in
  let exact = Constr.expansion_estimate node <= expand_limit in
  if exact then begin
    let tbl = Hashtbl.create 4096 in
    List.iter (fun m -> Hashtbl.replace tbl m ()) (Constr.expand node);
    let configs = Hashtbl.fold (fun m () acc -> m :: acc) tbl [] in
    for a = 0 to n - 1 do
      for b = 0 to n - 1 do
        geq.(a).(b) <-
          List.for_all
            (fun m ->
              (not (Multiset.mem b m))
              || Hashtbl.mem tbl (Multiset.replace_one ~remove:b ~add:a m))
            configs
      done
    done
  end
  else begin
    (* Condensed-level sound approximation: a >= b holds if, for every
       line L and every group of L containing b, the line obtained by
       substituting one slot of that group with {a} is covered by a
       single line of the constraint. May miss relations whose image
       family is split across several lines. *)
    let lines = Constr.lines node in
    for a = 0 to n - 1 do
      for b = 0 to n - 1 do
        geq.(a).(b) <-
          List.for_all
            (fun line ->
              List.for_all
                (fun (s, c) ->
                  if not (Labelset.mem b s) then true
                  else begin
                    let rest =
                      List.map
                        (fun (s', c') -> if Labelset.equal s' s then (s', c' - 1) else (s', c'))
                        (Line.groups line)
                      |> List.filter (fun (_, c') -> c' > 0)
                    in
                    let substituted =
                      Line.make ((Labelset.singleton a, 1) :: rest)
                    in
                    ignore c;
                    Constr.covers_line node substituted
                  end)
                (Line.groups line))
            lines
      done
    done
  end;
  { alpha = p.Problem.alpha; geq; exact }

let above d l =
  let n = Alphabet.size d.alpha in
  let acc = ref Labelset.empty in
  for a = 0 to n - 1 do
    if a <> l && d.geq.(a).(l) then acc := Labelset.add a !acc
  done;
  !acc

let is_right_closed d s =
  Labelset.for_all (fun l -> Labelset.subset (above d l) s) s

(* Order-ideal enumeration of the right-closed sets.

   A set is right-closed iff it is an up-set of the strength relation,
   and the up-sets of a relation coincide with the up-sets of its
   transitive closure — which matters because the condensed-level
   approximation of [node_diagram] can produce a non-transitive [geq].
   After closing, equivalence classes (mutually reachable labels) are
   all-or-nothing in any up-set, so the up-sets are exactly the unions
   of classes closed under "every strictly stronger class is also
   included".  A DFS over the classes in topological
   order (each class visited after every class above it) therefore
   constructs each right-closed set exactly once and never builds
   anything else: the cost is proportional to the number of sets
   produced, not to 2^n, and the old 22-label cap is gone. *)

type condensation = {
  class_members : Labelset.t array;  (* labels of each class *)
  class_above : Labelset.t array;
      (* strictly-above classes, as a set of class indices (closure) *)
  class_order : int array;  (* class indices, every class after its above *)
}

let condense d =
  let n = Alphabet.size d.alpha in
  (* Transitive closure of geq (reflexive by construction of both
     diagram builders; harmless if not). *)
  let reach = Array.init n (fun a -> Array.copy d.geq.(a)) in
  for mid = 0 to n - 1 do
    for a = 0 to n - 1 do
      if reach.(a).(mid) then
        for b = 0 to n - 1 do
          if reach.(mid).(b) then reach.(a).(b) <- true
        done
    done
  done;
  let class_of = Array.make n (-1) in
  let members = ref [] and k = ref 0 in
  for a = 0 to n - 1 do
    if class_of.(a) < 0 then begin
      let c = !k in
      incr k;
      let m = ref (Labelset.singleton a) in
      class_of.(a) <- c;
      for b = a + 1 to n - 1 do
        if class_of.(b) < 0 && reach.(a).(b) && reach.(b).(a) then begin
          class_of.(b) <- c;
          m := Labelset.add b !m
        end
      done;
      members := !m :: !members
    end
  done;
  let class_members = Array.of_list (List.rev !members) in
  let class_above =
    Array.mapi
      (fun c m ->
        let rep = Labelset.choose m in
        let acc = ref Labelset.empty in
        for a = 0 to n - 1 do
          if class_of.(a) <> c && reach.(a).(rep) then
            acc := Labelset.add class_of.(a) !acc
        done;
        !acc)
      class_members
  in
  (* In the condensation DAG the closed above-sets strictly shrink along
     edges, so sorting by |above| ascending is a topological order. *)
  let class_order = Array.init !k Fun.id in
  Array.sort
    (fun c c' ->
      compare (Labelset.cardinal class_above.(c)) (Labelset.cardinal class_above.(c')))
    class_order;
  { class_members; class_above; class_order }

let iter_right_closed ?(limit = 5_000_000) d f =
  let { class_members; class_above; class_order } = condense d in
  let k = Array.length class_members in
  let count = ref 0 in
  (* Include/exclude DFS along the topological order; a class may be
     included only when every class above it already is, so every leaf
     with a non-empty union is a distinct right-closed set. *)
  let rec go i included union =
    if i = k then begin
      if not (Labelset.is_empty union) then begin
        incr count;
        if !count > limit then
          Budget.exceeded
            ~budget:
              (Printf.sprintf
                 "Diagram.right_closed_sets: right-closed sets (realized %d)"
                 (!count - 1))
            ~limit:(float_of_int limit);
        f union
      end
    end
    else begin
      let c = class_order.(i) in
      go (i + 1) included union;
      if Labelset.subset class_above.(c) included then
        go (i + 1) (Labelset.add c included)
          (Labelset.union union class_members.(c))
    end
  in
  go 0 Labelset.empty Labelset.empty

let right_closed_sets ?limit d =
  let acc = ref [] in
  iter_right_closed ?limit d (fun s -> acc := s :: !acc);
  (* Increasing bitset order, matching (bit-exactly) the order the old
     [nonempty_subsets]-filter implementation produced. *)
  List.sort Labelset.compare !acc

(* --- ZDD-backed family representation ----------------------------- *)

(* Zdd budget trips carry their realized progress; re-raise them as the
   engine-wide typed budget error, with the realized count in the
   message (same convention as the explicit enumerator above). *)
let translate_zdd_limit f =
  try f ()
  with Zdd.Limit { what; limit; realized } ->
    Budget.exceeded
      ~budget:(Printf.sprintf "Diagram/%s (realized %d)" what realized)
      ~limit

(* The right-closed sets as one compressed family: start from the full
   powerset and, for every raw relation [a ≥ l], delete the members
   that contain [l] but not [a].  The up-sets of a relation coincide
   with the up-sets of its transitive closure, so filtering on the raw
   (possibly non-transitive, condensed-level) [geq] pairs is exact.
   The empty set is removed at the end, matching the explicit
   enumeration.  Canonicity makes the result independent of the filter
   order. *)
let right_closed_family ?node_limit d =
  translate_zdd_limit @@ fun () ->
  let n = Alphabet.size d.alpha in
  let mgr = Zdd.create ?node_limit ~nbits:n () in
  let fam = ref (Zdd.powerset mgr (Labelset.to_bits (Labelset.full n))) in
  for l = 0 to n - 1 do
    Labelset.iter
      (fun a ->
        fam := Zdd.diff mgr !fam (Zdd.offset mgr a (Zdd.onset mgr l !fam)))
      (above d l)
  done;
  (mgr, Zdd.diff mgr !fam Zdd.top)

let right_closed_count ?node_limit d =
  let mgr, fam = right_closed_family ?node_limit d in
  Zdd.count mgr fam

let iter_right_closed_zdd ?limit ?node_limit d f =
  let mgr, fam = right_closed_family ?node_limit d in
  translate_zdd_limit @@ fun () ->
  Zdd.iter ?limit mgr fam (fun mask -> f (Labelset.of_bits mask))

(* Already in increasing bitset order — the enumeration order is the
   numeric mask order, so no sort is needed to match
   [right_closed_sets] byte for byte. *)
let right_closed_sets_zdd ?limit ?node_limit d =
  let acc = ref [] in
  iter_right_closed_zdd ?limit ?node_limit d (fun s -> acc := s :: !acc);
  List.rev !acc

let minimal_elements d s =
  Labelset.filter
    (fun l ->
      Labelset.for_all (fun l' -> l' = l || not (gt d l l')) s)
    s

let hasse_edges d =
  let n = Alphabet.size d.alpha in
  let edges = ref [] in
  for weaker = 0 to n - 1 do
    for stronger = 0 to n - 1 do
      if stronger <> weaker && d.geq.(stronger).(weaker) then begin
        (* Transitive reduction: keep the edge unless an intermediate
           strictly-between label exists. *)
        let intermediate = ref false in
        for mid = 0 to n - 1 do
          if
            mid <> weaker && mid <> stronger
            && d.geq.(mid).(weaker)
            && d.geq.(stronger).(mid)
            && not (equivalent d mid weaker)
            && not (equivalent d stronger mid)
          then intermediate := true
        done;
        if not !intermediate then edges := (weaker, stronger) :: !edges
      end
    done
  done;
  List.rev !edges

let pp fmt d =
  let edges = hasse_edges d in
  if edges = [] then Format.pp_print_string fmt "(no relations)"
  else
    Format.fprintf fmt "@[<v>%a@]"
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun fmt (w, s) ->
           Format.fprintf fmt "%a -> %a" (Alphabet.pp_label d.alpha) w
             (Alphabet.pp_label d.alpha) s))
      edges

let to_dot ?(name = "diagram") d =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n  rankdir=BT;\n" name);
  List.iter
    (fun l ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\";\n" (Alphabet.name d.alpha l)))
    (Alphabet.labels d.alpha);
  List.iter
    (fun (weaker, stronger) ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -> \"%s\";\n" (Alphabet.name d.alpha weaker)
           (Alphabet.name d.alpha stronger)))
    (hasse_edges d);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
