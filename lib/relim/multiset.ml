type label = Labelset.label

(* Sorted by label, counts strictly positive. *)
type t = (label * int) array

let of_counts pairs =
  List.iter (fun (_, c) -> if c < 0 then invalid_arg "Multiset.of_counts") pairs;
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (l, c) ->
      let cur = try Hashtbl.find tbl l with Not_found -> 0 in
      Hashtbl.replace tbl l (cur + c))
    pairs;
  let items = Hashtbl.fold (fun l c acc -> if c > 0 then (l, c) :: acc else acc) tbl [] in
  Array.of_list (List.sort (fun (a, _) (b, _) -> compare a b) items)

let of_list ls = of_counts (List.map (fun l -> (l, 1)) ls)

let counts m = Array.to_list m

let to_list m =
  List.concat_map (fun (l, c) -> List.init c (fun _ -> l)) (counts m)

let size m = Array.fold_left (fun acc (_, c) -> acc + c) 0 m

let count m l =
  let rec go i =
    if i >= Array.length m then 0
    else
      let l', c = m.(i) in
      if l' = l then c else if l' > l then 0 else go (i + 1)
  in
  go 0

let mem l m = count m l > 0

let support m = Array.fold_left (fun acc (l, _) -> Labelset.add l acc) Labelset.empty m

(* [add] and [remove_one] sit inside the box-enumeration DFS of
   [Rounde.rbar]; they insert into / delete from the sorted array
   directly instead of rebuilding through a hashtable and a sort. *)

let position l m =
  let rec go i = if i < Array.length m && fst m.(i) < l then go (i + 1) else i in
  go 0

let add l m =
  let n = Array.length m in
  let i = position l m in
  if i < n && fst m.(i) = l then begin
    let out = Array.copy m in
    out.(i) <- (l, snd m.(i) + 1);
    out
  end
  else begin
    let out = Array.make (n + 1) (l, 1) in
    Array.blit m 0 out 0 i;
    Array.blit m i out (i + 1) (n - i);
    out
  end

let remove_one l m =
  let n = Array.length m in
  let i = position l m in
  if i >= n || fst m.(i) <> l then raise Not_found;
  let c = snd m.(i) in
  if c > 1 then begin
    let out = Array.copy m in
    out.(i) <- (l, c - 1);
    out
  end
  else begin
    let out = Array.make (n - 1) (0, 0) in
    Array.blit m 0 out 0 i;
    Array.blit m (i + 1) out i (n - 1 - i);
    out
  end

let replace_one ~remove ~add:a m = add a (remove_one remove m)

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) = compare a b

let hash (m : t) = Hashtbl.hash m

let sub_multisets m f =
  let n = Array.length m in
  let chosen = Array.make n 0 in
  let rec go i =
    if i = n then begin
      let pairs = ref [] in
      for j = n - 1 downto 0 do
        if chosen.(j) > 0 then pairs := (fst m.(j), chosen.(j)) :: !pairs
      done;
      f (Array.of_list !pairs)
    end
    else
      for c = 0 to snd m.(i) do
        chosen.(i) <- c;
        go (i + 1)
      done
  in
  go 0

let sub_multisets_of_size k m f =
  let n = Array.length m in
  let chosen = Array.make n 0 in
  let suffix_max = Array.make (n + 1) 0 in
  for i = n - 1 downto 0 do
    suffix_max.(i) <- suffix_max.(i + 1) + snd m.(i)
  done;
  let rec go i remaining =
    if remaining > suffix_max.(i) then ()
    else if i = n then begin
      let pairs = ref [] in
      for j = n - 1 downto 0 do
        if chosen.(j) > 0 then pairs := (fst m.(j), chosen.(j)) :: !pairs
      done;
      f (Array.of_list !pairs)
    end
    else
      for c = 0 to min remaining (snd m.(i)) do
        chosen.(i) <- c;
        go (i + 1) (remaining - c)
      done
  in
  go 0 k

let pp alpha fmt m =
  let pp_item fmt (l, c) =
    if c = 1 then Alphabet.pp_label alpha fmt l
    else Format.fprintf fmt "%a^%d" (Alphabet.pp_label alpha) l c
  in
  Format.pp_print_list ~pp_sep:Format.pp_print_space pp_item fmt (counts m)

let to_string alpha m = Format.asprintf "%a" (pp alpha) m
