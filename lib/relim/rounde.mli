(** The automatic round-elimination operators R(·) and R̄(·) of
    Brandt's speedup theorem, as specified in Section 2.3 of the paper.

    Given Π with complexity T (on high-girth Δ-regular graphs in the
    port-numbering model), [rbar (r Π)] has complexity exactly
    [max (T - 1) 0] (Theorem 3).

    [r] works at the condensed level and is cheap for any Δ.  [rbar]
    must enumerate maximal "boxes" of label sets and requires expanding
    the node constraint; it is feasible for small Δ (roughly Δ ≤ 8 with
    up to ~8 labels) — the same practical envelope as the
    round-eliminator tool.  For the paper's problem family at large Δ,
    the symbolic machinery in the [core] library replaces the explicit
    computation (Lemma 8). *)

type denoted = {
  problem : Problem.t;
  denotations : Labelset.t array;
      (** [denotations.(l)] is the set of labels of the {e input}
          problem that new label [l] stands for. *)
}

(** Cumulative counters for the engine's hot paths, updated by every
    [r] / [rbar] call since the last {!reset_stats}.  Times are wall
    seconds ([Unix.gettimeofday]): the hot paths may fan out over
    domains, where CPU time would sum across workers.

    Parallel sections accumulate into per-domain records that are
    merged into this global record when the section joins, so every
    counter is exact (no lost updates) and — with the two exceptions
    below — identical for every domain count.  Exceptions:
    {ul
    {- the [*_time_s] fields measure wall time and vary run to run;}
    {- [transport_cache_hits] counts hits in {e per-worker} memo
       tables, so its value depends on how boxes were scheduled onto
       workers when more than one domain is used (with one domain it is
       deterministic).}} *)
type stats = {
  mutable r_calls : int;
  mutable closures_visited : int;
      (** Galois-closed sets enumerated by [r] (vs 2^n subsets before). *)
  mutable closure_joins : int;
      (** Pairwise join closures computed during the enumeration. *)
  mutable closure_revisits : int;
      (** Joins that landed on an already-visited closed set. *)
  mutable rbar_calls : int;
  mutable rc_sets : int;
      (** Right-closed sets produced by the order-ideal enumeration. *)
  mutable boxes_emitted : int;  (** Valid boxes found by the [rbar] DFS. *)
  mutable boxes_pruned : int;
      (** DFS branches cut by the sub-multiset table. *)
  mutable box_dom_checks : int;
      (** Ordered box pairs examined by [maximal_boxes]. *)
  mutable box_dom_cheap_skips : int;
      (** Pairs rejected by the support/size screens alone. *)
  mutable box_transport_calls : int;
      (** Pairs that needed the exact transportation matching (whether
          answered by the fast path, the memo, or a fresh matching). *)
  mutable transport_cache_hits : int;
      (** Transportation verdicts answered by a per-worker memo keyed
          on the Δ×Δ subset-relation matrix of the two boxes (the
          matching verdict is a function of that matrix alone). *)
  mutable maxbox_tuples : int;
      (** Members of the allowed-tuple relation T on the fully symbolic
          R̄ path (0 when that path didn't run).  Surfaced, like the
          three fields below, as the [zdd.maxbox_*] trace counters. *)
  mutable maxbox_cubes : int;
      (** Members of the valid-box family [Zdd.boxes T] (all slot
          arrangements counted). *)
  mutable maxbox_maximal : int;
      (** Members of the Coudert-maximal family (all arrangements). *)
  mutable maxbox_enumerated : int;
      (** Canonical (slot-sorted) maximal boxes streamed out — the
          symbolic path's final box count. *)
  mutable r_time_s : float;
  mutable rbar_time_s : float;
  mutable maxbox_time_s : float;
      (** Time inside the maximal-box filter (included in [rbar_time_s]). *)
}

(** The single global stats record.  Parallel sections merge their
    per-domain accumulators into it at join time; outside of a running
    [r] / [rbar] call it is safe to read and reset from the caller. *)
val stats : stats

val reset_stats : unit -> unit

(** Certificate emission hook.  When set, it is invoked — in the
    calling domain, after the stats were updated — with the source
    problem and the result of every {e successful} [r] / [rbar] call
    (budget failures raise before the hook fires).  Intended for the
    independent re-checkers in [Certify.Hooks]; an exception raised by
    the hook propagates to the engine's caller.  [None] by default. *)
val observer :
  (op:[ `R | `Rbar ] -> source:Problem.t -> denoted -> unit) option ref

(** [r p] computes Π' = R(Π): the edge constraint consists of all
    maximal pairs (A₁, A₂) of non-empty label sets whose members are
    pairwise compatible in ℰ_Π; the node constraint is obtained by
    replacing every label with the disjunction of the new labels
    containing it.
    @raise Failure if every node line dies (some group's labels all
    lack compatible partners), i.e. Π' would have an empty node
    constraint. *)
val r : Problem.t -> denoted

(** [rbar p'] computes Π'' = R̄(Π'): the node constraint consists of
    all maximal configurations (B₁ … B_Δ) of non-empty label sets all
    of whose choices lie in 𝒩_Π'; the edge constraint contains every
    pair of used sets admitting a compatible choice.

    There is no label cap: right-closed sets are enumerated
    output-sensitively (see {!Diagram.right_closed_sets}).

    @param expand_limit guards the node-constraint expansion (default
    2e6 concrete configurations).
    @param rc_limit guards the number of right-closed sets (default
    10⁵); a fixed internal work budget additionally bounds the box
    DFS, so genuinely exponential instances fail as fast as the old
    hard 20-label cap did.
    @param pool domain pool for the box DFS and the maximal-box filter
    (defaults to {!Parctl.default}).  The result — problem, box order,
    denotations, and budget verdicts — is identical for every domain
    count; the work budget is shared across branches through an atomic
    counter, so whether it trips is a property of the instance, not of
    the schedule.
    @param zdd run the output side on the hash-consed family
    representation from [lib/zdd] (defaults to
    {!Parctl.zdd_from_env}), as a ladder of three engines.  (1) When
    the node diagram is exact and Δ·n ≤ 62, the {e fully symbolic}
    pipeline: the box family itself is a ZDD over Δ·n slotted bits,
    built straight from the condensed node lines (never expanded),
    Coudert [Zdd.maximal] computes the whole dominance filter
    (dominance = containment up to a slot permutation in the
    permutation-closed family), and only the final maximal boxes are
    ever materialized.  (2) Otherwise the streaming compressed DFS
    over the right-closed family.  (3) Problems whose node diagram is
    inexact fall back to the explicit path.  On every instance two
    paths can both handle, the result is byte-identical — problems,
    denotations, box order and the [rc_sets] counter alike (pinned by
    the equivalence suite in [test/zdd]) — but the capacity envelope
    moves: [rc_limit] and [expand_limit] do not apply on the symbolic
    rung and [rc_limit] not on the streaming one (nothing is
    materialized; the ZDD node budget takes their place), and the
    symbolic/streaming work is charged against the shared work budget
    under the distinct names ["... box family construction work
    (zdd)"], ["... maximal box enumeration (zdd)"], ["Zdd.boxes:
    construction work"], ["... box enumeration work (zdd)"] and
    ["... maximal box scan work (zdd)"] (the quadratic dominance scan
    itself, charged per pair check when the streaming rung feeds a
    family too wide for the slotted filter), so instances that trip a
    budget on one path may complete — or trip a differently-named
    budget — on the other.  Engine-dependent
    counters: [boxes_emitted] counts only the surviving boxes on the
    symbolic rung (the DFS paths count every valid box);
    [boxes_pruned] stays 0 and the [box_dom_*]/[*transport*] counters
    stay 0 or shrink on the compressed rungs (pruned candidates are
    never enumerated; the slotted filter answers verdicts without a
    scan); the [maxbox_*] family counters move only on the symbolic
    rung.  The search runs in the calling domain ([?pool] still
    drives the explicit dominance filter).
    @raise Budget.Budget_exceeded if any budget is exceeded. *)
val rbar :
  ?expand_limit:float -> ?rc_limit:int -> ?pool:Parallel.Pool.t ->
  ?zdd:bool -> Problem.t -> denoted

(** [step p] is [rbar (r p)], trimmed, with a composed name.  The
    denotations relate labels of the result to labels of [r p].
    [?pool] and [?zdd] are passed through to {!rbar}. *)
val step :
  ?expand_limit:float -> ?rc_limit:int -> ?pool:Parallel.Pool.t ->
  ?zdd:bool -> Problem.t -> denoted
