(** The automatic round-elimination operators R(·) and R̄(·) of
    Brandt's speedup theorem, as specified in Section 2.3 of the paper.

    Given Π with complexity T (on high-girth Δ-regular graphs in the
    port-numbering model), [rbar (r Π)] has complexity exactly
    [max (T - 1) 0] (Theorem 3).

    [r] works at the condensed level and is cheap for any Δ.  [rbar]
    must enumerate maximal "boxes" of label sets and requires expanding
    the node constraint; it is feasible for small Δ (roughly Δ ≤ 8 with
    up to ~8 labels) — the same practical envelope as the
    round-eliminator tool.  For the paper's problem family at large Δ,
    the symbolic machinery in the [core] library replaces the explicit
    computation (Lemma 8). *)

type denoted = {
  problem : Problem.t;
  denotations : Labelset.t array;
      (** [denotations.(l)] is the set of labels of the {e input}
          problem that new label [l] stands for. *)
}

(** Cumulative counters for the engine's hot paths, updated by every
    [r] / [rbar] call since the last {!reset_stats}.  Times are CPU
    seconds ([Sys.time]), which coincides with wall time for this
    single-threaded code. *)
type stats = {
  mutable r_calls : int;
  mutable closures_visited : int;
      (** Galois-closed sets enumerated by [r] (vs 2^n subsets before). *)
  mutable closure_joins : int;
      (** Pairwise join closures computed during the enumeration. *)
  mutable closure_revisits : int;
      (** Joins that landed on an already-visited closed set. *)
  mutable rbar_calls : int;
  mutable rc_sets : int;
      (** Right-closed sets produced by the order-ideal enumeration. *)
  mutable boxes_emitted : int;  (** Valid boxes found by the [rbar] DFS. *)
  mutable boxes_pruned : int;
      (** DFS branches cut by the sub-multiset table. *)
  mutable box_dom_checks : int;
      (** Ordered box pairs examined by [maximal_boxes]. *)
  mutable box_dom_cheap_skips : int;
      (** Pairs rejected by the support/size screens alone. *)
  mutable box_transport_calls : int;
      (** Pairs that needed the exact transportation matching. *)
  mutable r_time_s : float;
  mutable rbar_time_s : float;
  mutable maxbox_time_s : float;
      (** Time inside the maximal-box filter (included in [rbar_time_s]). *)
}

(** The single global stats record (the engine is single-threaded). *)
val stats : stats

val reset_stats : unit -> unit

(** [r p] computes Π' = R(Π): the edge constraint consists of all
    maximal pairs (A₁, A₂) of non-empty label sets whose members are
    pairwise compatible in ℰ_Π; the node constraint is obtained by
    replacing every label with the disjunction of the new labels
    containing it.
    @raise Failure if every node line dies (some group's labels all
    lack compatible partners), i.e. Π' would have an empty node
    constraint. *)
val r : Problem.t -> denoted

(** [rbar p'] computes Π'' = R̄(Π'): the node constraint consists of
    all maximal configurations (B₁ … B_Δ) of non-empty label sets all
    of whose choices lie in 𝒩_Π'; the edge constraint contains every
    pair of used sets admitting a compatible choice.

    There is no label cap: right-closed sets are enumerated
    output-sensitively (see {!Diagram.right_closed_sets}).

    @param expand_limit guards the node-constraint expansion (default
    2e6 concrete configurations).
    @param rc_limit guards the number of right-closed sets (default
    10⁵); a fixed internal work budget additionally bounds the box
    DFS, so genuinely exponential instances fail as fast as the old
    hard 20-label cap did.
    @raise Failure if any budget is exceeded. *)
val rbar : ?expand_limit:float -> ?rc_limit:int -> Problem.t -> denoted

(** [step p] is [rbar (r p)], trimmed, with a composed name.  The
    denotations relate labels of the result to labels of [r p]. *)
val step : ?expand_limit:float -> ?rc_limit:int -> Problem.t -> denoted
