module Graph = Dsgraph.Graph

(* The encodings below naturally produce zero-count groups when
   delta = 1 (e.g. O^0); the parser rejects an explicit ^0, so omit
   such groups when rendering a configuration. *)
let config groups =
  match List.filter (fun (_, c) -> c <> 0) groups with
  | [] -> invalid_arg "Encodings: configuration with no labels"
  | groups ->
      String.concat " "
        (List.map
           (fun (atom, c) ->
             if c = 1 then atom else Printf.sprintf "%s^%d" atom c)
           groups)

let mis ~delta =
  Relim.Parse.problem ~name:(Printf.sprintf "MIS(Delta=%d)" delta)
    ~node:
      (String.concat "\n"
         [ config [ ("M", delta) ]; config [ ("P", 1); ("O", delta - 1) ] ])
    ~edge:"M [PO]\nO O"

let sinkless_orientation ~delta =
  Relim.Parse.problem ~name:(Printf.sprintf "SO(Delta=%d)" delta)
    ~node:(config [ ("O", 1); ("[IO]", delta - 1) ])
    ~edge:"O I"

let maximal_matching ~delta =
  Relim.Parse.problem ~name:(Printf.sprintf "MM(Delta=%d)" delta)
    ~node:
      (String.concat "\n"
         [ config [ ("M", 1); ("O", delta - 1) ]; config [ ("P", delta) ] ])
    ~edge:"M M\nO [OP]"

let coloring ~delta ~colors =
  if colors < 2 then invalid_arg "Encodings.coloring: need at least 2 colors";
  let name i = Printf.sprintf "C%d" i in
  let node =
    String.concat "\n"
      (List.init colors (fun i -> Printf.sprintf "%s^%d" (name i) delta))
  in
  let edge =
    String.concat "\n"
      (List.concat
         (List.init colors (fun i ->
              List.filteri
                (fun j _ -> j > i)
                (List.init colors (fun j -> Printf.sprintf "%s %s" (name i) (name j))))))
  in
  Relim.Parse.problem ~name:(Printf.sprintf "%d-coloring(Delta=%d)" colors delta)
    ~node ~edge

let weak_2_coloring ~delta =
  (* A node of color A labels one port [a], pointing at a neighbor of
     color B (and vice versa); the pointer label is only compatible
     with the other color's labels, which encodes "at least one
     neighbor has the other color". *)
  Relim.Parse.problem ~name:(Printf.sprintf "weak2col(Delta=%d)" delta)
    ~node:
      (String.concat "\n"
         [
           config [ ("a", 1); ("A", delta - 1) ];
           config [ ("b", 1); ("B", delta - 1) ];
         ])
    ~edge:"a [Bb]\nb [Aa]\nA [AB]\nB B"

let mis_labeling g mis_sel =
  if not (Dsgraph.Check.is_mis g mis_sel) then
    invalid_arg "Encodings.mis_labeling: not an MIS";
  let mis_problem = mis ~delta:(Graph.max_degree g) in
  let m = Relim.Alphabet.find mis_problem.alpha "M" in
  let p = Relim.Alphabet.find mis_problem.alpha "P" in
  let o = Relim.Alphabet.find mis_problem.alpha "O" in
  let labels =
    Array.init (Graph.n g) (fun v ->
        let d = Graph.degree g v in
        if mis_sel.(v) then Array.make d m
        else begin
          let row = Array.make d o in
          let pointed = ref false in
          for port = 0 to d - 1 do
            if (not !pointed) && mis_sel.(Graph.neighbor g v port) then begin
              row.(port) <- p;
              pointed := true
            end
          done;
          row
        end)
  in
  Labeling.make g labels

let orientation_labeling g (orient : Dsgraph.Orientation.t) =
  let so = sinkless_orientation ~delta:(Graph.max_degree g) in
  let o_label = Relim.Alphabet.find so.alpha "O" in
  let i_label = Relim.Alphabet.find so.alpha "I" in
  let labels =
    Array.init (Graph.n g) (fun v ->
        Array.init (Graph.degree g v) (fun port ->
            let e = Graph.edge_id g v port in
            let head = orient.Dsgraph.Orientation.towards.(e) in
            if head = -1 then
              invalid_arg "Encodings.orientation_labeling: unoriented edge"
            else if head = v then i_label
            else o_label))
  in
  Labeling.make g labels
