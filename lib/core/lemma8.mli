(** Lemma 8, mechanized: if Π_Δ(a,x) has complexity T then Π⁺_Δ(a,x)
    has complexity at most max(T-1, 0), for all [x + 2 ≤ a ≤ Δ].

    The paper proves this by showing that every node configuration of
    [R̄(R(Π_Δ(a,x)))] can be {e relaxed} (Definition 7) to a node
    configuration of the intermediate problem Π_rel, and that Π_rel is
    Π⁺ up to renaming.  Two independent verifiers are provided.

    {!verify_concrete} — computes [R̄(R(Π))] in full with the generic
    engine (feasible for small Δ) and checks every resulting node
    configuration relaxes into Π_rel, label sets compared by inclusion
    of denotations.  This is a complete, assumption-free check of the
    lemma's core claim for the given parameters.

    {!verify_symbolic} — runs for {e any} Δ (e.g. 2^20) in milliseconds
    by mechanizing the ingredients of the paper's proof:

    - the node diagram of R(Π) is computed by a {e sound} condensed
      procedure (it only reports provable strength relations), so the
      enumerated "right-closed" sets are a superset of the truly
      right-closed ones and all ∀-checks below remain sound;
    - c1: every right-closed S without P satisfies S ⊆ {M,U,B,Q};
    - c2: every right-closed S without U satisfies S ⊆ {A,B,P,Q};
    - c3: every right-closed S without M excludes X;
    - c4: every right-closed S ⊆ {O,U,A,B,P,Q} without B is ⊆ {P,Q};
    - c5: every right-closed S ⊆ {O,U,A,B,P,Q} without A is ⊆ {U,B,P,Q};
    - m1: no allowed configuration of R(Π)'s node constraint contains
      ≥ 1 × M, ≥ (x+1) × P and ≥ (Δ-a) × U simultaneously;
    - m2: none contains ≥ (x+1) × A, ≥ (Δ-a+1) × U and ≥ (a-x-2) × B;
    - the slot-counting inequalities used to assemble the contradicting
      choices ((1)+(x+1)+(Δ-a) ≤ Δ and (x+1)+(Δ-a+1) ≤ Δ).

    These are exactly the facts the published proof consumes; the glue
    (if a configuration cannot be relaxed into any Π_rel line, the
    counts above let one select a forbidden choice — a contradiction)
    is Δ-independent propositional reasoning reproduced in the paper.

    Both verifiers also re-derive Π_rel ≅ Π⁺ mechanically: Π_rel is
    assembled from {!Family.pi_rel_node_lines} with the
    disjunction-method edge constraint, renamed by
    {!Family.pi_rel_renaming}, and compared to {!Family.pi_plus}. *)

type symbolic_report = {
  c1 : bool;
  c2 : bool;
  c3 : bool;
  c4 : bool;
  c5 : bool;
  m1 : bool;
  m2 : bool;
  arithmetic : bool;
  pi_rel_is_pi_plus : bool;
}

val all_ok : symbolic_report -> bool

(** @raise Invalid_argument outside [x + 2 ≤ a ≤ Δ]. *)
val verify_symbolic : Family.params -> symbolic_report

type concrete_report = {
  boxes : int;  (** Node configurations of [R̄(R(Π))]. *)
  all_relax : bool;  (** Every one relaxes into Π_rel. *)
  pi_rel_is_pi_plus_c : bool;
}

(** Full engine computation; feasible roughly for Δ ≤ 7.
    @raise Relim.Budget.Budget_exceeded if the expansion exceeds
    [expand_limit]. *)
val verify_concrete : ?expand_limit:float -> Family.params -> concrete_report

(** Π_rel as an actual 6-label problem (node lines from
    {!Family.pi_rel_node_lines} with each set treated as a single
    label, edge constraint by the disjunction method), in Π⁺'s label
    names. *)
val pi_rel_problem : Family.params -> Relim.Problem.t
