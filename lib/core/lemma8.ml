module R = Relim

type symbolic_report = {
  c1 : bool;
  c2 : bool;
  c3 : bool;
  c4 : bool;
  c5 : bool;
  m1 : bool;
  m2 : bool;
  arithmetic : bool;
  pi_rel_is_pi_plus : bool;
}

let all_ok r =
  r.c1 && r.c2 && r.c3 && r.c4 && r.c5 && r.m1 && r.m2 && r.arithmetic
  && r.pi_rel_is_pi_plus

let names_set alpha names =
  List.fold_left
    (fun acc n -> R.Labelset.add (R.Alphabet.find alpha n) acc)
    R.Labelset.empty names

(* --- Π_rel as a 6-label problem, and its comparison with Π⁺ -------- *)

let pi_rel_problem params =
  let claimed = Family.r_pi_claimed params in
  let rel_sets = List.map fst Family.pi_rel_renaming in
  let rel_names = List.map snd Family.pi_rel_renaming in
  let alpha = R.Alphabet.create rel_names in
  let index_of_set set =
    let rec go i = function
      | [] -> invalid_arg "Lemma8.pi_rel_problem: unknown set"
      | s :: rest ->
          if List.sort compare s = List.sort compare set then i else go (i + 1) rest
    in
    go 0 rel_sets
  in
  let node_lines =
    List.map
      (fun line ->
        R.Line.make
          (List.map
             (fun (set, count) ->
               (R.Labelset.singleton (index_of_set set), count))
             line))
      (Family.pi_rel_node_lines params)
  in
  (* Disjunction method: in each edge configuration of R(Π), replace
     every label y by the disjunction of the Π_rel labels whose
     denotation contains y. *)
  let denot =
    Array.of_list (List.map (fun set -> names_set claimed.alpha set) rel_sets)
  in
  let replace claimed_label =
    let acc = ref R.Labelset.empty in
    Array.iteri
      (fun i d -> if R.Labelset.mem claimed_label d then acc := R.Labelset.add i !acc)
      denot;
    !acc
  in
  let edge_lines =
    List.map
      (fun line -> R.Line.map_syms (fun s -> R.Labelset.fold (fun l acc -> R.Labelset.union (replace l) acc) s R.Labelset.empty) line)
      (R.Constr.lines claimed.edge)
  in
  R.Problem.make
    ~name:
      (Printf.sprintf "Pi_rel(Delta=%d,a=%d,x=%d)" params.Family.delta
         params.Family.a params.Family.x)
    ~alpha
    ~node:(R.Constr.make node_lines)
    ~edge:(R.Constr.make edge_lines)

(* Equality of two problems under the name-preserving label mapping. *)
let equal_by_names (a : R.Problem.t) (b : R.Problem.t) =
  if R.Alphabet.size a.alpha <> R.Alphabet.size b.alpha then false
  else
    match
      List.map
        (fun la -> R.Alphabet.find b.alpha (R.Alphabet.name a.alpha la))
        (R.Alphabet.labels a.alpha)
    with
    | mapping_list ->
        let mapping = Array.of_list mapping_list in
        let remap_set s =
          R.Labelset.fold
            (fun l acc -> R.Labelset.add mapping.(l) acc)
            s R.Labelset.empty
        in
        let remap = R.Constr.map_lines (R.Line.map_syms remap_set) in
        R.Constr.equal (remap a.node) b.node && R.Constr.equal (remap a.edge) b.edge
    | exception Not_found -> false

let pi_rel_matches_pi_plus params =
  equal_by_names (pi_rel_problem params) (Family.pi_plus params)

(* --- existence of an allowed configuration with given label lower
       bounds ------------------------------------------------------- *)

let exists_config_with_at_least (constr : R.Constr.t) ~delta requirements =
  let total_required = List.fold_left (fun acc (_, c) -> acc + c) 0 requirements in
  if total_required > delta then false
  else
    let slack = delta - total_required in
    let labels = Array.of_list (List.map fst requirements) in
    let supply = Array.of_list (List.map snd requirements @ [ slack ]) in
    let n_real = Array.length labels in
    List.exists
      (fun line ->
        let groups = Array.of_list (R.Line.groups line) in
        R.Util.transport_feasible ~supply
          ~demand:(Array.map snd groups)
          ~allowed:(fun i j ->
            i = n_real || R.Labelset.mem labels.(i) (fst groups.(j))))
      (R.Constr.lines constr)

(* --- symbolic verifier ------------------------------------------- *)

let verify_symbolic ({ Family.delta; a; x } as params) =
  let claimed = Family.r_pi_claimed params in
  let alpha = claimed.alpha in
  let l name = R.Alphabet.find alpha name in
  let diagram = R.Diagram.node_diagram claimed in
  let subset s names = R.Labelset.subset s (names_set alpha names) in
  let has s name = R.Labelset.mem (l name) s in
  (* Stream the right-closed sets instead of materializing the list:
     each certificate condition is a universal over them, with early
     exit on the first counterexample. *)
  let forall_rc f =
    match
      R.Diagram.iter_right_closed diagram (fun s ->
          if not (f s) then raise Exit)
    with
    | () -> true
    | exception Exit -> false
  in
  let c1 = forall_rc (fun s -> has s "P" || subset s [ "M"; "U"; "B"; "Q" ]) in
  let c2 = forall_rc (fun s -> has s "U" || subset s [ "A"; "B"; "P"; "Q" ]) in
  let c3 = forall_rc (fun s -> has s "M" || not (has s "X")) in
  let ouabpq = [ "O"; "U"; "A"; "B"; "P"; "Q" ] in
  let c4 =
    forall_rc (fun s ->
        (not (subset s ouabpq)) || has s "B" || subset s [ "P"; "Q" ])
  in
  let c5 =
    forall_rc (fun s ->
        (not (subset s ouabpq)) || has s "A" || subset s [ "U"; "B"; "P"; "Q" ])
  in
  let m1 =
    not
      (exists_config_with_at_least claimed.node ~delta
         [ (l "M", 1); (l "P", x + 1); (l "U", delta - a) ])
  in
  let m2 =
    not
      (exists_config_with_at_least claimed.node ~delta
         [ (l "A", x + 1); (l "U", delta - a + 1); (l "B", a - x - 2) ])
  in
  let arithmetic =
    1 + (x + 1) + (delta - a) <= delta
    && x + 1 + (delta - a + 1) <= delta
    && a - x - 2 >= 0
  in
  {
    c1;
    c2;
    c3;
    c4;
    c5;
    m1;
    m2;
    arithmetic;
    pi_rel_is_pi_plus = pi_rel_matches_pi_plus params;
  }

(* --- concrete verifier ------------------------------------------- *)

type concrete_report = {
  boxes : int;
  all_relax : bool;
  pi_rel_is_pi_plus_c : bool;
}

let verify_concrete ?(expand_limit = 2e6) params =
  let claimed = Family.r_pi_claimed params in
  let { R.Rounde.problem = after; denotations } =
    R.Rounde.rbar ~expand_limit claimed
  in
  let targets =
    List.map
      (fun line ->
        List.map
          (fun (set, count) -> (names_set claimed.alpha set, count))
          line)
      (Family.pi_rel_node_lines params)
  in
  let box_relaxes box_sets =
    List.exists
      (fun target ->
        let t = Array.of_list target in
        let b = Array.of_list box_sets in
        R.Util.transport_feasible
          ~supply:(Array.map (fun _ -> 1) b)
          ~demand:(Array.map snd t)
          ~allowed:(fun i j -> R.Labelset.subset b.(i) (fst t.(j))))
      targets
  in
  let node_lines = R.Constr.lines after.node in
  let all_relax =
    List.for_all
      (fun line ->
        match R.Line.to_multiset line with
        | None -> false
        | Some m ->
            let sets =
              List.map (fun lab -> denotations.(lab)) (R.Multiset.to_list m)
            in
            box_relaxes sets)
      node_lines
  in
  {
    boxes = List.length node_lines;
    all_relax;
    pi_rel_is_pi_plus_c = pi_rel_matches_pi_plus params;
  }
