type size = { labels : int; node_lines : int; edge_lines : int }

type trace = {
  label_counts : int list;
  sizes : size list;
  stopped : [ `Exhausted_budget | `Completed ];
}

let size_of (p : Relim.Problem.t) =
  {
    labels = Relim.Problem.label_count p;
    node_lines = List.length (Relim.Constr.lines p.node);
    edge_lines = List.length (Relim.Constr.lines p.edge);
  }

let naive_iteration ?(steps = 4) ?(max_labels = 40) ?(expand_limit = 2e6) p =
  let finish acc sizes stopped =
    { label_counts = List.rev acc; sizes = List.rev sizes; stopped }
  in
  let rec go p i acc sizes =
    if i >= steps then finish acc sizes `Completed
    else if Relim.Problem.label_count p > max_labels then
      finish acc sizes `Exhausted_budget
    else
      match Relim.Rounde.step ~expand_limit p with
      | { Relim.Rounde.problem = next; _ } ->
          go next (i + 1)
            (Relim.Problem.label_count next :: acc)
            (size_of next :: sizes)
      | exception (Relim.Budget.Budget_exceeded _ | Failure _) ->
          finish acc sizes `Exhausted_budget
  in
  go p 0 [ Relim.Problem.label_count p ] [ size_of p ]

let r_label_counts ?(steps = 4) ?(max_labels = 40) p =
  let rec go p i acc =
    if i >= steps || Relim.Problem.label_count p > max_labels then List.rev acc
    else
      let { Relim.Rounde.problem = rp; _ } = Relim.Rounde.r p in
      let acc = Relim.Problem.label_count rp :: acc in
      match Relim.Rounde.rbar rp with
      | { Relim.Rounde.problem = next; _ } -> go next (i + 1) acc
      | exception (Relim.Budget.Budget_exceeded _ | Failure _) -> List.rev acc
  in
  go p 0 []
