type params = { delta : int; a : int; x : int }

let check_params { delta; a; x } =
  if delta < 1 then invalid_arg "Family: delta must be >= 1";
  if a < 0 || a > delta then invalid_arg "Family: need 0 <= a <= delta";
  if x < 0 || x > delta then invalid_arg "Family: need 0 <= x <= delta"

let pi_label_names = [ "M"; "P"; "O"; "A"; "X" ]

(* The paper's formulas naturally produce empty groups (e.g. X^0 when
   x = 0); the parser rejects an explicit ^0, so omit them when
   rendering.  A configuration must keep at least one group. *)
let config groups =
  match List.filter (fun (_, c) -> c <> 0) groups with
  | [] -> invalid_arg "Family: configuration with no labels"
  | groups ->
      String.concat " "
        (List.map
           (fun (name, c) ->
             if c = 1 then name else Printf.sprintf "%s^%d" name c)
           groups)

(* The alphabets are fixed explicitly (in the seed's interning order)
   so that the label indices never depend on (a, x) — [Lemma5] resolves
   its indices against a throwaway instance and relies on this. *)
let pi ({ delta; a; x } as params) =
  check_params params;
  let alpha = Relim.Alphabet.create [ "M"; "X"; "A"; "P"; "O" ] in
  let node =
    String.concat "\n"
      [
        config [ ("M", delta - x); ("X", x) ];
        config [ ("A", a); ("X", delta - a) ];
        config [ ("P", 1); ("O", delta - 1) ];
      ]
  in
  let edge = "M [PAOX]\nO [MAOX]\nP [MX]\nA [MOX]\nX [MPAOX]" in
  Relim.Problem.make
    ~name:(Printf.sprintf "Pi(Delta=%d,a=%d,x=%d)" delta a x)
    ~alpha
    ~node:(Relim.Parse.constr alpha ~arity:delta node)
    ~edge:(Relim.Parse.constr alpha ~arity:2 edge)

let require_lemma6_range ({ delta; a; x } as params) =
  check_params params;
  if not (x + 2 <= a && a <= delta) then
    invalid_arg "Family: requires x + 2 <= a <= delta"

let pi_plus ({ delta; a; x } as params) =
  require_lemma6_range params;
  let alpha = Relim.Alphabet.create [ "M"; "X"; "P"; "O"; "A"; "C" ] in
  let node =
    String.concat "\n"
      [
        config [ ("M", delta - x - 1); ("X", x + 1) ];
        config [ ("P", 1); ("O", delta - 1) ];
        config [ ("A", a - x - 1); ("X", delta - a + x + 1) ];
        config [ ("C", delta - x); ("X", x) ];
      ]
  in
  (* Edge constraint: the disjunction-method image of R(Π)'s edge
     constraint {XQ, OB, AU, PM} through Π_rel's set-labels, written in
     Π⁺'s names (see pi_rel_renaming).  Equivalently: Π's compatibility
     extended with C ~ {M, A, O, X}. *)
  let edge =
    String.concat "\n"
      [
        "X [MXPOAC]";
        "[XO] [MXOAC]";
        "[XOA] [MXOC]";
        "[XPOAC] [MX]";
      ]
  in
  Relim.Problem.make
    ~name:(Printf.sprintf "Pi+(Delta=%d,a=%d,x=%d)" delta a x)
    ~alpha
    ~node:(Relim.Parse.constr alpha ~arity:delta node)
    ~edge:(Relim.Parse.constr alpha ~arity:2 edge)

let r_pi_claimed ({ delta; a; x } as params) =
  require_lemma6_range params;
  let alpha =
    Relim.Alphabet.create [ "M"; "U"; "B"; "Q"; "X"; "O"; "A"; "P" ]
  in
  let node =
    String.concat "\n"
      [
        config [ ("[MUBQ]", delta - x); ("[XMOUABPQ]", x) ];
        config [ ("[PQ]", 1); ("[OUABPQ]", delta - 1) ];
        config [ ("[ABPQ]", a); ("[XMOUABPQ]", delta - a) ];
      ]
  in
  let edge = "X Q\nO B\nA U\nP M" in
  Relim.Problem.make
    ~name:(Printf.sprintf "R(Pi)(Delta=%d,a=%d,x=%d)" delta a x)
    ~alpha
    ~node:(Relim.Parse.constr alpha ~arity:delta node)
    ~edge:(Relim.Parse.constr alpha ~arity:2 edge)

let r_pi_denotations =
  [
    ("X", [ "X" ]);
    ("M", [ "M"; "X" ]);
    ("O", [ "O"; "X" ]);
    ("U", [ "M"; "O"; "X" ]);
    ("A", [ "A"; "O"; "X" ]);
    ("B", [ "M"; "A"; "O"; "X" ]);
    ("P", [ "P"; "A"; "O"; "X" ]);
    ("Q", [ "M"; "P"; "A"; "O"; "X" ]);
  ]

let set_mubq = [ "M"; "U"; "B"; "Q" ]

let set_all = [ "X"; "M"; "O"; "U"; "A"; "B"; "P"; "Q" ]

let set_pq = [ "P"; "Q" ]

let set_ouabpq = [ "O"; "U"; "A"; "B"; "P"; "Q" ]

let set_abpq = [ "A"; "B"; "P"; "Q" ]

let set_ubpq = [ "U"; "B"; "P"; "Q" ]

let pi_rel_node_lines ({ delta; a; x } as params) =
  require_lemma6_range params;
  (* Empty groups (count 0, e.g. the trailing [set_all]^x when x = 0)
     are dropped here; [Line.make] now rejects explicit zero counts. *)
  List.map
    (List.filter (fun (_, c) -> c <> 0))
    [
      [ (set_mubq, delta - x - 1); (set_all, x + 1) ];
      [ (set_pq, 1); (set_ouabpq, delta - 1) ];
      [ (set_abpq, a - x - 1); (set_all, delta - a + x + 1) ];
      [ (set_ubpq, delta - x); (set_all, x) ];
    ]

let pi_rel_renaming =
  [
    (set_mubq, "M");
    (set_all, "X");
    (set_pq, "P");
    (set_ouabpq, "O");
    (set_abpq, "A");
    (set_ubpq, "C");
  ]
