module Graph = Dsgraph.Graph

type 'out result = { outputs : 'out array; rounds : int }

type ids = Anonymous | Sequential | Shuffled of int

let make_ids ids n =
  match ids with
  | Anonymous -> Array.make n None
  | Sequential -> Array.init n (fun v -> Some (v + 1))
  | Shuffled seed ->
      let rng = Random.State.make [| seed; 0x1d5 |] in
      let perm = Array.init n (fun v -> v + 1) in
      for i = n - 1 downto 1 do
        let j = Random.State.int rng (i + 1) in
        let tmp = perm.(i) in
        perm.(i) <- perm.(j);
        perm.(j) <- tmp
      done;
      Array.map (fun id -> Some id) perm

type 'out measured = {
  result : 'out result;
  max_message_bits : int;
  total_messages : int;
}

let run_generic ~observe ?(ids = Sequential) ?edge_colors ?seed ?max_rounds g
    ~inputs algo =
  Trace.with_span "localsim.run"
    ~attrs:
      [ ("algo", algo.Algo.name); ("n", string_of_int (Graph.n g)) ]
  @@ fun () ->
  let n = Graph.n g in
  let max_rounds = match max_rounds with Some m -> m | None -> (4 * n) + 64 in
  let delta = Graph.max_degree g in
  let id_array = make_ids ids n in
  let ctxs =
    Array.init n (fun v ->
        let degree = Graph.degree g v in
        let colors =
          Option.map
            (fun ec -> Array.init degree (fun p -> ec.(Graph.edge_id g v p)))
            edge_colors
        in
        let rng =
          Option.map (fun s -> Random.State.make [| s; v; 0x5eed |]) seed
        in
        { Ctx.id = id_array.(v); degree; delta; n; edge_colors = colors; rng })
  in
  if Array.length inputs <> n then invalid_arg "Run.run: wrong inputs length";
  let states = Array.init n (fun v -> algo.Algo.init ctxs.(v) inputs.(v)) in
  let all_decided () =
    Array.for_all (fun s -> algo.Algo.output s <> None) states
  in
  let rec loop round =
    if all_decided () then round
    else if round >= max_rounds then
      failwith
        (Printf.sprintf "Run.run: %s did not terminate within %d rounds"
           algo.Algo.name max_rounds)
    else begin
      let outboxes =
        Array.init n (fun v ->
            let msgs = algo.Algo.send ctxs.(v) states.(v) ~round in
            if Array.length msgs <> Graph.degree g v then
              failwith
                (Printf.sprintf "Run.run: %s sent %d messages at a degree-%d node"
                   algo.Algo.name (Array.length msgs) (Graph.degree g v));
            Array.iter observe msgs;
            msgs)
      in
      for v = 0 to n - 1 do
        let inbox =
          Array.init (Graph.degree g v) (fun p ->
              let u = Graph.neighbor g v p in
              let back = Graph.back_port g v p in
              outboxes.(u).(back))
        in
        states.(v) <- algo.Algo.recv ctxs.(v) states.(v) ~round inbox
      done;
      loop (round + 1)
    end
  in
  let rounds = loop 0 in
  let outputs =
    Array.map
      (fun s ->
        match algo.Algo.output s with
        | Some out -> out
        | None -> assert false)
      states
  in
  { outputs; rounds }

let no_inputs g = Array.make (Graph.n g) ()

let run ?ids ?edge_colors ?seed ?max_rounds g ~inputs algo =
  run_generic ~observe:ignore ?ids ?edge_colors ?seed ?max_rounds g ~inputs algo

let run_measured ~bits ?ids ?edge_colors ?seed ?max_rounds g ~inputs algo =
  let max_bits = ref 0 in
  let total = ref 0 in
  let observe m =
    incr total;
    let b = bits m in
    if b > !max_bits then max_bits := b
  in
  let result =
    run_generic ~observe ?ids ?edge_colors ?seed ?max_rounds g ~inputs algo
  in
  { result; max_message_bits = !max_bits; total_messages = !total }
