(** Automated search over relaxed round-elimination sequences.

    The plain speedup step [R̄ ∘ R] blows up the label count doubly
    exponentially (Section 1.2 of the paper); every known lower-bound
    proof interleaves a {e relaxation} between [R] and [R̄] to keep the
    problem description bounded.  Finding the right relaxation is the
    creative step of such proofs.  This module automates a useful
    fragment of it: starting from a problem Π it repeatedly computes
    [R(Π)], proposes candidate relaxations of the result by walking the
    label-strength diagram, applies [R̄] to the most promising
    candidate, and watches for the sequence of reached states to close
    a cycle.

    {2 Candidate relaxations: quotients by right-closed covers}

    A candidate is a {e cover} 𝒮 of the labels of [R(Π)] by principal
    filters of its node diagram (label [y] together with every strictly
    stronger label) plus the universe set.  The relaxed problem [Q] has
    one label per cover set and constraints obtained by replacing every
    label [y] with the disjunction of the sets containing it.  Such a
    quotient is {e unconditionally} a 0-round relaxation of [R(Π)] —
    each node can rewrite its own output ports using its node-line
    witness, and the full image is allowed on the edge side — which is
    exactly what {!Certify.Check.check_relaxation} re-verifies.  The
    identity relaxation (no information loss) is always tried first;
    covers only matter when the plain step exceeds its budgets.

    {2 Soundness}

    Every accepted step is packaged as a
    {!Certify.Certificate.Relaxed_step} and re-validated by the
    independent checker before it counts; a step that fails validation
    is rejected and the search stops rather than continuing on an
    unverified state.  A certified relaxed step proves
    [T(next) <= max (T(state) - 1) 0], so:
    {ul
    {- a cycle through non-0-round-solvable states ({!Fixed_point})
       yields the standard Ω(log n) deterministic / Ω(log log n)
       randomized LOCAL lower bounds;}
    {- reaching a 0-round-solvable state after [k] certified steps
       ({!Upper_bound}) proves the source is solvable in [k] rounds in
       the port-numbering model on high-girth Δ-regular instances.}}

    Note the paper's Π_Δ(a,x) family has {e no} fixed point at fixed
    parameters — its lower-bound chains strictly decrease the
    parameters and are finite (Θ(log Δ) long, see [Core.Sequence]) — so
    on those inputs the honest outcome is {!Upper_bound} or
    {!Exhausted}, never {!Fixed_point}.  The canonical certified
    rediscovery target is sinkless orientation. *)

type limits = {
  max_steps : int;  (** Search depth: accepted steps before giving up. *)
  beam : int;  (** Candidate covers evaluated per step. *)
  expand_limit : float;
      (** Per-candidate budget for [R̄]'s node-constraint expansion. *)
  rc_limit : int;
      (** Per-candidate budget for [R̄]'s right-closed-set enumeration. *)
  max_labels : int;
      (** Relaxed problems with more labels than this are skipped. *)
}

val default_limits : limits

type verdict =
  | Fixed_point of { problem : Relim.Problem.t; period : int }
      (** The search returned to a previously visited (normalized,
          non-0-round-solvable) state: the last [period] accepted
          steps form a certified relaxed cycle, hence Ω(log n) /
          Ω(log log n) LOCAL lower bounds for the source problem. *)
  | Upper_bound of { steps : int }
      (** A 0-round-solvable state was reached after [steps] certified
          relaxed steps: the source is solvable in [steps] rounds in
          the PN model on high-girth Δ-regular instances. *)
  | Exhausted of { last : Relim.Problem.t }
      (** Step budget spent, every candidate budget-tripped, or a
          certificate failed validation; [last] is the final state. *)

type accepted = {
  step_index : int;  (** 1-based index of the step in the sequence. *)
  cover : int option;
      (** [None] for the identity relaxation, [Some n] for a quotient
          by a cover of [n] sets. *)
  result_labels : int;  (** Labels of the resulting normalized state. *)
  certificate : Certify.Certificate.t;
      (** The validated {!Certify.Certificate.Relaxed_step}. *)
}

type report = {
  verdict : verdict;
  steps : accepted list;  (** Accepted steps, in order. *)
  candidates_explored : int;
      (** Candidates attempted, including budget-skipped ones. *)
  budget_skips : int;
      (** Candidates abandoned on {!Relim.Budget.Budget_exceeded}. *)
  certified_steps : int;
      (** Accepted steps whose certificate validated — always equal to
          [List.length steps]; a validation failure ends the search. *)
  wall_s : float;
}

(** [search p] runs the autopilot from [Simplify.normalize p].  States
    are normalized between steps; cycle detection compares against
    every state on the path with {!Relim.Iso}.  Emits [autopilot.*]
    trace spans, instants and counters when tracing is enabled.
    [pool] feeds the engine's parallel hot paths (the verdict is
    identical for every domain count). *)
val search :
  ?limits:limits -> ?pool:Parallel.Pool.t -> Relim.Problem.t -> report

(** One-line rendering of a verdict, e.g. for CLIs and logs. *)
val verdict_string : verdict -> string
