open Relim

type limits = {
  max_steps : int;
  beam : int;
  expand_limit : float;
  rc_limit : int;
  max_labels : int;
}

let default_limits =
  {
    max_steps = 6;
    beam = 24;
    expand_limit = 200_000.;
    rc_limit = 20_000;
    max_labels = 48;
  }

type verdict =
  | Fixed_point of { problem : Problem.t; period : int }
  | Upper_bound of { steps : int }
  | Exhausted of { last : Problem.t }

type accepted = {
  step_index : int;
  cover : int option;
  result_labels : int;
  certificate : Certify.Certificate.t;
}

type report = {
  verdict : verdict;
  steps : accepted list;
  candidates_explored : int;
  budget_skips : int;
  certified_steps : int;
  wall_s : float;
}

let verdict_string = function
  | Fixed_point { period; _ } ->
      Printf.sprintf "fixed-point (period %d)" period
  | Upper_bound { steps } -> Printf.sprintf "upper-bound (%d steps)" steps
  | Exhausted _ -> "exhausted"

(* ------------------------------------------------------------------ *)
(* Candidate relaxations                                               *)
(* ------------------------------------------------------------------ *)

type candidate = Identity | Cover of Labelset.t list

(* [Alphabet.set_name] concatenates member names, which can collide
   when the source alphabet holds both single-character names and their
   concatenation (R outputs routinely do: "A", "B" and "AB" may all be
   labels).  Fall back to positional names in that case — certificates
   key denotations by name, so any distinct names work. *)
let cover_names (rp : Problem.t) sets =
  let names = Array.map (Alphabet.set_name rp.Problem.alpha) sets in
  let tbl = Hashtbl.create 16 in
  let distinct =
    Array.for_all
      (fun n ->
        if Hashtbl.mem tbl n then false
        else begin
          Hashtbl.add tbl n ();
          true
        end)
      names
  in
  if distinct then names else Array.mapi (fun i _ -> Printf.sprintf "q%d" i) sets

(* Quotient of [rp] by a cover 𝒮 of its labels: one new label per
   cover set, every occurrence of [y] replaced by the disjunction of
   the sets containing it.  The denotations are the cover sets
   themselves — exactly the shape [Certify.Check.check_relaxation]
   validates. *)
let quotient (rp : Problem.t) (cover : Labelset.t list) : Rounde.denoted =
  let sets = Array.of_list cover in
  let phi = Array.make (Alphabet.size rp.Problem.alpha) Labelset.empty in
  Array.iteri
    (fun i s -> Labelset.iter (fun y -> phi.(y) <- Labelset.add i phi.(y)) s)
    sets;
  let map_group g =
    Labelset.fold (fun y acc -> Labelset.union phi.(y) acc) g Labelset.empty
  in
  let alpha = Alphabet.create (Array.to_list (cover_names rp sets)) in
  let problem =
    Problem.make
      ~name:(rp.Problem.name ^ "/q")
      ~alpha
      ~node:(Constr.map_lines (Line.map_syms map_group) rp.Problem.node)
      ~edge:(Constr.map_lines (Line.map_syms map_group) rp.Problem.edge)
  in
  { Rounde.problem; denotations = sets }

let identity_relaxed (rp : Problem.t) : Rounde.denoted =
  {
    Rounde.problem = rp;
    denotations = Array.init (Alphabet.size rp.Problem.alpha) Labelset.singleton;
  }

let popcount bits =
  let rec go b acc = if b = 0 then acc else go (b lsr 1) (acc + (b land 1)) in
  go bits 0

let drop k xs = List.filteri (fun i _ -> i >= k) xs

let dedup_covers covers =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun cover ->
      let key = List.map Labelset.to_bits cover in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    covers

(* Candidate covers over the labels of [rp], finest first: every cover
   is a set of principal filters of the node diagram (a label plus
   everything strictly stronger) with the universe always included —
   each filter is right-closed, so the quotient keeps the strength
   structure the next R step feeds on.  Few distinct filters: all
   subsets.  Many: the drop-k-strongest ladder (remove the filters of
   the k strongest labels), which is where the interesting collapses
   live — strong labels are the ones the plain step multiplies. *)
let covers_of ~limits (rp : Problem.t) =
  match Diagram.node_diagram ~expand_limit:limits.expand_limit rp with
  | exception Budget.Budget_exceeded _ -> []
  | d ->
      let universe = Alphabet.universe rp.Problem.alpha in
      let filter y = Labelset.add y (Diagram.above d y) in
      let filters =
        List.sort_uniq Labelset.compare
          (List.map filter (Alphabet.labels rp.Problem.alpha))
      in
      let arr = Array.of_list filters in
      let n = Array.length arr in
      let mk subset = List.sort_uniq Labelset.compare (universe :: subset) in
      let covers =
        if n <= 12 then
          List.init (1 lsl n) (fun bits ->
              let rec collect i acc =
                if i = n then acc
                else
                  collect (i + 1)
                    (if bits land (1 lsl i) <> 0 then arr.(i) :: acc else acc)
              in
              (popcount bits, mk (collect 0 [])))
          |> List.sort (fun (a, _) (b, _) -> compare b a)
          |> List.map snd
        else begin
          let by_size =
            List.sort
              (fun a b -> compare (Labelset.cardinal a) (Labelset.cardinal b))
              filters
          in
          List.init n (fun k -> mk (drop k by_size))
        end
      in
      dedup_covers covers

(* ------------------------------------------------------------------ *)
(* Search                                                              *)
(* ------------------------------------------------------------------ *)

type viable = {
  cand : candidate;
  relaxed : Rounde.denoted;
  rbd : Rounde.denoted;
  norm : Problem.t;
  labels : int;
  solvable : bool;
}

let search ?(limits = default_limits) ?pool (p0 : Problem.t) =
  let t0 = Unix.gettimeofday () in
  let explored = ref 0 and skips = ref 0 and certified = ref 0 in
  let accepted = ref [] in
  Trace.with_span "autopilot.search"
    ~attrs:
      [
        ("problem", p0.Problem.name);
        ("max_steps", string_of_int limits.max_steps);
      ]
  @@ fun () ->
  let finish verdict =
    Trace.counters
      [
        ("autopilot.candidates", !explored);
        ("autopilot.budget_skips", !skips);
        ("autopilot.certified", !certified);
      ];
    {
      verdict;
      steps = List.rev !accepted;
      candidates_explored = !explored;
      budget_skips = !skips;
      certified_steps = !certified;
      wall_s = Unix.gettimeofday () -. t0;
    }
  in
  let solvable p =
    match Zeroround.solvable_arbitrary_ports ?pool p with
    | Some _ -> true
    | None -> false
    | exception Budget.Budget_exceeded _ -> false
  in
  let s0 = Simplify.normalize p0 in
  (* Normalized states on the path, newest first; cycle detection walks
     this with a hash prefilter before the exact isomorphism check. *)
  let states = ref [ s0 ] in
  let cycle_of norm =
    let h = Iso.invariant_hash norm in
    let rec scan k = function
      | [] -> None
      | st :: rest ->
          if Iso.invariant_hash st = h && Iso.equal_up_to_renaming norm st then
            Some k
          else scan (k + 1) rest
    in
    scan 1 !states
  in
  let rec go s i =
    if solvable s then finish (Upper_bound { steps = i - 1 })
    else if i > limits.max_steps then finish (Exhausted { last = s })
    else
      Trace.with_span "autopilot.step"
        ~attrs:
          [
            ("index", string_of_int i);
            ("labels", string_of_int (Problem.label_count s));
          ]
      @@ fun () ->
      match Rounde.r s with
      | exception Budget.Budget_exceeded _ -> finish (Exhausted { last = s })
      | rd -> (
          let rp = rd.Rounde.problem in
          let try_cand cand =
            incr explored;
            let relaxed =
              match cand with
              | Identity -> identity_relaxed rp
              | Cover c -> quotient rp c
            in
            let q = relaxed.Rounde.problem in
            let lc = Problem.label_count q in
            if lc < 2 || lc > limits.max_labels then None
            else
              match
                Rounde.rbar ~expand_limit:limits.expand_limit
                  ~rc_limit:limits.rc_limit ?pool q
              with
              | exception Budget.Budget_exceeded _ ->
                  incr skips;
                  None
              | rbd ->
                  let norm = Simplify.normalize rbd.Rounde.problem in
                  Some
                    {
                      cand;
                      relaxed;
                      rbd;
                      norm;
                      labels = Problem.label_count norm;
                      solvable = solvable norm;
                    }
          in
          let accept v =
            let cert =
              Certify.Certificate.of_relaxed_step_parts ~source:s ~r:rd
                ~relaxed:v.relaxed ~result:v.rbd
            in
            match Certify.Certificate.validate cert with
            | Error msg ->
                Trace.instant "autopilot.certificate_rejected"
                  ~attrs:[ ("error", msg) ];
                None
            | Ok () ->
                incr certified;
                let cover =
                  match v.cand with
                  | Identity -> None
                  | Cover c -> Some (List.length c)
                in
                accepted :=
                  {
                    step_index = i;
                    cover;
                    result_labels = v.labels;
                    certificate = cert;
                  }
                  :: !accepted;
                Trace.instant "autopilot.accepted"
                  ~attrs:
                    [
                      ("index", string_of_int i);
                      ( "cover",
                        match cover with
                        | None -> "identity"
                        | Some n -> string_of_int n );
                      ("labels", string_of_int v.labels);
                    ];
                Some v
          in
          (* The identity relaxation is the lossless exact step; when it
             fits the budgets there is nothing to search.  Covers are
             walked only when it trips. *)
          let viables =
            match try_cand Identity with
            | Some v -> [ v ]
            | None ->
                let covers = covers_of ~limits rp in
                let rec walk acc tried = function
                  | [] -> List.rev acc
                  | _ when tried >= limits.beam || List.length acc >= 4 ->
                      List.rev acc
                  | c :: rest -> (
                      match try_cand (Cover c) with
                      | Some v -> walk (v :: acc) (tried + 1) rest
                      | None -> walk acc (tried + 1) rest)
                in
                walk [] 0 covers
          in
          match viables with
          | [] -> finish (Exhausted { last = s })
          | _ -> (
              (* Priority: close a cycle (shortest period); else a hard
                 state a cheap fixed-point probe endorses; else hard
                 with fewest labels; else terminal (0-round solvable —
                 the next iteration turns it into an upper bound). *)
              let with_cycles =
                List.filter_map
                  (fun v ->
                    match cycle_of v.norm with
                    | Some k -> Some (k, v)
                    | None -> None)
                  viables
              in
              let by_labels =
                List.sort (fun a b -> compare a.labels b.labels)
              in
              let pick =
                match
                  List.sort (fun (a, _) (b, _) -> compare a b) with_cycles
                with
                | (period, v) :: _ -> `Cycle (period, v)
                | [] -> (
                    match by_labels (List.filter (fun v -> not v.solvable) viables) with
                    | [] -> `Plain (List.hd (by_labels viables))
                    | hs -> (
                        let promising v =
                          match
                            Fixedpoint.detect ~max_steps:2
                              ~expand_limit:limits.expand_limit ?pool v.norm
                          with
                          | Fixedpoint.Fixed_point _ -> true
                          | Fixedpoint.Reaches_fixed_point _
                          | Fixedpoint.No_fixed_point_found _ ->
                              false
                          | exception Budget.Budget_exceeded _ -> false
                        in
                        match
                          List.find_opt promising
                            (List.filteri (fun k _ -> k < 2) hs)
                        with
                        | Some v -> `Plain v
                        | None -> `Plain (List.hd hs)))
              in
              match pick with
              | `Cycle (period, v) -> (
                  match accept v with
                  | Some _ -> finish (Fixed_point { problem = v.norm; period })
                  | None -> finish (Exhausted { last = s }))
              | `Plain v -> (
                  match accept v with
                  | Some v ->
                      states := v.norm :: !states;
                      go v.norm (i + 1)
                  | None -> finish (Exhausted { last = s }))))
  in
  go s0 1
