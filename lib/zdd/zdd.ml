(* Hash-consed ZDDs over int bitmasks.  See zdd.mli for the contract.

   Encoding: variable [v] of a manager with [nbits] bits decides bit
   [nbits - 1 - v], so the root decides the most significant bit and
   lo-before-hi traversal enumerates masks in increasing numeric
   order.  Terminals carry [var = max_int] so the usual "smaller var
   decides first" comparisons need no special cases. *)

type t = { id : int; var : int; lo : t; hi : t }

let rec bot = { id = 0; var = max_int; lo = bot; hi = bot }

let rec top = { id = 1; var = max_int; lo = top; hi = top }

let equal = ( == )

exception Limit of { what : string; limit : float; realized : int }

type stats = {
  mutable nodes : int;
  mutable cache_hits : int;
  mutable cache_lookups : int;
  mutable peak_unique : int;
}

let stats = { nodes = 0; cache_hits = 0; cache_lookups = 0; peak_unique = 0 }

let reset_stats () =
  stats.nodes <- 0;
  stats.cache_hits <- 0;
  stats.cache_lookups <- 0;
  stats.peak_unique <- 0

type manager = {
  nbits : int;
  node_limit : int;
  unique : (int * int * int, t) Hashtbl.t;
  cache : (int * int * int, t) Hashtbl.t;
  counts : (int, int) Hashtbl.t;
  mutable next_id : int;
}

let create ?(node_limit = 2_000_000) ~nbits () =
  if nbits < 0 || nbits > 62 then invalid_arg "Zdd.create: nbits out of range";
  {
    nbits;
    node_limit;
    unique = Hashtbl.create 4096;
    cache = Hashtbl.create 4096;
    counts = Hashtbl.create 256;
    next_id = 2;
  }

let nbits m = m.nbits

let bit_of m v = 1 lsl (m.nbits - 1 - v)

let var_of_label m l =
  if l < 0 || l >= m.nbits then invalid_arg "Zdd: label out of range";
  m.nbits - 1 - l

(* The zero-suppression rule [hi = bot ⇒ node ≡ lo] plus hash-consing
   keep every family canonical: any two structurally equal diagrams of
   one manager are physically equal. *)
let mk m var lo hi =
  if hi == bot then lo
  else begin
    let key = (var, lo.id, hi.id) in
    match Hashtbl.find_opt m.unique key with
    | Some n -> n
    | None ->
        let live = Hashtbl.length m.unique in
        if live >= m.node_limit then
          raise
            (Limit
               {
                 what = "Zdd: unique-table nodes";
                 limit = float_of_int m.node_limit;
                 realized = live;
               });
        let n = { id = m.next_id; var; lo; hi } in
        m.next_id <- m.next_id + 1;
        Hashtbl.add m.unique key n;
        stats.nodes <- stats.nodes + 1;
        if live + 1 > stats.peak_unique then stats.peak_unique <- live + 1;
        n
  end

(* Operation cache: one shared (opcode, x, y) table per manager.
   Commutative ops normalize the id order to double the hit rate; the
   unary label ops key on (opcode, label, id). *)
let op_union = 0

let op_inter = 1

let op_diff = 2

let op_join = 3

let op_meet = 4

let op_maximal = 5

let op_subof = 6

let op_within = 7

let op_onset = 8

let op_offset = 9

let op_cofactor = 10

let cached m op x y compute =
  let key = (op, x, y) in
  stats.cache_lookups <- stats.cache_lookups + 1;
  match Hashtbl.find_opt m.cache key with
  | Some r ->
      stats.cache_hits <- stats.cache_hits + 1;
      r
  | None ->
      let r = compute () in
      Hashtbl.add m.cache key r;
      r

let rec union m a b =
  if a == b || b == bot then a
  else if a == bot then b
  else
    let x, y = if a.id <= b.id then (a, b) else (b, a) in
    cached m op_union x.id y.id @@ fun () ->
    if a.var < b.var then mk m a.var (union m a.lo b) a.hi
    else if b.var < a.var then mk m b.var (union m b.lo a) b.hi
    else mk m a.var (union m a.lo b.lo) (union m a.hi b.hi)

let rec inter m a b =
  if a == b then a
  else if a == bot || b == bot then bot
  else
    let x, y = if a.id <= b.id then (a, b) else (b, a) in
    cached m op_inter x.id y.id @@ fun () ->
    if a.var < b.var then inter m a.lo b
    else if b.var < a.var then inter m a b.lo
    else mk m a.var (inter m a.lo b.lo) (inter m a.hi b.hi)

let rec diff m a b =
  if a == b || a == bot then bot
  else if b == bot then a
  else
    cached m op_diff a.id b.id @@ fun () ->
    if a.var < b.var then mk m a.var (diff m a.lo b) a.hi
    else if b.var < a.var then diff m a b.lo
    else mk m a.var (diff m a.lo b.lo) (diff m a.hi b.hi)

let rec join m a b =
  if a == bot || b == bot then bot
  else if a == top then b
  else if b == top then a
  else
    let x, y = if a.id <= b.id then (a, b) else (b, a) in
    cached m op_join x.id y.id @@ fun () ->
    if a.var < b.var then mk m a.var (join m a.lo b) (join m a.hi b)
    else if b.var < a.var then mk m b.var (join m b.lo a) (join m b.hi a)
    else
      mk m a.var
        (join m a.lo b.lo)
        (union m
           (join m a.hi b.hi)
           (union m (join m a.hi b.lo) (join m a.lo b.hi)))

let rec meet m a b =
  if a == bot || b == bot then bot
  else if a == top || b == top then top
  else
    let x, y = if a.id <= b.id then (a, b) else (b, a) in
    cached m op_meet x.id y.id @@ fun () ->
    if a.var < b.var then union m (meet m a.lo b) (meet m a.hi b)
    else if b.var < a.var then union m (meet m b.lo a) (meet m b.hi a)
    else
      mk m a.var
        (union m
           (meet m a.lo b.lo)
           (union m (meet m a.hi b.lo) (meet m a.lo b.hi)))
        (meet m a.hi b.hi)

let onset m l f =
  let v = var_of_label m l in
  let rec go f =
    if f.var > v then bot (* v absent from every member below (terminals included) *)
    else if f.var = v then mk m v bot f.hi
    else cached m op_onset l f.id (fun () -> mk m f.var (go f.lo) (go f.hi))
  in
  go f

let offset m l f =
  let v = var_of_label m l in
  let rec go f =
    if f.var > v then f
    else if f.var = v then f.lo
    else cached m op_offset l f.id (fun () -> mk m f.var (go f.lo) (go f.hi))
  in
  go f

let cofactor m l f =
  let v = var_of_label m l in
  let rec go f =
    if f.var > v then bot (* l absent from every member below *)
    else if f.var = v then f.hi
    else cached m op_cofactor l f.id (fun () -> mk m f.var (go f.lo) (go f.hi))
  in
  go f

let check_mask m what s =
  if s land lnot ((1 lsl m.nbits) - 1) <> 0 then
    invalid_arg (Printf.sprintf "Zdd.%s: mask out of range" what)

let of_mask m s =
  check_mask m "of_mask" s;
  (* The deepest node decides the lowest set bit: build upward. *)
  let rec up bit acc =
    if bit >= m.nbits then acc
    else
      up (bit + 1)
        (if s land (1 lsl bit) <> 0 then mk m (m.nbits - 1 - bit) bot acc
         else acc)
  in
  up 0 top

let powerset m s =
  check_mask m "powerset" s;
  let rec up bit acc =
    if bit >= m.nbits then acc
    else
      up (bit + 1)
        (if s land (1 lsl bit) <> 0 then mk m (m.nbits - 1 - bit) acc acc
         else acc)
  in
  up 0 top

let rec subsets_within m f s =
  if f == bot || f == top then f
  else
    cached m op_within f.id s @@ fun () ->
    if s land bit_of m f.var <> 0 then
      mk m f.var (subsets_within m f.lo s) (subsets_within m f.hi s)
    else subsets_within m f.lo s

let rec mem_empty f =
  if f == top then true else if f == bot then false else mem_empty f.lo

(* subsets-of-any: { x ∈ a | ∃ y ∈ b: x ⊆ y }. *)
let rec subof m a b =
  if a == bot || b == bot then bot
  else if a == top then top (* b ≠ bot: ∅ is a subset of any member *)
  else if b == top then if mem_empty a then top else bot
  else
    cached m op_subof a.id b.id @@ fun () ->
    if a.var < b.var then subof m a.lo b
    else if b.var < a.var then subof m a (union m b.lo b.hi)
    else mk m a.var (subof m a.lo (union m b.lo b.hi)) (subof m a.hi b.hi)

let rec maximal m f =
  if f == bot || f == top then f
  else
    cached m op_maximal f.id 0 @@ fun () ->
    let hi' = maximal m f.hi in
    let lo' = maximal m f.lo in
    (* A member without [f.var] is non-maximal iff it is ⊆ some member
       of the hi cofactor (that member regains [f.var], making the
       containment strict). *)
    mk m f.var (diff m lo' (subof m lo' f.hi)) hi'

let mem m f s =
  check_mask m "mem" s;
  let rec go f s =
    if s = 0 then mem_empty f
    else if f == top || f == bot then false
    else
      let b = m.nbits - 1 - f.var in
      (* Bits above this node's own bit can no longer be set. *)
      if s lsr (b + 1) <> 0 then false
      else if s land (1 lsl b) <> 0 then go f.hi (s land lnot (1 lsl b))
      else go f.lo s
  in
  go f s

let count m f =
  let rec go f =
    if f == bot then 0
    else if f == top then 1
    else
      match Hashtbl.find_opt m.counts f.id with
      | Some c -> c
      | None ->
          let c = go f.lo + go f.hi in
          Hashtbl.add m.counts f.id c;
          c
  in
  go f

let node_count _m f =
  let seen = Hashtbl.create 256 in
  let rec go f =
    if f == bot || f == top then ()
    else if not (Hashtbl.mem seen f.id) then begin
      Hashtbl.add seen f.id ();
      go f.lo;
      go f.hi
    end
  in
  go f;
  Hashtbl.length seen

let iter ?limit m f k =
  let emitted = ref 0 in
  let emit mask =
    (match limit with
    | Some l when !emitted >= l ->
        raise
          (Limit
             {
               what = "Zdd.iter: enumerated sets";
               limit = float_of_int l;
               realized = !emitted;
             })
    | _ -> ());
    incr emitted;
    k mask
  in
  let rec go f mask =
    if f == bot then ()
    else if f == top then emit mask
    else begin
      go f.lo mask;
      go f.hi (mask lor bit_of m f.var)
    end
  in
  go f 0

let iter_ge m f ~from k =
  check_mask m "iter_ge" from;
  let rec all f mask =
    if f == bot then ()
    else if f == top then k mask
    else begin
      all f.lo mask;
      all f.hi (mask lor bit_of m f.var)
    end
  in
  (* [ge] maintains: the mask built so far equals [from] on every bit
     already decided.  Variables skipped between the parent and this
     node contribute 0 bits; if [from] has a 1 anywhere in that span,
     every member below is numerically smaller and the subtree dies. *)
  let rec ge f mask next_var =
    if f == bot then ()
    else begin
      let upper = if f == top then m.nbits else f.var in
      let skipped =
        if upper <= next_var then 0
        else
          let below_next = (1 lsl (m.nbits - next_var)) - 1 in
          let below_upper = (1 lsl (m.nbits - upper)) - 1 in
          from land (below_next - below_upper)
      in
      if skipped <> 0 then ()
      else if f == top then k mask (* the member equals [from]: inclusive *)
      else
        let b = bit_of m f.var in
        if from land b <> 0 then ge f.hi (mask lor b) (f.var + 1)
        else begin
          ge f.lo mask (f.var + 1);
          all f.hi (mask lor b)
        end
    end
  in
  if from = 0 then all f 0 else ge f 0 0

let elements ?limit m f =
  let acc = ref [] in
  iter ?limit m f (fun mask -> acc := mask :: !acc);
  List.rev !acc

(* --- Slotted (multi-slot) families -------------------------------- *)

(* A layout splits the manager's bits into [slots] contiguous blocks of
   [width] bits; slot 0 occupies the *most significant* block so the
   numeric order on encodings is the lexicographic order on the slot
   mask tuples — the same order every enumeration above produces. *)

type layout = { slots : int; width : int }

let layout ~slots ~width =
  if slots < 1 || width < 1 || slots * width > 62 then
    invalid_arg "Zdd.layout: need slots >= 1, width >= 1, slots * width <= 62";
  { slots; width }

let layout_bits lay = lay.slots * lay.width

let slot_bit lay ~slot ~label =
  if slot < 0 || slot >= lay.slots || label < 0 || label >= lay.width then
    invalid_arg "Zdd.slot_bit: out of range";
  ((lay.slots - 1 - slot) * lay.width) + label

let encode_slots lay masks =
  if Array.length masks <> lay.slots then
    invalid_arg "Zdd.encode_slots: wrong number of slots";
  let full = (1 lsl lay.width) - 1 in
  let acc = ref 0 in
  Array.iteri
    (fun s mask ->
      if mask land lnot full <> 0 then
        invalid_arg "Zdd.encode_slots: slot mask out of range";
      acc := !acc lor (mask lsl ((lay.slots - 1 - s) * lay.width)))
    masks;
  !acc

let decode_slots lay enc =
  let full = (1 lsl lay.width) - 1 in
  Array.init lay.slots (fun s ->
      (enc lsr ((lay.slots - 1 - s) * lay.width)) land full)

let check_layout m what lay =
  if m.nbits <> layout_bits lay then
    invalid_arg (Printf.sprintf "Zdd.%s: manager width <> layout bits" what)

let one_per_slot m lay masks =
  check_layout m "one_per_slot" lay;
  if Array.length masks <> lay.slots then
    invalid_arg "Zdd.one_per_slot: wrong number of slots";
  (* Bottom slot upward; within a slot, ascending label order builds
     the deepest (least significant) decision first, so every [mk] sees
     children of strictly greater var.  An empty slot mask leaves
     [pick = bot], which zero-suppression then propagates to [bot] for
     the whole family — no transversal exists. *)
  let rec slot s acc =
    if s < 0 then acc
    else begin
      let pick = ref bot in
      for label = 0 to lay.width - 1 do
        if masks.(s) land (1 lsl label) <> 0 then
          pick := mk m (m.nbits - 1 - slot_bit lay ~slot:s ~label) !pick acc
      done;
      slot (s - 1) !pick
    end
  in
  slot (lay.slots - 1) top

(* The family of all "boxes" over a transversal relation [t]: members
   are encodings whose slot masks B₀ … B_{slots-1} are all non-empty
   and satisfy B₀ × … × B_{slots-1} ⊆ t (every one-per-slot choice is
   a member of [t]).

   Recursion per slot: walking the slot's labels from the most
   significant down, the state is the intersection [acc] of the
   cofactors of the slot-entry relation at every label taken so far
   (the completions of the remaining slots must be valid for *each*
   chosen label); [None] means no label was taken yet, and a slot that
   ends with [None] dies — boxes have no empty slot.  Memoization on
   (label, acc) per slot entry, plus (slot, relation) across entries,
   keeps the construction polynomial in the diagram sizes. *)
let boxes ?(work_limit = max_int) m lay t =
  check_layout m "boxes" lay;
  let work = ref 0 in
  let charge () =
    if !work >= work_limit then
      raise
        (Limit
           {
             what = "Zdd.boxes: construction work";
             limit = float_of_int work_limit;
             realized = !work;
           });
    incr work
  in
  let cubes_memo = Hashtbl.create 1024 in
  let rec cubes s rel =
    if s = lay.slots then if rel == top then top else bot
    else if rel == bot then bot
    else
      match Hashtbl.find_opt cubes_memo (s, rel.id) with
      | Some r -> r
      | None ->
          let base = (lay.slots - 1 - s) * lay.width in
          let cof =
            Array.init lay.width (fun label ->
                charge ();
                cofactor m (base + label) rel)
          in
          let memo = Hashtbl.create 64 in
          let rec g l acc =
            match acc with
            | None ->
                if l < 0 then bot
                else
                  mk m
                    (m.nbits - 1 - (base + l))
                    (g (l - 1) None)
                    (g (l - 1) (Some cof.(l)))
            | Some a when a == bot -> bot
            | Some a ->
                if l < 0 then cubes (s + 1) a
                else begin
                  match Hashtbl.find_opt memo (l, a.id) with
                  | Some r -> r
                  | None ->
                      charge ();
                      let r =
                        mk m
                          (m.nbits - 1 - (base + l))
                          (g (l - 1) (Some a))
                          (g (l - 1) (Some (inter m a cof.(l))))
                      in
                      Hashtbl.add memo (l, a.id) r;
                      r
                end
          in
          let r = g (lay.width - 1) None in
          Hashtbl.add cubes_memo (s, rel.id) r;
          r
  in
  cubes 0 t
