(** Hash-consed zero-suppressed decision diagrams (ZDDs) over label
    bitsets.

    A value of type {!t} denotes a family of sets of bit positions
    ("labels") drawn from [0 .. nbits - 1]; each member set is encoded
    as an [int] bitmask, exactly like [Relim.Labelset].  The
    representation is canonical per {!manager}: two families built by
    any sequence of operations on the same manager are equal iff they
    are physically equal, so equality, memoized traversals and
    cardinality counting never enumerate members.

    Variable order is fixed to descending bit significance: the root
    decides the highest bit.  Together with lo-before-hi traversal this
    makes every enumeration ({!iter}, {!iter_ge}, {!elements}) produce
    masks in strictly increasing numeric order — the same order as
    [List.sort Labelset.compare], with no sort.

    The module is dependency-free (no [Relim]): callers translate
    {!Limit} into their own budget exceptions. *)

type t
(** A node of some manager's diagram. The two terminals {!bot} (the
    empty family) and {!top} (the family containing only the empty
    set) are shared by all managers. *)

type manager
(** Unique table + operation caches. Not thread-safe: confine each
    manager to one domain. *)

exception
  Limit of {
    what : string;  (** which budget: unique-table nodes or iterated sets *)
    limit : float;
    realized : int;  (** how far the computation got before tripping *)
  }

val create : ?node_limit:int -> nbits:int -> unit -> manager
(** A fresh manager for families over [0 .. nbits - 1].
    [node_limit] (default [2_000_000]) bounds the live unique-table
    size; {!Limit} is raised when an operation would exceed it.
    @raise Invalid_argument unless [0 <= nbits <= 62]. *)

val nbits : manager -> int

val bot : t
(** The empty family, {}. *)

val top : t
(** The family containing only the empty set, {∅}. *)

val equal : t -> t -> bool
(** Physical equality — sound and complete for families of one
    manager. *)

val of_mask : manager -> int -> t
(** [of_mask m s] is the one-member family [{s}]. *)

val powerset : manager -> int -> t
(** [powerset m s] is the family of all subsets of [s] (including the
    empty set): [2^|s|] members in [|s|] nodes. *)

val union : manager -> t -> t -> t

val inter : manager -> t -> t -> t

val diff : manager -> t -> t -> t

val join : manager -> t -> t -> t
(** [join m a b] is [{ x ∪ y | x ∈ a, y ∈ b }]. *)

val meet : manager -> t -> t -> t
(** [meet m a b] is [{ x ∩ y | x ∈ a, y ∈ b }]. *)

val onset : manager -> int -> t -> t
(** [onset m l f]: the members of [f] containing label [l] (kept as
    they are, [l] included). *)

val offset : manager -> int -> t -> t
(** [offset m l f]: the members of [f] not containing label [l]. *)

val cofactor : manager -> int -> t -> t
(** [cofactor m l f] is [{ x \ {l} | x ∈ f, l ∈ x }] — the hi cofactor
    ("subset1") of [f] at label [l]: {!onset} keeps [l] in the
    surviving members, this removes it. *)

val subsets_within : manager -> t -> int -> t
(** [subsets_within m f s] is [{ x ∈ f | x ⊆ s }]. *)

val maximal : manager -> t -> t
(** The members of [f] not strictly contained in another member —
    Coudert-style extraction, no pairwise scan. *)

val mem : manager -> t -> int -> bool
(** [mem m f s]: does the family contain exactly the set [s]? *)

val count : manager -> t -> int
(** Number of member sets, without enumeration (memoized per node). *)

val node_count : manager -> t -> int
(** Number of distinct reachable nodes (terminals excluded) — the
    compressed size of the family. *)

val iter : ?limit:int -> manager -> t -> (int -> unit) -> unit
(** Enumerate the member masks in increasing numeric order.  With
    [~limit:n], raises [Limit { realized = n; _ }] when the
    enumeration would produce an [(n+1)]-th member — the same
    trip-at-[limit+1] convention as [Diagram.iter_right_closed]. *)

val iter_ge : manager -> t -> from:int -> (int -> unit) -> unit
(** Enumerate the member masks that are numerically [>= from]
    (inclusive), in increasing order, pruning whole subtrees below
    [from] — cost proportional to the output plus one root-to-leaf
    walk, not to the family size. *)

val elements : ?limit:int -> manager -> t -> int list
(** [iter] collected into a list (increasing order). *)

(** {1 Slotted (multi-slot) families}

    A {!layout} splits a manager's bits into [slots] contiguous blocks
    of [width] bits each; block [s] holds a label {e mask} over
    [0 .. width - 1], so one member of a slotted family encodes a whole
    tuple (B₀ … B_{slots-1}) of label sets — a round-elimination "box".
    Slot 0 occupies the {e most significant} block, so the numeric
    order on encodings (the order of every enumeration above) is the
    lexicographic order on slot-mask tuples.  Set operations, Coudert
    {!maximal} and the enumeration budgets all apply unchanged: strict
    containment of encodings is exactly slot-wise containment of the
    boxes. *)

type layout = private { slots : int; width : int }

val layout : slots:int -> width:int -> layout
(** @raise Invalid_argument unless [slots >= 1], [width >= 1] and
    [slots * width <= 62]. *)

val layout_bits : layout -> int
(** [slots * width] — the [nbits] the owning manager must have. *)

val slot_bit : layout -> slot:int -> label:int -> int
(** The manager bit holding [label] of [slot]. *)

val encode_slots : layout -> int array -> int
(** Pack per-slot label masks (index 0 = slot 0 = most significant
    block) into one encoding.
    @raise Invalid_argument on a wrong-length array or an overflowing
    slot mask. *)

val decode_slots : layout -> int -> int array
(** Inverse of {!encode_slots}. *)

val one_per_slot : manager -> layout -> int array -> t
(** [one_per_slot m lay masks] is the family of all {e transversals}
    of the slot masks: members pick exactly one set bit of [masks.(s)]
    in every slot [s] ([∏ |masks.(s)|] members in [O(slots * width)]
    nodes; [bot] if any slot mask is empty).  The manager must have
    exactly [layout_bits lay] bits. *)

val boxes : ?work_limit:int -> manager -> layout -> t -> t
(** [boxes m lay t] — with [t] a family of transversal encodings (one
    bit per slot) — is the family of all encodings whose slot masks
    B₀ … B_{slots-1} are all non-empty and whose every transversal
    lies in [t]: the valid "boxes" of the relation, represented
    compressed.  [work_limit] bounds the construction work (memoized
    recursion steps); overruns raise
    [Limit { what = "Zdd.boxes: construction work"; _ }] with the
    realized count.  The manager's node budget applies as usual. *)

(** {1 Global instrumentation}

    Cumulative across all managers, sampled by [Trace] counters and
    the daemon [stats] op; every field is monotone between resets. *)

type stats = {
  mutable nodes : int;  (** nodes ever hash-consed (unique-table misses) *)
  mutable cache_hits : int;  (** operation-cache hits *)
  mutable cache_lookups : int;  (** operation-cache probes *)
  mutable peak_unique : int;  (** largest live unique table ever seen *)
}

val stats : stats

val reset_stats : unit -> unit
