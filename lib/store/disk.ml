open Relim

type payload =
  | Step_result of string
  | Fixed_point of int * string
  | Autopilot_cycle of string

type entry = { key_text : string; key_problem : Problem.t; payload : payload }

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable admitted : int;
  mutable rejected_invalid : int;
  mutable rejected_corrupt : int;
  mutable hash_conflicts : int;
}

type t = {
  root : string;
  entries_dir : string;
  (* (kind, invariant hash) ↦ entries of every admitted file of that
     bucket; populated on first lookup, extended on admission. *)
  buckets : (string * int, entry list) Hashtbl.t;
  stats : stats;
}

let entries_subdir = "entries"

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let open_dir root =
  let entries_dir = Filename.concat root entries_subdir in
  mkdir_p entries_dir;
  {
    root;
    entries_dir;
    buckets = Hashtbl.create 64;
    stats =
      {
        hits = 0;
        misses = 0;
        admitted = 0;
        rejected_invalid = 0;
        rejected_corrupt = 0;
        hash_conflicts = 0;
      };
  }

let dir t = t.root

let stats t = t.stats

(* ------------------------------------------------------------------ *)
(* Entry file format                                                   *)
(* ------------------------------------------------------------------ *)

let fnv1a64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c)))
             0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

exception Corrupt of string

exception Invalid of string

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Parse and fully re-validate one entry file.  @raise Corrupt on
   framing/checksum damage, Invalid when structurally intact but the
   certificate (or key binding) fails re-validation. *)
let load_entry path =
  let text = try read_file path with Sys_error m -> raise (Corrupt m) in
  let pos = ref 0 in
  let len = String.length text in
  let failc fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt in
  let read_line () =
    if !pos >= len then failc "truncated entry";
    match String.index_from_opt text !pos '\n' with
    | None -> failc "unterminated line (truncated entry)"
    | Some stop ->
        let line = String.sub text !pos (stop - !pos) in
        pos := stop + 1;
        line
  in
  let read_block tag =
    let line = read_line () in
    match String.split_on_char ' ' line with
    | [ t; n ] when t = tag -> (
        match int_of_string_opt n with
        | Some n when n >= 0 && !pos + n < len ->
            let body = String.sub text !pos n in
            pos := !pos + n;
            if text.[!pos] <> '\n' then failc "block %S overruns (truncated)" tag;
            incr pos;
            body
        | _ -> failc "bad block header %S" line)
    | _ -> failc "expected block %S, got %S" tag line
  in
  if read_line () <> "roundelim-store v1" then failc "bad magic";
  let kind =
    match String.split_on_char ' ' (read_line ()) with
    | [ "kind"; k ] -> k
    | _ -> failc "missing kind"
  in
  let hash =
    match String.split_on_char ' ' (read_line ()) with
    | [ "hash"; h ] -> (
        match int_of_string_opt ("0x" ^ h) with
        | Some h -> h
        | None -> failc "bad hash field")
    | _ -> failc "missing hash"
  in
  let steps =
    if kind = "fixed-point" then
      match String.split_on_char ' ' (read_line ()) with
      | [ "steps"; k ] -> (
          match int_of_string_opt k with
          | Some k when k >= 1 -> k
          | _ -> failc "bad steps field")
      | _ -> failc "missing steps"
    else 0
  in
  let key_text = read_block "key" in
  let cert_text = read_block "cert" in
  let body_end = !pos in
  (match String.split_on_char ' ' (read_line ()) with
  | [ "checksum"; given ] ->
      if given <> fnv1a64 (String.sub text 0 body_end) then
        failc "checksum mismatch (corrupted entry)"
  | _ -> failc "missing checksum");
  (* Structurally sound: now re-validate content. *)
  let faili fmt = Printf.ksprintf (fun m -> raise (Invalid m)) fmt in
  let key_problem =
    match Serialize.of_string key_text with
    | p -> p
    | exception Failure m -> faili "key problem does not parse: %s" m
  in
  if Iso.invariant_hash key_problem <> hash then
    faili "key problem hashes outside its bucket";
  let cert =
    match Certify.Certificate.of_text cert_text with
    | Ok c -> c
    | Error m -> faili "%s" m
  in
  (match Certify.Certificate.validate cert with
  | Ok () -> ()
  | Error m -> faili "certificate rejected: %s" m);
  let payload =
    match (kind, cert) with
    | "step", Certify.Certificate.Step s ->
        if s.Certify.Certificate.source <> key_text then
          faili "certificate source differs from entry key";
        Step_result s.Certify.Certificate.result
    | "fixed-point", Certify.Certificate.Fixed_point { problem } ->
        Fixed_point (steps, problem)
    | "autopilot", Certify.Certificate.Relaxed_step rs ->
        (* Beyond the certificate itself (one valid relaxed speedup
           step), an autopilot entry claims a lower bound: the step
           must close a period-1 cycle on its own key, and the key must
           not be 0-round solvable. *)
        if rs.Certify.Certificate.rs_source <> key_text then
          faili "certificate source differs from entry key";
        let result =
          match Serialize.of_string rs.Certify.Certificate.rs_result with
          | p -> p
          | exception Failure m -> faili "result problem does not parse: %s" m
        in
        if
          not
            (Iso.equal_up_to_renaming
               (Simplify.normalize key_problem)
               (Simplify.normalize result))
        then faili "autopilot entry does not close a round-elimination cycle";
        (match Zeroround.solvable_arbitrary_ports key_problem with
        | Some _ -> faili "autopilot entry key is 0-round solvable"
        | None -> ()
        | exception Budget.Budget_exceeded { budget; limit } ->
            faili "cannot confirm hardness: %s" (Budget.message ~budget ~limit));
        Autopilot_cycle rs.Certify.Certificate.rs_result
    | k, _ -> faili "kind %S does not match its certificate" k
  in
  { key_text; key_problem; payload }

(* ------------------------------------------------------------------ *)
(* Buckets                                                             *)
(* ------------------------------------------------------------------ *)

let bucket_prefix kind hash = Printf.sprintf "%s-%x-" kind hash

let entry_files t =
  match Sys.readdir t.entries_dir with
  | files ->
      Array.sort compare files;
      Array.to_list files
      |> List.filter (fun f ->
             Filename.check_suffix f ".ent"
             (* Leftover [.tmp-*] files from an interrupted write are
                never entries. *)
             && not (String.starts_with ~prefix:"." f))
  | exception Sys_error _ -> []

let bucket_files t kind hash =
  let prefix = bucket_prefix kind hash in
  List.filter (fun f -> String.starts_with ~prefix f) (entry_files t)

let load_bucket t kind hash =
  match Hashtbl.find_opt t.buckets (kind, hash) with
  | Some entries -> entries
  | None ->
      let entries =
        List.filter_map
          (fun f ->
            let path = Filename.concat t.entries_dir f in
            match load_entry path with
            | e -> Some e
            | exception Corrupt _ ->
                t.stats.rejected_corrupt <- t.stats.rejected_corrupt + 1;
                None
            | exception Invalid _ ->
                t.stats.rejected_invalid <- t.stats.rejected_invalid + 1;
                None)
          (bucket_files t kind hash)
      in
      Hashtbl.replace t.buckets (kind, hash) entries;
      entries

let same_problem key_text (e : entry) (p : Problem.t) =
  String.equal e.key_text key_text || Iso.equal_up_to_renaming e.key_problem p

let find t kind (p : Problem.t) =
  let hash = Iso.invariant_hash p in
  let key_text = Serialize.to_string p in
  let rec scan skipped = function
    | [] ->
        t.stats.hash_conflicts <- t.stats.hash_conflicts + skipped;
        t.stats.misses <- t.stats.misses + 1;
        None
    | e :: rest ->
        if same_problem key_text e p then begin
          t.stats.hash_conflicts <- t.stats.hash_conflicts + skipped;
          t.stats.hits <- t.stats.hits + 1;
          Some e
        end
        else scan (skipped + 1) rest
  in
  scan 0 (load_bucket t kind hash)

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)
(* ------------------------------------------------------------------ *)

(* Atomic write: a temp file in the same directory, then [rename] — a
   crash mid-write leaves only a [.tmp] file, which no reader ever
   considers an entry. *)
let write_atomically t filename content =
  let final = Filename.concat t.entries_dir filename in
  let tmp =
    Filename.concat t.entries_dir
      (Printf.sprintf ".tmp-%d-%s" (Unix.getpid ()) filename)
  in
  let oc = open_out_bin tmp in
  (try
     output_string oc content;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Unix.rename tmp final

let free_slot t kind hash =
  let rec go slot =
    let f = Printf.sprintf "%s%d.ent" (bucket_prefix kind hash) slot in
    if Sys.file_exists (Filename.concat t.entries_dir f) then go (slot + 1)
    else f
  in
  go 0

let render ~kind ~hash ?steps ~key_text ~cert_text () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "roundelim-store v1\n";
  Buffer.add_string buf (Printf.sprintf "kind %s\n" kind);
  Buffer.add_string buf (Printf.sprintf "hash %x\n" hash);
  (match steps with
  | Some k -> Buffer.add_string buf (Printf.sprintf "steps %d\n" k)
  | None -> ());
  let add_block tag s =
    Buffer.add_string buf (Printf.sprintf "%s %d\n" tag (String.length s));
    Buffer.add_string buf s;
    Buffer.add_char buf '\n'
  in
  add_block "key" key_text;
  add_block "cert" cert_text;
  Buffer.add_string buf
    (Printf.sprintf "checksum %s\n" (fnv1a64 (Buffer.contents buf)));
  Buffer.contents buf

let admit t kind ?steps ~(source : Problem.t) cert payload =
  let key_text = Serialize.to_string source in
  let hash = Iso.invariant_hash source in
  match Certify.Certificate.validate cert with
  | Error m -> Error ("refusing to admit entry: " ^ m)
  | Ok () ->
      let entries = load_bucket t kind hash in
      if List.exists (fun e -> same_problem key_text e source) entries then
        Ok () (* already admitted *)
      else begin
        let content =
          render ~kind ~hash ?steps ~key_text
            ~cert_text:(Certify.Certificate.to_text cert)
            ()
        in
        write_atomically t (free_slot t kind hash) content;
        Hashtbl.replace t.buckets (kind, hash)
          (entries @ [ { key_text; key_problem = source; payload } ]);
        t.stats.admitted <- t.stats.admitted + 1;
        Ok ()
      end

let find_step t p =
  match find t "step" p with
  | Some { payload = Step_result text; _ } -> Some text
  | _ -> None

let add_step t ~source cert =
  match cert with
  | Certify.Certificate.Step s ->
      if s.Certify.Certificate.source <> Serialize.to_string source then
        Error "certificate source differs from the entry key"
      else
        admit t "step" ~source cert
          (Step_result s.Certify.Certificate.result)
  | _ -> Error "step entry needs a Step certificate"

let find_fixed_point t p =
  match find t "fixed-point" p with
  | Some { payload = Fixed_point (steps, text); _ } -> Some (steps, text)
  | _ -> None

let add_fixed_point t ~source ~steps cert =
  match cert with
  | Certify.Certificate.Fixed_point { problem } ->
      if steps < 1 then Error "steps must be >= 1"
      else
        admit t "fixed-point" ~steps ~source cert (Fixed_point (steps, problem))
  | _ -> Error "fixed-point entry needs a Fixed_point certificate"

let find_autopilot t p =
  match find t "autopilot" p with
  | Some { payload = Autopilot_cycle text; _ } -> Some text
  | _ -> None

let add_autopilot t ~source cert =
  match cert with
  | Certify.Certificate.Relaxed_step rs -> (
      if rs.Certify.Certificate.rs_source <> Serialize.to_string source then
        Error "certificate source differs from the entry key"
      else
        match Serialize.of_string rs.Certify.Certificate.rs_result with
        | exception Failure m -> Error ("result problem does not parse: " ^ m)
        | result ->
            if
              not
                (Iso.equal_up_to_renaming
                   (Simplify.normalize source)
                   (Simplify.normalize result))
            then
              Error
                "autopilot entry must close a period-1 cycle (source and \
                 result are not isomorphic after normalization)"
            else (
              match Zeroround.solvable_arbitrary_ports source with
              | Some _ ->
                  Error
                    "autopilot entry key is 0-round solvable: a cycle on it \
                     claims no lower bound"
              | None ->
                  admit t "autopilot" ~source cert
                    (Autopilot_cycle rs.Certify.Certificate.rs_result)
              | exception Budget.Budget_exceeded { budget; limit } ->
                  Error
                    ("cannot confirm hardness: " ^ Budget.message ~budget ~limit)))
  | _ -> Error "autopilot entry needs a Relaxed_step certificate"

let validate_all t =
  let files = entry_files t in
  let total = List.length files in
  let ok = ref 0 in
  let rejects = ref [] in
  List.iter
    (fun f ->
      let path = Filename.concat t.entries_dir f in
      match load_entry path with
      | _ -> incr ok
      | exception Corrupt m -> rejects := (f, "corrupt: " ^ m) :: !rejects
      | exception Invalid m -> rejects := (f, "invalid: " ^ m) :: !rejects)
    files;
  (total, !ok, List.rev !rejects)
