open Relim

type listen = Unix_socket of string | Tcp of int

type config = {
  listen : listen list;
  store_dir : string option;
  pool : Parallel.Pool.t option;
  max_line : int;
}

let default_config =
  { listen = []; store_dir = None; pool = None; max_line = 8 * 1024 * 1024 }

(* ------------------------------------------------------------------ *)
(* Canonicalization                                                    *)
(* ------------------------------------------------------------------ *)

(* Iterate parse ∘ serialize to a textual fixed point.  One round
   suffices (the parser numbers labels by first appearance in the
   text, an order re-serialization preserves), but we verify instead
   of assuming, with a small bound as a safety net. *)
let canonicalize text =
  let rec go s n =
    if n > 4 then failwith "canonicalization did not converge"
    else
      let p = Serialize.of_string s in
      let s' = Serialize.to_string p in
      if String.equal s s' then (p, s) else go s' (n + 1)
  in
  go (Serialize.to_string (Serialize.of_string text)) 0

(* ------------------------------------------------------------------ *)
(* Request preparation (pure, parallelizable)                          *)
(* ------------------------------------------------------------------ *)

type prepared =
  | Ready of string  (* response line, fully determined *)
  | Do_step of { id : Json.t; problem : Problem.t; canon : string }
  | Do_fp of {
      id : Json.t;
      problem : Problem.t;
      canon : string;
      max_steps : int option;
    }
  | Do_autopilot of {
      id : Json.t;
      problem : Problem.t;
      canon : string;
      max_steps : int option;
    }
  | Do_ctl of Protocol.request

let prepare line =
  Trace.with_span "daemon.prepare" @@ fun () ->
  match Protocol.decode line with
  | Error (id, code, msg) -> Ready (Protocol.error_line ~id code msg)
  | Ok (Protocol.Ping { id }) ->
      Ready (Protocol.ok_line ~id [ ("pong", Json.Bool true) ])
  | Ok ((Protocol.Stats _ | Protocol.Shutdown _) as req) -> Do_ctl req
  | Ok (Protocol.Step { id; problem }) -> (
      match canonicalize problem with
      | problem, canon -> Do_step { id; problem; canon }
      | exception Failure msg ->
          Ready (Protocol.error_line ~id Protocol.Bad_request
                   ("problem text: " ^ msg)))
  | Ok (Protocol.Fixed_point { id; problem; max_steps }) -> (
      match canonicalize problem with
      | problem, canon -> Do_fp { id; problem; canon; max_steps }
      | exception Failure msg ->
          Ready (Protocol.error_line ~id Protocol.Bad_request
                   ("problem text: " ^ msg)))
  | Ok (Protocol.Autopilot { id; problem; max_steps }) -> (
      match canonicalize problem with
      | problem, canon -> Do_autopilot { id; problem; canon; max_steps }
      | exception Failure msg ->
          Ready (Protocol.error_line ~id Protocol.Bad_request
                   ("problem text: " ^ msg)))

(* ------------------------------------------------------------------ *)
(* Compute phase (sequential; the engine parallelizes internally)      *)
(* ------------------------------------------------------------------ *)

type state = {
  store : Disk.t option;
  pool : Parallel.Pool.t;
  (* Within-batch dedup: canonical text ↦ computed result fields, so n
     identical requests in one batch cost one engine run. *)
  step_memo : (string, (string * Json.t) list * bool) Hashtbl.t;
  fp_memo : (string * int option, (string * Json.t) list * bool) Hashtbl.t;
  ap_memo : (string * int option, (string * Json.t) list * bool) Hashtbl.t;
  mutable requests : int;
  mutable served_ok : int;
  mutable served_error : int;
}

let problem_fields text (p : Problem.t) =
  [
    ("problem", Json.String text);
    ("labels", Json.Int (Problem.label_count p));
    ("delta", Json.Int (Problem.delta p));
  ]

let sample_store_counters st =
  match st.store with
  | None -> ()
  | Some store ->
      let s = Disk.stats store in
      Trace.counters
        [
          ("daemon.store_hits", s.Disk.hits);
          ("daemon.store_misses", s.Disk.misses);
          ("daemon.store_admitted", s.Disk.admitted);
          ("daemon.store_rejected",
           s.Disk.rejected_invalid + s.Disk.rejected_corrupt);
        ]

let compute_step st (p : Problem.t) canon =
  match
    match st.store with Some s -> Disk.find_step s p | None -> None
  with
  | Some stored ->
      let parsed = Serialize.of_string stored in
      (problem_fields stored parsed, true)
  | None ->
      let rd = Rounde.r p in
      let rbd = Rounde.rbar ~pool:st.pool rd.Rounde.problem in
      let result =
        {
          rbd.Rounde.problem with
          Problem.name = Printf.sprintf "step(%s)" p.Problem.name;
        }
      in
      let result_text = Serialize.to_string result in
      (match st.store with
      | None -> ()
      | Some store ->
          let cert =
            Certify.Certificate.of_step_parts ~source:p ~r:rd
              ~result:{ rbd with Rounde.problem = result }
          in
          (match Disk.add_step store ~source:p cert with
          | Ok () -> ()
          | Error msg ->
              (* An inadmissible self-produced certificate is a bug
                 worth surfacing, but must not fail the request. *)
              Trace.instant "daemon.store_admission_failed"
                ~attrs:[ ("error", msg) ]));
      ignore canon;
      (problem_fields result_text result, false)

let fp_fields ~steps ~fixed_text (fixed : Problem.t) =
  let verdict = if steps = 1 then "fixed-point" else "reaches-fixed-point" in
  let lb =
    if Zeroround.solvable_arbitrary_ports fixed = None then
      [ ( "lower_bound",
          Json.String
            (Printf.sprintf
               "problem %s is a non-trivial fixed point: Omega(log n) \
                deterministic and Omega(log log n) randomized LOCAL lower \
                bounds"
               fixed.Problem.name) ) ]
    else []
  in
  [
    ("verdict", Json.String verdict);
    ("steps", Json.Int steps);
    ("fixed", Json.String fixed_text);
  ]
  @ lb

let compute_fp st (p : Problem.t) canon max_steps =
  ignore canon;
  match
    match st.store with Some s -> Disk.find_fixed_point s p | None -> None
  with
  | Some (steps, fixed_text) ->
      (fp_fields ~steps ~fixed_text (Serialize.of_string fixed_text), true)
  | None -> (
      match Fixedpoint.detect ?max_steps ~pool:st.pool p with
      | Fixedpoint.Fixed_point (q, _) ->
          let fixed_text = Serialize.to_string q in
          (match st.store with
          | None -> ()
          | Some store -> (
              match
                Disk.add_fixed_point store ~source:p ~steps:1
                  (Certify.Certificate.of_fixed_point q)
              with
              | Ok () -> ()
              | Error msg ->
                  Trace.instant "daemon.store_admission_failed"
                    ~attrs:[ ("error", msg) ]));
          (fp_fields ~steps:1 ~fixed_text q, false)
      | Fixedpoint.Reaches_fixed_point (i, q) ->
          let fixed_text = Serialize.to_string q in
          (match st.store with
          | None -> ()
          | Some store -> (
              match
                Disk.add_fixed_point store ~source:p ~steps:i
                  (Certify.Certificate.of_fixed_point q)
              with
              | Ok () -> ()
              | Error msg ->
                  Trace.instant "daemon.store_admission_failed"
                    ~attrs:[ ("error", msg) ]));
          (fp_fields ~steps:i ~fixed_text q, false)
      | Fixedpoint.No_fixed_point_found last ->
          (* Budget-dependent, hence never persisted: a larger
             [max_steps] could still find a fixed point. *)
          ( [
              ("verdict", Json.String "none");
              ("last", Json.String (Serialize.to_string last));
            ],
            false ))

let compute_autopilot st (p : Problem.t) canon max_steps =
  ignore canon;
  match
    match st.store with Some s -> Disk.find_autopilot s p | None -> None
  with
  | Some result_text ->
      (* A stored period-1 cycle on (a problem isomorphic to) the
         canonicalized input: serve it without searching. *)
      ( [
          ("verdict", Json.String "fixed-point");
          ("period", Json.Int 1);
          ("steps", Json.Int 1);
          ("fixed", Json.String result_text);
        ],
        true )
  | None ->
      let limits =
        match max_steps with
        | None -> Autopilot.default_limits
        | Some k -> { Autopilot.default_limits with Autopilot.max_steps = k }
      in
      let report = Autopilot.search ~limits ~pool:st.pool p in
      (* Land every period-1 cycle certificate: the last accepted step
         is the one that closed the cycle, and its own source problem
         (not the request's) keys the entry. *)
      (match (st.store, report.Autopilot.verdict) with
      | Some store, Autopilot.Fixed_point { period = 1; _ } -> (
          match List.rev report.Autopilot.steps with
          | { Autopilot.certificate =
                Certify.Certificate.Relaxed_step rs as cert;
              _;
            }
            :: _ -> (
              match Serialize.of_string rs.Certify.Certificate.rs_source with
              | source -> (
                  match Disk.add_autopilot store ~source cert with
                  | Ok () -> ()
                  | Error msg ->
                      Trace.instant "daemon.store_admission_failed"
                        ~attrs:[ ("error", msg) ])
              | exception Failure msg ->
                  Trace.instant "daemon.store_admission_failed"
                    ~attrs:[ ("error", msg) ])
          | _ -> ())
      | _ -> ());
      let base =
        [
          ( "verdict",
            Json.String
              (match report.Autopilot.verdict with
              | Autopilot.Fixed_point _ -> "fixed-point"
              | Autopilot.Upper_bound _ -> "upper-bound"
              | Autopilot.Exhausted _ -> "exhausted") );
          ("steps", Json.Int (List.length report.Autopilot.steps));
          ("candidates", Json.Int report.Autopilot.candidates_explored);
          ("budget_skips", Json.Int report.Autopilot.budget_skips);
          ("certified", Json.Int report.Autopilot.certified_steps);
        ]
      in
      let extra =
        match report.Autopilot.verdict with
        | Autopilot.Fixed_point { problem; period } ->
            [
              ("period", Json.Int period);
              ("fixed", Json.String (Serialize.to_string problem));
              ( "lower_bound",
                Json.String
                  (Printf.sprintf
                     "problem %s admits a certified relaxed fixed point: \
                      Omega(log n) deterministic and Omega(log log n) \
                      randomized LOCAL lower bounds"
                     p.Problem.name) );
            ]
        | Autopilot.Upper_bound { steps } ->
            [
              ( "upper_bound",
                Json.String
                  (Printf.sprintf
                     "solvable in %d round(s) in the PN model on high-girth \
                      Delta-regular instances"
                     steps) );
            ]
        | Autopilot.Exhausted { last } ->
            [ ("last", Json.String (Serialize.to_string last)) ]
      in
      (base @ extra, false)

let stats_fields st =
  let store_fields =
    match st.store with
    | None -> [ ("store", Json.Null) ]
    | Some store ->
        let s = Disk.stats store in
        [
          ( "store",
            Json.Obj
              [
                ("hits", Json.Int s.Disk.hits);
                ("misses", Json.Int s.Disk.misses);
                ("admitted", Json.Int s.Disk.admitted);
                ("rejected_invalid", Json.Int s.Disk.rejected_invalid);
                ("rejected_corrupt", Json.Int s.Disk.rejected_corrupt);
                ("hash_conflicts", Json.Int s.Disk.hash_conflicts);
              ] );
        ]
  in
  [
    ("requests", Json.Int st.requests);
    ("served_ok", Json.Int st.served_ok);
    ("served_error", Json.Int st.served_error);
    ( "fixedpoint_cache",
      Json.Obj
        [
          ("hits", Json.Int Fixedpoint.stats.Fixedpoint.cache_hits);
          ("misses", Json.Int Fixedpoint.stats.Fixedpoint.cache_misses);
          ("hash_conflicts", Json.Int Fixedpoint.stats.Fixedpoint.hash_conflicts);
        ] );
    ( "zdd",
      Json.Obj
        [
          ("nodes", Json.Int Zdd.stats.Zdd.nodes);
          ("cache_hits", Json.Int Zdd.stats.Zdd.cache_hits);
          ("peak_unique", Json.Int Zdd.stats.Zdd.peak_unique);
          (* Symbolic R̄ output side (PR 10): the slotted maximal-box
             family cardinalities, 0 unless that path ran. *)
          ("maxbox_tuples", Json.Int Rounde.stats.Rounde.maxbox_tuples);
          ("maxbox_cubes", Json.Int Rounde.stats.Rounde.maxbox_cubes);
          ("maxbox_maximal", Json.Int Rounde.stats.Rounde.maxbox_maximal);
          ( "maxbox_enumerated",
            Json.Int Rounde.stats.Rounde.maxbox_enumerated );
        ] );
  ]
  @ store_fields

(* Serve one prepared request; [`Stop] after a shutdown request. *)
let answer st prepared =
  st.requests <- st.requests + 1;
  let ok line = (line, `Continue) in
  match prepared with
  | Ready line -> ok line
  | Do_step { id; problem; canon } -> (
      Trace.with_span "daemon.request" ~attrs:[ ("op", "step") ] @@ fun () ->
      match
        match Hashtbl.find_opt st.step_memo canon with
        (* A memo replay is a cache hit whatever the first response
           said — it skipped the engine. *)
        | Some (fields, _) -> (fields, true)
        | None ->
            let result = compute_step st problem canon in
            Hashtbl.replace st.step_memo canon result;
            result
      with
      | fields, cached -> ok (Protocol.ok_line ~id ~cached fields)
      | exception Budget.Budget_exceeded { budget; limit } ->
          ok (Protocol.budget_error_line ~id ~budget ~limit)
      | exception Failure msg ->
          ok (Protocol.error_line ~id Protocol.Engine_error msg))
  | Do_fp { id; problem; canon; max_steps } -> (
      Trace.with_span "daemon.request" ~attrs:[ ("op", "fixed-point") ]
      @@ fun () ->
      match
        match Hashtbl.find_opt st.fp_memo (canon, max_steps) with
        | Some (fields, _) -> (fields, true)
        | None ->
            let result = compute_fp st problem canon max_steps in
            Hashtbl.replace st.fp_memo (canon, max_steps) result;
            result
      with
      | fields, cached -> ok (Protocol.ok_line ~id ~cached fields)
      | exception Budget.Budget_exceeded { budget; limit } ->
          ok (Protocol.budget_error_line ~id ~budget ~limit)
      | exception Failure msg ->
          ok (Protocol.error_line ~id Protocol.Engine_error msg))
  | Do_autopilot { id; problem; canon; max_steps } -> (
      Trace.with_span "daemon.request" ~attrs:[ ("op", "autopilot") ]
      @@ fun () ->
      match
        match Hashtbl.find_opt st.ap_memo (canon, max_steps) with
        | Some (fields, _) -> (fields, true)
        | None ->
            let result = compute_autopilot st problem canon max_steps in
            Hashtbl.replace st.ap_memo (canon, max_steps) result;
            result
      with
      | fields, cached -> ok (Protocol.ok_line ~id ~cached fields)
      | exception Budget.Budget_exceeded { budget; limit } ->
          (* The search absorbs per-candidate overruns itself; this
             only fires for overruns outside the candidate loop. *)
          ok (Protocol.budget_error_line ~id ~budget ~limit)
      | exception Failure msg ->
          ok (Protocol.error_line ~id Protocol.Engine_error msg))
  | Do_ctl (Protocol.Stats { id }) -> ok (Protocol.ok_line ~id (stats_fields st))
  | Do_ctl (Protocol.Shutdown { id }) ->
      (Protocol.ok_line ~id [ ("stopping", Json.Bool true) ], `Stop)
  | Do_ctl _ -> ok (Protocol.error_line ~id:Json.Null Protocol.Internal_error
                      "unroutable request")

(* ------------------------------------------------------------------ *)
(* Connections and event loop                                          *)
(* ------------------------------------------------------------------ *)

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  mutable overflowed : bool;
  mutable eof : bool;
  mutable closed : bool;
}

let listen_socket = function
  | Unix_socket path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Tcp port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen fd 64;
      fd

let write_all fd s =
  let len = String.length s in
  let bytes = Bytes.of_string s in
  let rec go off =
    if off < len then
      let n = Unix.write fd bytes off (len - off) in
      go (off + n)
  in
  go 0

(* Extract complete lines from a connection buffer, leaving the last
   partial line in place. *)
let drain_lines conn =
  let data = Buffer.contents conn.inbuf in
  let lines = ref [] in
  let start = ref 0 in
  String.iteri
    (fun i c ->
      if c = '\n' then begin
        lines := String.sub data !start (i - !start) :: !lines;
        start := i + 1
      end)
    data;
  Buffer.clear conn.inbuf;
  Buffer.add_substring conn.inbuf data !start (String.length data - !start);
  List.rev !lines

let serve ?(stop = fun () -> false) (config : config) =
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception Invalid_argument _ -> () (* no SIGPIPE on this platform *));
  let pool = Parctl.resolve config.pool in
  let st =
    {
      store = Option.map Disk.open_dir config.store_dir;
      pool;
      step_memo = Hashtbl.create 64;
      fp_memo = Hashtbl.create 64;
      ap_memo = Hashtbl.create 64;
      requests = 0;
      served_ok = 0;
      served_error = 0;
    }
  in
  let listeners = List.map (fun l -> (l, listen_socket l)) config.listen in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let stopping = ref false in
  let close_conn conn =
    if not conn.closed then begin
      conn.closed <- true;
      Hashtbl.remove conns conn.fd;
      try Unix.close conn.fd with Unix.Unix_error _ -> ()
    end
  in
  (* The error marker is safe to grep for: inside JSON string values
     every quote is escaped, so a literal ["ok":false] can only be the
     response's own status field. *)
  let is_error_line line =
    let marker = "\"ok\":false" in
    let m = String.length marker and n = String.length line in
    let rec find i = i + m <= n && (String.sub line i m = marker || find (i + 1)) in
    find 0
  in
  let send conn line =
    if is_error_line line then st.served_error <- st.served_error + 1
    else st.served_ok <- st.served_ok + 1;
    if not conn.closed then
      match write_all conn.fd (line ^ "\n") with
      | () -> ()
      | exception
          Unix.Unix_error
            ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
          close_conn conn
  in
  let process_batch batch =
    (* batch : (conn, line) list in arrival order *)
    let n = List.length batch in
    Trace.with_span "daemon.batch"
      ~attrs:[ ("requests", string_of_int n) ]
    @@ fun () ->
    let lines = Array.of_list (List.map snd batch) in
    let prepared =
      if n > 1 && Parallel.Pool.domains pool > 1 then
        Parallel.Pool.map pool prepare lines
      else Array.map prepare lines
    in
    let stop_requested = ref false in
    List.iteri
      (fun i (conn, _) ->
        let line, verdict = answer st prepared.(i) in
        send conn line;
        if verdict = `Stop then stop_requested := true)
      batch;
    sample_store_counters st;
    if !stop_requested then stopping := true
  in
  let handle_readable conn =
    let chunk = Bytes.create 65536 in
    (match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
    | 0 -> conn.eof <- true
    | n -> Buffer.add_subbytes conn.inbuf chunk 0 n
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        conn.eof <- true
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ());
    let lines = drain_lines conn in
    (* Oversized partial line: answer with a structured error and drop
       the connection — the daemon never buffers unboundedly. *)
    if Buffer.length conn.inbuf > config.max_line then begin
      conn.overflowed <- true;
      send conn
        (Protocol.error_line ~id:Json.Null Protocol.Parse_error
           (Printf.sprintf "request line exceeds %d bytes" config.max_line))
    end;
    List.filter_map
      (fun line ->
        if String.length line > config.max_line then begin
          conn.overflowed <- true;
          send conn
            (Protocol.error_line ~id:Json.Null Protocol.Parse_error
               (Printf.sprintf "request line exceeds %d bytes" config.max_line));
          None
        end
        else Some (conn, line))
      lines
  in
  let rec loop () =
    if !stopping || stop () then ()
    else begin
      let listen_fds = List.map snd listeners in
      let conn_fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [] in
      match Unix.select (listen_fds @ conn_fds) [] [] 0.25 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | readable, _, _ ->
          let batch = ref [] in
          List.iter
            (fun fd ->
              if List.mem fd listen_fds then begin
                match Unix.accept fd with
                | client, _ ->
                    Unix.set_nonblock client;
                    Hashtbl.replace conns client
                      {
                        fd = client;
                        inbuf = Buffer.create 256;
                        overflowed = false;
                        eof = false;
                        closed = false;
                      }
                | exception Unix.Unix_error _ -> ()
              end
              else
                match Hashtbl.find_opt conns fd with
                | None -> ()
                | Some conn -> batch := !batch @ handle_readable conn)
            readable;
          if !batch <> [] then process_batch !batch;
          (* Close connections after their last buffered requests were
             answered. *)
          Hashtbl.fold (fun _ c acc -> c :: acc) conns []
          |> List.iter (fun c ->
                 if c.eof || c.overflowed then close_conn c);
          loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      Hashtbl.fold (fun _ c acc -> c :: acc) conns []
      |> List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ());
      List.iter
        (fun (l, fd) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          match l with
          | Unix_socket path -> (
              try Unix.unlink path with Unix.Unix_error _ -> ())
          | Tcp _ -> ())
        listeners)
    loop
