type request =
  | Step of { id : Json.t; problem : string }
  | Fixed_point of { id : Json.t; problem : string; max_steps : int option }
  | Autopilot of { id : Json.t; problem : string; max_steps : int option }
  | Ping of { id : Json.t }
  | Stats of { id : Json.t }
  | Shutdown of { id : Json.t }

let request_id = function
  | Step { id; _ }
  | Fixed_point { id; _ }
  | Autopilot { id; _ }
  | Ping { id }
  | Stats { id }
  | Shutdown { id } ->
      id

type error_code = Parse_error | Bad_request | Engine_error | Internal_error

let code_string = function
  | Parse_error -> "parse-error"
  | Bad_request -> "bad-request"
  | Engine_error -> "engine-error"
  | Internal_error -> "internal-error"

let decode line =
  match Json.of_string line with
  | Error msg -> Error (Json.Null, Parse_error, "not valid JSON: " ^ msg)
  | Ok json -> (
      let id = Option.value ~default:Json.Null (Json.member "id" json) in
      match json with
      | Json.Obj _ -> (
          let problem () =
            match Option.bind (Json.member "problem" json) Json.string_opt with
            | Some p when String.trim p <> "" -> Ok p
            | Some _ -> Error "empty \"problem\" field"
            | None -> Error "missing string field \"problem\""
          in
          match Option.bind (Json.member "op" json) Json.string_opt with
          | Some "step" -> (
              match problem () with
              | Ok problem -> Ok (Step { id; problem })
              | Error m -> Error (id, Bad_request, m))
          | Some (("fixed-point" | "autopilot") as op) -> (
              match problem () with
              | Error m -> Error (id, Bad_request, m)
              | Ok problem -> (
                  let mk max_steps =
                    if op = "autopilot" then Autopilot { id; problem; max_steps }
                    else Fixed_point { id; problem; max_steps }
                  in
                  match Json.member "max_steps" json with
                  | None -> Ok (mk None)
                  | Some v -> (
                      match Json.int_opt v with
                      | Some k when k >= 1 -> Ok (mk (Some k))
                      | _ ->
                          Error
                            (id, Bad_request, "\"max_steps\" must be an integer >= 1"))))
          | Some "ping" -> Ok (Ping { id })
          | Some "stats" -> Ok (Stats { id })
          | Some "shutdown" -> Ok (Shutdown { id })
          | Some op -> Error (id, Bad_request, Printf.sprintf "unknown op %S" op)
          | None -> Error (id, Bad_request, "missing string field \"op\""))
      | _ -> Error (id, Bad_request, "request must be a JSON object"))

let error_line ~id code message =
  Json.to_string
    (Json.Obj
       [
         ("id", id);
         ("ok", Json.Bool false);
         ( "error",
           Json.Obj
             [
               ("code", Json.String (code_string code));
               ("message", Json.String message);
             ] );
       ])

(* Budget overruns get their own error shape: the code is "budget" and
   the budget's name and numeric limit travel as structured fields, so
   a client can retry with a larger limit without parsing the message. *)
let budget_error_line ~id ~budget ~limit =
  Json.to_string
    (Json.Obj
       [
         ("id", id);
         ("ok", Json.Bool false);
         ( "error",
           Json.Obj
             [
               ("code", Json.String "budget");
               ("budget", Json.String budget);
               ( "limit",
                 if Float.is_integer limit && Float.abs limit < 1e15 then
                   Json.Int (int_of_float limit)
                 else Json.Float limit );
               ("message", Json.String (Relim.Budget.message ~budget ~limit));
             ] );
       ])

let ok_line ~id ?cached fields =
  let cached_field =
    match cached with Some b -> [ ("cached", Json.Bool b) ] | None -> []
  in
  Json.to_string
    (Json.Obj
       ([ ("id", id); ("ok", Json.Bool true) ]
       @ cached_field
       @ [ ("result", Json.Obj fields) ]))
