type request =
  | Step of { id : Json.t; problem : string }
  | Fixed_point of { id : Json.t; problem : string; max_steps : int option }
  | Ping of { id : Json.t }
  | Stats of { id : Json.t }
  | Shutdown of { id : Json.t }

let request_id = function
  | Step { id; _ }
  | Fixed_point { id; _ }
  | Ping { id }
  | Stats { id }
  | Shutdown { id } ->
      id

type error_code = Parse_error | Bad_request | Engine_error | Internal_error

let code_string = function
  | Parse_error -> "parse-error"
  | Bad_request -> "bad-request"
  | Engine_error -> "engine-error"
  | Internal_error -> "internal-error"

let decode line =
  match Json.of_string line with
  | Error msg -> Error (Json.Null, Parse_error, "not valid JSON: " ^ msg)
  | Ok json -> (
      let id = Option.value ~default:Json.Null (Json.member "id" json) in
      match json with
      | Json.Obj _ -> (
          let problem () =
            match Option.bind (Json.member "problem" json) Json.string_opt with
            | Some p when String.trim p <> "" -> Ok p
            | Some _ -> Error "empty \"problem\" field"
            | None -> Error "missing string field \"problem\""
          in
          match Option.bind (Json.member "op" json) Json.string_opt with
          | Some "step" -> (
              match problem () with
              | Ok problem -> Ok (Step { id; problem })
              | Error m -> Error (id, Bad_request, m))
          | Some "fixed-point" -> (
              match problem () with
              | Error m -> Error (id, Bad_request, m)
              | Ok problem -> (
                  match Json.member "max_steps" json with
                  | None ->
                      Ok (Fixed_point { id; problem; max_steps = None })
                  | Some v -> (
                      match Json.int_opt v with
                      | Some k when k >= 1 ->
                          Ok (Fixed_point { id; problem; max_steps = Some k })
                      | _ ->
                          Error
                            (id, Bad_request, "\"max_steps\" must be an integer >= 1"))))
          | Some "ping" -> Ok (Ping { id })
          | Some "stats" -> Ok (Stats { id })
          | Some "shutdown" -> Ok (Shutdown { id })
          | Some op -> Error (id, Bad_request, Printf.sprintf "unknown op %S" op)
          | None -> Error (id, Bad_request, "missing string field \"op\""))
      | _ -> Error (id, Bad_request, "request must be a JSON object"))

let error_line ~id code message =
  Json.to_string
    (Json.Obj
       [
         ("id", id);
         ("ok", Json.Bool false);
         ( "error",
           Json.Obj
             [
               ("code", Json.String (code_string code));
               ("message", Json.String message);
             ] );
       ])

let ok_line ~id ?cached fields =
  let cached_field =
    match cached with Some b -> [ ("cached", Json.Bool b) ] | None -> []
  in
  Json.to_string
    (Json.Obj
       ([ ("id", id); ("ok", Json.Bool true) ]
       @ cached_field
       @ [ ("result", Json.Obj fields) ]))
