(** The [roundelimd] server: JSON-lines round elimination over a Unix
    socket (and optionally TCP on loopback), backed by the
    certificate-gated result {!Store}.

    {2 Request lifecycle}

    The event loop ([Unix.select]) drains every complete request line
    that has arrived, then processes the whole set as one {e batch}:

    {ul
    {- a {e parallel prepare phase} — decoding, problem parsing and
       canonicalization (pure work) — fans out over the configured
       {!Parallel.Pool} via [Pool.map];}
    {- a {e sequential compute phase} walks the batch in arrival
       order: requests for the same canonical problem are deduplicated
       (computed once, answered everywhere), store hits are served
       from disk, and misses run the engine — which parallelizes
       internally over the same pool ([Rounde.rbar]'s box search), so
       the engine's process-global statistics are never touched from
       two domains at once.}}

    Responses are written per connection in request order.

    {2 Canonicalization}

    Input problems are canonicalized by iterating
    [Serialize.of_string ∘ Serialize.to_string] to a textual fixed
    point (reached after one round; the parser assigns label indices
    by first appearance, which re-serialization then preserves).  The
    canonical text is the store key, so a byte-identical request warm
    from the store returns a byte-identical result to the cold
    computation that populated it.

    {2 Hardening}

    Garbage, truncated or oversized request lines yield structured
    error responses (oversized ones close the connection afterwards —
    the daemon never buffers unboundedly); engine budget failures
    come back as [engine-error]; a client disconnecting mid-response
    is dropped without disturbing the loop ([SIGPIPE] is ignored). *)

type listen = Unix_socket of string | Tcp of int  (** loopback only *)

type config = {
  listen : listen list;
  store_dir : string option;  (** [None] disables the on-disk store. *)
  pool : Parallel.Pool.t option;
      (** [None] means {!Relim.Parctl.default}. *)
  max_line : int;  (** Max request-line bytes (default 8 MiB). *)
}

val default_config : config

(** Run the server until a [shutdown] request arrives or [stop ()]
    turns true (polled between select rounds; used by in-process
    harnesses).  Listening sockets are closed — and Unix socket paths
    unlinked — on the way out. *)
val serve : ?stop:(unit -> bool) -> config -> unit
