(** On-disk content-addressed result store for round elimination.

    Entries are addressed by {!Relim.Iso.invariant_hash} {e buckets}:
    the hash picks the bucket (a filename prefix), and every entry
    carries the full canonical problem text, so in-bucket candidates
    are resolved with {!Relim.Iso.equal_up_to_renaming} — a hash
    collision between non-isomorphic problems costs one extra
    comparison, never a wrong result.

    {2 Trust model}

    An entry is admitted only together with a {!Certify.Certificate}
    that {!Certify.Certificate.validate}s at admission time, and the
    certificate is re-validated when the entry is loaded from disk —
    so results can be trusted across runs and machines.  On load, an
    entry is {e rejected, never served} if any of these fail:
    {ul
    {- the framing or checksum is wrong (truncated or bit-flipped
       file, e.g. a simulated [kill -9] mid-write — though writes are
       atomic tmp-file + [rename], so a crash normally leaves no
       partial entry at all);}
    {- the embedded certificate fails independent re-validation;}
    {- the key problem does not parse, or hashes outside its bucket.}}
    Rejections are counted in {!stats} and reported by
    {!validate_all}; a rejected file is left in place for inspection.

    Lookups may return an {e isomorphic representative}: as with the
    in-process [Fixedpoint] memo, a hit for a renamed variant serves
    the stored entry's texts.  Byte-identity between warm and cold
    responses is guaranteed for byte-identical (canonicalized)
    inputs. *)

type t

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable admitted : int;
  mutable rejected_invalid : int;
      (** Entries whose certificate failed re-validation. *)
  mutable rejected_corrupt : int;
      (** Entries with broken framing or checksum. *)
  mutable hash_conflicts : int;
      (** In-bucket candidates that shared the key hash but failed the
          isomorphism check. *)
}

(** Open (creating directories as needed) a store rooted at [dir]. *)
val open_dir : string -> t

val dir : t -> string

val stats : t -> stats

(** [find_step t p] is the stored speedup-step result text for a
    problem isomorphic to [p], if one is admitted. *)
val find_step : t -> Relim.Problem.t -> string option

(** [add_step t ~source cert] admits a step entry keyed by [source].
    The certificate must be a [Step] whose source text is exactly
    [Serialize.to_string source]; it is validated before anything is
    written.  Re-adding an already-present key is a no-op ([Ok]). *)
val add_step :
  t -> source:Relim.Problem.t -> Certify.Certificate.t -> (unit, string) result

(** [find_fixed_point t p] is [(steps, fixed_text)] for a stored
    fixed-point verdict on a problem isomorphic to [p]: the number of
    speedup steps the detection performed and the fixed problem's
    text.  [steps = 1] means the (normalized) input was itself the
    fixed point. *)
val find_fixed_point : t -> Relim.Problem.t -> (int * string) option

(** [add_fixed_point t ~source ~steps cert] admits a fixed-point entry
    keyed by [source]; the certificate must be a [Fixed_point] and is
    validated (a fresh sequential speedup replay) before admission. *)
val add_fixed_point :
  t ->
  source:Relim.Problem.t ->
  steps:int ->
  Certify.Certificate.t ->
  (unit, string) result

(** [find_autopilot t p] is the stored relaxed-cycle result text for a
    problem isomorphic to [p], if an autopilot entry is admitted.  The
    result is a problem isomorphic to [p] after normalization — the
    entry's value is the lower-bound claim its certificate carries. *)
val find_autopilot : t -> Relim.Problem.t -> string option

(** [add_autopilot t ~source cert] admits a relaxed-cycle entry keyed
    by [source].  The certificate must be a [Relaxed_step] whose
    source text is exactly [Serialize.to_string source], whose result
    is isomorphic to [source] after normalization (a period-1 cycle),
    and [source] must not be 0-round solvable — the combination is
    what makes the entry a lower-bound witness (Ω(log n) LOCAL).  All
    three conditions are re-checked on load. *)
val add_autopilot :
  t -> source:Relim.Problem.t -> Certify.Certificate.t -> (unit, string) result

(** Scan every entry file in the store, re-validating each from
    scratch: [(total, ok, rejects)] where [rejects] pairs a filename
    with the reason it was rejected. *)
val validate_all : t -> int * int * (string * string) list
