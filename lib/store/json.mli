(** Minimal JSON for the daemon wire protocol.

    Dependency-free (the container image carries no JSON library), so
    this module hand-rolls an RFC 8259 subset: the printer emits
    compact one-line documents (never a raw newline — a requirement of
    the JSON-lines protocol) and the parser is total, returning
    [Error] on malformed input rather than raising.  Numbers without a
    fraction or exponent that fit in an OCaml [int] parse as [Int];
    everything else numeric parses as [Float].  String escapes cover
    the RFC set including [\uXXXX] (with surrogate pairs), decoded to
    UTF-8. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact printing; object fields keep construction order, so equal
    values built the same way print byte-identically (the determinism
    contract the daemon's warm/cold tests rely on).  Non-finite floats
    print as [null]. *)
val to_string : t -> string

val of_string : string -> (t, string) result

(** [member k j] is the value of field [k] when [j] is an object. *)
val member : string -> t -> t option

val string_opt : t -> string option

val int_opt : t -> int option

val bool_opt : t -> bool option
