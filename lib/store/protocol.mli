(** JSON-lines wire protocol of [roundelimd].

    One request per line, one response line per request, in request
    order per connection.  Requests are JSON objects:

    {v
    {"id": <any>, "op": "step",        "problem": "<Serialize text>"}
    {"id": <any>, "op": "fixed-point", "problem": "<text>", "max_steps": 5}
    {"id": <any>, "op": "autopilot",   "problem": "<text>", "max_steps": 5}
    {"id": <any>, "op": "ping"}
    {"id": <any>, "op": "stats"}
    {"id": <any>, "op": "shutdown"}
    v}

    [id] is echoed verbatim in the response (clients use it to match
    pipelined requests); it may be any JSON value and defaults to
    [null].  Responses are single-line objects:

    {v
    {"id":…,"ok":true,"cached":…,"result":{…}}
    {"id":…,"ok":false,"error":{"code":"…","message":"…"}}
    v}

    Decoding is total: garbage, truncated or non-object lines produce
    a structured [parse-error]/[bad-request] response, never an
    exception. *)

type request =
  | Step of { id : Json.t; problem : string }
  | Fixed_point of { id : Json.t; problem : string; max_steps : int option }
  | Autopilot of { id : Json.t; problem : string; max_steps : int option }
  | Ping of { id : Json.t }
  | Stats of { id : Json.t }
  | Shutdown of { id : Json.t }

val request_id : request -> Json.t

type error_code = Parse_error | Bad_request | Engine_error | Internal_error

val code_string : error_code -> string

(** Decode one request line.  [Error] carries the best-effort request
    id (the [id] field if the line parsed as an object, else [null])
    together with the structured error. *)
val decode : string -> (request, Json.t * error_code * string) result

(** Render an error response line (no trailing newline). *)
val error_line : id:Json.t -> error_code -> string -> string

(** Render the structured budget-overrun error line: code ["budget"]
    with the budget's name and numeric limit as their own fields
    (integral limits as JSON integers), plus the human-readable
    {!Relim.Budget.message}.  Clients can retry with a larger limit
    without parsing prose. *)
val budget_error_line : id:Json.t -> budget:string -> limit:float -> string

(** Render a success response line; [cached] is included only when
    given (compute ops set it, control ops don't). *)
val ok_line : id:Json.t -> ?cached:bool -> (string * Json.t) list -> string
