type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_nan f || Float.abs f = infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec print_into buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_into buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          print_into buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_into buf k;
          Buffer.add_char buf ':';
          print_into buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  print_into buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected %C at offset %d, got %C" c !pos c'
    | None -> fail "expected %C at offset %d, got end of input" c !pos
  in
  let literal word value =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      value
    end
    else fail "bad literal at offset %d" !pos
  in
  let add_utf8 buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let c = s.[!pos] in
      let d =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad hex digit %C in \\u escape" c
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'n' -> Buffer.add_char buf '\n'
              | 't' -> Buffer.add_char buf '\t'
              | 'r' -> Buffer.add_char buf '\r'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'u' ->
                  let c1 = hex4 () in
                  if c1 >= 0xD800 && c1 <= 0xDBFF then
                    if
                      !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                    then begin
                      pos := !pos + 2;
                      let c2 = hex4 () in
                      if c2 >= 0xDC00 && c2 <= 0xDFFF then
                        add_utf8 buf
                          (0x10000
                          + ((c1 - 0xD800) lsl 10)
                          + (c2 - 0xDC00))
                      else fail "invalid low surrogate"
                    end
                    else fail "lone high surrogate"
                  else add_utf8 buf c1
              | c -> fail "bad escape \\%C" c);
              go ())
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while
      !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false
    do
      advance ()
    done;
    let integral = !pos in
    if peek () = Some '.' then begin
      advance ();
      while
        !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false
      do
        advance ()
      done
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        while
          !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false
        do
          advance ()
        done
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if integral = !pos then
      (* no fraction, no exponent *)
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "bad number %S" text)
    else
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number %S" text
  in
  let rec parse_value depth =
    if depth > 512 then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec go () =
            items := parse_value (depth + 1) :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                go ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']' at offset %d" !pos
          in
          go ();
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec go () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                go ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}' at offset %d" !pos
          in
          go ();
          Obj (List.rev !fields)
        end
    | Some c -> fail "unexpected character %C at offset %d" c !pos
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage at offset %d" !pos;
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let string_opt = function String s -> Some s | _ -> None

let int_opt = function Int i -> Some i | _ -> None

let bool_opt = function Bool b -> Some b | _ -> None
