type t = { fd : Unix.file_descr; ic : in_channel }

let connect ?(retries = 0) target =
  let addr, domain =
    match target with
    | `Unix path -> (Unix.ADDR_UNIX path, Unix.PF_UNIX)
    | `Tcp port ->
        (Unix.ADDR_INET (Unix.inet_addr_loopback, port), Unix.PF_INET)
  in
  let rec attempt left =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> Ok { fd; ic = Unix.in_channel_of_descr fd }
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if left > 0 then begin
          Unix.sleepf 0.05;
          attempt (left - 1)
        end
        else Error (Unix.error_message e)
  in
  attempt retries

let send_line t line =
  let data = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length data in
  let rec go off =
    if off >= len then Ok ()
    else
      match Unix.write t.fd data off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  in
  go 0

let recv_line t =
  match input_line t.ic with
  | line -> Ok line
  | exception End_of_file -> Error "connection closed by server"
  | exception Sys_error m -> Error m

let request t line =
  match send_line t line with Error _ as e -> e | Ok () -> recv_line t

let close t =
  (* [close_in] closes the underlying fd too. *)
  try close_in t.ic with Sys_error _ -> ()
