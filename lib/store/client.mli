(** Minimal blocking JSON-lines client for [roundelimd], shared by the
    tests, the load-generator bench and the CLI client mode. *)

type t

(** Connect to a listening daemon.  [retries] (default 0) spaces
    [Unix.sleepf 0.05] attempts — handy right after spawning a server
    that may not be accepting yet. *)
val connect :
  ?retries:int -> [ `Unix of string | `Tcp of int ] -> (t, string) result

(** [request t line] sends one request line and blocks for the
    matching response line.  [Error] on a closed or broken
    connection. *)
val request : t -> string -> (string, string) result

val send_line : t -> string -> (unit, string) result

val recv_line : t -> (string, string) result

val close : t -> unit
