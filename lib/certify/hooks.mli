(** Installation of the certificate checkers into the engine's
    emission hooks.

    Once {!install}ed, every successful [Rounde.r] / [Rounde.rbar]
    call, every 0-round verdict and every confirmed fixed point is
    re-checked by the independent certifiers in {!Check}; a divergence
    raises {!Check.Violation} at the engine call site.  The hooks are
    process-global (they certify engine calls from any library), cheap
    when absent (one pointer load per call), and removable with
    {!uninstall}. *)

(** Name of the environment variable consulted by {!install_if_env}:
    ["RELIM_CERTIFY"]. *)
val env_var : string

(** Install the checkers (idempotent). *)
val install : unit -> unit

(** Remove the checkers and clear the engine observers (idempotent). *)
val uninstall : unit -> unit

val installed : unit -> bool

(** [true] iff the environment requests certification
    ([RELIM_CERTIFY] set to [1], [true] or [yes]). *)
val enabled_in_env : unit -> bool

(** {!install} when {!enabled_in_env}; test binaries call this at
    startup so [RELIM_CERTIFY=1 dune runtest] runs every suite under
    the certifier. *)
val install_if_env : unit -> unit

(** [with_hooks f] — run [f] with the checkers installed, restoring
    the previous installation state afterwards (even on exceptions). *)
val with_hooks : (unit -> 'a) -> 'a
