let env_var = "RELIM_CERTIFY"

let installed_flag = ref false

let install () =
  if not !installed_flag then begin
    installed_flag := true;
    Relim.Rounde.observer :=
      Some
        (fun ~op ~source result ->
          match op with
          | `R ->
              Trace.with_span "certify.r"
                ~attrs:[ ("problem", source.Relim.Problem.name) ]
                (fun () -> Check.check_r ~source result)
          | `Rbar ->
              Trace.with_span "certify.rbar"
                ~attrs:[ ("problem", source.Relim.Problem.name) ]
                (fun () -> Check.check_rbar ~source result));
    Relim.Zeroround.observer :=
      Some
        (fun ~mode p verdict ->
          Trace.with_span "certify.zero_round"
            ~attrs:[ ("problem", p.Relim.Problem.name) ]
            (fun () -> Check.check_zero_round ~mode p verdict));
    Relim.Fixedpoint.fixed_point_observer :=
      Some
        (fun p ->
          Trace.with_span "certify.fixed_point"
            ~attrs:[ ("problem", p.Relim.Problem.name) ]
            (fun () -> Check.check_fixed_point p))
  end

let uninstall () =
  installed_flag := false;
  Relim.Rounde.observer := None;
  Relim.Zeroround.observer := None;
  Relim.Fixedpoint.fixed_point_observer := None

let installed () = !installed_flag

let enabled_in_env () =
  match Sys.getenv_opt env_var with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

let install_if_env () = if enabled_in_env () then install ()

let with_hooks f =
  let was = !installed_flag in
  install ();
  Fun.protect ~finally:(fun () -> if not was then uninstall ()) f
