(** Serializable certificates for engine results.

    A certificate packages everything the independent checkers in
    {!Check} need to re-validate a result {e from the text alone}:
    problems travel as [Serialize] texts and denotations are keyed by
    label {e name} (never by label index, which the parser is free to
    permute).  This is what lets a result store re-validate an entry
    on load, on a different machine, long after the process that
    computed it has exited — a tampered or corrupted certificate fails
    {!validate} and the entry is rejected rather than served.

    The text format is line-oriented with length-prefixed blocks
    ([tag <byte-length>] followed by exactly that many bytes), so it
    is robust to any problem text, including label names containing
    format-significant characters. *)

type step = {
  source : string;  (** [Serialize] text of the input problem Π. *)
  r : string;  (** Text of R(Π). *)
  r_denotations : (string * string list) list;
      (** For each label name of R(Π), the source label names it
          denotes — the [Rounde.denoted] array, made index-free. *)
  result : string;  (** Text of R̄(R(Π)), i.e. the speedup step result. *)
  result_denotations : (string * string list) list;
      (** For each label name of the result, the R(Π) label names it
          denotes. *)
}

type relaxed_step = {
  rs_source : string;  (** [Serialize] text of the input problem Π. *)
  rs_r : string;  (** Text of R(Π). *)
  rs_r_denotations : (string * string list) list;
      (** For each label name of R(Π), the source label names it
          denotes. *)
  rs_relaxed : string;  (** Text of the relaxation Q of R(Π). *)
  rs_relaxed_denotations : (string * string list) list;
      (** For each label name of Q, the R(Π) label names it stands
          for — validated by {!Check.check_relaxation}. *)
  rs_result : string;  (** Text of R̄(Q): the relaxed-step result. *)
  rs_result_denotations : (string * string list) list;
      (** For each label name of the result, the Q label names it
          denotes. *)
}

type t =
  | Step of step
  | Relaxed_step of relaxed_step
      (** A speedup step with a 0-round relaxation interleaved between
          R and R̄ (the paper's Lemma 8/9 shape): the result is
          [R̄(Q)] where [Q] relaxes [R(Π)], so
          [T(result) = max (T(Π) - 1) 0] still holds. *)
  | Fixed_point of { problem : string }
      (** Text of a problem Π claimed to satisfy
          [step Π ≅ Π] after normalization. *)

(** Build a step certificate from the engine's own outputs: [r] is the
    [Rounde.r] result for [source], [result] the [Rounde.rbar] result
    for [r]'s problem (with whatever final name the caller gave it). *)
val of_step_parts :
  source:Relim.Problem.t ->
  r:Relim.Rounde.denoted ->
  result:Relim.Rounde.denoted ->
  t

(** Build a relaxed-step certificate: [r] is the [Rounde.r] result for
    [source], [relaxed] a relaxation of [r]'s problem (denotations into
    [r]'s alphabet), [result] the [Rounde.rbar] result for [relaxed]'s
    problem. *)
val of_relaxed_step_parts :
  source:Relim.Problem.t ->
  r:Relim.Rounde.denoted ->
  relaxed:Relim.Rounde.denoted ->
  result:Relim.Rounde.denoted ->
  t

val of_fixed_point : Relim.Problem.t -> t

(** The payload a result cache would serve: the step-result text for
    {!Step}, the fixed problem's text for {!Fixed_point}. *)
val result_text : t -> string

val to_text : t -> string

(** Total inverse of {!to_text}; structured [Error] on any malformed
    input, never an exception. *)
val of_text : string -> (t, string) result

(** Re-validate from the texts alone: parse every problem, rebuild the
    denotation arrays by name, and run {!Check.check_r} /
    {!Check.check_rbar} (for {!Step}), additionally
    {!Check.check_relaxation} on the interleaved relaxation (for
    {!Relaxed_step}), or {!Check.check_fixed_point}
    (for {!Fixed_point}).  [Error] carries the checker's violation
    message.  Budget-guarded sub-checks of {!Check} may be skipped on
    very large instances (counted in [Check.stats.skipped_subchecks]) —
    a skipped sub-check makes the certificate partial, never wrong. *)
val validate : ?work_budget:int -> t -> (unit, string) result
