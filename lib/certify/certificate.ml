open Relim

type step = {
  source : string;
  r : string;
  r_denotations : (string * string list) list;
  result : string;
  result_denotations : (string * string list) list;
}

type relaxed_step = {
  rs_source : string;
  rs_r : string;
  rs_r_denotations : (string * string list) list;
  rs_relaxed : string;
  rs_relaxed_denotations : (string * string list) list;
  rs_result : string;
  rs_result_denotations : (string * string list) list;
}

type t =
  | Step of step
  | Relaxed_step of relaxed_step
  | Fixed_point of { problem : string }

(* ------------------------------------------------------------------ *)
(* Construction from engine outputs                                    *)
(* ------------------------------------------------------------------ *)

(* Denotations, made index-free: label names of [d.problem] paired with
   the names (in [source_alpha]) of the labels they denote.  Label
   names never contain tabs or newlines (Alphabet forbids whitespace),
   so the serialization below can tab-separate them. *)
let named_denotations ~source_alpha (d : Rounde.denoted) =
  List.map
    (fun l ->
      let name = Alphabet.name d.Rounde.problem.Problem.alpha l in
      let members =
        List.map (Alphabet.name source_alpha)
          (Labelset.elements d.Rounde.denotations.(l))
      in
      (name, members))
    (Alphabet.labels d.Rounde.problem.Problem.alpha)

let of_step_parts ~(source : Problem.t) ~(r : Rounde.denoted)
    ~(result : Rounde.denoted) =
  Step
    {
      source = Serialize.to_string source;
      r = Serialize.to_string r.Rounde.problem;
      r_denotations = named_denotations ~source_alpha:source.Problem.alpha r;
      result = Serialize.to_string result.Rounde.problem;
      result_denotations =
        named_denotations ~source_alpha:r.Rounde.problem.Problem.alpha result;
    }

let of_relaxed_step_parts ~(source : Problem.t) ~(r : Rounde.denoted)
    ~(relaxed : Rounde.denoted) ~(result : Rounde.denoted) =
  Relaxed_step
    {
      rs_source = Serialize.to_string source;
      rs_r = Serialize.to_string r.Rounde.problem;
      rs_r_denotations = named_denotations ~source_alpha:source.Problem.alpha r;
      rs_relaxed = Serialize.to_string relaxed.Rounde.problem;
      rs_relaxed_denotations =
        named_denotations ~source_alpha:r.Rounde.problem.Problem.alpha relaxed;
      rs_result = Serialize.to_string result.Rounde.problem;
      rs_result_denotations =
        named_denotations ~source_alpha:relaxed.Rounde.problem.Problem.alpha
          result;
    }

let of_fixed_point (p : Problem.t) =
  Fixed_point { problem = Serialize.to_string p }

let result_text = function
  | Step s -> s.result
  | Relaxed_step rs -> rs.rs_result
  | Fixed_point { problem } -> problem

(* ------------------------------------------------------------------ *)
(* Text format                                                         *)
(* ------------------------------------------------------------------ *)

let add_block buf tag s =
  Buffer.add_string buf (Printf.sprintf "%s %d\n" tag (String.length s));
  Buffer.add_string buf s;
  Buffer.add_char buf '\n'

let add_denots buf tag denots =
  Buffer.add_string buf (Printf.sprintf "%s %d\n" tag (List.length denots));
  List.iter
    (fun (name, members) ->
      Buffer.add_string buf (String.concat "\t" (name :: members));
      Buffer.add_char buf '\n')
    denots

let to_text = function
  | Step s ->
      let buf = Buffer.create 1024 in
      Buffer.add_string buf "certificate v1 step\n";
      add_block buf "source" s.source;
      add_block buf "r" s.r;
      add_denots buf "r-denotations" s.r_denotations;
      add_block buf "result" s.result;
      add_denots buf "result-denotations" s.result_denotations;
      Buffer.add_string buf "end\n";
      Buffer.contents buf
  | Relaxed_step rs ->
      let buf = Buffer.create 2048 in
      Buffer.add_string buf "certificate v1 relaxed-step\n";
      add_block buf "source" rs.rs_source;
      add_block buf "r" rs.rs_r;
      add_denots buf "r-denotations" rs.rs_r_denotations;
      add_block buf "relaxed" rs.rs_relaxed;
      add_denots buf "relaxed-denotations" rs.rs_relaxed_denotations;
      add_block buf "result" rs.rs_result;
      add_denots buf "result-denotations" rs.rs_result_denotations;
      Buffer.add_string buf "end\n";
      Buffer.contents buf
  | Fixed_point { problem } ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf "certificate v1 fixed-point\n";
      add_block buf "problem" problem;
      Buffer.add_string buf "end\n";
      Buffer.contents buf

exception Malformed of string

let of_text text =
  let pos = ref 0 in
  let len = String.length text in
  let fail fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt in
  let read_line () =
    if !pos >= len then fail "unexpected end of certificate";
    let stop =
      match String.index_from_opt text !pos '\n' with
      | Some i -> i
      | None -> fail "certificate line without terminating newline"
    in
    let line = String.sub text !pos (stop - !pos) in
    pos := stop + 1;
    line
  in
  let read_block tag =
    let line = read_line () in
    match String.split_on_char ' ' line with
    | [ t; n ] when t = tag -> (
        match int_of_string_opt n with
        | Some n when n >= 0 && !pos + n <= len ->
            let body = String.sub text !pos n in
            pos := !pos + n;
            if !pos >= len || text.[!pos] <> '\n' then
              fail "block %S is not newline-terminated (truncated?)" tag;
            incr pos;
            body
        | _ -> fail "bad length in block header %S" line)
    | _ -> fail "expected block %S, got %S" tag line
  in
  let read_denots tag =
    let line = read_line () in
    match String.split_on_char ' ' line with
    | [ t; n ] when t = tag -> (
        match int_of_string_opt n with
        | Some n when n >= 0 ->
            List.init n (fun _ ->
                match String.split_on_char '\t' (read_line ()) with
                | name :: (_ :: _ as members) -> (name, members)
                | _ -> fail "denotation line with no members under %S" tag)
        | _ -> fail "bad count in header %S" line)
    | _ -> fail "expected section %S, got %S" tag line
  in
  match
    let header = read_line () in
    match header with
    | "certificate v1 step" ->
        let source = read_block "source" in
        let r = read_block "r" in
        let r_denotations = read_denots "r-denotations" in
        let result = read_block "result" in
        let result_denotations = read_denots "result-denotations" in
        if read_line () <> "end" then fail "missing end marker";
        Step { source; r; r_denotations; result; result_denotations }
    | "certificate v1 relaxed-step" ->
        let rs_source = read_block "source" in
        let rs_r = read_block "r" in
        let rs_r_denotations = read_denots "r-denotations" in
        let rs_relaxed = read_block "relaxed" in
        let rs_relaxed_denotations = read_denots "relaxed-denotations" in
        let rs_result = read_block "result" in
        let rs_result_denotations = read_denots "result-denotations" in
        if read_line () <> "end" then fail "missing end marker";
        Relaxed_step
          {
            rs_source;
            rs_r;
            rs_r_denotations;
            rs_relaxed;
            rs_relaxed_denotations;
            rs_result;
            rs_result_denotations;
          }
    | "certificate v1 fixed-point" ->
        let problem = read_block "problem" in
        if read_line () <> "end" then fail "missing end marker";
        Fixed_point { problem }
    | _ -> fail "unknown certificate header %S" header
  with
  | cert -> Ok cert
  | exception Malformed msg -> Error ("certificate: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Re-validation                                                       *)
(* ------------------------------------------------------------------ *)

let parse_problem ~what text =
  match Serialize.of_string text with
  | p -> p
  | exception Failure msg -> raise (Malformed (what ^ ": " ^ msg))

(* Rebuild the [Rounde.denoted] array from the name-keyed pairs: entry
   order must match the (re)parsed alphabet's label order, and every
   member must name a source label. *)
let rebuild_denoted ~what ~(source : Problem.t) ~(problem : Problem.t) denots =
  let n = Alphabet.size problem.Problem.alpha in
  if List.length denots <> n then
    raise
      (Malformed
         (Printf.sprintf "%s: %d denotations for %d labels" what
            (List.length denots) n));
  let tbl = Hashtbl.create n in
  List.iter
    (fun (name, members) ->
      if Hashtbl.mem tbl name then
        raise (Malformed (what ^ ": duplicate denotation for " ^ name));
      Hashtbl.add tbl name members)
    denots;
  let denotations =
    Array.init n (fun l ->
        let name = Alphabet.name problem.Problem.alpha l in
        let members =
          match Hashtbl.find_opt tbl name with
          | Some m -> m
          | None -> raise (Malformed (what ^ ": no denotation for " ^ name))
        in
        List.fold_left
          (fun acc m ->
            match Alphabet.find source.Problem.alpha m with
            | l -> Labelset.add l acc
            | exception Not_found ->
                raise
                  (Malformed
                     (Printf.sprintf "%s: denotation member %S is not a \
                                      source label"
                        what m)))
          Labelset.empty members)
  in
  { Rounde.problem; denotations }

let validate ?work_budget cert =
  match
    match cert with
    | Step s ->
        let source = parse_problem ~what:"step source" s.source in
        let r = parse_problem ~what:"step r" s.r in
        let result = parse_problem ~what:"step result" s.result in
        let r_denoted =
          rebuild_denoted ~what:"r denotations" ~source ~problem:r
            s.r_denotations
        in
        let result_denoted =
          rebuild_denoted ~what:"result denotations" ~source:r ~problem:result
            s.result_denotations
        in
        Check.check_r ?work_budget ~source r_denoted;
        Check.check_rbar ?work_budget ~source:r result_denoted
    | Relaxed_step rs ->
        let source = parse_problem ~what:"relaxed-step source" rs.rs_source in
        let r = parse_problem ~what:"relaxed-step r" rs.rs_r in
        let relaxed = parse_problem ~what:"relaxed-step relaxed" rs.rs_relaxed in
        let result = parse_problem ~what:"relaxed-step result" rs.rs_result in
        let r_denoted =
          rebuild_denoted ~what:"r denotations" ~source ~problem:r
            rs.rs_r_denotations
        in
        let relaxed_denoted =
          rebuild_denoted ~what:"relaxed denotations" ~source:r ~problem:relaxed
            rs.rs_relaxed_denotations
        in
        let result_denoted =
          rebuild_denoted ~what:"result denotations" ~source:relaxed
            ~problem:result rs.rs_result_denotations
        in
        Check.check_r ?work_budget ~source r_denoted;
        Check.check_relaxation ?work_budget ~source:r relaxed_denoted;
        Check.check_rbar ?work_budget ~source:relaxed result_denoted
    | Fixed_point { problem } ->
        Check.check_fixed_point (parse_problem ~what:"fixed point" problem)
  with
  | () -> Ok ()
  | exception Malformed msg -> Error msg
  | exception Check.Violation msg -> Error msg
  | exception Budget.Budget_exceeded { budget; limit } ->
      Error (Budget.message ~budget ~limit)
  | exception Failure msg -> Error msg
