open Relim
module Graph = Dsgraph.Graph
module Tree_gen = Dsgraph.Tree_gen

type stats = {
  mutable witness_runs : int;
  mutable refutation_runs : int;
  mutable skipped : int;
}

let stats = { witness_runs = 0; refutation_runs = 0; skipped = 0 }

let reset_stats () =
  stats.witness_runs <- 0;
  stats.refutation_runs <- 0;
  stats.skipped <- 0

let fail fmt = Printf.ksprintf (fun s -> raise (Check.Violation s)) fmt

(* Definitional label-pair compatibility: {x, y} allowed by ℰ. *)
let edge_compat (p : Problem.t) =
  let n = Problem.label_count p in
  Array.init n (fun x ->
      Array.init n (fun y -> Constr.mem p.Problem.edge (Multiset.of_list [ x; y ])))

(* The 0-round algorithm induced by a degree-indexed port->label map:
   every node outputs [label ctx p] at port [p] from its initial view
   and terminates immediately.  [Run.run] reports [rounds = 0], which
   is asserted — these really are 0-round algorithms. *)
let zero_round_algo ~name label : (unit, int array, unit, int array) Localsim.Algo.t
    =
  {
    Localsim.Algo.name;
    init = (fun ctx () -> Array.init ctx.Localsim.Ctx.degree (label ctx));
    send = (fun ctx _ ~round:_ -> Array.make ctx.Localsim.Ctx.degree ());
    recv = (fun _ st ~round:_ _ -> st);
    output = (fun st -> Some st);
  }

let simulate ?edge_colors g algo =
  let result =
    Localsim.Run.run ~ids:Localsim.Run.Anonymous ?edge_colors g
      ~inputs:(Localsim.Run.no_inputs g) algo
  in
  if result.Localsim.Run.rounds <> 0 then
    fail "Simcheck: candidate algorithm used %d rounds instead of 0"
      result.Localsim.Run.rounds;
  Lcl.Labeling.make g result.Localsim.Run.outputs

(* ------------------------------------------------------------------ *)
(* Witness direction: simulate the algorithm the witness induces.      *)
(* ------------------------------------------------------------------ *)

(* Arbitrary ports: the witness w is pairwise/self compatible, so
   outputting its labels in any fixed port order survives every port
   numbering; degree-d nodes output a d-prefix, valid under the
   [`Extendable] boundary because w itself extends it. *)
let check_witness_arbitrary ~trees ~tree_size ~seed (p : Problem.t) w =
  let delta = max 1 (Problem.delta p) in
  let t = Array.of_list (Multiset.to_list w) in
  let algo =
    zero_round_algo ~name:"witness-arbitrary" (fun _ctx port -> t.(port))
  in
  for k = 0 to trees - 1 do
    let g =
      if delta = 1 then Tree_gen.path 2
      else
        Tree_gen.shuffle_ports
          (Tree_gen.random ~n:tree_size ~max_degree:delta ~seed:(seed + k))
          ~seed:(seed + (31 * k))
    in
    let labeling = simulate g algo in
    match Lcl.Labeling.violations ~boundary:`Extendable p labeling with
    | [] -> stats.witness_runs <- stats.witness_runs + 1
    | v :: _ ->
        fail
          "Simcheck (%s, arbitrary): witness %s fails on a random tree (%s)"
          p.Problem.name
          (Multiset.to_string p.Problem.alpha w)
          (Format.asprintf "%a" Lcl.Labeling.pp_violation v)
  done

(* Mirrored ports: the algorithm keys its output on the input edge
   color, so an edge colored c sees the same label on both sides —
   exactly the adversary of Lemma 12.  The witness guarantees each
   label is self-compatible and the color multiset is a sub-multiset
   of w, valid under [`Extendable]. *)
let check_witness_mirrored ~trees ~tree_size ~seed (p : Problem.t) w =
  let delta = max 1 (Problem.delta p) in
  let t = Array.of_list (Multiset.to_list w) in
  let algo =
    zero_round_algo ~name:"witness-mirrored" (fun ctx port ->
        t.(Localsim.Ctx.edge_color ctx port))
  in
  for k = 0 to trees - 1 do
    let g =
      if delta = 1 then Tree_gen.path 2
      else Tree_gen.random ~n:tree_size ~max_degree:delta ~seed:(seed + k)
    in
    let colors = Dsgraph.Edge_coloring.color_tree g in
    let labeling = simulate ~edge_colors:colors g algo in
    match Lcl.Labeling.violations ~boundary:`Extendable p labeling with
    | [] -> stats.witness_runs <- stats.witness_runs + 1
    | v :: _ ->
        fail "Simcheck (%s, mirrored): witness %s fails on a random tree (%s)"
          p.Problem.name
          (Multiset.to_string p.Problem.alpha w)
          (Format.asprintf "%a" Lcl.Labeling.pp_violation v)
  done

(* ------------------------------------------------------------------ *)
(* None direction: exhaustive refutation on the double-star family.    *)
(* ------------------------------------------------------------------ *)

(* The double star: two adjacent degree-Δ centers.  A 0-round
   algorithm is determined, on degree-Δ nodes, by one tuple t ∈ Σ^Δ;
   whatever it does on other degrees cannot repair a violation at the
   centers or on the center-center edge, so asserting that violation
   refutes every algorithm extending t. *)
let double_star delta =
  let g =
    if delta = 1 then Tree_gen.path 2
    else Tree_gen.caterpillar ~spine:2 ~legs:(delta - 1)
  in
  let centers =
    List.filter (fun v -> Graph.degree g v = delta)
      (List.init (Graph.n g) Fun.id)
  in
  match centers with
  | [ u; v ] -> (g, u, v)
  | _ -> invalid_arg "Simcheck: double star construction"

let iter_tuples n delta f =
  let t = Array.make delta 0 in
  let rec go k = if k = delta then f t else
    for l = 0 to n - 1 do
      t.(k) <- l;
      go (k + 1)
    done
  in
  if delta > 0 then go 0

let find_violation ~expect violations g u v =
  List.exists
    (fun viol ->
      match (viol, expect) with
      | Lcl.Labeling.Node_violation w, `Node -> w = u || w = v
      | Lcl.Labeling.Edge_violation e, `Edge ->
          let a, b = Graph.endpoints g e in
          (a = u && b = v) || (a = v && b = u)
      | _ -> false)
    violations

let check_none_arbitrary ~tuple_budget (p : Problem.t) =
  let n = Problem.label_count p in
  let delta = Problem.delta p in
  let space = float_of_int n ** float_of_int delta in
  if delta < 1 || space > float_of_int tuple_budget then
    stats.skipped <- stats.skipped + 1
  else begin
    let compat = edge_compat p in
    let g, u, v = double_star delta in
    let pu = Graph.port_of g u v and pv = Graph.port_of g v u in
    iter_tuples n delta (fun t ->
        let m = Multiset.of_list (Array.to_list t) in
        let algo =
          let t = Array.copy t in
          zero_round_algo ~name:"refute-arbitrary" (fun _ctx port -> t.(port))
        in
        if not (Constr.mem p.Problem.node m) then begin
          (* The tuple's configuration is disallowed: node violation at
             the centers on the unpermuted double star. *)
          let labeling = simulate g algo in
          let violations = Lcl.Labeling.violations ~boundary:`Free p labeling in
          if not (find_violation ~expect:`Node violations g u v) then
            fail
              "Simcheck (%s, arbitrary None): tuple %s should violate the \
               node constraint at a center but the simulation shows no such \
               violation"
              p.Problem.name
              (Multiset.to_string p.Problem.alpha m)
        end
        else begin
          (* The configuration is allowed, so (since the engine claims
             unsolvability) some pair of its labels must be
             incompatible; connect those two ports across the
             center-center edge. *)
          let bad = ref None in
          for i = 0 to delta - 1 do
            for j = 0 to delta - 1 do
              if !bad = None && not compat.(t.(i)).(t.(j)) then
                bad := Some (i, j)
            done
          done;
          match !bad with
          | None ->
              fail
                "Simcheck (%s, arbitrary None): engine claims unsolvable but \
                 tuple %s is an allowed configuration with pairwise \
                 compatible labels"
                p.Problem.name
                (Multiset.to_string p.Problem.alpha m)
          | Some (i, j) ->
              let perms =
                Array.init (Graph.n g) (fun w ->
                    let id = Array.init (Graph.degree g w) Fun.id in
                    let swap a b =
                      let tmp = id.(a) in
                      id.(a) <- id.(b);
                      id.(b) <- tmp
                    in
                    if w = u then swap pu i
                    else if w = v then swap pv j;
                    id)
              in
              let g' = Graph.permute_ports g perms in
              let labeling = simulate g' algo in
              let violations =
                Lcl.Labeling.violations ~boundary:`Free p labeling
              in
              if not (find_violation ~expect:`Edge violations g' u v) then
                fail
                  "Simcheck (%s, arbitrary None): tuple %s with the \
                   center-center edge at ports (%d, %d) should violate the \
                   edge constraint but the simulation shows no such violation"
                  p.Problem.name
                  (Multiset.to_string p.Problem.alpha m)
                  i j
        end;
        stats.refutation_runs <- stats.refutation_runs + 1)
  end

let check_none_mirrored ~tuple_budget (p : Problem.t) =
  let n = Problem.label_count p in
  let delta = Problem.delta p in
  let space = float_of_int n ** float_of_int delta in
  if delta < 1 || space > float_of_int tuple_budget then
    stats.skipped <- stats.skipped + 1
  else begin
    let compat = edge_compat p in
    let g, u, v = double_star delta in
    (* A proper coloring of the double star parameterized by the color
       [c] of the center-center edge: each center's remaining edges take
       the other colors in increasing order, so both centers see every
       color exactly once. *)
    let coloring c =
      let colors = Array.make (Graph.m g) (-1) in
      let assign w =
        let next = ref 0 in
        for port = 0 to Graph.degree g w - 1 do
          let e = Graph.edge_id g w port in
          if colors.(e) < 0 then
            if Graph.neighbor g w port = u || Graph.neighbor g w port = v then
              colors.(e) <- c
            else begin
              if !next = c then incr next;
              colors.(e) <- !next;
              incr next
            end
        done
      in
      assign u;
      assign v;
      colors
    in
    iter_tuples n delta (fun t ->
        (* t is indexed by edge color. *)
        let m = Multiset.of_list (Array.to_list t) in
        let algo =
          let t = Array.copy t in
          zero_round_algo ~name:"refute-mirrored" (fun ctx port ->
              t.(Localsim.Ctx.edge_color ctx port))
        in
        if not (Constr.mem p.Problem.node m) then begin
          let labeling = simulate ~edge_colors:(coloring 0) g algo in
          let violations = Lcl.Labeling.violations ~boundary:`Free p labeling in
          if not (find_violation ~expect:`Node violations g u v) then
            fail
              "Simcheck (%s, mirrored None): tuple %s should violate the node \
               constraint at a center but the simulation shows no such \
               violation"
              p.Problem.name
              (Multiset.to_string p.Problem.alpha m)
        end
        else begin
          let bad = ref None in
          for c = 0 to delta - 1 do
            if !bad = None && not compat.(t.(c)).(t.(c)) then bad := Some c
          done;
          match !bad with
          | None ->
              fail
                "Simcheck (%s, mirrored None): engine claims unsolvable but \
                 tuple %s is an allowed configuration of self-compatible \
                 labels"
                p.Problem.name
                (Multiset.to_string p.Problem.alpha m)
          | Some c ->
              let labeling = simulate ~edge_colors:(coloring c) g algo in
              let violations =
                Lcl.Labeling.violations ~boundary:`Free p labeling
              in
              if not (find_violation ~expect:`Edge violations g u v) then
                fail
                  "Simcheck (%s, mirrored None): tuple %s with the \
                   center-center edge colored %d should violate the edge \
                   constraint but the simulation shows no such violation"
                  p.Problem.name
                  (Multiset.to_string p.Problem.alpha m)
                  c
        end;
        stats.refutation_runs <- stats.refutation_runs + 1)
  end

let cross_check ?(trees = 3) ?(tree_size = 16) ?(tuple_budget = 100_000)
    ?(seed = 0) ~mode (p : Problem.t) verdict =
  match (verdict, mode) with
  | Some w, `Arbitrary -> check_witness_arbitrary ~trees ~tree_size ~seed p w
  | Some w, `Mirrored -> check_witness_mirrored ~trees ~tree_size ~seed p w
  | None, `Arbitrary -> check_none_arbitrary ~tuple_budget p
  | None, `Mirrored -> check_none_mirrored ~tuple_budget p
