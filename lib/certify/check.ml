open Relim

exception Violation of string

type stats = {
  mutable r_certified : int;
  mutable rbar_certified : int;
  mutable zero_certified : int;
  mutable fixed_points_certified : int;
  mutable relaxations_certified : int;
  mutable skipped_subchecks : int;
  mutable time_s : float;
}

let stats =
  {
    r_certified = 0;
    rbar_certified = 0;
    zero_certified = 0;
    fixed_points_certified = 0;
    relaxations_certified = 0;
    skipped_subchecks = 0;
    time_s = 0.;
  }

let reset_stats () =
  stats.r_certified <- 0;
  stats.rbar_certified <- 0;
  stats.zero_certified <- 0;
  stats.fixed_points_certified <- 0;
  stats.relaxations_certified <- 0;
  stats.skipped_subchecks <- 0;
  stats.time_s <- 0.

let fail fmt = Printf.ksprintf (fun s -> raise (Violation s)) fmt

(* Budget machinery for the exhaustive sub-checks: [guarded] runs [f]
   with a [charge] function; if the accumulated charge exceeds the
   budget the sub-check is abandoned and counted as skipped.  A skipped
   sub-check makes the certificate partial, never wrong. *)
exception Skipped

let guarded budget f =
  let used = ref 0 in
  let charge k =
    used := !used + k;
    if !used > budget then raise Skipped
  in
  try f charge
  with Skipped -> stats.skipped_subchecks <- stats.skipped_subchecks + 1

(* Only the outermost check accumulates wall time: a fixed-point
   replay re-enters [check_r]/[check_rbar] through the engine
   observers, and their time is already inside the replay's. *)
let depth = ref 0

let timed f =
  if !depth > 0 then f ()
  else begin
    incr depth;
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        decr depth;
        stats.time_s <- stats.time_s +. (Unix.gettimeofday () -. t0))
      f
  end

(* Edge-compatibility matrix, derived definitionally by expanding the
   edge constraint into its concrete pairs (no diagram, no masks). *)
let edge_compat (p : Problem.t) =
  let n = Problem.label_count p in
  let compat = Array.make_matrix n n false in
  List.iter
    (fun m ->
      match Multiset.to_list m with
      | [ a; b ] ->
          compat.(a).(b) <- true;
          compat.(b).(a) <- true
      | _ -> fail "%s: edge constraint has a line of arity <> 2" p.Problem.name)
    (Constr.expand p.edge);
  compat

(* Shared shape checks on a [denoted] result: denotations must be
   distinct non-empty subsets of the source alphabet, one per output
   label, and every output label must occur in the node constraint. *)
let check_denotations ~what ~source (d : Rounde.denoted) =
  let p' = d.Rounde.problem in
  let n = Problem.label_count source in
  let n' = Problem.label_count p' in
  let denots = d.Rounde.denotations in
  if Array.length denots <> n' then
    fail "%s: %d denotations for %d output labels" what (Array.length denots) n';
  let full = Labelset.full n in
  Array.iteri
    (fun i s ->
      if Labelset.is_empty s then fail "%s: denotation of label %d is empty" what i;
      if not (Labelset.subset s full) then
        fail "%s: denotation of label %d leaves the source alphabet" what i)
    denots;
  Array.iteri
    (fun i si ->
      Array.iteri
        (fun j sj ->
          if i < j && Labelset.equal si sj then
            fail "%s: labels %d and %d share a denotation" what i j)
        denots)
    denots

(* Concrete (i, j) label pairs denoted by an edge constraint,
   deduplicated, with i <= j. *)
let edge_pairs ~what (c : Constr.t) =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun line ->
      Line.expand line (fun m ->
          match Multiset.to_list m with
          | [ i; j ] -> Hashtbl.replace seen (i, j) ()
          | _ -> fail "%s: edge line of arity <> 2" what))
    (Constr.lines c);
  Hashtbl.fold (fun k () acc -> k :: acc) seen []

(* All multisets of size [size] over labels [0 .. n-1], in
   non-decreasing label order; [charge]d one unit each. *)
let iter_multisets ~charge n size f =
  let rec go lo acc k =
    if k = 0 then begin
      charge 1;
      f (Multiset.of_list acc)
    end
    else
      for l = lo to n - 1 do
        go l (l :: acc) (k - 1)
      done
  in
  go 0 [] size

(* ------------------------------------------------------------------ *)
(* R                                                                   *)
(* ------------------------------------------------------------------ *)

let check_r ?(work_budget = 2_000_000) ~source:(p : Problem.t) (d : Rounde.denoted)
    =
  timed @@ fun () ->
  let p' = d.Rounde.problem in
  let what = Printf.sprintf "R certificate (%s)" p.Problem.name in
  let n = Problem.label_count p in
  let delta = Problem.delta p in
  if Problem.delta p' <> delta then
    fail "%s: node arity changed from %d to %d" what delta (Problem.delta p');
  check_denotations ~what ~source:p d;
  let denots = d.Rounde.denotations in
  let compat = edge_compat p in
  let all_cross a b =
    Labelset.for_all (fun x -> Labelset.for_all (fun y -> compat.(x).(y)) b) a
  in
  let pairs = edge_pairs ~what p'.Problem.edge in
  (* Validity: every choice across every emitted pair is compatible. *)
  List.iter
    (fun (i, j) ->
      if not (all_cross denots.(i) denots.(j)) then
        fail "%s: emitted pair (%s, %s) has an incompatible choice" what
          (Alphabet.set_name p.Problem.alpha denots.(i))
          (Alphabet.set_name p.Problem.alpha denots.(j)))
    pairs;
  (* Maximality: no source label can be added to either side. *)
  let side_extendable side other =
    let candidate = ref None in
    for z = 0 to n - 1 do
      if
        !candidate = None
        && (not (Labelset.mem z side))
        && Labelset.for_all (fun y -> compat.(z).(y)) other
      then candidate := Some z
    done;
    !candidate
  in
  List.iter
    (fun (i, j) ->
      let complain z si sj =
        fail "%s: pair (%s, %s) is not maximal — label %s can join the first side"
          what
          (Alphabet.set_name p.Problem.alpha si)
          (Alphabet.set_name p.Problem.alpha sj)
          (Alphabet.name p.Problem.alpha z)
      in
      (match side_extendable denots.(i) denots.(j) with
      | Some z -> complain z denots.(i) denots.(j)
      | None -> ());
      match side_extendable denots.(j) denots.(i) with
      | Some z -> complain z denots.(j) denots.(i)
      | None -> ())
    pairs;
  (* Completeness: every valid pair must be dominated by an emitted
     one.  Any valid (A, B) satisfies B ⊆ N(A), so scanning the pairs
     (S, N(S)) over all non-empty subsets S is exhaustive.  2^n scan,
     budget-guarded. *)
  guarded work_budget (fun charge ->
      charge ((1 lsl n) * n);
      for bits = 1 to (1 lsl n) - 1 do
        let s = Labelset.of_bits bits in
        let b = ref Labelset.empty in
        for y = 0 to n - 1 do
          if Labelset.for_all (fun x -> compat.(x).(y)) s then
            b := Labelset.add y !b
        done;
        let b = !b in
        if not (Labelset.is_empty b) then begin
          let dominated =
            List.exists
              (fun (i, j) ->
                (Labelset.subset s denots.(i) && Labelset.subset b denots.(j))
                || (Labelset.subset s denots.(j) && Labelset.subset b denots.(i)))
              pairs
          in
          if not dominated then
            fail "%s: valid pair (%s, %s) is dominated by no emitted pair" what
              (Alphabet.set_name p.Problem.alpha s)
              (Alphabet.set_name p.Problem.alpha b)
        end
      done);
  (* Node constraint: extensionally, a configuration over new labels is
     allowed iff some choice of representatives (one source label from
     each denotation) is an allowed source configuration. *)
  guarded work_budget (fun charge ->
      let est = Constr.expansion_estimate p'.Problem.node in
      if est > float_of_int work_budget then raise Skipped;
      let allowed = Hashtbl.create 256 in
      List.iter
        (fun m -> Hashtbl.replace allowed m ())
        (Constr.expand p'.Problem.node);
      let n' = Problem.label_count p' in
      let rec has_choice acc = function
        | [] -> Constr.mem p.Problem.node (Multiset.of_list acc)
        | l :: rest ->
            charge (Labelset.cardinal denots.(l));
            Labelset.exists (fun x -> has_choice (x :: acc) rest) denots.(l)
      in
      iter_multisets ~charge n' delta (fun m ->
          let emitted = Hashtbl.mem allowed m in
          let expected = has_choice [] (Multiset.to_list m) in
          if emitted && not expected then
            fail "%s: node configuration %s has no allowed choice of \
                  representatives"
              what
              (Multiset.to_string p'.Problem.alpha m)
          else if expected && not emitted then
            fail "%s: node configuration %s admits an allowed choice but is \
                  not in the node constraint"
              what
              (Multiset.to_string p'.Problem.alpha m)));
  stats.r_certified <- stats.r_certified + 1

(* ------------------------------------------------------------------ *)
(* R̄                                                                  *)
(* ------------------------------------------------------------------ *)

(* Injective matching of every set of [bi] into a (weak) superset in
   [bj], by plain backtracking — written from scratch; the engine's
   transportation solver is never consulted. *)
let box_dominated bi bj =
  let d = Array.length bj in
  let used = Array.make d false in
  let rec go = function
    | [] -> true
    | s :: rest ->
        let rec try_slot j =
          if j >= d then false
          else if (not used.(j)) && Labelset.subset s bj.(j) then begin
            used.(j) <- true;
            if go rest then true
            else begin
              used.(j) <- false;
              try_slot (j + 1)
            end
          end
          else try_slot (j + 1)
        in
        try_slot 0
  in
  go (Array.to_list bi)

let check_rbar ?(work_budget = 2_000_000) ~source:(p : Problem.t)
    (d : Rounde.denoted) =
  timed @@ fun () ->
  let p'' = d.Rounde.problem in
  let what = Printf.sprintf "Rbar certificate (%s)" p.Problem.name in
  let delta = Problem.delta p in
  if Problem.delta p'' <> delta then
    fail "%s: node arity changed from %d to %d" what delta (Problem.delta p'');
  check_denotations ~what ~source:p d;
  let denots = d.Rounde.denotations in
  let compat = edge_compat p in
  let pp_set = Alphabet.set_name p.Problem.alpha in
  (* Boxes: the concrete node configurations of the output, with each
     output label replaced by its denotation. *)
  let boxes =
    let acc = ref [] in
    List.iter
      (fun line ->
        Line.expand line (fun m ->
            acc :=
              Array.of_list (List.map (fun l -> denots.(l)) (Multiset.to_list m))
              :: !acc))
      (Constr.lines p''.Problem.node);
    Array.of_list (List.rev !acc)
  in
  let pp_box b =
    String.concat " " (List.map pp_set (Array.to_list b))
  in
  (* Validity + per-position maximality of every box. *)
  guarded work_budget (fun charge ->
      let n = Problem.label_count p in
      Array.iter
        (fun box ->
          let d_ = Array.length box in
          (* Every choice b1 ∈ B1, …, bΔ ∈ BΔ is allowed. *)
          let rec all_choices acc k =
            if k = d_ then begin
              charge 1;
              if not (Constr.mem p.Problem.node (Multiset.of_list acc)) then
                fail "%s: box [%s] has the disallowed choice %s" what
                  (pp_box box)
                  (Multiset.to_string p.Problem.alpha (Multiset.of_list acc))
            end
            else Labelset.iter (fun x -> all_choices (x :: acc) (k + 1)) box.(k)
          in
          all_choices [] 0;
          (* No label can be added at any position: extending position k
             by z must create some disallowed choice. *)
          let rec some_bad_choice acc k skip z =
            if k = d_ then begin
              charge 1;
              not (Constr.mem p.Problem.node (Multiset.of_list (z :: acc)))
            end
            else if k = skip then some_bad_choice acc (k + 1) skip z
            else
              Labelset.exists
                (fun x -> some_bad_choice (x :: acc) (k + 1) skip z)
                box.(k)
          in
          for k = 0 to d_ - 1 do
            for z = 0 to n - 1 do
              if not (Labelset.mem z box.(k)) then
                if not (some_bad_choice [] 0 k z) then
                  fail "%s: box [%s] is not maximal — label %s fits at \
                        position %d"
                    what (pp_box box)
                    (Alphabet.name p.Problem.alpha z)
                    k
            done
          done)
        boxes);
  (* No box is dominated by (injectively embeds set-wise into) another. *)
  guarded work_budget (fun charge ->
      let nb = Array.length boxes in
      charge (nb * nb * delta);
      for i = 0 to nb - 1 do
        for j = 0 to nb - 1 do
          if i <> j && box_dominated boxes.(i) boxes.(j) then
            fail "%s: box [%s] is dominated by box [%s]" what (pp_box boxes.(i))
              (pp_box boxes.(j))
        done
      done);
  (* Coverage: every allowed source configuration must embed into some
     box (the singleton box it induces is valid, hence must be
     dominated by an emitted one). *)
  guarded work_budget (fun charge ->
      let est = Constr.expansion_estimate p.Problem.node in
      if est > float_of_int work_budget then raise Skipped;
      List.iter
        (fun m ->
          charge (Array.length boxes);
          let singletons =
            Array.of_list
              (List.map Labelset.singleton (Multiset.to_list m))
          in
          if
            not
              (Array.exists (fun box -> box_dominated singletons box) boxes)
          then
            fail "%s: allowed configuration %s is covered by no box" what
              (Multiset.to_string p.Problem.alpha m))
        (Constr.expand p.Problem.node));
  (* Edge constraint: exactly the pairs of used sets with a compatible
     choice. *)
  let n'' = Problem.label_count p'' in
  let pairs = edge_pairs ~what p''.Problem.edge in
  let has_pair =
    let tbl = Hashtbl.create 64 in
    List.iter (fun ij -> Hashtbl.replace tbl ij ()) pairs;
    fun i j -> Hashtbl.mem tbl (min i j, max i j)
  in
  for i = 0 to n'' - 1 do
    for j = i to n'' - 1 do
      let compatible_choice =
        Labelset.exists
          (fun a -> Labelset.exists (fun b -> compat.(a).(b)) denots.(j))
          denots.(i)
      in
      if compatible_choice && not (has_pair i j) then
        fail "%s: sets %s and %s admit a compatible choice but the pair is \
              missing from the edge constraint"
          what (pp_set denots.(i)) (pp_set denots.(j))
      else if (not compatible_choice) && has_pair i j then
        fail "%s: emitted edge pair (%s, %s) admits no compatible choice" what
          (pp_set denots.(i)) (pp_set denots.(j))
    done
  done;
  stats.rbar_certified <- stats.rbar_certified + 1

(* ------------------------------------------------------------------ *)
(* 0-round verdicts                                                    *)
(* ------------------------------------------------------------------ *)

let check_zero_round ?(expand_limit = 2e6) ~mode (p : Problem.t)
    (verdict : Multiset.t option) =
  timed @@ fun () ->
  let what =
    Printf.sprintf "0-round certificate (%s, %s ports)" p.Problem.name
      (match mode with `Mirrored -> "mirrored" | `Arbitrary -> "arbitrary")
  in
  let compat = edge_compat p in
  let usable m =
    match mode with
    | `Mirrored -> List.for_all (fun l -> compat.(l).(l)) (Multiset.to_list m)
    | `Arbitrary ->
        let sup = Labelset.elements (Multiset.support m) in
        List.for_all (fun a -> List.for_all (fun b -> compat.(a).(b)) sup) sup
  in
  (match verdict with
  | Some w ->
      if Multiset.size w <> Problem.delta p then
        fail "%s: witness %s has arity %d, expected %d" what
          (Multiset.to_string p.Problem.alpha w)
          (Multiset.size w) (Problem.delta p);
      if not (Constr.mem p.Problem.node w) then
        fail "%s: witness %s is not an allowed node configuration" what
          (Multiset.to_string p.Problem.alpha w);
      if not (usable w) then
        fail "%s: witness %s fails the port-compatibility requirement" what
          (Multiset.to_string p.Problem.alpha w)
  | None ->
      guarded max_int (fun _charge ->
          if Constr.expansion_estimate p.Problem.node > expand_limit then
            raise Skipped;
          List.iter
            (fun m ->
              if usable m then
                fail "%s: engine claims unsolvable, but configuration %s is a \
                      valid witness"
                  what
                  (Multiset.to_string p.Problem.alpha m))
            (Constr.expand ~limit:expand_limit p.Problem.node)));
  stats.zero_certified <- stats.zero_certified + 1

(* ------------------------------------------------------------------ *)
(* Relaxations                                                         *)
(* ------------------------------------------------------------------ *)

(* Does the concrete source configuration [m] fit into [line] of the
   relaxed problem?  A slot holding source label [y] may be rewritten
   to any relaxed label [s] with [y ∈ denots.(s)]; a line group [G]
   accepts [y] iff some member of [G] denotes it.  Plain backtracking
   over the label classes of [m] (fresh code — the engine's
   transportation solver is never consulted). *)
let config_fits_line ~denots m line =
  let classes = Array.of_list (Multiset.counts m) in
  let groups = Array.of_list (Line.groups line) in
  let caps = Array.map snd groups in
  let fits y g =
    Labelset.exists (fun s -> Labelset.mem y denots.(s)) g
  in
  let rec place i remaining =
    if i = Array.length classes then true
    else if remaining = 0 then place (i + 1) (-1)
    else begin
      let remaining =
        if remaining < 0 then snd classes.(i) else remaining
      in
      let y = fst classes.(i) in
      let rec try_group j =
        if j >= Array.length groups then false
        else if caps.(j) > 0 && fits y (fst groups.(j)) then begin
          caps.(j) <- caps.(j) - 1;
          if place i (remaining - 1) then true
          else begin
            caps.(j) <- caps.(j) + 1;
            try_group (j + 1)
          end
        end
        else try_group (j + 1)
      in
      try_group 0
    end
  in
  place 0 (-1)

let check_relaxation ?(work_budget = 2_000_000) ~source:(p : Problem.t)
    (d : Rounde.denoted) =
  timed @@ fun () ->
  let q = d.Rounde.problem in
  let what = Printf.sprintf "relaxation certificate (%s)" p.Problem.name in
  check_denotations ~what ~source:p d;
  let denots = d.Rounde.denotations in
  if Problem.delta q <> Problem.delta p then
    fail "%s: node arity changed from %d to %d" what (Problem.delta p)
      (Problem.delta q);
  (* Cover: every source label occurring in a constraint must be
     denoted by some relaxed label, or no half-edge carrying it could
     be rewritten. *)
  let used =
    Labelset.union (Constr.support p.Problem.node) (Constr.support p.Problem.edge)
  in
  let containers y =
    let acc = ref Labelset.empty in
    Array.iteri
      (fun s ds -> if Labelset.mem y ds then acc := Labelset.add s !acc)
      denots;
    !acc
  in
  Labelset.iter
    (fun y ->
      if Labelset.is_empty (containers y) then
        fail "%s: source label %s is denoted by no relaxed label" what
          (Alphabet.name p.Problem.alpha y))
    used;
  (* Edge condition: the rewrite of a half-edge label must be free.
     For every concrete source edge pair (y1, y2), EVERY pair of
     containers (S1 ∋ y1, S2 ∋ y2) must be allowed by the relaxed edge
     constraint — the node-side witness then never conflicts with the
     edge constraint. *)
  let q_pairs =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun ij -> Hashtbl.replace tbl ij ())
      (edge_pairs ~what q.Problem.edge);
    fun i j -> Hashtbl.mem tbl (min i j, max i j)
  in
  List.iter
    (fun (y1, y2) ->
      Labelset.iter
        (fun s1 ->
          Labelset.iter
            (fun s2 ->
              if not (q_pairs s1 s2) then
                fail
                  "%s: source edge pair (%s, %s) rewrites to (%s, %s), which \
                   the relaxed edge constraint forbids"
                  what
                  (Alphabet.name p.Problem.alpha y1)
                  (Alphabet.name p.Problem.alpha y2)
                  (Alphabet.name q.Problem.alpha s1)
                  (Alphabet.name q.Problem.alpha s2))
            (containers y2))
        (containers y1))
    (edge_pairs ~what p.Problem.edge);
  (* Node condition: every allowed source configuration must fit into
     some relaxed node line (budget-guarded expansion: a skip leaves
     the certificate partial, never wrong). *)
  guarded work_budget (fun charge ->
      if Constr.expansion_estimate p.Problem.node > float_of_int work_budget
      then raise Skipped;
      let lines = Constr.lines q.Problem.node in
      List.iter
        (fun m ->
          charge (List.length lines);
          if not (List.exists (config_fits_line ~denots m) lines) then
            fail "%s: allowed source configuration %s fits no relaxed node line"
              what
              (Multiset.to_string p.Problem.alpha m))
        (Constr.expand ~limit:(float_of_int work_budget) p.Problem.node));
  stats.relaxations_certified <- stats.relaxations_certified + 1

(* ------------------------------------------------------------------ *)
(* Fixed points                                                        *)
(* ------------------------------------------------------------------ *)

let check_fixed_point (p : Problem.t) =
  timed @@ fun () ->
  let { Rounde.problem = next; _ } =
    Rounde.step ~pool:Parallel.Pool.sequential p
  in
  let next = Simplify.normalize next in
  let claimed = Simplify.normalize p in
  if not (Iso.equal_up_to_renaming next claimed) then
    fail
      "fixed-point certificate (%s): a fresh sequential replay of the speedup \
       step is not isomorphic to the claimed fixed point"
      p.Problem.name;
  stats.fixed_points_certified <- stats.fixed_points_certified + 1
