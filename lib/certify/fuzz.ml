open Relim

type outcome = Passed | Skipped of string | Failed of string

type reproducer = {
  message : string;
  problem : Problem.t;
  rendered : string;
  roundtrip_ok : bool;
}

type report = {
  mutable runs : int;
  mutable passed : int;
  mutable skipped : int;
  mutable reproducers : reproducer list;
}

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

let gen_problem ?(max_labels = 4) ?(max_delta = 3) rng =
  let n = 1 + Random.State.int rng max_labels in
  let delta = 1 + Random.State.int rng max_delta in
  let names =
    List.init n (fun i -> String.make 1 (Char.chr (Char.code 'A' + i)))
  in
  let alpha = Alphabet.create names in
  let rand_set () =
    Labelset.of_bits (1 + Random.State.int rng ((1 lsl n) - 1))
  in
  let rand_line arity =
    Line.make (List.init arity (fun _ -> (rand_set (), 1)))
  in
  let node_lines =
    List.init (1 + Random.State.int rng 3) (fun _ -> rand_line delta)
  in
  let edge_lines =
    List.init (1 + Random.State.int rng 2) (fun _ -> rand_line 2)
  in
  Problem.make ~name:"fuzz" ~alpha ~node:(Constr.make node_lines)
    ~edge:(Constr.make edge_lines)

(* ------------------------------------------------------------------ *)
(* One iteration                                                       *)
(* ------------------------------------------------------------------ *)

let run_one ?mutate_r ?pool ?(sim_seed = 0) (p : Problem.t) =
  match
    let d1 = Rounde.r p in
    let d1 = match mutate_r with None -> d1 | Some f -> f d1 in
    Check.check_r ~source:p d1;
    let d2 = Rounde.rbar ~pool:Parallel.Pool.sequential d1.Rounde.problem in
    Check.check_rbar ~source:d1.Rounde.problem d2;
    (match pool with
    | None -> ()
    | Some pool ->
        let s1 = Rounde.step ~pool:Parallel.Pool.sequential p in
        let s2 = Rounde.step ~pool p in
        let r1 = Serialize.to_string s1.Rounde.problem in
        let r2 = Serialize.to_string s2.Rounde.problem in
        if r1 <> r2 then
          raise
            (Check.Violation
               (Printf.sprintf
                  "Fuzz: Rounde.step differs between 1 and %d domains on \
                   %s:\n%s\n--- vs ---\n%s"
                  (Parallel.Pool.domains pool)
                  p.Problem.name r1 r2)));
    let vm = Zeroround.solvable_mirrored p in
    Check.check_zero_round ~mode:`Mirrored p vm;
    Simcheck.cross_check ~mode:`Mirrored ~seed:sim_seed p vm;
    let va =
      Zeroround.solvable_arbitrary_ports ~pool:Parallel.Pool.sequential p
    in
    Check.check_zero_round ~mode:`Arbitrary p va;
    Simcheck.cross_check ~mode:`Arbitrary ~seed:sim_seed p va
  with
  | () -> Passed
  | exception Check.Violation m -> Failed m
  | exception Relim.Budget.Budget_exceeded { budget; limit } ->
      Skipped (Relim.Budget.message ~budget ~limit)
  | exception Failure m -> Skipped m

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

(* Remove label [l] from a constraint: strip it from every group,
   dropping lines where a group empties.  [None] when nothing is
   left. *)
let constr_without_label l c =
  let lines =
    List.filter_map
      (fun line ->
        match Line.map_syms (Labelset.remove l) line with
        | line -> Some line
        | exception Invalid_argument _ -> None)
      (Constr.lines c)
  in
  match lines with [] -> None | _ -> Some (Constr.make lines)

let without_label (p : Problem.t) l =
  match
    (constr_without_label l p.Problem.node, constr_without_label l p.Problem.edge)
  with
  | Some node, Some edge ->
      Some (Problem.make ~name:p.Problem.name ~alpha:p.Problem.alpha ~node ~edge)
  | _ -> None

let without_line (p : Problem.t) which i =
  let drop c =
    let lines = Constr.lines c in
    if List.length lines <= 1 then None
    else Some (Constr.make (List.filteri (fun j _ -> j <> i) lines))
  in
  match which with
  | `Node ->
      Option.map
        (fun node ->
          Problem.make ~name:p.Problem.name ~alpha:p.Problem.alpha ~node
            ~edge:p.Problem.edge)
        (drop p.Problem.node)
  | `Edge ->
      Option.map
        (fun edge ->
          Problem.make ~name:p.Problem.name ~alpha:p.Problem.alpha
            ~node:p.Problem.node ~edge)
        (drop p.Problem.edge)

let shrink ~fails p =
  let candidates p =
    let labels =
      Labelset.elements
        (Labelset.union
           (Constr.support p.Problem.node)
           (Constr.support p.Problem.edge))
    in
    List.filter_map (without_label p) labels
    @ List.filter_map
        (without_line p `Node)
        (List.init (List.length (Constr.lines p.Problem.node)) Fun.id)
    @ List.filter_map
        (without_line p `Edge)
        (List.init (List.length (Constr.lines p.Problem.edge)) Fun.id)
  in
  let rec go p =
    match List.find_opt (fun q -> fails q <> None) (candidates p) with
    | Some q -> go q
    | None -> p
  in
  go p

(* ------------------------------------------------------------------ *)
(* Campaign                                                            *)
(* ------------------------------------------------------------------ *)

let run ?mutate_r ?(count = 100) ?(seed = 2026) ?(max_labels = 4)
    ?(max_delta = 3) ?(domains = 2) () =
  let rng = Random.State.make [| seed |] in
  let pool =
    if domains > 1 then Some (Parallel.Pool.create ~domains) else None
  in
  Fun.protect ~finally:(fun () -> Option.iter Parallel.Pool.shutdown pool)
  @@ fun () ->
  let report = { runs = 0; passed = 0; skipped = 0; reproducers = [] } in
  for i = 0 to count - 1 do
    let p = gen_problem ~max_labels ~max_delta rng in
    report.runs <- report.runs + 1;
    match run_one ?mutate_r ?pool ~sim_seed:i p with
    | Passed -> report.passed <- report.passed + 1
    | Skipped _ -> report.skipped <- report.skipped + 1
    | Failed _ ->
        let fails q =
          match run_one ?mutate_r ?pool ~sim_seed:i q with
          | Failed m -> Some m
          | Passed | Skipped _ -> None
        in
        let shrunk = Problem.trim (shrink ~fails p) in
        let message =
          match fails shrunk with Some m -> m | None -> "(unstable failure)"
        in
        let rendered = Serialize.to_string shrunk in
        let roundtrip_ok =
          match Serialize.of_string rendered with
          | q -> Iso.equal_up_to_renaming q shrunk
          | exception _ -> false
        in
        report.reproducers <-
          { message; problem = shrunk; rendered; roundtrip_ok }
          :: report.reproducers
  done;
  report.reproducers <- List.rev report.reproducers;
  report

let pp_report ppf r =
  Format.fprintf ppf "fuzz: %d runs, %d passed, %d skipped, %d violations@."
    r.runs r.passed r.skipped
    (List.length r.reproducers);
  List.iteri
    (fun i rep ->
      Format.fprintf ppf "@.--- reproducer %d (round-trip %s) ---@.%s@.%s@." i
        (if rep.roundtrip_ok then "ok" else "BROKEN")
        rep.message rep.rendered)
    r.reproducers
