(** Independent certificate checker for the round-elimination engine.

    Every function here re-derives the claimed property {e directly
    from the definitions} in Section 2 of the paper — universal /
    existential quantifier checks over label sets and concrete
    configurations — using only the problem/constraint primitives
    ([Problem], [Constr], [Line], [Labelset], [Multiset]).  None of
    the optimized machinery is involved: no Galois-closure lattice, no
    node diagram or right-closed-set enumeration, no dominance
    screening, no transportation matching, no memo caches.  The
    checkers are deliberately unoptimized (nested loops and
    backtracking over small sets), so a bug in the fast paths cannot
    also hide here.

    Exhaustive sub-checks that are exponential in the label count
    (e.g. the completeness scan over all 2^n label subsets) are
    guarded by a work budget; when the budget would be exceeded the
    sub-check is {e skipped} and counted in [skipped_subchecks] — the
    certificate is then partial, never wrong. *)

(** Raised when an engine output contradicts the definitions.  The
    message names the claim that failed and the offending piece. *)
exception Violation of string

type stats = {
  mutable r_certified : int;  (** Successful {!check_r} runs. *)
  mutable rbar_certified : int;  (** Successful {!check_rbar} runs. *)
  mutable zero_certified : int;  (** Successful {!check_zero_round} runs. *)
  mutable fixed_points_certified : int;
      (** Successful {!check_fixed_point} replays. *)
  mutable relaxations_certified : int;
      (** Successful {!check_relaxation} runs. *)
  mutable skipped_subchecks : int;
      (** Exhaustive sub-checks skipped because their work budget
          would have been exceeded (the certificate is partial). *)
  mutable time_s : float;
      (** Wall seconds inside outermost certificate checks (nested
          checks fired by a fixed-point replay are not double
          counted). *)
}

val stats : stats

val reset_stats : unit -> unit

(** [check_r ~source d] certifies [d = Rounde.r source]:
    denotations are distinct non-empty subsets of the source alphabet;
    every emitted edge pair (A, B) is valid (all cross choices
    edge-compatible in the source) and maximal (no label addable to
    either side); the emitted pair set dominates every valid pair
    (completeness — [2^n] scan, budget-guarded); and the new node
    constraint is extensionally exactly the set of configurations
    admitting a choice of representatives allowed by the source node
    constraint (budget-guarded).
    @raise Violation on any mismatch. *)
val check_r : ?work_budget:int -> source:Relim.Problem.t -> Relim.Rounde.denoted -> unit

(** [check_rbar ~source d] certifies [d = Rounde.rbar source] (where
    [source] is the problem [rbar] was applied to, i.e. [R(Π)]): every
    emitted box is valid (every choice of representatives is an
    allowed source node configuration) and maximal (no label addable
    at any position); no emitted box is dominated by another (checked
    with a fresh backtracking matcher, not the engine's transport
    solver); every allowed source configuration is covered by some
    box; and the new edge constraint contains exactly the pairs of
    used sets admitting a compatible choice.
    @raise Violation on any mismatch. *)
val check_rbar : ?work_budget:int -> source:Relim.Problem.t -> Relim.Rounde.denoted -> unit

(** [check_zero_round ~mode p verdict] certifies a 0-round
    solvability verdict.  [Some w]: [w] is an allowed node
    configuration of the right arity whose labels are all
    self-compatible ([`Mirrored]) resp. whose support is pairwise and
    self compatible ([`Arbitrary]).  [None]: re-checked exhaustively —
    every allowed configuration must fail the same property
    (budget-guarded by [expand_limit]).
    @raise Violation on any mismatch. *)
val check_zero_round :
  ?expand_limit:float ->
  mode:[ `Mirrored | `Arbitrary ] ->
  Relim.Problem.t ->
  Relim.Multiset.t option ->
  unit

(** [check_relaxation ~source d] certifies that [d.problem] is a sound
    0-round relaxation of [source]: [d.denotations.(s)] lists the
    source labels the relaxed label [s] stands for.  Checked directly
    from the definitions: denotations are distinct non-empty subsets;
    every source label used in a constraint has at least one container;
    for every concrete source edge pair, {e every} pair of containers
    is allowed by the relaxed edge constraint (so the per-half-edge
    rewrite is unconstrained by the edge side); and every allowed
    source node configuration fits into some relaxed node line with a
    fresh backtracking matcher (budget-guarded expansion — a skip
    leaves the certificate partial, never wrong).  Together these
    conditions give a 0-round reduction from [source] to [d.problem]:
    each node rewrites its own half-edge labels using its node-line
    witness, and the edge constraint cannot object.
    @raise Violation on any mismatch. *)
val check_relaxation :
  ?work_budget:int -> source:Relim.Problem.t -> Relim.Rounde.denoted -> unit

(** [check_fixed_point p] replays one speedup step from scratch —
    sequentially, bypassing the [Fixedpoint] memo cache — and confirms
    [Simplify.normalize (step p) ≅ Simplify.normalize p] via {!Iso}.
    When the certificate hooks are installed the replayed step's own
    [R]/[R̄] outputs are certified too (the engine observers fire
    during the replay).
    @raise Violation if the replay is not isomorphic to the claim. *)
val check_fixed_point : Relim.Problem.t -> unit
