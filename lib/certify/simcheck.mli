(** Differential validation of 0-round verdicts against the simulator.

    The engine's deciders ({!Relim.Zeroround}) work symbolically on
    the constraints.  This module cross-checks their verdicts by
    actually {e running} candidate 0-round algorithms with
    [Localsim.Run] on finite trees from [Dsgraph.Tree_gen] and
    checking the produced labelings with [Lcl.Labeling]:

    - a [Some w] verdict is turned into the 0-round algorithm the
      witness induces (each node outputs a fixed tuple of labels on
      its ports — resp. per input edge color in the mirrored model)
      and simulated on random trees; the labeling must be valid with
      the [`Extendable] boundary convention;
    - a [None] verdict is refuted-tested exhaustively: for {e every}
      candidate degree-Δ output tuple [t ∈ Σ^Δ] an adversarial
      instance from the double-star family (caterpillar with two
      degree-Δ centers, center ports chosen with
      [Graph.permute_ports], resp. an adversarial proper edge
      coloring) is constructed on which the simulated algorithm must
      produce the predicted node or edge violation.  Only the
      violation at the centers / the center-center edge is asserted,
      so the (arbitrary) behavior of the algorithm on other degrees is
      irrelevant — the refutation covers every 0-round algorithm.

    A verdict the simulation contradicts raises {!Check.Violation}.
    Exhaustive refutations whose tuple space exceeds [tuple_budget]
    are skipped and counted. *)

type stats = {
  mutable witness_runs : int;  (** Simulated witness algorithms. *)
  mutable refutation_runs : int;  (** Simulated adversarial tuples. *)
  mutable skipped : int;  (** Refutations skipped on [tuple_budget]. *)
}

val stats : stats

val reset_stats : unit -> unit

(** [cross_check ~mode p verdict] — see above.
    @param trees number of random trees for the witness direction
    (default 3).
    @param tree_size nodes per random tree (default 16).
    @param tuple_budget cap on [|Σ|^Δ] for the exhaustive refutation
    (default 100_000).
    @raise Check.Violation when the simulation contradicts the
    verdict. *)
val cross_check :
  ?trees:int ->
  ?tree_size:int ->
  ?tuple_budget:int ->
  ?seed:int ->
  mode:[ `Mirrored | `Arbitrary ] ->
  Relim.Problem.t ->
  Relim.Multiset.t option ->
  unit
