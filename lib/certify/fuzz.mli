(** Differential fuzzing harness.

    Generates random small problems, runs the optimized pipeline on
    them — [Rounde.r] / [Rounde.rbar], [Rounde.step] at one and at
    several domains, both 0-round deciders — and certifies every
    output with the independent checkers in {!Check} and {!Simcheck}.
    Engine budget trips ([Failure]) are counted as skips; a
    {!Check.Violation} is a real divergence and is {e shrunk} to a
    minimal reproducer (greedily dropping constraint lines and
    alphabet labels while the divergence persists), which is rendered
    in the parser's concrete syntax and checked to round-trip through
    {!Serialize}.

    [mutate_r] injects a fault into the [R] output before it is
    certified; the tests use it to prove the harness actually catches
    (and minimizes) engine bugs. *)

(** Verdict of one fuzz iteration. *)
type outcome =
  | Passed
  | Skipped of string  (** Engine raised [Failure] (a budget trip). *)
  | Failed of string  (** A certifier raised {!Check.Violation}. *)

type reproducer = {
  message : string;  (** The violation message of the shrunk instance. *)
  problem : Relim.Problem.t;  (** Shrunk and trimmed. *)
  rendered : string;  (** [Serialize.to_string problem]. *)
  roundtrip_ok : bool;
      (** Does [rendered] parse back to an isomorphic problem? *)
}

type report = {
  mutable runs : int;
  mutable passed : int;
  mutable skipped : int;
  mutable reproducers : reproducer list;
}

(** [gen_problem ~max_labels ~max_delta rng] — a random problem:
    uniform alphabet size in [1 .. max_labels], arity in
    [1 .. max_delta], 1–3 node lines and 1–2 edge lines of uniformly
    random non-empty label-set groups. *)
val gen_problem :
  ?max_labels:int -> ?max_delta:int -> Random.State.t -> Relim.Problem.t

(** [run_one ?mutate_r ?pool ?sim_seed p] — certify the full pipeline
    on [p].  [pool], when given, additionally compares
    [Serialize.to_string (Rounde.step p)] between a sequential run and
    a run on [pool] (the engine promises domain-count independence).
    Never raises: violations and budget trips are reported in the
    {!outcome}. *)
val run_one :
  ?mutate_r:(Relim.Rounde.denoted -> Relim.Rounde.denoted) ->
  ?pool:Parallel.Pool.t ->
  ?sim_seed:int ->
  Relim.Problem.t ->
  outcome

(** [shrink ~fails p] — greedy minimization: repeatedly remove an
    alphabet label, a node line or an edge line while [fails] still
    returns [Some _]; returns the (untrimmed) minimum. *)
val shrink :
  fails:(Relim.Problem.t -> string option) -> Relim.Problem.t -> Relim.Problem.t

(** [run ?mutate_r ?count ?seed ?max_labels ?max_delta ?domains ()] —
    the full campaign: [count] (default 100) random problems from
    [seed] (default 2026), differential step comparison at [domains]
    (default 2; [<= 1] disables it and the pool).  Each failure is
    shrunk with the same [mutate_r] installed.  Never raises. *)
val run :
  ?mutate_r:(Relim.Rounde.denoted -> Relim.Rounde.denoted) ->
  ?count:int ->
  ?seed:int ->
  ?max_labels:int ->
  ?max_delta:int ->
  ?domains:int ->
  unit ->
  report

(** Render a report for humans: one line of counters, then every
    reproducer's message and concrete syntax. *)
val pp_report : Format.formatter -> report -> unit
