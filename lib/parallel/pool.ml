type t = {
  domains : int;
  mutable workers : unit Domain.t array;  (* spawned lazily; length domains-1 *)
  lock : Mutex.t;
  has_job : Condition.t;  (* a new job was published (or shutdown) *)
  job_done : Condition.t;  (* a worker finished the current job *)
  mutable job : (int -> unit) option;  (* worker id -> unit; must not raise *)
  mutable seq : int;  (* job generation, so sleeping workers never rerun one *)
  mutable running : int;  (* workers still inside the current job *)
  mutable stopped : bool;
}

(* True while the current domain is executing a pool job: nested
   parallel calls (a body that itself calls [run]) would self-deadlock
   waiting for workers that are busy running their caller, so they
   degrade to sequential loops instead. *)
let busy_key = Domain.DLS.new_key (fun () -> false)

let create ~domains =
  let domains = max 1 (min 128 domains) in
  {
    domains;
    workers = [||];
    lock = Mutex.create ();
    has_job = Condition.create ();
    job_done = Condition.create ();
    job = None;
    seq = 0;
    running = 0;
    stopped = false;
  }

let sequential = create ~domains:1

let domains t = t.domains

let worker_loop t wid =
  (* Everything a worker executes is a pool job. *)
  Domain.DLS.set busy_key true;
  let last = ref 0 and live = ref true in
  while !live do
    Mutex.lock t.lock;
    while t.seq = !last && not t.stopped do
      Condition.wait t.has_job t.lock
    done;
    if t.stopped then begin
      Mutex.unlock t.lock;
      live := false
    end
    else begin
      last := t.seq;
      let job = Option.get t.job in
      Mutex.unlock t.lock;
      job wid;
      Mutex.lock t.lock;
      t.running <- t.running - 1;
      if t.running = 0 then Condition.signal t.job_done;
      Mutex.unlock t.lock
    end
  done

let ensure_workers t =
  if Array.length t.workers = 0 && not t.stopped then
    t.workers <-
      Array.init (t.domains - 1) (fun k ->
          Domain.spawn (fun () -> worker_loop t (k + 1)))

let shutdown t =
  Mutex.lock t.lock;
  t.stopped <- true;
  Condition.broadcast t.has_job;
  Mutex.unlock t.lock;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

let run_seq ~n ~init ~body ~merge =
  let local = init () in
  for i = 0 to n - 1 do
    body local i
  done;
  merge local

let run ?(chunk = 1) t ~n ~init ~body ~merge =
  let chunk = max 1 chunk in
  if n <= 0 then ()
  else if t.domains <= 1 || t.stopped || n = 1 || Domain.DLS.get busy_key then
    run_seq ~n ~init ~body ~merge
  else
    Trace.with_span "pool.run"
      ~attrs:
        [
          ("n", string_of_int n);
          ("chunk", string_of_int chunk);
          ("domains", string_of_int t.domains);
        ]
    @@ fun () ->
    ensure_workers t;
    let locals = Array.init t.domains (fun _ -> init ()) in
    let next = Atomic.make 0 in
    let failed = Atomic.make false in
    let err : (exn * Printexc.raw_backtrace) option Atomic.t =
      Atomic.make None
    in
    let work wid =
      (* One span per participating worker, recorded on the worker's
         own domain timeline — this is what attributes parallel-section
         time to domains in the trace.  [Trace.with_span] is a plain
         call of its body when tracing is off. *)
      Trace.with_span "pool.worker"
        ~attrs:[ ("worker", string_of_int wid) ]
        (fun () ->
          let local = locals.(wid) in
          let continue = ref true in
          while !continue do
            let lo = Atomic.fetch_and_add next chunk in
            if lo >= n then continue := false
            else if not (Atomic.get failed) then (
              try
                for i = lo to min n (lo + chunk) - 1 do
                  body local i
                done
              with e ->
                let bt = Printexc.get_raw_backtrace () in
                ignore (Atomic.compare_and_set err None (Some (e, bt)));
                Atomic.set failed true)
          done)
    in
    Mutex.lock t.lock;
    t.job <- Some work;
    t.seq <- t.seq + 1;
    t.running <- Array.length t.workers;
    Condition.broadcast t.has_job;
    Mutex.unlock t.lock;
    (* The caller participates like any worker, as worker 0. *)
    Domain.DLS.set busy_key true;
    work 0;
    Domain.DLS.set busy_key false;
    Mutex.lock t.lock;
    while t.running > 0 do
      Condition.wait t.job_done t.lock
    done;
    t.job <- None;
    Mutex.unlock t.lock;
    match Atomic.get err with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> Array.iter merge locals

let mapi ?chunk t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let res = Array.make n None in
    run ?chunk t ~n
      ~init:(fun () -> ())
      ~body:(fun () i -> res.(i) <- Some (f i arr.(i)))
      ~merge:ignore;
    Array.map (function Some v -> v | None -> assert false) res
  end

let map ?chunk t f arr = mapi ?chunk t (fun _ x -> f x) arr

let filter_mapi ?chunk t f arr =
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let res = Array.make n None in
    run ?chunk t ~n
      ~init:(fun () -> ())
      ~body:(fun () i -> res.(i) <- f i arr.(i))
      ~merge:ignore;
    Array.fold_right
      (fun o acc -> match o with Some v -> v :: acc | None -> acc)
      res []
  end
