(** A small, dependency-free domain pool for data-parallel loops.

    Built directly on OCaml 5 [Domain]s plus a mutex/condition pair —
    no external libraries.  A pool created with [create ~domains:d]
    runs parallel loops on [d] domains in total: [d - 1] persistent
    worker domains (spawned lazily on the first parallel call) plus the
    calling domain, which always participates.  With [domains <= 1] no
    domain is ever spawned and every operation degrades to a plain
    sequential loop — same code path, same iteration order.

    {2 Determinism contract}

    Work is distributed by chunked index claiming from a shared atomic
    counter, so {e which} worker runs which index is scheduling
    dependent — but all combinators are written so the {e result} is
    not:

    - [map] / [mapi] / [filter_mapi] write each result into the slot of
      its input index and therefore preserve input order exactly, for
      any domain count and any chunk size;
    - [run] gives each participating worker a private state ([init])
      and merges the states sequentially in the calling domain
      ([merge], worker order).  As long as the merge operation is
      commutative and associative over the per-item contributions
      (e.g. integer counters), the merged total is exact and identical
      for every domain count.

    Exceptions raised by a body are caught, the remaining work is
    cancelled (at chunk granularity), and the first captured exception
    is re-raised in the calling domain with its backtrace.  If the body
    can only raise one distinct exception per loop (the usual budget
    [Failure]), propagation is deterministic too.

    A pool is meant to be driven from one domain at a time; nested
    parallel calls from inside a worker body fall back to sequential
    execution instead of deadlocking. *)

type t

(** [create ~domains] makes a pool running loops on [domains] domains
    in total (callers included).  Values [<= 1] mean sequential; the
    count is clamped to [1 .. 128].  Workers are spawned on first use. *)
val create : domains:int -> t

(** A pool that never spawns and always runs sequentially. *)
val sequential : t

(** Total domain count the pool was created with (always [>= 1]). *)
val domains : t -> int

(** [run ?chunk t ~n ~init ~body ~merge] executes [body local i] for
    every [i] in [0 .. n-1].  Each participating worker first gets a
    private [local = init ()]; after all indices are done, [merge] is
    called on every local state, sequentially, in the calling domain.
    Indices are claimed in contiguous chunks of [chunk] (default 1) in
    increasing order.  With an effective single worker the loop runs
    [i = 0 .. n-1] in order — bit-compatible with hand-written
    sequential code.  If any [body] raises, [merge] is skipped and the
    first exception is re-raised. *)
val run :
  ?chunk:int ->
  t ->
  n:int ->
  init:(unit -> 'w) ->
  body:('w -> int -> unit) ->
  merge:('w -> unit) ->
  unit

(** [map ?chunk t f arr] is [Array.map f arr], parallelized.  Input
    order is preserved; exceptions from [f] propagate. *)
val map : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array

(** [mapi] is [map] with the index. *)
val mapi : ?chunk:int -> t -> (int -> 'a -> 'b) -> 'a array -> 'b array

(** [filter_mapi t f arr] applies [f i arr.(i)] in parallel and returns
    the [Some] results as a list in input-index order. *)
val filter_mapi : ?chunk:int -> t -> (int -> 'a -> 'b option) -> 'a array -> 'b list

(** Join all worker domains.  The pool remains valid but runs every
    subsequent call sequentially.  Idempotent. *)
val shutdown : t -> unit
