type format = Jsonl | Chrome

let env_var = "RELIM_TRACE"

let format_env_var = "RELIM_TRACE_FORMAT"

(* One recorded event.  [ts] is microseconds since the sink's [t0],
   clamped monotone non-decreasing per domain. *)
type kind =
  | Begin of (string * string) list
  | End
  | Instant of (string * string) list
  | Counters of (string * int) list
  | Gauge_ev of float

type event = { kind : kind; name : string; ts : int }

(* Per-domain event buffer.  Written only by its own domain (append to
   [revents], newest first), read by the main domain at [close] — after
   every parallel section has joined, so there is no concurrent
   access by then. *)
type buffer = {
  dom : int;
  mutable revents : event list;
  mutable last_ts : int;
}

type sink = {
  fmt : format;
  oc : out_channel;
  t0 : float;
  gen : int;  (* invalidates domain-local buffers of older sinks *)
  lock : Mutex.t;  (* guards [buffers] registration only *)
  mutable buffers : buffer list;
}

(* The hot-path gate: a single atomic load when tracing is off. *)
let enabled_flag = Atomic.make false

let current : sink option ref = ref None

let generation = ref 0

(* Domain-local buffer, tagged with the sink generation it belongs to
   so a buffer left over from a closed sink is never written into a
   new one. *)
let dls_key : (int * buffer) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let enabled () = Atomic.get enabled_flag

let buffer_of sink =
  match Domain.DLS.get dls_key with
  | Some (gen, buf) when gen = sink.gen -> buf
  | _ ->
      let buf =
        { dom = (Domain.self () :> int); revents = []; last_ts = 0 }
      in
      Mutex.lock sink.lock;
      sink.buffers <- buf :: sink.buffers;
      Mutex.unlock sink.lock;
      Domain.DLS.set dls_key (Some (sink.gen, buf));
      buf

let emit kind name =
  match !current with
  | None -> ()
  | Some sink ->
      let buf = buffer_of sink in
      let raw = int_of_float ((Unix.gettimeofday () -. sink.t0) *. 1e6) in
      let ts = if raw > buf.last_ts then raw else buf.last_ts in
      buf.last_ts <- ts;
      buf.revents <- { kind; name; ts } :: buf.revents

(* ---- JSON writing (hand-rolled: the repo has no JSON library) ---- *)

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_string_dict buf pairs =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      add_json_string buf k;
      Buffer.add_char buf ':';
      add_json_string buf v)
    pairs;
  Buffer.add_char buf '}'

let add_int_dict buf pairs =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      add_json_string buf k;
      Buffer.add_string buf (Printf.sprintf ":%d" v))
    pairs;
  Buffer.add_char buf '}'

let jsonl_line buf dom (e : event) =
  Buffer.clear buf;
  let head ev =
    Buffer.add_string buf
      (Printf.sprintf "{\"ev\":\"%s\",\"dom\":%d,\"ts\":%d" ev dom e.ts)
  in
  (match e.kind with
  | Begin attrs ->
      head "b";
      Buffer.add_string buf ",\"name\":";
      add_json_string buf e.name;
      if attrs <> [] then begin
        Buffer.add_string buf ",\"attrs\":";
        add_string_dict buf attrs
      end
  | End ->
      head "e";
      Buffer.add_string buf ",\"name\":";
      add_json_string buf e.name
  | Instant attrs ->
      head "i";
      Buffer.add_string buf ",\"name\":";
      add_json_string buf e.name;
      if attrs <> [] then begin
        Buffer.add_string buf ",\"attrs\":";
        add_string_dict buf attrs
      end
  | Counters kvs ->
      head "c";
      Buffer.add_string buf ",\"counters\":";
      add_int_dict buf kvs
  | Gauge_ev v ->
      head "g";
      Buffer.add_string buf ",\"name\":";
      add_json_string buf e.name;
      Buffer.add_string buf (Printf.sprintf ",\"value\":%.6g" v));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* Chrome trace_event phases: one line per emitted object, inside a
   {"traceEvents": [...]} wrapper so about://tracing and Perfetto both
   accept the file.  Domains map to tids; there is a single pid. *)
let chrome_event buf dom (e : event) k =
  let item ~ph ~name ~args ~extra =
    Buffer.clear buf;
    Buffer.add_string buf (if k = 0 then "" else ",\n");
    Buffer.add_string buf "{\"name\":";
    add_json_string buf name;
    Buffer.add_string buf
      (Printf.sprintf ",\"ph\":\"%s\",\"pid\":1,\"tid\":%d,\"ts\":%d" ph dom
         e.ts);
    (match args with
    | None -> ()
    | Some add ->
        Buffer.add_string buf ",\"args\":";
        add buf);
    Buffer.add_string buf extra;
    Buffer.add_char buf '}';
    [ Buffer.contents buf ]
  in
  match e.kind with
  | Begin attrs ->
      item ~ph:"B" ~name:e.name
        ~args:(if attrs = [] then None else Some (fun b -> add_string_dict b attrs))
        ~extra:""
  | End -> item ~ph:"E" ~name:e.name ~args:None ~extra:""
  | Instant attrs ->
      item ~ph:"i" ~name:e.name
        ~args:(if attrs = [] then None else Some (fun b -> add_string_dict b attrs))
        ~extra:",\"s\":\"t\""
  | Counters kvs ->
      (* One C event per series, so each counter gets its own track. *)
      List.concat_map
        (fun (name, v) ->
          item ~ph:"C" ~name
            ~args:(Some (fun b -> add_int_dict b [ ("value", v) ]))
            ~extra:"")
        kvs
  | Gauge_ev v ->
      item ~ph:"C" ~name:e.name
        ~args:
          (Some
             (fun b ->
               Buffer.add_string b (Printf.sprintf "{\"value\":%.6g}" v)))
        ~extra:""

let write_out sink =
  (* Deterministic merge: buffers in increasing domain id, each
     buffer's events in emission order. *)
  let buffers =
    List.sort (fun a b -> compare a.dom b.dom) sink.buffers
  in
  let buf = Buffer.create 256 in
  (match sink.fmt with
  | Jsonl ->
      List.iter
        (fun b ->
          List.iter
            (fun e -> output_string sink.oc (jsonl_line buf b.dom e))
            (List.rev b.revents))
        buffers
  | Chrome ->
      output_string sink.oc "{\"traceEvents\":[\n";
      let k = ref 0 in
      List.iter
        (fun b ->
          List.iter
            (fun e ->
              List.iter
                (fun line ->
                  output_string sink.oc line;
                  incr k)
                (chrome_event buf b.dom e !k))
            (List.rev b.revents))
        buffers;
      output_string sink.oc "\n],\"displayTimeUnit\":\"ms\"}\n");
  flush sink.oc

let close () =
  match !current with
  | None -> ()
  | Some sink ->
      Atomic.set enabled_flag false;
      current := None;
      write_out sink;
      close_out sink.oc

let at_exit_registered = ref false

let enable ~path ~format =
  close ();
  let oc = open_out path in
  incr generation;
  let sink =
    {
      fmt = format;
      oc;
      t0 = Unix.gettimeofday ();
      gen = !generation;
      lock = Mutex.create ();
      buffers = [];
    }
  in
  current := Some sink;
  Atomic.set enabled_flag true;
  if not !at_exit_registered then begin
    at_exit_registered := true;
    at_exit close
  end

(* "%p" in an env-provided path becomes the pid, so concurrent
   processes (e.g. the test binaries under one `dune runtest`) can
   share a single RELIM_TRACE setting without clobbering each other. *)
let substitute_pid path =
  match String.index_opt path '%' with
  | None -> path
  | Some _ ->
      let buf = Buffer.create (String.length path + 8) in
      let i = ref 0 in
      let n = String.length path in
      while !i < n do
        if !i + 1 < n && path.[!i] = '%' && path.[!i + 1] = 'p' then begin
          Buffer.add_string buf (string_of_int (Unix.getpid ()));
          i := !i + 2
        end
        else begin
          Buffer.add_char buf path.[!i];
          incr i
        end
      done;
      Buffer.contents buf

let setup_from_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> ()
  | Some path ->
      let format =
        match Sys.getenv_opt format_env_var with
        | Some "chrome" -> Chrome
        | Some _ | None -> Jsonl
      in
      enable ~path:(substitute_pid path) ~format

(* ---- emitting API ---- *)

let with_span ?(attrs = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    emit (Begin attrs) name;
    match f () with
    | v ->
        emit End name;
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        emit End name;
        Printexc.raise_with_backtrace e bt
  end

let instant ?(attrs = []) name =
  if Atomic.get enabled_flag then emit (Instant attrs) name

let counters kvs =
  if Atomic.get enabled_flag && kvs <> [] then emit (Counters kvs) "counters"

module Counter = struct
  type t = { cname : string; total : int Atomic.t }

  let make cname = { cname; total = Atomic.make 0 }

  let name c = c.cname

  let add c n =
    if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.total n)

  let incr c = add c 1

  let value c = Atomic.get c.total

  let sample c =
    if Atomic.get enabled_flag then
      emit (Counters [ (c.cname, Atomic.get c.total) ]) c.cname
end

module Gauge = struct
  type t = string

  let make name = name

  let set name v = if Atomic.get enabled_flag then emit (Gauge_ev v) name
end
