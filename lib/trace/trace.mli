(** Structured tracing and metrics for the round-elimination engine.

    Dependency-free (stdlib + [Unix.gettimeofday] only).  The engine's
    hot paths are instrumented with hierarchical {e spans}
    ({!with_span}), point-in-time {e instants} ({!instant}), cumulative
    {e counter samples} ({!counters}, {!Counter}) and float-valued
    {e gauges} ({!Gauge}).  All of it is disabled by default: every
    entry point first reads one atomic flag and returns immediately, so
    an untraced run pays only that load (measured well under 1% on the
    engine benches — see the trace_overhead section of
    BENCH_relim.json).

    {2 Per-domain attribution}

    Events are appended to a {e per-domain} buffer (domain-local
    storage, no locks on the hot path), so spans opened inside
    [Parallel.Pool] workers land on the worker's own timeline.  Buffers
    register themselves in the active sink under a mutex on their first
    event; {!close} merges them in increasing domain-id order with each
    buffer's events kept in emission order — a deterministic interleave
    for a deterministic schedule.  Timestamps are microseconds since
    {!enable} and are clamped monotone non-decreasing {e per domain}.

    {2 Sinks}

    Two output formats ({!format}):
    {ul
    {- [Jsonl] — one JSON object per line, one line per event:
       [{"ev":"b"|"e"|"i","dom":D,"ts":T,"name":N,"attrs":{...}}] for
       span begin/end and instants,
       [{"ev":"c","dom":D,"ts":T,"counters":{...}}] for counter
       samples (cumulative values), and
       [{"ev":"g","dom":D,"ts":T,"name":N,"value":V}] for gauges.
       Machine-checked by [bench/validate_trace.ml].}
    {- [Chrome] — the Chrome [trace_event] JSON format (an object with
       a ["traceEvents"] array of [B]/[E]/[C]/[i] phase events, domain
       = [tid]), loadable in [about://tracing] and
       {{:https://ui.perfetto.dev}Perfetto}.}}

    {2 Well-formedness contract}

    For every trace this module emits:
    {ul
    {- span begin/end events are properly nested per domain
       ({!with_span} closes its span even when the body raises);}
    {- timestamps are monotone non-decreasing per domain;}
    {- counter samples are cumulative, hence non-decreasing per
       counter name.}}
    [bench/validate_trace.ml] re-checks all three on the emitted file,
    plus the reconciliation of engine counter totals against the
    legacy [Rounde.stats] / [Fixedpoint.stats] records. *)

type format = Jsonl | Chrome

(** Environment variables read by {!setup_from_env}: [RELIM_TRACE]
    (output path; unset or empty means disabled) and
    [RELIM_TRACE_FORMAT] ([jsonl], the default, or [chrome]). *)
val env_var : string

val format_env_var : string

(** Is a sink currently active?  Every emitting entry point checks
    this first; when [false] they are no-ops. *)
val enabled : unit -> bool

(** [enable ~path ~format] opens [path] (truncating) and starts
    recording.  Any previously active sink is {!close}d first.  The
    file is opened {e eagerly}, so an unwritable path fails here — with
    the usual [Sys_error] — before any traced work runs.  A [close] is
    registered with [at_exit] so a traced process that exits normally
    always flushes its events.
    @raise Sys_error if [path] cannot be opened for writing. *)
val enable : path:string -> format:format -> unit

(** Enable from the environment: no-op unless [RELIM_TRACE] is set to
    a non-empty path.  [RELIM_TRACE_FORMAT=chrome] selects the Chrome
    sink; anything else (or unset) means JSONL.  A literal ["%p"] in
    the path is replaced with the process id, so concurrent processes
    (e.g. the test binaries of one [dune runtest]) can share a single
    setting without clobbering each other's trace.
    @raise Sys_error if the requested path cannot be opened. *)
val setup_from_env : unit -> unit

(** Flush all per-domain buffers to the sink file and deactivate.
    Idempotent.  Must not race a running parallel section (the engine
    only calls it from the main domain between calls). *)
val close : unit -> unit

(** [with_span ?attrs name f] runs [f ()] inside a span: a begin event
    before, an end event after — also on exception, so nesting stays
    well-formed.  When disabled this is just [f ()]. *)
val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

(** A point event on the current domain's timeline. *)
val instant : ?attrs:(string * string) list -> string -> unit

(** [counters kvs] emits one sample carrying the {e cumulative} values
    [kvs].  The engine uses this to mirror its legacy stats records
    (e.g. [Rounde.stats]) into the trace at span boundaries, which is
    what lets [validate_trace] reconcile the two. *)
val counters : (string * int) list -> unit

(** Typed cumulative counters.  [add]/[incr] accumulate only while
    tracing is enabled (an atomic add); [sample] emits the current
    cumulative value as a counter event. *)
module Counter : sig
  type t

  val make : string -> t

  val name : t -> string

  val add : t -> int -> unit

  val incr : t -> unit

  (** Cumulative total accumulated while enabled. *)
  val value : t -> int

  val sample : t -> unit
end

(** Float-valued gauges: [set] emits the new value immediately (gauges
    are instantaneous readings, not cumulative). *)
module Gauge : sig
  type t

  val make : string -> t

  val set : t -> float -> unit
end
