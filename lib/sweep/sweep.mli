(** Resumable parametric sweeps over the lemma pipeline.

    A sweep runs the full verification pipeline — one speedup step
    [R̄ ∘ R], the 0-round deciders, fixed-point detection and the
    autopilot relaxation search — over a parameter grid
    (family × Δ × a × x × label-count) crossed with an engine
    configuration (explicit vs ZDD families, domain count, certifier
    on/off), under per-cell budgets.  Each cell produces one JSON
    record (see {!run_cell}) that is appended to a JSON-lines
    {e journal}; completed cells are {e served} from the journal on the
    next run instead of being recomputed.

    {2 Determinism contract}

    Cell records are deterministic: for a fixed cell and fixed budgets
    the record is byte-identical on every run, on every machine, with
    the single exception of the ["wall_s"] member, which is measured by
    the [clock] argument ([Unix.gettimeofday] by default; pass a
    constant clock for byte-determinism, as [relimsweep --fixed-clock]
    and the resume tests do).  To make this hold the runner resets all
    engine statistics {e and} the fixed-point memo cache before every
    cell, pins the worker pool and the ZDD toggle to the cell's own
    engine configuration (the [RELIM_DOMAINS] / [RELIM_ZDD]
    environment is overridden for the cell's duration), and records
    [transport_cache_hits] — the one counter that depends on worker
    scheduling — only for single-domain cells ([null] otherwise).

    Consequences, both enforced by [test/sweep]:
    {ul
    {- re-running a completed sweep appends nothing: the journal is a
       byte-identical no-op;}
    {- killing a sweep after [k] cells and resuming yields a journal
       byte-identical (under a fixed clock) to an uninterrupted run —
       cells are journaled in grid order, and a trailing line truncated
       by the kill is detected and re-run, never served.}}

    {2 Cross-engine identity}

    For a grid cell where several engine configurations complete
    ([status = "ok"] with no internal budget skips), the records agree
    on everything outside ["cell"], ["config"], ["wall_s"] and the
    documented per-engine exceptions: the ["engine_counters"] object
    (the explicit-vs-ZDD paths count dominance work differently, the
    fully symbolic path emits only surviving boxes ([boxes_emitted])
    and moves the [maxbox_*] family counters — see [Rounde.rbar]) and,
    across domain counts, [transport_cache_hits].  This is the PR 3
    (domains) / PR 8 (ZDD) / PR 10 (symbolic output side) byte-identity
    contract surfaced at the sweep level. *)

type family = Mis | So | Mm | Col | Pi | Pi_plus

val family_name : family -> string

(** Inverse of {!family_name}; accepts the CLI spellings
    [mis|so|mm|col|pi|pi-plus]. *)
val family_of_string : string -> (family, string) result

(** One engine configuration: which R̄ representation, how many worker
    domains (1 = sequential), and whether the independent certifier
    hooks are installed for the cell. *)
type engine = { zdd : bool; domains : int; certify : bool }

(** One grid cell.  Dimensions a family does not consume are
    canonicalized to 0 ([a]/[x] for everything but Π/Π⁺, [labels] for
    everything but [Col]), so the cross product of a {!grid} dedupes
    cleanly. *)
type cell = {
  family : family;
  delta : int;
  a : int;
  x : int;
  labels : int;
  engine : engine;
}

(** Unique, human-readable journal key, e.g.
    ["pi d5 a4 x2 l0 | explicit dom1 plain"]. *)
val cell_id : cell -> string

(** The part of {!cell_id} before the engine configuration — equal for
    the same problem cell across engine configurations. *)
val cell_base_id : cell -> string

(** Per-cell budgets for the pipeline phases. *)
type budgets = {
  expand_limit : float;  (** Node-constraint expansion guard. *)
  rc_limit : int;  (** Right-closed-set guard (explicit path). *)
  fp_steps : int;  (** Fixed-point detection step budget. *)
  ap_steps : int;  (** Autopilot accepted-step budget. *)
  ap_beam : int;  (** Autopilot candidate covers per step. *)
}

(** [{ expand_limit = 5e5; rc_limit = 20_000; fp_steps = 2;
      ap_steps = 2; ap_beam = 4 }] — sized so a smoke grid finishes in
    seconds while Π(5,4,2)-scale cells still complete. *)
val default_budgets : budgets

type grid = {
  families : family list;
  deltas : int list;
  a_values : int list;  (** Consumed by Π / Π⁺ cells only. *)
  x_values : int list;  (** Consumed by Π / Π⁺ cells only. *)
  label_counts : int list;  (** Consumed by coloring cells only. *)
  engines : engine list;
}

(** The grid's cells in canonical order (families, then Δ, then a, x,
    label-count, then engines), canonicalized and deduplicated.  This
    order is the journal order. *)
val cells : grid -> cell list

(** The problem a cell denotes, or [Error reason] when the parameters
    are invalid for the family (e.g. Π⁺ without [x + 2 ≤ a], a
    coloring with fewer than 2 colors) — such cells are journaled with
    [status = "skipped"]. *)
val problem_of_cell : cell -> (Relim.Problem.t, string) result

(** [run_cell ~budgets cell] executes the pipeline for one cell and
    returns its journal record, a JSON object with members (in order):
    ["cell"], ["family"], ["delta"], ["a"], ["x"], ["labels"],
    ["config"] (the engine configuration), ["status"]
    ([ok|budget|skipped]), ["budget"] (name of the first tripped
    budget, else [null]), ["budget_phase"], ["skip_reason"],
    ["problem"] (canonical serialized text), ["hash"]
    ([Iso.invariant_hash]), ["step"], ["zero_round"], ["fixed_point"],
    ["autopilot"] (phase results, [null] for a phase that tripped its
    budget), ["certified"] (certifier counts when the cell certifies),
    ["counters"] (engine-independent counters, one sub-object per
    phase, each snapshotted the moment its phase completes — so the
    certifier's fixed-point replay and the autopilot's exploration
    never taint them; [null] for a budget-tripped phase), ["engine_counters"]
    (the per-engine exceptions) and ["wall_s"].  A budget overrun in a
    phase is caught and recorded; genuine engine errors propagate. *)
val run_cell :
  ?clock:(unit -> float) -> budgets:budgets -> cell -> Store.Json.t

(** The journal header record carried on the first line, key
    ["@grid"]: the grid dimensions and the expected cell count.  A
    resumed sweep refuses a journal whose header does not match its
    grid. *)
val header_json : grid -> Store.Json.t

val grid_of_json : Store.Json.t -> (grid, string) result

(** Result of scanning an existing journal: whether a matching header
    is present, the journaled (cell id, status) pairs in file order,
    the number of leading bytes that form complete valid lines, and
    whether a damaged tail (a line without its newline, or an
    unparseable line) was found after them. *)
type scan = {
  header : Store.Json.t option;
  completed : (string * string) list;
  keep_bytes : int;
  dropped_tail : bool;
}

(** [scan_journal path] never raises on damaged content — damage is
    reported via [keep_bytes] / [dropped_tail].  A missing file scans
    as empty. *)
val scan_journal : string -> scan

type summary = {
  total : int;  (** Cells in the grid. *)
  served : int;  (** Cells already journaled, not recomputed. *)
  ran : int;  (** Cells executed by this run. *)
  ok : int;
  budgeted : int;
  skipped : int;  (** Status tallies over the whole journal. *)
  recovered_tail : bool;
      (** A damaged trailing line was truncated and its cell re-run. *)
  complete : bool;  (** Every grid cell is journaled at exit. *)
  wall_s : float;
}

(** [run ~budgets ~out grid] scans [out], truncates a damaged tail,
    verifies (or writes) the header, then runs every not-yet-journaled
    cell in {!cells} order, appending and flushing one record per cell.
    [max_cells] bounds the number of cells {e executed} (served cells
    are free) — the hook the crash/resume tests use to stop a sweep
    mid-grid deterministically.  [log] receives one progress line per
    cell.  Emits [sweep.cell] trace spans and a [sweep.done] instant
    when tracing is enabled.
    @raise Failure if [out] holds a journal for a different grid. *)
val run :
  ?clock:(unit -> float) ->
  ?max_cells:int ->
  ?log:(string -> unit) ->
  budgets:budgets ->
  out:string ->
  grid ->
  summary
