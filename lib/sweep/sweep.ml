(* Resumable parametric sweep driver.  See sweep.mli for the
   determinism and cross-engine contracts; the load-bearing choices
   are marked inline. *)

type family = Mis | So | Mm | Col | Pi | Pi_plus

let family_name = function
  | Mis -> "mis"
  | So -> "so"
  | Mm -> "mm"
  | Col -> "col"
  | Pi -> "pi"
  | Pi_plus -> "pi-plus"

let family_of_string = function
  | "mis" -> Ok Mis
  | "so" -> Ok So
  | "mm" -> Ok Mm
  | "col" -> Ok Col
  | "pi" -> Ok Pi
  | "pi-plus" | "pi_plus" -> Ok Pi_plus
  | other ->
      Error
        (Printf.sprintf "unknown family %s (expected mis|so|mm|col|pi|pi-plus)"
           other)

type engine = { zdd : bool; domains : int; certify : bool }

type cell = {
  family : family;
  delta : int;
  a : int;
  x : int;
  labels : int;
  engine : engine;
}

let engine_id e =
  Printf.sprintf "%s dom%d %s"
    (if e.zdd then "zdd" else "explicit")
    e.domains
    (if e.certify then "certify" else "plain")

let cell_base_id c =
  Printf.sprintf "%s d%d a%d x%d l%d" (family_name c.family) c.delta c.a c.x
    c.labels

let cell_id c = cell_base_id c ^ " | " ^ engine_id c.engine

type budgets = {
  expand_limit : float;
  rc_limit : int;
  fp_steps : int;
  ap_steps : int;
  ap_beam : int;
}

let default_budgets =
  { expand_limit = 5e5; rc_limit = 20_000; fp_steps = 2; ap_steps = 2;
    ap_beam = 4 }

type grid = {
  families : family list;
  deltas : int list;
  a_values : int list;
  x_values : int list;
  label_counts : int list;
  engines : engine list;
}

(* Dimensions a family does not consume collapse to 0, so the raw
   cross product dedupes to one canonical cell per distinct problem ×
   engine configuration. *)
let canonicalize c =
  match c.family with
  | Pi | Pi_plus -> { c with labels = 0 }
  | Col -> { c with a = 0; x = 0 }
  | Mis | So | Mm -> { c with a = 0; x = 0; labels = 0 }

let cells g =
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  List.iter
    (fun family ->
      List.iter
        (fun delta ->
          List.iter
            (fun a ->
              List.iter
                (fun x ->
                  List.iter
                    (fun labels ->
                      List.iter
                        (fun engine ->
                          let c =
                            canonicalize
                              { family; delta; a; x; labels; engine }
                          in
                          let id = cell_id c in
                          if not (Hashtbl.mem seen id) then begin
                            Hashtbl.add seen id ();
                            out := c :: !out
                          end)
                        g.engines)
                    g.label_counts)
                g.x_values)
            g.a_values)
        g.deltas)
    g.families;
  List.rev !out

let problem_of_cell c =
  let guard f =
    match f () with
    | p -> Ok p
    | exception Invalid_argument msg -> Error msg
    | exception Failure msg -> Error msg
  in
  if c.delta < 1 then Error "delta must be >= 1"
  else
    match c.family with
    | Mis -> guard (fun () -> Lcl.Encodings.mis ~delta:c.delta)
    | So ->
        if c.delta < 2 then Error "sinkless orientation needs delta >= 2"
        else guard (fun () -> Lcl.Encodings.sinkless_orientation ~delta:c.delta)
    | Mm -> guard (fun () -> Lcl.Encodings.maximal_matching ~delta:c.delta)
    | Col ->
        if c.labels < 2 then Error "coloring needs >= 2 colors"
        else
          guard (fun () ->
              Lcl.Encodings.coloring ~delta:c.delta ~colors:c.labels)
    | Pi ->
        guard (fun () ->
            Core.Family.pi { Core.Family.delta = c.delta; a = c.a; x = c.x })
    | Pi_plus ->
        guard (fun () ->
            Core.Family.pi_plus
              { Core.Family.delta = c.delta; a = c.a; x = c.x })

(* ---- per-cell environment pinning -------------------------------- *)

(* The ZDD toggle is consulted from the environment by every engine
   entry point that lacks a [?zdd] argument (fixed-point detection,
   the autopilot's internal steps), so the cell's configuration is
   pinned by overriding RELIM_ZDD for the cell's duration.  putenv
   cannot unset, but "0" and unset read identically (both disable). *)
let with_zdd_env zdd f =
  let prev = Sys.getenv_opt Relim.Parctl.zdd_env_var in
  Unix.putenv Relim.Parctl.zdd_env_var (if zdd then "1" else "0");
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv Relim.Parctl.zdd_env_var
        (Option.value ~default:"0" prev))
    f

let with_pool domains f =
  if domains <= 1 then f Parallel.Pool.sequential
  else begin
    let pool = Parallel.Pool.create ~domains in
    Fun.protect ~finally:(fun () -> Parallel.Pool.shutdown pool) (fun () ->
        f pool)
  end

let with_certify certify f =
  if certify then begin
    Certify.Check.reset_stats ();
    Certify.Hooks.with_hooks f
  end
  else f ()

(* ---- one cell ----------------------------------------------------- *)

let reset_engine_state () =
  Relim.Rounde.reset_stats ();
  Relim.Zeroround.reset_stats ();
  Relim.Fixedpoint.reset_stats ();
  (* The memo cache persists across calls; serving a later cell from a
     hit would make its counters depend on which cells ran earlier in
     the same process — fatal for the resume byte-identity contract. *)
  Relim.Fixedpoint.clear_cache ()

let run_cell ?(clock = Unix.gettimeofday) ~budgets c =
  let open Store.Json in
  let config =
    Obj
      [
        ("zdd", Bool c.engine.zdd);
        ("domains", Int c.engine.domains);
        ("certify", Bool c.engine.certify);
      ]
  in
  let base =
    [
      ("cell", String (cell_id c));
      ("family", String (family_name c.family));
      ("delta", Int c.delta);
      ("a", Int c.a);
      ("x", Int c.x);
      ("labels", Int c.labels);
      ("config", config);
    ]
  in
  match problem_of_cell c with
  | Error reason ->
      Obj
        (base
        @ [
            ("status", String "skipped");
            ("budget", Null);
            ("budget_phase", Null);
            ("skip_reason", String reason);
            ("problem", Null);
            ("hash", Null);
            ("step", Null);
            ("zero_round", Null);
            ("fixed_point", Null);
            ("autopilot", Null);
            ("certified", Null);
            ("counters", Null);
            ("engine_counters", Null);
            ("wall_s", Float 0.);
          ])
  | Ok p ->
      let t0 = clock () in
      reset_engine_state ();
      with_zdd_env c.engine.zdd @@ fun () ->
      with_pool c.engine.domains @@ fun pool ->
      with_certify c.engine.certify @@ fun () ->
      (* Phases run in a fixed order; a budget overrun voids only its
         own phase.  Whether a budget trips is a property of the
         instance, not of the schedule (the work budgets are shared
         atomically), so the trip list is deterministic. *)
      let trips = ref [] in
      let phase name f =
        Trace.with_span ("sweep." ^ name) (fun () ->
            match f () with
            | v -> Some v
            | exception Relim.Budget.Budget_exceeded { budget; _ } ->
                trips := (name, budget) :: !trips;
                None)
      in
      (* Each phase snapshots the counters of the module it drove the
         moment it completes, before any later phase (or a certifier
         replay — the fixed-point checker re-runs a sequential
         [Rounde.step]) can touch the same globals.  This is what makes
         ["counters"] carry exactly the PR 3/8 contract values: the
         step-phase Rounde counters are the ones pinned byte-identical
         across engines, untainted by the autopilot's engine-dependent
         exploration.  A phase that trips its budget leaves its
         counters [null] — mid-flight counter values at a raise are
         not schedule-independent under a multi-domain pool. *)
      let step_counters = ref Null in
      let eng_counters = ref Null in
      let zr_counters = ref Null in
      let fp_counters = ref Null in
      let step =
        phase "step" (fun () ->
            let zdd_nodes0 = Zdd.stats.Zdd.nodes in
            let zdd_hits0 = Zdd.stats.Zdd.cache_hits in
            let { Relim.Rounde.problem = q; _ } =
              Relim.Rounde.step ~expand_limit:budgets.expand_limit
                ~rc_limit:budgets.rc_limit ~pool ~zdd:c.engine.zdd p
            in
            let s = Relim.Rounde.stats in
            step_counters :=
              Obj
                [
                  ("r_calls", Int s.Relim.Rounde.r_calls);
                  ("closures_visited", Int s.Relim.Rounde.closures_visited);
                  ("closure_joins", Int s.Relim.Rounde.closure_joins);
                  ("closure_revisits", Int s.Relim.Rounde.closure_revisits);
                  ("rbar_calls", Int s.Relim.Rounde.rbar_calls);
                  ("rc_sets", Int s.Relim.Rounde.rc_sets);
                ];
            (* The documented per-engine exceptions, scoped to the step
               phase.  transport_cache_hits counts hits in per-worker
               memo tables, so it is only deterministic for
               single-domain cells; recording null otherwise keeps
               every journal byte-deterministic.  boxes_emitted moved
               here in PR 10: the fully symbolic path emits only the
               surviving maximal boxes, so the value is an engine
               property now, not a cross-engine invariant. *)
            eng_counters :=
              Obj
                [
                  ("boxes_emitted", Int s.Relim.Rounde.boxes_emitted);
                  ("boxes_pruned", Int s.Relim.Rounde.boxes_pruned);
                  ("box_dom_checks", Int s.Relim.Rounde.box_dom_checks);
                  ( "box_dom_cheap_skips",
                    Int s.Relim.Rounde.box_dom_cheap_skips );
                  ( "box_transport_calls",
                    Int s.Relim.Rounde.box_transport_calls );
                  ( "transport_cache_hits",
                    if c.engine.domains <= 1 then
                      Int s.Relim.Rounde.transport_cache_hits
                    else Null );
                  ("zdd_nodes", Int (Zdd.stats.Zdd.nodes - zdd_nodes0));
                  ( "zdd_cache_hits",
                    Int (Zdd.stats.Zdd.cache_hits - zdd_hits0) );
                  ("maxbox_tuples", Int s.Relim.Rounde.maxbox_tuples);
                  ("maxbox_cubes", Int s.Relim.Rounde.maxbox_cubes);
                  ("maxbox_maximal", Int s.Relim.Rounde.maxbox_maximal);
                  ("maxbox_enumerated", Int s.Relim.Rounde.maxbox_enumerated);
                ];
            Obj
              [
                ("labels_in", Int (Relim.Problem.label_count p));
                ("labels_out", Int (Relim.Problem.label_count q));
                ("problem", String (Relim.Serialize.to_string q));
                ("hash", Int (Relim.Iso.invariant_hash q));
              ])
      in
      let zero_round =
        phase "zero_round" (fun () ->
            let witness w =
              match w with
              | Some m -> String (Relim.Multiset.to_string p.Relim.Problem.alpha m)
              | None -> Null
            in
            let mirrored = Relim.Zeroround.solvable_mirrored p in
            let arbitrary =
              Relim.Zeroround.solvable_arbitrary_ports ~pool p
            in
            let bound =
              Relim.Zeroround.randomized_failure_bound
                ~limit:budgets.expand_limit p
            in
            let z = Relim.Zeroround.stats in
            zr_counters :=
              Obj
                [
                  ("clique_calls", Int z.Relim.Zeroround.clique_calls);
                  ("maximal_cliques", Int z.Relim.Zeroround.maximal_cliques);
                  ("bk_expansions", Int z.Relim.Zeroround.bk_expansions);
                ];
            Obj
              [
                ("mirrored", Bool (mirrored <> None));
                ("mirrored_witness", witness mirrored);
                ("arbitrary", Bool (arbitrary <> None));
                ("arbitrary_witness", witness arbitrary);
                ( "failure_bound",
                  match bound with Some b -> Float b | None -> Null );
              ])
      in
      let fixed_point =
        phase "fixed_point" (fun () ->
            let v =
              Relim.Fixedpoint.detect ~max_steps:budgets.fp_steps
                ~expand_limit:budgets.expand_limit ~pool p
            in
            let verdict =
              match v with
              | Relim.Fixedpoint.Fixed_point _ -> "fixed-point"
              | Relim.Fixedpoint.Reaches_fixed_point (i, _) ->
                  Printf.sprintf "reaches-fixed-point(%d)" i
              | Relim.Fixedpoint.No_fixed_point_found _ -> "none"
            in
            let f = Relim.Fixedpoint.stats in
            fp_counters :=
              Obj
                [
                  ("steps_applied", Int f.Relim.Fixedpoint.steps_applied);
                  ("cache_hits", Int f.Relim.Fixedpoint.cache_hits);
                  ("cache_misses", Int f.Relim.Fixedpoint.cache_misses);
                  ("hash_conflicts", Int f.Relim.Fixedpoint.hash_conflicts);
                ];
            let lb = Relim.Fixedpoint.lower_bound_statement v in
            Obj
              [
                ("verdict", String verdict);
                ( "lower_bound",
                  match lb with Some s -> String s | None -> Null );
              ])
      in
      let autopilot =
        phase "autopilot" (fun () ->
            let limits =
              {
                Autopilot.default_limits with
                Autopilot.max_steps = budgets.ap_steps;
                beam = budgets.ap_beam;
                expand_limit = budgets.expand_limit;
                rc_limit = budgets.rc_limit;
              }
            in
            let r = Autopilot.search ~limits ~pool p in
            Obj
              [
                ("verdict", String (Autopilot.verdict_string r.Autopilot.verdict));
                ("steps", Int (List.length r.Autopilot.steps));
                ("candidates_explored", Int r.Autopilot.candidates_explored);
                ("budget_skips", Int r.Autopilot.budget_skips);
                ("certified_steps", Int r.Autopilot.certified_steps);
              ])
      in
      (* Engine-independent counters, attributed to the phase that
         produced them: identical across ZDD/explicit and across domain
         counts wherever the phase completed (the PR 3/8 contracts). *)
      let counters =
        Obj
          [
            ("step", !step_counters);
            ("zero_round", !zr_counters);
            ("fixed_point", !fp_counters);
          ]
      in
      let engine_counters = !eng_counters in
      let certified =
        if c.engine.certify then
          let cs = Certify.Check.stats in
          Obj
            [
              ("r", Int cs.Certify.Check.r_certified);
              ("rbar", Int cs.Certify.Check.rbar_certified);
              ("zero_round", Int cs.Certify.Check.zero_certified);
              ("fixed_points", Int cs.Certify.Check.fixed_points_certified);
              ("relaxations", Int cs.Certify.Check.relaxations_certified);
              ("skipped_subchecks", Int cs.Certify.Check.skipped_subchecks);
            ]
        else Null
      in
      let trips = List.rev !trips in
      let status = if trips = [] then "ok" else "budget" in
      let budget, budget_phase =
        match trips with
        | [] -> (Null, Null)
        | (ph, b) :: _ -> (String b, String ph)
      in
      let opt = function Some j -> j | None -> Null in
      Obj
        (base
        @ [
            ("status", String status);
            ("budget", budget);
            ("budget_phase", budget_phase);
            ("skip_reason", Null);
            ("problem", String (Relim.Serialize.to_string p));
            ("hash", Int (Relim.Iso.invariant_hash p));
            ("step", opt step);
            ("zero_round", opt zero_round);
            ("fixed_point", opt fixed_point);
            ("autopilot", opt autopilot);
            ("certified", certified);
            ("counters", counters);
            ("engine_counters", engine_counters);
            ("wall_s", Float (clock () -. t0));
          ])

(* ---- journal ------------------------------------------------------ *)

let grid_schema = 1

let header_json g =
  let open Store.Json in
  Obj
    [
      ("cell", String "@grid");
      ("schema", Int grid_schema);
      ("families", List (List.map (fun f -> String (family_name f)) g.families));
      ("deltas", List (List.map (fun d -> Int d) g.deltas));
      ("a_values", List (List.map (fun v -> Int v) g.a_values));
      ("x_values", List (List.map (fun v -> Int v) g.x_values));
      ("label_counts", List (List.map (fun v -> Int v) g.label_counts));
      ( "engines",
        List
          (List.map
             (fun e ->
               Obj
                 [
                   ("zdd", Bool e.zdd);
                   ("domains", Int e.domains);
                   ("certify", Bool e.certify);
                 ])
             g.engines) );
      ("expected_cells", Int (List.length (cells g)));
    ]

let grid_of_json j =
  let open Store.Json in
  let ( let* ) r f = Result.bind r f in
  let field k =
    match member k j with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "@grid header lacks %S" k)
  in
  let ints k =
    let* v = field k in
    match v with
    | List l ->
        let parsed = List.filter_map int_opt l in
        if List.length parsed = List.length l then Ok parsed
        else Error (Printf.sprintf "@grid %S has a non-integer member" k)
    | _ -> Error (Printf.sprintf "@grid %S is not a list" k)
  in
  let* fams = field "families" in
  let* families =
    match fams with
    | List l ->
        List.fold_left
          (fun acc v ->
            let* acc = acc in
            match string_opt v with
            | Some s ->
                let* f = family_of_string s in
                Ok (f :: acc)
            | None -> Error "@grid families must be strings")
          (Ok []) l
        |> Result.map List.rev
    | _ -> Error "@grid \"families\" is not a list"
  in
  let* deltas = ints "deltas" in
  let* a_values = ints "a_values" in
  let* x_values = ints "x_values" in
  let* label_counts = ints "label_counts" in
  let* engs = field "engines" in
  let* engines =
    match engs with
    | List l ->
        List.fold_left
          (fun acc e ->
            let* acc = acc in
            match
              ( Option.bind (member "zdd" e) bool_opt,
                Option.bind (member "domains" e) int_opt,
                Option.bind (member "certify" e) bool_opt )
            with
            | Some zdd, Some domains, Some certify ->
                Ok ({ zdd; domains; certify } :: acc)
            | _ -> Error "@grid engine entry is malformed")
          (Ok []) l
        |> Result.map List.rev
    | _ -> Error "@grid \"engines\" is not a list"
  in
  Ok { families; deltas; a_values; x_values; label_counts; engines }

type scan = {
  header : Store.Json.t option;
  completed : (string * string) list;
  keep_bytes : int;
  dropped_tail : bool;
}

let scan_journal path =
  if not (Sys.file_exists path) then
    { header = None; completed = []; keep_bytes = 0; dropped_tail = false }
  else begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    let header = ref None in
    let completed = ref [] in
    let keep = ref 0 in
    let dropped = ref false in
    let n = String.length s in
    let pos = ref 0 in
    (try
       while !pos < n do
         match String.index_from_opt s !pos '\n' with
         | None ->
             (* Interrupted final write: even a parseable line without
                its newline is treated as damaged and re-run. *)
             dropped := true;
             raise Exit
         | Some nl -> (
             let line = String.sub s !pos (nl - !pos) in
             match Store.Json.of_string line with
             | Ok j -> (
                 match
                   Option.bind (Store.Json.member "cell" j)
                     Store.Json.string_opt
                 with
                 | Some "@grid" ->
                     header := Some j;
                     pos := nl + 1;
                     keep := !pos
                 | Some id ->
                     let status =
                       Option.value ~default:""
                         (Option.bind (Store.Json.member "status" j)
                            Store.Json.string_opt)
                     in
                     completed := (id, status) :: !completed;
                     pos := nl + 1;
                     keep := !pos
                 | None ->
                     dropped := true;
                     raise Exit)
             | Error _ ->
                 dropped := true;
                 raise Exit)
       done
     with Exit -> ());
    {
      header = !header;
      completed = List.rev !completed;
      keep_bytes = !keep;
      dropped_tail = !dropped;
    }
  end

type summary = {
  total : int;
  served : int;
  ran : int;
  ok : int;
  budgeted : int;
  skipped : int;
  recovered_tail : bool;
  complete : bool;
  wall_s : float;
}

let run ?(clock = Unix.gettimeofday) ?max_cells ?(log = fun _ -> ())
    ~budgets ~out grid =
  let t0 = clock () in
  let all = cells grid in
  let header = header_json grid in
  let scan = scan_journal out in
  (match scan.header with
  | Some h when Store.Json.to_string h <> Store.Json.to_string header ->
      failwith
        (Printf.sprintf
           "%s holds a journal for a different grid; refusing to mix sweeps"
           out)
  | _ -> ());
  if scan.dropped_tail then begin
    Unix.truncate out scan.keep_bytes;
    log
      (Printf.sprintf "recovered journal: dropped a damaged tail at byte %d"
         scan.keep_bytes)
  end;
  let done_tbl = Hashtbl.create 64 in
  List.iter (fun (id, st) -> Hashtbl.replace done_tbl id st) scan.completed;
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 out
  in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  if scan.header = None then begin
    output_string oc (Store.Json.to_string header);
    output_char oc '\n';
    flush oc
  end;
  let served = ref 0 and ran = ref 0 in
  let ok = ref 0 and budgeted = ref 0 and skipped = ref 0 in
  let tally = function
    | "ok" -> incr ok
    | "budget" -> incr budgeted
    | "skipped" -> incr skipped
    | _ -> ()
  in
  let hit_limit = ref false in
  List.iter
    (fun c ->
      let id = cell_id c in
      match Hashtbl.find_opt done_tbl id with
      | Some status ->
          incr served;
          tally status;
          log (Printf.sprintf "served  %s (%s)" id status)
      | None ->
          if
            (match max_cells with Some m -> !ran >= m | None -> false)
            || !hit_limit
          then hit_limit := true
          else begin
            let record =
              Trace.with_span "sweep.cell" ~attrs:[ ("cell", id) ] (fun () ->
                  run_cell ~clock ~budgets c)
            in
            output_string oc (Store.Json.to_string record);
            output_char oc '\n';
            (* One flushed line per cell: a kill can lose or truncate
               at most the line being written, which the next scan
               detects and re-runs. *)
            flush oc;
            incr ran;
            let status =
              Option.value ~default:""
                (Option.bind (Store.Json.member "status" record)
                   Store.Json.string_opt)
            in
            tally status;
            log (Printf.sprintf "ran     %s (%s)" id status)
          end)
    all;
  let total = List.length all in
  let complete = !served + !ran = total in
  Trace.instant "sweep.done"
    ~attrs:
      [
        ("total", string_of_int total);
        ("served", string_of_int !served);
        ("ran", string_of_int !ran);
      ];
  {
    total;
    served = !served;
    ran = !ran;
    ok = !ok;
    budgeted = !budgeted;
    skipped = !skipped;
    recovered_tail = scan.dropped_tail;
    complete;
    wall_s = clock () -. t0;
  }
