module Graph = Dsgraph.Graph
module Orientation = Dsgraph.Orientation

let palette_size ~delta ~k =
  if k < 0 then invalid_arg "Defective.palette_size: negative k";
  (delta / (k + 1)) + 1

let same_color_neighbors g colors v =
  let count = ref 0 in
  for p = 0 to Graph.degree g v - 1 do
    if colors.(Graph.neighbor g v p) = colors.(v) then incr count
  done;
  !count

let minority_color g colors palette v =
  let used = Array.make palette 0 in
  for p = 0 to Graph.degree g v - 1 do
    let c = colors.(Graph.neighbor g v p) in
    if c >= 0 then used.(c) <- used.(c) + 1
  done;
  let best = ref 0 in
  for c = 1 to palette - 1 do
    if used.(c) < used.(!best) then best := c
  done;
  !best

let defective g ~k =
  let delta = Graph.max_degree g in
  let palette = palette_size ~delta ~k in
  let colors = Array.make (Graph.n g) 0 in
  (* Local search: any node with too many same-color neighbors moves to
     a minority color; each move strictly decreases the number of
     monochromatic edges, so at most m iterations happen. *)
  let continue = ref true in
  while !continue do
    continue := false;
    for v = 0 to Graph.n g - 1 do
      if same_color_neighbors g colors v > k then begin
        colors.(v) <- minority_color g colors palette v;
        continue := true
      end
    done
  done;
  if not (Dsgraph.Check.is_defective_coloring g ~k colors) then
    failwith "Defective.defective: verification failed";
  colors

let arbdefective g ~k =
  let delta = Graph.max_degree g in
  let palette = palette_size ~delta ~k in
  let n = Graph.n g in
  let colors = Array.make n (-1) in
  for v = 0 to n - 1 do
    (* Color least used among already-colored (earlier) neighbors: the
       at most Δ earlier neighbors spread over > Δ/(k+1) colors, so the
       minority color has at most k of them. *)
    colors.(v) <- minority_color g colors palette v
  done;
  let towards =
    Array.init (Graph.m g) (fun e ->
        let u, v = Graph.endpoints g e in
        if colors.(u) <> colors.(v) then -1 else min u v)
  in
  let orientation = Orientation.make g towards in
  if not (Dsgraph.Check.is_arbdefective_coloring g ~k colors orientation) then
    failwith "Defective.arbdefective: verification failed";
  (colors, orientation)
