let is_prime q =
  q >= 2
  &&
  let rec go d = d * d > q || (q mod d <> 0 && go (d + 1)) in
  go 2

let next_prime q =
  let rec go q = if is_prime q then q else go (q + 1) in
  go (max 2 q)

(* Smallest r with r^m >= k. *)
let ceil_root k m =
  let rec pow r m = if m = 0 then 1 else r * pow r (m - 1) in
  let guess =
    int_of_float (Float.round (Float.pow (float_of_int k) (1. /. float_of_int m)))
  in
  let rec adjust r = if pow r m >= k then r else adjust (r + 1) in
  adjust (max 1 (guess - 2))

(* Parameters of one Linial step from a K-coloring at maximum degree
   delta: a prime q and degree bound d with q > delta*d and
   q^(d+1) >= K, minimizing the resulting palette q². *)
let step_params ~delta k =
  let best = ref None in
  for d = 1 to 40 do
    let q = next_prime (max ((delta * d) + 1) (ceil_root k (d + 1))) in
    match !best with
    | Some (q', _) when q' <= q -> ()
    | _ -> best := Some (q, d)
  done;
  match !best with Some qd -> qd | None -> assert false

(* The full schedule: Linial steps until the palette stops shrinking,
   then one reduce round per color above delta+1. *)
let full_schedule ~n ~delta =
  let rec steps k acc =
    let q, d = step_params ~delta k in
    if q * q < k then steps (q * q) ((q, d) :: acc)
    else (k, List.rev acc)
  in
  let fixpoint, linial_steps = steps (max 1 n) [] in
  let reduce_rounds = max 0 (fixpoint - (delta + 1)) in
  (fixpoint, linial_steps, reduce_rounds)

let schedule ~n ~delta =
  let fixpoint, linial_steps, reduce_rounds = full_schedule ~n ~delta in
  (fixpoint, List.length linial_steps, reduce_rounds)

(* Evaluate the polynomial encoded by [color] in base q (degree <= d)
   at point x, over F_q. *)
let poly_eval ~q ~d color x =
  let value = ref 0 and c = ref color and xpow = ref 1 in
  for _ = 0 to d do
    value := (!value + (!c mod q * !xpow)) mod q;
    c := !c / q;
    xpow := !xpow * x mod q
  done;
  !value

type state = {
  color : int;
  t : int;
  fixpoint : int;
  linial_steps : (int * int) list;  (** Remaining (q, d) steps. *)
  reduce_rounds : int;
  horizon : int;
}

type message = int

let algo : (unit, state, message, int) Localsim.Algo.t =
  {
    name = "linial-coloring";
    init =
      (fun ctx () ->
        let n = ctx.Localsim.Ctx.n and delta = ctx.Localsim.Ctx.delta in
        let fixpoint, linial_steps, reduce_rounds = full_schedule ~n ~delta in
        {
          color = Localsim.Ctx.the_id ctx - 1;
          t = 0;
          fixpoint;
          linial_steps;
          reduce_rounds;
          horizon = List.length linial_steps + reduce_rounds;
        });
    send = (fun ctx st ~round:_ -> Array.make ctx.Localsim.Ctx.degree st.color);
    recv =
      (fun _ctx st ~round:_ inbox ->
        match st.linial_steps with
        | (q, d) :: rest ->
            (* One polynomial step: find x with p_v(x) distinct from
               every neighbor's value. *)
            let rec find x =
              if x >= q then
                (* Cannot happen: q > delta*d bad points. *)
                failwith "Linial: no good evaluation point"
              else begin
                let mine = poly_eval ~q ~d st.color x in
                let clash =
                  Array.exists (fun c -> poly_eval ~q ~d c x = mine) inbox
                in
                if clash then find (x + 1) else (x, mine)
              end
            in
            let x, value = find 0 in
            { st with color = (x * q) + value; t = st.t + 1; linial_steps = rest }
        | [] ->
            (* Reduce phase: eliminate the current maximum color. *)
            let j = st.t - (st.horizon - st.reduce_rounds) in
            let eliminated = st.fixpoint - 1 - j in
            let color =
              if st.color = eliminated then begin
                let used = Array.to_list inbox in
                let rec smallest c = if List.mem c used then smallest (c + 1) else c in
                smallest 0
              end
              else st.color
            in
            { st with color; t = st.t + 1 });
    output = (fun st -> if st.t >= st.horizon then Some st.color else None);
  }

let run g =
  let result = Localsim.Run.run g ~inputs:(Localsim.Run.no_inputs g) algo in
  let delta = Dsgraph.Graph.max_degree g in
  let bound = max (delta + 1) 1 in
  if
    not
      (Dsgraph.Check.is_proper_coloring ~bound g result.Localsim.Run.outputs)
  then failwith "Linial.run: output is not a proper (Delta+1)-coloring";
  (result.Localsim.Run.outputs, result.Localsim.Run.rounds)
