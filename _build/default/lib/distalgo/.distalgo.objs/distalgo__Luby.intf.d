lib/distalgo/luby.mli: Dsgraph Localsim
