lib/distalgo/color_to_ds.mli: Dsgraph Localsim
