lib/distalgo/linial.ml: Array Dsgraph Float List Localsim
