lib/distalgo/cole_vishkin.mli: Dsgraph Localsim
