lib/distalgo/kods.ml: Array Cole_vishkin Color_to_ds Defective Dsgraph Linial
