lib/distalgo/rooted.ml: Array Dsgraph Localsim
