lib/distalgo/ruling_set.mli: Dsgraph
