lib/distalgo/rooted.mli: Dsgraph Localsim
