lib/distalgo/kods.mli: Dsgraph
