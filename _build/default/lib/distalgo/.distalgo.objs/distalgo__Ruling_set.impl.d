lib/distalgo/ruling_set.ml: Array Dsgraph Luby
