lib/distalgo/matching.ml: Array Dsgraph List Localsim Printf
