lib/distalgo/luby.ml: Array Dsgraph Localsim Random
