lib/distalgo/color_to_ds.ml: Array Dsgraph Localsim
