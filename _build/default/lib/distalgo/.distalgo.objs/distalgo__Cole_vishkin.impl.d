lib/distalgo/cole_vishkin.ml: Array Dsgraph List Localsim Rooted
