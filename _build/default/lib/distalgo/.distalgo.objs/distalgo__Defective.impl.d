lib/distalgo/defective.ml: Array Dsgraph
