lib/distalgo/defective.mli: Dsgraph
