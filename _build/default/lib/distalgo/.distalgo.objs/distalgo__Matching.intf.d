lib/distalgo/matching.mli: Dsgraph Localsim
