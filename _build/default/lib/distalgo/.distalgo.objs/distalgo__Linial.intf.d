lib/distalgo/linial.mli: Dsgraph Localsim
