module Graph = Dsgraph.Graph
module Orientation = Dsgraph.Orientation

type result = {
  selected : bool array;
  orientation : Orientation.t;
  rounds : int;
  palette : int;
}

let check ~k g result =
  if
    not
      (Dsgraph.Check.is_k_outdegree_dominating_set g ~k result.selected
         result.orientation)
  then failwith "Kods: output is not a k-outdegree dominating set"

let via_arbdefective g ~k =
  let colors, orientation = Defective.arbdefective g ~k in
  let selected, rounds = Color_to_ds.select g colors in
  let orientation = Orientation.restrict orientation (fun v -> selected.(v)) in
  let palette = 1 + Array.fold_left max 0 colors in
  let result = { selected; orientation; rounds; palette } in
  check ~k g result;
  result

let via_defective g ~k =
  let colors = Defective.defective g ~k in
  let selected, rounds = Color_to_ds.select g colors in
  if not (Dsgraph.Check.is_k_degree_dominating_set g ~k selected) then
    failwith "Kods.via_defective: output is not a k-degree dominating set";
  (* Any orientation of the induced edges witnesses outdegree <= k,
     since even the full induced degree is at most k. *)
  let towards =
    Array.init (Graph.m g) (fun e ->
        let u, v = Graph.endpoints g e in
        if selected.(u) && selected.(v) then min u v else -1)
  in
  let orientation = Orientation.make g towards in
  let palette = 1 + Array.fold_left max 0 colors in
  let result = { selected; orientation; rounds; palette } in
  check ~k g result;
  result

let via_round_robin g ~k ~root =
  if k < 1 then invalid_arg "Kods.via_round_robin: needs k >= 1";
  if not (Graph.is_tree g) then invalid_arg "Kods.via_round_robin: not a tree";
  let delta = Graph.max_degree g in
  let palette = Defective.palette_size ~delta ~k in
  let colors = Array.init (Graph.n g) (fun v -> v mod palette) in
  let to_root = Orientation.towards_root ~root g in
  let orientation =
    Orientation.restrict to_root (fun _ -> true)
    |> fun o ->
    Orientation.make g
      (Array.mapi
         (fun e head ->
           let u, v = Graph.endpoints g e in
           if colors.(u) = colors.(v) then head else -1)
         o.Orientation.towards)
  in
  if not (Dsgraph.Check.is_arbdefective_coloring g ~k colors orientation) then
    failwith "Kods.via_round_robin: coloring verification failed";
  let selected, rounds = Color_to_ds.select g colors in
  let orientation = Orientation.restrict orientation (fun v -> selected.(v)) in
  let result = { selected; orientation; rounds; palette } in
  check ~k g result;
  result

let trivial_on_rooted_tree g ~k ~root =
  if k < 1 then invalid_arg "Kods.trivial_on_rooted_tree: needs k >= 1";
  if not (Graph.is_tree g) then
    invalid_arg "Kods.trivial_on_rooted_tree: not a tree";
  let selected = Array.make (Graph.n g) true in
  let orientation = Orientation.towards_root ~root g in
  let result = { selected; orientation; rounds = 0; palette = 1 } in
  check ~k g result;
  result

let mis_via_linial g =
  let colors, linial_rounds = Linial.run g in
  let mis, select_rounds = Color_to_ds.mis_of_proper_coloring g colors in
  (mis, linial_rounds + select_rounds)

let mis_on_tree g ~root =
  let colors, cv_rounds = Cole_vishkin.run g ~root in
  let mis, select_rounds = Color_to_ds.mis_of_proper_coloring g colors in
  (mis, cv_rounds + select_rounds)
