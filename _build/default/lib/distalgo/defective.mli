(** Defective and arbdefective colorings.

    A k-defective c-coloring partitions the nodes into c classes so
    that each node has at most k same-color neighbors; a k-arbdefective
    c-coloring additionally orients same-color edges so that each node
    has at most k same-color {e out}-neighbors (Section 1.1).

    The paper uses the distributed constructions of [Kuhn '09] and
    [Barenboim–Elkin–Goldenberg '18] as black boxes; here we provide
    centralized constructions with the same (k, c) interface — see the
    substitution table in DESIGN.md — plus the quantities needed to
    model their round costs. *)

(** Smallest palette size our constructions guarantee for defect [k] at
    maximum degree [delta]: [⌊delta/(k+1)⌋ + 1] (≈ Δ/k, the same
    asymptotics as the distributed algorithms the paper cites). *)
val palette_size : delta:int -> k:int -> int

(** [defective g ~k] — a k-defective coloring with
    [palette_size ~delta:(max_degree g) ~k] colors, by local search
    (recolor any over-defective node to a minority color; the number of
    monochromatic edges strictly decreases, so this terminates).
    Output verified internally.
    @raise Invalid_argument if [k < 0]. *)
val defective : Dsgraph.Graph.t -> k:int -> int array

(** [arbdefective g ~k] — a k-arbdefective coloring with the same
    palette: greedy in node order (each node takes the color least used
    among already-colored neighbors), orienting same-color edges from
    later to earlier nodes.  Output verified internally. *)
val arbdefective : Dsgraph.Graph.t -> k:int -> int array * Dsgraph.Orientation.t
