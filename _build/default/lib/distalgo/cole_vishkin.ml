let bits_for k =
  (* Number of bits needed to write colors 0 .. k-1. *)
  let rec go b = if 1 lsl b >= k then b else go (b + 1) in
  max 1 (go 1)

let cv_rounds n =
  let rec go k acc = if k <= 6 then acc else go (2 * bits_for k) (acc + 1) in
  go (max 1 n) 0

let schedule_length n = cv_rounds n + 6

(* Least bit position where a and b differ (they must differ). *)
let first_diff_bit a b =
  let x = a lxor b in
  let rec go i = if (x lsr i) land 1 = 1 then i else go (i + 1) in
  go 0

type state = { color : int; parent_port : int; t : int; horizon : int }

type message = int

let smallest_not_in forbidden =
  let rec go c = if List.mem c forbidden then go (c + 1) else c in
  go 0

let algo : (int, state, message, int) Localsim.Algo.t =
  {
    name = "cole-vishkin-3coloring";
    init =
      (fun ctx parent_port ->
        let n = ctx.Localsim.Ctx.n in
        {
          color = Localsim.Ctx.the_id ctx - 1;
          parent_port;
          t = 0;
          horizon = schedule_length n;
        });
    send =
      (fun ctx st ~round:_ -> Array.make ctx.Localsim.Ctx.degree st.color);
    recv =
      (fun ctx st ~round:_ inbox ->
        let cv = cv_rounds ctx.Localsim.Ctx.n in
        let is_root = st.parent_port < 0 in
        let color =
          if st.t < cv then begin
            (* Bit-compression step. *)
            if is_root then st.color land 1
            else begin
              let pc = inbox.(st.parent_port) in
              let i = first_diff_bit st.color pc in
              (2 * i) + ((st.color lsr i) land 1)
            end
          end
          else begin
            let j = st.t - cv in
            if j mod 2 = 0 then begin
              (* Shift-down: adopt the parent's color so that all
                 siblings agree; the root moves away from its own old
                 color. *)
              if is_root then smallest_not_in [ st.color ]
              else inbox.(st.parent_port)
            end
            else begin
              (* Eliminate color 5 - j/2: after a shift-down, a node's
                 neighbors use at most two colors (parent's, and the
                 common color of its children). *)
              let target = 5 - (j / 2) in
              if st.color = target then
                smallest_not_in (Array.to_list inbox)
              else st.color
            end
          end
        in
        { st with color; t = st.t + 1 });
    output = (fun st -> if st.t >= st.horizon then Some st.color else None);
  }

let run g ~root =
  let inputs = Rooted.parent_ports g ~root in
  let result = Localsim.Run.run g ~inputs algo in
  if not (Dsgraph.Check.is_proper_coloring ~bound:3 g result.Localsim.Run.outputs) then
    failwith "Cole_vishkin.run: output is not a proper 3-coloring";
  (result.Localsim.Run.outputs, result.Localsim.Run.rounds)
