type input = { color : int; palette : int }

type state = { input : input; dominated : bool; joined : bool; t : int }

type message = Joined | Quiet

let algo : (input, state, message, bool) Localsim.Algo.t =
  {
    name = "color-class-selection";
    init = (fun _ctx input -> { input; dominated = false; joined = false; t = 0 });
    send =
      (fun ctx st ~round ->
        let announce = round = st.input.color && not st.dominated in
        Array.make ctx.Localsim.Ctx.degree (if announce then Joined else Quiet));
    recv =
      (fun _ctx st ~round inbox ->
        let joined =
          st.joined || (round = st.input.color && not st.dominated)
        in
        let dominated =
          st.dominated || Array.exists (fun m -> m = Joined) inbox
        in
        { st with joined; dominated; t = st.t + 1 });
    output =
      (fun st -> if st.t >= st.input.palette then Some st.joined else None);
  }

let select g colors =
  let palette = 1 + Array.fold_left max 0 colors in
  let inputs = Array.map (fun c -> { color = c; palette }) colors in
  let result = Localsim.Run.run ~ids:Localsim.Run.Anonymous g ~inputs algo in
  (result.Localsim.Run.outputs, result.Localsim.Run.rounds)

let mis_of_proper_coloring g colors =
  let sel, rounds = select g colors in
  if not (Dsgraph.Check.is_mis g sel) then
    failwith "Color_to_ds.mis_of_proper_coloring: output is not an MIS";
  (sel, rounds)
