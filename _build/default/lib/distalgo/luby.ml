type status = Undecided | In_mis | Out

type state = { status : status; draw : int }

type message = { status : status; draw : int }

let fresh_draw ctx =
  (* 60 random bits: ties are vanishingly rare and merely stall one
     phase. *)
  Random.State.full_int (Localsim.Ctx.the_rng ctx) (1 lsl 60)

let algo : (unit, state, message, bool) Localsim.Algo.t =
  {
    name = "luby-mis";
    init = (fun ctx () -> { status = Undecided; draw = fresh_draw ctx });
    send =
      (fun ctx st ~round:_ ->
        Array.make ctx.Localsim.Ctx.degree { status = st.status; draw = st.draw });
    recv =
      (fun ctx st ~round inbox ->
        if round mod 2 = 0 then begin
          (* Phase step A: join if a strict local minimum among
             undecided neighbors. *)
          match st.status with
          | Undecided ->
              let beaten =
                Array.exists
                  (fun (m : message) ->
                    m.status = Undecided && m.draw <= st.draw)
                  inbox
              in
              if beaten then st else { st with status = In_mis }
          | In_mis | Out -> st
        end
        else begin
          (* Phase step B: retire neighbors of joiners, redraw. *)
          match st.status with
          | Undecided ->
              let dominated =
                Array.exists (fun (m : message) -> m.status = In_mis) inbox
              in
              if dominated then { st with status = Out }
              else { status = Undecided; draw = fresh_draw ctx }
          | In_mis | Out -> st
        end);
    output =
      (fun st ->
        match st.status with
        | Undecided -> None
        | In_mis -> Some true
        | Out -> Some false);
  }

let run ?(seed = 42) g =
  let result =
    Localsim.Run.run ~ids:Localsim.Run.Anonymous ~seed g
      ~inputs:(Localsim.Run.no_inputs g) algo
  in
  if not (Dsgraph.Check.is_mis g result.Localsim.Run.outputs) then
    failwith "Luby.run: output is not an MIS";
  (result.Localsim.Run.outputs, result.Localsim.Run.rounds)
