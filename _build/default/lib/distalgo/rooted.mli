(** Rootings of trees.

    Several classic tree algorithms (Cole–Vishkin coloring, trivial
    arbdefective colorings) consume a {e rooted} tree: every non-root
    node knows the port leading to its parent.  Computing a rooting
    distributedly costs Θ(diameter) rounds in LOCAL — it is an input
    assumption, not part of the symmetry-breaking cost, in the same way
    the paper hands nodes a Δ-edge coloring.  We provide both the
    centralized input generator and a distributed flooding algorithm
    for completeness. *)

(** [parent_ports g ~root] — for each node the port towards its parent,
    [-1] for the root.
    @raise Invalid_argument if [g] is not a tree. *)
val parent_ports : Dsgraph.Graph.t -> root:int -> int array

type state

type message

(** Distributed flooding rooting: input [true] exactly at the intended
    root; output is the parent port ([-1] at the root).  Terminates
    after eccentricity(root) + O(1) rounds. *)
val flooding : (bool, state, message, int) Localsim.Algo.t
