(** Cole–Vishkin style deterministic 3-coloring of rooted trees in
    O(log* n) rounds [Cole–Vishkin '86; Goldberg–Plotkin–Shannon '88].

    Input: the port towards the parent ([-1] at the root).  Initial
    colors are the unique identifiers, iteratively compressed by the
    bit-trick to 6 colors in O(log* n) rounds, then reduced to 3 by
    three shift-down + eliminate steps.  This is the [O(log* n)]
    ingredient of the tree MIS upper bounds discussed in Section 1.1 of
    the paper.

    The number of rounds is a deterministic function of [n] only, so
    all nodes terminate simultaneously — convenient for composing with
    the color-by-color stage. *)

type state

(** Messages are the sender's current color (initially an identifier),
    exposed so harnesses can account CONGEST message sizes. *)
type message = int

(** Output: a color in [{0, 1, 2}], proper on the tree. *)
val algo : (int, state, message, int) Localsim.Algo.t

(** Rounds the schedule uses for [n] nodes: [cv_rounds n + 6]. *)
val schedule_length : int -> int

(** Number of bit-compression iterations needed from initial palette
    [n] down to 6 colors (a log* -type quantity). *)
val cv_rounds : int -> int

(** [run g ~root] — rounds and the verified proper 3-coloring.
    @raise Failure if the output fails verification (a bug). *)
val run : Dsgraph.Graph.t -> root:int -> int array * int
