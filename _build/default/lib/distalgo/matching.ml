module Graph = Dsgraph.Graph

type input = { port_colors : int array; palette : int }

type state = {
  input : input;
  b : int;
  saturation : int;
  matched_ports : bool array;
  t : int;
}

type message = Propose | Decline

(* In the round for color c, both endpoints of a color-c edge know
   whether the other side is still unsaturated; the edge joins the
   matching iff both propose.  No tie-breaking is needed because the
   color classes are matchings themselves. *)
let algo ~b : (input, state, message, bool array) Localsim.Algo.t =
  {
    name = Printf.sprintf "b-matching(b=%d)" b;
    init =
      (fun ctx input ->
        {
          input;
          b;
          saturation = 0;
          matched_ports = Array.make ctx.Localsim.Ctx.degree false;
          t = 0;
        });
    send =
      (fun ctx st ~round ->
        Array.init ctx.Localsim.Ctx.degree (fun port ->
            if st.input.port_colors.(port) = round && st.saturation < st.b then
              Propose
            else Decline));
    recv =
      (fun _ctx st ~round inbox ->
        let matched_ports = Array.copy st.matched_ports in
        let gained = ref 0 in
        Array.iteri
          (fun port msg ->
            if
              st.input.port_colors.(port) = round
              && msg = Propose
              && st.saturation < st.b
            then begin
              matched_ports.(port) <- true;
              incr gained
            end)
          inbox;
        { st with matched_ports; saturation = st.saturation + !gained; t = st.t + 1 });
    output =
      (fun st -> if st.t >= st.input.palette then Some st.matched_ports else None);
  }

let run_generic g ~b colors =
  if not (Dsgraph.Edge_coloring.is_proper g colors) then
    invalid_arg "Matching: edge coloring is not proper";
  let palette = 1 + Array.fold_left max 0 colors in
  let inputs =
    Array.init (Graph.n g) (fun v ->
        let d = Graph.degree g v in
        {
          port_colors = Array.init d (fun p -> colors.(Graph.edge_id g v p));
          palette;
        })
  in
  let result =
    Localsim.Run.run ~ids:Localsim.Run.Anonymous g ~inputs (algo ~b)
  in
  (* Per-edge selection from per-port outputs; both sides agree by
     construction — assert it. *)
  let sel = Array.make (Graph.m g) false in
  for v = 0 to Graph.n g - 1 do
    Array.iteri
      (fun port matched ->
        if matched then sel.(Graph.edge_id g v port) <- true)
      result.Localsim.Run.outputs.(v)
  done;
  for v = 0 to Graph.n g - 1 do
    Array.iteri
      (fun port matched ->
        if sel.(Graph.edge_id g v port) && not matched then
          failwith "Matching: endpoints disagree")
      result.Localsim.Run.outputs.(v)
  done;
  (sel, result.Localsim.Run.rounds)

let maximal g colors =
  let sel, rounds = run_generic g ~b:1 colors in
  if not (Dsgraph.Check.is_maximal_matching g sel) then
    failwith "Matching.maximal: verification failed";
  (sel, rounds)

let saturated g ~b sel v =
  let touched = ref 0 in
  for p = 0 to Graph.degree g v - 1 do
    if sel.(Graph.edge_id g v p) then incr touched
  done;
  !touched >= b

let b_matching g ~b colors =
  let sel, rounds = run_generic g ~b colors in
  if not (Dsgraph.Check.is_b_matching g ~b sel) then
    failwith "Matching.b_matching: not a b-matching";
  (* Maximality: every unselected edge has a saturated endpoint. *)
  List.iteri
    (fun e (u, v) ->
      if (not sel.(e)) && (not (saturated g ~b sel u)) && not (saturated g ~b sel v)
      then failwith "Matching.b_matching: not maximal")
    (Graph.edges g);
  (sel, rounds)
