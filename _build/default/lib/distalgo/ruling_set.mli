(** Ruling sets (Section 1 of the paper).

    An (α, β)-ruling set: selected nodes pairwise at distance ≥ α,
    every node within distance β of a selected one.  MIS = (2, 1);
    (2, r)-ruling sets relax the domination radius, the "other"
    relaxation of MIS the paper compares its dominating sets against.

    The construction here is the classic reduction: an MIS of the
    power graph G^β is a (β+1, β)-ruling set of G (hence in particular
    a (2, β)-ruling set).  One round of the power graph costs β rounds
    of G, so the measured round count is scaled accordingly. *)

(** [is_ruling_set g ~alpha ~beta sel] — centralized verifier. *)
val is_ruling_set : Dsgraph.Graph.t -> alpha:int -> beta:int -> bool array -> bool

(** [via_power_mis g ~beta ~seed] — Luby's MIS on [G^beta]; returns
    (selection, rounds-in-G = beta × rounds-in-G^beta).  Verified to be
    a (beta+1, beta)-ruling set.
    @raise Failure on verification failure (a bug). *)
val via_power_mis : Dsgraph.Graph.t -> beta:int -> seed:int -> bool array * int
