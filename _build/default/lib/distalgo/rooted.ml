module Graph = Dsgraph.Graph

let parent_ports g ~root =
  if not (Graph.is_tree g) then invalid_arg "Rooted.parent_ports: not a tree";
  let _, parent = Graph.bfs_parents g root in
  Array.init (Graph.n g) (fun v ->
      if v = root then -1 else Graph.port_of g v parent.(v))

(* Flooding: the root claims itself at round 0; every node adopts the
   first port from which it hears a claim, then claims onward.  A node
   can output once it has been claimed and has heard from all ports —
   simply: once claimed, after one more round (its claim has been
   propagated). Termination detection in a tree: a node may stop once
   claimed; total time = ecc(root) + 1. *)
type state = { parent : int option; claimed : bool }

type message = Claim | Quiet

let flooding : (bool, state, message, int) Localsim.Algo.t =
  {
    name = "flooding-rooting";
    init =
      (fun _ctx is_root ->
        if is_root then { parent = Some (-1); claimed = true }
        else { parent = None; claimed = false });
    send =
      (fun ctx st ~round:_ ->
        Array.make ctx.Localsim.Ctx.degree (if st.claimed then Claim else Quiet));
    recv =
      (fun _ctx st ~round:_ inbox ->
        match st.parent with
        | Some _ -> st
        | None ->
            let rec first p =
              if p >= Array.length inbox then None
              else if inbox.(p) = Claim then Some p
              else first (p + 1)
            in
            (match first 0 with
            | Some p -> { parent = Some p; claimed = true }
            | None -> st));
    output = (fun st -> st.parent);
  }
