(** k-outdegree / k-degree dominating set pipelines (Section 1.1).

    Upper-bound counterparts of the paper's lower bound: the round
    complexities measured here are the [O(c)] color-iteration stage
    given a coloring as input — the coloring itself is either an input
    substrate (centralized, like the paper's black-box citations) or
    computed distributedly on trees via Cole–Vishkin. *)

type result = {
  selected : bool array;
  orientation : Dsgraph.Orientation.t;
      (** Orients all edges inside the selected set. *)
  rounds : int;  (** Rounds of the distributed selection stage. *)
  palette : int;  (** Number of color classes iterated. *)
}

(** [via_arbdefective g ~k] — k-arbdefective coloring (centralized
    substrate, palette ≈ Δ/k) + distributed color-class iteration.
    Works on any graph, any [k ≥ 0].  Verified internally.
    @raise Failure on verification failure (a bug). *)
val via_arbdefective : Dsgraph.Graph.t -> k:int -> result

(** [via_defective g ~k] — same for k-{e degree} dominating sets (the
    undirected variant); the orientation in the result orients
    same-class edges arbitrarily and is valid for the outdegree variant
    with the same [k]. *)
val via_defective : Dsgraph.Graph.t -> k:int -> result

(** [via_round_robin g ~k ~root] — models the {e generic} algorithm's
    cost on trees: a k-arbdefective coloring with the full worst-case
    palette [⌈Δ/(k+1)⌉ + 1] (classes assigned round-robin, same-class
    edges oriented towards the root — any subset of a tree has
    arbdefect ≤ 1 ≤ k), then the color-class iteration.  The selection
    stage therefore runs Θ(Δ/k) rounds, exhibiting the palette law of
    the [O(Δ/k + log* n)] upper bound that tree-specific colorings
    hide.  Requires [k ≥ 1]. *)
val via_round_robin : Dsgraph.Graph.t -> k:int -> root:int -> result

(** [trivial_on_rooted_tree g ~k ~root] — the observation that on a
    rooted tree, S = V with all edges oriented towards the root is a
    k-outdegree dominating set for every [k ≥ 1] in zero rounds (any
    subset of a tree induces a forest of outdegree 1).
    @raise Invalid_argument if [k < 1] or [g] is not a tree. *)
val trivial_on_rooted_tree : Dsgraph.Graph.t -> k:int -> root:int -> result

(** [mis_via_linial g] — MIS on an {e arbitrary} graph, fully
    distributed, no inputs beyond identifiers: Linial color reduction
    to ≤ Δ+1 colors in O(Δ² + log* n) rounds, then color-class
    selection.  Returns (mis, total rounds).  Verified internally. *)
val mis_via_linial : Dsgraph.Graph.t -> bool array * int

(** [mis_on_tree g ~root] — MIS on a tree: Cole–Vishkin 3-coloring +
    3-round color iteration; returns (mis, rounds).  The rounds are
    [O(log* n) + 3].  Verified internally. *)
val mis_on_tree : Dsgraph.Graph.t -> root:int -> bool array * int
