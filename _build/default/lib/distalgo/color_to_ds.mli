(** The paper's upper-bound recipe (Section 1.1): from a k-defective or
    k-arbdefective c-coloring to a k-(out)degree dominating set.

    "We start with an empty set S and iterate over the c color classes.
    When considering the nodes of a given color class, we add all nodes
    to the set S that do not already have a neighbor in S."

    One communication round per color class.  Since a node is blocked
    by S-members of earlier classes, edges inside S only ever connect
    members of the {e same} class — so the defect/arbdefect bound of a
    single class bounds the degree/outdegree of S.

    - proper coloring (defect 0)            → MIS;
    - k-defective c-coloring                → k-degree dominating set;
    - k-arbdefective c-coloring (+ its
      orientation, restricted to S)         → k-outdegree dominating set. *)

type input = {
  color : int;  (** This node's input color, in [0 .. palette-1]. *)
  palette : int;  (** Number of color classes (global constant). *)
}

type state

type message

(** Output: [true] iff the node joined S.  Runs for exactly [palette]
    rounds. *)
val algo : (input, state, message, bool) Localsim.Algo.t

(** [select g colors] — run the algorithm with the given input node
    coloring; returns (membership, rounds). *)
val select : Dsgraph.Graph.t -> int array -> bool array * int

(** [mis_of_proper_coloring g colors] — [select], verified to be an MIS
    (requires [colors] proper).
    @raise Failure if verification fails. *)
val mis_of_proper_coloring : Dsgraph.Graph.t -> int array -> bool array * int
