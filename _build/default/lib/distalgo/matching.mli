(** Maximal matchings and b-matchings.

    Maximal matching is the line-graph counterpart of MIS (Section 1
    of the paper); b-matchings generalize it the way k-outdegree
    dominating sets generalize MIS, and carry the Ω(Δ/b) lower bound of
    [4, 15] the paper compares against.

    The algorithm here is the edge-coloring analogue of the color-class
    recipe: given a proper edge coloring as input, iterate over the
    color classes; an edge joins the matching when both endpoints are
    still unsaturated (below their budget [b]).  One round per color;
    with a Δ-edge coloring on trees this is Δ rounds. *)

type input = {
  port_colors : int array;  (** Color of the edge behind each port. *)
  palette : int;
}

type state

type message

(** [algo ~b] — per-node output: for each port, is the edge matched?
    (Both endpoints of an edge always agree.) *)
val algo : b:int -> (input, state, message, bool array) Localsim.Algo.t

(** [maximal g colors] — 1-matching from a proper edge coloring;
    verified maximal.  Returns (per-edge selection, rounds).
    @raise Invalid_argument if [colors] is not proper.
    @raise Failure if verification fails (a bug). *)
val maximal : Dsgraph.Graph.t -> int array -> bool array * int

(** [b_matching g ~b colors] — every node matched by at most [b]
    selected edges; maximal in the sense that any unselected edge has a
    saturated endpoint.  Verified. *)
val b_matching : Dsgraph.Graph.t -> b:int -> int array -> bool array * int
