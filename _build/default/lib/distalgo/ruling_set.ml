module Graph = Dsgraph.Graph

let is_ruling_set g ~alpha ~beta sel =
  Array.length sel = Graph.n g
  &&
  let dist = Dsgraph.Power.all_distances g in
  let n = Graph.n g in
  let independent = ref true and dominated = ref true in
  for u = 0 to n - 1 do
    if sel.(u) then begin
      for v = u + 1 to n - 1 do
        if sel.(v) && dist.(u).(v) >= 0 && dist.(u).(v) < alpha then
          independent := false
      done
    end
    else begin
      let near = ref false in
      for v = 0 to n - 1 do
        if sel.(v) && dist.(u).(v) >= 0 && dist.(u).(v) <= beta then near := true
      done;
      if not !near then dominated := false
    end
  done;
  !independent && !dominated

let via_power_mis g ~beta ~seed =
  let gp = Dsgraph.Power.power g ~r:beta in
  let sel, power_rounds = Luby.run ~seed gp in
  if not (is_ruling_set g ~alpha:(beta + 1) ~beta sel) then
    failwith "Ruling_set.via_power_mis: verification failed";
  (sel, beta * power_rounds)
