(** Luby's randomized MIS algorithm [Luby '86; Alon–Babai–Itai '86].

    Each phase, every undecided node draws a random value and joins the
    MIS if its value is a strict local minimum among undecided
    neighbors; neighbors of joiners retire.  One phase costs two
    communication rounds; O(log n) phases suffice with high
    probability.  Works in the anonymous port-numbering model (ties
    simply stall a phase and are broken by fresh randomness next
    phase). *)

type status = Undecided | In_mis | Out

type state

type message

(** The algorithm; run with a [~seed] so nodes have randomness.
    Output: [true] iff the node is in the MIS. *)
val algo : (unit, state, message, bool) Localsim.Algo.t

(** Convenience wrapper: run on a graph, return (mis, rounds).
    The result is verified to be an MIS before returning.
    @raise Failure if verification fails (would indicate a bug). *)
val run : ?seed:int -> Dsgraph.Graph.t -> bool array * int
