(** Linial's deterministic color reduction [Linial '92] — the classic
    O(log* n) symmetry-breaking on {e general} graphs (no rooting, no
    tree structure), followed by one-color-per-round reduction down to
    Δ+1 colors.

    One Linial step maps a proper K-coloring to a proper q²-coloring in
    a single round: interpret the color as a degree-≤d polynomial over
    F_q (base-q digits, with q prime, q > Δ·d and q^(d+1) ≥ K); two
    distinct polynomials agree on at most d points, so among q > Δ·d
    evaluation points some x has p_v(x) ≠ p_u(x) for all Δ neighbors u;
    the new color is the pair (x, p_v(x)).  Iterating reaches a
    fixpoint K* = O((Δ log Δ)²) in O(log* n) rounds; the remaining
    K* - (Δ+1) colors are then eliminated one per round (the node
    holding the current maximum color recolors to a free color ≤ Δ).

    The round schedule is a deterministic function of (n, Δ), so all
    nodes terminate simultaneously and the algorithm composes with the
    color-class selection stage — this gives the fully distributed
    O(Δ² + …) MIS pipeline of the kind the paper's §1.1 discussion
    assumes, with no centralized substrate. *)

type state

type message = int

(** Output: a proper coloring with at most [max (delta+1) 2] colors...
    precisely: at most Δ+1 colors (Δ the global maximum degree).
    Requires identifiers ([Sequential] or [Shuffled]). *)
val algo : (unit, state, message, int) Localsim.Algo.t

(** The Linial-phase fixpoint palette for maximum degree [delta]
    starting from [n] colors, and the number of rounds of each phase:
    [(fixpoint, linial_rounds, reduce_rounds)]. *)
val schedule : n:int -> delta:int -> int * int * int

(** [run g] — execute and verify; returns (coloring, rounds).
    @raise Failure if the output fails verification (a bug). *)
val run : Dsgraph.Graph.t -> int array * int
