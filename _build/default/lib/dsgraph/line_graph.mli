(** Line graphs.

    The paper repeatedly contrasts trees with line graphs: an MIS of
    the line graph of [g] is a maximal matching of [g], b-matchings are
    bounded-degree analogues, and the strongest known Ω(Δ) MIS lower
    bounds live on line graphs (Section 5).  This module provides the
    construction and the correspondence, so those statements can be
    exercised. *)

(** [of_graph g] — the line graph: one node per edge of [g], two nodes
    adjacent iff the corresponding edges share an endpoint.  Node [e]
    of the result corresponds to edge id [e] of [g]. *)
val of_graph : Graph.t -> Graph.t

(** [matching_of_mis g mis] — interpret an MIS of [of_graph g] as an
    edge subset of [g] (the correspondence direction used in the
    paper); the result is a maximal matching of [g] whenever [mis] is
    an MIS of the line graph. *)
val matching_of_mis : Graph.t -> bool array -> bool array

(** Expected maximum degree of the line graph:
    [max over edges (deg u + deg v - 2)]. *)
val max_degree_bound : Graph.t -> int
