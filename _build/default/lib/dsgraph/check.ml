
let edge_forall g f =
  let ok = ref true in
  List.iteri (fun e (u, v) -> if not (f e u v) then ok := false) (Graph.edges g);
  !ok

let node_forall g f =
  let ok = ref true in
  for v = 0 to Graph.n g - 1 do
    if not (f v) then ok := false
  done;
  !ok

let is_independent_set g sel =
  Array.length sel = Graph.n g
  && edge_forall g (fun _ u v -> not (sel.(u) && sel.(v)))

let is_dominating_set g sel =
  Array.length sel = Graph.n g
  && node_forall g (fun v ->
         sel.(v)
         || begin
              let dominated = ref false in
              for p = 0 to Graph.degree g v - 1 do
                if sel.(Graph.neighbor g v p) then dominated := true
              done;
              !dominated
            end)

let is_mis g sel = is_independent_set g sel && is_dominating_set g sel

let induced_degree g sel v =
  let count = ref 0 in
  for p = 0 to Graph.degree g v - 1 do
    if sel.(Graph.neighbor g v p) then incr count
  done;
  !count

let is_k_degree_dominating_set g ~k sel =
  is_dominating_set g sel
  && node_forall g (fun v -> (not sel.(v)) || induced_degree g sel v <= k)

let is_k_outdegree_dominating_set g ~k sel o =
  is_dominating_set g sel
  && edge_forall g (fun e u v ->
         (not (sel.(u) && sel.(v))) || Orientation.oriented o e)
  && node_forall g (fun v ->
         (not sel.(v))
         ||
         let out = ref 0 in
         for p = 0 to Graph.degree g v - 1 do
           let u = Graph.neighbor g v p in
           let e = Graph.edge_id g v p in
           if sel.(u) && Orientation.oriented o e && (o.Orientation.towards.(e) <> v)
           then incr out
         done;
         !out <= k)

let is_proper_coloring ?bound g colors =
  Array.length colors = Graph.n g
  && (match bound with
     | None -> Array.for_all (fun c -> c >= 0) colors
     | Some b -> Array.for_all (fun c -> c >= 0 && c < b) colors)
  && edge_forall g (fun _ u v -> colors.(u) <> colors.(v))

let is_defective_coloring g ~k colors =
  Array.length colors = Graph.n g
  && node_forall g (fun v ->
         let same = ref 0 in
         for p = 0 to Graph.degree g v - 1 do
           if colors.(Graph.neighbor g v p) = colors.(v) then incr same
         done;
         !same <= k)

let is_arbdefective_coloring g ~k colors o =
  Array.length colors = Graph.n g
  && edge_forall g (fun e u v ->
         colors.(u) <> colors.(v) || Orientation.oriented o e)
  && node_forall g (fun v ->
         let out = ref 0 in
         for p = 0 to Graph.degree g v - 1 do
           let u = Graph.neighbor g v p in
           let e = Graph.edge_id g v p in
           if
             colors.(u) = colors.(v)
             && Orientation.oriented o e
             && o.Orientation.towards.(e) <> v
           then incr out
         done;
         !out <= k)

let is_b_matching g ~b sel =
  Array.length sel = Graph.m g
  && node_forall g (fun v ->
         let touched = ref 0 in
         for p = 0 to Graph.degree g v - 1 do
           if sel.(Graph.edge_id g v p) then incr touched
         done;
         !touched <= b)

let is_maximal_matching g sel =
  is_b_matching g ~b:1 sel
  && edge_forall g (fun e u v ->
         sel.(e)
         ||
         let touched w =
           let hit = ref false in
           for p = 0 to Graph.degree g w - 1 do
             if sel.(Graph.edge_id g w p) then hit := true
           done;
           !hit
         in
         touched u || touched v)
