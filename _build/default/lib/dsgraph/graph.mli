(** Undirected graphs with per-endpoint port numbers.

    This is the communication-graph substrate for the LOCAL /
    port-numbering simulator: every node numbers its incident edges
    with distinct ports [0 .. deg-1] (the paper uses 1-based ports; we
    use 0-based throughout the code).  Graphs are immutable. *)

type t

(** [of_edges ~n edges] builds a graph on nodes [0 .. n-1].  Ports are
    assigned in order of appearance of each endpoint in [edges].
    @raise Invalid_argument on self-loops, duplicate edges, or
    out-of-range endpoints. *)
val of_edges : n:int -> (int * int) list -> t

val n : t -> int

(** Number of edges. *)
val m : t -> int

val degree : t -> int -> int

val max_degree : t -> int

(** [neighbor g v p] — the node at the other end of [v]'s port [p]. *)
val neighbor : t -> int -> int -> int

(** [edge_id g v p] — global edge identifier of [v]'s port [p]. *)
val edge_id : t -> int -> int -> int

(** [back_port g v p] — the port number that [neighbor g v p] assigned
    to this same edge. *)
val back_port : t -> int -> int -> int

(** Endpoints of an edge id, as given at construction. *)
val endpoints : t -> int -> int * int

(** [other_endpoint g e v] — the endpoint of [e] that is not [v].
    @raise Invalid_argument if [v] is not an endpoint of [e]. *)
val other_endpoint : t -> int -> int -> int

(** [port_of g v u] — the port of [v] leading to neighbor [u].
    @raise Not_found if they are not adjacent. *)
val port_of : t -> int -> int -> int

val edges : t -> (int * int) list

val is_connected : t -> bool

val is_tree : t -> bool

(** [bfs g root] — distances from [root]; unreachable nodes get [-1]. *)
val bfs : t -> int -> int array

(** [bfs_parents g root] — [(dist, parent)] arrays; the root's parent
    is itself, unreachable nodes get parent [-1]. *)
val bfs_parents : t -> int -> int array * int array

(** Maximum distance from [root] to any reachable node. *)
val eccentricity : t -> int -> int

(** Diameter of a connected graph (two-pass BFS is exact only on
    trees; on general graphs this computes max over all sources). *)
val diameter : t -> int

(** Length of a shortest cycle; [None] for forests.  BFS from every
    node; O(n·m). *)
val girth : t -> int option

(** [permute_ports g perms] renumbers each node's ports:
    [perms.(v)] must be a permutation of [0 .. deg v - 1]; new port
    [perms.(v).(p)] refers to the edge formerly at port [p].
    @raise Invalid_argument if some [perms.(v)] is not a permutation. *)
val permute_ports : t -> int array array -> t

val pp : Format.formatter -> t -> unit

(** GraphViz rendering; optional per-edge colors become edge labels and
    a node predicate highlights a selection (e.g. a dominating set). *)
val to_dot :
  ?name:string -> ?edge_colors:int array -> ?highlight:(int -> bool) -> t -> string
