(* Generators for the tree families used throughout the benchmarks and
   tests.  The paper's lower bounds live on Δ-regular trees; finite
   analogues necessarily have leaves, so "Δ-regular tree" here means
   every internal node has degree exactly Δ (balanced trees) or degree
   at most Δ (random trees). *)

let path n =
  Graph.of_edges ~n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let star n =
  if n < 1 then invalid_arg "Tree_gen.star";
  Graph.of_edges ~n (List.init (n - 1) (fun i -> (0, i + 1)))

(* Balanced Δ-regular tree of the given depth: the root has Δ children,
   every other internal node Δ - 1 children, leaves at distance
   [depth] from the root. *)
let balanced ~delta ~depth =
  if delta < 2 then invalid_arg "Tree_gen.balanced: delta must be >= 2";
  if depth < 0 then invalid_arg "Tree_gen.balanced: negative depth";
  let edges = ref [] in
  let next = ref 1 in
  let rec grow node level =
    if level < depth then begin
      let children = if node = 0 then delta else delta - 1 in
      for _ = 1 to children do
        let child = !next in
        incr next;
        edges := (node, child) :: !edges;
        grow child (level + 1)
      done
    end
  in
  grow 0 0;
  Graph.of_edges ~n:!next (List.rev !edges)

(* Random tree with maximum degree [max_degree]: nodes join one at a
   time, attaching to a uniformly random node that still has a free
   slot. *)
let random ~n ~max_degree ~seed =
  if n < 1 then invalid_arg "Tree_gen.random";
  if max_degree < 2 && n > 2 then invalid_arg "Tree_gen.random: max_degree too small";
  let rng = Random.State.make [| seed |] in
  let deg = Array.make n 0 in
  let available = ref [ 0 ] in
  let edges = ref [] in
  for v = 1 to n - 1 do
    let avail = Array.of_list !available in
    let u = avail.(Random.State.int rng (Array.length avail)) in
    edges := (u, v) :: !edges;
    deg.(u) <- deg.(u) + 1;
    deg.(v) <- 1;
    available := List.filter (fun w -> deg.(w) < max_degree) !available;
    if deg.(v) < max_degree then available := v :: !available
  done;
  Graph.of_edges ~n (List.rev !edges)

(* Caterpillar: a spine path with [legs] leaves hanging off each spine
   node — a useful worst case for domination-style problems. *)
let caterpillar ~spine ~legs =
  if spine < 1 || legs < 0 then invalid_arg "Tree_gen.caterpillar";
  let n = spine * (1 + legs) in
  let edges = ref [] in
  for i = 0 to spine - 2 do
    edges := (i, i + 1) :: !edges
  done;
  let next = ref spine in
  for i = 0 to spine - 1 do
    for _ = 1 to legs do
      edges := (i, !next) :: !edges;
      incr next
    done
  done;
  Graph.of_edges ~n (List.rev !edges)

(* Random port permutation of a graph: an adversarial renumbering of
   every node's ports. *)
let shuffle_ports g ~seed =
  let rng = Random.State.make [| seed |] in
  let perms =
    Array.init (Graph.n g) (fun v ->
        let d = Graph.degree g v in
        let perm = Array.init d Fun.id in
        for i = d - 1 downto 1 do
          let j = Random.State.int rng (i + 1) in
          let tmp = perm.(i) in
          perm.(i) <- perm.(j);
          perm.(j) <- tmp
        done;
        perm)
  in
  Graph.permute_ports g perms

let of_pruefer seq =
  let n = Array.length seq + 2 in
  Array.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Tree_gen.of_pruefer: out of range")
    seq;
  (* Textbook decoding: repeatedly connect the smallest-index leaf to
     the next sequence element; a node becomes usable as a leaf once
     its remaining degree drops to 1. *)
  let degree = Array.make n 1 in
  Array.iter (fun v -> degree.(v) <- degree.(v) + 1) seq;
  let edges = ref [] in
  let ptr = ref 0 in
  let advance () =
    while degree.(!ptr) <> 1 do
      incr ptr
    done
  in
  advance ();
  let leaf = ref !ptr in
  Array.iter
    (fun s ->
      edges := (!leaf, s) :: !edges;
      degree.(!leaf) <- 0;
      degree.(s) <- degree.(s) - 1;
      if degree.(s) = 1 && s < !ptr then leaf := s
      else begin
        incr ptr;
        advance ();
        leaf := !ptr
      end)
    seq;
  (* Exactly two nodes of degree 1 remain, one of them [!leaf]. *)
  let other = ref (-1) in
  for v = 0 to n - 1 do
    if degree.(v) = 1 && v <> !leaf then other := v
  done;
  edges := (!leaf, !other) :: !edges;
  Graph.of_edges ~n (List.rev !edges)

let all_trees n f =
  if n < 2 || n > 9 then invalid_arg "Tree_gen.all_trees: need 2 <= n <= 9";
  if n = 2 then f (path 2)
  else begin
    let seq = Array.make (n - 2) 0 in
    let rec go i =
      if i = n - 2 then f (of_pruefer seq)
      else
        for v = 0 to n - 1 do
          seq.(i) <- v;
          go (i + 1)
        done
    in
    go 0
  end

let regular_bipartite ~delta ~half ~seed =
  if delta < 1 || half < delta then
    invalid_arg "Tree_gen.regular_bipartite: need 1 <= delta <= half";
  let rng = Random.State.make [| seed; 0xb1b |] in
  let shuffled () =
    let perm = Array.init half Fun.id in
    for i = half - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let tmp = perm.(i) in
      perm.(i) <- perm.(j);
      perm.(j) <- tmp
    done;
    perm
  in
  (* Left nodes are 0 .. half-1, right nodes half .. 2*half-1; matching
     c connects left i to right perm_c(i).  Resample a matching if it
     would duplicate an existing edge. *)
  let seen = Hashtbl.create (delta * half) in
  let edges = ref [] in
  let colors = ref [] in
  for c = 0 to delta - 1 do
    let rec attempt tries =
      if tries > 1000 then
        failwith "Tree_gen.regular_bipartite: could not avoid duplicates";
      let perm = shuffled () in
      let fresh =
        Array.for_all
          (fun i -> not (Hashtbl.mem seen (i, perm.(i))))
          (Array.init half Fun.id)
      in
      if fresh then perm else attempt (tries + 1)
    in
    let perm = attempt 0 in
    for i = 0 to half - 1 do
      Hashtbl.add seen (i, perm.(i)) ();
      edges := (i, half + perm.(i)) :: !edges;
      colors := c :: !colors
    done
  done;
  let g = Graph.of_edges ~n:(2 * half) (List.rev !edges) in
  (g, Array.of_list (List.rev !colors))
