let all_distances g = Array.init (Graph.n g) (fun v -> Graph.bfs g v)

let power g ~r =
  if r < 1 then invalid_arg "Power.power: r must be >= 1";
  let dist = all_distances g in
  let n = Graph.n g in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if dist.(u).(v) >= 1 && dist.(u).(v) <= r then edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n (List.rev !edges)
