type t = { graph : Graph.t; towards : int array }

let make g towards =
  if Array.length towards <> Graph.m g then
    invalid_arg "Orientation.make: wrong number of edges";
  Array.iteri
    (fun e head ->
      if head <> -1 then begin
        let u, v = Graph.endpoints g e in
        if head <> u && head <> v then
          invalid_arg "Orientation.make: head is not an endpoint"
      end)
    towards;
  { graph = g; towards }

let towards_root ?(root = 0) g =
  let dist = Graph.bfs g root in
  let towards =
    Array.init (Graph.m g) (fun e ->
        let u, v = Graph.endpoints g e in
        if dist.(u) < dist.(v) then u else v)
  in
  make g towards

let outdegree o v =
  let g = o.graph in
  let count = ref 0 in
  for p = 0 to Graph.degree g v - 1 do
    let e = Graph.edge_id g v p in
    if o.towards.(e) <> -1 && o.towards.(e) <> v then incr count
  done;
  !count

let max_outdegree o =
  let best = ref 0 in
  for v = 0 to Graph.n o.graph - 1 do
    best := max !best (outdegree o v)
  done;
  !best

let oriented o e = o.towards.(e) <> -1

let restrict o keep =
  let towards =
    Array.mapi
      (fun e head ->
        let u, v = Graph.endpoints o.graph e in
        if keep u && keep v then head else -1)
      o.towards
  in
  { o with towards }
