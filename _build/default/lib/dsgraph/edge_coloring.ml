let color_tree g =
  if not (Graph.is_tree g) then invalid_arg "Edge_coloring.color_tree: not a tree";
  let delta = Graph.max_degree g in
  let colors = Array.make (Graph.m g) (-1) in
  if Graph.n g = 0 then colors
  else begin
    let _, parent = Graph.bfs_parents g 0 in
    (* Process nodes in BFS order; each node colors the edges to its
       children with the colors not used by its parent edge, cycling
       through 0 .. delta - 1. *)
    let order =
      let dist = Graph.bfs g 0 in
      let nodes = List.init (Graph.n g) Fun.id in
      List.sort (fun a b -> compare dist.(a) dist.(b)) nodes
    in
    List.iter
      (fun v ->
        let parent_color =
          if parent.(v) = v then -1
          else colors.(Graph.edge_id g v (Graph.port_of g v parent.(v)))
        in
        let next = ref 0 in
        for p = 0 to Graph.degree g v - 1 do
          let u = Graph.neighbor g v p in
          if u <> parent.(v) then begin
            if !next = parent_color then incr next;
            colors.(Graph.edge_id g v p) <- !next mod delta;
            incr next
          end
        done)
      order;
    colors
  end

let is_proper ?bound g colors =
  if Array.length colors <> Graph.m g then false
  else
    let in_range =
      match bound with
      | None -> Array.for_all (fun c -> c >= 0) colors
      | Some b -> Array.for_all (fun c -> c >= 0 && c < b) colors
    in
    in_range
    && begin
         let clash = ref false in
         for v = 0 to Graph.n g - 1 do
           let seen = Hashtbl.create 8 in
           for p = 0 to Graph.degree g v - 1 do
             let c = colors.(Graph.edge_id g v p) in
             if Hashtbl.mem seen c then clash := true;
             Hashtbl.add seen c ()
           done
         done;
         not !clash
       end

let greedy g =
  let m = Graph.m g in
  let colors = Array.make m (-1) in
  for e = 0 to m - 1 do
    let u, v = Graph.endpoints g e in
    let used = Hashtbl.create 8 in
    let mark w =
      for p = 0 to Graph.degree g w - 1 do
        let c = colors.(Graph.edge_id g w p) in
        if c >= 0 then Hashtbl.replace used c ()
      done
    in
    mark u;
    mark v;
    let c = ref 0 in
    while Hashtbl.mem used !c do
      incr c
    done;
    colors.(e) <- !c
  done;
  colors

let mirrored_ports g colors =
  let ok = ref true in
  let perms =
    Array.init (Graph.n g) (fun v ->
        let d = Graph.degree g v in
        let perm = Array.make d (-1) in
        let seen = Array.make d false in
        for p = 0 to d - 1 do
          let c = colors.(Graph.edge_id g v p) in
          if c < 0 || c >= d || seen.(c) then ok := false
          else begin
            seen.(c) <- true;
            perm.(p) <- c
          end
        done;
        perm)
  in
  if !ok then Some (Graph.permute_ports g perms) else None
