(** Generators for tree instances.

    The paper's lower bounds are stated on Δ-regular trees; the finite
    instances generated here have every internal node of degree exactly
    Δ ({!balanced}) or at most a given bound ({!random}). *)

(** Path on [n] nodes ([n - 1] edges). *)
val path : int -> Graph.t

(** Star with center [0] and [n - 1] leaves. *)
val star : int -> Graph.t

(** Balanced Δ-regular tree: the root has Δ children, other internal
    nodes Δ - 1 children, all leaves at distance [depth].
    @raise Invalid_argument if [delta < 2] or [depth < 0]. *)
val balanced : delta:int -> depth:int -> Graph.t

(** Random tree on [n] nodes with maximum degree [max_degree],
    deterministic in [seed]. *)
val random : n:int -> max_degree:int -> seed:int -> Graph.t

(** Caterpillar: spine path of length [spine], [legs] leaves per spine
    node. *)
val caterpillar : spine:int -> legs:int -> Graph.t

(** Adversarially (uniformly) permute every node's port numbering. *)
val shuffle_ports : Graph.t -> seed:int -> Graph.t

(** [of_pruefer seq] — the labeled tree on [n = Array.length seq + 2]
    nodes with the given Prüfer sequence (entries in [0 .. n-1]).
    Every labeled tree corresponds to exactly one sequence, so
    enumerating sequences enumerates trees.
    @raise Invalid_argument on out-of-range entries. *)
val of_pruefer : int array -> Graph.t

(** [all_trees n f] — call [f] on every labeled tree with [n] nodes
    (n^(n-2) of them; keep [n ≤ 8]).
    @raise Invalid_argument if [n < 2] or [n > 9]. *)
val all_trees : int -> (Graph.t -> unit) -> unit

(** [regular_bipartite ~delta ~half ~seed] — a Δ-regular bipartite
    graph on [2·half] nodes built as the union of Δ random perfect
    matchings between the two sides, together with the proper
    Δ-edge-coloring given by the matching indices.  These are the
    locally-tree-like regular instances the lower-bound lift lives on
    (girth ≥ 4 by bipartiteness; check {!Graph.girth} if a larger girth
    is needed).  Matchings are resampled until no duplicate edge
    arises.
    @raise Invalid_argument if [half < delta] or [delta < 1]. *)
val regular_bipartite : delta:int -> half:int -> seed:int -> Graph.t * int array
