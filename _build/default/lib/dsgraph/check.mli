(** Verifiers for the graph structures studied in the paper.

    All verifiers are centralized and run in time linear in the graph;
    they are the ground truth the distributed algorithms and the
    lower-bound machinery are tested against. *)


(** No two adjacent nodes selected. *)
val is_independent_set : Graph.t -> bool array -> bool

(** Every unselected node has a selected neighbor. *)
val is_dominating_set : Graph.t -> bool array -> bool

(** Independent and maximal (equivalently: independent dominating). *)
val is_mis : Graph.t -> bool array -> bool

(** [is_k_degree_dominating_set g ~k s] — [s] dominates [g] and the
    subgraph induced by [s] has maximum degree at most [k] (Section 1
    of the paper; [k = 0] is exactly an MIS). *)
val is_k_degree_dominating_set : Graph.t -> k:int -> bool array -> bool

(** [is_k_outdegree_dominating_set g ~k s o] — [s] dominates [g], every
    edge of the induced subgraph [g\[s\]] is oriented by [o], and every
    node of [s] has outdegree at most [k] in [g\[s\]].  Orientations of
    edges outside [g\[s\]] are ignored. *)
val is_k_outdegree_dominating_set :
  Graph.t -> k:int -> bool array -> Orientation.t -> bool

(** Adjacent nodes have distinct colors; colors within [0 .. bound-1]
    if [bound] is given. *)
val is_proper_coloring : ?bound:int -> Graph.t -> int array -> bool

(** [is_defective_coloring g ~k colors] — every node has at most [k]
    neighbors of its own color. *)
val is_defective_coloring : Graph.t -> k:int -> int array -> bool

(** [is_arbdefective_coloring g ~k colors o] — every same-color edge is
    oriented and every node has at most [k] same-color out-neighbors. *)
val is_arbdefective_coloring :
  Graph.t -> k:int -> int array -> Orientation.t -> bool

(** [is_b_matching g ~b sel] — the selected edge set touches every node
    at most [b] times. *)
val is_b_matching : Graph.t -> b:int -> bool array -> bool

(** [is_maximal_matching g sel] — a 1-matching that cannot be extended:
    every unmatched edge has a matched endpoint. *)
val is_maximal_matching : Graph.t -> bool array -> bool
