type t = {
  n : int;
  adj : int array array;        (* adj.(v).(p) = neighbor across port p *)
  adj_edge : int array array;   (* adj_edge.(v).(p) = edge id *)
  back : int array array;       (* back.(v).(p) = port at the neighbor *)
  ends : (int * int) array;     (* endpoints per edge id *)
}

let of_edges ~n edge_list =
  let seen = Hashtbl.create (List.length edge_list) in
  List.iter
    (fun (u, v) ->
      if u = v then invalid_arg "Graph.of_edges: self-loop";
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Graph.of_edges: endpoint out of range";
      let key = (min u v, max u v) in
      if Hashtbl.mem seen key then invalid_arg "Graph.of_edges: duplicate edge";
      Hashtbl.add seen key ())
    edge_list;
  let deg = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edge_list;
  let adj = Array.init n (fun v -> Array.make deg.(v) (-1)) in
  let adj_edge = Array.init n (fun v -> Array.make deg.(v) (-1)) in
  let back = Array.init n (fun v -> Array.make deg.(v) (-1)) in
  let fill = Array.make n 0 in
  let ends = Array.of_list edge_list in
  Array.iteri
    (fun e (u, v) ->
      let pu = fill.(u) and pv = fill.(v) in
      fill.(u) <- pu + 1;
      fill.(v) <- pv + 1;
      adj.(u).(pu) <- v;
      adj.(v).(pv) <- u;
      adj_edge.(u).(pu) <- e;
      adj_edge.(v).(pv) <- e;
      back.(u).(pu) <- pv;
      back.(v).(pv) <- pu)
    ends;
  { n; adj; adj_edge; back; ends }

let n g = g.n

let m g = Array.length g.ends

let degree g v = Array.length g.adj.(v)

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    if degree g v > !best then best := degree g v
  done;
  !best

let neighbor g v p = g.adj.(v).(p)

let edge_id g v p = g.adj_edge.(v).(p)

let back_port g v p = g.back.(v).(p)

let endpoints g e = g.ends.(e)

let other_endpoint g e v =
  let u, w = g.ends.(e) in
  if v = u then w
  else if v = w then u
  else invalid_arg "Graph.other_endpoint: node not on edge"

let port_of g v u =
  let d = degree g v in
  let rec go p =
    if p >= d then raise Not_found
    else if g.adj.(v).(p) = u then p
    else go (p + 1)
  in
  go 0

let edges g = Array.to_list g.ends

let bfs g root =
  let dist = Array.make g.n (-1) in
  dist.(root) <- 0;
  let queue = Queue.create () in
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun u ->
        if dist.(u) < 0 then begin
          dist.(u) <- dist.(v) + 1;
          Queue.add u queue
        end)
      g.adj.(v)
  done;
  dist

let bfs_parents g root =
  let dist = Array.make g.n (-1) in
  let parent = Array.make g.n (-1) in
  dist.(root) <- 0;
  parent.(root) <- root;
  let queue = Queue.create () in
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun u ->
        if dist.(u) < 0 then begin
          dist.(u) <- dist.(v) + 1;
          parent.(u) <- v;
          Queue.add u queue
        end)
      g.adj.(v)
  done;
  (dist, parent)

let is_connected g =
  if g.n = 0 then true
  else Array.for_all (fun d -> d >= 0) (bfs g 0)

let is_tree g = m g = g.n - 1 && is_connected g

let eccentricity g root = Array.fold_left max 0 (bfs g root)

let diameter g =
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    best := max !best (eccentricity g v)
  done;
  !best

let girth g =
  (* BFS from each root; a non-tree edge at depths (d1, d2) closes a
     cycle through the root of length d1 + d2 + 1 when the BFS parents
     differ.  The minimum over all roots is exact. *)
  let best = ref max_int in
  for root = 0 to g.n - 1 do
    let dist = Array.make g.n (-1) in
    let parent_edge = Array.make g.n (-1) in
    dist.(root) <- 0;
    let queue = Queue.create () in
    Queue.add root queue;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      Array.iteri
        (fun p u ->
          let e = g.adj_edge.(v).(p) in
          if e <> parent_edge.(v) then begin
            if dist.(u) < 0 then begin
              dist.(u) <- dist.(v) + 1;
              parent_edge.(u) <- e;
              Queue.add u queue
            end
            else if dist.(u) >= dist.(v) then
              (* Cycle through this edge. *)
              best := min !best (dist.(u) + dist.(v) + 1)
          end)
        g.adj.(v)
    done
  done;
  if !best = max_int then None else Some !best

let permute_ports g perms =
  if Array.length perms <> g.n then invalid_arg "Graph.permute_ports: wrong length";
  Array.iteri
    (fun v perm ->
      let d = degree g v in
      if Array.length perm <> d then invalid_arg "Graph.permute_ports: bad arity";
      let seen = Array.make d false in
      Array.iter
        (fun p ->
          if p < 0 || p >= d || seen.(p) then
            invalid_arg "Graph.permute_ports: not a permutation";
          seen.(p) <- true)
        perm)
    perms;
  let remap field =
    Array.mapi
      (fun v row ->
        let d = Array.length row in
        let fresh = Array.make d (-1) in
        for p = 0 to d - 1 do
          fresh.(perms.(v).(p)) <- row.(p)
        done;
        fresh)
      field
  in
  let adj = remap g.adj and adj_edge = remap g.adj_edge and back = remap g.back in
  (* back ports must also be rewritten through the neighbor's permutation. *)
  let back =
    Array.mapi
      (fun v row ->
        Array.mapi (fun p old_back -> perms.(adj.(v).(p)).(old_back)) row)
      back
  in
  { g with adj; adj_edge; back }

let pp fmt g =
  Format.fprintf fmt "graph(n=%d, m=%d, edges=[%a])" g.n (m g)
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
       (fun fmt (u, v) -> Format.fprintf fmt "%d-%d" u v))
    (edges g)

let to_dot ?(name = "graph") ?edge_colors ?highlight g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph \"%s\" {\n" name);
  for v = 0 to g.n - 1 do
    let attrs =
      match highlight with
      | Some p when p v -> " [style=filled, fillcolor=lightblue]"
      | Some _ | None -> ""
    in
    Buffer.add_string buf (Printf.sprintf "  %d%s;\n" v attrs)
  done;
  Array.iteri
    (fun e (u, v) ->
      let label =
        match edge_colors with
        | Some colors -> Printf.sprintf " [label=\"%d\"]" colors.(e)
        | None -> ""
      in
      Buffer.add_string buf (Printf.sprintf "  %d -- %d%s;\n" u v label))
    g.ends;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
