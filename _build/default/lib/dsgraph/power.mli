(** Graph powers.

    [G^r] connects two distinct nodes iff their distance in [G] is at
    most [r].  An MIS of [G^r] is a (r+1, r)-ruling set of [G] — the
    relaxation of MIS the paper contrasts with its own (Section 1:
    (2, r)-ruling sets relax domination, k-outdegree dominating sets
    relax independence). *)

(** [power g ~r] — the r-th power (r ≥ 1).  Ports are in neighbor-id
    order. *)
val power : Graph.t -> r:int -> Graph.t

(** Pairwise distances from every node, by repeated BFS: distance
    matrix [d.(u).(v)], [-1] when unreachable.  O(n·m); fine for the
    simulator-scale instances used here. *)
val all_distances : Graph.t -> int array array
