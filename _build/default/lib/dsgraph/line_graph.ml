let of_graph g =
  let m = Graph.m g in
  let edges = ref [] in
  (* Two edges are adjacent iff they share an endpoint: enumerate, for
     every node, all pairs of incident edges. *)
  let seen = Hashtbl.create (4 * m) in
  for v = 0 to Graph.n g - 1 do
    let d = Graph.degree g v in
    for p = 0 to d - 1 do
      for q = p + 1 to d - 1 do
        let e1 = Graph.edge_id g v p and e2 = Graph.edge_id g v q in
        let key = (min e1 e2, max e1 e2) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          edges := key :: !edges
        end
      done
    done
  done;
  Graph.of_edges ~n:m (List.rev !edges)

let matching_of_mis g mis =
  if Array.length mis <> Graph.m g then
    invalid_arg "Line_graph.matching_of_mis: wrong length";
  Array.copy mis

let max_degree_bound g =
  List.fold_left
    (fun acc (u, v) -> max acc (Graph.degree g u + Graph.degree g v - 2))
    0 (Graph.edges g)
