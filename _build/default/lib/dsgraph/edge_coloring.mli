(** Proper edge colorings.

    The paper's key trick (Lemma 9) assumes a Δ-edge coloring given as
    input.  Trees always admit one with exactly [max_degree] colors
    (they are Class-1 graphs); {!color_tree} computes it by a rooted
    traversal. *)

(** [color_tree g] — a proper edge coloring of the tree [g] with colors
    [0 .. max_degree g - 1], indexed by edge id.
    @raise Invalid_argument if [g] is not a tree. *)
val color_tree : Graph.t -> int array

(** [is_proper g coloring] — no two edges sharing an endpoint have the
    same color, and colors are within [0 .. bound - 1] when [bound] is
    given. *)
val is_proper : ?bound:int -> Graph.t -> int array -> bool

(** [greedy g] — proper edge coloring of an arbitrary graph by greedy
    assignment in edge-id order; uses at most [2·max_degree - 1]
    colors.  Provided as a fallback for non-tree experiments. *)
val greedy : Graph.t -> int array

(** [mirrored_ports g coloring] — the adversarial port numbering of
    Lemma 12: every edge gets its color as the port number {e on both
    endpoints}.  Only possible when the incident colors of every node
    form the set [0 .. deg - 1]; returns [None] otherwise (e.g. for
    leaves whose single edge has a non-zero color). *)
val mirrored_ports : Graph.t -> int array -> Graph.t option
