lib/dsgraph/check.ml: Array Graph List Orientation
