lib/dsgraph/edge_coloring.ml: Array Fun Graph Hashtbl List
