lib/dsgraph/power.ml: Array Graph List
