lib/dsgraph/check.mli: Graph Orientation
