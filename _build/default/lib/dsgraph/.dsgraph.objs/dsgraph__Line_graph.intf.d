lib/dsgraph/line_graph.mli: Graph
