lib/dsgraph/power.mli: Graph
