lib/dsgraph/line_graph.ml: Array Graph Hashtbl List
