lib/dsgraph/tree_gen.mli: Graph
