lib/dsgraph/graph.ml: Array Buffer Format Hashtbl List Printf Queue
