lib/dsgraph/graph.mli: Format
