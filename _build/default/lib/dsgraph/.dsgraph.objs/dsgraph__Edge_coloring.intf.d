lib/dsgraph/edge_coloring.mli: Graph
