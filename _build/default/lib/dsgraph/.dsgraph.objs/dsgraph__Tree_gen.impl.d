lib/dsgraph/tree_gen.ml: Array Fun Graph Hashtbl List Random
