lib/dsgraph/orientation.ml: Array Graph
