lib/dsgraph/orientation.mli: Graph
