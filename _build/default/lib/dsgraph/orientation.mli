(** Edge orientations.

    An orientation assigns a direction to every edge; [towards.(e)] is
    the node the edge points {e to} (the head).  k-outdegree dominating
    sets orient only the edges inside the set; such partial
    orientations mark unoriented edges with [-1]. *)

type t = { graph : Graph.t; towards : int array }

(** [make g towards] validates every entry is an endpoint of its edge
    or [-1] (unoriented). *)
val make : Graph.t -> int array -> t

(** Orientation of a tree with every edge pointing towards the parent
    (the root is the global sink).  Root defaults to node 0. *)
val towards_root : ?root:int -> Graph.t -> t

(** Outdegree of [v]: oriented incident edges whose head is not [v]. *)
val outdegree : t -> int -> int

val max_outdegree : t -> int

(** Is edge [e] oriented? *)
val oriented : t -> int -> bool

(** [restrict o keep] — keep the orientation only on edges whose both
    endpoints satisfy [keep]; others become unoriented. *)
val restrict : t -> (int -> bool) -> t
