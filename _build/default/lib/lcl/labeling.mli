(** Concrete labelings of a finite graph, checked against a
    round-elimination problem.

    A labeling assigns an alphabet label to every (node, incident edge)
    pair — equivalently, to every port of every node.  Checking matches
    Section 2.2 of the paper: every node's labels must form an allowed
    node configuration and every edge's two endpoint labels an allowed
    edge configuration.

    The formalism is stated for Δ-regular (infinite) trees; finite
    instances have leaves, so nodes of degree [d < Δ] are treated
    according to [boundary]:
    - [`Extendable] (default): the node's [d] labels must extend to an
      allowed configuration (the standard convention for truncating an
      infinite-tree problem to a finite instance);
    - [`Exact]: only degree-Δ nodes are accepted;
    - [`Free]: nodes of degree [d < Δ] are unconstrained (the natural
      semantics when the instance is a finite truncation of an infinite
      Δ-regular tree and cut nodes sit on the boundary). *)

type t = {
  graph : Dsgraph.Graph.t;
  labels : int array array;  (** [labels.(v).(p)] — label at port p. *)
}

(** @raise Invalid_argument if the shape does not match the graph. *)
val make : Dsgraph.Graph.t -> int array array -> t

(** Label of edge [e] as seen from endpoint [v]. *)
val label_at : t -> v:int -> e:int -> int

type violation =
  | Node_violation of int  (** Node whose configuration is not allowed. *)
  | Edge_violation of int  (** Edge whose pair is not allowed. *)

(** All violations of [labeling] w.r.t. [problem]; empty = valid. *)
val violations :
  ?boundary:[ `Extendable | `Exact | `Free ] -> Relim.Problem.t -> t -> violation list

val is_valid :
  ?boundary:[ `Extendable | `Exact | `Free ] -> Relim.Problem.t -> t -> bool

val pp_violation : Format.formatter -> violation -> unit

(** Render the labeling with the problem's label names, one node per
    line: [v: X M M P]. *)
val pp : Relim.Problem.t -> Format.formatter -> t -> unit
