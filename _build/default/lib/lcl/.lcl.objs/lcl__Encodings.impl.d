lib/lcl/encodings.ml: Array Dsgraph Labeling List Printf Relim String
