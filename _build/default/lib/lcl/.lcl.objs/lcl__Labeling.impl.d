lib/lcl/labeling.ml: Array Dsgraph Format List Relim
