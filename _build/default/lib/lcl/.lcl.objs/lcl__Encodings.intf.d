lib/lcl/encodings.mli: Dsgraph Labeling Relim
