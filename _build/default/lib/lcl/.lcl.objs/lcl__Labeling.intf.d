lib/lcl/labeling.mli: Dsgraph Format Relim
