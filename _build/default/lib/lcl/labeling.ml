module Graph = Dsgraph.Graph

type t = { graph : Graph.t; labels : int array array }

let make g labels =
  if Array.length labels <> Graph.n g then
    invalid_arg "Labeling.make: wrong number of nodes";
  Array.iteri
    (fun v row ->
      if Array.length row <> Graph.degree g v then
        invalid_arg "Labeling.make: wrong number of ports")
    labels;
  { graph = g; labels }

let label_at t ~v ~e =
  let g = t.graph in
  let rec go p =
    if p >= Graph.degree g v then invalid_arg "Labeling.label_at: not incident"
    else if Graph.edge_id g v p = e then t.labels.(v).(p)
    else go (p + 1)
  in
  go 0

type violation = Node_violation of int | Edge_violation of int

let node_ok boundary (problem : Relim.Problem.t) t v =
  let config = Relim.Multiset.of_list (Array.to_list t.labels.(v)) in
  let delta = Relim.Problem.delta problem in
  let d = Graph.degree t.graph v in
  if d = delta then Relim.Constr.mem problem.node config
  else
    match boundary with
    | `Exact -> false
    | `Free -> true
    | `Extendable ->
        List.exists
          (fun line -> Relim.Line.contains_partial line config)
          (Relim.Constr.lines problem.node)

let edge_ok (problem : Relim.Problem.t) t e =
  let u, v = Graph.endpoints t.graph e in
  let pair =
    Relim.Multiset.of_list [ label_at t ~v:u ~e; label_at t ~v ~e ]
  in
  Relim.Constr.mem problem.edge pair

let violations ?(boundary = `Extendable) problem t =
  let acc = ref [] in
  for e = Graph.m t.graph - 1 downto 0 do
    if not (edge_ok problem t e) then acc := Edge_violation e :: !acc
  done;
  for v = Graph.n t.graph - 1 downto 0 do
    if not (node_ok boundary problem t v) then acc := Node_violation v :: !acc
  done;
  !acc

let is_valid ?boundary problem t = violations ?boundary problem t = []

let pp_violation fmt = function
  | Node_violation v -> Format.fprintf fmt "node %d" v
  | Edge_violation e -> Format.fprintf fmt "edge %d" e

let pp (problem : Relim.Problem.t) fmt t =
  Format.pp_open_vbox fmt 0;
  Array.iteri
    (fun v row ->
      Format.fprintf fmt "%4d:" v;
      Array.iter
        (fun l ->
          Format.fprintf fmt " %s" (Relim.Alphabet.name problem.alpha l))
        row;
      Format.pp_print_cut fmt ())
    t.labels;
  Format.pp_close_box fmt ()
