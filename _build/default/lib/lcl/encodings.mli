(** Standard problem encodings in the round-elimination formalism, and
    converters from combinatorial solutions to labelings.

    All encodings are parameterized by Δ (the node-constraint arity). *)

(** The paper's 3-label MIS encoding (Section 2.2):
    node [M^Δ | P O^(Δ-1)], edge [M\[PO\] | OO]. *)
val mis : delta:int -> Relim.Problem.t

(** Sinkless orientation: node [O \[IO\]^(Δ-1)], edge [OI]. *)
val sinkless_orientation : delta:int -> Relim.Problem.t

(** Maximal matching: node [M O^(Δ-1) | P^Δ], edge [MM | O\[OP\]]. *)
val maximal_matching : delta:int -> Relim.Problem.t

(** Proper c-coloring: labels [C0 … C(c-1)], node [Ci^Δ], edge [Ci Cj]
    for [i ≠ j]. *)
val coloring : delta:int -> colors:int -> Relim.Problem.t

(** Weak 2-coloring: every node must have at least one neighbor of the
    other color.  Node [Ci \[C0 C1\]^(Δ-1)-with-one-opposite] encoded as
    two lines. *)
val weak_2_coloring : delta:int -> Relim.Problem.t

(** [mis_labeling g mis] — turn an MIS (as a membership array) into a
    labeling of the paper's encoding: members label every port [M];
    non-members point [P] at their lowest-port MIS neighbor and label
    the rest [O].
    @raise Invalid_argument if [mis] is not an MIS of [g]. *)
val mis_labeling : Dsgraph.Graph.t -> bool array -> Labeling.t

(** [orientation_labeling g o] — labeling of {!sinkless_orientation}:
    each edge's tail reads [O], its head [I].
    @raise Invalid_argument if some edge is unoriented. *)
val orientation_labeling : Dsgraph.Graph.t -> Dsgraph.Orientation.t -> Labeling.t
