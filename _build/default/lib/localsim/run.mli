(** Executor for synchronous algorithms on a graph. *)

type 'out result = {
  outputs : 'out array;  (** Per node. *)
  rounds : int;
      (** Communication rounds executed until every node had decided;
          0 if all nodes decide from their initial view. *)
}

(** Identifier assignments for the LOCAL model. *)
type ids =
  | Anonymous  (** Port-numbering model: no identifiers. *)
  | Sequential  (** Node [v] gets id [v + 1]. *)
  | Shuffled of int  (** Random permutation of [1 .. n], seeded. *)

(** [run ~ids ?edge_colors ?seed ?max_rounds g ~inputs algo] executes
    [algo] on [g].

    - [inputs]: per-node inputs, indexed by the simulator's node index.
    - [edge_colors]: optional input edge coloring, indexed by edge id;
      exposed to each node as per-port colors.
    - [seed]: enables randomness; each node gets an independent stream
      derived from the seed (execution is reproducible).
    - [max_rounds]: defaults to [4 * n + 64].

    @raise Failure if some node has not decided after [max_rounds].
    @raise Invalid_argument if [inputs] has the wrong length. *)
val run :
  ?ids:ids ->
  ?edge_colors:int array ->
  ?seed:int ->
  ?max_rounds:int ->
  Dsgraph.Graph.t ->
  inputs:'input array ->
  ('input, 's, 'm, 'out) Algo.t ->
  'out result

(** Convenience inputs array for input-free algorithms. *)
val no_inputs : Dsgraph.Graph.t -> unit array

type 'out measured = {
  result : 'out result;
  max_message_bits : int;
      (** Largest single message, as measured by the caller's [bits]
          function — the quantity bounded by O(log n) in the CONGEST
          model. *)
  total_messages : int;
}

(** [run_measured ~bits ... g ~inputs algo] — like {!run}, also
    accounting message sizes so CONGEST compliance can be checked
    (the paper's lower bounds apply to CONGEST a fortiori; the upper
    bounds implemented here all use O(log n)-bit messages). *)
val run_measured :
  bits:('m -> int) ->
  ?ids:ids ->
  ?edge_colors:int array ->
  ?seed:int ->
  ?max_rounds:int ->
  Dsgraph.Graph.t ->
  inputs:'input array ->
  ('input, 's, 'm, 'out) Algo.t ->
  'out measured
