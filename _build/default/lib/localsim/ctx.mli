(** Per-node context visible to a distributed algorithm.

    Deliberately {e excludes} the simulator's internal node index: in
    the port-numbering model nodes are anonymous; in the LOCAL model
    they see only the (adversarially assigned) identifier in {!id}. *)

type t = {
  id : int option;
      (** Unique identifier from [1 .. poly n] in the LOCAL model;
          [None] in the port-numbering model. *)
  degree : int;  (** Number of incident edges = number of ports. *)
  delta : int;  (** Global maximum degree, known to all nodes. *)
  n : int;  (** Total number of nodes, known to all nodes. *)
  edge_colors : int array option;
      (** When an edge coloring is given as input: the color of the
          edge behind each port. *)
  rng : Random.State.t option;
      (** Private random bits (randomized algorithms only). *)
}

(** Color of the edge at [port].
    @raise Invalid_argument if no coloring was provided. *)
val edge_color : t -> int -> int

(** The node's identifier.
    @raise Invalid_argument in the port-numbering model. *)
val the_id : t -> int

(** The node's random state.
    @raise Invalid_argument for deterministic executions. *)
val the_rng : t -> Random.State.t
