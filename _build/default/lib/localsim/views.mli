(** Radius-T views in the port-numbering model.

    A T-round deterministic PN algorithm is exactly a function of the
    node's radius-T view: the tree of ports (and input edge colors)
    obtained by unfolding the graph for T hops.  Two nodes with equal
    views must produce equal outputs — the indistinguishability
    argument behind Lemma 12 (and round-elimination lower bounds in
    general).

    Views are represented as canonical strings, so equality of views is
    string equality. *)

(** [view ?edge_colors g ~radius v] — canonical encoding of the
    radius-[radius] view of [v]: degree, per-port edge color (when a
    coloring is given) and the recursive view behind each port
    (unfolding never turns back through the edge it arrived on — on
    trees this is the subtree; on graphs the universal-cover ball). *)
val view : ?edge_colors:int array -> Dsgraph.Graph.t -> radius:int -> int -> string

(** Partition the nodes into classes of equal radius-T views; classes
    are lists of node ids, sorted, largest class first. *)
val classes : ?edge_colors:int array -> Dsgraph.Graph.t -> radius:int -> int list list

(** Number of distinct views at the given radius. *)
val count_distinct : ?edge_colors:int array -> Dsgraph.Graph.t -> radius:int -> int
