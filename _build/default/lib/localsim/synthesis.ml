module Graph = Dsgraph.Graph

type instance = { graph : Graph.t; edge_colors : int array option }

type verdict = Algorithm of (string * int array) list | Impossible

(* All rows (one label per port) of length [d] allowed by the node
   constraint under the boundary semantics. *)
let candidate_rows boundary (problem : Relim.Problem.t) d =
  let sigma = Relim.Alphabet.size problem.alpha in
  let delta = Relim.Problem.delta problem in
  let rows = ref [] in
  let row = Array.make (max d 1) 0 in
  let rec go i =
    if i = d then begin
      let config = Relim.Multiset.of_list (Array.to_list (Array.sub row 0 d)) in
      let ok =
        if d = delta then Relim.Constr.mem problem.node config
        else
          match boundary with
          | `Exact -> false
          | `Free -> true
          | `Extendable ->
              List.exists
                (fun line -> Relim.Line.contains_partial line config)
                (Relim.Constr.lines problem.node)
      in
      if ok then rows := Array.sub row 0 d :: !rows
    end
    else
      for l = 0 to sigma - 1 do
        row.(i) <- l;
        go (i + 1)
      done
  in
  go 0;
  List.rev !rows

let search ?(boundary = `Extendable) ~radius (problem : Relim.Problem.t)
    instances =
  (* Group every (instance, node) by its view. *)
  let classes = Hashtbl.create 64 in
  let order = ref [] in
  List.iteri
    (fun inst_idx { graph; edge_colors } ->
      for v = 0 to Graph.n graph - 1 do
        let key = Views.view ?edge_colors graph ~radius v in
        (match Hashtbl.find_opt classes key with
        | Some members -> Hashtbl.replace classes key ((inst_idx, v) :: members)
        | None ->
            order := key :: !order;
            Hashtbl.replace classes key [ (inst_idx, v) ])
      done)
    instances;
  let class_keys = Array.of_list (List.rev !order) in
  let class_index = Hashtbl.create 64 in
  Array.iteri (fun i key -> Hashtbl.add class_index key i) class_keys;
  let nclasses = Array.length class_keys in
  let graphs = Array.of_list instances in
  (* Degree of each class (same for all members by view equality). *)
  let degree_of_class =
    Array.map
      (fun key ->
        match Hashtbl.find classes key with
        | (inst, v) :: _ -> Graph.degree graphs.(inst).graph v
        | [] -> assert false)
      class_keys
  in
  let candidates =
    Array.map (fun d -> candidate_rows boundary problem d) degree_of_class
  in
  (* Precompute, per class, the edges incident to its members, as
     (other-class, my-port, other-port). *)
  let node_class =
    Array.map
      (fun { graph; edge_colors } ->
        Array.init (Graph.n graph) (fun v ->
            Hashtbl.find class_index (Views.view ?edge_colors graph ~radius v)))
      graphs
  in
  let compat =
    let n = Relim.Alphabet.size problem.alpha in
    let matrix = Array.make_matrix n n false in
    List.iter
      (fun line ->
        Relim.Line.expand line (fun m ->
            match Relim.Multiset.to_list m with
            | [ a; b ] ->
                matrix.(a).(b) <- true;
                matrix.(b).(a) <- true
            | _ -> invalid_arg "Synthesis: edge arity"))
      (Relim.Constr.lines problem.edge);
    matrix
  in
  let assignment = Array.make nclasses [||] in
  let assigned = Array.make nclasses false in
  (* Check all edges whose endpoints' classes are both assigned and at
     least one endpoint is in class [c]. *)
  let edges_ok c =
    let ok = ref true in
    Array.iteri
      (fun inst_idx { graph; _ } ->
        List.iteri
          (fun e (u, v) ->
            let cu = node_class.(inst_idx).(u)
            and cv = node_class.(inst_idx).(v) in
            if (cu = c || cv = c) && assigned.(cu) && assigned.(cv) then begin
              let pu = Graph.port_of graph u v and pv = Graph.port_of graph v u in
              ignore e;
              let lu = assignment.(cu).(pu) and lv = assignment.(cv).(pv) in
              if not compat.(lu).(lv) then ok := false
            end)
          (Graph.edges graph))
      graphs;
    !ok
  in
  let rec go c =
    if c = nclasses then true
    else
      List.exists
        (fun row ->
          assignment.(c) <- row;
          assigned.(c) <- true;
          let ok = edges_ok c && go (c + 1) in
          if not ok then assigned.(c) <- false;
          ok)
        candidates.(c)
  in
  if go 0 then
    Algorithm
      (Array.to_list (Array.mapi (fun i key -> (key, assignment.(i))) class_keys))
  else Impossible
