type ('input, 'state, 'msg, 'out) t = {
  name : string;
  init : Ctx.t -> 'input -> 'state;
  send : Ctx.t -> 'state -> round:int -> 'msg array;
  recv : Ctx.t -> 'state -> round:int -> 'msg array -> 'state;
  output : 'state -> 'out option;
}

let map_output f algo =
  {
    name = algo.name;
    init = algo.init;
    send = algo.send;
    recv = algo.recv;
    output = (fun s -> Option.map f (algo.output s));
  }
