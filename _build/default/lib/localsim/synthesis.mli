(** Exhaustive synthesis of T-round deterministic PN algorithms on
    concrete instances.

    A deterministic T-round algorithm in the anonymous port-numbering
    model is exactly a function from radius-T views ({!Views}) to
    output rows (one label per port).  On a {e finite} set of instances
    the space of such functions is finite, so solvability by {e any}
    T-round algorithm is decidable by backtracking: assign each view
    class a row satisfying the node constraint, and check the edge
    constraint between assigned classes.

    This turns Lemma 12 into a machine-checked statement about concrete
    adversarial instances — and extends it to any small T: on a
    mirrored-port even cycle every node has the same view at {e every}
    radius, so a single class must satisfy all edges and the M/A/P
    self-incompatibility argument bites exactly as in the paper.

    Views do not model the edge-side port numbers (the "orientation"
    input that makes the PN model of Section 2.1 slightly stronger), so
    [Impossible] verdicts are meaningful for the model without that
    input — which is the model in which Lemma 12 is proved. *)

type instance = {
  graph : Dsgraph.Graph.t;
  edge_colors : int array option;  (** Input coloring, if any. *)
}

type verdict =
  | Algorithm of (string * int array) list
      (** A witness: one output row per distinct view. *)
  | Impossible

(** [search ~boundary ~radius problem instances] — does a single
    deterministic radius-[radius] algorithm produce a valid labeling on
    {e every} instance simultaneously?  [boundary] is the node-
    constraint semantics for nodes of degree < Δ (default
    [`Extendable]).

    The search enumerates every candidate row per view class
    (|Σ|^degree, filtered by the node constraint), so keep degrees and
    alphabets small. *)
val search :
  ?boundary:[ `Extendable | `Exact | `Free ] ->
  radius:int ->
  Relim.Problem.t ->
  instance list ->
  verdict
