lib/localsim/ctx.ml: Array Random
