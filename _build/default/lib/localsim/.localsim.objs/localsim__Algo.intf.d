lib/localsim/algo.mli: Ctx
