lib/localsim/synthesis.mli: Dsgraph Relim
