lib/localsim/run.mli: Algo Dsgraph
