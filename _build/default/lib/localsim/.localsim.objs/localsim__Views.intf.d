lib/localsim/views.mli: Dsgraph
