lib/localsim/run.ml: Algo Array Ctx Dsgraph Option Printf Random
