lib/localsim/views.ml: Array Buffer Dsgraph Hashtbl List Printf
