lib/localsim/algo.ml: Ctx Option
