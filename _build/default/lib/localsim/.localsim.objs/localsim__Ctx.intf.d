lib/localsim/ctx.mli: Random
