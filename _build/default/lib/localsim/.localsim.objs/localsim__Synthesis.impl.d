lib/localsim/synthesis.ml: Array Dsgraph Hashtbl List Relim Views
