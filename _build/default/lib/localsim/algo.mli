(** Synchronous message-passing algorithms.

    One round = every node sends one message per port, receives one
    message per port, updates its state.  A node terminates by
    reporting [Some output]; terminated nodes keep participating in
    message forwarding (their [send]/[recv] are still called), matching
    the standard LOCAL convention that the round complexity is the time
    until {e all} nodes have decided.

    ['input] is the per-node input (e.g. a color, a root flag, or [()]
    for input-free problems) — the same device the paper uses when it
    hands every node a Δ-edge coloring. *)

type ('input, 'state, 'msg, 'out) t = {
  name : string;
  init : Ctx.t -> 'input -> 'state;
  send : Ctx.t -> 'state -> round:int -> 'msg array;
      (** Must return exactly [degree] messages, indexed by port. *)
  recv : Ctx.t -> 'state -> round:int -> 'msg array -> 'state;
      (** [inbox] is indexed by port: the message the neighbor behind
          that port sent across the shared edge. *)
  output : 'state -> 'out option;
}

(** [map_output f algo] post-processes outputs. *)
val map_output : ('a -> 'b) -> ('i, 's, 'm, 'a) t -> ('i, 's, 'm, 'b) t
