type t = {
  id : int option;
  degree : int;
  delta : int;
  n : int;
  edge_colors : int array option;
  rng : Random.State.t option;
}

let edge_color ctx port =
  match ctx.edge_colors with
  | Some colors -> colors.(port)
  | None -> invalid_arg "Ctx.edge_color: no edge coloring in input"

let the_id ctx =
  match ctx.id with
  | Some id -> id
  | None -> invalid_arg "Ctx.the_id: anonymous (port-numbering) execution"

let the_rng ctx =
  match ctx.rng with
  | Some rng -> rng
  | None -> invalid_arg "Ctx.the_rng: deterministic execution"
