module Graph = Dsgraph.Graph

let view ?edge_colors g ~radius v =
  if radius < 0 then invalid_arg "Views.view: negative radius";
  let color v p =
    match edge_colors with
    | None -> -1
    | Some colors -> colors.(Graph.edge_id g v p)
  in
  (* [from_port = -1] at the root; deeper levels never unfold back
     through the arrival edge, and record the arrival back-port (which
     a message-passing algorithm observes). *)
  let buf = Buffer.create 256 in
  let rec go v from_port depth =
    let d = Graph.degree g v in
    Buffer.add_string buf (Printf.sprintf "(%d" d);
    if depth > 0 then
      for p = 0 to d - 1 do
        if p <> from_port then begin
          Buffer.add_string buf
            (Printf.sprintf "[%d;%d;%d" p (color v p) (Graph.back_port g v p));
          go (Graph.neighbor g v p) (Graph.back_port g v p) (depth - 1);
          Buffer.add_char buf ']'
        end
      done
    else if d > 0 then
      (* Radius exhausted: still record the port colors, which are
         visible with zero communication. *)
      for p = 0 to d - 1 do
        if p <> from_port then
          Buffer.add_string buf (Printf.sprintf "[%d;%d]" p (color v p))
      done;
    Buffer.add_char buf ')'
  in
  go v (-1) radius;
  Buffer.contents buf

let classes ?edge_colors g ~radius =
  let tbl = Hashtbl.create 64 in
  for v = Graph.n g - 1 downto 0 do
    let key = view ?edge_colors g ~radius v in
    let existing = try Hashtbl.find tbl key with Not_found -> [] in
    Hashtbl.replace tbl key (v :: existing)
  done;
  Hashtbl.fold (fun _ nodes acc -> List.sort compare nodes :: acc) tbl []
  |> List.sort (fun a b -> compare (List.length b) (List.length a))

let count_distinct ?edge_colors g ~radius =
  List.length (classes ?edge_colors g ~radius)
