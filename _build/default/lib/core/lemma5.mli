(** Lemma 5, executable: given a solution of the k-outdegree dominating
    set problem, Π_Δ(a, k) is solvable in one communication round, for
    every [a].

    The distributed algorithm (run on the {!Localsim} executor, in the
    anonymous port-numbering model): dominating-set members label their
    out-edges X, pad with further X up to exactly k, and label the rest
    M; in the single round every node learns which neighbors are
    members, and each non-member points P at one member and labels its
    other ports O. *)

type input = {
  in_set : bool;
  out_ports : bool array;  (** Member's oriented-outward ports. *)
}

type state

type message

(** [algo ~k] — output is the node's port labels, as indices into
    [Family.pi]'s alphabet. *)
val algo : k:int -> (input, state, message, int array) Localsim.Algo.t

(** [convert g ~k ~a selection orientation] — build the inputs from a
    verified k-outdegree dominating set, run the algorithm, and return
    the labeling together with the rounds used (always 1).
    The labeling is checked against Π_Δ(a, k) with [`Extendable]
    boundary semantics.
    @raise Invalid_argument if the selection is not a k-outdegree
    dominating set.
    @raise Failure if the produced labeling fails validation (a bug). *)
val convert :
  Dsgraph.Graph.t ->
  k:int ->
  a:int ->
  bool array ->
  Dsgraph.Orientation.t ->
  Lcl.Labeling.t * int
