(** The k-degree dominating set corollary (Section 1.1).

    "The same lower bound of course also holds for the k-degree
    dominating set problem as a k-degree dominating set can be
    transformed into a k-outdegree dominating set by orienting the
    edges in an arbitrary way."

    This module makes that one-line reduction executable: orient the
    induced edges arbitrarily (0 rounds — each edge's orientation is
    fixed by, say, endpoint indices, or locally by port/color) and feed
    the result to the Lemma 5 pipeline. *)

(** [orient_arbitrarily g sel] — orientation of exactly the induced
    edges of the selected set (head = the endpoint with the larger
    index; any choice works since the induced degree already bounds the
    outdegree).
    @raise Invalid_argument if [sel] has the wrong length. *)
val orient_arbitrarily : Dsgraph.Graph.t -> bool array -> Dsgraph.Orientation.t

(** [reduction_valid g ~k sel] — mechanical check of the corollary's
    claim on an instance: if [sel] is a k-degree dominating set then
    [orient_arbitrarily] makes it a k-outdegree dominating set. *)
val reduction_valid : Dsgraph.Graph.t -> k:int -> bool array -> bool

(** Full pipeline: k-degree dominating set (from {!Distalgo.Kods})
    → arbitrary orientation → Lemma 5 labeling of Π_Δ(a, k), validated.
    Returns the labeling and the selection-stage round count.
    @raise Failure on validation failure (a bug). *)
val pipeline : Dsgraph.Graph.t -> k:int -> Lcl.Labeling.t * int
