(** The paper's problem family Π_Δ(a, x) and its companions
    (Sections 3.1 and 3.3).

    Π_Δ(a, x) mixes an independent set with an orientation problem over
    the five labels {M, P, O, A, X}:

    - type-1 nodes ("in the set") output [M^(Δ-x) X^x];
    - type-3 nodes prove they own [a] incident edges: [A^a X^(Δ-a)];
    - type-2 nodes point at a dominator: [P O^(Δ-1)].

    Edge constraint: MM, AA, PP, PA, PO are forbidden; everything else
    is allowed.  Increasing [x] or decreasing [a] relaxes the problem
    (Lemma 11); Π_Δ(a, 0-outdegree...) relates to k-outdegree
    dominating sets through Lemma 5. *)

type params = { delta : int; a : int; x : int }

(** @raise Invalid_argument unless [0 ≤ a ≤ delta], [0 ≤ x ≤ delta],
    [delta ≥ 1]. *)
val check_params : params -> unit

(** Π_Δ(a, x). *)
val pi : params -> Relim.Problem.t

(** Π⁺_Δ(a, x) (Section 3.3): Π with the extra label C and node
    configuration [C^(Δ-x) X^x], the shape of [M]'s configuration
    shifted to [M^(Δ-x-1) X^(x+1)], and [A]'s to
    [A^(a-x-1) X^(Δ-a+x+1)].  Requires [x + 2 ≤ a]. *)
val pi_plus : params -> Relim.Problem.t

(** The claimed [R(Π_Δ(a,x))] of Lemma 6, over the renamed 8-label
    alphabet {X, M, O, U, A, B, P, Q}:
    node [\[MUBQ\]^(Δ-x) \[XMOUABPQ\]^x | \[PQ\]\[OUABPQ\]^(Δ-1) |
    \[ABPQ\]^a \[XMOUABPQ\]^(Δ-a)], edge [XQ | OB | AU | PM].
    Requires [x + 2 ≤ a ≤ delta]. *)
val r_pi_claimed : params -> Relim.Problem.t

(** Lemma 6's renaming: the denotation of each claimed label as a set
    of Π's labels, e.g. [U ↦ {M,O,X}], [Q ↦ {M,P,A,O,X}].  Pairs of
    (claimed-label name, Π-label names). *)
val r_pi_denotations : (string * string list) list

(** Π_rel of Lemma 8: the relaxation targets, stated over sets of
    {e claimed-R(Π)} labels.  Each node line is a list of
    (label-name set, multiplicity).  Requires [x + 2 ≤ a ≤ delta]. *)
val pi_rel_node_lines : params -> (string list * int) list list

(** The renaming of Lemma 8 between Π_rel's set-labels and Π⁺'s
    labels: [(MUBQ ↦ M); (XMOUABPQ ↦ X); (PQ ↦ P); (OUABPQ ↦ O);
    (ABPQ ↦ A); (UBPQ ↦ C)]. *)
val pi_rel_renaming : (string list * string) list

(** The label names of Π, in canonical order M, P, O, A, X. *)
val pi_label_names : string list
