module Graph = Dsgraph.Graph

let target_a ~a ~x = (a - (2 * x) - 1) / 2

let threshold ~a = (a - 1) / 2

let find alpha name = Relim.Alphabet.find alpha name

(* Classify a node of a Π⁺ labeling by the labels it uses.  In Π⁺ the
   configurations are {M,X}, {P,O}, {A,X}, {C,X}, so the presence of a
   non-X label identifies the configuration; all-X nodes are boundary
   truncations compatible with any of the M/A/C shapes and are left
   unchanged. *)
type node_kind = M_node | P_node | A_node | C_node | X_only

let classify row ~m ~p ~o ~a_lab ~c =
  let has l = Array.exists (fun x -> x = l) row in
  if has c then C_node
  else if has a_lab then A_node
  else if has m then M_node
  else if has p || has o then P_node
  else X_only

let convert ({ Family.delta = _; a; x } as params) g edge_colors labeling =
  if (2 * x) + 1 > a then invalid_arg "Lemma9.convert: requires 2x + 1 <= a";
  let plus = Family.pi_plus params in
  let m = find plus.alpha "M"
  and p = find plus.alpha "P"
  and o = find plus.alpha "O"
  and a_lab = find plus.alpha "A"
  and x_lab = find plus.alpha "X"
  and c = find plus.alpha "C" in
  let a' = target_a ~a ~x in
  let low_colors = threshold ~a in
  let target =
    Family.pi { params with Family.a = a'; x = x + 1 }
  in
  let m' = find target.alpha "M"
  and p' = find target.alpha "P"
  and o' = find target.alpha "O"
  and a'_lab = find target.alpha "A"
  and x'_lab = find target.alpha "X" in
  let translate l =
    if l = m then m'
    else if l = p then p'
    else if l = o then o'
    else if l = a_lab then a'_lab
    else if l = x_lab then x'_lab
    else invalid_arg "Lemma9.convert: residual C label"
  in
  if Array.length labeling.Lcl.Labeling.labels <> Graph.n g then
    invalid_arg "Lemma9.convert: labeling/graph mismatch";
  let labels =
    Array.init (Graph.n g) (fun v ->
        let row = labeling.Lcl.Labeling.labels.(v) in
        let d = Graph.degree g v in
        let color port = edge_colors.(Graph.edge_id g v port) in
        match classify row ~m ~p ~o ~a_lab ~c with
        | M_node | P_node | X_only -> Array.map translate row
        | A_node ->
            (* Drop the A's on low colors, then keep only the first a'
               surviving A's. *)
            let kept = ref 0 in
            Array.mapi
              (fun port l ->
                if l <> a_lab then translate l
                else if color port < low_colors then x'_lab
                else if !kept < a' then begin
                  incr kept;
                  a'_lab
                end
                else x'_lab)
              row
        | C_node ->
            (* Promote C's on low colors to A, up to a'; everything
               else becomes X. *)
            let promoted = ref 0 in
            Array.init d (fun port ->
                let l = row.(port) in
                if l = c && color port < low_colors && !promoted < a' then begin
                  incr promoted;
                  a'_lab
                end
                else if l = c then x'_lab
                else translate l))
  in
  Lcl.Labeling.make g labels

let pi_to_pi_plus ({ Family.delta = _; a; x } as params) labeling =
  if x + 2 > a then invalid_arg "Lemma9.pi_to_pi_plus: requires x + 2 <= a";
  let src = Family.pi params in
  let dst = Family.pi_plus params in
  let m = find src.alpha "M"
  and a_lab = find src.alpha "A"
  and x_lab = find src.alpha "X" in
  let tr l = find dst.alpha (Relim.Alphabet.name src.alpha l) in
  let g = labeling.Lcl.Labeling.graph in
  let labels =
    Array.init (Graph.n g) (fun v ->
        let row = labeling.Lcl.Labeling.labels.(v) in
        let has l = Array.exists (fun y -> y = l) row in
        if has m then begin
          (* Turn one M into X: M^(Δ-x) X^x ⟶ M^(Δ-x-1) X^(x+1). *)
          let done_ = ref false in
          Array.map
            (fun l ->
              if l = m && not !done_ then begin
                done_ := true;
                tr x_lab
              end
              else tr l)
            row
        end
        else if has a_lab then begin
          (* Keep only a - x - 1 of the A's. *)
          let kept = ref 0 in
          Array.map
            (fun l ->
              if l = a_lab then
                if !kept < a - x - 1 then begin
                  incr kept;
                  tr a_lab
                end
                else tr x_lab
              else tr l)
            row
        end
        else Array.map tr row)
  in
  Lcl.Labeling.make g labels
