(** The "doubly exponential growth" ablation (Section 1.2).

    The paper's key claim is that a naive application of automatic
    round elimination to MIS blows up doubly exponentially in the
    number of labels per step, whereas the Π_Δ(a,x) family keeps every
    problem in the lower-bound sequence at 5 labels.  This module
    measures the naive growth with the generic engine. *)

type size = {
  labels : int;
  node_lines : int;  (** Condensed configurations in 𝒩. *)
  edge_lines : int;
}

type trace = {
  label_counts : int list;
      (** Labels of Π, R̄(R(Π)), R̄(R(R̄(R(Π)))), …; the first entry
          is the input problem's label count. *)
  sizes : size list;
      (** Full description sizes along the same sequence. *)
  stopped : [ `Exhausted_budget | `Completed ];
      (** [`Exhausted_budget]: the next step exceeded [max_labels] or
          the expansion limit — evidence of the blow-up. *)
}

val size_of : Relim.Problem.t -> size

(** [naive_iteration ?steps ?max_labels ?expand_limit p] — iterate the
    full speedup step [R̄ ∘ R] on [p], recording label counts, until
    [steps] steps are done or the budget is exhausted. *)
val naive_iteration :
  ?steps:int -> ?max_labels:int -> ?expand_limit:float -> Relim.Problem.t -> trace

(** Label count of the R-half alone per step (the intermediate problem
    R(Π) is the one with ≤ 2^|Σ| labels). *)
val r_label_counts : ?steps:int -> ?max_labels:int -> Relim.Problem.t -> int list
