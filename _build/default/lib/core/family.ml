type params = { delta : int; a : int; x : int }

let check_params { delta; a; x } =
  if delta < 1 then invalid_arg "Family: delta must be >= 1";
  if a < 0 || a > delta then invalid_arg "Family: need 0 <= a <= delta";
  if x < 0 || x > delta then invalid_arg "Family: need 0 <= x <= delta"

let pi_label_names = [ "M"; "P"; "O"; "A"; "X" ]

let pi ({ delta; a; x } as params) =
  check_params params;
  let node =
    String.concat "\n"
      [
        Printf.sprintf "M^%d X^%d" (delta - x) x;
        Printf.sprintf "A^%d X^%d" a (delta - a);
        Printf.sprintf "P O^%d" (delta - 1);
      ]
  in
  let edge = "M [PAOX]\nO [MAOX]\nP [MX]\nA [MOX]\nX [MPAOX]" in
  Relim.Parse.problem
    ~name:(Printf.sprintf "Pi(Delta=%d,a=%d,x=%d)" delta a x)
    ~node ~edge

let require_lemma6_range ({ delta; a; x } as params) =
  check_params params;
  if not (x + 2 <= a && a <= delta) then
    invalid_arg "Family: requires x + 2 <= a <= delta"

let pi_plus ({ delta; a; x } as params) =
  require_lemma6_range params;
  let node =
    String.concat "\n"
      [
        Printf.sprintf "M^%d X^%d" (delta - x - 1) (x + 1);
        Printf.sprintf "P O^%d" (delta - 1);
        Printf.sprintf "A^%d X^%d" (a - x - 1) (delta - a + x + 1);
        Printf.sprintf "C^%d X^%d" (delta - x) x;
      ]
  in
  (* Edge constraint: the disjunction-method image of R(Π)'s edge
     constraint {XQ, OB, AU, PM} through Π_rel's set-labels, written in
     Π⁺'s names (see pi_rel_renaming).  Equivalently: Π's compatibility
     extended with C ~ {M, A, O, X}. *)
  let edge =
    String.concat "\n"
      [
        "X [MXPOAC]";
        "[XO] [MXOAC]";
        "[XOA] [MXOC]";
        "[XPOAC] [MX]";
      ]
  in
  Relim.Parse.problem
    ~name:(Printf.sprintf "Pi+(Delta=%d,a=%d,x=%d)" delta a x)
    ~node ~edge

let r_pi_claimed ({ delta; a; x } as params) =
  require_lemma6_range params;
  let node =
    String.concat "\n"
      [
        Printf.sprintf "[MUBQ]^%d [XMOUABPQ]^%d" (delta - x) x;
        Printf.sprintf "[PQ] [OUABPQ]^%d" (delta - 1);
        Printf.sprintf "[ABPQ]^%d [XMOUABPQ]^%d" a (delta - a);
      ]
  in
  let edge = "X Q\nO B\nA U\nP M" in
  Relim.Parse.problem
    ~name:(Printf.sprintf "R(Pi)(Delta=%d,a=%d,x=%d)" delta a x)
    ~node ~edge

let r_pi_denotations =
  [
    ("X", [ "X" ]);
    ("M", [ "M"; "X" ]);
    ("O", [ "O"; "X" ]);
    ("U", [ "M"; "O"; "X" ]);
    ("A", [ "A"; "O"; "X" ]);
    ("B", [ "M"; "A"; "O"; "X" ]);
    ("P", [ "P"; "A"; "O"; "X" ]);
    ("Q", [ "M"; "P"; "A"; "O"; "X" ]);
  ]

let set_mubq = [ "M"; "U"; "B"; "Q" ]

let set_all = [ "X"; "M"; "O"; "U"; "A"; "B"; "P"; "Q" ]

let set_pq = [ "P"; "Q" ]

let set_ouabpq = [ "O"; "U"; "A"; "B"; "P"; "Q" ]

let set_abpq = [ "A"; "B"; "P"; "Q" ]

let set_ubpq = [ "U"; "B"; "P"; "Q" ]

let pi_rel_node_lines ({ delta; a; x } as params) =
  require_lemma6_range params;
  [
    [ (set_mubq, delta - x - 1); (set_all, x + 1) ];
    [ (set_pq, 1); (set_ouabpq, delta - 1) ];
    [ (set_abpq, a - x - 1); (set_all, delta - a + x + 1) ];
    [ (set_ubpq, delta - x); (set_all, x) ];
  ]

let pi_rel_renaming =
  [
    (set_mubq, "M");
    (set_all, "X");
    (set_pq, "P");
    (set_ouabpq, "O");
    (set_abpq, "A");
    (set_ubpq, "C");
  ]
