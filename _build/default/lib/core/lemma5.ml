module Graph = Dsgraph.Graph

type input = { in_set : bool; out_ports : bool array }

type state = {
  input : input;
  member_ports : bool array option;  (** Learned in the single round. *)
}

type message = Member | Non_member

(* Label indices are resolved against a throwaway Π instance: the
   alphabet of Family.pi does not depend on (a, x). *)
let alpha = (Family.pi { delta = 2; a = 1; x = 0 }).Relim.Problem.alpha

let label name = Relim.Alphabet.find alpha name

let m_lab = label "M"

let p_lab = label "P"

let o_lab = label "O"

let x_lab = label "X"

let algo ~k : (input, state, message, int array) Localsim.Algo.t =
  {
    name = Printf.sprintf "lemma5(k=%d)" k;
    init = (fun _ctx input -> { input; member_ports = None });
    send =
      (fun ctx st ~round:_ ->
        Array.make ctx.Localsim.Ctx.degree
          (if st.input.in_set then Member else Non_member));
    recv =
      (fun _ctx st ~round:_ inbox ->
        { st with member_ports = Some (Array.map (fun m -> m = Member) inbox) });
    output =
      (fun st ->
        match st.member_ports with
        | None -> None
        | Some member_ports ->
            let d = Array.length member_ports in
            if st.input.in_set then begin
              (* X on out-ports, pad to min(k, d) X's, M elsewhere. *)
              let row = Array.make d m_lab in
              let xs = ref 0 in
              for port = 0 to d - 1 do
                if st.input.out_ports.(port) then begin
                  row.(port) <- x_lab;
                  incr xs
                end
              done;
              let port = ref 0 in
              while !xs < min k d && !port < d do
                if row.(!port) = m_lab then begin
                  row.(!port) <- x_lab;
                  incr xs
                end;
                incr port
              done;
              Some row
            end
            else begin
              let row = Array.make d o_lab in
              let pointed = ref false in
              for port = 0 to d - 1 do
                if (not !pointed) && member_ports.(port) then begin
                  row.(port) <- p_lab;
                  pointed := true
                end
              done;
              Some row
            end);
  }

let convert g ~k ~a selection orientation =
  if not (Dsgraph.Check.is_k_outdegree_dominating_set g ~k selection orientation)
  then invalid_arg "Lemma5.convert: not a k-outdegree dominating set";
  let inputs =
    Array.init (Graph.n g) (fun v ->
        let d = Graph.degree g v in
        let out_ports =
          Array.init d (fun port ->
              let e = Graph.edge_id g v port in
              let u = Graph.neighbor g v port in
              selection.(v) && selection.(u)
              && Dsgraph.Orientation.oriented orientation e
              && orientation.Dsgraph.Orientation.towards.(e) <> v)
        in
        { in_set = selection.(v); out_ports })
  in
  let result =
    Localsim.Run.run ~ids:Localsim.Run.Anonymous g ~inputs (algo ~k)
  in
  let labeling = Lcl.Labeling.make g result.Localsim.Run.outputs in
  let delta = Graph.max_degree g in
  let problem = Family.pi { delta; a; x = k } in
  if not (Lcl.Labeling.is_valid ~boundary:`Extendable problem labeling) then
    failwith "Lemma5.convert: labeling fails validation";
  (labeling, result.Localsim.Run.rounds)
