(** Lemmas 12 and 15 instantiated for the family: Π_Δ(a, x) is not
    0-round solvable in the (deterministic or randomized) port
    numbering model for [x ≤ Δ-1] and [a ≥ 1], even given a Δ-edge
    coloring.

    The generic deciders live in {!Relim.Zeroround}; this module adds
    the family-specific statements, including the explicit witnesses
    the paper names (M, A and P are each incompatible with themselves,
    one per allowed node configuration). *)

(** True iff the parameters satisfy Lemma 12's hypotheses
    ([x ≤ Δ-1], [a ≥ 1]) and the mirrored-port decider confirms
    unsolvability. *)
val deterministic_unsolvable : Family.params -> bool

(** Lemma 15's failure-probability lower bound: [Some (1/(3Δ)²)] when
    the hypotheses hold (and [None] otherwise — the problem would be
    0-round solvable).  Always at least [1/Δ⁸] for Δ ≥ 2, the bound
    Theorem 14 consumes. *)
val randomized_failure_bound : Family.params -> float option

(** The paper's per-configuration witnesses: every allowed node
    configuration of Π_Δ(a,x) contains a label that is not
    edge-compatible with itself.  Returns (configuration description,
    witness label name) pairs, verified against the problem. *)
val self_incompatible_witnesses : Family.params -> (string * string) list
