type report = {
  params : Family.params;
  computed : Relim.Problem.t;
  renaming : (string * string) list option;
  denotations_match : bool;
}

let denotation_set (alpha : Relim.Alphabet.t) names =
  List.fold_left
    (fun acc name -> Relim.Labelset.add (Relim.Alphabet.find alpha name) acc)
    Relim.Labelset.empty names

let verify params =
  let pi = Family.pi params in
  let claimed = Family.r_pi_claimed params in
  let { Relim.Rounde.problem = computed; denotations } = Relim.Rounde.r pi in
  match Relim.Iso.find_renaming computed claimed with
  | None -> { params; computed; renaming = None; denotations_match = false }
  | Some assoc ->
      let renaming =
        List.map
          (fun (lc, lcl) ->
            ( Relim.Alphabet.name computed.alpha lc,
              Relim.Alphabet.name claimed.alpha lcl ))
          assoc
      in
      let denotations_match =
        List.for_all
          (fun (lc, lcl) ->
            let claimed_name = Relim.Alphabet.name claimed.alpha lcl in
            match List.assoc_opt claimed_name Family.r_pi_denotations with
            | None -> false
            | Some names ->
                Relim.Labelset.equal denotations.(lc)
                  (denotation_set pi.alpha names))
          assoc
      in
      { params; computed; renaming = Some renaming; denotations_match }

let holds params =
  let report = verify params in
  report.renaming <> None && report.denotations_match
