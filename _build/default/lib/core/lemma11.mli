(** Lemma 11, executable: Π_Δ(a, x) is 0-round solvable given a
    solution of Π_Δ(a', x') whenever [a ≤ a'] and [x ≥ x'] — relabel
    surplus M's and A's with X, which is compatible with everything. *)

(** [relax ~from_ ~to_ labeling] — convert a valid Π_Δ(from_) labeling
    into a Π_Δ(to_) labeling.
    @raise Invalid_argument unless [to_.a ≤ from_.a], [to_.x ≥ from_.x]
    and the Δ's agree. *)
val relax :
  from_:Family.params -> to_:Family.params -> Lcl.Labeling.t -> Lcl.Labeling.t
