(** One-call verification of the whole reproduction at given
    parameters: the master report behind `roundelim verify-all` and the
    CI-style smoke check.

    [verify ~delta ~k] runs, for the chain at (Δ, k):
    - Lemma 6 (engine isomorphism + denotations) on every link,
    - Lemma 8 (symbolic certificate) on every link,
    - Lemmas 12/15 on every problem,
    - the Theorem 14 hypothesis bundle,
    and additionally exercises the {e constructive} side end-to-end on
    a generated tree: k-outdegree dominating set → Lemma 5 → one
    Lemma 9 + Lemma 11 conversion, all labelings validated.

    The [concrete_lemma8] flag adds the full R̄(R(Π)) computation at a
    small Δ (independent of [delta]) as a cross-check. *)

type report = {
  delta : int;
  k : int;
  chain_length : int;
  chain_verified : bool;
  theorem14_valid : bool;
  constructive_pipeline_ok : bool;
      (** Lemma 5 → Lemma 9 → Lemma 11 on a real tree. *)
  lemma8_concrete_ok : bool option;  (** When requested. *)
}

val verify : ?concrete_lemma8:bool -> delta:int -> k:int -> unit -> report

val all_ok : report -> bool

val pp : Format.formatter -> report -> unit
