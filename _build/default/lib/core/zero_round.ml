let in_lemma12_range { Family.delta; a; x } = x <= delta - 1 && a >= 1

let deterministic_unsolvable params =
  in_lemma12_range params
  && Relim.Zeroround.solvable_mirrored (Family.pi params) = None

let randomized_failure_bound params =
  if not (in_lemma12_range params) then None
  else Relim.Zeroround.randomized_failure_bound (Family.pi params)

let self_incompatible_witnesses params =
  let problem = Family.pi params in
  let self = Relim.Zeroround.self_compatible problem in
  let witness config_desc name =
    let l = Relim.Alphabet.find problem.alpha name in
    if Relim.Labelset.mem l self then
      failwith
        (Printf.sprintf
           "Zero_round: label %s is self-compatible, contradicting Lemma 12"
           name)
    else (config_desc, name)
  in
  [
    witness "M^(D-x) X^x" "M";
    witness "A^a X^(D-a)" "A";
    witness "P O^(D-1)" "P";
  ]
