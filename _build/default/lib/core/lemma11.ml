let relax ~from_ ~to_ labeling =
  let { Family.delta; a = a'; x = x' } = from_ in
  let { Family.delta = delta2; a; x } = to_ in
  if delta <> delta2 then invalid_arg "Lemma11.relax: different Delta";
  if not (a <= a' && x >= x') then
    invalid_arg "Lemma11.relax: requires a <= a' and x >= x'";
  let src = Family.pi from_ in
  let m = Relim.Alphabet.find src.alpha "M"
  and a_lab = Relim.Alphabet.find src.alpha "A"
  and x_lab = Relim.Alphabet.find src.alpha "X" in
  let g = labeling.Lcl.Labeling.graph in
  let labels =
    Array.map
      (fun row ->
        let d = Array.length row in
        let has l = Array.exists (fun y -> y = l) row in
        if has m then begin
          (* M^(Δ-x') X^x' ⟶ M^(Δ-x) X^x: convert x - x' more M's
             (fewer at the boundary). *)
          let want_x = min x d in
          let xs = ref 0 in
          Array.iter (fun l -> if l = x_lab then incr xs) row;
          Array.map
            (fun l ->
              if l = m && !xs < want_x then begin
                incr xs;
                x_lab
              end
              else l)
            row
        end
        else if has a_lab then begin
          (* A^a' X^(Δ-a') ⟶ A^a X^(Δ-a): keep only a A's. *)
          let kept = ref 0 in
          Array.map
            (fun l ->
              if l = a_lab then
                if !kept < a then begin
                  incr kept;
                  a_lab
                end
                else x_lab
              else l)
            row
        end
        else row)
      labeling.Lcl.Labeling.labels
  in
  Lcl.Labeling.make g labels
