module Graph = Dsgraph.Graph
module Orientation = Dsgraph.Orientation

let orient_arbitrarily g sel =
  if Array.length sel <> Graph.n g then
    invalid_arg "Kdeg.orient_arbitrarily: wrong length";
  Orientation.make g
    (Array.init (Graph.m g) (fun e ->
         let u, v = Graph.endpoints g e in
         if sel.(u) && sel.(v) then max u v else -1))

let reduction_valid g ~k sel =
  (not (Dsgraph.Check.is_k_degree_dominating_set g ~k sel))
  || Dsgraph.Check.is_k_outdegree_dominating_set g ~k sel
       (orient_arbitrarily g sel)

let pipeline g ~k =
  let r = Distalgo.Kods.via_defective g ~k in
  let sel = r.Distalgo.Kods.selected in
  if not (reduction_valid g ~k sel) then
    failwith "Kdeg.pipeline: corollary reduction failed";
  let orientation = orient_arbitrarily g sel in
  let delta = Graph.max_degree g in
  let labeling, _ = Lemma5.convert g ~k ~a:delta sel orientation in
  (labeling, r.Distalgo.Kods.rounds)
