(** The bound formulas of the paper and of the prior work it compares
    against (Sections 1.1 and 4), as executable functions.

    These are asymptotic statements; the functions evaluate the bound
    expressions with all hidden constants set to 1, which is the
    convention used to reproduce "who wins, by what factor, where the
    crossovers fall" in the benchmarks.  The genuinely computed part of
    this paper's bound — the port-numbering chain length t(Δ, k) — is
    in {!Sequence}. *)

val log2 : float -> float

(** Iterated logarithm: least [i] with [log₂^(i) x ≤ 1]. *)
val log_star : float -> int

(** {1 This paper} *)

(** Theorem 1, deterministic: [min(log Δ, log_Δ n)]. *)
val theorem1_det : delta:float -> n:float -> float

(** Theorem 1, randomized: [min(log Δ, log_Δ (log n))]. *)
val theorem1_rand : delta:float -> n:float -> float

(** Corollary 2, deterministic: [min(log Δ, √(log n))]. *)
val corollary2_det : delta:float -> n:float -> float

(** Corollary 2, randomized: [min(log Δ, √(log log n))]. *)
val corollary2_rand : delta:float -> n:float -> float

(** The Δ that maximizes Corollary 2's deterministic bound:
    [2^√(log n)]. *)
val best_delta_det : n:float -> float

val best_delta_rand : n:float -> float

(** Largest [k] for which Theorem 1 applies, [Δ^ε] with the paper's
    [ε]; exposed with [ε] as a parameter (default [1/4], a value for
    which the chain construction demonstrably works — see
    {!Sequence}). *)
val max_k : ?epsilon:float -> delta:float -> unit -> float

(** {1 Prior work} *)

(** MIS on trees, Balliu–Brandt–Olivetti FOCS'20 [5], deterministic:
    [min(log Δ / log log Δ, √(log n / log log n))]. *)
val bbo20_det : delta:float -> n:float -> float

(** [5], randomized:
    [min(log Δ / log log Δ, √(log log n / log log log n))]. *)
val bbo20_rand : delta:float -> n:float -> float

(** General graphs / b-matching lower bound of [4, 15], deterministic:
    [min(Δ/b, log n / log log n)] (for MIS set [b = 1]). *)
val bbhors_det : delta:float -> b:float -> n:float -> float

(** [4, 15] randomized: [min(Δ/b, log log n / log log log n)]. *)
val bbhors_rand : delta:float -> b:float -> n:float -> float

(** {1 Upper bounds (Section 1.1)} *)

(** MIS in [O(Δ + log* n)] [Barenboim–Elkin–Kuhn '14]. *)
val upper_mis : delta:float -> n:float -> float

(** k-outdegree dominating sets in [O(Δ/k + log* n)]. *)
val upper_kods : delta:float -> k:float -> n:float -> float

(** k-degree dominating sets in [O(min(Δ, (Δ/k)²) + log* n)]. *)
val upper_kdeg : delta:float -> k:float -> n:float -> float

(** Deterministic MIS on trees in [O(log n / log log n)]
    [Barenboim–Elkin '10]. *)
val upper_mis_trees_det : n:float -> float

(** Randomized MIS on trees in [O(√(log n))] [Ghaffari '16]. *)
val upper_mis_trees_rand : n:float -> float
