(** Theorem 14 (the lift from the port-numbering model to LOCAL) and
    Theorem 1, assembled as an explicit certificate.

    Theorem 14 [4, 5, 15] takes a sequence Π₀ → … → Π_t where each
    Π_{i+1} is 0-round solvable given a solution of [R̄(R(Π_i))], with
    (i) a label budget of O(Δ²) per problem and (ii) a randomized
    0-round failure probability of at least 1/Δ⁸ for every problem of
    the sequence under the mirrored-port adversary — and concludes that
    Π₀ requires Ω(min{t, log_Δ n}) deterministic and
    Ω(min{t, log_Δ log n}) randomized rounds in the LOCAL model.

    {!certify} checks every hypothesis mechanically for a Lemma 13
    chain and packages the result; the lift theorem itself is cited
    machinery (in the paper as here — see DESIGN.md). *)

type certificate = {
  chain : Sequence.chain;
  t : int;  (** Chain length = PN-model bound for Π₀. *)
  links_verified : bool;
      (** Every link: Lemma 6 + Lemma 8 certificates + side
          conditions (the "0-round solvable from R̄(R(Π_i))"
          hypothesis). *)
  label_budget_ok : bool;  (** Every problem uses ≤ O(Δ²) labels (5). *)
  failure_bounds_ok : bool;
      (** Lemma 15 bound ≥ 1/Δ⁸ for every problem of the chain. *)
}

(** All hypotheses hold. *)
val valid : certificate -> bool

val certify : delta:int -> k:int -> certificate

(** The Theorem 1 conclusions for a valid certificate, evaluated at a
    given [n] (constants 1): deterministic and randomized lower
    bounds [min(t, log_Δ n)] and [min(t, log_Δ log n)]. *)
val conclusion_det : certificate -> n:float -> float

val conclusion_rand : certificate -> n:float -> float

val pp : Format.formatter -> certificate -> unit
