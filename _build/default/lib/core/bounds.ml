let log2 x = log x /. log 2.

let log_star x =
  let rec go x i = if x <= 1. then i else go (log2 x) (i + 1) in
  go x 0

let theorem1_det ~delta ~n = Float.min (log2 delta) (log n /. log delta)

let theorem1_rand ~delta ~n =
  Float.min (log2 delta) (log (Float.max 2. (log n)) /. log delta)

let corollary2_det ~delta ~n = Float.min (log2 delta) (sqrt (log2 n))

let corollary2_rand ~delta ~n =
  Float.min (log2 delta) (sqrt (log2 (Float.max 2. (log2 n))))

let best_delta_det ~n = Float.pow 2. (sqrt (log2 n))

let best_delta_rand ~n = Float.pow 2. (sqrt (log2 (Float.max 2. (log2 n))))

let max_k ?(epsilon = 0.25) ~delta () = Float.pow delta epsilon

let loglog x = log2 (Float.max 2. (log2 x))

let logloglog x = log2 (Float.max 2. (loglog x))

let bbo20_det ~delta ~n =
  Float.min
    (log2 delta /. Float.max 1. (loglog delta))
    (sqrt (log2 n /. Float.max 1. (loglog n)))

let bbo20_rand ~delta ~n =
  Float.min
    (log2 delta /. Float.max 1. (loglog delta))
    (sqrt (loglog n /. Float.max 1. (logloglog n)))

let bbhors_det ~delta ~b ~n =
  Float.min (delta /. b) (log2 n /. Float.max 1. (loglog n))

let bbhors_rand ~delta ~b ~n =
  Float.min (delta /. b) (loglog n /. Float.max 1. (logloglog n))

let upper_mis ~delta ~n = delta +. float_of_int (log_star n)

let upper_kods ~delta ~k ~n =
  (delta /. Float.max 1. k) +. float_of_int (log_star n)

let upper_kdeg ~delta ~k ~n =
  let ratio = delta /. Float.max 1. k in
  Float.min delta (ratio *. ratio) +. float_of_int (log_star n)

let upper_mis_trees_det ~n = log2 n /. Float.max 1. (loglog n)

let upper_mis_trees_rand ~n = sqrt (log2 n)
