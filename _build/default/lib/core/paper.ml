module Graph = Dsgraph.Graph

type report = {
  delta : int;
  k : int;
  chain_length : int;
  chain_verified : bool;
  theorem14_valid : bool;
  constructive_pipeline_ok : bool;
  lemma8_concrete_ok : bool option;
}

let constructive_check ~delta ~k =
  (* A tree wide enough to have interior nodes of degree delta, small
     enough to stay fast: depth 2. *)
  let delta = max delta 3 in
  let delta = min delta 32 in
  let g = Dsgraph.Tree_gen.balanced ~delta ~depth:2 in
  let d = Graph.max_degree g in
  let k = min k (d - 2) in
  let k = max k 0 in
  if 2 * k + 1 > d then true (* Lemma 9 range empty; nothing to exercise *)
  else begin
    let r = Distalgo.Kods.via_arbdefective g ~k in
    let labeling, rounds =
      Lemma5.convert g ~k ~a:d r.Distalgo.Kods.selected
        r.Distalgo.Kods.orientation
    in
    let p0 = { Family.delta = d; a = d; x = k } in
    let colors = Dsgraph.Edge_coloring.color_tree g in
    let plus = Lemma9.pi_to_pi_plus p0 labeling in
    let ok_plus =
      Lcl.Labeling.is_valid ~boundary:`Free (Family.pi_plus p0) plus
    in
    let converted = Lemma9.convert p0 g colors plus in
    let mid = { p0 with Family.a = Lemma9.target_a ~a:d ~x:k; x = k + 1 } in
    let ok_mid =
      Lcl.Labeling.is_valid ~boundary:`Free (Family.pi mid) converted
    in
    let ok_relax =
      if mid.Family.a >= 1 then begin
        let target = { mid with Family.a = max 1 (mid.Family.a / 2) } in
        let relaxed = Lemma11.relax ~from_:mid ~to_:target converted in
        Lcl.Labeling.is_valid ~boundary:`Free (Family.pi target) relaxed
      end
      else true
    in
    rounds = 1 && ok_plus && ok_mid && ok_relax
  end

let verify ?(concrete_lemma8 = false) ~delta ~k () =
  let chain = Sequence.build ~delta ~x0:k in
  let check = Sequence.verify chain in
  let cert = Theorem14.certify ~delta ~k in
  {
    delta;
    k;
    chain_length = Sequence.length chain;
    chain_verified = Sequence.chain_ok check;
    theorem14_valid = Theorem14.valid cert;
    constructive_pipeline_ok = constructive_check ~delta ~k;
    lemma8_concrete_ok =
      (if concrete_lemma8 then
         Some
           (let r = Lemma8.verify_concrete { Family.delta = 4; a = 3; x = 1 } in
            r.Lemma8.all_relax && r.Lemma8.pi_rel_is_pi_plus_c)
       else None);
  }

let all_ok r =
  r.chain_verified && r.theorem14_valid && r.constructive_pipeline_ok
  && match r.lemma8_concrete_ok with None -> true | Some ok -> ok

let pp fmt r =
  Format.fprintf fmt
    "@[<v>paper verification at (Delta = %d, k = %d):@,\
     chain length: %d@,\
     chain mechanically verified: %b@,\
     Theorem 14 certificate: %b@,\
     constructive pipeline (Lemmas 5, 9, 11 on a real tree): %b%a@,\
     => all OK: %b@]"
    r.delta r.k r.chain_length r.chain_verified r.theorem14_valid
    r.constructive_pipeline_ok
    (fun fmt -> function
      | None -> ()
      | Some ok ->
          Format.fprintf fmt "@,full Rbar(R(Pi)) cross-check: %b" ok)
    r.lemma8_concrete_ok (all_ok r)
