(** Lemma 13, mechanized: the lower-bound sequence
    Π_i = Π_Δ(⌊Δ/2^(3i)⌋, x₀+i).

    Each link Π_i → Π_{i+1} combines Corollary 10 (one round-
    elimination step, via Lemmas 6, 8 and 9) with Lemma 11 (monotone
    relaxation to the canonical parameters).  The chain keeps going as
    long as the side conditions hold, and its last problem is not
    0-round solvable (Lemma 12), so the chain length is a lower bound
    on the round complexity of Π_0 — and hence, via Lemma 5, of the
    x₀-outdegree dominating set problem — in the deterministic port
    numbering model. *)

type step = { index : int; a : int; x : int }

type chain = {
  delta : int;
  x0 : int;
  steps : step list;  (** step 0 first; at least one element. *)
}

(** The canonical parameters at index [i]: [a = Δ/2^(3i)], [x = x₀+i]. *)
val params_at : delta:int -> x0:int -> int -> step

(** Build the longest valid chain: every consecutive pair satisfies the
    side conditions of Corollary 10 ([2x+1 ≤ a], [x+2 ≤ a ≤ Δ]) and of
    the Lemma 11 relaxation ([⌊(a-2x-1)/2⌋ ≥ a_next]), and the last
    step satisfies Lemma 12's hypotheses ([x ≤ Δ-1], [a ≥ 1]). *)
val build : delta:int -> x0:int -> chain

(** Number of speedup steps = [List.length steps - 1]: the proven
    port-numbering lower bound (in rounds) for Π_Δ(Δ, x₀), hence for
    x₀-outdegree dominating sets (plus one round, by Lemma 5). *)
val length : chain -> int

type link_check = {
  step_index : int;
  cor10_side_conditions : bool;  (** [2x+1 ≤ a] and [x+2 ≤ a ≤ Δ]. *)
  lemma6_ok : bool;  (** Engine-verified shape of R(Π_i). *)
  lemma8_ok : bool;  (** Symbolic Lemma 8 certificate. *)
  lemma11_ok : bool;  (** [⌊(a-2x-1)/2⌋ ≥ a_{i+1}] and [x+1 ≤ x_{i+1}]. *)
}

type chain_check = {
  chain : chain;
  links : link_check list;
  last_not_zero_round : bool;  (** Lemma 12 on the final problem. *)
  last_failure_bound_ok : bool;
      (** Lemma 15 bound ≥ 1/Δ⁸ on {e every} problem of the chain (the
          hypothesis of Theorem 14). *)
}

(** Mechanically verify every link.  [deep_lemma6] additionally runs
    the engine-based Lemma 6 check per link (cheap but not free);
    otherwise links reuse one check per distinct parameter pair. *)
val verify : ?deep_lemma6:bool -> chain -> chain_check

val chain_ok : chain_check -> bool

(** Convenience: the proven deterministic PN-model lower bound for
    k-outdegree dominating sets at maximum degree [delta].  With
    [t = length (build ~delta ~x0:k)]: every problem Π_0 … Π_t of the
    chain is 0-round unsolvable (Lemma 12) and each link loses exactly
    one round, so Π_0 needs ≥ t+1 rounds; Lemma 5 solves Π_0 from a
    k-outdegree dominating set in one round, hence the dominating set
    problem needs ≥ t rounds. *)
val kods_pn_lower_bound : delta:int -> k:int -> int

val pp_chain : Format.formatter -> chain -> unit

(** {1 The best chain the family can give (Section 5 context)}

    Lemma 13 uses the canonical parameters a_i = Δ/2^(3i) for a clean
    proof; the family actually supports the exact recurrence
    a_{i+1} = ⌊(a_i - 2x_i - 1)/2⌋, x_{i+1} = x_i + 1 (Corollary 10
    with no Lemma-11 slack).  [optimal ~delta ~x0] follows that
    recurrence as long as the side conditions hold, yielding chains of
    length ≈ log₂ Δ — a 3.3× longer chain than the canonical one, but
    still Θ(log Δ): within this 5-label family the Ω(Δ) bound
    conjectured in Section 5 is out of reach, which quantifies why the
    open problem needs new ideas. *)
val optimal : delta:int -> x0:int -> chain

(** [length (optimal ~delta ~x0)].  An [optimal] chain can be verified
    link-by-link with the same {!verify} (it only reads the step
    parameters). *)
val optimal_length : delta:int -> x0:int -> int
