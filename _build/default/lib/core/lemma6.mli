(** Lemma 6, mechanized: for [x + 2 ≤ a ≤ Δ], the problem
    [R(Π_Δ(a,x))] equals — after the paper's renaming — the 8-label
    problem {!Family.r_pi_claimed}.

    The verifier computes [R(Π_Δ(a,x))] with the generic engine
    ({!Relim.Rounde.r}, which is cheap for any Δ since it never expands
    the node constraint), searches for a label bijection onto the
    claimed problem, and additionally checks that the bijection carries
    the computed Galois denotations onto the paper's renaming table
    (e.g. the computed label denoting [{M,O,X}] must map to the claimed
    label [U]). *)

type report = {
  params : Family.params;
  computed : Relim.Problem.t;  (** The engine's [R(Π_Δ(a,x))]. *)
  renaming : (string * string) list option;
      (** Computed-label name ↦ claimed-label name, when found. *)
  denotations_match : bool;
      (** The bijection agrees with {!Family.r_pi_denotations}. *)
}

val verify : Family.params -> report

(** Both the isomorphism and the denotation table check out. *)
val holds : Family.params -> bool
