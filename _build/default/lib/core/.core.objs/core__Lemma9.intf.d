lib/core/lemma9.mli: Dsgraph Family Lcl
