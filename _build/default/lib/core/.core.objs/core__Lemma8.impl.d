lib/core/lemma8.ml: Array Family List Printf Relim
