lib/core/kdeg.mli: Dsgraph Lcl
