lib/core/family.ml: Printf Relim String
