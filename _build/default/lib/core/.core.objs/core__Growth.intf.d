lib/core/growth.mli: Relim
