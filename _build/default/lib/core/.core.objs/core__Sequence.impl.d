lib/core/sequence.ml: Family Format Lemma6 Lemma8 List Zero_round
