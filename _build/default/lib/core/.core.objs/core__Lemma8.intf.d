lib/core/lemma8.mli: Family Relim
