lib/core/lemma11.mli: Family Lcl
