lib/core/family.mli: Relim
