lib/core/growth.ml: List Relim
