lib/core/paper.mli: Format
