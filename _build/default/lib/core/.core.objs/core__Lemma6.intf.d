lib/core/lemma6.mli: Family Relim
