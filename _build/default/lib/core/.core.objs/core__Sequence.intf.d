lib/core/sequence.mli: Format
