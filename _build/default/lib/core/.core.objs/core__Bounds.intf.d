lib/core/bounds.mli:
