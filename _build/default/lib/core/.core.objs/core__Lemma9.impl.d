lib/core/lemma9.ml: Array Dsgraph Family Lcl Relim
