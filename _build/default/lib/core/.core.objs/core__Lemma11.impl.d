lib/core/lemma11.ml: Array Family Lcl Relim
