lib/core/lemma5.mli: Dsgraph Lcl Localsim
