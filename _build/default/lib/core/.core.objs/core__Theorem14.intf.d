lib/core/theorem14.mli: Format Sequence
