lib/core/kdeg.ml: Array Distalgo Dsgraph Lemma5
