lib/core/lemma5.ml: Array Dsgraph Family Lcl Localsim Printf Relim
