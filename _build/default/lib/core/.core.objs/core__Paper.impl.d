lib/core/paper.ml: Distalgo Dsgraph Family Format Lcl Lemma11 Lemma5 Lemma8 Lemma9 Sequence Theorem14
