lib/core/zero_round.mli: Family
