lib/core/lemma6.ml: Array Family List Relim
