lib/core/theorem14.ml: Family Float Format List Relim Sequence
