lib/core/zero_round.ml: Family Printf Relim
