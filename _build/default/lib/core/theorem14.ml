type certificate = {
  chain : Sequence.chain;
  t : int;
  links_verified : bool;
  label_budget_ok : bool;
  failure_bounds_ok : bool;
}

let valid c = c.links_verified && c.label_budget_ok && c.failure_bounds_ok

let certify ~delta ~k =
  let chain = Sequence.build ~delta ~x0:k in
  let check = Sequence.verify chain in
  let links_verified =
    List.for_all
      (fun l ->
        l.Sequence.cor10_side_conditions && l.Sequence.lemma6_ok
        && l.Sequence.lemma8_ok && l.Sequence.lemma11_ok)
      check.Sequence.links
    && check.Sequence.last_not_zero_round
  in
  let label_budget_ok =
    List.for_all
      (fun { Sequence.a; x; _ } ->
        Relim.Problem.label_count (Family.pi { Family.delta; a; x })
        <= delta * delta)
      chain.Sequence.steps
  in
  {
    chain;
    t = Sequence.length chain;
    links_verified;
    label_budget_ok;
    failure_bounds_ok = check.Sequence.last_failure_bound_ok;
  }

let conclusion_det c ~n =
  let delta = float_of_int c.chain.Sequence.delta in
  Float.min (float_of_int c.t) (log n /. log delta)

let conclusion_rand c ~n =
  let delta = float_of_int c.chain.Sequence.delta in
  Float.min (float_of_int c.t) (log (Float.max 2. (log n)) /. log delta)

let pp fmt c =
  Format.fprintf fmt
    "@[<v>Theorem 14 certificate (Delta = %d, k = %d):@,\
     chain length t = %d@,\
     all links verified (Lemmas 6/8/11 + Cor. 10 side conditions): %b@,\
     label budget (<= Delta^2 per problem): %b@,\
     randomized failure bounds (Lemma 15, >= 1/Delta^8): %b@,\
     => Pi_0 requires Omega(min(t, log_Delta n)) det / Omega(min(t, log_Delta log n)) rand in LOCAL@]"
    c.chain.Sequence.delta c.chain.Sequence.x0 c.t c.links_verified
    c.label_budget_ok c.failure_bounds_ok
