type step = { index : int; a : int; x : int }

type chain = { delta : int; x0 : int; steps : step list }

let params_at ~delta ~x0 i =
  (* a_i = ⌊Δ / 2^(3i)⌋ with an explicit guard against shift overflow. *)
  let a = if 3 * i >= 62 then 0 else delta / (1 lsl (3 * i)) in
  { index = i; a; x = x0 + i }

let cor10_ok ~delta { a; x; _ } = (2 * x) + 1 <= a && x + 2 <= a && a <= delta

let lemma11_ok cur next =
  (cur.a - (2 * cur.x) - 1) / 2 >= next.a && cur.x + 1 <= next.x

let lemma12_ok ~delta { a; x; _ } = x <= delta - 1 && a >= 1

let build ~delta ~x0 =
  let rec extend acc i =
    let cur = params_at ~delta ~x0 i in
    let next = params_at ~delta ~x0 (i + 1) in
    if
      cor10_ok ~delta cur
      && lemma11_ok cur next
      && lemma12_ok ~delta next
    then extend (next :: acc) (i + 1)
    else List.rev acc
  in
  let first = params_at ~delta ~x0 0 in
  let steps =
    if lemma12_ok ~delta first then extend [ first ] 0 else [ first ]
  in
  { delta; x0; steps }

let length chain = List.length chain.steps - 1

type link_check = {
  step_index : int;
  cor10_side_conditions : bool;
  lemma6_ok : bool;
  lemma8_ok : bool;
  lemma11_ok : bool;
}

type chain_check = {
  chain : chain;
  links : link_check list;
  last_not_zero_round : bool;
  last_failure_bound_ok : bool;
}

let verify ?(deep_lemma6 = true) chain =
  let delta = chain.delta in
  let rec link_checks = function
    | [] | [ _ ] -> []
    | cur :: (next :: _ as rest) ->
        let params = { Family.delta; a = cur.a; x = cur.x } in
        let check =
          {
            step_index = cur.index;
            cor10_side_conditions = cor10_ok ~delta cur;
            lemma6_ok = (not deep_lemma6) || Lemma6.holds params;
            lemma8_ok = Lemma8.all_ok (Lemma8.verify_symbolic params);
            lemma11_ok = lemma11_ok cur next;
          }
        in
        check :: link_checks rest
  in
  let links = link_checks chain.steps in
  let all_steps_unsolvable =
    List.for_all
      (fun s ->
        Zero_round.deterministic_unsolvable { Family.delta; a = s.a; x = s.x })
      chain.steps
  in
  let failure_bound_ok =
    List.for_all
      (fun s ->
        match
          Zero_round.randomized_failure_bound { Family.delta; a = s.a; x = s.x }
        with
        | Some bound ->
            bound >= 1. /. (float_of_int delta ** 8.)
        | None -> false)
      chain.steps
  in
  {
    chain;
    links;
    last_not_zero_round = all_steps_unsolvable;
    last_failure_bound_ok = failure_bound_ok;
  }

let chain_ok check =
  check.last_not_zero_round && check.last_failure_bound_ok
  && List.for_all
       (fun l ->
         l.cor10_side_conditions && l.lemma6_ok && l.lemma8_ok && l.lemma11_ok)
       check.links

let kods_pn_lower_bound ~delta ~k = length (build ~delta ~x0:k)

let optimal ~delta ~x0 =
  let rec extend acc cur =
    let next = { index = cur.index + 1; a = (cur.a - (2 * cur.x) - 1) / 2; x = cur.x + 1 } in
    if cor10_ok ~delta cur && lemma12_ok ~delta next then
      extend (next :: acc) next
    else List.rev acc
  in
  let first = { index = 0; a = delta; x = x0 } in
  let steps = if lemma12_ok ~delta first then extend [ first ] first else [ first ] in
  { delta; x0; steps }

let optimal_length ~delta ~x0 = length (optimal ~delta ~x0)

let pp_chain fmt chain =
  Format.fprintf fmt "@[<v>chain (Delta=%d, x0=%d), %d speedup steps:@,"
    chain.delta chain.x0 (length chain);
  List.iter
    (fun s ->
      Format.fprintf fmt "  Pi_%d = Pi(a=%d, x=%d)@," s.index s.a s.x)
    chain.steps;
  Format.fprintf fmt "@]"
