(** Lemma 9, executable: given a Δ-edge coloring, any solution of
    Π⁺_Δ(a,x) converts — in zero rounds — into a solution of
    Π_Δ(⌊(a-2x-1)/2⌋, x+1), for [2x + 1 ≤ a ≤ Δ].

    The conversion is where the paper's novel use of the input edge
    coloring lives: nodes labeled with the C-configuration turn the C's
    on low-colored edges into A's, while original A-nodes vacate
    exactly those colors — so the forbidden AA pair can never arise,
    without any communication.

    Colors are 0-based here: the paper's color set {1 .. ⌊(a-1)/2⌋}
    becomes {0 .. ⌊(a-1)/2⌋ - 1}, i.e. [color < threshold ~a]. *)

(** ⌊(a-2x-1)/2⌋, the owned-edge requirement after conversion. *)
val target_a : a:int -> x:int -> int

(** ⌊(a-1)/2⌋: number of low colors vacated by A-nodes. *)
val threshold : a:int -> int

(** [convert params g edge_colors labeling] — apply the node-local
    rewriting.  [labeling] must be a valid Π⁺_Δ(a,x) labeling; the
    result is a labeling in Π_Δ(target_a, x+1)'s alphabet.  Nodes of
    degree Δ are guaranteed valid by the lemma; boundary nodes (degree
    < Δ, an artifact of finite trees) are rewritten best-effort and
    should be checked with the [`Free] boundary mode.
    @raise Invalid_argument if [2x + 1 > a] or shapes mismatch. *)
val convert :
  Family.params ->
  Dsgraph.Graph.t ->
  int array ->
  Lcl.Labeling.t ->
  Lcl.Labeling.t

(** [pi_to_pi_plus params labeling] — the easy embedding used to chain
    conversions on concrete instances: a Π_Δ(a,x) solution is turned
    into a Π⁺_Δ(a,x) solution by padding one extra X at M-nodes and
    trimming A-nodes from [a] to [a-x-1] owned edges (X is compatible
    with everything, so no edge constraint can break).
    @raise Invalid_argument if [x + 2 > a]. *)
val pi_to_pi_plus : Family.params -> Lcl.Labeling.t -> Lcl.Labeling.t
