(** Label alphabets: a finite set of named labels.

    A label is an index [0 .. size-1] into the alphabet.  Alphabets are
    immutable once created.  Label names are arbitrary non-empty
    strings without whitespace or the bracket characters used by the
    problem syntax ([\[], [\]], [^], [(], [)]). *)

type t

type label = Labelset.label

(** [create names] builds an alphabet from the given label names.
    @raise Invalid_argument on duplicate, empty or ill-formed names, or
    if more than {!Labelset.max_label} names are given. *)
val create : string list -> t

val size : t -> int

(** All labels of the alphabet, in index order. *)
val labels : t -> label list

(** The set of all labels. *)
val universe : t -> Labelset.t

(** @raise Invalid_argument if the label is out of range. *)
val name : t -> label -> string

(** @raise Not_found if no label has that name. *)
val find : t -> string -> label

val mem_name : t -> string -> bool

(** [set_name a s] renders a label set, e.g. ["MX"] when every member
    name is a single character, ["(M1 X2)"] otherwise, and ["∅"] for
    the empty set. *)
val set_name : t -> Labelset.t -> string

val pp_label : t -> Format.formatter -> label -> unit

val pp_set : t -> Format.formatter -> Labelset.t -> unit

val equal : t -> t -> bool
