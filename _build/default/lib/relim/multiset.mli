(** Concrete configurations: multisets of labels.

    A configuration of arity [d] assigns one label to each of [d]
    ports; since the round-elimination formalism ignores port order, a
    configuration is a multiset.  Stored as a sorted [(label, count)]
    array with positive counts. *)

type t

type label = Labelset.label

val of_list : label list -> t

(** [of_counts pairs] from (label, count) pairs; duplicate labels are
    merged, zero counts dropped.
    @raise Invalid_argument on negative counts. *)
val of_counts : (label * int) list -> t

val to_list : t -> label list

val counts : t -> (label * int) list

(** Total number of elements (with multiplicity). *)
val size : t -> int

val count : t -> label -> int

val mem : label -> t -> bool

(** Set of distinct labels. *)
val support : t -> Labelset.t

val add : label -> t -> t

(** [remove_one l m] removes one occurrence.
    @raise Not_found if [l] is absent. *)
val remove_one : label -> t -> t

(** [replace_one ~remove ~add m]: one occurrence of [remove] becomes
    [add]. @raise Not_found if [remove] is absent. *)
val replace_one : remove:label -> add:label -> t -> t

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

(** All sub-multisets (including empty and full), each produced once. *)
val sub_multisets : t -> (t -> unit) -> unit

(** [sub_multisets_of_size k m f] calls [f] on each sub-multiset of
    size exactly [k]. *)
val sub_multisets_of_size : int -> t -> (t -> unit) -> unit

val pp : Alphabet.t -> Format.formatter -> t -> unit

val to_string : Alphabet.t -> t -> string
