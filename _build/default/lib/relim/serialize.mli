(** Round-trippable textual serialization of problems.

    The format is the same syntax {!Parse} accepts, with a small
    header; it is what the CLI reads and writes:

    {v
    problem MIS
    delta 3
    node:
    M^3
    P O^2
    edge:
    M [PO]
    O^2
    v} *)

(** Render a problem in the parseable format.  Labels that occur in no
    configuration are not rendered, so a round-trip is equivalent to
    {!Problem.trim}. *)
val to_string : Problem.t -> string

(** Parse the format back.
    @raise Failure on malformed input. *)
val of_string : string -> Problem.t
