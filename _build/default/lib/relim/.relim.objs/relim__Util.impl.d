lib/relim/util.ml: Array List Queue
