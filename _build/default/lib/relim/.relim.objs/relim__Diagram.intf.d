lib/relim/diagram.mli: Alphabet Format Labelset Problem
