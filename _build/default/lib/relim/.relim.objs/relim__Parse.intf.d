lib/relim/parse.mli: Alphabet Constr Line Problem
