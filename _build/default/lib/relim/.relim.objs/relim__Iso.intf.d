lib/relim/iso.mli: Labelset Problem
