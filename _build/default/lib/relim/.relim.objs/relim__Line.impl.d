lib/relim/line.ml: Alphabet Array Format Hashtbl Labelset List Multiset String Util
