lib/relim/line.mli: Alphabet Format Labelset Multiset
