lib/relim/labelset.ml: Hashtbl List Printf
