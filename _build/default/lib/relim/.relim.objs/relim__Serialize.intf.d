lib/relim/serialize.mli: Problem
