lib/relim/rounde.ml: Alphabet Array Constr Diagram Hashtbl Labelset Line List Multiset Printf Problem Set Util
