lib/relim/multiset.mli: Alphabet Format Labelset
