lib/relim/alphabet.ml: Array Format Fun Hashtbl Labelset List Printf String
