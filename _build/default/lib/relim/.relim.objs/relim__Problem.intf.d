lib/relim/problem.mli: Alphabet Constr Format
