lib/relim/zeroround.mli: Labelset Multiset Problem
