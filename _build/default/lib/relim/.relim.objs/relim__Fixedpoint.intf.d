lib/relim/fixedpoint.mli: Labelset Problem
