lib/relim/relax.mli: Constr Labelset Multiset
