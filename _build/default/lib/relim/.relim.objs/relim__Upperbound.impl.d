lib/relim/upperbound.ml: Rounde Simplify Zeroround
