lib/relim/zeroround.ml: Alphabet Array Constr Labelset Line List Multiset Problem
