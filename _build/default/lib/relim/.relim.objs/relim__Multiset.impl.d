lib/relim/multiset.ml: Alphabet Array Format Hashtbl Labelset List
