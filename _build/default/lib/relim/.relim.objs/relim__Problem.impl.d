lib/relim/problem.ml: Alphabet Array Constr Format Labelset Line List String
