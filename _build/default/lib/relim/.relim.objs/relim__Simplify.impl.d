lib/relim/simplify.ml: Alphabet Constr Diagram Labelset Line List Printf Problem
