lib/relim/labelset.mli:
