lib/relim/serialize.ml: Buffer Constr Line List Parse Printf Problem String
