lib/relim/constr.mli: Alphabet Format Labelset Line Multiset
