lib/relim/relax.ml: Array Constr Labelset Line List Multiset Util
