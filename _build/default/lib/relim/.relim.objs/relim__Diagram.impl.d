lib/relim/diagram.ml: Alphabet Array Buffer Constr Format Hashtbl Labelset Line List Multiset Printf Problem
