lib/relim/iso.ml: Alphabet Array Constr Fun Labelset Line List Problem Util
