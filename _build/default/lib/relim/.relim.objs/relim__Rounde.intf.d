lib/relim/rounde.mli: Labelset Problem
