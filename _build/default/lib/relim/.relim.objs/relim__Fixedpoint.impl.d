lib/relim/fixedpoint.ml: Iso Labelset Printf Problem Rounde Simplify Zeroround
