lib/relim/alphabet.mli: Format Labelset
