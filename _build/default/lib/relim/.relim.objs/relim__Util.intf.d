lib/relim/util.mli:
