lib/relim/upperbound.mli: Problem
