lib/relim/parse.ml: Alphabet Constr Hashtbl Labelset Line List Printf Problem String
