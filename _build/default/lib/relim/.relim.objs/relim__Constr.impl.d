lib/relim/constr.ml: Format Hashtbl Labelset Line List
