lib/relim/simplify.mli: Labelset Problem
