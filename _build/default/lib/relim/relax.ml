type label = Labelset.label

let multiset_relaxes ~leq y z =
  let ys = Array.of_list (Multiset.counts y) in
  let zs = Array.of_list (Multiset.counts z) in
  Util.transport_feasible
    ~supply:(Array.map snd ys)
    ~demand:(Array.map snd zs)
    ~allowed:(fun i j -> leq (fst ys.(i)) (fst zs.(j)))

(* Exact even for disjunction groups: every slot of a group picks its
   own witness label independently, so per-slot existential matching is
   precisely the relaxation condition. *)
let multiset_relaxes_into_line ~leq y line =
  let ys = Array.of_list (Multiset.counts y) in
  let groups = Array.of_list (Line.groups line) in
  Util.transport_feasible
    ~supply:(Array.map snd ys)
    ~demand:(Array.map snd groups)
    ~allowed:(fun i j ->
      Labelset.exists (fun z -> leq (fst ys.(i)) z) (fst groups.(j)))

let multiset_relaxes_into_constr ~leq y c =
  List.exists (multiset_relaxes_into_line ~leq y) (Constr.lines c)

let constr_relaxes ?(limit = 2e6) ~leq a b =
  let configs = Constr.expand ~limit a in
  List.for_all (fun y -> multiset_relaxes_into_constr ~leq y b) configs

let label_equal (a : label) (b : label) = a = b
