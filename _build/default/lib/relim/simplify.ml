type label = Labelset.label

let merge (p : Problem.t) ~from_ ~into_ =
  let lf = Alphabet.find p.alpha from_ in
  let li = Alphabet.find p.alpha into_ in
  if lf = li then invalid_arg "Simplify.merge: labels coincide";
  let rewrite_set s =
    if Labelset.mem lf s then Labelset.add li (Labelset.remove lf s) else s
  in
  let rewrite = Constr.map_lines (Line.map_syms rewrite_set) in
  Problem.trim
    {
      p with
      Problem.name = Printf.sprintf "%s[%s->%s]" p.name from_ into_;
      node = rewrite p.node;
      edge = rewrite p.edge;
    }

let merge_is_sound ?expand_limit (p : Problem.t) ~from_ ~into_ =
  let lf = Alphabet.find p.alpha from_ in
  let li = Alphabet.find p.alpha into_ in
  let edge = Diagram.edge_diagram p in
  let node = Diagram.node_diagram ?expand_limit p in
  Diagram.geq edge li lf && Diagram.geq node li lf

let merge_equivalent ?expand_limit (p : Problem.t) =
  let edge = Diagram.edge_diagram p in
  let node = Diagram.node_diagram ?expand_limit p in
  let n = Alphabet.size p.alpha in
  let pair = ref None in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      if
        !pair = None
        && Diagram.equivalent edge a b
        && Diagram.equivalent node a b
      then pair := Some (a, b)
    done
  done;
  match !pair with
  | None -> p
  | Some (a, b) ->
      merge p ~from_:(Alphabet.name p.alpha b) ~into_:(Alphabet.name p.alpha a)

let drop_redundant_lines (p : Problem.t) =
  let prune constr =
    let lines = Constr.lines constr in
    let keep line =
      not
        (List.exists
           (fun other ->
             (not (Line.equal other line)) && Line.covers other line)
           lines)
    in
    (* When two lines cover each other (identical denotations in
       different condensed forms) keep the first. *)
    let rec go kept = function
      | [] -> List.rev kept
      | line :: rest ->
          if
            keep line
            || not
                 (List.exists
                    (fun other -> Line.covers other line)
                    (kept @ rest))
          then go (line :: kept) rest
          else go kept rest
    in
    Constr.make (go [] lines)
  in
  { p with Problem.node = prune p.node; edge = prune p.edge }

let normalize p = Problem.trim (drop_redundant_lines p)
