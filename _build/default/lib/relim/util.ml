let transport_feasible ~supply ~demand ~allowed =
  let ns = Array.length supply and nd = Array.length demand in
  let total_supply = Array.fold_left ( + ) 0 supply in
  let total_demand = Array.fold_left ( + ) 0 demand in
  if total_supply <> total_demand then false
  else begin
    (* Max-flow on the bipartite network source -> supplies -> demands
       -> sink, via repeated augmenting-path search (capacities are
       small integers, node counts tiny). Node ids: 0 = source,
       1..ns = supplies, ns+1..ns+nd = demands, ns+nd+1 = sink. *)
    let n = ns + nd + 2 in
    let sink = n - 1 in
    let cap = Array.make_matrix n n 0 in
    for i = 0 to ns - 1 do
      cap.(0).(1 + i) <- supply.(i);
      for j = 0 to nd - 1 do
        if allowed i j then cap.(1 + i).(ns + 1 + j) <- total_supply
      done
    done;
    for j = 0 to nd - 1 do
      cap.(ns + 1 + j).(sink) <- demand.(j)
    done;
    let rec augment () =
      (* BFS for an augmenting path. *)
      let parent = Array.make n (-1) in
      parent.(0) <- 0;
      let queue = Queue.create () in
      Queue.add 0 queue;
      let found = ref false in
      while (not !found) && not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        for v = 0 to n - 1 do
          if parent.(v) < 0 && cap.(u).(v) > 0 then begin
            parent.(v) <- u;
            if v = sink then found := true else Queue.add v queue
          end
        done
      done;
      if !found then begin
        (* Find bottleneck and update residual capacities. *)
        let rec bottleneck v acc =
          if v = 0 then acc
          else
            let u = parent.(v) in
            bottleneck u (min acc cap.(u).(v))
        in
        let b = bottleneck sink max_int in
        let rec update v =
          if v <> 0 then begin
            let u = parent.(v) in
            cap.(u).(v) <- cap.(u).(v) - b;
            cap.(v).(u) <- cap.(v).(u) + b;
            update u
          end
        in
        update sink;
        b + augment ()
      end
      else 0
    in
    augment () = total_demand
  end

let compositions n k f =
  if k = 0 then (if n = 0 then f [||])
  else begin
    let arr = Array.make k 0 in
    let rec go i remaining =
      if i = k - 1 then begin
        arr.(i) <- remaining;
        f arr
      end
      else
        for v = 0 to remaining do
          arr.(i) <- v;
          go (i + 1) (remaining - v)
        done
    in
    go 0 n
  end

let choose_float n k =
  if k < 0 || k > n then 0.
  else begin
    let k = min k (n - k) in
    let acc = ref 1. in
    for i = 1 to k do
      acc := !acc *. float_of_int (n - k + i) /. float_of_int i
    done;
    !acc
  end

let multisets elems k f =
  let arr = Array.of_list elems in
  let n = Array.length arr in
  if n = 0 then (if k = 0 then f [])
  else begin
    (* Enumerate non-decreasing index sequences of length [k]. *)
    let idx = Array.make k 0 in
    let rec go pos lo =
      if pos = k then begin
        let items = ref [] in
        for i = k - 1 downto 0 do
          items := arr.(idx.(i)) :: !items
        done;
        f !items
      end
      else
        for v = lo to n - 1 do
          idx.(pos) <- v;
          go (pos + 1) v
        done
    in
    go 0 0
  end

let list_product lists f =
  let rec go acc = function
    | [] -> f (List.rev acc)
    | l :: rest -> List.iter (fun x -> go (x :: acc) rest) l
  in
  go [] lists

let exists_bijection xs ys f =
  let rec go xs ys acc =
    match xs with
    | [] -> f (List.rev acc)
    | x :: xs' ->
        let rec try_each before = function
          | [] -> false
          | y :: after ->
              go xs' (List.rev_append before after) ((x, y) :: acc)
              || try_each (y :: before) after
        in
        try_each [] ys
  in
  if List.length xs <> List.length ys then false else go xs ys []
