(** Locally checkable problems in the round-elimination formalism.

    A problem on Δ-regular graphs is a triple (Σ, 𝒩, ℰ): an alphabet, a
    node constraint of arity Δ and an edge constraint of arity 2
    (Section 2.2 of the paper).  A correct solution labels every
    (node, incident edge) pair with an alphabet symbol so that each
    node's labels form a configuration in 𝒩 and each edge's two labels
    form a configuration in ℰ. *)

type t = {
  name : string;  (** Human-readable identifier, e.g. ["MIS"]. *)
  alpha : Alphabet.t;
  node : Constr.t;  (** Arity Δ. *)
  edge : Constr.t;  (** Arity 2. *)
}

(** [make ~name ~alpha ~node ~edge] validates arities and that every
    label used in the constraints belongs to the alphabet.
    @raise Invalid_argument if the edge constraint has arity other than
    2 or constraints mention labels outside the alphabet. *)
val make : name:string -> alpha:Alphabet.t -> node:Constr.t -> edge:Constr.t -> t

(** Δ, the node-constraint arity. *)
val delta : t -> int

(** Number of labels actually used (size of the alphabet). *)
val label_count : t -> int

(** Structural equality: same alphabet (names and order), same
    constraints.  See {!Iso} for equality up to renaming. *)
val equal : t -> t -> bool

(** Drop labels that never occur in any constraint, re-indexing the
    alphabet. *)
val trim : t -> t

val pp : Format.formatter -> t -> unit

val to_string : t -> string
