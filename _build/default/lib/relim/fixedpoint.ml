type verdict =
  | Fixed_point of Problem.t * (Labelset.label * Labelset.label) list
  | Reaches_fixed_point of int * Problem.t
  | No_fixed_point_found of Problem.t

let detect ?(max_steps = 5) ?expand_limit p =
  let p0 = Simplify.normalize p in
  let { Rounde.problem = first; _ } = Rounde.step ?expand_limit p0 in
  let first = Simplify.normalize first in
  match Iso.find_renaming first p0 with
  | Some assoc -> Fixed_point (p0, assoc)
  | None ->
      let rec iterate prev i =
        if i > max_steps then No_fixed_point_found prev
        else begin
          let { Rounde.problem = next; _ } = Rounde.step ?expand_limit prev in
          let next = Simplify.normalize next in
          if Iso.equal_up_to_renaming next prev then
            Reaches_fixed_point (i, prev)
          else iterate next (i + 1)
        end
      in
      iterate first 2

let lower_bound_statement verdict =
  let from_problem p =
    if Zeroround.solvable_arbitrary_ports p = None then
      Some
        (Printf.sprintf
           "problem %s is a non-trivial fixed point: Omega(log n) deterministic \
            and Omega(log log n) randomized LOCAL lower bounds"
           p.Problem.name)
    else None
  in
  match verdict with
  | Fixed_point (p, _) | Reaches_fixed_point (_, p) -> from_problem p
  | No_fixed_point_found _ -> None
