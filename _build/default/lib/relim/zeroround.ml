let compat_matrix (p : Problem.t) =
  let n = Alphabet.size p.alpha in
  let compat = Array.make_matrix n n false in
  List.iter
    (fun line ->
      Line.expand line (fun m ->
          match Multiset.to_list m with
          | [ a; b ] ->
              compat.(a).(b) <- true;
              compat.(b).(a) <- true
          | _ -> invalid_arg "Zeroround: edge line of arity <> 2"))
    (Constr.lines p.edge);
  compat

let self_compatible p =
  let compat = compat_matrix p in
  let n = Alphabet.size p.alpha in
  let acc = ref Labelset.empty in
  for l = 0 to n - 1 do
    if compat.(l).(l) then acc := Labelset.add l !acc
  done;
  !acc

(* Pick, for each group of [line], [count] labels from [pool ∩ syms];
   returns a witness configuration or [None] if some group has an empty
   intersection with the pool. *)
let pick_from_pool line pool =
  let rec go acc = function
    | [] -> Some (Multiset.of_counts acc)
    | (s, c) :: rest ->
        let usable = Labelset.inter s pool in
        if Labelset.is_empty usable then None
        else go ((Labelset.choose usable, c) :: acc) rest
  in
  go [] (Line.groups line)

let solvable_mirrored p =
  let pool = self_compatible p in
  List.find_map (fun line -> pick_from_pool line pool) (Constr.lines p.node)

let solvable_arbitrary_ports p =
  let compat = compat_matrix p in
  let n = Alphabet.size p.alpha in
  let is_clique s =
    Labelset.for_all (fun a -> Labelset.for_all (fun b -> compat.(a).(b)) s) s
  in
  let cliques =
    List.filter is_clique (Labelset.nonempty_subsets (Labelset.full n))
  in
  let lines = Constr.lines p.node in
  List.find_map
    (fun clique ->
      List.find_map
        (fun line ->
          (* Every slot must draw from the clique. *)
          match pick_from_pool line clique with
          | Some witness
            when Labelset.subset (Multiset.support witness) clique ->
              Some witness
          | Some _ | None -> None)
        lines)
    cliques

let randomized_failure_bound ?(limit = 2e6) p =
  match solvable_mirrored p with
  | Some _ -> None
  | None ->
      let configs = Constr.expand ~limit p.node in
      let c = List.length configs in
      let delta = Problem.delta p in
      let denom = float_of_int (c * delta) in
      Some (1. /. (denom *. denom))
