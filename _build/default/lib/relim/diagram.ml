type label = Labelset.label

type t = { alpha : Alphabet.t; geq : bool array array; exact : bool }

let alphabet d = d.alpha

let is_exact d = d.exact

let geq d a b = d.geq.(a).(b)

let gt d a b = d.geq.(a).(b) && not d.geq.(b).(a)

let equivalent d a b = d.geq.(a).(b) && d.geq.(b).(a)

(* Compatibility matrix of an edge constraint: compat.(a).(b) iff the
   pair {a, b} is an allowed edge configuration. *)
let compat_matrix p =
  let n = Alphabet.size p.Problem.alpha in
  let compat = Array.make_matrix n n false in
  List.iter
    (fun line ->
      match Line.groups line with
      | [ (s, 2) ] ->
          Labelset.iter
            (fun a -> Labelset.iter (fun b -> compat.(a).(b) <- true) s)
            s
      | [ (s1, 1); (s2, 1) ] ->
          Labelset.iter
            (fun a ->
              Labelset.iter
                (fun b ->
                  compat.(a).(b) <- true;
                  compat.(b).(a) <- true)
                s2)
            s1
      | _ -> invalid_arg "Diagram: malformed edge line")
    (Constr.lines p.Problem.edge);
  compat

let edge_diagram p =
  let n = Alphabet.size p.Problem.alpha in
  let compat = compat_matrix p in
  let geq = Array.make_matrix n n false in
  (* a >= b iff N(b) subseteq N(a). *)
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      let ok = ref true in
      for c = 0 to n - 1 do
        if compat.(b).(c) && not compat.(a).(c) then ok := false
      done;
      geq.(a).(b) <- !ok
    done
  done;
  { alpha = p.Problem.alpha; geq; exact = true }

let node_diagram ?(expand_limit = 200_000.) p =
  let n = Alphabet.size p.Problem.alpha in
  let node = p.Problem.node in
  let geq = Array.make_matrix n n false in
  let exact = Constr.expansion_estimate node <= expand_limit in
  if exact then begin
    let tbl = Hashtbl.create 4096 in
    List.iter (fun m -> Hashtbl.replace tbl m ()) (Constr.expand node);
    let configs = Hashtbl.fold (fun m () acc -> m :: acc) tbl [] in
    for a = 0 to n - 1 do
      for b = 0 to n - 1 do
        geq.(a).(b) <-
          List.for_all
            (fun m ->
              (not (Multiset.mem b m))
              || Hashtbl.mem tbl (Multiset.replace_one ~remove:b ~add:a m))
            configs
      done
    done
  end
  else begin
    (* Condensed-level sound approximation: a >= b holds if, for every
       line L and every group of L containing b, the line obtained by
       substituting one slot of that group with {a} is covered by a
       single line of the constraint. May miss relations whose image
       family is split across several lines. *)
    let lines = Constr.lines node in
    for a = 0 to n - 1 do
      for b = 0 to n - 1 do
        geq.(a).(b) <-
          List.for_all
            (fun line ->
              List.for_all
                (fun (s, c) ->
                  if not (Labelset.mem b s) then true
                  else begin
                    let rest =
                      List.map
                        (fun (s', c') -> if Labelset.equal s' s then (s', c' - 1) else (s', c'))
                        (Line.groups line)
                      |> List.filter (fun (_, c') -> c' > 0)
                    in
                    let substituted =
                      Line.make ((Labelset.singleton a, 1) :: rest)
                    in
                    ignore c;
                    Constr.covers_line node substituted
                  end)
                (Line.groups line))
            lines
      done
    done
  end;
  { alpha = p.Problem.alpha; geq; exact }

let above d l =
  let n = Alphabet.size d.alpha in
  let acc = ref Labelset.empty in
  for a = 0 to n - 1 do
    if a <> l && d.geq.(a).(l) then acc := Labelset.add a !acc
  done;
  !acc

let is_right_closed d s =
  Labelset.for_all (fun l -> Labelset.subset (above d l) s) s

let right_closed_sets d =
  let n = Alphabet.size d.alpha in
  if n > 22 then
    failwith "Diagram.right_closed_sets: too many labels";
  let universe = Labelset.full n in
  List.filter (is_right_closed d) (Labelset.nonempty_subsets universe)

let minimal_elements d s =
  Labelset.filter
    (fun l ->
      Labelset.for_all (fun l' -> l' = l || not (gt d l l')) s)
    s

let hasse_edges d =
  let n = Alphabet.size d.alpha in
  let edges = ref [] in
  for weaker = 0 to n - 1 do
    for stronger = 0 to n - 1 do
      if stronger <> weaker && d.geq.(stronger).(weaker) then begin
        (* Transitive reduction: keep the edge unless an intermediate
           strictly-between label exists. *)
        let intermediate = ref false in
        for mid = 0 to n - 1 do
          if
            mid <> weaker && mid <> stronger
            && d.geq.(mid).(weaker)
            && d.geq.(stronger).(mid)
            && not (equivalent d mid weaker)
            && not (equivalent d stronger mid)
          then intermediate := true
        done;
        if not !intermediate then edges := (weaker, stronger) :: !edges
      end
    done
  done;
  List.rev !edges

let pp fmt d =
  let edges = hasse_edges d in
  if edges = [] then Format.pp_print_string fmt "(no relations)"
  else
    Format.fprintf fmt "@[<v>%a@]"
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun fmt (w, s) ->
           Format.fprintf fmt "%a -> %a" (Alphabet.pp_label d.alpha) w
             (Alphabet.pp_label d.alpha) s))
      edges

let to_dot ?(name = "diagram") d =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n  rankdir=BT;\n" name);
  List.iter
    (fun l ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\";\n" (Alphabet.name d.alpha l)))
    (Alphabet.labels d.alpha);
  List.iter
    (fun (weaker, stronger) ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -> \"%s\";\n" (Alphabet.name d.alpha weaker)
           (Alphabet.name d.alpha stronger)))
    (hasse_edges d);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
