(** Fixed-point detection for round elimination.

    If a non-0-round-solvable problem Π satisfies [R̄(R(Π)) ≅ Π] (after
    normalization), then no finite chain of speedup steps ever reaches
    a 0-round-solvable problem, which by the standard argument yields
    Ω(log n) deterministic and Ω(log log n) randomized lower bounds in
    the LOCAL model (the "fixed points" technique of Section 1.2; the
    canonical example is sinkless orientation [Brandt et al. '16]). *)

type verdict =
  | Fixed_point of Problem.t * (Labelset.label * Labelset.label) list
      (** [R̄(R(Π))] is isomorphic to Π (normalized); the witnessing
          renaming maps labels of the speedup result to labels of the
          normalized input, which is returned. *)
  | Reaches_fixed_point of int * Problem.t
      (** Iterating the speedup step stabilized after the given number
          of steps on the given problem. *)
  | No_fixed_point_found of Problem.t
      (** Not stabilized within the step budget; the last problem
          reached is returned. *)

(** [detect ?normalize_first ?max_steps ?expand_limit p] iterates
    [R̄ ∘ R] (normalizing after each step) looking for stabilization up
    to renaming.
    @raise Failure if a step exceeds the engine's budgets. *)
val detect :
  ?max_steps:int -> ?expand_limit:float -> Problem.t -> verdict

(** Convenience: [Some (det, rand)] lower-bound statement strings when
    a fixed point (immediate or eventual) was found and the fixed
    problem is not 0-round solvable under arbitrary ports. *)
val lower_bound_statement : verdict -> string option
