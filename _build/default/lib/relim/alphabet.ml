type label = Labelset.label

type t = { names : string array }

let forbidden = [ '['; ']'; '^'; '('; ')'; ' '; '\t'; '\n' ]

let check_name s =
  if String.length s = 0 then invalid_arg "Alphabet.create: empty label name";
  String.iter
    (fun c ->
      if List.mem c forbidden then
        invalid_arg (Printf.sprintf "Alphabet.create: bad character %C in %S" c s))
    s

let create names =
  let n = List.length names in
  if n > Labelset.max_label then invalid_arg "Alphabet.create: too many labels";
  List.iter check_name names;
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if Hashtbl.mem tbl s then
        invalid_arg (Printf.sprintf "Alphabet.create: duplicate label %S" s);
      Hashtbl.add tbl s ())
    names;
  { names = Array.of_list names }

let size a = Array.length a.names

let labels a = List.init (size a) Fun.id

let universe a = Labelset.full (size a)

let name a l =
  if l < 0 || l >= size a then invalid_arg "Alphabet.name: label out of range";
  a.names.(l)

let find a s =
  let rec go i =
    if i >= size a then raise Not_found
    else if String.equal a.names.(i) s then i
    else go (i + 1)
  in
  go 0

let mem_name a s = match find a s with _ -> true | exception Not_found -> false

let set_name a set =
  if Labelset.is_empty set then "\xe2\x88\x85"
  else
    match List.map (name a) (Labelset.elements set) with
    | [ single ] -> single
    | members ->
        if List.for_all (fun s -> String.length s = 1) members then
          String.concat "" members
        else String.concat "," members

let pp_label a fmt l = Format.pp_print_string fmt (name a l)

let pp_set a fmt s = Format.pp_print_string fmt (set_name a s)

let equal a b = a.names = b.names
