let to_string (p : Problem.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("problem " ^ p.name ^ "\n");
  Buffer.add_string buf (Printf.sprintf "delta %d\n" (Problem.delta p));
  Buffer.add_string buf "node:\n";
  List.iter
    (fun line -> Buffer.add_string buf (Line.to_string p.alpha line ^ "\n"))
    (Constr.lines p.node);
  Buffer.add_string buf "edge:\n";
  List.iter
    (fun line -> Buffer.add_string buf (Line.to_string p.alpha line ^ "\n"))
    (Constr.lines p.edge);
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s |> List.map String.trim in
  let name = ref "problem" in
  let node = Buffer.create 64 in
  let edge = Buffer.create 64 in
  let target = ref None in
  List.iter
    (fun line ->
      if line = "" then ()
      else if String.length line > 8 && String.sub line 0 8 = "problem " then
        name := String.sub line 8 (String.length line - 8)
      else if String.length line > 6 && String.sub line 0 6 = "delta " then ()
        (* informational; the arity is recomputed from the node lines *)
      else if line = "node:" then target := Some `Node
      else if line = "edge:" then target := Some `Edge
      else
        match !target with
        | Some `Node ->
            Buffer.add_string node line;
            Buffer.add_char node '\n'
        | Some `Edge ->
            Buffer.add_string edge line;
            Buffer.add_char edge '\n'
        | None -> failwith ("Serialize.of_string: unexpected line " ^ line))
    lines;
  Parse.problem ~name:!name ~node:(Buffer.contents node)
    ~edge:(Buffer.contents edge)
