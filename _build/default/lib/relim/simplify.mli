(** Simplification operations on problems.

    Round elimination blows up the label count doubly exponentially
    (Section 1.2 of the paper); all known lower-bound proofs interleave
    speedup steps with {e simplifications} that shrink the description
    again.  A simplification must only make the problem {e easier} (or
    keep it equivalent): a solution of the original must convert to a
    solution of the simplified problem in 0 rounds.  The operations
    here are the standard ones from the round-eliminator tool. *)

type label = Labelset.label

(** [merge p ~from_ ~into_] replaces every occurrence of [from_] by
    [into_] and drops [from_] from the alphabet.  This is a {e
    relaxation} (the simplified problem is at most as hard) whenever
    [into_] is at least as strong as [from_] in both diagrams; the
    function performs the merge unconditionally — see
    {!merge_is_sound}. *)
val merge : Problem.t -> from_:string -> into_:string -> Problem.t

(** Is merging [from_] into [into_] sound, i.e. is [into_] at least as
    strong as [from_] w.r.t. both the edge and the node constraint?
    (Then any valid labeling stays valid after the rewrite, so the
    merged problem is solvable whenever the original is.)
    Node-constraint strength uses the exact diagram when the constraint
    expands within [expand_limit]. *)
val merge_is_sound :
  ?expand_limit:float -> Problem.t -> from_:string -> into_:string -> bool

(** Merge every pair of labels that is {e equivalent} in both diagrams
    (mutually at-least-as-strong); sound and lossless.  Returns the
    problem unchanged if no pair qualifies. *)
val merge_equivalent : ?expand_limit:float -> Problem.t -> Problem.t

(** Remove constraint lines that are covered by another line of the
    same constraint (they denote only configurations another line
    already allows); the problem is unchanged semantically. *)
val drop_redundant_lines : Problem.t -> Problem.t

(** [normalize p] — [drop_redundant_lines], then {!Problem.trim}.  A
    cheap canonicalization used before isomorphism checks. *)
val normalize : Problem.t -> Problem.t
