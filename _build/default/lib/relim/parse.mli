(** Parser for the textual problem syntax, compatible in spirit with
    Olivetti's round-eliminator tool.

    A constraint is one configuration per line (newlines or [;]
    separate lines).  A configuration is a whitespace-separated list of
    groups.  A group is either a single label, or a disjunction
    [\[...\]], optionally followed by [^k] for multiplicity.  Inside
    brackets, labels are separated by spaces; if the bracket content
    contains no spaces it is split into single-character labels, so
    [\[PO\]] and [\[P O\]] both denote the disjunction {P, O}.  Outside
    brackets a multi-character token is a single multi-character label.

    Examples (MIS with Δ = 3):
    {v
    node:  M M M
           P O O
    edge:  M [PO]
           O O
    v} *)

(** [constr alpha ~arity s] parses a constraint, checking every line
    has the given arity.
    @raise Failure with a descriptive message on syntax errors, unknown
    labels, or arity mismatches. *)
val constr : Alphabet.t -> arity:int -> string -> Constr.t

(** [line alpha s] parses a single configuration. *)
val line : Alphabet.t -> string -> Line.t

(** [problem ~name ~node ~edge] parses a whole problem, inferring the
    alphabet from the labels appearing in the two constraints (in order
    of first appearance).
    @raise Failure on syntax errors or if node/edge arity is invalid. *)
val problem : name:string -> node:string -> edge:string -> Problem.t

(** Label names appearing in a constraint string, in order of first
    appearance. *)
val scan_labels : string -> string list
