type t = {
  name : string;
  alpha : Alphabet.t;
  node : Constr.t;
  edge : Constr.t;
}

let make ~name ~alpha ~node ~edge =
  if Constr.arity edge <> 2 then
    invalid_arg "Problem.make: edge constraint must have arity 2";
  let universe = Alphabet.universe alpha in
  if not (Labelset.subset (Constr.support node) universe) then
    invalid_arg "Problem.make: node constraint uses labels outside the alphabet";
  if not (Labelset.subset (Constr.support edge) universe) then
    invalid_arg "Problem.make: edge constraint uses labels outside the alphabet";
  { name; alpha; node; edge }

let delta p = Constr.arity p.node

let label_count p = Alphabet.size p.alpha

let equal a b =
  String.equal a.name b.name && Alphabet.equal a.alpha b.alpha
  && Constr.equal a.node b.node && Constr.equal a.edge b.edge

let trim p =
  let used = Labelset.union (Constr.support p.node) (Constr.support p.edge) in
  if Labelset.equal used (Alphabet.universe p.alpha) then p
  else begin
    let old_labels = Labelset.elements used in
    let alpha = Alphabet.create (List.map (Alphabet.name p.alpha) old_labels) in
    let mapping = Array.make (Alphabet.size p.alpha) (-1) in
    List.iteri (fun new_l old_l -> mapping.(old_l) <- new_l) old_labels;
    let remap_set s =
      Labelset.fold (fun l acc -> Labelset.add mapping.(l) acc) s Labelset.empty
    in
    let remap = Constr.map_lines (Line.map_syms remap_set) in
    { name = p.name; alpha; node = remap p.node; edge = remap p.edge }
  end

let pp fmt p =
  Format.fprintf fmt "@[<v>problem %s (Delta = %d, %d labels)@,node constraint:@,  @[<v>%a@]@,edge constraint:@,  @[<v>%a@]@]"
    p.name (delta p) (label_count p) (Constr.pp p.alpha) p.node
    (Constr.pp p.alpha) p.edge

let to_string p = Format.asprintf "%a" pp p
