(** Small combinatorial helpers shared across the engine. *)

(** [transport_feasible ~supply ~demand ~allowed] decides whether a
    transportation problem has a solution: [supply.(i)] units at source
    [i] must be shipped to sinks, sink [j] absorbing exactly
    [demand.(j)] units, and source [i] may ship to sink [j] only when
    [allowed i j].  Total supply must equal total demand, otherwise the
    answer is [false].  Implemented as a small max-flow; sizes are
    expected to stay below a few dozen nodes. *)
val transport_feasible :
  supply:int array -> demand:int array -> allowed:(int -> int -> bool) -> bool

(** [compositions n k] enumerates all ways to write [n] as an ordered
    sum of [k] non-negative integers, calling the callback with each
    composition.  The array passed to the callback is reused; copy it
    if you keep it. *)
val compositions : int -> int -> (int array -> unit) -> unit

(** [choose n k] is the binomial coefficient as a float (avoids
    overflow; used only for feasibility estimates). *)
val choose_float : int -> int -> float

(** [multisets elems k] enumerates all multisets of size [k] over the
    list [elems], as sorted lists (non-decreasing by list position).
    The callback receives each multiset as a list of elements. *)
val multisets : 'a list -> int -> ('a list -> unit) -> unit

(** [list_product lists f] calls [f] on every tuple drawing one element
    from each list, in order. *)
val list_product : 'a list list -> ('a list -> unit) -> unit

(** [bijections xs ys f] enumerates all bijections between two lists of
    equal length, represented as association lists; stops early if [f]
    returns [true] and returns [true] in that case. *)
val exists_bijection : 'a list -> 'b list -> (('a * 'b) list -> bool) -> bool
