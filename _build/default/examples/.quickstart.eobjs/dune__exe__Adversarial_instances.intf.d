examples/adversarial_instances.mli:
