examples/mis_on_trees.mli:
