examples/lower_bound_tour.ml: Array Core Format List Relim String Sys
