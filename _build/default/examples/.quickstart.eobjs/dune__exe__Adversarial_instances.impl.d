examples/adversarial_instances.ml: Array Dsgraph Format Lcl List Localsim Relim
