examples/dominating_sets.mli:
