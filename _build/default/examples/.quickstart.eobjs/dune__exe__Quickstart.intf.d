examples/quickstart.mli:
