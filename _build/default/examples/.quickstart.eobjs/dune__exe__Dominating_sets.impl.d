examples/dominating_sets.ml: Array Core Distalgo Dsgraph Format Lcl List
