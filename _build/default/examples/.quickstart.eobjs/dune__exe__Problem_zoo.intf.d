examples/problem_zoo.mli:
