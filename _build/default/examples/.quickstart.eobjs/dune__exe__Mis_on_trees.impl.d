examples/mis_on_trees.ml: Array Core Distalgo Dsgraph Format Lcl List Printf
