examples/quickstart.ml: Diagram Format Lcl Multiset Parse Problem Relim Rounde Zeroround
