examples/problem_zoo.ml: Core Diagram Fixedpoint Format Lcl Multiset Parse Problem Relim Zeroround
