(* MIS on trees: the upper-bound side of the paper's story.

   Runs the classic algorithms on simulated trees and prints measured
   round counts next to the paper's lower bound:

   - Luby's randomized MIS (O(log n) rounds, anonymous PN model);
   - Cole–Vishkin 3-coloring + color-by-color selection
     (O(log* n) + 3 rounds on rooted trees);
   - the Theorem 1 lower-bound value at the same (n, Delta).

   Every output is verified by the centralized checkers before being
   reported, and converted into a labeling of the paper's MIS encoding
   which is validated against the formalism too.

   Run with:  dune exec examples/mis_on_trees.exe                     *)

module Graph = Dsgraph.Graph
module Tree_gen = Dsgraph.Tree_gen

let count sel = Array.fold_left (fun acc b -> acc + if b then 1 else 0) 0 sel

let run_instance name g seed =
  let n = Graph.n g in
  let delta = Graph.max_degree g in
  let mis_luby, luby_rounds = Distalgo.Luby.run ~seed g in
  let mis_cv, cv_rounds = Distalgo.Kods.mis_on_tree g ~root:0 in
  (* Validate against the round-elimination encoding as well. *)
  let problem = Lcl.Encodings.mis ~delta in
  let labeling = Lcl.Encodings.mis_labeling g mis_luby in
  assert (Lcl.Labeling.is_valid ~boundary:`Extendable problem labeling);
  let lower =
    Core.Bounds.theorem1_det ~delta:(float_of_int delta) ~n:(float_of_int n)
  in
  Format.printf
    "%-24s n=%6d D=%2d | Luby: |S|=%5d in %3d rounds | CV+greedy: |S|=%5d in %3d rounds | Thm-1 lower bound ~ %.1f@."
    name n delta (count mis_luby) luby_rounds (count mis_cv) cv_rounds lower

let () =
  Format.printf
    "MIS on trees: measured distributed round counts vs the paper's lower bound@.@.";
  run_instance "path" (Tree_gen.path 2000) 1;
  run_instance "star" (Tree_gen.star 2000) 2;
  run_instance "caterpillar" (Tree_gen.caterpillar ~spine:400 ~legs:4) 3;
  run_instance "balanced Delta=3" (Tree_gen.balanced ~delta:3 ~depth:9) 4;
  run_instance "balanced Delta=8" (Tree_gen.balanced ~delta:8 ~depth:3) 5;
  List.iter
    (fun (n, d, seed) ->
      run_instance
        (Printf.sprintf "random maxdeg=%d" d)
        (Tree_gen.random ~n ~max_degree:d ~seed)
        seed)
    [ (2000, 4, 6); (2000, 8, 7); (5000, 16, 8) ];
  Format.printf
    "@.Note: Luby runs in the anonymous PN model; CV+greedy uses identifiers@.";
  Format.printf
    "and a rooting given as input (computing a rooting costs Theta(diameter)).@."
