(* A guided tour of the paper's lower-bound proof, fully mechanized:

   1. the family Pi_Delta(a, x) and its diagrams (Figs. 2-4);
   2. Lemma 6: the engine's R(Pi) equals the claimed 8-label problem;
   3. Lemma 8: the symbolic certificate (any Delta) and the full
      Rbar(R(Pi)) computation (small Delta);
   4. Lemmas 12/15: zero-round impossibility;
   5. Lemma 13: the chain Pi_0 -> ... -> Pi_t, every link verified,
      and the resulting Omega(log Delta) port-numbering lower bound;
   6. Theorem 1 / Corollary 2: the lifted LOCAL-model bounds.

   Run with:  dune exec examples/lower_bound_tour.exe [Delta]         *)

let () =
  let delta =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 1024
  in
  let k = 0 in

  Format.printf "==== 1. The problem family ====@.";
  let p0 = { Core.Family.delta = 8; a = 6; x = 1 } in
  let pi = Core.Family.pi p0 in
  Format.printf "%a@." Relim.Problem.pp pi;
  Format.printf "@.edge diagram (Fig. 4):@.%a@.@." Relim.Diagram.pp
    (Relim.Diagram.edge_diagram pi);

  Format.printf "==== 2. Lemma 6 ====@.";
  let report = Core.Lemma6.verify p0 in
  Format.printf "R(Pi(8,6,1)) computed by the engine:@.%a@."
    Relim.Problem.pp report.computed;
  (match report.renaming with
  | Some pairs ->
      Format.printf "isomorphic to the paper's 8-label problem via:@.  %s@."
        (String.concat ", " (List.map (fun (a, b) -> a ^ " -> " ^ b) pairs));
      Format.printf "denotations match the paper's table: %b@.@."
        report.denotations_match
  | None -> Format.printf "UNEXPECTED: no renaming found@.");
  Format.printf "node diagram of R(Pi) (Fig. 5):@.%a@.@." Relim.Diagram.pp
    (Relim.Diagram.node_diagram (Core.Family.r_pi_claimed p0));

  Format.printf "==== 3. Lemma 8 ====@.";
  let sym = Core.Lemma8.verify_symbolic p0 in
  Format.printf "symbolic certificate at (8,6,1): %b@." (Core.Lemma8.all_ok sym);
  let sym_large =
    Core.Lemma8.verify_symbolic { Core.Family.delta = 1 lsl 16; a = 1 lsl 12; x = 9 }
  in
  Format.printf "symbolic certificate at Delta = 2^16: %b@."
    (Core.Lemma8.all_ok sym_large);
  let conc = Core.Lemma8.verify_concrete { Core.Family.delta = 4; a = 3; x = 1 } in
  Format.printf
    "full Rbar(R(Pi)) at Delta = 4: %d node configurations, all relax into Pi_rel: %b@.@."
    conc.boxes conc.all_relax;

  Format.printf "==== 4. Lemmas 12 and 15 ====@.";
  Format.printf "Pi(8,6,1) 0-round unsolvable: %b@."
    (Core.Zero_round.deterministic_unsolvable p0);
  (match Core.Zero_round.randomized_failure_bound p0 with
  | Some b -> Format.printf "randomized failure probability >= %g@.@." b
  | None -> ());

  Format.printf "==== 5. Lemma 13: the chain at Delta = %d ====@." delta;
  let chain = Core.Sequence.build ~delta ~x0:k in
  Format.printf "%a@." Core.Sequence.pp_chain chain;
  let check = Core.Sequence.verify chain in
  Format.printf "every link mechanically verified: %b@."
    (Core.Sequence.chain_ok check);
  let t = Core.Sequence.kods_pn_lower_bound ~delta ~k in
  Format.printf
    "=> %d-outdegree dominating sets need >= %d rounds in the deterministic PN model@.@."
    k t;

  Format.printf "==== 6. Theorem 1 / Corollary 2 ====@.";
  let deltaf = float_of_int delta in
  List.iter
    (fun n ->
      Format.printf
        "n = %8.0e: det >= min(logD, log_D n) = %5.1f   rand >= %5.1f   [prior FOCS'20 det: %5.1f]@."
        n
        (Core.Bounds.theorem1_det ~delta:deltaf ~n)
        (Core.Bounds.theorem1_rand ~delta:deltaf ~n)
        (Core.Bounds.bbo20_det ~delta:deltaf ~n))
    [ 1e6; 1e9; 1e15; 1e30 ];
  Format.printf
    "@.best Delta for Corollary 2 at n = 1e30: %g, giving sqrt(log n) = %.1f@."
    (Core.Bounds.best_delta_det ~n:1e30)
    (Core.Bounds.corollary2_det ~delta:(Core.Bounds.best_delta_det ~n:1e30) ~n:1e30)
