(* The adversary's workshop: mirrored-port instances, views, and
   exhaustive algorithm synthesis.

   Lemma 12's lower-bound instances give every edge the same port
   number on both endpoints (reusing the input edge coloring).  This
   example builds such instances, shows that symmetric nodes are
   indistinguishable at every radius, and then *proves* 0/1/2-round
   unsolvability of MIS and of the paper's Pi(a,x) on them by
   exhausting every deterministic PN algorithm.

   Run with:  dune exec examples/adversarial_instances.exe            *)

module Graph = Dsgraph.Graph

let mirrored_cycle n =
  let g = Graph.of_edges ~n (List.init n (fun i -> (i, (i + 1) mod n))) in
  let colors = Array.init n (fun e -> e mod 2) in
  match Dsgraph.Edge_coloring.mirrored_ports g colors with
  | Some gm -> (gm, colors)
  | None -> failwith "even cycles always mirror"

let () =
  Format.printf "== 1. The instance ==@.";
  let g, colors = mirrored_cycle 8 in
  Format.printf
    "mirrored 2-edge-colored C8: every edge has the same port on both sides@.";
  Format.printf "girth: %s (high girth relative to the radii we test)@.@."
    (match Graph.girth g with Some k -> string_of_int k | None -> "inf");

  Format.printf "== 2. Indistinguishability ==@.";
  List.iter
    (fun radius ->
      let distinct =
        Localsim.Views.count_distinct ~edge_colors:colors g ~radius
      in
      Format.printf "radius %d: %d distinct view(s) among %d nodes@." radius
        distinct (Graph.n g))
    [ 0; 1; 2; 3 ];
  Format.printf
    "one view class at every radius: any deterministic PN algorithm treats@.";
  Format.printf "all nodes identically — the heart of Lemma 12.@.@.";

  Format.printf "== 3. Exhausting all algorithms ==@.";
  let instance =
    { Localsim.Synthesis.graph = g; edge_colors = Some colors }
  in
  let test name problem =
    List.iter
      (fun radius ->
        let verdict =
          Localsim.Synthesis.search ~radius problem [ instance ]
        in
        Format.printf "%-12s T=%d: %s@." name radius
          (match verdict with
          | Localsim.Synthesis.Impossible -> "impossible"
          | Localsim.Synthesis.Algorithm _ -> "solvable"))
      [ 0; 1; 2 ]
  in
  test "MIS" (Relim.Parse.problem ~name:"MIS2" ~node:"M M\nP O" ~edge:"M [PO]\nO O");
  test "Pi(2,2,1)"
    (Relim.Parse.problem ~name:"Pi" ~node:"M X\nA A\nP O"
       ~edge:"M [PAOX]\nO [MAOX]\nP [MX]\nA [MOX]\nX [MPAOX]");
  test "trivial" (Relim.Parse.problem ~name:"t" ~node:"[AB] [AB]" ~edge:"[AB] [AB]");

  Format.printf "@.== 4. A Delta = 3 regular instance ==@.";
  let g3, colors3 =
    Dsgraph.Tree_gen.regular_bipartite ~delta:3 ~half:8 ~seed:1
  in
  (match Dsgraph.Edge_coloring.mirrored_ports g3 colors3 with
  | None -> Format.printf "unexpected: not mirrorable@."
  | Some gm ->
      let inst = { Localsim.Synthesis.graph = gm; edge_colors = Some colors3 } in
      Format.printf
        "3-regular bipartite union of 3 matchings (n = %d, girth %s):@."
        (Graph.n gm)
        (match Graph.girth gm with Some k -> string_of_int k | None -> "inf");
      List.iter
        (fun radius ->
          let verdict =
            Localsim.Synthesis.search ~radius (Lcl.Encodings.mis ~delta:3)
              [ inst ]
          in
          Format.printf "MIS (Delta=3) T=%d: %s@." radius
            (match verdict with
            | Localsim.Synthesis.Impossible -> "impossible"
            | Localsim.Synthesis.Algorithm _ -> "solvable"))
        [ 0; 1 ]);
  Format.printf
    "@.(The paper turns this finite intuition into the Omega(log Delta) chain@.";
  Format.printf
    "of Section 3; see examples/lower_bound_tour.ml for that machinery.)@."
