(* Bounded-outdegree dominating sets end to end:

   1. compute a k-outdegree dominating set with the Section-1.1 recipe
      (arbdefective coloring + color-class iteration);
   2. verify it with the centralized checker;
   3. run the Lemma 5 one-round conversion into a Pi_Delta(a, k)
      labeling and validate it in the formalism;
   4. chain Lemma 9 conversions down the lower-bound sequence on the
      same tree, validating each intermediate labeling — the
      constructive half of the paper's proof, executed on a real
      instance;
   5. print the upper/lower round-complexity picture for a sweep of k.

   Run with:  dune exec examples/dominating_sets.exe                  *)

module Graph = Dsgraph.Graph
module Tree_gen = Dsgraph.Tree_gen

let count sel = Array.fold_left (fun acc b -> acc + if b then 1 else 0) 0 sel

let () =
  let g = Tree_gen.balanced ~delta:16 ~depth:3 in
  let n = Graph.n g in
  let delta = Graph.max_degree g in
  Format.printf "balanced tree: n = %d, Delta = %d@.@." n delta;

  (* --- 1+2: the algorithm of Section 1.1 --- *)
  Format.printf "k-outdegree dominating sets via arbdefective coloring:@.";
  List.iter
    (fun k ->
      let r = Distalgo.Kods.via_arbdefective g ~k in
      assert (
        Dsgraph.Check.is_k_outdegree_dominating_set g ~k r.Distalgo.Kods.selected
          r.Distalgo.Kods.orientation);
      Format.printf
        "  k=%2d: |S| = %4d, palette = %2d colors, %2d selection rounds@."
        k
        (count r.Distalgo.Kods.selected)
        r.Distalgo.Kods.palette r.Distalgo.Kods.rounds)
    [ 0; 1; 2; 4; 8 ];

  (* --- 3: Lemma 5 --- *)
  let k = 1 in
  Format.printf "@.Lemma 5 conversion (k = %d):@." k;
  let r = Distalgo.Kods.via_arbdefective g ~k in
  let _, rounds =
    Core.Lemma5.convert g ~k ~a:delta r.Distalgo.Kods.selected
      r.Distalgo.Kods.orientation
  in
  Format.printf "  produced a valid Pi(Delta=%d, a=%d, x=%d) labeling in %d round@."
    delta delta k rounds;

  (* --- 4: walk the Lemma 13 chain with Lemma 9 conversions, on a
     wider tree so the chain has several links --- *)
  let g = Tree_gen.balanced ~delta:64 ~depth:2 in
  let delta = Graph.max_degree g in
  Format.printf
    "@.walking the lower-bound chain with 0-round conversions (Delta = %d, n = %d):@."
    delta (Graph.n g);
  let r = Distalgo.Kods.via_arbdefective g ~k in
  let labeling, _ =
    Core.Lemma5.convert g ~k ~a:delta r.Distalgo.Kods.selected
      r.Distalgo.Kods.orientation
  in
  let chain = Core.Sequence.build ~delta ~x0:k in
  let colors = Dsgraph.Edge_coloring.color_tree g in
  let rec walk labeling = function
    | cur :: (next :: _ as rest) ->
        let cur_params = { Core.Family.delta; a = cur.Core.Sequence.a; x = cur.Core.Sequence.x } in
        (* Pi(a, x) -> Pi+(a, x) -> Pi(target, x+1) -> relax to the
           canonical next parameters. *)
        let plus = Core.Lemma9.pi_to_pi_plus cur_params labeling in
        assert (
          Lcl.Labeling.is_valid ~boundary:`Free
            (Core.Family.pi_plus cur_params)
            plus);
        let converted = Core.Lemma9.convert cur_params g colors plus in
        let mid_params =
          { cur_params with
            Core.Family.a = Core.Lemma9.target_a ~a:cur_params.Core.Family.a ~x:cur_params.Core.Family.x;
            x = cur_params.Core.Family.x + 1 }
        in
        assert (
          Lcl.Labeling.is_valid ~boundary:`Free (Core.Family.pi mid_params) converted);
        let next_params = { Core.Family.delta; a = next.Core.Sequence.a; x = next.Core.Sequence.x } in
        let relaxed = Core.Lemma11.relax ~from_:mid_params ~to_:next_params converted in
        assert (
          Lcl.Labeling.is_valid ~boundary:`Free (Core.Family.pi next_params) relaxed);
        Format.printf
          "  Pi(a=%4d, x=%d) --Lemma9--> Pi(a=%4d, x=%d) --Lemma11--> Pi(a=%4d, x=%d)  [all valid]@."
          cur_params.Core.Family.a cur_params.Core.Family.x mid_params.Core.Family.a
          mid_params.Core.Family.x next_params.Core.Family.a next_params.Core.Family.x;
        walk relaxed rest
    | _ -> ()
  in
  walk labeling chain.Core.Sequence.steps;

  (* --- 5: the complexity picture --- *)
  Format.printf "@.upper vs lower bounds for k-outdegree dominating sets:@.";
  Format.printf "  (n = 10^9, evaluating the Section 1.1 formulas)@.";
  let nf = 1e9 in
  List.iter
    (fun dexp ->
      let d = float_of_int (1 lsl dexp) in
      Format.printf "  Delta = 2^%-2d:" dexp;
      List.iter
        (fun kf ->
          Format.printf "  k=%3.0f: [%5.1f, %7.1f]" kf
            (Core.Bounds.theorem1_det ~delta:d ~n:nf)
            (Core.Bounds.upper_kods ~delta:d ~k:kf ~n:nf))
        [ 1.; 4.; 16. ];
      Format.printf "@.")
    [ 4; 8; 12; 16 ];
  Format.printf "  ([lower, upper] round bounds; gap is the open question of Section 5)@."
