(* Quickstart: encode MIS in the round-elimination formalism, inspect
   its diagrams, apply one automatic speedup step, and check 0-round
   solvability — the library's core loop in ~40 lines.

   Run with:  dune exec examples/quickstart.exe *)

open Relim

let () =
  (* 1. Encode MIS for Delta = 3 (Section 2.2 of the paper). *)
  let mis =
    Parse.problem ~name:"MIS" ~node:"M M M\nP O O" ~edge:"M [PO]\nO O"
  in
  Format.printf "=== the MIS problem ===@.%a@.@." Problem.pp mis;

  (* 2. Label-strength diagrams (Figure 1: O is stronger than P). *)
  Format.printf "edge diagram (Fig. 1):@.%a@.@." Diagram.pp
    (Diagram.edge_diagram mis);

  (* 3. One automatic speedup step: R, then Rbar (Theorem 3).  The
     resulting problem is solvable exactly one round faster. *)
  let { Rounde.problem = r_mis; _ } = Rounde.r mis in
  Format.printf "=== R(MIS) ===@.%a@.@." Problem.pp r_mis;
  let { Rounde.problem = speedup; _ } = Rounde.rbar r_mis in
  Format.printf "=== Rbar(R(MIS)) — one round faster ===@.%a@.@."
    Problem.pp speedup;

  (* 4. Zero-round solvability in the port-numbering model. *)
  (match Zeroround.solvable_mirrored mis with
  | None -> Format.printf "MIS is NOT 0-round solvable (as expected).@."
  | Some w ->
      Format.printf "unexpected witness: %s@." (Multiset.to_string mis.alpha w));
  (match Zeroround.randomized_failure_bound mis with
  | Some b ->
      Format.printf
        "any randomized 0-round algorithm fails with probability >= %g@." b
  | None -> ());

  (* 5. The same encodings ship ready-made, for any Delta. *)
  let mis8 = Lcl.Encodings.mis ~delta:8 in
  Format.printf "@.library encoding for Delta = 8: %s@." mis8.Problem.name
