(* analyze_sweep — fold a relimsweep journal into the benchmark file
   and the experiment tables.

   Usage:
     analyze_sweep JOURNAL [--bench BENCH_relim.json] [--md] [--n N]

   Verifies the journal covers its declared grid completely, then
   produces (a) a bound-curve table juxtaposing Theorem 1 / Corollary 2
   lower bounds with Localsim-measured upper bounds per Δ, (b) an
   engine-comparison table (explicit vs zdd walls, certify overhead)
   and (c) per-cell verdicts — merged as the "sweep" section of the
   benchmark JSON (other sections are preserved untouched), or printed
   as markdown with --md.  Exit 1 on coverage gaps, 2 on malformed
   input.  No dependencies beyond the repo's own libraries: JSON goes
   through lib/store's parser. *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt

let read_lines path =
  if not (Sys.file_exists path) then fail "analyze_sweep: %s: no such file" path;
  let ic = open_in_bin path in
  let rec go acc =
    match input_line ic with
    | line -> go (if line = "" then acc else line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let j_member k j = Store.Json.member k j
let j_string k j = Option.bind (j_member k j) Store.Json.string_opt

(* ---- journal loading --------------------------------------------- *)

type journal = {
  grid : Sweep.grid;
  header : Store.Json.t;
  records : (string * Store.Json.t) list;  (* cell id -> record *)
}

let load path =
  let lines = read_lines path in
  match lines with
  | [] -> fail "analyze_sweep: %s is empty" path
  | first :: rest ->
      let parse line =
        match Store.Json.of_string line with
        | Ok j -> j
        | Error e -> fail "analyze_sweep: %s: bad JSON line: %s" path e
      in
      let header = parse first in
      if j_string "cell" header <> Some "@grid" then
        fail "analyze_sweep: %s does not start with an @grid header" path;
      let grid =
        match Sweep.grid_of_json header with
        | Ok g -> g
        | Error e -> fail "analyze_sweep: %s: %s" path e
      in
      let records =
        List.map
          (fun line ->
            let j = parse line in
            match j_string "cell" j with
            | Some id -> (id, j)
            | None -> fail "analyze_sweep: %s: record without a cell id" path)
          rest
      in
      { grid; header; records }

(* Every grid cell journaled exactly once, nothing extraneous. *)
let check_coverage { grid; records; _ } =
  let expected = List.map Sweep.cell_id (Sweep.cells grid) in
  let missing =
    List.filter (fun id -> not (List.mem_assoc id records)) expected
  in
  let extra =
    List.filter (fun (id, _) -> not (List.mem id expected)) records
  in
  let dup =
    let seen = Hashtbl.create 64 in
    List.filter
      (fun (id, _) ->
        let d = Hashtbl.mem seen id in
        Hashtbl.replace seen id ();
        d)
      records
  in
  List.iter (fun id -> Printf.eprintf "missing cell: %s\n" id) missing;
  List.iter (fun (id, _) -> Printf.eprintf "extraneous cell: %s\n" id) extra;
  List.iter (fun (id, _) -> Printf.eprintf "duplicated cell: %s\n" id) dup;
  if missing <> [] || extra <> [] || dup <> [] then begin
    Printf.eprintf "analyze_sweep: journal does not cover its grid\n";
    exit 1
  end

(* ---- section assembly -------------------------------------------- *)

let statuses records =
  let count s =
    List.length (List.filter (fun (_, j) -> j_string "status" j = Some s) records)
  in
  Store.Json.Obj
    [
      ("ok", Store.Json.Int (count "ok"));
      ("budget", Store.Json.Int (count "budget"));
      ("skipped", Store.Json.Int (count "skipped"));
    ]

let cell_rows records =
  let row (id, j) =
    let get path_opt = Option.value ~default:Store.Json.Null path_opt in
    let sub obj k =
      match j_member obj j with Some o -> j_member k o | None -> None
    in
    Store.Json.Obj
      [
        ("cell", Store.Json.String id);
        ("status", get (j_member "status" j));
        ("budget", get (j_member "budget" j));
        ("fixed_point", get (sub "fixed_point" "verdict"));
        ("autopilot", get (sub "autopilot" "verdict"));
        ("wall_s", get (j_member "wall_s" j));
      ]
  in
  Store.Json.List (List.map row records)

(* Lower bounds (Theorem 1 / Corollary 2 / the PN chain length) next
   to rounds actually measured by the simulator on a random tree with
   that Δ — the "bound curve" of ROADMAP item 4. *)
let bound_curve ~n grid =
  let deltas = List.sort_uniq compare grid.Sweep.deltas in
  let row delta =
    let df = float_of_int delta and nf = float_of_int n in
    let measured =
      if delta < 2 then []
      else begin
        let g = Dsgraph.Tree_gen.random ~n ~max_degree:delta ~seed:42 in
        let _, luby_rounds = Distalgo.Luby.run ~seed:42 g in
        let _, cv_rounds = Distalgo.Kods.mis_on_tree g ~root:0 in
        [
          ("luby_rounds", Store.Json.Int luby_rounds);
          ("cv_mis_rounds", Store.Json.Int cv_rounds);
        ]
      end
    in
    Store.Json.Obj
      ([
         ("delta", Store.Json.Int delta);
         ("n", Store.Json.Int n);
         ( "thm1_det",
           Store.Json.Float (Core.Bounds.theorem1_det ~delta:df ~n:nf) );
         ( "thm1_rand",
           Store.Json.Float (Core.Bounds.theorem1_rand ~delta:df ~n:nf) );
         ( "cor2_det",
           Store.Json.Float (Core.Bounds.corollary2_det ~delta:df ~n:nf) );
         ( "chain_pn",
           Store.Json.Int
             (if delta < 2 then 0
              else Core.Sequence.kods_pn_lower_bound ~delta ~k:0) );
         ( "upper_mis",
           Store.Json.Float (Core.Bounds.upper_mis ~delta:df ~n:nf) );
       ]
      @ measured)
  in
  Store.Json.List (List.map row deltas)

(* Wall-clock comparisons across engine configurations of the same
   problem cell.  Statuses ride along so a budget-tripped side is
   never mistaken for a fast one. *)
let engine_comparison records =
  let find id = List.assoc_opt id records in
  let bases =
    List.sort_uniq compare
      (List.filter_map
         (fun (id, _) ->
           match String.index_opt id '|' with
           | Some i -> Some (String.sub id 0 (i - 1))
           | None -> None)
         records)
  in
  let rows =
    List.filter_map
      (fun base ->
        let explicit = find (base ^ " | explicit dom1 plain") in
        let zdd = find (base ^ " | zdd dom1 plain") in
        let certify = find (base ^ " | explicit dom1 certify") in
        match explicit with
        | None -> None
        | Some e ->
            let side name r =
              match r with
              | None -> []
              | Some j ->
                  [
                    ( name ^ "_status",
                      Option.value ~default:Store.Json.Null
                        (j_member "status" j) );
                    ( name ^ "_time_s",
                      Option.value ~default:Store.Json.Null
                        (j_member "wall_s" j) );
                  ]
            in
            Some
              (Store.Json.Obj
                 (( "cell", Store.Json.String base )
                 :: (side "explicit" (Some e) @ side "zdd" zdd
                   @ side "certify" certify))))
      bases
  in
  Store.Json.List rows

let sweep_section ~n ~journal_path j =
  let complete = true (* check_coverage exits otherwise *) in
  Store.Json.Obj
    [
      ("journal", Store.Json.String (Filename.basename journal_path));
      ("grid", j.header);
      ("complete", Store.Json.Bool complete);
      ("statuses", statuses j.records);
      ("cells", cell_rows j.records);
      ("bound_curve", bound_curve ~n j.grid);
      ("engine_comparison", engine_comparison j.records);
    ]

(* Same merge idiom as the autopilot/zdd bench sections: preserve every
   other section byte-for-byte, replace only "sweep". *)
let merge_bench ~bench section =
  let existing =
    if Sys.file_exists bench then begin
      let ic = open_in_bin bench in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Store.Json.of_string s with
      | Ok (Store.Json.Obj members) ->
          List.filter (fun (k, _) -> k <> "sweep") members
      | Ok _ | Error _ -> []
    end
    else []
  in
  let members =
    if existing = [] then [ ("bench", Store.Json.String "relim") ]
    else existing
  in
  let oc = open_out bench in
  output_string oc
    (Store.Json.to_string (Store.Json.Obj (members @ [ ("sweep", section) ])));
  output_char oc '\n';
  close_out oc

(* ---- markdown ----------------------------------------------------- *)

let md_of_section section =
  let get k = Option.value ~default:Store.Json.Null (j_member k section) in
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let escape s =
    (* Cell ids contain "|", the markdown column separator. *)
    String.concat "\\|" (String.split_on_char '|' s)
  in
  let fcell = function
    | Store.Json.Null -> "—"
    | Store.Json.String s -> escape s
    | Store.Json.Int i -> string_of_int i
    | Store.Json.Float f -> Printf.sprintf "%.3f" f
    | Store.Json.Bool b -> string_of_bool b
    | j -> escape (Store.Json.to_string j)
  in
  (match get "statuses" with
  | Store.Json.Obj kvs ->
      pf "Grid: %s cells — %s.\n\n"
        (match j_member "grid" section with
        | Some g ->
            fcell (Option.value ~default:Store.Json.Null
                     (j_member "expected_cells" g))
        | None -> "?")
        (String.concat ", "
           (List.map (fun (k, v) -> Printf.sprintf "%s %s" (fcell v) k) kvs))
  | _ -> ());
  let table title cols rows =
    pf "%s\n\n" title;
    pf "| %s |\n" (String.concat " | " (List.map fst cols));
    pf "|%s\n" (String.concat "" (List.map (fun _ -> "---|") cols));
    List.iter
      (fun row ->
        pf "| %s |\n"
          (String.concat " | "
             (List.map
                (fun (_, k) ->
                  fcell
                    (Option.value ~default:Store.Json.Null (j_member k row)))
                cols)))
      rows;
    pf "\n"
  in
  (match get "bound_curve" with
  | Store.Json.List rows ->
      table "Bound curve (lower bounds vs measured rounds, hidden constants = 1):"
        [
          ("Δ", "delta"); ("n", "n"); ("Thm 1 det", "thm1_det");
          ("Thm 1 rand", "thm1_rand"); ("Cor 2 det", "cor2_det");
          ("PN chain t(Δ,0)", "chain_pn"); ("O(Δ+log* n)", "upper_mis");
          ("Luby (measured)", "luby_rounds");
          ("CV-MIS (measured)", "cv_mis_rounds");
        ]
        rows
  | _ -> ());
  (match get "engine_comparison" with
  | Store.Json.List rows ->
      table "Engine comparison (seconds; statuses guard against comparing a budget-tripped side):"
        [
          ("cell", "cell");
          ("explicit", "explicit_time_s"); ("status", "explicit_status");
          ("zdd", "zdd_time_s"); ("status", "zdd_status");
          ("certify", "certify_time_s"); ("status", "certify_status");
        ]
        rows
  | _ -> ());
  (match get "cells" with
  | Store.Json.List rows ->
      table "Per-cell verdicts:"
        [
          ("cell", "cell"); ("status", "status"); ("budget", "budget");
          ("fixed point", "fixed_point"); ("autopilot", "autopilot");
        ]
        rows
  | _ -> ());
  Buffer.contents buf

(* ---- driver ------------------------------------------------------- *)

let () =
  let journal = ref None in
  let bench = ref None in
  let md = ref false in
  let n = ref 512 in
  let rec parse = function
    | [] -> ()
    | "--bench" :: path :: rest ->
        bench := Some path;
        parse rest
    | "--md" :: rest ->
        md := true;
        parse rest
    | "--n" :: v :: rest ->
        (match int_of_string_opt v with
        | Some i when i > 1 -> n := i
        | _ -> fail "analyze_sweep: --n expects an integer > 1");
        parse rest
    | arg :: rest when !journal = None && String.length arg > 0
                       && arg.[0] <> '-' ->
        journal := Some arg;
        parse rest
    | arg :: _ -> fail "analyze_sweep: unexpected argument %s" arg
  in
  parse (List.tl (Array.to_list Sys.argv));
  let journal_path =
    match !journal with
    | Some p -> p
    | None ->
        fail "usage: analyze_sweep JOURNAL [--bench FILE] [--md] [--n N]"
  in
  let j = load journal_path in
  check_coverage j;
  let section = sweep_section ~n:!n ~journal_path j in
  (match !bench with
  | Some bench ->
      merge_bench ~bench section;
      Printf.printf "analyze_sweep: merged \"sweep\" section (%d cells) into %s\n"
        (List.length j.records) bench
  | None -> ());
  if !md then print_string (md_of_section section);
  if !bench = None && not !md then
    print_string (Store.Json.to_string section ^ "\n")
