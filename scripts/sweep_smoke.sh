#!/bin/sh
# End-to-end smoke for the sweep harness, driving the real binaries:
#
#   1. fixed-clock reference run over a small grid crossing both
#      engines and the certifier;
#   2. deterministic interruption (--max-cells) + resume: journal
#      byte-identical to the reference;
#   3. real kill -9 mid-sweep + resume: byte-identical (if the sweep
#      finished before the kill landed, the resume is a no-op — the
#      check holds either way, so the step is not timing-sensitive);
#   4. torn trailing line (truncated mid-record) + resume:
#      byte-identical;
#   5. re-running the completed sweep appends nothing;
#   6. real-clock run -> analyze_sweep merges a "sweep" section into a
#      bench file -> validate_json --require-sweep accepts it.
set -eu

RELIMSWEEP=${RELIMSWEEP:-_build/default/bin/relimsweep.exe}
ANALYZE=${ANALYZE:-_build/default/scripts/analyze_sweep.exe}
VALIDATE=${VALIDATE:-_build/default/bench/validate_json.exe}
WORK=$(mktemp -d)
SPID=""
trap 'if [ -n "$SPID" ]; then kill -9 "$SPID" 2>/dev/null || true; fi; rm -rf "$WORK"' EXIT

say() { echo "sweep-smoke: $*"; }

# Small but representative: three families, both engines, certifier on
# and off, one autopilot step so every cell is cheap.
GRID="--families mis,so,col --deltas 2 --label-counts 2 \
  --engine-zdd both --certify both --ap-steps 1 --ap-beam 2"
REF="$WORK/ref.jsonl"
JRN="$WORK/sweep.jsonl"

# 1. Reference run under a fixed clock (byte-determinism baseline).
"$RELIMSWEEP" --out "$REF" --fixed-clock -q $GRID
CELLS=$(($(wc -l < "$REF") - 1))
say "reference: $CELLS cells journaled"

# 2. Interrupt deterministically after 3 cells, then resume.
if "$RELIMSWEEP" --out "$JRN" --fixed-clock -q --max-cells 3 $GRID; then
  echo "sweep-smoke: FAIL: interrupted sweep exited 0" >&2
  exit 1
fi
"$RELIMSWEEP" --out "$JRN" --fixed-clock -q $GRID
cmp "$REF" "$JRN"
say "interrupt after 3 cells + resume: byte-identical"

# 3. Real mid-sweep kill: start fresh, kill -9 shortly after launch,
#    resume.  Whether the kill lands between cells, mid-write, or
#    after completion, the resumed journal must equal the reference.
rm -f "$JRN"
"$RELIMSWEEP" --out "$JRN" --fixed-clock -q $GRID &
SPID=$!
sleep 0.4
kill -9 "$SPID" 2>/dev/null || true
wait "$SPID" 2>/dev/null || true
SPID=""
"$RELIMSWEEP" --out "$JRN" --fixed-clock -q $GRID
cmp "$REF" "$JRN"
say "kill -9 mid-sweep + resume: byte-identical"

# 4. Tear the trailing record mid-line, as an interrupted write would.
SZ=$(wc -c < "$JRN")
dd if="$JRN" of="$JRN.torn" bs=1 "count=$((SZ - 37))" 2>/dev/null
mv "$JRN.torn" "$JRN"
"$RELIMSWEEP" --out "$JRN" --fixed-clock -q $GRID | tee "$WORK/resume.out"
grep -q "recovered damaged tail" "$WORK/resume.out"
cmp "$REF" "$JRN"
say "torn trailing line detected, re-run, byte-identical"

# 5. Completed sweep re-run is a no-op.
"$RELIMSWEEP" --out "$JRN" --fixed-clock -q $GRID | grep -q "(${CELLS} served, 0 ran)"
cmp "$REF" "$JRN"
say "completed sweep re-run appends nothing"

# 6. Real clock -> analysis -> merged bench section -> validation.
rm -f "$JRN"
"$RELIMSWEEP" --out "$JRN" -q $GRID
"$ANALYZE" "$JRN" --bench "$WORK/bench.json" > /dev/null
"$VALIDATE" --require-sweep "$WORK/bench.json"
say "analyze_sweep + validate_json --require-sweep: OK"

say "OK"
