#!/bin/sh
# End-to-end smoke for roundelimd and its certificate-gated result
# store, driving the real binary over a Unix socket:
#
#   1. cold mixed batch (step + fixed-point) against an empty store;
#   2. garbage input answered with structured errors, daemon survives;
#   3. kill -9 the daemon, truncate a persisted entry on disk;
#   4. validate-store reports the damage (--strict exits non-zero);
#   5. restart over the damaged store: the intact entry is served warm,
#      the damaged one is recomputed — responses byte-identical to the
#      cold run modulo the "cached" flag;
#   6. clean shutdown through the protocol.
set -eu

ROUNDELIMD=${ROUNDELIMD:-_build/default/bin/roundelimd.exe}
WORK=$(mktemp -d)
DPID=""
trap 'if [ -n "$DPID" ]; then kill -9 "$DPID" 2>/dev/null || true; fi; rm -rf "$WORK"' EXIT
SOCK="$WORK/d.sock"
STORE="$WORK/store"

say() { echo "daemond-smoke: $*"; }

REQ_STEP='{"id":1,"op":"step","problem":"problem MIS\ndelta 3\nnode:\nM^3\nP O^2\nedge:\nO^2\nM [PO]\n"}'
REQ_FP='{"id":2,"op":"fixed-point","problem":"problem SO\ndelta 3\nnode:\nO [IO]^2\nedge:\nO I\n"}'

"$ROUNDELIMD" serve --socket "$SOCK" --store "$STORE" > "$WORK/serve1.log" &
DPID=$!

# 1. Cold batch (the client retries while the daemon binds).
printf '%s\n%s\n' "$REQ_STEP" "$REQ_FP" \
  | "$ROUNDELIMD" client --socket "$SOCK" > "$WORK/cold.out"
grep -q '"cached":false' "$WORK/cold.out"
say "cold batch served ($(wc -l < "$WORK/cold.out") responses)"

# 2. Garbage comes back as structured errors (client exits non-zero),
#    and the daemon keeps serving.
if printf 'this is not json\n{"id":3,"op":\n' \
  | "$ROUNDELIMD" client --socket "$SOCK" > "$WORK/garbage.out"; then
  echo "daemond-smoke: FAIL: garbage reported as success" >&2
  exit 1
fi
test "$(grep -c '"ok":false' "$WORK/garbage.out")" = 2
printf '{"id":4,"op":"ping"}\n' \
  | "$ROUNDELIMD" client --socket "$SOCK" | grep -q '"pong":true'
say "garbage rejected with structured errors; daemon still alive"

# 3. Crash without cleanup, then damage the persisted step entry the
#    way an interrupted write would.
kill -9 "$DPID"
wait "$DPID" 2>/dev/null || true
DPID=""
ENT=$(ls "$STORE"/entries/step-*.ent | head -n 1)
SZ=$(wc -c < "$ENT")
dd if="$ENT" of="$ENT.half" bs=1 "count=$((SZ / 2))" 2>/dev/null
mv "$ENT.half" "$ENT"
say "killed the daemon and truncated $(basename "$ENT")"

# 4. The damage is visible to the offline validator, and --strict turns
#    it into a non-zero exit.
"$ROUNDELIMD" validate-store --store "$STORE" > "$WORK/validate.out"
grep -q '2 entries, 1 valid, 1 rejected' "$WORK/validate.out"
if "$ROUNDELIMD" validate-store --store "$STORE" --strict > /dev/null; then
  echo "daemond-smoke: FAIL: --strict passed a corrupted store" >&2
  exit 1
fi
say "validate-store rejects the damaged entry (--strict exits non-zero)"

# 5. Restart over the damaged store: rejected entry recomputed, intact
#    entry served warm; bytes equal to the cold run modulo the flag.
"$ROUNDELIMD" serve --socket "$SOCK" --store "$STORE" > "$WORK/serve2.log" &
DPID=$!
printf '%s\n%s\n' "$REQ_STEP" "$REQ_FP" \
  | "$ROUNDELIMD" client --socket "$SOCK" > "$WORK/warm.out"
grep -q '"cached":true' "$WORK/warm.out"
sed 's/"cached":true/"cached":false/' "$WORK/warm.out" > "$WORK/warm.norm"
cmp "$WORK/cold.out" "$WORK/warm.norm"
say "warm responses byte-identical to cold (modulo the cache flag)"

# 6. Clean shutdown through the protocol.
printf '{"id":9,"op":"shutdown"}\n' \
  | "$ROUNDELIMD" client --socket "$SOCK" | grep -q '"stopping":true'
wait "$DPID" 2>/dev/null || true
DPID=""
say "OK"
