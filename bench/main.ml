(* Benchmark / reproduction harness.

   One section per paper artifact (figure, lemma, theorem or claim),
   following the per-experiment index of DESIGN.md; EXPERIMENTS.md
   records expected-vs-produced for each section.  The final section is
   a Bechamel micro-benchmark suite for the engine and the simulator.

   Run with:  dune exec bench/main.exe            (everything)
              dune exec bench/main.exe -- fig1 lemma13   (a selection) *)

module Graph = Dsgraph.Graph
module Tree_gen = Dsgraph.Tree_gen

let section id title = Format.printf "@.===== [%s] %s =====@." id title

let result fmt = Format.printf fmt

let count sel = Array.fold_left (fun acc b -> acc + if b then 1 else 0) 0 sel

(* ------------------------------------------------------------------ *)
(* F1: Figure 1 — the MIS edge diagram                                 *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  section "F1" "Figure 1: edge diagram of the MIS encoding";
  let mis = Lcl.Encodings.mis ~delta:3 in
  let d = Relim.Diagram.edge_diagram mis in
  result "computed Hasse edges (weaker -> stronger):@.%a@." Relim.Diagram.pp d;
  result "paper: single relation P -> O, M unrelated.@."

(* ------------------------------------------------------------------ *)
(* F2/F3: Figures 2 and 3 — example instance and labeling of the       *)
(* family (a = x = 2, Delta = 4)                                       *)
(* ------------------------------------------------------------------ *)

let fig23 () =
  section "F2/F3" "Figures 2-3: a valid Pi_4(2,2) labeling on a Delta=4 tree";
  let g = Tree_gen.balanced ~delta:4 ~depth:3 in
  let delta = 4 and k = 2 in
  let r = Distalgo.Kods.via_arbdefective g ~k in
  let labeling, _ =
    Core.Lemma5.convert g ~k ~a:2 r.Distalgo.Kods.selected
      r.Distalgo.Kods.orientation
  in
  let params = { Core.Family.delta; a = 2; x = 2 } in
  let valid =
    Lcl.Labeling.is_valid ~boundary:`Extendable (Core.Family.pi params) labeling
  in
  result "tree: n = %d, Delta = %d; labeling valid for Pi(2,2): %b@."
    (Graph.n g) delta valid;
  let type1 = count r.Distalgo.Kods.selected in
  result
    "type-1 (dominating set) nodes: %d; type-2/3 nodes: %d — every node\n\
     dominated, induced edges oriented with outdegree <= %d (paper Fig. 3).@."
    type1
    (Graph.n g - type1)
    k

(* ------------------------------------------------------------------ *)
(* F4: Figure 4 — edge diagram of Pi_Delta(a, x)                       *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  section "F4" "Figure 4: edge diagram of Pi_Delta(a,x)";
  let pi = Core.Family.pi { delta = 8; a = 6; x = 1 } in
  result "computed:@.%a@." Relim.Diagram.pp (Relim.Diagram.edge_diagram pi);
  result "paper: P -> A -> O -> X and M -> X (X strongest).@."

(* ------------------------------------------------------------------ *)
(* F5: Figure 5 — node diagram of R(Pi_Delta(a, x))                    *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  section "F5" "Figure 5: node diagram of R(Pi_Delta(a,x))";
  let claimed = Core.Family.r_pi_claimed { delta = 8; a = 6; x = 1 } in
  result "computed (exact expansion):@.%a@." Relim.Diagram.pp
    (Relim.Diagram.node_diagram claimed);
  result
    "paper: two chains X -> M -> U -> B -> Q and X -> O -> [U,A], A -> [B,P] -> Q.@."

(* ------------------------------------------------------------------ *)
(* L6: Lemma 6 verification sweep                                      *)
(* ------------------------------------------------------------------ *)

let lemma6 () =
  section "L6" "Lemma 6: R(Pi_Delta(a,x)) equals the claimed 8-label problem";
  let total = ref 0 and ok = ref 0 in
  for delta = 3 to 9 do
    for x = 0 to delta - 2 do
      for a = x + 2 to delta do
        incr total;
        if Core.Lemma6.holds { Core.Family.delta; a; x } then incr ok
      done
    done
  done;
  result "exhaustive 3 <= Delta <= 9: %d/%d parameter triples verified@." !ok
    !total;
  let spot =
    [ (64, 32, 3); (512, 300, 5); (4096, 1000, 9); (32768, 4096, 12) ]
  in
  List.iter
    (fun (delta, a, x) ->
      result "spot check Delta=%-6d a=%-5d x=%-3d : %b@." delta a x
        (Core.Lemma6.holds { Core.Family.delta; a; x }))
    spot

(* ------------------------------------------------------------------ *)
(* L8: Lemma 8 verification                                            *)
(* ------------------------------------------------------------------ *)

let lemma8 () =
  section "L8" "Lemma 8: Pi+ is one round easier (symbolic + concrete)";
  let total = ref 0 and ok = ref 0 in
  for delta = 3 to 10 do
    for x = 0 to delta - 2 do
      for a = x + 2 to delta do
        incr total;
        if
          Core.Lemma8.all_ok
            (Core.Lemma8.verify_symbolic { Core.Family.delta; a; x })
        then incr ok
      done
    done
  done;
  result "symbolic certificate, exhaustive 3 <= Delta <= 10: %d/%d@." !ok !total;
  List.iter
    (fun (delta, a, x) ->
      result "symbolic at Delta = 2^%d: %b@."
        (int_of_float (Float.round (Core.Bounds.log2 (float_of_int delta))))
        (Core.Lemma8.all_ok
           (Core.Lemma8.verify_symbolic { Core.Family.delta; a; x })))
    [ (1 lsl 10, 1 lsl 7, 5); (1 lsl 16, 1 lsl 10, 9); (1 lsl 20, 1 lsl 12, 13) ];
  List.iter
    (fun (delta, a, x) ->
      let r = Core.Lemma8.verify_concrete { Core.Family.delta; a; x } in
      result
        "full Rbar(R(Pi)) at (Delta=%d, a=%d, x=%d): %d node configurations, all relax: %b@."
        delta a x r.boxes r.all_relax)
    [ (3, 3, 1); (4, 3, 1); (4, 4, 2); (5, 4, 2) ]

(* ------------------------------------------------------------------ *)
(* L9: Lemma 9 — the edge-coloring conversion, executed                *)
(* ------------------------------------------------------------------ *)

let lemma9 () =
  section "L9" "Lemma 9: 0-round conversion via the input Delta-edge coloring";
  List.iter
    (fun (delta, depth, k) ->
      let g = Tree_gen.balanced ~delta ~depth in
      let r = Distalgo.Kods.via_arbdefective g ~k in
      let labeling, _ =
        Core.Lemma5.convert g ~k ~a:delta r.Distalgo.Kods.selected
          r.Distalgo.Kods.orientation
      in
      let params = { Core.Family.delta; a = delta; x = k } in
      let colors = Dsgraph.Edge_coloring.color_tree g in
      let plus = Core.Lemma9.pi_to_pi_plus params labeling in
      let converted = Core.Lemma9.convert params g colors plus in
      let target =
        { Core.Family.delta;
          a = Core.Lemma9.target_a ~a:delta ~x:k;
          x = k + 1 }
      in
      let valid =
        Lcl.Labeling.is_valid ~boundary:`Free (Core.Family.pi target) converted
      in
      result
        "Delta=%2d depth=%d k=%d (n=%5d): Pi(%d,%d) -> Pi(%d,%d) conversion valid: %b@."
        delta depth k (Graph.n g) delta k target.Core.Family.a
        target.Core.Family.x valid)
    [ (8, 3, 0); (8, 3, 1); (12, 3, 2); (16, 3, 1); (24, 2, 3) ]

(* ------------------------------------------------------------------ *)
(* L12/L15: zero-round impossibility                                   *)
(* ------------------------------------------------------------------ *)

let lemma12_15 () =
  section "L12/L15" "Lemmas 12 and 15: 0-round impossibility in the PN model";
  result "Delta    a     x  | det-unsolvable  rand-failure-bound  >= 1/Delta^8@.";
  List.iter
    (fun (delta, a, x) ->
      let params = { Core.Family.delta; a; x } in
      let det = Core.Zero_round.deterministic_unsolvable params in
      match Core.Zero_round.randomized_failure_bound params with
      | Some b ->
          result "%-8d %-5d %-2d |      %b        %10.3g        %b@." delta a x
            det b
            (b >= 1. /. (float_of_int delta ** 8.))
      | None -> result "%-8d %-5d %-2d |      %b        (solvable)@." delta a x det)
    [ (4, 2, 1); (8, 6, 1); (16, 8, 2); (64, 32, 4); (1024, 128, 7);
      (* boundary cases where 0 rounds suffice: *)
      (4, 2, 4); (4, 0, 1) ]

(* ------------------------------------------------------------------ *)
(* L13: the chain-length table                                         *)
(* ------------------------------------------------------------------ *)

let lemma13 () =
  section "L13" "Lemma 13: lower-bound chains, length vs Delta (the log Delta law)";
  result "Delta        t(k=0)  t(k=1)  t(k=4)  t(k=16)  log2(Delta)  t/log2(Delta)@.";
  List.iter
    (fun e ->
      let delta = 1 lsl e in
      let t k = Core.Sequence.kods_pn_lower_bound ~delta ~k in
      result "2^%-10d %5d  %5d  %5d  %6d  %10d  %12.3f@." e (t 0) (t 1) (t 4)
        (t 16) e
        (float_of_int (t 0) /. float_of_int e))
    [ 4; 6; 8; 10; 12; 16; 20; 24; 30; 40; 50 ];
  result "@.mechanical verification of every link (engine + certificates):@.";
  List.iter
    (fun delta ->
      let chain = Core.Sequence.build ~delta ~x0:0 in
      let check = Core.Sequence.verify chain in
      result "Delta = %-6d: %d steps, verified = %b@." delta
        (Core.Sequence.length chain)
        (Core.Sequence.chain_ok check))
    [ 16; 64; 256; 1024; 4096; 16384 ]

(* ------------------------------------------------------------------ *)
(* T1: Theorem 1 / Corollary 2 bound tables                            *)
(* ------------------------------------------------------------------ *)

let theorem1 () =
  section "T1" "Theorem 1 and Corollary 2: the lifted LOCAL-model bounds";
  result "lower bounds (constants = 1), deterministic / randomized:@.";
  result "  n        Delta     Thm1-det  Thm1-rand   Cor2-det  Cor2-rand@.";
  List.iter
    (fun (n, dexp) ->
      let delta = 2. ** float_of_int dexp in
      result "  %8.0e 2^%-7d %8.2f  %8.2f  %9.2f  %9.2f@." n dexp
        (Core.Bounds.theorem1_det ~delta ~n)
        (Core.Bounds.theorem1_rand ~delta ~n)
        (Core.Bounds.corollary2_det ~delta ~n)
        (Core.Bounds.corollary2_rand ~delta ~n))
    [ (1e6, 4); (1e6, 10); (1e9, 6); (1e9, 16); (1e18, 8); (1e18, 24) ];
  result "@.the Corollary 2 sweet spot Delta* = 2^sqrt(log n):@.";
  List.iter
    (fun n ->
      let d = Core.Bounds.best_delta_det ~n in
      result "  n = %8.0e: Delta* = %10.0f, bound = sqrt(log n) = %6.2f@." n d
        (Core.Bounds.corollary2_det ~delta:d ~n))
    [ 1e6; 1e12; 1e30 ]

(* ------------------------------------------------------------------ *)
(* C1: comparison with prior lower bounds                              *)
(* ------------------------------------------------------------------ *)

let comparison () =
  section "C1" "Improvement over prior work (Section 1.1)";
  result
    "this paper: Omega(log D) vs FOCS'20 [5]: Omega(log D / loglog D) — in trees@.";
  result "  Delta      this-det   BBO20-det   ratio@.";
  List.iter
    (fun e ->
      let delta = 2. ** float_of_int e in
      let n = 1e300 in
      (* so the Delta term is the minimum *)
      let ours = Core.Bounds.corollary2_det ~delta ~n in
      let prior = Core.Bounds.bbo20_det ~delta ~n in
      result "  2^%-8d %9.1f  %9.1f  %7.2f@." e ours prior (ours /. prior))
    [ 8; 12; 16; 24; 32; 48 ];
  result
    "@.general graphs [4,15] (b-matching, b = 1) still stronger in Delta, weaker in n:@.";
  List.iter
    (fun (dexp, n) ->
      let delta = 2. ** float_of_int dexp in
      result
        "  Delta = 2^%-3d n = %8.0e : trees (ours) %6.1f vs general-graphs %8.1f@."
        dexp n
        (Core.Bounds.theorem1_det ~delta ~n)
        (Core.Bounds.bbhors_det ~delta ~b:1. ~n))
    [ (4, 1e9); (10, 1e9); (16, 1e9) ]

(* ------------------------------------------------------------------ *)
(* C2: measured upper bounds vs the lower-bound curve                  *)
(* ------------------------------------------------------------------ *)

let upper_vs_lower () =
  section "C2" "Measured algorithm rounds vs the paper's lower bound";
  result
    "trees, measured on the simulator (selection stage for kODS; CV = full schedule):@.";
  result
    "  n      Delta | Luby  CV+greedy | kODS rounds (k=1, k=2, k=4) | Thm1-det lower@.";
  List.iter
    (fun (n, max_degree, seed) ->
      let g = Tree_gen.random ~n ~max_degree ~seed in
      let delta = Graph.max_degree g in
      let _, luby = Distalgo.Luby.run ~seed g in
      let _, cv = Distalgo.Kods.mis_on_tree g ~root:0 in
      let kods k = (Distalgo.Kods.via_arbdefective g ~k).Distalgo.Kods.rounds in
      result "  %-6d %-4d | %4d  %9d | %10d %4d %4d          | %14.1f@." n delta
        luby cv (kods 1) (kods 2) (kods 4)
        (Core.Bounds.theorem1_det ~delta:(float_of_int delta)
           ~n:(float_of_int n)))
    [ (1000, 4, 1); (1000, 8, 2); (4000, 8, 3); (4000, 16, 4); (16000, 16, 5) ];
  result
    "@.fully distributed MIS on general graphs (Linial O(Delta^2+log* n) + selection):@.";
  result "  graph              n    Delta | rounds (Linial fixpoint dominates)@.";
  List.iter
    (fun (name, g) ->
      let _, rounds = Distalgo.Kods.mis_via_linial g in
      result "  %-16s %5d  %3d  | %6d@." name (Graph.n g) (Graph.max_degree g)
        rounds)
    [
      ("cycle", Graph.of_edges ~n:500 (List.init 500 (fun i -> (i, (i + 1) mod 500))));
      ("random tree D=4", Tree_gen.random ~n:2000 ~max_degree:4 ~seed:21);
      ("random tree D=8", Tree_gen.random ~n:2000 ~max_degree:8 ~seed:22);
      ("4-reg bipartite", fst (Tree_gen.regular_bipartite ~delta:4 ~half:250 ~seed:23));
    ];
  result
    "@.the Delta/k palette law (generic algorithm, worst-case palette, balanced tree Delta=48):@.";
  let g = Tree_gen.balanced ~delta:48 ~depth:2 in
  result "  k    | palette  selection-rounds  (expect ~ Delta/(k+1) + 1)@.";
  List.iter
    (fun k ->
      let r = Distalgo.Kods.via_round_robin g ~k ~root:0 in
      result "  %-4d | %7d  %16d@." k r.Distalgo.Kods.palette
        r.Distalgo.Kods.rounds)
    [ 1; 2; 3; 5; 7; 11; 15; 23; 47 ];
  result
    "@.shape check: kODS selection rounds shrink as 1/k, matching the@.";
  result "O(Delta/k + log* n) upper bound of Section 1.1.@."

(* ------------------------------------------------------------------ *)
(* A1: the label-growth ablation                                       *)
(* ------------------------------------------------------------------ *)

let ablation_growth () =
  section "A1" "Ablation: naive round elimination blows up; the family stays at 5 labels";
  let mis = Lcl.Encodings.mis ~delta:3 in
  let trace = Core.Growth.naive_iteration ~steps:4 ~max_labels:60 mis in
  result "naive speedup steps on MIS (Delta=3): labels %s%s@."
    (String.concat " -> " (List.map string_of_int trace.label_counts))
    (match trace.stopped with
    | `Exhausted_budget -> " -> (budget exhausted: combinatorial blow-up)"
    | `Completed -> "");
  List.iter
    (fun { Core.Growth.labels; node_lines; edge_lines } ->
      result "  description: %2d labels, %3d node lines, %3d edge lines@."
        labels node_lines edge_lines)
    trace.Core.Growth.sizes;
  let r_counts = Core.Growth.r_label_counts ~steps:2 ~max_labels:60 mis in
  result "intermediate R(.) label counts: %s@."
    (String.concat " -> " (List.map string_of_int r_counts));
  let chain = Core.Sequence.build ~delta:4096 ~x0:0 in
  let labels =
    List.map
      (fun { Core.Sequence.a; x; _ } ->
        Relim.Problem.label_count (Core.Family.pi { Core.Family.delta = 4096; a; x }))
      chain.Core.Sequence.steps
  in
  result "the paper's chain at Delta = 4096: labels per step: %s@."
    (String.concat ", " (List.map string_of_int labels));
  result
    "(the FOCS'20 authors believed no constant-label sequence existed; this is the paper's refutation)@."

(* ------------------------------------------------------------------ *)
(* A2: Lemma 5 pipeline                                                *)
(* ------------------------------------------------------------------ *)

let lemma5_pipeline () =
  section "A2" "Lemma 5: k-outdegree dominating set -> Pi_Delta(a,k) in one round";
  List.iter
    (fun (n, max_degree, k, seed) ->
      let g = Tree_gen.random ~n ~max_degree ~seed in
      let delta = Graph.max_degree g in
      let r = Distalgo.Kods.via_arbdefective g ~k in
      let _, rounds =
        Core.Lemma5.convert g ~k ~a:delta r.Distalgo.Kods.selected
          r.Distalgo.Kods.orientation
      in
      result
        "n=%-6d Delta=%-3d k=%d: |S|=%-5d -> valid Pi(%d,%d) labeling in %d round@."
        n delta k
        (count r.Distalgo.Kods.selected)
        delta k rounds)
    [ (500, 6, 0, 1); (2000, 8, 1, 2); (2000, 12, 2, 3); (8000, 16, 4, 4) ];
  result
    "@.k-degree variant (the corollary: orient induced edges arbitrarily):@.";
  List.iter
    (fun (delta, depth, k) ->
      let g = Tree_gen.balanced ~delta ~depth in
      let labeling, rounds = Core.Kdeg.pipeline g ~k in
      let valid =
        Lcl.Labeling.is_valid ~boundary:`Extendable
          (Core.Family.pi { Core.Family.delta; a = delta; x = k })
          labeling
      in
      result "Delta=%-3d k=%d: k-degree DS -> oriented -> Pi(%d,%d) valid: %b (%d selection rounds)@."
        delta k delta k valid rounds)
    [ (6, 3, 1); (8, 3, 2); (12, 2, 3) ]

(* ------------------------------------------------------------------ *)
(* L15E: Monte-Carlo check of the Lemma 15 failure bound               *)
(* ------------------------------------------------------------------ *)

(* Lemma 15's adversary: both endpoints of a color-i edge see port i.
   Any randomized 0-round algorithm is a distribution over (allowed
   configuration, assignment of its labels to ports).  For the natural
   uniform algorithm we estimate, by sampling, the probability that a
   single edge receives an incompatible label pair, and compare with
   the proven lower bound 1/(3Delta)^2 — the estimate must dominate it. *)
let lemma15_mc () =
  section "L15E"
    "Monte-Carlo: single-edge failure of the uniform random 0-round algorithm";
  let trials = 200_000 in
  result "uniform over (configuration, port assignment); %d trials per row@."
    trials;
  result "Delta  a   x  | estimated edge-failure  proven bound 1/(3D)^2  ok@.";
  List.iter
    (fun (delta, a, x) ->
      let p = Core.Family.pi { Core.Family.delta; a; x } in
      let rng = Random.State.make [| delta; a; x; 0xfa11 |] in
      (* Expand node configurations (the family's are concrete). *)
      let configs =
        List.map
          (fun line ->
            match Relim.Line.to_multiset line with
            | Some m -> Array.of_list (Relim.Multiset.to_list m)
            | None -> failwith "family lines are concrete")
          (Relim.Constr.lines p.node)
      in
      let configs = Array.of_list configs in
      let compat =
        let n = Relim.Alphabet.size p.alpha in
        let matrix = Array.make_matrix n n false in
        List.iter
          (fun line ->
            Relim.Line.expand line (fun m ->
                match Relim.Multiset.to_list m with
                | [ u; v ] ->
                    matrix.(u).(v) <- true;
                    matrix.(v).(u) <- true
                | _ -> assert false))
          (Relim.Constr.lines p.edge);
        matrix
      in
      let sample_port_label () =
        (* One node's random output at a fixed port (port 0 wlog, by
           symmetry of the uniform assignment). *)
        let config = configs.(Random.State.int rng (Array.length configs)) in
        config.(Random.State.int rng (Array.length config))
      in
      let failures = ref 0 in
      for _ = 1 to trials do
        let lu = sample_port_label () and lv = sample_port_label () in
        if not compat.(lu).(lv) then incr failures
      done;
      let estimate = float_of_int !failures /. float_of_int trials in
      let bound = 1. /. (9. *. float_of_int (delta * delta)) in
      result "%-6d %-3d %-2d | %20.5f  %20.5f  %b@." delta a x estimate bound
        (estimate >= bound))
    [ (4, 3, 1); (8, 6, 1); (16, 10, 2); (32, 16, 3) ]

(* ------------------------------------------------------------------ *)
(* T14: Theorem 14 certificates                                        *)
(* ------------------------------------------------------------------ *)

let theorem14 () =
  section "T14" "Theorem 14: lift certificates (PN chain -> LOCAL bound)";
  List.iter
    (fun (delta, k) ->
      let cert = Core.Theorem14.certify ~delta ~k in
      result
        "Delta=%-6d k=%d: t=%2d, links=%b, labels<=D^2=%b, Lemma15-bounds=%b  => valid=%b@."
        delta k cert.Core.Theorem14.t cert.Core.Theorem14.links_verified
        cert.Core.Theorem14.label_budget_ok cert.Core.Theorem14.failure_bounds_ok
        (Core.Theorem14.valid cert))
    [ (256, 0); (1024, 0); (1024, 2); (4096, 0); (16384, 1); (65536, 4) ];
  result "@.master reports (Paper.verify — everything at once):@.";
  List.iter
    (fun (delta, k) ->
      let report = Core.Paper.verify ~delta ~k () in
      result "  Delta=%-6d k=%d: all OK = %b (chain %d, constructive pipeline %b)@."
        delta k (Core.Paper.all_ok report) report.Core.Paper.chain_length
        report.Core.Paper.constructive_pipeline_ok)
    [ (256, 0); (4096, 2) ];
  let cert = Core.Theorem14.certify ~delta:1024 ~k:0 in
  result "@.conclusions at Delta = 1024, k = 0:@.";
  List.iter
    (fun n ->
      result "  n = %8.0e: det >= %5.2f  rand >= %5.2f@." n
        (Core.Theorem14.conclusion_det cert ~n)
        (Core.Theorem14.conclusion_rand cert ~n))
    [ 1e6; 1e9; 1e15; 1e30 ]

(* ------------------------------------------------------------------ *)
(* FP: the fixed-point technique (Section 1.2 taxonomy)                *)
(* ------------------------------------------------------------------ *)

let fixed_points () =
  section "FP"
    "Section 1.2 taxonomy: the fixed-point technique on sinkless orientation";
  let so = Lcl.Encodings.sinkless_orientation ~delta:3 in
  (match Relim.Fixedpoint.detect so with
  | Relim.Fixedpoint.Reaches_fixed_point (steps, fp) ->
      result "sinkless orientation stabilizes after %d step(s):@.%a@." steps
        Relim.Problem.pp fp;
      Option.iter (result "=> %s@.")
        (Relim.Fixedpoint.lower_bound_statement
           (Relim.Fixedpoint.Reaches_fixed_point (steps, fp)))
  | Relim.Fixedpoint.Fixed_point (fp, _) ->
      result "sinkless orientation is itself a fixed point:@.%a@."
        Relim.Problem.pp fp
  | Relim.Fixedpoint.No_fixed_point_found _ ->
      result "UNEXPECTED: no fixed point found@.");
  result
    "@.MIS, by contrast, admits no small fixed point — the naive iteration@.";
  result
    "blows up (section A1), which is why the paper needs the Pi(a,x) family.@."

(* ------------------------------------------------------------------ *)
(* SYN: exhaustive algorithm synthesis on the Lemma-12 adversary       *)
(* ------------------------------------------------------------------ *)

let synthesis () =
  section "SYN"
    "Machine-checked Lemma 12: exhausting ALL T-round algorithms on mirrored instances";
  let mirrored_cycle n =
    let g = Graph.of_edges ~n (List.init n (fun i -> (i, (i + 1) mod n))) in
    let colors = Array.init n (fun e -> e mod 2) in
    match Dsgraph.Edge_coloring.mirrored_ports g colors with
    | Some gm -> { Localsim.Synthesis.graph = gm; edge_colors = Some colors }
    | None -> failwith "mirroring failed"
  in
  let instance = mirrored_cycle 8 in
  let report name problem =
    List.iter
      (fun radius ->
        let verdict =
          Localsim.Synthesis.search ~radius problem [ instance ]
        in
        result "%-14s T = %d: %s@." name radius
          (match verdict with
          | Localsim.Synthesis.Impossible ->
              "IMPOSSIBLE (no deterministic PN algorithm exists)"
          | Localsim.Synthesis.Algorithm rows ->
              Printf.sprintf "solvable (%d view classes)" (List.length rows)))
      [ 0; 1; 2 ]
  in
  result
    "instance: mirrored-port 2-edge-colored C8 (2-regular, high girth, one view class):@.";
  report "trivial" (Relim.Parse.problem ~name:"t" ~node:"A A" ~edge:"A A");
  report "MIS"
    (Relim.Parse.problem ~name:"MIS2" ~node:"M M\nP O" ~edge:"M [PO]\nO O");
  report "Pi(2,2,0)"
    (Relim.Parse.problem ~name:"Pi" ~node:"M M\nA A\nP O"
       ~edge:"M [PAOX]\nO [MAOX]\nP [MX]\nA [MOX]\nX [MPAOX]");
  (* Δ = 3 regular instances: union of 3 random matchings, colors =
     matching indices, mirrored ports at every node. *)
  let g3, colors3 = Tree_gen.regular_bipartite ~delta:3 ~half:8 ~seed:11 in
  (match Dsgraph.Edge_coloring.mirrored_ports g3 colors3 with
  | None -> result "UNEXPECTED: Delta=3 instance not mirrorable@."
  | Some gm ->
      let inst3 = { Localsim.Synthesis.graph = gm; edge_colors = Some colors3 } in
      result
        "@.instance: mirrored 3-regular bipartite (n = %d, girth %s):@."
        (Graph.n gm)
        (match Graph.girth gm with
        | Some girth -> string_of_int girth
        | None -> "inf");
      List.iter
        (fun radius ->
          let verdict =
            Localsim.Synthesis.search ~radius (Lcl.Encodings.mis ~delta:3)
              [ inst3 ]
          in
          result "MIS (Delta=3)  T = %d: %s@." radius
            (match verdict with
            | Localsim.Synthesis.Impossible -> "IMPOSSIBLE"
            | Localsim.Synthesis.Algorithm rows ->
                Printf.sprintf "solvable (%d view classes)" (List.length rows)))
        [ 0; 1 ]);
  result
    "@.the paper proves T = 0 impossibility (Lemma 12); the brute force extends@.";
  result
    "it to every small T on the symmetric instance — views never diverge.@."

(* ------------------------------------------------------------------ *)
(* OP5: Section 5 — how far can THIS family go?                        *)
(* ------------------------------------------------------------------ *)

let open_problems () =
  section "OP5"
    "Section 5: the family's best possible chain is Theta(log Delta), not Omega(Delta)";
  result
    "canonical chain (Lemma 13, a_i = Delta/8^i) vs exact recurrence a' = (a-2x-1)/2:@.";
  result "  Delta     canonical-t  optimal-t  optimal/log2(Delta)  Delta (conjectured)@.";
  List.iter
    (fun e ->
      let delta = 1 lsl e in
      let t_canon = Core.Sequence.kods_pn_lower_bound ~delta ~k:0 in
      let t_opt = Core.Sequence.optimal_length ~delta ~x0:0 in
      result "  2^%-7d %11d  %9d  %19.3f  %d@." e t_canon t_opt
        (float_of_int t_opt /. float_of_int e)
        delta)
    [ 6; 10; 14; 20; 30; 40 ];
  (* Verify a couple of optimal chains with the full certificates. *)
  List.iter
    (fun delta ->
      let chain = Core.Sequence.optimal ~delta ~x0:0 in
      let check = Core.Sequence.verify chain in
      result "optimal chain at Delta=%-5d: %d steps, verified = %b@." delta
        (Core.Sequence.length chain)
        (Core.Sequence.chain_ok check))
    [ 256; 4096 ];
  result
    "@.even with the exact recurrence the chain caps at ~log2(Delta) steps: a@.";
  result
    "halves per step because every speedup costs a factor-2 loss in owned edges.@.";
  result
    "Closing the gap to the conjectured Omega(Delta) (Section 5) provably needs a@.";
  result "different problem family, not better bookkeeping in this one.@."

(* ------------------------------------------------------------------ *)
(* RS: ruling sets (the other MIS relaxation, Sections 1 and 5)        *)
(* ------------------------------------------------------------------ *)

let ruling_sets () =
  section "RS" "Ruling sets: the domination-side relaxation of MIS";
  result
    "(beta+1, beta)-ruling sets via Luby MIS on G^beta; rounds scaled by beta:@.";
  result "  n     Delta | beta  |S|    rounds-in-G@.";
  List.iter
    (fun (n, max_degree, beta, seed) ->
      let g = Tree_gen.random ~n ~max_degree ~seed in
      let sel, rounds = Distalgo.Ruling_set.via_power_mis g ~beta ~seed in
      result "  %-5d %-4d  | %-4d %-5d  %6d@." n (Graph.max_degree g) beta
        (count sel) rounds)
    [ (800, 6, 1, 3); (800, 6, 2, 3); (800, 6, 3, 3); (2000, 10, 2, 4) ];
  result
    "@.|S| shrinks as beta grows (sparser sets suffice), matching the (2, r)@.";
  result
    "discussion of Section 1; ruling-set lower bounds remain open (Section 5).@."

(* ------------------------------------------------------------------ *)
(* V: views — the indistinguishability behind Lemma 12                 *)
(* ------------------------------------------------------------------ *)

let views () =
  section "V" "Radius-T views under the Lemma 12 adversary";
  let g = Tree_gen.balanced ~delta:4 ~depth:5 in
  let colors = Dsgraph.Edge_coloring.color_tree g in
  (match Dsgraph.Edge_coloring.mirrored_ports g colors with
  | Some _ -> result "(mirrored ports constructed)@."
  | None ->
      result
        "(finite trees have leaves, so full mirroring is impossible — the@.";
      result
        " adversary lives on the infinite tree; we measure view collisions on@.";
      result " the colored finite tree instead)@.");
  result
    "distinct radius-T views among the %d nodes of a balanced Delta=4 tree (with colors):@."
    (Graph.n g);
  List.iter
    (fun radius ->
      let distinct = Localsim.Views.count_distinct ~edge_colors:colors g ~radius in
      let classes = Localsim.Views.classes ~edge_colors:colors g ~radius in
      let biggest = match classes with c :: _ -> List.length c | [] -> 0 in
      result "  T = %d: %4d distinct views, largest class %4d nodes@." radius
        distinct biggest)
    [ 0; 1; 2; 3 ];
  result
    "@.nodes sharing a view are forced to answer identically by ANY T-round PN@.";
  result
    "algorithm — with hundreds of interior nodes per class, symmetric outputs@.";
  result "break M/A/P self-incompatibility exactly as in Lemma 12.@."

(* ------------------------------------------------------------------ *)
(* CG: CONGEST accounting                                              *)
(* ------------------------------------------------------------------ *)

let congest () =
  section "CG" "CONGEST accounting: all implemented algorithms use small messages";
  let g = Tree_gen.random ~n:2000 ~max_degree:8 ~seed:9 in
  let log2i x = int_of_float (ceil (Core.Bounds.log2 (float_of_int x))) in
  (* Luby: a status (2 bits) + a 60-bit draw. *)
  let luby =
    Localsim.Run.run_measured
      ~bits:(fun (m : Distalgo.Luby.message) ->
        ignore m;
        62)
      ~ids:Localsim.Run.Anonymous ~seed:9 g
      ~inputs:(Localsim.Run.no_inputs g)
      Distalgo.Luby.algo
  in
  result "Luby MIS       : max message %3d bits over %7d messages (O(log n) = %d ok)@."
    luby.Localsim.Run.max_message_bits luby.Localsim.Run.total_messages
    (log2i (Graph.n g));
  (* Cole–Vishkin: the current color, initially an id < n. *)
  let cv =
    Localsim.Run.run_measured
      ~bits:(fun (color : int) -> max 1 (log2i (color + 2)))
      g
      ~inputs:(Distalgo.Rooted.parent_ports g ~root:0)
      Distalgo.Cole_vishkin.algo
  in
  result "Cole-Vishkin   : max message %3d bits over %7d messages@."
    cv.Localsim.Run.max_message_bits cv.Localsim.Run.total_messages;
  (* Color-class selection: 1 bit. *)
  let colors, _ = Distalgo.Cole_vishkin.run g ~root:0 in
  let palette = 1 + Array.fold_left max 0 colors in
  let sel =
    Localsim.Run.run_measured
      ~bits:(fun (m : Distalgo.Color_to_ds.message) ->
        ignore m;
        1)
      ~ids:Localsim.Run.Anonymous g
      ~inputs:
        (Array.map (fun c -> { Distalgo.Color_to_ds.color = c; palette }) colors)
      Distalgo.Color_to_ds.algo
  in
  result "color-selection: max message %3d bits over %7d messages@."
    sel.Localsim.Run.max_message_bits sel.Localsim.Run.total_messages;
  result
    "@.=> the upper-bound pipelines are CONGEST algorithms, and the paper's@.";
  result "lower bounds hold in CONGEST a fortiori (Section 2.1).@."

(* ------------------------------------------------------------------ *)
(* P1: Bechamel micro-benchmarks                                       *)
(* ------------------------------------------------------------------ *)

let bechamel_suite () =
  section "P1" "Bechamel micro-benchmarks (ns per operation, OLS estimate)";
  let open Bechamel in
  let pi8 = Core.Family.pi { delta = 8; a = 6; x = 1 } in
  let pi1k = Core.Family.pi { delta = 1024; a = 512; x = 3 } in
  let mis3 = Lcl.Encodings.mis ~delta:3 in
  let r_mis3 = (Relim.Rounde.r mis3).Relim.Rounde.problem in
  let g1k = Tree_gen.random ~n:1000 ~max_degree:8 ~seed:7 in
  let colors1k = Dsgraph.Edge_coloring.color_tree g1k in
  let luby_mis, _ = Distalgo.Luby.run ~seed:3 g1k in
  let mis_labeling = Lcl.Encodings.mis_labeling g1k luby_mis in
  let mis_problem = Lcl.Encodings.mis ~delta:(Graph.max_degree g1k) in
  let tests =
    [
      Test.make ~name:"R(Pi) Delta=8"
        (Staged.stage (fun () -> ignore (Relim.Rounde.r pi8)));
      Test.make ~name:"R(Pi) Delta=1024"
        (Staged.stage (fun () -> ignore (Relim.Rounde.r pi1k)));
      Test.make ~name:"Rbar(R(MIS)) Delta=3"
        (Staged.stage (fun () -> ignore (Relim.Rounde.rbar r_mis3)));
      Test.make ~name:"lemma6 verify Delta=1024"
        (Staged.stage (fun () ->
             ignore (Core.Lemma6.holds { Core.Family.delta = 1024; a = 512; x = 3 })));
      Test.make ~name:"lemma8 symbolic Delta=2^16"
        (Staged.stage (fun () ->
             ignore
               (Core.Lemma8.verify_symbolic
                  { Core.Family.delta = 65536; a = 4096; x = 9 })));
      Test.make ~name:"chain build+verify Delta=4096"
        (Staged.stage (fun () ->
             let chain = Core.Sequence.build ~delta:4096 ~x0:0 in
             ignore (Core.Sequence.verify chain)));
      Test.make ~name:"Luby MIS n=1000"
        (Staged.stage (fun () -> ignore (Distalgo.Luby.run ~seed:3 g1k)));
      Test.make ~name:"edge-color tree n=1000"
        (Staged.stage (fun () -> ignore (Dsgraph.Edge_coloring.color_tree g1k)));
      Test.make ~name:"validate MIS labeling n=1000"
        (Staged.stage (fun () ->
             ignore
               (Lcl.Labeling.is_valid ~boundary:`Extendable mis_problem
                  mis_labeling)));
      Test.make ~name:"proper-edge-coloring check n=1000"
        (Staged.stage (fun () ->
             ignore (Dsgraph.Edge_coloring.is_proper g1k colors1k)));
      Test.make ~name:"radius-2 view classes n=485"
        (Staged.stage
           (let tree = Tree_gen.balanced ~delta:4 ~depth:5 in
            fun () -> ignore (Localsim.Views.classes tree ~radius:2)));
      Test.make ~name:"synthesis MIS T=1 mirrored C8"
        (Staged.stage
           (let cyc =
              Graph.of_edges ~n:8 (List.init 8 (fun i -> (i, (i + 1) mod 8)))
            in
            let colors = Array.init 8 (fun e -> e mod 2) in
            let inst =
              match Dsgraph.Edge_coloring.mirrored_ports cyc colors with
              | Some gm ->
                  { Localsim.Synthesis.graph = gm; edge_colors = Some colors }
              | None -> assert false
            in
            let mis2 =
              Relim.Parse.problem ~name:"MIS2" ~node:"M M\nP O"
                ~edge:"M [PO]\nO O"
            in
            fun () ->
              ignore (Localsim.Synthesis.search ~radius:1 mis2 [ inst ])));
      Test.make ~name:"lemma8 concrete Delta=4"
        (Staged.stage (fun () ->
             ignore
               (Core.Lemma8.verify_concrete
                  { Core.Family.delta = 4; a = 3; x = 1 })));
    ]
  in
  let grouped = Test.make_grouped ~name:"bench" tests in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
  List.iter
    (fun (name, o) ->
      match Analyze.OLS.estimates o with
      | Some [ ns ] -> result "  %-40s %12.0f ns/op@." name ns
      | Some _ | None -> result "  %-40s (no estimate)@." name)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* P2: engine per-step statistics, dumped to BENCH_relim.json          *)
(* ------------------------------------------------------------------ *)

(* One row per R̄∘R application: label counts, wall time, and the
   engine's internal counters (closed sets visited by R, join
   candidates, right-closed sets enumerated, boxes emitted/pruned and
   the dominance-filter breakdown on the R̄ side). *)
type step_row = {
  step : int;
  labels_in : int;
  labels_out : int;
  wall_s : float;
  r_time_s : float;
  rbar_time_s : float;
  maxbox_time_s : float;
  closures_visited : int;
  closure_joins : int;
  closure_revisits : int;
  rc_sets : int;
  boxes_emitted : int;
  boxes_pruned : int;
  box_dom_checks : int;
  box_dom_cheap_skips : int;
  box_transport_calls : int;
  transport_cache_hits : int;
}

let measure_steps ?pool name p ~max_steps =
  result "%s:@." name;
  let rows = ref [] in
  let rec go q i =
    if i <= max_steps then begin
      Relim.Rounde.reset_stats ();
      let t0 = Unix.gettimeofday () in
      match Relim.Rounde.step ?pool q with
      | { Relim.Rounde.problem = next; _ } ->
          let wall_s = Unix.gettimeofday () -. t0 in
          let s = Relim.Rounde.stats in
          let row =
            {
              step = i;
              labels_in = Relim.Problem.label_count q;
              labels_out = Relim.Problem.label_count next;
              wall_s;
              r_time_s = s.Relim.Rounde.r_time_s;
              rbar_time_s = s.Relim.Rounde.rbar_time_s;
              maxbox_time_s = s.Relim.Rounde.maxbox_time_s;
              closures_visited = s.Relim.Rounde.closures_visited;
              closure_joins = s.Relim.Rounde.closure_joins;
              closure_revisits = s.Relim.Rounde.closure_revisits;
              rc_sets = s.Relim.Rounde.rc_sets;
              boxes_emitted = s.Relim.Rounde.boxes_emitted;
              boxes_pruned = s.Relim.Rounde.boxes_pruned;
              box_dom_checks = s.Relim.Rounde.box_dom_checks;
              box_dom_cheap_skips = s.Relim.Rounde.box_dom_cheap_skips;
              box_transport_calls = s.Relim.Rounde.box_transport_calls;
              transport_cache_hits = s.Relim.Rounde.transport_cache_hits;
            }
          in
          rows := row :: !rows;
          result
            "  step %d: %2d -> %2d labels  %9.3f ms wall (R %.3f ms, Rbar %.3f \
             ms, maxbox %.3f ms)  %d closed sets (%d joins), %d rc sets, %d \
             boxes (+%d pruned), dominance %d pairs (%d cheap skips, %d \
             transport, %d memo hits)@."
            i row.labels_in row.labels_out (1e3 *. wall_s)
            (1e3 *. row.r_time_s) (1e3 *. row.rbar_time_s)
            (1e3 *. row.maxbox_time_s) row.closures_visited row.closure_joins
            row.rc_sets row.boxes_emitted row.boxes_pruned row.box_dom_checks
            row.box_dom_cheap_skips row.box_transport_calls
            row.transport_cache_hits;
          go (Relim.Simplify.normalize next) (i + 1)
      | exception Relim.Budget.Budget_exceeded { budget; limit } ->
          result "  step %d: stopped — %s@." i
            (Relim.Budget.message ~budget ~limit)
      | exception Failure msg ->
          result "  step %d: stopped — %s@." i msg
    end
  in
  go p 1;
  (name, List.rev !rows)

(* ------------------------------------------------------------------ *)
(* P3: roundelimd load generator                                       *)
(* ------------------------------------------------------------------ *)

(* Thousands of pipelined mixed requests against an in-process daemon,
   cold (empty store: every distinct problem runs the engine and is
   admitted with its certificate) and warm (fresh daemon over the
   populated store: first occurrences re-validate and serve from
   disk).  Responses are checked for success and for warm/cold byte
   identity modulo the "cached" flag. *)
let daemon_bench () =
  let base =
    let f = Filename.temp_file "relimd-bench" "" in
    Sys.remove f;
    Unix.mkdir f 0o700;
    f
  in
  let sock = Filename.concat base "d.sock" in
  let store_dir = Filename.concat base "store" in
  let text p = Relim.Serialize.to_string p in
  let trivial = Relim.Parse.problem ~name:"t" ~node:"A A" ~edge:"A A" in
  let presets =
    [
      ("step", text (Lcl.Encodings.mis ~delta:3));
      ("step", text (Lcl.Encodings.sinkless_orientation ~delta:3));
      ("step", text (Core.Family.pi { Core.Family.delta = 4; a = 3; x = 1 }));
      ("step", text trivial);
      ("fixed-point", text (Lcl.Encodings.sinkless_orientation ~delta:3));
      ("fixed-point", text trivial);
    ]
  in
  let total = 2048 and conns_n = 32 in
  let request_line i =
    let op, problem = List.nth presets (i mod List.length presets) in
    Store.Json.(
      to_string
        (Obj
           [
             ("id", Int i); ("op", String op); ("problem", String problem);
           ]))
  in
  let spawn () =
    let stop = Atomic.make false in
    let config =
      {
        Store.Daemon.default_config with
        Store.Daemon.listen = [ Store.Daemon.Unix_socket sock ];
        store_dir = Some store_dir;
      }
    in
    ( Domain.spawn (fun () ->
          Store.Daemon.serve ~stop:(fun () -> Atomic.get stop) config),
      stop )
  in
  let connect () =
    match Store.Client.connect ~retries:200 (`Unix sock) with
    | Ok c -> c
    | Error m -> failwith ("daemon bench: cannot connect: " ^ m)
  in
  let run_workload () =
    let conns = Array.init conns_n (fun _ -> connect ()) in
    let responses = Array.make total "" in
    let t0 = Unix.gettimeofday () in
    for i = 0 to total - 1 do
      match Store.Client.send_line conns.(i mod conns_n) (request_line i) with
      | Ok () -> ()
      | Error m -> failwith ("daemon bench: send: " ^ m)
    done;
    for i = 0 to total - 1 do
      match Store.Client.recv_line conns.(i mod conns_n) with
      | Ok r -> responses.(i) <- r
      | Error m -> failwith ("daemon bench: recv: " ^ m)
    done;
    let wall_s = Unix.gettimeofday () -. t0 in
    Array.iter Store.Client.close conns;
    let contains sub s =
      let n = String.length sub and m = String.length s in
      let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
      go 0
    in
    let ok =
      Array.fold_left
        (fun acc r -> if contains "\"ok\":true" r then acc + 1 else acc)
        0 responses
    in
    (wall_s, ok, responses)
  in
  (* Store counters as the daemon reports them over the wire. *)
  let store_counters c =
    match Store.Client.request c {|{"id":"stats","op":"stats"}|} with
    | Error m -> failwith ("daemon bench: stats: " ^ m)
    | Ok line -> (
        match Store.Json.of_string line with
        | Error m -> failwith ("daemon bench: stats response: " ^ m)
        | Ok j ->
            let get k =
              Option.bind (Store.Json.member "result" j) (fun r ->
                  Option.bind (Store.Json.member "store" r) (fun s ->
                      Option.bind (Store.Json.member k s) Store.Json.int_opt))
              |> Option.value ~default:(-1)
            in
            (get "hits", get "misses", get "admitted"))
  in
  let lifetime () =
    let d, _stop = spawn () in
    let wall_s, ok, responses = run_workload () in
    let c = connect () in
    let hits, misses, admitted = store_counters c in
    (match Store.Client.request c {|{"id":"bye","op":"shutdown"}|} with
    | Ok _ -> ()
    | Error m -> failwith ("daemon bench: shutdown: " ^ m));
    Store.Client.close c;
    Domain.join d;
    (wall_s, ok, responses, (hits, misses, admitted))
  in
  let cold_wall, cold_ok, cold_resp, (cold_hits, cold_misses, cold_admitted) =
    lifetime ()
  in
  let warm_wall, warm_ok, warm_resp, (warm_hits, warm_misses, warm_admitted) =
    lifetime ()
  in
  (* Byte identity modulo the cache flag. *)
  let uncache s =
    let sub = "\"cached\":true" and rep = "\"cached\":false" in
    let n = String.length sub in
    let rec find i =
      if i + n > String.length s then None
      else if String.sub s i n = sub then Some i
      else find (i + 1)
    in
    match find 0 with
    | Some i ->
        String.sub s 0 i ^ rep ^ String.sub s (i + n) (String.length s - i - n)
    | None -> s
  in
  let byte_identical = ref true in
  Array.iteri
    (fun i cold ->
      if uncache cold <> uncache warm_resp.(i) then byte_identical := false)
    cold_resp;
  let rate wall = float_of_int total /. wall in
  result
    "@.roundelimd load generator: %d requests (%d distinct problems) over %d \
     connections@."
    total (List.length presets) conns_n;
  result
    "  cold store: %8.3f ms wall  %9.0f req/s  %d ok  store %d hits / %d \
     misses / %d admitted@."
    (1e3 *. cold_wall) (rate cold_wall) cold_ok cold_hits cold_misses
    cold_admitted;
  result
    "  warm store: %8.3f ms wall  %9.0f req/s  %d ok  store %d hits / %d \
     misses / %d admitted@."
    (1e3 *. warm_wall) (rate warm_wall) warm_ok warm_hits warm_misses
    warm_admitted;
  result
    "  warm speedup %.2fx; warm byte-identical to cold (modulo cache flag): \
     %b@."
    (cold_wall /. warm_wall) !byte_identical;
  Printf.sprintf
    "  \"daemon\": { \"requests\": %d, \"connections\": %d, \
     \"distinct_problems\": %d,\n\
    \    \"cold\": { \"wall_s\": %.6f, \"req_per_s\": %.1f, \"ok\": %d, \
     \"store_hits\": %d, \"store_misses\": %d, \"store_admitted\": %d },\n\
    \    \"warm\": { \"wall_s\": %.6f, \"req_per_s\": %.1f, \"ok\": %d, \
     \"store_hits\": %d, \"store_misses\": %d, \"store_admitted\": %d },\n\
    \    \"warm_speedup\": %.3f, \"warm_byte_identical\": %b },\n"
    total conns_n (List.length presets) cold_wall (rate cold_wall) cold_ok
    cold_hits cold_misses cold_admitted warm_wall (rate warm_wall) warm_ok
    warm_hits warm_misses warm_admitted (cold_wall /. warm_wall)
    !byte_identical

let relim_perf () =
  section "P2" "Engine per-step statistics (R closed-set enumeration + memoized driver)";
  let mis = measure_steps "MIS (Delta=3)" (Lcl.Encodings.mis ~delta:3) ~max_steps:4 in
  let so_rows =
    measure_steps "SO (Delta=3)"
      (Lcl.Encodings.sinkless_orientation ~delta:3)
      ~max_steps:2
  in
  let pi4 =
    measure_steps "Pi(4,3,1)"
      (Core.Family.pi { Core.Family.delta = 4; a = 3; x = 1 })
      ~max_steps:2
  in
  let pi5 =
    measure_steps "Pi(5,4,2)"
      (Core.Family.pi { Core.Family.delta = 5; a = 4; x = 2 })
      ~max_steps:2
  in
  let problems = [ mis; so_rows; pi4; pi5 ] in
  (* A 30-label problem far beyond the seed's hard caps (rbar refused
     > 20 labels, right_closed_sets > 22): the node diagram is a chain,
     so the order-ideal enumeration sees just 30 right-closed sets and
     R̄ finishes in microseconds where the subset filter would have
     visited 2^30 subsets. *)
  let chain_n = 30 in
  let chain =
    let name i = Printf.sprintf "l%d" i in
    let names = List.init chain_n name in
    let all = String.concat " " names in
    let node =
      String.concat "\n"
        (List.init chain_n (fun i ->
             (* single-name brackets would be scanned as char labels *)
             match List.filteri (fun j _ -> i + j >= chain_n - 1) names with
             | [ only ] -> Printf.sprintf "%s %s" (name i) only
             | partners ->
                 Printf.sprintf "%s [%s]" (name i)
                   (String.concat " " partners)))
    in
    Relim.Parse.problem
      ~name:(Printf.sprintf "chain%d" chain_n)
      ~node
      ~edge:(Printf.sprintf "[%s] [%s]" all all)
  in
  Relim.Rounde.reset_stats ();
  let t0 = Unix.gettimeofday () in
  let { Relim.Rounde.problem = chain_out; _ } = Relim.Rounde.rbar chain in
  let chain_wall_s = Unix.gettimeofday () -. t0 in
  let cs = Relim.Rounde.stats in
  let chain_boxes =
    List.length (Relim.Constr.lines chain_out.Relim.Problem.node)
  in
  result
    "@.Rbar beyond the seed caps: chain%d (%d labels)  %9.3f ms wall  %d rc \
     sets, %d boxes emitted -> %d maximal, dominance %d pairs (%d cheap \
     skips, %d transport)@."
    chain_n chain_n (1e3 *. chain_wall_s) cs.Relim.Rounde.rc_sets
    cs.Relim.Rounde.boxes_emitted chain_boxes cs.Relim.Rounde.box_dom_checks
    cs.Relim.Rounde.box_dom_cheap_skips cs.Relim.Rounde.box_transport_calls;
  let chain_stats =
    ( cs.Relim.Rounde.rc_sets,
      cs.Relim.Rounde.boxes_emitted,
      chain_boxes,
      cs.Relim.Rounde.box_dom_checks,
      cs.Relim.Rounde.box_dom_cheap_skips,
      cs.Relim.Rounde.box_transport_calls,
      chain_wall_s,
      cs.Relim.Rounde.maxbox_time_s )
  in
  (* 0-round decider: the Bron–Kerbosch clique enumeration replaced the
     seed's 2^n subset sweep. *)
  Relim.Zeroround.reset_stats ();
  List.iter
    (fun p -> ignore (Relim.Zeroround.solvable_arbitrary_ports p))
    [
      Lcl.Encodings.mis ~delta:3;
      Lcl.Encodings.sinkless_orientation ~delta:3;
      Core.Family.pi { Core.Family.delta = 5; a = 4; x = 2 };
      chain;
    ]
  |> ignore;
  let zs = Relim.Zeroround.stats in
  result
    "0-round decider (4 problems incl. chain%d): %d maximal cliques over %d \
     BK expansions in %.3f ms@."
    chain_n zs.Relim.Zeroround.maximal_cliques zs.Relim.Zeroround.bk_expansions
    (1e3 *. zs.Relim.Zeroround.clique_time_s);
  let zr_stats =
    ( zs.Relim.Zeroround.clique_calls,
      zs.Relim.Zeroround.maximal_cliques,
      zs.Relim.Zeroround.bk_expansions,
      zs.Relim.Zeroround.clique_time_s )
  in
  (* Fixed-point driver memo cache: the second detection of the same
     problem replays entirely from the cache. *)
  let so = Lcl.Encodings.sinkless_orientation ~delta:3 in
  Relim.Fixedpoint.clear_cache ();
  Relim.Fixedpoint.reset_stats ();
  ignore (Relim.Fixedpoint.detect so);
  let fp = Relim.Fixedpoint.stats in
  let first =
    (fp.Relim.Fixedpoint.steps_applied, fp.Relim.Fixedpoint.cache_hits,
     fp.Relim.Fixedpoint.cache_misses, fp.Relim.Fixedpoint.step_time_s,
     fp.Relim.Fixedpoint.normalize_time_s)
  in
  ignore (Relim.Fixedpoint.detect so);
  let steps1, hits1, misses1, time1, norm1 = first in
  let second =
    (fp.Relim.Fixedpoint.steps_applied - steps1,
     fp.Relim.Fixedpoint.cache_hits - hits1,
     fp.Relim.Fixedpoint.cache_misses - misses1,
     fp.Relim.Fixedpoint.step_time_s -. time1,
     fp.Relim.Fixedpoint.normalize_time_s -. norm1)
  in
  let steps2, hits2, misses2, time2, norm2 = second in
  result
    "@.fixed-point memo on SO (Delta=3): first detect %d steps (%d hits, %d \
     misses, %.3f ms of which %.3f ms normalize); repeat %d steps (%d hits, \
     %d misses, %.3f ms)@."
    steps1 hits1 misses1 (1e3 *. time1) (1e3 *. norm1) steps2 hits2 misses2
    (1e3 *. time2);
  Relim.Fixedpoint.clear_cache ();
  (* Parallel speedup: the first speedup step of Pi(5,4,2) — the
     heaviest single step above — with a 1-domain vs a 4-domain pool,
     best of 3 runs each.  Besides the timings we assert the
     determinism contract: identical serialized output and identical
     integer counters (times and the per-worker memo hit counter
     excluded — see Rounde's interface). *)
  let speedup_domains = 4 in
  let speedup_runs = 3 in
  let pi5_first = Core.Family.pi { Core.Family.delta = 5; a = 4; x = 2 } in
  let counters () =
    let s = Relim.Rounde.stats in
    [
      s.Relim.Rounde.r_calls; s.Relim.Rounde.closures_visited;
      s.Relim.Rounde.closure_joins; s.Relim.Rounde.closure_revisits;
      s.Relim.Rounde.rbar_calls; s.Relim.Rounde.rc_sets;
      s.Relim.Rounde.boxes_emitted; s.Relim.Rounde.boxes_pruned;
      s.Relim.Rounde.box_dom_checks; s.Relim.Rounde.box_dom_cheap_skips;
      s.Relim.Rounde.box_transport_calls;
    ]
  in
  let timed_step pool =
    let best = ref infinity and out = ref None in
    for _ = 1 to speedup_runs do
      Relim.Rounde.reset_stats ();
      let t0 = Unix.gettimeofday () in
      let { Relim.Rounde.problem = next; _ } =
        Relim.Rounde.step ~pool pi5_first
      in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      out := Some next
    done;
    (!best, Relim.Serialize.to_string (Option.get !out), counters ())
  in
  let pool_n = Parallel.Pool.create ~domains:speedup_domains in
  let wall_1, out_1, counters_1 = timed_step Parallel.Pool.sequential in
  let wall_n, out_n, counters_n = timed_step pool_n in
  Parallel.Pool.shutdown pool_n;
  let identical_output = String.equal out_1 out_n in
  let identical_counters = counters_1 = counters_n in
  let cores_available = Domain.recommended_domain_count () in
  result
    "@.parallel speedup on step 1 of Pi(5,4,2) (best of %d): 1 domain %.3f \
     ms, %d domains %.3f ms -> %.2fx (%d core(s) available); identical \
     output: %b, identical counters: %b@."
    speedup_runs (1e3 *. wall_1) speedup_domains (1e3 *. wall_n)
    (wall_1 /. wall_n) cores_available identical_output identical_counters;
  (* Certifier overhead: the Pi(5,4,2) pipeline run (step 1 plus the
     budget-stopped step 2) with the independent certificate checkers
     (lib/certify) re-deriving every R / Rbar output from the
     definitions, vs the plain engine run. *)
  let certified_pipeline () =
    let rec go q i =
      if i <= 2 then
        match Relim.Rounde.step ~pool:Parallel.Pool.sequential q with
        | d -> go (Relim.Simplify.normalize d.Relim.Rounde.problem) (i + 1)
        | exception (Relim.Budget.Budget_exceeded _ | Failure _) -> ()
    in
    go pi5_first 1
  in
  let t0 = Unix.gettimeofday () in
  certified_pipeline ();
  let plain_s = Unix.gettimeofday () -. t0 in
  Certify.Check.reset_stats ();
  let t0 = Unix.gettimeofday () in
  Certify.Hooks.with_hooks certified_pipeline;
  let certified_s = Unix.gettimeofday () -. t0 in
  let cert = Certify.Check.stats in
  result
    "@.certifier overhead on the Pi(5,4,2) pipeline: plain %.3f ms, \
     certified %.3f ms (%.2fx); %d R + %d Rbar certificates, %d sub-check(s) \
     skipped on budget, %.3f ms inside the checkers@."
    (1e3 *. plain_s) (1e3 *. certified_s)
    (certified_s /. plain_s)
    cert.Certify.Check.r_certified cert.Certify.Check.rbar_certified
    cert.Certify.Check.skipped_subchecks
    (1e3 *. cert.Certify.Check.time_s);
  (* Tracing overhead: the same Pi(5,4,2) step with the lib/trace sink
     disabled vs enabled (spans + counter samples to BENCH_trace.jsonl,
     validated by `make bench-smoke`).  The disabled path is a single
     atomic load per span, so [trace_off_s] must stay within noise of
     [wall_1] — the untraced sequential measurement of the exact same
     workload above. *)
  let trace_runs = 5 in
  let timed_traced () =
    let best = ref infinity in
    for _ = 1 to trace_runs do
      let t0 = Unix.gettimeofday () in
      ignore (Relim.Rounde.step ~pool:Parallel.Pool.sequential pi5_first);
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let trace_off_s = timed_traced () in
  Trace.enable ~path:"BENCH_trace.jsonl" ~format:Trace.Jsonl;
  (* Fresh counters inside the trace window, so the emitted samples
     reconcile with the spans (validate_trace checks this). *)
  Relim.Rounde.reset_stats ();
  let trace_on_s = timed_traced () in
  Trace.close ();
  result
    "@.tracing overhead on step 1 of Pi(5,4,2) (best of %d): disabled %.3f \
     ms (untraced baseline %.3f ms, ratio %.3f), enabled %.3f ms (%.2fx); \
     wrote BENCH_trace.jsonl@."
    trace_runs (1e3 *. trace_off_s) (1e3 *. wall_1)
    (trace_off_s /. wall_1)
    (1e3 *. trace_on_s)
    (trace_on_s /. trace_off_s);
  (* Daemon load generator (P3): measured here so the numbers land in
     the same BENCH_relim.json dump. *)
  let daemon_json = daemon_bench () in
  (* JSON dump. *)
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"bench\": \"relim\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"meta\": { \"domains\": %d, \"cores_available\": %d, \
        \"ocaml_version\": %S, \"dune_profile\": %S },\n"
       (Relim.Parctl.domains_from_env ())
       cores_available Sys.ocaml_version
       (Option.value ~default:"dev" (Sys.getenv_opt "DUNE_PROFILE")));
  Buffer.add_string buf "  \"problems\": [\n";
  List.iteri
    (fun pi (name, rows) ->
      if pi > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf "    { \"name\": %S, \"steps\": [\n" name);
      List.iteri
        (fun ri row ->
          if ri > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf
            (Printf.sprintf
               "      { \"step\": %d, \"labels_in\": %d, \"labels_out\": %d, \
                \"wall_s\": %.6f, \"r_time_s\": %.6f, \"rbar_time_s\": %.6f, \
                \"maxbox_time_s\": %.6f, \"closures_visited\": %d, \
                \"closure_joins\": %d, \"closure_revisits\": %d, \
                \"rc_sets\": %d, \"boxes_emitted\": %d, \"boxes_pruned\": %d, \
                \"box_dom_checks\": %d, \"box_dom_cheap_skips\": %d, \
                \"box_transport_calls\": %d, \"transport_cache_hits\": %d }"
               row.step row.labels_in row.labels_out row.wall_s row.r_time_s
               row.rbar_time_s row.maxbox_time_s row.closures_visited
               row.closure_joins row.closure_revisits row.rc_sets
               row.boxes_emitted row.boxes_pruned row.box_dom_checks
               row.box_dom_cheap_skips row.box_transport_calls
               row.transport_cache_hits))
        rows;
      Buffer.add_string buf "\n    ] }")
    problems;
  Buffer.add_string buf "\n  ],\n";
  (let rc, emitted, maximal, dom, cheap, transport, wall, maxbox =
     chain_stats
   in
   Buffer.add_string buf
     (Printf.sprintf
        "  \"chain_rbar\": { \"labels\": %d, \"rc_sets\": %d, \
         \"boxes_emitted\": %d, \"maximal_boxes\": %d, \"box_dom_checks\": \
         %d, \"box_dom_cheap_skips\": %d, \"box_transport_calls\": %d, \
         \"wall_s\": %.6f, \"maxbox_time_s\": %.6f },\n"
        chain_n rc emitted maximal dom cheap transport wall maxbox));
  (let calls, cliques, expansions, time_s = zr_stats in
   Buffer.add_string buf
     (Printf.sprintf
        "  \"zeroround_cliques\": { \"clique_calls\": %d, \
         \"maximal_cliques\": %d, \"bk_expansions\": %d, \"clique_time_s\": \
         %.6f },\n"
        calls cliques expansions time_s));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"parallel_speedup\": { \"problem\": \"Pi(5,4,2) step 1\", \
        \"runs\": %d, \"domains\": %d, \"wall_1_s\": %.6f, \"wall_n_s\": \
        %.6f, \"speedup\": %.3f, \"identical_output\": %b, \
        \"identical_counters\": %b },\n"
       speedup_runs speedup_domains wall_1 wall_n (wall_1 /. wall_n)
       identical_output identical_counters);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"certifier_overhead\": { \"problem\": \"Pi(5,4,2) pipeline\", \
        \"plain_s\": %.6f, \"certified_s\": %.6f, \"overhead_factor\": %.3f, \
        \"r_certified\": %d, \"rbar_certified\": %d, \"skipped_subchecks\": \
        %d, \"check_time_s\": %.6f },\n"
       plain_s certified_s
       (certified_s /. plain_s)
       cert.Certify.Check.r_certified cert.Certify.Check.rbar_certified
       cert.Certify.Check.skipped_subchecks cert.Certify.Check.time_s);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"fixedpoint_cache_so_delta3\": {\n\
       \    \"first\": { \"steps_applied\": %d, \"cache_hits\": %d, \
        \"cache_misses\": %d, \"step_time_s\": %.6f, \"normalize_time_s\": \
        %.6f },\n\
       \    \"second\": { \"steps_applied\": %d, \"cache_hits\": %d, \
        \"cache_misses\": %d, \"step_time_s\": %.6f, \"normalize_time_s\": \
        %.6f }\n\
       \  },\n"
       steps1 hits1 misses1 time1 norm1 steps2 hits2 misses2 time2 norm2);
  Buffer.add_string buf daemon_json;
  Buffer.add_string buf
    (Printf.sprintf
       "  \"trace_overhead\": { \"problem\": \"Pi(5,4,2) step 1\", \"runs\": \
        %d, \"disabled_s\": %.6f, \"untraced_baseline_s\": %.6f, \
        \"disabled_vs_baseline\": %.4f, \"enabled_s\": %.6f, \
        \"overhead_factor\": %.3f, \"trace_file\": \"BENCH_trace.jsonl\" }\n}\n"
       trace_runs trace_off_s wall_1 (trace_off_s /. wall_1) trace_on_s
       (trace_on_s /. trace_off_s));
  let oc = open_out "BENCH_relim.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  result "@.wrote BENCH_relim.json@."

(* ------------------------------------------------------------------ *)
(* AP: autopilot — certified relaxation search                         *)
(* ------------------------------------------------------------------ *)

(* The two reference runs of EXPERIMENTS.md's AUTOPILOT section: the
   sinkless-orientation rediscovery (a certified relaxed fixed point)
   and the Pi(5,4,2) budget-wall run (a certified 2-round upper bound
   reached through a quotient cover where the plain speedup step trips
   its budget).  The results are merged into BENCH_relim.json as an
   "autopilot" object, preserving whatever `relim_perf` wrote there —
   the two sections can run in either order. *)
let autopilot_bench () =
  section "AP" "Autopilot: certified relaxation search (quotient covers)";
  let tight =
    {
      Autopilot.default_limits with
      Autopilot.expand_limit = 50_000.;
      rc_limit = 4_000;
      beam = 12;
      max_steps = 4;
    }
  in
  let runs =
    [
      ( "SO(Delta=3)",
        Lcl.Encodings.sinkless_orientation ~delta:3,
        Autopilot.default_limits );
      ("Pi(5,4,2)", Core.Family.pi { Core.Family.delta = 5; a = 4; x = 2 }, tight);
    ]
  in
  let reports =
    List.map
      (fun (name, p, limits) ->
        let r = Autopilot.search ~limits p in
        result
          "  %-12s %-24s %d step(s), %d candidate(s), %d budget-skipped, %d \
           certified, %.2f s@."
          name
          (Autopilot.verdict_string r.Autopilot.verdict)
          (List.length r.Autopilot.steps)
          r.Autopilot.candidates_explored r.Autopilot.budget_skips
          r.Autopilot.certified_steps r.Autopilot.wall_s;
        (name, r))
      runs
  in
  let open Store.Json in
  let problem_objs =
    List.map
      (fun (name, r) ->
        let extras =
          match r.Autopilot.verdict with
          | Autopilot.Fixed_point { period; _ } -> [ ("period", Int period) ]
          | Autopilot.Upper_bound { steps } ->
              [ ("upper_bound_rounds", Int steps) ]
          | Autopilot.Exhausted _ -> []
        in
        Obj
          ([
             ("name", String name);
             ("verdict", String (Autopilot.verdict_string r.Autopilot.verdict));
             ("steps", Int (List.length r.Autopilot.steps));
             ("candidates_explored", Int r.Autopilot.candidates_explored);
             ("budget_skips", Int r.Autopilot.budget_skips);
             ("certified_steps", Int r.Autopilot.certified_steps);
             ("wall_s", Float r.Autopilot.wall_s);
           ]
          @ extras))
      reports
  in
  let sum f = List.fold_left (fun acc (_, r) -> acc + f r) 0 reports in
  let ap =
    Obj
      [
        ("problems", List problem_objs);
        ( "candidates_explored",
          Int (sum (fun r -> r.Autopilot.candidates_explored)) );
        ("budget_skips", Int (sum (fun r -> r.Autopilot.budget_skips)));
        ("certified_steps", Int (sum (fun r -> r.Autopilot.certified_steps)));
        ( "wall_s",
          Float
            (List.fold_left
               (fun acc (_, r) -> acc +. r.Autopilot.wall_s)
               0. reports) );
      ]
  in
  let existing =
    if Sys.file_exists "BENCH_relim.json" then begin
      let ic = open_in_bin "BENCH_relim.json" in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match of_string s with
      | Ok (Obj members) -> List.filter (fun (k, _) -> k <> "autopilot") members
      | Ok _ | Error _ -> []
    end
    else []
  in
  let members =
    if existing = [] then [ ("bench", String "relim") ] else existing
  in
  let oc = open_out "BENCH_relim.json" in
  output_string oc (to_string (Obj (members @ [ ("autopilot", ap) ])));
  output_char oc '\n';
  close_out oc;
  result "@.merged \"autopilot\" section into BENCH_relim.json@."

(* ------------------------------------------------------------------ *)
(* ZDD: breaking the Δ wall with the hash-consed family engine         *)
(* ------------------------------------------------------------------ *)

(* Scaling study on the col_k family (complete-graph k-coloring): the
   node diagram is a k-antichain, so the right-closed family has
   2^k - 1 members but a k-node ZDD, and R̄(col_k) = col_k.  The
   explicit path hits its budgets around k = 11 (box-enumeration work,
   then the right-closed-set budget from k = 17); the ZDD path runs
   the same search on the compressed family — fully symbolically while
   the slot encoding fits (each instance records which rung ran in
   "zdd_mode") — and completes through k = 20.  Wherever both paths
   finish, the serialized step outputs are compared byte for byte.
   The results are merged into BENCH_relim.json as a "zdd" object
   (preserving the other sections, like the autopilot merge), in the
   exact shape `validate_json --require-zdd` keys on: per-instance
   statuses and modes, monotone zdd_nodes, identity flags, and the
   "mis3_autopilot" regression record. *)
let zdd_bench () =
  section "ZDD" "Breaking the Delta wall: hash-consed right-closed families";
  let col_problem k =
    let name i = Printf.sprintf "c%d" i in
    let node =
      String.concat "\n"
        (List.init k (fun i ->
             Printf.sprintf "%s %s %s" (name i) (name i) (name i)))
    in
    let edge =
      String.concat "\n"
        (List.concat_map
           (fun i ->
             List.filter_map
               (fun j ->
                 if i < j then Some (Printf.sprintf "%s %s" (name i) (name j))
                 else None)
               (List.init k Fun.id))
           (List.init k Fun.id))
    in
    Relim.Parse.problem ~name:(Printf.sprintf "col%d" k) ~node ~edge
  in
  let run ~zdd p =
    Relim.Rounde.reset_stats ();
    let n0 = Zdd.stats.Zdd.nodes in
    let t0 = Unix.gettimeofday () in
    let outcome =
      match Relim.Rounde.rbar ~zdd p with
      | { Relim.Rounde.problem; denotations } ->
          `Ok (Relim.Serialize.to_string problem, denotations)
      | exception Relim.Budget.Budget_exceeded { budget; _ } -> `Budget budget
    in
    let wall = Unix.gettimeofday () -. t0 in
    (* Which rung of the zdd ladder ran: the [maxbox_*] counters move
       only on the fully symbolic path (PR 10), so a nonzero tuple
       count after the run identifies it. *)
    let mode =
      if Relim.Rounde.stats.Relim.Rounde.maxbox_tuples > 0 then "symbolic"
      else "streaming"
    in
    ( outcome,
      wall,
      Relim.Rounde.stats.Relim.Rounde.rc_sets,
      Zdd.stats.Zdd.nodes - n0,
      Zdd.stats.Zdd.peak_unique,
      mode )
  in
  let ks = [ 6; 8; 10; 12; 14; 16; 18; 19; 20; 21 ] in
  let rows =
    List.map
      (fun k ->
        let p = col_problem k in
        let explicit, e_wall, _, _, _, _ = run ~zdd:false p in
        let zdd, z_wall, z_rc, z_nodes, z_peak, z_mode = run ~zdd:true p in
        let status = function `Ok _ -> "ok" | `Budget _ -> "budget" in
        let identical =
          match (explicit, zdd) with
          | `Ok a, `Ok b -> Some (a = b)
          | _ -> None
        in
        result
          "  col%-3d explicit %-6s %7.3fs   zdd %-6s %-9s %7.3fs  rc=%-8d \
           nodes=%-7d identical=%s@."
          k (status explicit) e_wall (status zdd) z_mode z_wall z_rc z_nodes
          (match identical with
          | Some b -> string_of_bool b
          | None -> "n/a");
        (k, explicit, e_wall, zdd, z_wall, z_rc, z_nodes, z_peak, z_mode,
         identical))
      ks
  in
  let open Store.Json in
  let instance_objs =
    List.map
      (fun ( k, explicit, e_wall, zdd, z_wall, z_rc, z_nodes, z_peak, z_mode,
             identical )
         ->
        let status = function `Ok _ -> "ok" | `Budget _ -> "budget" in
        let budget = function
          | `Ok _ -> Null
          | `Budget b -> String b
        in
        Obj
          [
            ("name", String (Printf.sprintf "col%d" k));
            ("k", Int k);
            ("rc_sets", Int z_rc);
            ("explicit_status", String (status explicit));
            ("explicit_budget", budget explicit);
            ("explicit_wall_s", Float e_wall);
            ("zdd_status", String (status zdd));
            ("zdd_budget", budget zdd);
            ("zdd_mode", String z_mode);
            ("zdd_wall_s", Float z_wall);
            ("zdd_nodes", Int z_nodes);
            ("zdd_peak_unique", Int z_peak);
            ( "identical",
              match identical with Some b -> Bool b | None -> Null );
          ])
      rows
  in
  let first_budget =
    List.find_map
      (fun (k, explicit, _, _, _, _, _, _, _, _) ->
        match explicit with `Budget _ -> Some k | `Ok _ -> None)
      rows
  in
  let zdd_max_ok =
    List.fold_left
      (fun acc (k, _, _, zdd, _, _, _, _, _, _) ->
        match zdd with `Ok _ -> max acc k | `Budget _ -> acc)
      0 rows
  in
  let symbolic_max_ok =
    List.fold_left
      (fun acc (k, _, _, zdd, _, _, _, _, z_mode, _) ->
        match zdd with
        | `Ok _ when z_mode = "symbolic" -> max acc k
        | _ -> acc)
      0 rows
  in
  (* The honest cost of the compressed engine on a workload it does
     NOT accelerate: the full mis Δ=3 sweep cell (step + fixed point +
     autopilot relaxation search).  Before the PR 10 scan-work budget
     this cell ran 26x slower under --zdd (the autopilot's monster R̄
     candidates — 46-label alphabets, past the slotted filter's
     Δ·n <= 62 envelope — burned minutes in an uncharged quadratic
     dominance scan before a width budget discarded them anyway); the
     recorded ratio pins that the gap stays closed. *)
  let mis3_gap =
    let cell z =
      {
        Sweep.family = Sweep.Mis;
        delta = 3;
        a = 0;
        x = 0;
        labels = 0;
        engine = { Sweep.zdd = z; domains = 1; certify = false };
      }
    in
    let budgets = Sweep.default_budgets in
    let time z =
      let t0 = Unix.gettimeofday () in
      ignore (Sweep.run_cell ~budgets (cell z));
      Unix.gettimeofday () -. t0
    in
    let e_wall = time false in
    let z_wall = time true in
    result
      "  mis d=3 sweep cell (autopilot incl.): explicit %7.3fs   zdd %7.3fs  \
       ratio=%.2fx@."
      e_wall z_wall (z_wall /. e_wall);
    Obj
      [
        ("cell", String "mis delta=3 full sweep cell (autopilot included)");
        ("explicit_wall_s", Float e_wall);
        ("zdd_wall_s", Float z_wall);
        ("zdd_over_explicit", Float (z_wall /. e_wall));
      ]
  in
  let zdd_obj =
    Obj
      [
        ("family", String "col_k: complete-graph k-coloring, Rbar = identity");
        ("instances", List instance_objs);
        ( "wall",
          Obj
            [
              ( "explicit_first_budget_k",
                match first_budget with Some k -> Int k | None -> Null );
              ("zdd_completes_k", Int zdd_max_ok);
              ("symbolic_completes_k", Int symbolic_max_ok);
            ] );
        ("mis3_autopilot", mis3_gap);
      ]
  in
  (match first_budget with
  | Some k when zdd_max_ok >= k ->
      result
        "@.the wall moved: explicit path first trips at k = %d, the ZDD path \
         completes through k = %d@."
        k zdd_max_ok
  | _ -> result "@.WARNING: no explicit budget wall observed in this range@.");
  let existing =
    if Sys.file_exists "BENCH_relim.json" then begin
      let ic = open_in_bin "BENCH_relim.json" in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match of_string s with
      | Ok (Obj members) -> List.filter (fun (k, _) -> k <> "zdd") members
      | Ok _ | Error _ -> []
    end
    else []
  in
  let members =
    if existing = [] then [ ("bench", String "relim") ] else existing
  in
  let oc = open_out "BENCH_relim.json" in
  output_string oc (to_string (Obj (members @ [ ("zdd", zdd_obj) ])));
  output_char oc '\n';
  close_out oc;
  result "merged \"zdd\" section into BENCH_relim.json@."

(* ------------------------------------------------------------------ *)

let all_sections =
  [
    ("fig1", fig1);
    ("fig23", fig23);
    ("fig4", fig4);
    ("fig5", fig5);
    ("lemma6", lemma6);
    ("lemma8", lemma8);
    ("lemma9", lemma9);
    ("lemma12_15", lemma12_15);
    ("lemma15_mc", lemma15_mc);
    ("lemma13", lemma13);
    ("theorem1", theorem1);
    ("theorem14", theorem14);
    ("fixed_points", fixed_points);
    ("comparison", comparison);
    ("upper_vs_lower", upper_vs_lower);
    ("ablation", ablation_growth);
    ("lemma5", lemma5_pipeline);
    ("synthesis", synthesis);
    ("open_problems", open_problems);
    ("ruling_sets", ruling_sets);
    ("views", views);
    ("congest", congest);
    ("relim_perf", relim_perf);
    ("autopilot", autopilot_bench);
    ("zdd", zdd_bench);
    ("bechamel", bechamel_suite);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst all_sections
  in
  List.iter
    (fun name ->
      match List.assoc_opt name all_sections with
      | Some f -> f ()
      | None ->
          Format.printf "unknown section %s; available: %s@." name
            (String.concat ", " (List.map fst all_sections)))
    requested;
  Format.printf "@.done.@."
