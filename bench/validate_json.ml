(* Dependency-free JSON well-formedness checker for the benchmark
   dumps (the repo deliberately has no JSON library).  Used by `make
   bench-smoke` to guarantee that BENCH_relim.json stays parseable:
   the dump is assembled by hand with Printf, so a stray comma or an
   unescaped string would otherwise only be caught downstream.

   Exit code 0 iff every file given on the command line is a single
   well-formed JSON value (RFC 8259 grammar; numbers are validated
   syntactically, not range-checked). *)

exception Bad of int * string

let validate (s : string) =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %c, found %c" c c')
    | None -> fail (Printf.sprintf "expected %c, found end of input" c)
  in
  let skip_ws () =
    while
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> true
      | _ -> false
    do
      advance ()
    done
  in
  let literal word =
    String.iter (fun c -> expect c) word
  in
  let string_body () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail "bad \\u escape"
              done;
              go ()
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control character in string"
      | Some _ ->
          advance ();
          go ()
    in
    go ()
  in
  let digits () =
    let saw = ref false in
    while (match peek () with Some '0' .. '9' -> true | _ -> false) do
      saw := true;
      advance ()
    done;
    if not !saw then fail "expected digit"
  in
  let number () =
    if peek () = Some '-' then advance ();
    (match peek () with
    | Some '0' -> advance ()
    | Some '1' .. '9' -> digits ()
    | _ -> fail "bad number");
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '"' -> string_body ()
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else begin
          let rec members () =
            skip_ws ();
            string_body ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or } in object"
          in
          members ()
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else begin
          let rec elements () =
            value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ] in array"
          in
          elements ()
        end
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
    | None -> fail "empty input"
  in
  value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage after the JSON value"

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let () =
  let files =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as files) -> files
    | _ ->
        prerr_endline "usage: validate_json FILE.json ...";
        exit 2
  in
  let failed = ref false in
  List.iter
    (fun path ->
      match validate (read_file path) with
      | () -> Printf.printf "%s: well-formed JSON\n" path
      | exception Bad (pos, msg) ->
          failed := true;
          Printf.eprintf "%s: invalid JSON at byte %d: %s\n" path pos msg
      | exception Sys_error e ->
          failed := true;
          Printf.eprintf "%s\n" e)
    files;
  if !failed then exit 1
