(* Dependency-free JSON well-formedness checker for the benchmark
   dumps (the repo deliberately has no JSON library).  Used by `make
   bench-smoke` to guarantee that BENCH_relim.json stays parseable:
   the dump is assembled by hand with Printf, so a stray comma or an
   unescaped string would otherwise only be caught downstream.

   Exit code 0 iff every file given on the command line is a single
   well-formed JSON value (RFC 8259 grammar; numbers are validated
   syntactically, not range-checked).

   With --require-meta, each file must additionally be an object with a
   "meta" member recording the benchmark environment (domains,
   ocaml_version, dune_profile at least), so runs from different
   configurations can be told apart after the fact.

   With --require-daemon, each file must carry a "daemon" object — the
   roundelimd load-generator section — with the cold/warm throughput
   members `make daemond-smoke` and EXPERIMENTS.md key on.

   With --require-autopilot, each file must carry an "autopilot"
   object — the certified relaxation-search section `make
   autopilot-smoke` keys on: per-problem verdicts plus the aggregate
   candidates-explored / certified-steps / wall-time counters.

   With --require-zdd, each file must carry a "zdd" object — the
   Δ-wall scaling section written by `bench/main.exe zdd` — and its
   contents are value-checked against the engine's contract, keyed to
   the emitter's flat per-instance shape:
   {ul
   {- every instance's [explicit_status] / [zdd_status] is "ok" or
      "budget";}
   {- every instance's [zdd_mode] names a ladder rung, "symbolic" or
      "streaming";}
   {- [identical] is [true] whenever both paths completed (the
      byte-identity contract) — never [false], and [null] only when a
      side tripped;}
   {- the [zdd_nodes] counts are monotone nondecreasing across the
      instances (they are listed in increasing k) within each ladder
      rung — the count resets where [zdd_mode] switches;}
   {- at least one instance trips a budget on the explicit path while
      the ZDD path completes — the recorded proof that the wall
      actually moved;}
   {- the [mis3_autopilot] record carries a positive
      [zdd_over_explicit] wall-clock ratio — the honest number for the
      sweep cell the engine does {e not} accelerate.}}

   With --require-sweep, each file must carry a "sweep" object — the
   section scripts/analyze_sweep.exe merges from a relimsweep journal —
   value-checked against the sweep contract, keyed to that emitter's
   shape: the journal covered its whole grid ("complete": true, status
   tallies summing to the grid's expected_cells, one per-cell row
   each), every per-cell status is "ok", "budget" or "skipped", and no
   cell is both ok and budget-skipped (an "ok" row carries a null
   budget; a "budget" row names the tripped budget).

   Sections other than the tracked ones ("meta", "daemon", "autopilot",
   "zdd", "sweep") pass through unvalidated by design — emitters may
   add new sections without breaking older validators — and that
   passthrough is pinned by the validator tests in test/sweep. *)

exception Bad of int * string

(* Member names of the "meta" object every dump must carry under
   --require-meta. *)
let required_meta_keys = [ "domains"; "ocaml_version"; "dune_profile" ]

(* Member names of the "daemon" object every dump must carry under
   --require-daemon. *)
let required_daemon_keys =
  [
    "requests";
    "connections";
    "distinct_problems";
    "cold";
    "warm";
    "warm_speedup";
    "warm_byte_identical";
  ]

(* Member names of the "autopilot" object every dump must carry under
   --require-autopilot. *)
let required_autopilot_keys =
  [ "problems"; "candidates_explored"; "budget_skips"; "certified_steps";
    "wall_s" ]

(* Member names of the "zdd" object every dump must carry under
   --require-zdd. *)
let required_zdd_keys = [ "family"; "instances"; "wall"; "mis3_autopilot" ]

(* Member names of the "sweep" object every dump must carry under
   --require-sweep. *)
let required_sweep_keys =
  [
    "journal"; "grid"; "complete"; "statuses"; "cells"; "bound_curve";
    "engine_comparison";
  ]

(* Validates [s] and returns (top-level object keys, per-tracked-
   section key lookup, per-tracked-section raw-text lookup) — empty
   when the value is not an object / lacks that section. *)
let validate (s : string) =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %c, found %c" c c')
    | None -> fail (Printf.sprintf "expected %c, found end of input" c)
  in
  let skip_ws () =
    while
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> true
      | _ -> false
    do
      advance ()
    done
  in
  let literal word =
    String.iter (fun c -> expect c) word
  in
  (* Returns the raw string contents (escapes kept verbatim — the keys
     compared against them are plain ASCII). *)
  let string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let keep c = Buffer.add_char buf c in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some (('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') as c) ->
              keep '\\';
              keep c;
              advance ();
              go ()
          | Some 'u' ->
              keep '\\';
              keep 'u';
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some (('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') as c) ->
                    keep c;
                    advance ()
                | _ -> fail "bad \\u escape"
              done;
              go ()
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control character in string"
      | Some c ->
          keep c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let digits () =
    let saw = ref false in
    while (match peek () with Some '0' .. '9' -> true | _ -> false) do
      saw := true;
      advance ()
    done;
    if not !saw then fail "expected digit"
  in
  let number () =
    if peek () = Some '-' then advance ();
    (match peek () with
    | Some '0' -> advance ()
    | Some '1' .. '9' -> digits ()
    | _ -> fail "bad number");
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ()
  in
  let root_keys = ref [] in
  let section_keys = Hashtbl.create 4 in
  (* Raw text of each tracked top-level member's value, for the
     --require-zdd / --require-sweep value checks. *)
  let spans = Hashtbl.create 4 in
  (* [depth] is the object-nesting depth of this value; [in_section]
     names the top-level member ("meta", "daemon") whose own keys are
     collected for the --require-* checks. *)
  let tracked_sections = [ "meta"; "daemon"; "autopilot"; "zdd"; "sweep" ] in
  let rec value ~depth ~in_section =
    skip_ws ();
    match peek () with
    | Some '"' -> ignore (string_body ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else begin
          let rec members () =
            skip_ws ();
            let key = string_body () in
            if depth = 0 then root_keys := key :: !root_keys;
            (match in_section with
            | Some s ->
                Hashtbl.replace section_keys s
                  (key
                  :: Option.value ~default:[] (Hashtbl.find_opt section_keys s))
            | None -> ());
            skip_ws ();
            expect ':';
            skip_ws ();
            let value_start = !pos in
            value ~depth:(depth + 1)
              ~in_section:
                (if depth = 0 && List.mem key tracked_sections then Some key
                 else None);
            if depth = 0 && List.mem key tracked_sections then
              Hashtbl.replace spans key
                (String.sub s value_start (!pos - value_start));
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or } in object"
          in
          members ()
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else begin
          let rec elements () =
            (* Array elements are never THE root object. *)
            value ~depth:(depth + 1) ~in_section:None;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ] in array"
          in
          elements ()
        end
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
    | None -> fail "empty input"
  in
  value ~depth:0 ~in_section:None;
  skip_ws ();
  if !pos <> n then fail "trailing garbage after the JSON value";
  let keys_of s =
    List.rev (Option.value ~default:[] (Hashtbl.find_opt section_keys s))
  in
  (List.rev !root_keys, keys_of, Hashtbl.find_opt spans)

(* --- value checks on the "zdd" section ----------------------------- *)

(* All occurrences of ["key": <token>] in [span], in order, where
   <token> runs to the next [,}\]] — enough for the flat per-instance
   members the zdd emitter writes (numbers, booleans, null, plain
   strings). *)
let tokens_after span key =
  let marker = Printf.sprintf "\"%s\":" key in
  let n = String.length span and m = String.length marker in
  let rec next i acc =
    if i + m > n then List.rev acc
    else if String.sub span i m = marker then begin
      let j = ref (i + m) in
      while !j < n && (span.[!j] = ' ' || span.[!j] = '\n') do incr j done;
      let k = ref !j in
      while
        !k < n && not (span.[!k] = ',' || span.[!k] = '}' || span.[!k] = ']')
      do
        incr k
      done;
      next (i + m) (String.trim (String.sub span !j (!k - !j)) :: acc)
    end
    else next (i + 1) acc
  in
  next 0 []

(* The --require-zdd contract checks; returns the list of violation
   messages (empty = pass).  Keyed to the flat shape `bench/main.exe
   zdd` emits: one object per instance, statuses before flags. *)
let check_zdd_values span =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  let e_status = tokens_after span "explicit_status" in
  let z_status = tokens_after span "zdd_status" in
  let identical = tokens_after span "identical" in
  let nodes = tokens_after span "zdd_nodes" in
  if e_status = [] then err "\"zdd\" has no instances";
  if
    List.length e_status <> List.length z_status
    || List.length e_status <> List.length identical
    || List.length e_status <> List.length nodes
  then err "\"zdd\" instances are missing members";
  List.iter
    (fun s ->
      if s <> "\"ok\"" && s <> "\"budget\"" then
        err "\"zdd\" instance has status %s (expected \"ok\" or \"budget\")" s)
    (e_status @ z_status);
  (* engine modes: one per instance, naming a ladder rung *)
  let modes = tokens_after span "zdd_mode" in
  if List.length modes <> List.length e_status then
    err "\"zdd\" has %d zdd_mode members for %d instances" (List.length modes)
      (List.length e_status);
  List.iter
    (fun m ->
      if m <> "\"symbolic\"" && m <> "\"streaming\"" then
        err
          "\"zdd\" instance has mode %s (expected \"symbolic\" or \
           \"streaming\")"
          m)
    modes;
  (* identity flags: never false; null only excuses a tripped side *)
  List.iteri
    (fun i id ->
      let both_ok =
        match (List.nth_opt e_status i, List.nth_opt z_status i) with
        | Some "\"ok\"", Some "\"ok\"" -> true
        | _ -> false
      in
      match id with
      | "true" -> if not both_ok then err "instance %d: identical=true but a path tripped" i
      | "false" -> err "instance %d: explicit and zdd outputs differ" i
      | "null" ->
          if both_ok then
            err "instance %d: both paths completed but identity went unchecked" i
      | other -> err "instance %d: bad identical flag %s" i other)
    identical;
  (* node counts: monotone nondecreasing across the (increasing-k)
     instances, within each ladder rung — the symbolic and streaming
     rungs build different diagrams, so the count resets where the
     mode switches *)
  let node_ints =
    List.filter_map (fun t -> int_of_string_opt t) nodes
  in
  if List.length node_ints <> List.length nodes then
    err "\"zdd\" has a non-integer zdd_nodes member";
  let rec monotone = function
    | (a, ma) :: ((b, mb) :: _ as rest) ->
        (ma <> mb || a <= b) && monotone rest
    | _ -> true
  in
  if
    List.length node_ints = List.length modes
    && not (monotone (List.combine node_ints modes))
  then
    err "\"zdd\" node counts are not monotone nondecreasing within a mode: %s"
      (String.concat ", " (List.map string_of_int node_ints));
  (* the wall must have moved: some instance trips the explicit path
     and completes on the zdd path *)
  (if List.length e_status = List.length z_status then
     let moved =
       List.exists2
         (fun e z -> e = "\"budget\"" && z = "\"ok\"")
         e_status z_status
     in
     if not moved then
       err
         "\"zdd\" records no instance that trips the explicit path but \
          completes on the ZDD path");
  (* the mis3_autopilot regression record: exactly one positive ratio *)
  (match tokens_after span "zdd_over_explicit" with
  | [ t ] -> (
      match float_of_string_opt t with
      | Some r when r > 0. -> ()
      | _ -> err "\"zdd\" mis3_autopilot has a bad zdd_over_explicit ratio %s" t)
  | other ->
      err "\"zdd\" must carry exactly one zdd_over_explicit ratio (found %d)"
        (List.length other));
  List.rev !errs

(* The --require-sweep contract checks; returns the violation messages
   (empty = pass).  Keyed to the shape scripts/analyze_sweep.exe
   emits: "statuses" (whose only "ok":/"budget":/"skipped": keys live
   there) before "cells" (whose rows carry "status": then "budget": in
   that order; the engine-comparison rows use prefixed key names like
   "explicit_status", which the quoted markers don't match). *)
let check_sweep_values span =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  (match tokens_after span "complete" with
  | [ "true" ] -> ()
  | [ other ] -> err "\"sweep\" journal did not cover its grid: complete=%s" other
  | _ -> err "\"sweep\" must carry exactly one \"complete\" flag");
  (* First occurrence: "ok"/"skipped" appear only as status-tally keys,
     and "budget"'s first occurrence is its tally too ("statuses"
     precedes "cells" in the emitted member order). *)
  let int1 key =
    match tokens_after span key with
    | t :: _ -> int_of_string_opt t
    | [] -> None
  in
  let statuses = tokens_after span "status" in
  (match (int1 "expected_cells", int1 "ok", int1 "budget", int1 "skipped") with
  | Some expected, Some ok, Some budget, Some skipped ->
      if ok + budget + skipped <> expected then
        err
          "\"sweep\" status tallies (%d ok + %d budget + %d skipped) do not \
           sum to the grid's %d expected cells"
          ok budget skipped expected;
      if List.length statuses <> expected then
        err "\"sweep\" has %d per-cell rows for %d expected cells"
          (List.length statuses) expected
  | _ ->
      err
        "\"sweep\" lacks the expected_cells / status-tally integers needed \
         for the coverage check");
  List.iteri
    (fun i s ->
      if s <> "\"ok\"" && s <> "\"budget\"" && s <> "\"skipped\"" then
        err
          "\"sweep\" cell %d has status %s (expected \"ok\", \"budget\" or \
           \"skipped\")"
          i s)
    statuses;
  (* Per-cell budgets: the first "budget": token is the status tally,
     the rest pair up with the cells rows in order.  An ok or skipped
     cell must carry a null budget (no cell is both ok and
     budget-skipped); a budget cell must name its tripped budget. *)
  (match tokens_after span "budget" with
  | _tally :: budgets when List.length budgets = List.length statuses ->
      List.iteri
        (fun i (status, budget) ->
          match (status, budget) with
          | "\"budget\"", "null" ->
              err "\"sweep\" cell %d: status budget but no budget named" i
          | ("\"ok\"" | "\"skipped\""), b when b <> "null" ->
              err "\"sweep\" cell %d: status %s yet budget %s recorded" i
                status b
          | _ -> ())
        (List.combine statuses budgets)
  | _ -> err "\"sweep\" cells rows lack paired status/budget members");
  List.rev !errs

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let () =
  let args =
    match Array.to_list Sys.argv with
    | _ :: args -> args
    | [] -> []
  in
  let require_meta = List.mem "--require-meta" args in
  let require_daemon = List.mem "--require-daemon" args in
  let require_autopilot = List.mem "--require-autopilot" args in
  let require_zdd = List.mem "--require-zdd" args in
  let require_sweep = List.mem "--require-sweep" args in
  let files =
    List.filter
      (fun a ->
        a <> "--require-meta" && a <> "--require-daemon"
        && a <> "--require-autopilot" && a <> "--require-zdd"
        && a <> "--require-sweep")
      args
  in
  if files = [] then begin
    prerr_endline
      "usage: validate_json [--require-meta] [--require-daemon] \
       [--require-autopilot] [--require-zdd] [--require-sweep] FILE.json ...";
    exit 2
  end;
  let failed = ref false in
  List.iter
    (fun path ->
      match validate (read_file path) with
      | root_keys, keys_of, span_of ->
          (* One required-section check, shared by every section. *)
          let file_ok = ref true in
          let check_section name required =
            if not (List.mem name root_keys) then begin
              file_ok := false;
              Printf.eprintf "%s: missing top-level %S object\n" path name
            end
            else
              let keys = keys_of name in
              let missing =
                List.filter (fun k -> not (List.mem k keys)) required
              in
              if missing <> [] then begin
                file_ok := false;
                Printf.eprintf "%s: %S lacks required key(s): %s\n" path name
                  (String.concat ", " missing)
              end
          in
          let check_values name check =
            match span_of name with
            | None -> () (* missing section already reported above *)
            | Some span ->
                List.iter
                  (fun msg ->
                    file_ok := false;
                    Printf.eprintf "%s: %s\n" path msg)
                  (check span)
          in
          if require_meta then check_section "meta" required_meta_keys;
          if require_daemon then check_section "daemon" required_daemon_keys;
          if require_autopilot then
            check_section "autopilot" required_autopilot_keys;
          if require_zdd then begin
            check_section "zdd" required_zdd_keys;
            check_values "zdd" check_zdd_values
          end;
          if require_sweep then begin
            check_section "sweep" required_sweep_keys;
            check_values "sweep" check_sweep_values
          end;
          if not !file_ok then failed := true
          else
            Printf.printf "%s: well-formed JSON%s%s%s%s%s\n" path
              (if require_meta then " with complete meta" else "")
              (if require_daemon then " and daemon section" else "")
              (if require_autopilot then " and autopilot section" else "")
              (if require_zdd then " and zdd section" else "")
              (if require_sweep then " and sweep section" else "")
      | exception Bad (pos, msg) ->
          failed := true;
          Printf.eprintf "%s: invalid JSON at byte %d: %s\n" path pos msg
      | exception Sys_error e ->
          failed := true;
          Printf.eprintf "%s\n" e)
    files;
  if !failed then exit 1
