(* Dependency-free schema validator for the execution traces emitted by
   lib/trace (the repo deliberately has no JSON library).  Used by
   `make trace-smoke` and the CI trace leg to guarantee that the traces
   roundelim writes stay well-formed and internally consistent:

   - every line (JSONL) / traceEvents element (--chrome) parses as JSON
     with the expected fields;
   - span begin/end events nest properly per domain (an end always
     closes the innermost open span of its domain, and every span
     opened is closed by end of trace);
   - timestamps are monotone non-decreasing per domain;
   - counter series are non-decreasing per domain (they sample
     cumulative engine statistics);
   - counter totals reconcile with the span structure: the final value
     of rounde.r_calls must equal the number of closed rounde.r spans
     (likewise rounde.rbar_calls / rounde.rbar and
     zeroround.clique_calls / zeroround.arbitrary_ports), and
     fixedpoint.steps_applied = cache_hits + cache_misses = number of
     closed fixedpoint.step spans.

   Exit code 0 iff every file passes; 1 on a validation failure; 2 on
   usage errors.  Failure messages name the file, the line (JSONL) or
   event index (--chrome), and the violated property. *)

(* ---- minimal JSON parser (value AST, RFC 8259 grammar) ---- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of int * string

let parse (s : string) =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %c, found %c" c c')
    | None -> fail (Printf.sprintf "expected %c, found end of input" c)
  in
  let skip_ws () =
    while
      match peek () with Some (' ' | '\t' | '\n' | '\r') -> true | _ -> false
    do
      advance ()
    done
  in
  let literal word = String.iter expect word in
  let string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'u' ->
              advance ();
              let code = ref 0 in
              for _ = 1 to 4 do
                (match peek () with
                | Some ('0' .. '9' as c) ->
                    code := (!code * 16) + (Char.code c - Char.code '0')
                | Some ('a' .. 'f' as c) ->
                    code := (!code * 16) + (Char.code c - Char.code 'a' + 10)
                | Some ('A' .. 'F' as c) ->
                    code := (!code * 16) + (Char.code c - Char.code 'A' + 10)
                | _ -> fail "bad \\u escape");
                advance ()
              done;
              (* The traces only escape control characters; keep them
                 byte-for-byte when they fit, '?' otherwise. *)
              Buffer.add_char buf
                (if !code < 0x100 then Char.chr !code else '?');
              go ()
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control character in string"
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let saw = ref false in
      while match peek () with Some '0' .. '9' -> true | _ -> false do
        saw := true;
        advance ()
      done;
      if not !saw then fail "expected digit"
    in
    (match peek () with
    | Some '0' -> advance ()
    | Some '1' .. '9' -> digits ()
    | _ -> fail "bad number");
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    float_of_string (String.sub s start (!pos - start))
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (string_body ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let members = ref [] in
          let rec go () =
            skip_ws ();
            let key = string_body () in
            skip_ws ();
            expect ':';
            let v = value () in
            members := (key, v) :: !members;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); go ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or } in object"
          in
          go ();
          Obj (List.rev !members)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let elements = ref [] in
          let rec go () =
            let v = value () in
            elements := v :: !elements;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); go ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ] in array"
          in
          go ();
          Arr (List.rev !elements)
        end
    | Some 't' -> literal "true"; Bool true
    | Some 'f' -> literal "false"; Bool false
    | Some 'n' -> literal "null"; Null
    | Some ('-' | '0' .. '9') -> Num (number ())
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
    | None -> fail "empty input"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage after the JSON value";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let as_int = function Some (Num f) -> Some (int_of_float f) | _ -> None

let as_str = function Some (Str s) -> Some s | _ -> None

(* ---- validation ---- *)

(* One normalized event, whichever format it came from. *)
type ev =
  | Span_begin of string
  | Span_end of string
  | Instant of string
  | Counter of (string * int) list

type norm = { where : string; dom : int; ts : int; ev : ev }

exception Invalid of string

let failf where fmt =
  Printf.ksprintf (fun msg -> raise (Invalid (where ^ ": " ^ msg))) fmt

let need_str where what v =
  match as_str v with
  | Some s -> s
  | None -> failf where "missing or non-string %s" what

let need_int where what v =
  match as_int v with
  | Some i -> i
  | None -> failf where "missing or non-integer %s" what

let norm_jsonl ~where line =
  let j =
    match parse line with
    | j -> j
    | exception Bad (pos, msg) ->
        failf where "invalid JSON at byte %d: %s" pos msg
  in
  let dom = need_int where "\"dom\"" (member "dom" j) in
  let ts = need_int where "\"ts\"" (member "ts" j) in
  let name () = need_str where "\"name\"" (member "name" j) in
  let ev =
    match need_str where "\"ev\"" (member "ev" j) with
    | "b" -> Span_begin (name ())
    | "e" -> Span_end (name ())
    | "i" -> Instant (name ())
    | "g" ->
        ignore (name ());
        (match member "value" j with
        | Some (Num _) -> ()
        | _ -> failf where "gauge event without numeric \"value\"");
        Instant "gauge"
    | "c" -> (
        match member "counters" j with
        | Some (Obj kvs) ->
            Counter
              (List.map
                 (fun (k, v) ->
                   (k, need_int where (Printf.sprintf "counter %S" k) (Some v)))
                 kvs)
        | _ -> failf where "counter event without \"counters\" object")
    | other -> failf where "unknown event kind %S" other
  in
  { where; dom; ts; ev }

let norm_chrome ~where j =
  let dom = need_int where "\"tid\"" (member "tid" j) in
  let ts = need_int where "\"ts\"" (member "ts" j) in
  let name = need_str where "\"name\"" (member "name" j) in
  let ev =
    match need_str where "\"ph\"" (member "ph" j) with
    | "B" -> Span_begin name
    | "E" -> Span_end name
    | "i" -> Instant name
    | "C" -> (
        match member "args" j with
        | Some args -> (
            match member "value" args with
            | Some (Num v) -> Counter [ (name, int_of_float v) ]
            | _ -> failf where "counter event without args.value")
        | None -> failf where "counter event without args")
    | "M" -> Instant name  (* metadata: tolerated, not checked *)
    | other -> failf where "unknown phase %S" other
  in
  { where; dom; ts; ev }

(* Counter series whose final value must equal the number of closed
   spans of a given name. *)
let span_counts =
  [
    ("rounde.r_calls", "rounde.r");
    ("rounde.rbar_calls", "rounde.rbar");
    ("zeroround.clique_calls", "zeroround.arbitrary_ports");
    ("fixedpoint.steps_applied", "fixedpoint.step");
  ]

type dom_state = {
  mutable stack : string list;
  mutable last_ts : int;
  mutable spans_closed : int;
}

let validate_events ~path ~check_counters (events : norm list) =
  let doms : (int, dom_state) Hashtbl.t = Hashtbl.create 8 in
  let dom_state d =
    match Hashtbl.find_opt doms d with
    | Some st -> st
    | None ->
        let st = { stack = []; last_ts = min_int; spans_closed = 0 } in
        Hashtbl.add doms d st;
        st
  in
  (* Final value per counter series, and per-(dom, series) last value
     for the monotonicity check. *)
  let final : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let last : (int * string, int) Hashtbl.t = Hashtbl.create 32 in
  let closed_spans : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let n_events = ref 0 in
  List.iter
    (fun e ->
      incr n_events;
      let st = dom_state e.dom in
      if e.ts < st.last_ts then
        failf e.where "timestamp %d goes backwards on domain %d (previous %d)"
          e.ts e.dom st.last_ts;
      st.last_ts <- e.ts;
      match e.ev with
      | Span_begin name -> st.stack <- name :: st.stack
      | Span_end name -> (
          match st.stack with
          | top :: rest when String.equal top name ->
              st.stack <- rest;
              st.spans_closed <- st.spans_closed + 1;
              Hashtbl.replace closed_spans name
                (1 + Option.value ~default:0 (Hashtbl.find_opt closed_spans name))
          | top :: _ ->
              failf e.where
                "span end %S does not match innermost open span %S on domain %d"
                name top e.dom
          | [] ->
              failf e.where "span end %S with no open span on domain %d" name
                e.dom)
      | Instant _ -> ()
      | Counter kvs ->
          List.iter
            (fun (k, v) ->
              (match Hashtbl.find_opt last (e.dom, k) with
              | Some prev when check_counters && v < prev ->
                  failf e.where
                    "counter %S decreases on domain %d (%d after %d)" k e.dom v
                    prev
              | _ -> ());
              Hashtbl.replace last (e.dom, k) v;
              Hashtbl.replace final k v)
            kvs)
    events;
  Hashtbl.iter
    (fun d st ->
      match st.stack with
      | [] -> ()
      | names ->
          raise
            (Invalid
               (Printf.sprintf
                  "%s: domain %d: %d span(s) left open at end of trace: %s"
                  path d (List.length names)
                  (String.concat ", " names))))
    doms;
  (* Counter/span reconciliation, for the series present in the trace. *)
  List.iter
    (fun (series, span) ->
      if not check_counters then ()
      else
      match Hashtbl.find_opt final series with
      | None -> ()
      | Some v ->
          let c = Option.value ~default:0 (Hashtbl.find_opt closed_spans span) in
          if v <> c then
            raise
              (Invalid
                 (Printf.sprintf
                    "%s: final %s = %d but the trace closes %d %S span(s)"
                    path series v c span)))
    span_counts;
  (match
     ( (if check_counters then Hashtbl.find_opt final "fixedpoint.steps_applied"
        else None),
       Hashtbl.find_opt final "fixedpoint.cache_hits",
       Hashtbl.find_opt final "fixedpoint.cache_misses" )
   with
  | Some steps, Some hits, Some misses when steps <> hits + misses ->
      raise
        (Invalid
           (Printf.sprintf
              "%s: fixedpoint.steps_applied = %d but cache_hits + cache_misses \
               = %d"
              path steps (hits + misses)))
  | _ -> ());
  (!n_events, Hashtbl.length doms, Hashtbl.fold (fun _ st acc -> acc + st.spans_closed) doms 0)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let events_of_jsonl path =
  let contents = read_file path in
  let lines = String.split_on_char '\n' contents in
  List.concat
    (List.mapi
       (fun i line ->
         if String.trim line = "" then []
         else [ norm_jsonl ~where:(Printf.sprintf "%s:%d" path (i + 1)) line ])
       lines)

let events_of_chrome path =
  let j =
    match parse (read_file path) with
    | j -> j
    | exception Bad (pos, msg) ->
        raise (Invalid (Printf.sprintf "%s: invalid JSON at byte %d: %s" path pos msg))
  in
  match member "traceEvents" j with
  | Some (Arr items) ->
      List.mapi
        (fun i item ->
          norm_chrome ~where:(Printf.sprintf "%s: event %d" path i) item)
        items
  | _ ->
      raise (Invalid (path ^ ": top-level object has no \"traceEvents\" array"))

let () =
  let args = match Array.to_list Sys.argv with _ :: a -> a | [] -> [] in
  let chrome = List.mem "--chrome" args in
  (* --skip-counters: structural checks only (nesting + timestamps).
     For traces of runs that reset the engine stats mid-flight — the
     test suites do — where cumulative counter samples legitimately
     jump backwards. *)
  let check_counters = not (List.mem "--skip-counters" args) in
  let files =
    List.filter (fun a -> a <> "--chrome" && a <> "--skip-counters") args
  in
  if files = [] then begin
    prerr_endline "usage: validate_trace [--chrome] [--skip-counters] FILE ...";
    exit 2
  end;
  let failed = ref false in
  List.iter
    (fun path ->
      match
        let events =
          if chrome then events_of_chrome path else events_of_jsonl path
        in
        validate_events ~path ~check_counters events
      with
      | n_events, n_doms, n_spans ->
          Printf.printf "%s: valid trace (%d events, %d spans, %d domains)\n"
            path n_events n_spans n_doms
      | exception Invalid msg ->
          failed := true;
          Printf.eprintf "%s\n" msg
      | exception Sys_error e ->
          failed := true;
          Printf.eprintf "%s\n" e)
    files;
  if !failed then exit 1
