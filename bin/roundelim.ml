(* roundelim — command-line interface to the round-elimination engine,
   the Π_Δ(a,x) family, the lower-bound chains, and the simulator.

   Examples:
     roundelim show --preset mis --delta 3
     roundelim show --node "M M M;P O O" --edge "M [PO];O O"
     roundelim step --preset mis --delta 3 --steps 2
     roundelim zero-round --preset pi --delta 8 -a 6 -x 1
     roundelim chain --delta 1024 -k 0 --verify
     roundelim lemmas --delta 16 -a 10 -x 2
     roundelim simulate --algo luby --nodes 1000 --max-degree 8 *)

open Cmdliner

let preset_problem preset delta a x node edge =
  match (preset, node, edge) with
  | Some "mis", _, _ -> Lcl.Encodings.mis ~delta
  | Some "so", _, _ -> Lcl.Encodings.sinkless_orientation ~delta
  | Some "mm", _, _ -> Lcl.Encodings.maximal_matching ~delta
  | Some "weak2col", _, _ -> Lcl.Encodings.weak_2_coloring ~delta
  | Some "pi", _, _ -> Core.Family.pi { delta; a; x }
  | Some "pi-plus", _, _ -> Core.Family.pi_plus { delta; a; x }
  | Some "r-pi", _, _ -> Core.Family.r_pi_claimed { delta; a; x }
  | Some other, _, _ ->
      Printf.ksprintf failwith
        "unknown preset %s (expected mis|so|mm|weak2col|pi|pi-plus|r-pi)" other
  | None, Some node, Some edge -> Relim.Parse.problem ~name:"cli" ~node ~edge
  | None, _, _ ->
      failwith "provide either --preset or both --node and --edge"

(* ---- common flags ---- *)

let preset_t =
  Arg.(value & opt (some string) None & info [ "preset"; "p" ] ~doc:"Problem preset: mis, so, mm, weak2col, pi, pi-plus, r-pi.")

let delta_t =
  Arg.(value & opt int 3 & info [ "delta"; "d" ] ~doc:"Maximum degree / node arity Delta.")

let a_t = Arg.(value & opt int 3 & info [ "a" ] ~doc:"Family parameter a (owned edges).")

let x_t = Arg.(value & opt int 0 & info [ "x" ] ~doc:"Family parameter x (allowed outdegree).")

let node_t =
  Arg.(value & opt (some string) None & info [ "node" ] ~doc:"Node constraint; configurations separated by ';'.")

let edge_t =
  Arg.(value & opt (some string) None & info [ "edge" ] ~doc:"Edge constraint; configurations separated by ';'.")

let domains_t =
  Arg.(
    value & opt int 0
    & info [ "domains" ]
        ~doc:
          "Worker domains for the engine's parallel hot paths (results are \
           identical for every count).  0 (the default) defers to the \
           RELIM_DOMAINS environment variable; 1 forces sequential.")

(* [None] (from --domains 0) lets the engine fall back to the
   RELIM_DOMAINS-driven default pool. *)
let pool_of_domains d =
  if d >= 1 then Some (Parallel.Pool.create ~domains:d) else None

let zdd_t =
  Arg.(
    value & flag
    & info [ "zdd" ]
        ~doc:
          "Run the Rbar box search and maximal-box filter on the hash-consed \
           ZDD family representation (lib/zdd) instead of explicit set \
           lists.  Results are byte-identical wherever both paths complete, \
           but the capacity envelope moves: the right-closed family is never \
           materialized, so instances past the explicit path's budgets may \
           finish here.  Also enabled by RELIM_ZDD=1.")

(* [false] (flag absent) defers to the RELIM_ZDD environment variable. *)
let zdd_opt flag = if flag then Some true else None

let certify_t =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:
          "Re-check every R / Rbar output, 0-round verdict and fixed point \
           against the definitions with the independent certificate checker \
           (lib/certify) while the command runs; a divergence aborts with a \
           Violation.  Also enabled by RELIM_CERTIFY=1.")

let trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a structured execution trace (spans + counters for every \
           engine phase) to $(docv).  See $(b,--trace-format).  Tracing is \
           also enabled by RELIM_TRACE=<path> (format from \
           RELIM_TRACE_FORMAT).")

let trace_format_t =
  Arg.(
    value
    & opt (enum [ ("jsonl", Trace.Jsonl); ("chrome", Trace.Chrome) ]) Trace.Jsonl
    & info [ "trace-format" ] ~docv:"FORMAT"
        ~doc:
          "Trace output format: $(b,jsonl) (one event per line) or \
           $(b,chrome) (trace_event JSON for about://tracing / Perfetto).")

(* The sink is opened before any work runs: an unwritable path must
   abort immediately, not after minutes of computation. *)
let with_trace trace fmt f =
  match trace with
  | None -> f ()
  | Some path ->
      (match Trace.enable ~path ~format:fmt with
      | () -> ()
      | exception Sys_error msg ->
          Format.eprintf "roundelim: --trace: cannot open trace file: %s@." msg;
          exit 2);
      Fun.protect ~finally:Trace.close f

(* Run [f] with the certificate checkers installed when requested,
   printing a one-line certification summary afterwards. *)
let with_certify certify f =
  if certify || Certify.Hooks.enabled_in_env () then begin
    Certify.Check.reset_stats ();
    let result = Certify.Hooks.with_hooks f in
    let s = Certify.Check.stats in
    Format.eprintf
      "certified: %d R steps, %d Rbar steps, %d zero-round verdicts, %d \
       fixed points (%d sub-checks skipped on budget, %.3fs)@."
      s.Certify.Check.r_certified s.Certify.Check.rbar_certified
      s.Certify.Check.zero_certified s.Certify.Check.fixed_points_certified
      s.Certify.Check.skipped_subchecks s.Certify.Check.time_s;
    result
  end
  else f ()

let stats_t =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "After the run, print the engine's cumulative hot-path counters \
           (right-closed sets, boxes, dominance filter work, ZDD engine \
           activity) on standard error.")

let print_engine_stats () =
  let s = Relim.Rounde.stats in
  Format.eprintf
    "engine stats:@.\
    \  rbar: calls=%d rc_sets=%d boxes_emitted=%d boxes_pruned=%d (%.3fs)@.\
    \  maximal: dom_checks=%d cheap_skips=%d transport_calls=%d \
     cache_hits=%d (%.3fs)@.\
    \  zdd: nodes=%d cache_hits=%d peak_unique=%d@.\
    \  zdd.maxbox: tuples=%d cubes=%d maximal=%d enumerated=%d@."
    s.Relim.Rounde.rbar_calls s.Relim.Rounde.rc_sets
    s.Relim.Rounde.boxes_emitted s.Relim.Rounde.boxes_pruned
    s.Relim.Rounde.rbar_time_s s.Relim.Rounde.box_dom_checks
    s.Relim.Rounde.box_dom_cheap_skips s.Relim.Rounde.box_transport_calls
    s.Relim.Rounde.transport_cache_hits s.Relim.Rounde.maxbox_time_s
    Zdd.stats.Zdd.nodes Zdd.stats.Zdd.cache_hits Zdd.stats.Zdd.peak_unique
    s.Relim.Rounde.maxbox_tuples s.Relim.Rounde.maxbox_cubes
    s.Relim.Rounde.maxbox_maximal s.Relim.Rounde.maxbox_enumerated

(* ---- show ---- *)

let show preset delta a x node edge diagrams =
  let p = preset_problem preset delta a x node edge in
  Format.printf "%a@." Relim.Problem.pp p;
  if diagrams then begin
    Format.printf "@.edge diagram:@.%a@." Relim.Diagram.pp
      (Relim.Diagram.edge_diagram p);
    Format.printf "@.node diagram:@.%a@." Relim.Diagram.pp
      (Relim.Diagram.node_diagram p)
  end

let show_cmd =
  let diagrams_t =
    Arg.(value & flag & info [ "diagrams" ] ~doc:"Also print the label-strength diagrams.")
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print a problem and optionally its diagrams")
    Term.(const show $ preset_t $ delta_t $ a_t $ x_t $ node_t $ edge_t $ diagrams_t)

(* ---- step ---- *)

let step preset delta a x node edge steps domains zdd stats certify trace tfmt
    =
  with_trace trace tfmt @@ fun () ->
  let pool = pool_of_domains domains in
  let zdd = zdd_opt zdd in
  let p = ref (preset_problem preset delta a x node edge) in
  Format.printf "%a@." Relim.Problem.pp !p;
  with_certify certify (fun () ->
      try
        for i = 1 to steps do
          let { Relim.Rounde.problem = next; _ } =
            Relim.Rounde.step ?pool ?zdd !p
          in
          p := next;
          Format.printf "@.after speedup step %d (%d labels):@.%a@." i
            (Relim.Problem.label_count next)
            Relim.Problem.pp next
        done
      with
      | Relim.Budget.Budget_exceeded { budget; limit } ->
          Format.printf "@.stopped: %s@." (Relim.Budget.message ~budget ~limit)
      | Failure msg -> Format.printf "@.stopped: %s@." msg);
  if stats then print_engine_stats ()

let step_cmd =
  let steps_t =
    Arg.(value & opt int 1 & info [ "steps"; "s" ] ~doc:"Number of speedup steps.")
  in
  Cmd.v
    (Cmd.info "step" ~doc:"Apply round-elimination speedup steps (Rbar o R)")
    Term.(
      const step $ preset_t $ delta_t $ a_t $ x_t $ node_t $ edge_t $ steps_t
      $ domains_t $ zdd_t $ stats_t $ certify_t $ trace_t $ trace_format_t)

(* ---- zero-round ---- *)

let zero_round preset delta a x node edge domains certify trace tfmt =
  with_trace trace tfmt @@ fun () ->
  let pool = pool_of_domains domains in
  let p = preset_problem preset delta a x node edge in
  with_certify certify (fun () ->
      (match Relim.Zeroround.solvable_mirrored p with
      | Some w ->
          Format.printf "0-round solvable under mirrored ports, witness: %s@."
            (Relim.Multiset.to_string p.alpha w)
      | None -> Format.printf "NOT 0-round solvable under mirrored ports@.");
      (match Relim.Zeroround.solvable_arbitrary_ports ?pool p with
      | Some w ->
          Format.printf "0-round solvable under arbitrary ports, witness: %s@."
            (Relim.Multiset.to_string p.alpha w)
      | None -> Format.printf "NOT 0-round solvable under arbitrary ports@.");
      match Relim.Zeroround.randomized_failure_bound p with
      | Some b ->
          Format.printf "randomized 0-round failure probability >= %g@." b
      | None -> ())

let zero_round_cmd =
  Cmd.v
    (Cmd.info "zero-round" ~doc:"Decide 0-round solvability in the PN model")
    Term.(
      const zero_round $ preset_t $ delta_t $ a_t $ x_t $ node_t $ edge_t
      $ domains_t $ certify_t $ trace_t $ trace_format_t)

(* ---- chain ---- *)

let chain delta k verify =
  let chain = Core.Sequence.build ~delta ~x0:k in
  Format.printf "%a@." Core.Sequence.pp_chain chain;
  Format.printf "port-numbering lower bound for %d-outdegree dominating sets: %d rounds@."
    k
    (Core.Sequence.kods_pn_lower_bound ~delta ~k);
  if verify then begin
    let check = Core.Sequence.verify chain in
    Format.printf "mechanical verification of every link: %b@."
      (Core.Sequence.chain_ok check)
  end

let chain_cmd =
  let k_t = Arg.(value & opt int 0 & info [ "k" ] ~doc:"Outdegree bound k (x0 of the chain).") in
  let verify_t = Arg.(value & flag & info [ "verify" ] ~doc:"Mechanically verify every link.") in
  Cmd.v
    (Cmd.info "chain" ~doc:"Build (and verify) the Lemma 13 lower-bound chain")
    Term.(const chain $ delta_t $ k_t $ verify_t)

(* ---- lemmas ---- *)

let lemmas delta a x concrete =
  let params = { Core.Family.delta; a; x } in
  let l6 = Core.Lemma6.verify params in
  Format.printf "Lemma 6  (R(Pi) has the claimed 8-label form): %b@."
    (l6.renaming <> None && l6.denotations_match);
  (match l6.renaming with
  | Some pairs ->
      Format.printf "  renaming: %s@."
        (String.concat ", " (List.map (fun (c, d) -> c ^ " -> " ^ d) pairs))
  | None -> ());
  let l8 = Core.Lemma8.verify_symbolic params in
  Format.printf
    "Lemma 8  (symbolic certificate): %b  [c1=%b c2=%b c3=%b c4=%b c5=%b m1=%b m2=%b arith=%b rel=%b]@."
    (Core.Lemma8.all_ok l8) l8.c1 l8.c2 l8.c3 l8.c4 l8.c5 l8.m1 l8.m2
    l8.arithmetic l8.pi_rel_is_pi_plus;
  if concrete then begin
    let r = Core.Lemma8.verify_concrete params in
    Format.printf
      "Lemma 8  (full Rbar(R(Pi)) computation): %d configurations, all relax: %b@."
      r.boxes r.all_relax
  end;
  Format.printf "Lemma 12 (not 0-round solvable): %b@."
    (Core.Zero_round.deterministic_unsolvable params);
  match Core.Zero_round.randomized_failure_bound params with
  | Some b -> Format.printf "Lemma 15 (randomized failure bound): %g@." b
  | None -> Format.printf "Lemma 15: not applicable@."

let lemmas_cmd =
  let concrete_t =
    Arg.(value & flag & info [ "concrete" ] ~doc:"Also run the full Rbar(R(Pi)) computation (small Delta only).")
  in
  Cmd.v
    (Cmd.info "lemmas" ~doc:"Run the mechanized lemma verifiers for Pi(Delta, a, x)")
    Term.(const lemmas $ delta_t $ a_t $ x_t $ concrete_t)

(* ---- simplify ---- *)

let simplify preset delta a x node edge merge_from merge_into =
  let p = preset_problem preset delta a x node edge in
  let p =
    match (merge_from, merge_into) with
    | Some f, Some i ->
        Format.printf "merge %s -> %s sound: %b@." f i
          (Relim.Simplify.merge_is_sound p ~from_:f ~into_:i);
        Relim.Simplify.merge p ~from_:f ~into_:i
    | None, None -> Relim.Simplify.merge_equivalent p
    | _ -> failwith "provide both --merge-from and --merge-into, or neither"
  in
  Format.printf "%a@." Relim.Problem.pp (Relim.Simplify.normalize p)

let simplify_cmd =
  let from_t =
    Arg.(value & opt (some string) None & info [ "merge-from" ] ~doc:"Label to merge away.")
  in
  let into_t =
    Arg.(value & opt (some string) None & info [ "merge-into" ] ~doc:"Label to merge into.")
  in
  Cmd.v
    (Cmd.info "simplify" ~doc:"Merge labels / drop redundant configurations")
    Term.(const simplify $ preset_t $ delta_t $ a_t $ x_t $ node_t $ edge_t $ from_t $ into_t)

(* ---- save / load ---- *)

let save preset delta a x node edge file =
  let p = preset_problem preset delta a x node edge in
  let oc = open_out file in
  output_string oc (Relim.Serialize.to_string p);
  close_out oc;
  Format.printf "wrote %s@." file

let save_cmd =
  let file_t = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "save" ~doc:"Serialize a problem to a file")
    Term.(const save $ preset_t $ delta_t $ a_t $ x_t $ node_t $ edge_t $ file_t)

let load file diagrams =
  let ic = open_in file in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  let p = Relim.Serialize.of_string contents in
  Format.printf "%a@." Relim.Problem.pp p;
  if diagrams then
    Format.printf "@.edge diagram:@.%a@." Relim.Diagram.pp
      (Relim.Diagram.edge_diagram p)

let load_cmd =
  let file_t = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let diagrams_t = Arg.(value & flag & info [ "diagrams" ] ~doc:"Also print diagrams.") in
  Cmd.v
    (Cmd.info "load" ~doc:"Load and print a serialized problem")
    Term.(const load $ file_t $ diagrams_t)

(* ---- upper-bound ---- *)

let upper_bound preset delta a x node edge max_steps domains certify trace tfmt =
  with_trace trace tfmt @@ fun () ->
  let pool = pool_of_domains domains in
  let p = preset_problem preset delta a x node edge in
  with_certify certify @@ fun () ->
  match Relim.Upperbound.search ~max_steps ?pool p with
  | Relim.Upperbound.Solvable_in k ->
      Format.printf
        "solvable in %d round(s) in the PN model (on high-girth Delta-regular instances)@."
        k
  | Relim.Upperbound.Unknown_after k ->
      Format.printf "no 0-round problem reached within %d step(s) (budget/blow-up)@." k

let upper_bound_cmd =
  let steps_t =
    Arg.(value & opt int 3 & info [ "max-steps" ] ~doc:"Speedup-step budget.")
  in
  Cmd.v
    (Cmd.info "upper-bound" ~doc:"Search for an upper bound by iterated speedup")
    Term.(
      const upper_bound $ preset_t $ delta_t $ a_t $ x_t $ node_t $ edge_t
      $ steps_t $ domains_t $ certify_t $ trace_t $ trace_format_t)

(* ---- fixed-point ---- *)

let fixed_point preset delta a x node edge max_steps domains certify trace tfmt =
  with_trace trace tfmt @@ fun () ->
  let pool = pool_of_domains domains in
  let p = preset_problem preset delta a x node edge in
  with_certify certify @@ fun () ->
  match Relim.Fixedpoint.detect ~max_steps ?pool p with
  | Relim.Fixedpoint.Fixed_point (p0, _) ->
      Format.printf "the problem is itself a fixed point of Rbar o R:@.%a@."
        Relim.Problem.pp p0;
      Option.iter (Format.printf "=> %s@.")
        (Relim.Fixedpoint.lower_bound_statement
           (Relim.Fixedpoint.detect ~max_steps ?pool p))
  | Relim.Fixedpoint.Reaches_fixed_point (steps, fp) ->
      Format.printf "stabilizes after %d step(s) at:@.%a@." steps
        Relim.Problem.pp fp;
      Option.iter (Format.printf "=> %s@.")
        (Relim.Fixedpoint.lower_bound_statement
           (Relim.Fixedpoint.Reaches_fixed_point (steps, fp)))
  | Relim.Fixedpoint.No_fixed_point_found last ->
      Format.printf "no fixed point within the step budget; last problem (%d labels):@.%a@."
        (Relim.Problem.label_count last) Relim.Problem.pp last

let fixed_point_cmd =
  let steps_t =
    Arg.(value & opt int 4 & info [ "max-steps" ] ~doc:"Speedup-step budget.")
  in
  Cmd.v
    (Cmd.info "fixed-point" ~doc:"Search for a round-elimination fixed point")
    Term.(
      const fixed_point $ preset_t $ delta_t $ a_t $ x_t $ node_t $ edge_t
      $ steps_t $ domains_t $ certify_t $ trace_t $ trace_format_t)

(* ---- autopilot ---- *)

let autopilot preset delta a x node edge max_steps beam domains certify trace
    tfmt =
  with_trace trace tfmt @@ fun () ->
  let pool = pool_of_domains domains in
  let p = preset_problem preset delta a x node edge in
  with_certify certify @@ fun () ->
  let limits =
    { Autopilot.default_limits with Autopilot.max_steps; beam }
  in
  let report = Autopilot.search ~limits ?pool p in
  List.iter
    (fun s ->
      Format.printf "step %d: %s -> %d labels@." s.Autopilot.step_index
        (match s.Autopilot.cover with
        | None -> "identity relaxation"
        | Some n -> Printf.sprintf "quotient by a %d-set cover" n)
        s.Autopilot.result_labels)
    report.Autopilot.steps;
  Format.printf
    "verdict: %s  (%d candidates explored, %d budget-skipped, %d certified \
     steps, %.2fs)@."
    (Autopilot.verdict_string report.Autopilot.verdict)
    report.Autopilot.candidates_explored report.Autopilot.budget_skips
    report.Autopilot.certified_steps report.Autopilot.wall_s;
  match report.Autopilot.verdict with
  | Autopilot.Fixed_point { problem; period } ->
      Format.printf
        "certified relaxed cycle of period %d through a non-0-round-solvable \
         state:@.%a@.=> Omega(log n) deterministic and Omega(log log n) \
         randomized LOCAL lower bounds@."
        period Relim.Problem.pp problem
  | Autopilot.Upper_bound { steps } ->
      Format.printf
        "certified upper bound: solvable in %d round(s) in the PN model on \
         high-girth Delta-regular instances@."
        steps
  | Autopilot.Exhausted { last } ->
      Format.printf "search exhausted; last state (%d labels):@.%a@."
        (Relim.Problem.label_count last)
        Relim.Problem.pp last

let autopilot_cmd =
  let steps_t =
    Arg.(
      value
      & opt int Autopilot.default_limits.Autopilot.max_steps
      & info [ "max-steps" ] ~doc:"Accepted-step budget of the search.")
  in
  let beam_t =
    Arg.(
      value
      & opt int Autopilot.default_limits.Autopilot.beam
      & info [ "beam" ] ~doc:"Candidate covers evaluated per step.")
  in
  Cmd.v
    (Cmd.info "autopilot"
       ~doc:
         "Search for a certified relaxed fixed point (or upper bound) by \
          quotient-cover relaxation")
    Term.(
      const autopilot $ preset_t $ delta_t $ a_t $ x_t $ node_t $ edge_t
      $ steps_t $ beam_t $ domains_t $ certify_t $ trace_t $ trace_format_t)

(* ---- certify ---- *)

let certify delta k n =
  let cert = Core.Theorem14.certify ~delta ~k in
  Format.printf "%a@." Core.Theorem14.pp cert;
  Format.printf "valid: %b@." (Core.Theorem14.valid cert);
  Format.printf "at n = %g: det >= %.2f, rand >= %.2f rounds@." n
    (Core.Theorem14.conclusion_det cert ~n)
    (Core.Theorem14.conclusion_rand cert ~n)

let certify_cmd =
  let k_t = Arg.(value & opt int 0 & info [ "k" ] ~doc:"Outdegree bound.") in
  let n_t = Arg.(value & opt float 1e9 & info [ "n" ] ~doc:"Number of nodes for the LOCAL bound.") in
  Cmd.v
    (Cmd.info "certify" ~doc:"Assemble and check the Theorem 14 certificate")
    Term.(const certify $ delta_t $ k_t $ n_t)

(* ---- dot ---- *)

let dot preset delta a x node edge which =
  let p = preset_problem preset delta a x node edge in
  match which with
  | "edge" -> print_string (Relim.Diagram.to_dot ~name:(p.Relim.Problem.name ^ "-edge") (Relim.Diagram.edge_diagram p))
  | "node" -> print_string (Relim.Diagram.to_dot ~name:(p.Relim.Problem.name ^ "-node") (Relim.Diagram.node_diagram p))
  | other -> Printf.ksprintf failwith "unknown diagram %s (edge|node)" other

let dot_cmd =
  let which_t =
    Arg.(value & opt string "edge" & info [ "which" ] ~doc:"Which diagram: edge or node.")
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit a GraphViz rendering of a label-strength diagram")
    Term.(const dot $ preset_t $ delta_t $ a_t $ x_t $ node_t $ edge_t $ which_t)

(* ---- verify-all ---- *)

let verify_all delta k concrete =
  let report = Core.Paper.verify ~concrete_lemma8:concrete ~delta ~k () in
  Format.printf "%a@." Core.Paper.pp report;
  if not (Core.Paper.all_ok report) then exit 1

let verify_all_cmd =
  let k_t = Arg.(value & opt int 0 & info [ "k" ] ~doc:"Outdegree bound.") in
  let concrete_t =
    Arg.(value & flag & info [ "concrete" ] ~doc:"Include the full Rbar(R(Pi)) cross-check.")
  in
  Cmd.v
    (Cmd.info "verify-all" ~doc:"Run the entire mechanized verification at (Delta, k)")
    Term.(const verify_all $ delta_t $ k_t $ concrete_t)

(* ---- simulate ---- *)

let simulate algo nodes max_degree seed k =
  let g = Dsgraph.Tree_gen.random ~n:nodes ~max_degree ~seed in
  let count sel = Array.fold_left (fun acc b -> acc + if b then 1 else 0) 0 sel in
  match algo with
  | "luby" ->
      let mis, rounds = Distalgo.Luby.run ~seed g in
      Format.printf "Luby MIS: |S| = %d of %d, %d rounds@." (count mis) nodes rounds
  | "cv-mis" ->
      let mis, rounds = Distalgo.Kods.mis_on_tree g ~root:0 in
      Format.printf "CV + color-iteration MIS: |S| = %d of %d, %d rounds@."
        (count mis) nodes rounds
  | "kods" ->
      let res = Distalgo.Kods.via_arbdefective g ~k in
      Format.printf
        "k-outdegree dominating set (k=%d): |S| = %d of %d, %d rounds, palette %d@."
        k
        (count res.Distalgo.Kods.selected)
        nodes res.Distalgo.Kods.rounds res.Distalgo.Kods.palette
  | other -> Printf.ksprintf failwith "unknown algorithm %s (luby|cv-mis|kods)" other

let simulate_cmd =
  let algo_t =
    Arg.(value & opt string "luby" & info [ "algo" ] ~doc:"Algorithm: luby, cv-mis, kods.")
  in
  let nodes_t = Arg.(value & opt int 1000 & info [ "nodes"; "n" ] ~doc:"Number of nodes.") in
  let degree_t = Arg.(value & opt int 8 & info [ "max-degree" ] ~doc:"Maximum degree.") in
  let seed_t = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let k_t = Arg.(value & opt int 1 & info [ "k" ] ~doc:"Outdegree bound for kods.") in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run a distributed algorithm on a random tree")
    Term.(const simulate $ algo_t $ nodes_t $ degree_t $ seed_t $ k_t)

let main_cmd =
  Cmd.group
    (Cmd.info "roundelim" ~version:"1.0.0"
       ~doc:"Round elimination, the Pi(Delta,a,x) family, and the MIS lower-bound machinery")
    [
      show_cmd;
      step_cmd;
      zero_round_cmd;
      chain_cmd;
      lemmas_cmd;
      simulate_cmd;
      fixed_point_cmd;
      autopilot_cmd;
      certify_cmd;
      simplify_cmd;
      save_cmd;
      load_cmd;
      upper_bound_cmd;
      verify_all_cmd;
      dot_cmd;
    ]

let () =
  (* RELIM_TRACE=<path> traces engine calls from any subcommand, even
     those without a --trace flag; like --trace, a bad path aborts
     before any work runs. *)
  (match Trace.setup_from_env () with
  | () -> ()
  | exception Sys_error msg ->
      Format.eprintf "roundelim: %s: cannot open trace file: %s@."
        Trace.env_var msg;
      exit 2);
  (* RELIM_CERTIFY=1 certifies engine calls from any subcommand, even
     those without a --certify flag (lemmas, verify-all, chain, ...). *)
  Certify.Hooks.install_if_env ();
  exit (Cmd.eval main_cmd)
