(* certify_fuzz — differential fuzzing harness for the engine.

   Generates random problems, runs the optimized pipeline (R, Rbar,
   step at 1 and N domains, both 0-round deciders), certifies every
   output with lib/certify and cross-checks 0-round verdicts against
   brute-force simulation; shrinks any divergence to a minimal
   reproducer printed in the parser's concrete syntax.

   Exit status: 0 when no violation survived, 1 otherwise.

   --self-test injects a fault into every R output instead (shrinking
   each denotation) and *requires* the harness to catch it — this
   guards the guard. *)

open Cmdliner

let fuzz count seed max_labels max_delta domains self_test =
  let mutate_r =
    if not self_test then None
    else
      Some
        (fun (d : Relim.Rounde.denoted) ->
          let changed = ref false in
          let denots =
            Array.map
              (fun s ->
                if (not !changed) && Relim.Labelset.cardinal s >= 2 then begin
                  changed := true;
                  Relim.Labelset.remove
                    (List.hd (List.rev (Relim.Labelset.elements s)))
                    s
                end
                else s)
              d.Relim.Rounde.denotations
          in
          { d with Relim.Rounde.denotations = denots })
  in
  let report =
    Certify.Fuzz.run ?mutate_r ~count ~seed ~max_labels ~max_delta ~domains ()
  in
  Format.printf "%a" Certify.Fuzz.pp_report report;
  let violations = List.length report.Certify.Fuzz.reproducers in
  if self_test then
    if violations > 0 then begin
      Format.printf
        "self-test: injected fault caught %d time(s) — harness works@."
        violations;
      exit 0
    end
    else begin
      Format.printf "self-test: injected fault NEVER caught@.";
      exit 1
    end
  else if violations > 0 then exit 1

let fuzz_cmd =
  let count_t =
    Arg.(value & opt int 500 & info [ "count"; "n" ] ~doc:"Number of random problems.")
  in
  let seed_t = Arg.(value & opt int 2026 & info [ "seed" ] ~doc:"Generator seed.") in
  let labels_t =
    Arg.(value & opt int 4 & info [ "max-labels" ] ~doc:"Maximum alphabet size.")
  in
  let delta_t =
    Arg.(value & opt int 3 & info [ "max-delta" ] ~doc:"Maximum node arity.")
  in
  let domains_t =
    Arg.(
      value & opt int 2
      & info [ "domains" ]
          ~doc:
            "Also compare Rounde.step between a sequential run and a run on \
             this many domains; <= 1 disables the comparison.")
  in
  let self_test_t =
    Arg.(
      value & flag
      & info [ "self-test" ]
          ~doc:"Inject a fault into every R output and require it to be caught.")
  in
  Cmd.v
    (Cmd.info "certify_fuzz" ~version:"1.0.0"
       ~doc:
         "Differentially fuzz the round-elimination engine against the \
          independent certificate checker")
    Term.(
      const fuzz $ count_t $ seed_t $ labels_t $ delta_t $ domains_t
      $ self_test_t)

let () =
  (match Trace.setup_from_env () with
  | () -> ()
  | exception Sys_error msg ->
      Format.eprintf "certify_fuzz: %s: cannot open trace file: %s@."
        Trace.env_var msg;
      exit 2);
  exit (Cmd.eval fuzz_cmd)
