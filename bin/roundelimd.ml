(* roundelimd — the persistent round-elimination daemon.

   Serves speedup-step and fixed-point-detection requests over a
   JSON-lines protocol (Unix socket, optionally TCP on loopback),
   backed by the certificate-gated on-disk result store in lib/store.

   Examples:
     roundelimd serve --socket /tmp/relim.sock --store /var/tmp/relim-store
     roundelimd serve --socket s.sock --tcp 7437 --domains 4 --trace d.jsonl
     echo '{"id":1,"op":"step","problem":"..."}' | roundelimd client --socket s.sock
     roundelimd validate-store --store /var/tmp/relim-store *)

open Cmdliner

let socket_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket"; "s" ] ~docv:"PATH"
        ~doc:"Unix socket path to listen on (unlinked and rebound).")

let tcp_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "tcp" ] ~docv:"PORT"
        ~doc:"Also listen on TCP $(docv), loopback only.")

let store_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Directory of the on-disk result store.  Every entry is admitted \
           with an independently re-validated certificate and re-validated \
           again on load; omitting the flag runs without persistence.")

let domains_t =
  Arg.(
    value & opt int 0
    & info [ "domains" ]
        ~doc:
          "Worker domains for request preparation and the engine's parallel \
           hot paths (results are identical for every count).  0 (the \
           default) defers to the RELIM_DOMAINS environment variable.")

let trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a structured execution trace (per-batch and per-request \
           spans, store hit/miss counters) to $(docv).")

let trace_format_t =
  Arg.(
    value
    & opt (enum [ ("jsonl", Trace.Jsonl); ("chrome", Trace.Chrome) ]) Trace.Jsonl
    & info [ "trace-format" ] ~docv:"FORMAT"
        ~doc:"Trace output format: $(b,jsonl) or $(b,chrome).")

let with_trace trace fmt f =
  match trace with
  | None ->
      (match Trace.setup_from_env () with
      | () -> ()
      | exception Sys_error msg ->
          Format.eprintf "roundelimd: RELIM_TRACE: cannot open trace file: %s@."
            msg;
          exit 2);
      Fun.protect ~finally:Trace.close f
  | Some path ->
      (match Trace.enable ~path ~format:fmt with
      | () -> ()
      | exception Sys_error msg ->
          Format.eprintf "roundelimd: --trace: cannot open trace file: %s@." msg;
          exit 2);
      Fun.protect ~finally:Trace.close f

let pool_of_domains d =
  if d >= 1 then Some (Parallel.Pool.create ~domains:d) else None

(* ---- serve ---- *)

let serve socket tcp store domains trace trace_format =
  let listen =
    (match socket with Some p -> [ Store.Daemon.Unix_socket p ] | None -> [])
    @ match tcp with Some p -> [ Store.Daemon.Tcp p ] | None -> []
  in
  if listen = [] then begin
    Format.eprintf "roundelimd: provide --socket PATH and/or --tcp PORT@.";
    exit 2
  end;
  with_trace trace trace_format @@ fun () ->
  let config =
    {
      Store.Daemon.default_config with
      Store.Daemon.listen;
      store_dir = store;
      pool = pool_of_domains domains;
    }
  in
  (match socket with
  | Some p -> Format.printf "roundelimd: listening on %s@." p
  | None -> ());
  (match tcp with
  | Some p -> Format.printf "roundelimd: listening on tcp:%d@." p
  | None -> ());
  Store.Daemon.serve config

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the daemon until a shutdown request arrives.")
    Term.(
      const serve $ socket_t $ tcp_t $ store_t $ domains_t $ trace_t
      $ trace_format_t)

(* ---- client ---- *)

(* Pipe mode: forward JSONL request lines from stdin, print response
   lines to stdout.  Exit 0 if every response was ok, 1 otherwise —
   which is what the smoke tests key on. *)
let client socket tcp =
  let target =
    match (socket, tcp) with
    | Some p, _ -> `Unix p
    | None, Some p -> `Tcp p
    | None, None ->
        Format.eprintf "roundelimd: provide --socket PATH or --tcp PORT@.";
        exit 2
  in
  match Store.Client.connect ~retries:40 target with
  | Error msg ->
      Format.eprintf "roundelimd: cannot connect: %s@." msg;
      exit 2
  | Ok conn ->
      let failures = ref 0 in
      (try
         while true do
           let line = input_line stdin in
           if String.trim line <> "" then
             match Store.Client.request conn line with
             | Ok response ->
                 print_endline response;
                 (match Store.Json.of_string response with
                 | Ok j
                   when Option.bind (Store.Json.member "ok" j)
                          Store.Json.bool_opt
                        = Some true ->
                     ()
                 | _ -> incr failures)
             | Error msg ->
                 Format.eprintf "roundelimd: %s@." msg;
                 incr failures;
                 raise Exit
         done
       with End_of_file | Exit -> ());
      Store.Client.close conn;
      exit (if !failures = 0 then 0 else 1)

let client_cmd =
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Forward JSONL requests from stdin to a running daemon and print \
          the responses; exits non-zero if any response was an error.")
    Term.(const client $ socket_t $ tcp_t)

(* ---- validate-store ---- *)

let strict_t =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:"Exit non-zero when any entry is rejected.")

let validate_store store strict =
  match store with
  | None ->
      Format.eprintf "roundelimd: provide --store DIR@.";
      exit 2
  | Some dir ->
      let t = Store.Disk.open_dir dir in
      let total, ok, rejects = Store.Disk.validate_all t in
      Format.printf "store %s: %d entries, %d valid, %d rejected@." dir total
        ok (List.length rejects);
      List.iter
        (fun (file, reason) -> Format.printf "  rejected %s: %s@." file reason)
        rejects;
      if strict && rejects <> [] then exit 1

let validate_store_cmd =
  Cmd.v
    (Cmd.info "validate-store"
       ~doc:
         "Re-validate every entry of an on-disk result store from scratch \
          (framing, checksum, certificate replay) and report rejects.")
    Term.(const validate_store $ store_t $ strict_t)

let () =
  let info =
    Cmd.info "roundelimd" ~version:"%%VERSION%%"
      ~doc:
        "Persistent round-elimination daemon with a certificate-gated result \
         store."
  in
  exit (Cmd.eval (Cmd.group info [ serve_cmd; client_cmd; validate_store_cmd ]))
