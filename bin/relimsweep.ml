(* relimsweep — resumable parametric sweep over the lemma pipeline.

   Examples:
     relimsweep --out sweep.jsonl --families mis,so --deltas 2,3
     relimsweep --out sweep.jsonl --families pi --deltas 3,4 \
       --a-values 3 --x-values 1 --engine-zdd both --domain-counts 1,2
     relimsweep --out sweep.jsonl --families col --deltas 2 \
       --label-counts 2,3 --fixed-clock        # byte-deterministic journal

   Re-running a completed sweep appends nothing; an interrupted sweep
   resumes where it stopped (see lib/sweep/README.md). *)

open Cmdliner

let families_t =
  Arg.(
    value
    & opt (list string) [ "mis"; "so" ]
    & info [ "families" ]
        ~doc:
          "Comma-separated problem families: mis, so, mm, col, pi, pi-plus.")

let deltas_t =
  Arg.(
    value & opt (list int) [ 2; 3 ]
    & info [ "deltas" ] ~doc:"Comma-separated Delta values.")

let a_values_t =
  Arg.(
    value & opt (list int) [ 0 ]
    & info [ "a-values" ]
        ~doc:"Comma-separated a values (consumed by pi / pi-plus cells).")

let x_values_t =
  Arg.(
    value & opt (list int) [ 0 ]
    & info [ "x-values" ]
        ~doc:"Comma-separated x values (consumed by pi / pi-plus cells).")

let label_counts_t =
  Arg.(
    value & opt (list int) [ 0 ]
    & info [ "label-counts" ]
        ~doc:"Comma-separated label counts (consumed by coloring cells).")

let engine_zdd_t =
  Arg.(
    value
    & opt (enum [ ("explicit", [ false ]); ("zdd", [ true ]);
                  ("both", [ false; true ]) ])
        [ false ]
    & info [ "engine-zdd" ]
        ~doc:
          "Which Rbar representation(s) to sweep: $(b,explicit), $(b,zdd) \
           or $(b,both).")

let domain_counts_t =
  Arg.(
    value & opt (list int) [ 1 ]
    & info [ "domain-counts" ]
        ~doc:
          "Comma-separated worker-domain counts (1 = sequential).  Records \
           are identical across counts except transport_cache_hits, which \
           is recorded as null for multi-domain cells.")

let certify_t =
  Arg.(
    value
    & opt (enum [ ("off", [ false ]); ("on", [ true ]);
                  ("both", [ false; true ]) ])
        [ false ]
    & info [ "certify" ]
        ~doc:
          "Whether cells run with the independent certifier hooks \
           installed: $(b,off), $(b,on) or $(b,both).")

let out_t =
  Arg.(
    value & opt string "sweep.jsonl"
    & info [ "out"; "o" ] ~doc:"Journal path (JSON lines, appended).")

let expand_limit_t =
  Arg.(
    value & opt float Sweep.default_budgets.Sweep.expand_limit
    & info [ "expand-limit" ]
        ~doc:"Per-cell node-constraint expansion budget.")

let rc_limit_t =
  Arg.(
    value & opt int Sweep.default_budgets.Sweep.rc_limit
    & info [ "rc-limit" ]
        ~doc:"Per-cell right-closed-set budget (explicit path).")

let fp_steps_t =
  Arg.(
    value & opt int Sweep.default_budgets.Sweep.fp_steps
    & info [ "fp-steps" ] ~doc:"Fixed-point detection step budget.")

let ap_steps_t =
  Arg.(
    value & opt int Sweep.default_budgets.Sweep.ap_steps
    & info [ "ap-steps" ] ~doc:"Autopilot accepted-step budget.")

let ap_beam_t =
  Arg.(
    value & opt int Sweep.default_budgets.Sweep.ap_beam
    & info [ "ap-beam" ] ~doc:"Autopilot candidate covers per step.")

let max_cells_t =
  Arg.(
    value & opt int 0
    & info [ "max-cells" ]
        ~doc:
          "Execute at most this many not-yet-journaled cells, then stop \
           (0 = unlimited).  Served cells are free; the resume tests use \
           this to stop a sweep mid-grid deterministically.")

let fixed_clock_t =
  Arg.(
    value & flag
    & info [ "fixed-clock" ]
        ~doc:
          "Record wall_s as 0.0 everywhere, making the journal fully \
           byte-deterministic (used by the resume byte-identity checks).")

let quiet_t =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No per-cell progress lines.")

let run families deltas a_values x_values label_counts zdds domain_counts
    certifies out expand_limit rc_limit fp_steps ap_steps ap_beam max_cells
    fixed_clock quiet =
  let families =
    List.map
      (fun s ->
        match Sweep.family_of_string s with
        | Ok f -> f
        | Error msg -> failwith msg)
      families
  in
  let engines =
    List.concat_map
      (fun zdd ->
        List.concat_map
          (fun domains ->
            List.map
              (fun certify -> { Sweep.zdd; domains; certify })
              certifies)
          domain_counts)
      zdds
  in
  let grid =
    { Sweep.families; deltas; a_values; x_values; label_counts; engines }
  in
  let budgets =
    { Sweep.expand_limit; rc_limit; fp_steps; ap_steps; ap_beam }
  in
  let clock = if fixed_clock then fun () -> 0. else Unix.gettimeofday in
  let log =
    if quiet then fun _ -> () else fun line -> Printf.eprintf "%s\n%!" line
  in
  let max_cells = if max_cells > 0 then Some max_cells else None in
  let s = Sweep.run ~clock ?max_cells ~log ~budgets ~out grid in
  Printf.printf
    "sweep: %d cells (%d served, %d ran) — %d ok, %d budget, %d skipped%s%s \
     [%.2fs]\n"
    s.Sweep.total s.Sweep.served s.Sweep.ran s.Sweep.ok s.Sweep.budgeted
    s.Sweep.skipped
    (if s.Sweep.recovered_tail then ", recovered damaged tail" else "")
    (if s.Sweep.complete then ", complete" else ", INCOMPLETE")
    s.Sweep.wall_s;
  if not s.Sweep.complete then exit 3

let cmd =
  Cmd.v
    (Cmd.info "relimsweep" ~version:"1.0.0"
       ~doc:
         "Resumable parametric sweep of the round-elimination lemma \
          pipeline over a (family x Delta x a x x x label-count) x engine \
          grid")
    Term.(
      const run $ families_t $ deltas_t $ a_values_t $ x_values_t
      $ label_counts_t $ engine_zdd_t $ domain_counts_t $ certify_t $ out_t
      $ expand_limit_t $ rc_limit_t $ fp_steps_t $ ap_steps_t $ ap_beam_t
      $ max_cells_t $ fixed_clock_t $ quiet_t)

let () =
  (match Trace.setup_from_env () with
  | () -> ()
  | exception Sys_error msg ->
      Format.eprintf "relimsweep: %s: cannot open trace file: %s@."
        Trace.env_var msg;
      exit 2);
  match Cmd.eval cmd with
  | code -> exit code
  | exception Failure msg ->
      Format.eprintf "relimsweep: %s@." msg;
      exit 2
