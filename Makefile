.PHONY: all build test check bench bench-smoke clean

all: build

build:
	dune build

test:
	dune runtest

# Tier-1 gate: everything must compile and every test suite must pass.
check:
	dune build
	dune runtest

bench:
	dune exec bench/main.exe

# Small pinned slice of the benchmark suite, suitable for CI: runs the
# engine per-step statistics section (which exercises the lattice-native
# R/Rbar pipeline end to end and rewrites BENCH_relim.json) and checks
# that the hand-assembled JSON dump is well-formed and carries the
# environment meta block (domains, OCaml version, dune profile).
bench-smoke:
	dune build bench
	dune exec bench/main.exe -- relim_perf
	dune exec bench/validate_json.exe -- --require-meta BENCH_relim.json

clean:
	dune clean
