.PHONY: all build test check bench bench-smoke fuzz-smoke examples-smoke \
	trace-smoke daemond-smoke autopilot-smoke zdd-smoke sweep-smoke clean

all: build

build:
	dune build

test:
	dune runtest

# Tier-1 gate: everything must compile and every test suite must pass.
check:
	dune build
	dune runtest

bench:
	dune exec bench/main.exe

# Small pinned slice of the benchmark suite, suitable for CI: runs the
# engine per-step statistics section (which exercises the lattice-native
# R/Rbar pipeline end to end and rewrites BENCH_relim.json) plus the
# ZDD Delta-wall scaling section, and checks that the hand-assembled
# JSON dump is well-formed, carries the environment meta block
# (domains, OCaml version, dune profile) and the roundelimd
# load-generator section, and that the "zdd" section upholds the
# engine contract (statuses, engine modes, byte-identity flags,
# node counts monotone within each ladder rung, a recorded
# explicit-budget/zdd-ok wall instance, and the mis3_autopilot
# parity record).
bench-smoke:
	dune build bench
	dune exec bench/main.exe -- relim_perf
	dune exec bench/main.exe -- zdd
	dune exec bench/validate_json.exe -- --require-meta --require-daemon --require-zdd BENCH_relim.json
	dune exec bench/validate_trace.exe -- BENCH_trace.jsonl

# End-to-end smoke of the round-elimination daemon and its
# certificate-gated result store: cold batch, garbage rejection, kill -9,
# on-disk corruption caught by validate-store (--strict exits non-zero),
# and a warm restart whose responses are byte-identical to the cold run.
daemond-smoke:
	dune build bin
	sh scripts/daemond_smoke.sh

# Tracing smoke: run the pipeline under both sinks (the --trace flag
# and the RELIM_TRACE env var) and validate the emitted traces against
# the schema checker (span nesting, per-domain monotone timestamps,
# counter/span reconciliation).
trace-smoke:
	dune build bin bench
	dune exec bin/roundelim.exe -- step -p mis -d 3 --trace trace_smoke.jsonl > /dev/null
	dune exec bench/validate_trace.exe -- trace_smoke.jsonl
	dune exec bin/roundelim.exe -- step -p mis -d 3 --trace trace_smoke.json --trace-format chrome > /dev/null
	dune exec bench/validate_trace.exe -- --chrome trace_smoke.json
	RELIM_TRACE=trace_smoke_env.jsonl dune exec bin/roundelim.exe -- fixed-point -p pi -d 5 -a 4 -x 2 --max-steps 1 --domains 2 > /dev/null
	dune exec bench/validate_trace.exe -- trace_smoke_env.jsonl

# Autopilot smoke: rediscover the sinkless-orientation fixed point
# through the certified relaxation search (CLI, with the certifier
# hooks on), then run the autopilot benchmark section — the SO
# rediscovery plus the Pi(5,4,2) budget-wall upper bound — and check
# that its section landed in BENCH_relim.json.
autopilot-smoke:
	dune build bin bench
	dune exec bin/roundelim.exe -- autopilot -p so -d 3 --certify
	dune exec bench/main.exe -- autopilot
	dune exec bench/validate_json.exe -- --require-autopilot BENCH_relim.json

# Differential fuzzing smoke, pinned and CI-sized (well under 30s): 500
# random problems through the optimized pipeline with every output
# re-checked by the independent certifiers in lib/certify (including the
# sequential-vs-2-domain step comparison and the simulator cross-check
# of 0-round verdicts), plus the harness self-test, which injects an
# engine fault and requires it to be caught and shrunk.
fuzz-smoke:
	dune build bin
	dune exec bin/certify_fuzz.exe -- --count 500 --seed 2026
	dune exec bin/certify_fuzz.exe -- --count 25 --self-test --domains 1

# ZDD-path smoke: the equivalence suite (engine ops and the multi-slot
# box layer vs brute force, right-closed families vs the order-ideal
# enumeration, rbar and full-step byte-identity on all presets, and
# the beyond-the-wall instances — col_18..20 trip the explicit path's
# budgets but complete on the fully symbolic rung, col_21 falls past
# the slot envelope to the streaming rung), then the CLI on both
# opt-in routes (--zdd flag and RELIM_ZDD env var); the mis step here
# exercises the symbolic maximal-box filter end to end.
zdd-smoke:
	dune build bin test/zdd
	dune exec test/zdd/test_zdd.exe
	dune exec bin/roundelim.exe -- step -p mis -d 3 -s 2 --zdd --stats > /dev/null
	RELIM_ZDD=1 dune exec bin/roundelim.exe -- step -p mis -d 3 -s 2 > /dev/null

# Sweep-harness smoke: a fixed-clock reference sweep over a small grid
# crossing both engines and the certifier, then every recovery path —
# deterministic interruption, a real kill -9, and a torn trailing
# record — each resumed to a byte-identical journal; finally a
# real-clock sweep analyzed into the "sweep" section of a bench file
# and gated by validate_json --require-sweep.  The journal is kept as
# sweep_smoke.jsonl for the CI artifact upload.
sweep-smoke:
	dune build bin scripts bench
	sh scripts/sweep_smoke.sh
	dune exec bin/relimsweep.exe -- --out sweep_smoke.jsonl -q \
	  --families mis,so,col --deltas 2 --label-counts 2 \
	  --engine-zdd both --certify both --ap-steps 1 --ap-beam 2
	dune exec scripts/analyze_sweep.exe -- sweep_smoke.jsonl --bench BENCH_relim.json > /dev/null
	dune exec bench/validate_json.exe -- --require-sweep BENCH_relim.json

# Compile and run the examples (they also run under `dune runtest`; this
# target gives CI an explicit, separately-reported leg).
examples-smoke:
	dune build examples
	dune exec examples/quickstart.exe > /dev/null
	dune exec examples/problem_zoo.exe > /dev/null

clean:
	dune clean
