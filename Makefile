.PHONY: all build test check bench clean

all: build

build:
	dune build

test:
	dune runtest

# Tier-1 gate: everything must compile and every test suite must pass.
check:
	dune build
	dune runtest

bench:
	dune exec bench/main.exe

clean:
	dune clean
