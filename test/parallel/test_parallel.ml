(* Edge-case tests for the domain pool (lib/parallel): degenerate
   domain counts, exception propagation from either end of the index
   range, stopped-pool and nested-run fallbacks, and a property pinning
   the parallel combinators to their sequential reference. *)

module Pool = Parallel.Pool

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* A pool with real workers when the machine allows it; the tests are
   written to pass (as sequential degradations) even on 1 core. *)
let parallel_domains = max 2 (min 4 (Domain.recommended_domain_count ()))

let test_domains_clamped () =
  (* domains <= 1 clamps to 1 and never spawns; the combinators still
     run every index, in order. *)
  List.iter
    (fun d ->
      let pool = Pool.create ~domains:d in
      check_int "clamped to 1" 1 (Pool.domains pool);
      let order = ref [] in
      Pool.run pool ~n:5
        ~init:(fun () -> ())
        ~body:(fun () i -> order := i :: !order)
        ~merge:ignore;
      Alcotest.(check (list int)) "sequential order" [ 0; 1; 2; 3; 4 ]
        (List.rev !order);
      Pool.shutdown pool)
    [ 0; 1; -3 ]

let test_run_empty_and_singleton () =
  let pool = Pool.create ~domains:parallel_domains in
  let merged = ref 0 in
  Pool.run pool ~n:0
    ~init:(fun () -> ref 0)
    ~body:(fun l _ -> incr l)
    ~merge:(fun l -> merged := !merged + !l);
  check_int "n = 0 runs nothing" 0 !merged;
  (* n = 1 takes the sequential fast path even on a parallel pool. *)
  Pool.run pool ~n:1
    ~init:(fun () -> ref 0)
    ~body:(fun l i -> l := !l + i + 7)
    ~merge:(fun l -> merged := !merged + !l);
  check_int "n = 1 body ran once" 7 !merged;
  Pool.shutdown pool

exception Boom of int

let test_exception_first_and_last_chunk () =
  let pool = Pool.create ~domains:parallel_domains in
  let attempt where =
    match
      Pool.run ~chunk:2 pool ~n:64
        ~init:(fun () -> ())
        ~body:(fun () i -> if i = where then raise (Boom i))
        ~merge:ignore
    with
    | () -> Alcotest.failf "exception at index %d was swallowed" where
    | exception Boom i -> check_int "offending index" where i
  in
  (* First chunk: raised by the calling domain almost immediately;
     last chunk: raised after every other index was claimed. *)
  attempt 0;
  attempt 63;
  (* The pool survives a failed job and still merges exactly. *)
  let total = ref 0 in
  Pool.run pool ~n:100
    ~init:(fun () -> ref 0)
    ~body:(fun l i -> l := !l + i)
    ~merge:(fun l -> total := !total + !l);
  check_int "sum after failure" 4950 !total;
  Pool.shutdown pool

let test_merge_skipped_on_failure () =
  let pool = Pool.create ~domains:parallel_domains in
  let merges = ref 0 in
  (match
     Pool.run pool ~n:32
       ~init:(fun () -> ())
       ~body:(fun () i -> if i = 5 then failwith "boom")
       ~merge:(fun () -> incr merges)
   with
  | () -> Alcotest.fail "expected failure"
  | exception Failure _ -> ());
  check_int "merge not called on failure" 0 !merges;
  Pool.shutdown pool

let test_stopped_pool_degrades () =
  let pool = Pool.create ~domains:parallel_domains in
  ignore (Pool.map pool (fun x -> x + 1) [| 1; 2; 3 |]);
  Pool.shutdown pool;
  (* After shutdown every combinator must still work, sequentially. *)
  let total = ref 0 in
  Pool.run pool ~n:10
    ~init:(fun () -> ref 0)
    ~body:(fun l i -> l := !l + i)
    ~merge:(fun l -> total := !total + !l);
  check_int "run on stopped pool" 45 !total;
  Alcotest.(check (array int)) "map on stopped pool" [| 2; 4; 6 |]
    (Pool.map pool (fun x -> 2 * x) [| 1; 2; 3 |])

let test_nested_run_falls_back () =
  let pool = Pool.create ~domains:parallel_domains in
  (* A body that itself calls the pool: the inner run must degrade to a
     sequential loop instead of deadlocking on busy workers. *)
  let results =
    Pool.map pool
      (fun x ->
        let inner = ref 0 in
        Pool.run pool ~n:4
          ~init:(fun () -> ref 0)
          ~body:(fun l i -> l := !l + (x * i))
          ~merge:(fun l -> inner := !inner + !l);
        !inner)
      (Array.init 8 (fun i -> i + 1))
  in
  Alcotest.(check (array int)) "nested totals"
    (Array.init 8 (fun i -> 6 * (i + 1)))
    results;
  Pool.shutdown pool

let test_worker_ids_partition () =
  let pool = Pool.create ~domains:parallel_domains in
  (* Each local state counts its items; the merged counts must add up
     to n regardless of how the schedule splits the range. *)
  let merged = ref 0 and locals = ref 0 in
  Pool.run ~chunk:3 pool ~n:1000
    ~init:(fun () -> ref 0)
    ~body:(fun l _ -> incr l)
    ~merge:(fun l ->
      incr locals;
      merged := !merged + !l);
  check_int "every index exactly once" 1000 !merged;
  check_bool "at most one local per domain" true
    (!locals <= Pool.domains pool);
  Pool.shutdown pool

(* Property: filter_mapi and mapi agree with the sequential reference
   for arbitrary inputs and chunk sizes (including chunk > n). *)
let combinators_qcheck =
  let gen =
    QCheck2.Gen.(
      triple
        (list_size (int_bound 200) (int_bound 1000))
        (int_range 1 64) (int_range 1 4))
  in
  [
    QCheck2.Test.make ~count:100
      ~name:"filter_mapi/mapi agree with the sequential reference" gen
      (fun (items, chunk, domains) ->
        let arr = Array.of_list items in
        let f i x = if (x + i) mod 3 = 0 then Some ((2 * x) + i) else None in
        let g i x = (x * x) - i in
        let pool = Pool.create ~domains in
        let got_filter = Pool.filter_mapi ~chunk pool f arr in
        let got_map = Pool.mapi ~chunk pool g arr in
        Pool.shutdown pool;
        let want_filter = List.mapi f items |> List.filter_map Fun.id in
        let want_map = Array.mapi g arr in
        got_filter = want_filter && got_map = want_map);
  ]

let () =
  Trace.setup_from_env ();
  Alcotest.run "parallel"
    [
      ( "pool-edges",
        [
          Alcotest.test_case "domains clamped" `Quick test_domains_clamped;
          Alcotest.test_case "empty and singleton runs" `Quick
            test_run_empty_and_singleton;
          Alcotest.test_case "exception in first and last chunk" `Quick
            test_exception_first_and_last_chunk;
          Alcotest.test_case "merge skipped on failure" `Quick
            test_merge_skipped_on_failure;
          Alcotest.test_case "stopped pool degrades" `Quick
            test_stopped_pool_degrades;
          Alcotest.test_case "nested run falls back" `Quick
            test_nested_run_falls_back;
          Alcotest.test_case "locals partition the range" `Quick
            test_worker_ids_partition;
        ] );
      ("pool-props", List.map Qseed.to_alcotest combinators_qcheck);
    ]
