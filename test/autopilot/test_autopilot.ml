(* The relaxation-search autopilot end to end: the sinkless-orientation
   fixed point rediscovered as a certified relaxed cycle, the
   Pi(5,4,2) upper bound reached through a quotient cover where the
   plain speedup step trips its budget, certificate round-trips, and
   the certificate-gated store admission of discovered cycles. *)

module A = Autopilot
module Cert = Certify.Certificate

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let so () = Lcl.Encodings.sinkless_orientation ~delta:3
let pi542 () = Core.Family.pi { Core.Family.delta = 5; a = 4; x = 2 }

(* CI-sized limits: enough for both reference runs, small enough that
   rejected candidates fail fast. *)
let tight =
  {
    A.default_limits with
    A.expand_limit = 50_000.;
    rc_limit = 4_000;
    beam = 12;
    max_steps = 4;
  }

(* Every accepted step's certificate must re-validate independently
   and survive a to_text/of_text round trip. *)
let check_steps_certified (r : A.report) =
  check_int "certified = accepted" (List.length r.A.steps) r.A.certified_steps;
  List.iter
    (fun (s : A.accepted) ->
      (match Cert.validate s.A.certificate with
      | Ok () -> ()
      | Error m -> Alcotest.failf "step %d certificate: %s" s.A.step_index m);
      let text = Cert.to_text s.A.certificate in
      match Cert.of_text text with
      | Error m -> Alcotest.failf "step %d reparse: %s" s.A.step_index m
      | Ok c2 ->
          check_bool
            (Printf.sprintf "step %d text round-trip" s.A.step_index)
            true
            (String.equal text (Cert.to_text c2));
          (match Cert.validate c2 with
          | Ok () -> ()
          | Error m ->
              Alcotest.failf "step %d reparsed certificate: %s" s.A.step_index m))
    r.A.steps

let test_so_fixed_point () =
  let r = A.search (so ()) in
  (match r.A.verdict with
  | A.Fixed_point { period; problem } ->
      check_int "period-1 cycle" 1 period;
      (* The fixed point must be hard — that is the lower bound. *)
      check_bool "cycle state not 0-round solvable" true
        (Relim.Zeroround.solvable_arbitrary_ports problem = None)
  | v -> Alcotest.failf "expected a fixed point, got %s" (A.verdict_string v));
  check_bool "took at least one step" true (r.A.steps <> []);
  check_steps_certified r

let test_pi_budget_wall () =
  let r = A.search ~limits:tight (pi542 ()) in
  (match r.A.verdict with
  | A.Upper_bound { steps } ->
      check_bool "bounded by the step budget" true (steps <= tight.A.max_steps)
  | v -> Alcotest.failf "expected an upper bound, got %s" (A.verdict_string v));
  (* The point of the run: the plain step trips its budget, and a
     quotient cover carries the search through the wall. *)
  check_bool "budget wall was hit" true (r.A.budget_skips > 0);
  check_bool "a cover step broke through" true
    (List.exists (fun (s : A.accepted) -> s.A.cover <> None) r.A.steps);
  check_steps_certified r

let test_store_admission () =
  let r = A.search (so ()) in
  let cert =
    match List.rev r.A.steps with
    | last :: _ -> last.A.certificate
    | [] -> Alcotest.fail "no accepted steps"
  in
  let rs =
    match cert with
    | Cert.Relaxed_step rs -> rs
    | _ -> Alcotest.fail "cycle certificate is not a relaxed step"
  in
  let source = Relim.Serialize.of_string rs.Cert.rs_source in
  let dir =
    let d = Filename.temp_file "autopilot-store" "" in
    Sys.remove d;
    Unix.mkdir d 0o700;
    d
  in
  let store = Store.Disk.open_dir dir in
  (match Store.Disk.add_autopilot store ~source cert with
  | Ok () -> ()
  | Error m -> Alcotest.failf "admission: %s" m);
  check_bool "served back" true
    (Store.Disk.find_autopilot store source = Some rs.Cert.rs_result);
  (* A fresh handle re-validates the entry from disk — certificate,
     cycle condition, and hardness — before serving it. *)
  let fresh = Store.Disk.open_dir dir in
  check_bool "served after reopen (full re-validation)" true
    (Store.Disk.find_autopilot fresh source = Some rs.Cert.rs_result);
  (* Keying is not decorative: admitting under a different problem
     must be rejected (the certificate speaks about its own source). *)
  match Store.Disk.add_autopilot store ~source:(so ()) cert with
  | Ok () -> Alcotest.fail "mis-keyed admission accepted"
  | Error _ -> ()

let () =
  Alcotest.run "autopilot"
    [
      ( "search",
        [
          Alcotest.test_case "SO fixed point rediscovered" `Quick
            test_so_fixed_point;
          Alcotest.test_case "Pi(5,4,2) through the budget wall" `Slow
            test_pi_budget_wall;
        ] );
      ( "store",
        [ Alcotest.test_case "cycle admission" `Quick test_store_admission ] );
    ]
