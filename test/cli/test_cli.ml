(* End-to-end tests of the roundelim binary's tracing interface,
   driving the real executable (path in $ROUNDELIM, set by the dune
   stanza).  The key regression: an unwritable --trace path must abort
   with a clear error and exit code 2 before any engine work runs. *)

let roundelim =
  match Sys.getenv_opt "ROUNDELIM" with
  | Some p -> p
  | None -> Alcotest.fail "ROUNDELIM not set (run via dune runtest)"

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* Runs [roundelim args], returning (exit code, stdout, stderr). *)
let run ?(env = []) args =
  let out = Filename.temp_file "cli_out" ".txt" in
  let err = Filename.temp_file "cli_err" ".txt" in
  let env_prefix =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "%s=%s " k (Filename.quote v)) env)
  in
  let cmd =
    Printf.sprintf "%s%s %s > %s 2> %s" env_prefix (Filename.quote roundelim)
      args (Filename.quote out) (Filename.quote err)
  in
  let code = Sys.command cmd in
  let stdout = read_file out and stderr = read_file err in
  Sys.remove out;
  Sys.remove err;
  (code, stdout, stderr)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_unwritable_trace_path () =
  let code, stdout, stderr =
    run "step -p mis -d 3 --trace /nonexistent-dir/trace.jsonl"
  in
  Alcotest.(check int) "exit code 2" 2 code;
  Alcotest.(check bool) "clear error on stderr" true
    (contains ~sub:"--trace: cannot open trace file" stderr);
  (* The sink is opened before any engine work: no output was printed. *)
  Alcotest.(check string) "no work before the failure" "" stdout

let test_unwritable_env_trace_path () =
  let code, _, stderr =
    run
      ~env:[ ("RELIM_TRACE", "/nonexistent-dir/trace.jsonl") ]
      "step -p mis -d 3"
  in
  Alcotest.(check int) "exit code 2" 2 code;
  Alcotest.(check bool) "names the env var" true
    (contains ~sub:"RELIM_TRACE" stderr)

let test_trace_jsonl_written () =
  let path = Filename.temp_file "cli_trace" ".jsonl" in
  let code, _, _ =
    run (Printf.sprintf "step -p mis -d 3 --trace %s" (Filename.quote path))
  in
  Alcotest.(check int) "exit code 0" 0 code;
  let trace = read_file path in
  Sys.remove path;
  Alcotest.(check bool) "jsonl object lines" true
    (String.length trace > 0 && trace.[0] = '{');
  Alcotest.(check bool) "engine spans recorded" true
    (contains ~sub:"\"rounde.step\"" trace
    && contains ~sub:"\"rounde.r_calls\"" trace)

let test_trace_chrome_written () =
  let path = Filename.temp_file "cli_trace" ".json" in
  let code, _, _ =
    run
      (Printf.sprintf "step -p mis -d 3 --trace %s --trace-format chrome"
         (Filename.quote path))
  in
  Alcotest.(check int) "exit code 0" 0 code;
  let trace = read_file path in
  Sys.remove path;
  Alcotest.(check bool) "trace_event wrapper" true
    (contains ~sub:"{\"traceEvents\":[" trace
    && contains ~sub:"\"displayTimeUnit\":\"ms\"" trace);
  Alcotest.(check bool) "begin/end phases present" true
    (contains ~sub:"\"ph\":\"B\"" trace && contains ~sub:"\"ph\":\"E\"" trace)

let test_bad_trace_format_rejected () =
  let code, _, _ = run "step -p mis -d 3 --trace /tmp/x --trace-format xml" in
  Alcotest.(check bool) "cmdliner usage error" true (code <> 0)

(* --zdd routes the box search through lib/zdd; the printed problems
   must not change by a byte, and --stats must show the engine was
   really on the compressed path (and really off it by default). *)
let test_zdd_flag_byte_identity () =
  (* RELIM_ZDD=0 pins the baseline to the explicit path even when the
     suite itself runs under RELIM_ZDD=1. *)
  let code0, explicit, _ =
    run ~env:[ ("RELIM_ZDD", "0") ] "step -p mis -d 3 -s 2 --stats"
  in
  let code1, zdd, stderr = run "step -p mis -d 3 -s 2 --zdd --stats" in
  Alcotest.(check int) "explicit exit 0" 0 code0;
  Alcotest.(check int) "zdd exit 0" 0 code1;
  Alcotest.(check string) "stdout byte-identical" explicit zdd;
  Alcotest.(check bool) "zdd engine exercised" true
    (contains ~sub:"zdd: nodes=" stderr
    && not (contains ~sub:"zdd: nodes=0 " stderr));
  (* the MIS step runs on the fully symbolic output side: its
     maximal-box family counters land in --stats *)
  Alcotest.(check bool) "maxbox counters printed" true
    (contains ~sub:"zdd.maxbox: tuples=" stderr
    && not (contains ~sub:"zdd.maxbox: tuples=0 " stderr))

let test_stats_explicit_zero_zdd () =
  let code, _, stderr =
    run ~env:[ ("RELIM_ZDD", "0") ] "step -p mis -d 3 --stats"
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "stats printed" true
    (contains ~sub:"engine stats:" stderr);
  Alcotest.(check bool) "zdd engine idle on the explicit path" true
    (contains ~sub:"zdd: nodes=0 " stderr)

let test_zdd_trace_counters () =
  let path = Filename.temp_file "cli_trace" ".jsonl" in
  let code, _, _ =
    run (Printf.sprintf "step -p mis -d 3 --zdd --trace %s" (Filename.quote path))
  in
  Alcotest.(check int) "exit code 0" 0 code;
  let trace = read_file path in
  Sys.remove path;
  Alcotest.(check bool) "zdd counters sampled" true
    (contains ~sub:"\"zdd.nodes\"" trace
    && contains ~sub:"\"zdd.cache_hits\"" trace
    && contains ~sub:"\"zdd.peak_unique\"" trace);
  Alcotest.(check bool) "maxbox counters sampled" true
    (contains ~sub:"\"zdd.maxbox_tuples\"" trace
    && contains ~sub:"\"zdd.maxbox_cubes\"" trace
    && contains ~sub:"\"zdd.maxbox_maximal\"" trace
    && contains ~sub:"\"zdd.maxbox_enumerated\"" trace)

let () =
  Alcotest.run "cli"
    [
      ( "trace-flag",
        [
          Alcotest.test_case "unwritable --trace path aborts early" `Quick
            test_unwritable_trace_path;
          Alcotest.test_case "unwritable RELIM_TRACE aborts early" `Quick
            test_unwritable_env_trace_path;
          Alcotest.test_case "jsonl trace written" `Quick
            test_trace_jsonl_written;
          Alcotest.test_case "chrome trace written" `Quick
            test_trace_chrome_written;
          Alcotest.test_case "bad --trace-format rejected" `Quick
            test_bad_trace_format_rejected;
        ] );
      ( "zdd-flag",
        [
          Alcotest.test_case "--zdd keeps stdout byte-identical" `Quick
            test_zdd_flag_byte_identity;
          Alcotest.test_case "--stats reports an idle zdd engine" `Quick
            test_stats_explicit_zero_zdd;
          Alcotest.test_case "zdd.* trace counters recorded" `Quick
            test_zdd_trace_counters;
        ] );
    ]
