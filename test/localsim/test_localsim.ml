(* Tests for the LOCAL / port-numbering simulator. *)

open Localsim
module Graph = Dsgraph.Graph
module Tree_gen = Dsgraph.Tree_gen

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A 0-round algorithm: output the degree immediately. *)
let degree_algo : (unit, int, unit, int) Algo.t =
  {
    name = "degree";
    init = (fun ctx () -> ctx.Ctx.degree);
    send = (fun ctx _ ~round:_ -> Array.make ctx.Ctx.degree ());
    recv = (fun _ st ~round:_ _ -> st);
    output = (fun st -> Some st);
  }

let test_zero_rounds () =
  let g = Tree_gen.star 5 in
  let result = Run.run g ~inputs:(Run.no_inputs g) degree_algo in
  check_int "rounds" 0 result.Run.rounds;
  check_int "center" 4 result.Run.outputs.(0);
  check_int "leaf" 1 result.Run.outputs.(1)

(* One round: collect neighbor ids.  Verifies inbox indexing. *)
type gather_state = { my_id : int; seen : int list option }

let gather_algo : (unit, gather_state, int, int list) Algo.t =
  {
    name = "gather";
    init = (fun ctx () -> { my_id = Ctx.the_id ctx; seen = None });
    send = (fun ctx st ~round:_ -> Array.make ctx.Ctx.degree st.my_id);
    recv =
      (fun _ st ~round:_ inbox ->
        { st with seen = Some (Array.to_list inbox) });
    output = (fun st -> Option.map (fun s -> s) st.seen);
  }

let test_inbox_routing () =
  let g = Tree_gen.path 3 in
  let result = Run.run ~ids:Run.Sequential g ~inputs:(Run.no_inputs g) gather_algo in
  check_int "rounds" 1 result.Run.rounds;
  Alcotest.(check (list int)) "node 0 sees node 1" [ 2 ] result.Run.outputs.(0);
  Alcotest.(check (list int))
    "node 1 sees both" [ 1; 3 ]
    (List.sort compare result.Run.outputs.(1))

let test_inbox_routing_shuffled_ports () =
  let g = Tree_gen.shuffle_ports (Tree_gen.random ~n:40 ~max_degree:5 ~seed:3) ~seed:9 in
  let result = Run.run ~ids:Run.Sequential g ~inputs:(Run.no_inputs g) gather_algo in
  (* Each node must see exactly the ids of its neighbors. *)
  for v = 0 to Graph.n g - 1 do
    let expected =
      List.init (Graph.degree g v) (fun p -> Graph.neighbor g v p + 1)
      |> List.sort compare
    in
    Alcotest.(check (list int))
      (Printf.sprintf "node %d inbox" v)
      expected
      (List.sort compare result.Run.outputs.(v))
  done

let test_anonymous () =
  let g = Tree_gen.path 2 in
  let saw_id : (unit, bool, unit, bool) Algo.t =
    {
      name = "saw-id";
      init = (fun ctx () -> ctx.Ctx.id <> None);
      send = (fun ctx _ ~round:_ -> Array.make ctx.Ctx.degree ());
      recv = (fun _ st ~round:_ _ -> st);
      output = (fun st -> Some st);
    }
  in
  let r = Run.run ~ids:Run.Anonymous g ~inputs:(Run.no_inputs g) saw_id in
  check_bool "no ids" false r.Run.outputs.(0);
  let r2 = Run.run ~ids:Run.Sequential g ~inputs:(Run.no_inputs g) saw_id in
  check_bool "ids" true r2.Run.outputs.(0)

let test_shuffled_ids_are_permutation () =
  let g = Tree_gen.path 10 in
  let collect : (unit, int, unit, int) Algo.t =
    {
      name = "id";
      init = (fun ctx () -> Ctx.the_id ctx);
      send = (fun ctx _ ~round:_ -> Array.make ctx.Ctx.degree ());
      recv = (fun _ st ~round:_ _ -> st);
      output = (fun st -> Some st);
    }
  in
  let r = Run.run ~ids:(Run.Shuffled 7) g ~inputs:(Run.no_inputs g) collect in
  let ids = List.sort compare (Array.to_list r.Run.outputs) in
  Alcotest.(check (list int)) "permutation of 1..n" (List.init 10 (fun i -> i + 1)) ids

let test_edge_colors_exposed () =
  let g = Tree_gen.path 3 in
  let algo : (unit, int list, unit, int list) Algo.t =
    {
      name = "colors";
      init =
        (fun ctx () ->
          List.init ctx.Ctx.degree (fun p -> Ctx.edge_color ctx p));
      send = (fun ctx _ ~round:_ -> Array.make ctx.Ctx.degree ());
      recv = (fun _ st ~round:_ _ -> st);
      output = (fun st -> Some st);
    }
  in
  let r = Run.run ~edge_colors:[| 5; 9 |] g ~inputs:(Run.no_inputs g) algo in
  Alcotest.(check (list int)) "middle node colors" [ 5; 9 ] r.Run.outputs.(1)

let test_inputs_delivered () =
  let g = Tree_gen.path 3 in
  let algo : (int, int, unit, int) Algo.t =
    {
      name = "echo-input";
      init = (fun _ input -> input * 2);
      send = (fun ctx _ ~round:_ -> Array.make ctx.Ctx.degree ());
      recv = (fun _ st ~round:_ _ -> st);
      output = (fun st -> Some st);
    }
  in
  let r = Run.run g ~inputs:[| 10; 20; 30 |] algo in
  Alcotest.(check (array int)) "inputs" [| 20; 40; 60 |] r.Run.outputs

let test_max_rounds () =
  let g = Tree_gen.path 2 in
  let never : (unit, unit, unit, unit) Algo.t =
    {
      name = "never";
      init = (fun _ () -> ());
      send = (fun ctx _ ~round:_ -> Array.make ctx.Ctx.degree ());
      recv = (fun _ st ~round:_ _ -> st);
      output = (fun _ -> None);
    }
  in
  match Run.run ~max_rounds:5 g ~inputs:(Run.no_inputs g) never with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected timeout"

let test_randomness_deterministic () =
  let g = Tree_gen.path 4 in
  let draw : (unit, int, unit, int) Algo.t =
    {
      name = "draw";
      init = (fun ctx () -> Random.State.int (Ctx.the_rng ctx) 1000000);
      send = (fun ctx _ ~round:_ -> Array.make ctx.Ctx.degree ());
      recv = (fun _ st ~round:_ _ -> st);
      output = (fun st -> Some st);
    }
  in
  let r1 = Run.run ~seed:5 g ~inputs:(Run.no_inputs g) draw in
  let r2 = Run.run ~seed:5 g ~inputs:(Run.no_inputs g) draw in
  let r3 = Run.run ~seed:6 g ~inputs:(Run.no_inputs g) draw in
  Alcotest.(check (array int)) "same seed same draws" r1.Run.outputs r2.Run.outputs;
  check_bool "different seed differs" true (r1.Run.outputs <> r3.Run.outputs);
  check_bool "nodes draw independently" true
    (r1.Run.outputs.(0) <> r1.Run.outputs.(1)
    || r1.Run.outputs.(1) <> r1.Run.outputs.(2))

let test_wrong_outbox_size () =
  let g = Tree_gen.path 3 in
  let bad : (unit, unit, unit, unit) Algo.t =
    {
      name = "bad";
      init = (fun _ () -> ());
      send = (fun _ _ ~round:_ -> [| () |]);
      recv = (fun _ st ~round:_ _ -> st);
      output = (fun _ -> None);
    }
  in
  match Run.run g ~inputs:(Run.no_inputs g) bad with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected outbox-size failure"

(* Termination semantics: a wave that takes exactly ecc(root) rounds. *)
type wave_state = { lit : bool; t : int }

let wave : (bool, wave_state, bool, int) Algo.t =
  {
    name = "wave";
    init = (fun _ is_root -> { lit = is_root; t = 0 });
    send = (fun ctx st ~round:_ -> Array.make ctx.Ctx.degree st.lit);
    recv =
      (fun _ st ~round:_ inbox ->
        if st.lit then { st with t = st.t + 1 }
        else if Array.exists Fun.id inbox then { lit = true; t = st.t + 1 }
        else { st with t = st.t + 1 });
    output = (fun st -> if st.lit then Some st.t else None);
  }

let test_round_counting () =
  let g = Tree_gen.path 5 in
  let inputs = Array.init 5 (fun v -> v = 0) in
  let r = Run.run g ~inputs wave in
  (* The far end lights up after 4 rounds. *)
  check_int "rounds = eccentricity" 4 r.Run.rounds

(* ------------------------------------------------------------------ *)
(* Views                                                               *)
(* ------------------------------------------------------------------ *)

let test_views_symmetry () =
  (* Star: at radius 0 all leaves look alike (degree only); at radius 2
     the center's distinct port numbers leak through the back-ports and
     separate them — correct PN semantics. *)
  let g = Tree_gen.star 6 in
  let v1 = Views.view g ~radius:0 1 in
  for leaf = 2 to 5 do
    Alcotest.(check string) "radius-0 leaf views equal" v1
      (Views.view g ~radius:0 leaf)
  done;
  check_bool "radius-2 back-ports separate leaves" true
    (Views.view g ~radius:2 1 <> Views.view g ~radius:2 2);
  check_bool "center differs" true (Views.view g ~radius:0 0 <> v1)

let test_views_mirrored_adversary () =
  (* The Lemma 12 adversary: ports mirror the edge colors on both
     endpoints.  On a properly colored even path this is realizable,
     and symmetric nodes become indistinguishable at EVERY radius. *)
  let g = Tree_gen.path 4 in
  let colors = [| 0; 1; 0 |] in
  match Dsgraph.Edge_coloring.mirrored_ports g colors with
  | None -> Alcotest.fail "mirroring must be possible here"
  | Some gm ->
      List.iter
        (fun radius ->
          Alcotest.(check string) "ends indistinguishable"
            (Views.view ~edge_colors:colors gm ~radius 0)
            (Views.view ~edge_colors:colors gm ~radius 3);
          Alcotest.(check string) "middles indistinguishable"
            (Views.view ~edge_colors:colors gm ~radius 1)
            (Views.view ~edge_colors:colors gm ~radius 2))
        [ 0; 1; 2; 3; 5 ]

let test_views_radius_refines () =
  (* Increasing the radius can only split classes, never merge them. *)
  let g = Tree_gen.balanced ~delta:3 ~depth:4 in
  let counts =
    List.map (fun radius -> Views.count_distinct g ~radius) [ 0; 1; 2; 3 ]
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  check_bool "monotone refinement" true (monotone counts);
  check_int "radius 0 = degree classes" 2 (List.nth counts 0)

let test_views_path_ends () =
  let g = Tree_gen.path 7 in
  (* Endpoints share a radius-0 view (degree 1) but differ from
     interior nodes at any radius. *)
  Alcotest.(check string) "symmetric ends at radius 0"
    (Views.view g ~radius:0 0) (Views.view g ~radius:0 6);
  check_bool "ends differ from middle" true
    (Views.view g ~radius:2 0 <> Views.view g ~radius:2 3)

let test_views_colors_split () =
  (* Edge colors can separate otherwise identical views. *)
  let g = Tree_gen.path 3 in
  let same = Views.view g ~radius:0 0 = Views.view g ~radius:0 2 in
  check_bool "uncolored endpoints equal" true same;
  let colored = [| 0; 1 |] in
  check_bool "colors split them" true
    (Views.view ~edge_colors:colored g ~radius:0 0
    <> Views.view ~edge_colors:colored g ~radius:0 2)

let test_views_classes_partition () =
  let g = Tree_gen.random ~n:50 ~max_degree:4 ~seed:3 in
  let classes = Views.classes g ~radius:1 in
  let total = List.fold_left (fun acc c -> acc + List.length c) 0 classes in
  check_int "partition" 50 total

(* ------------------------------------------------------------------ *)
(* Measured runs                                                       *)
(* ------------------------------------------------------------------ *)

let test_run_measured () =
  let g = Tree_gen.path 4 in
  let m =
    Run.run_measured
      ~bits:(fun (x : int) -> x)
      g
      ~inputs:(Run.no_inputs g)
      {
        Algo.name = "const";
        init = (fun _ () -> ());
        send = (fun ctx _ ~round:_ -> Array.make ctx.Ctx.degree 7);
        recv = (fun _ _ ~round:_ _ -> ());
        output = (fun () -> None);
      }
  in
  ignore m

let test_run_measured_counts () =
  let g = Tree_gen.path 3 in
  (* One round of gather: 4 port-messages total (2 + 1 + 1). *)
  let m =
    Run.run_measured
      ~bits:(fun (_ : int) -> 5)
      ~ids:Run.Sequential g
      ~inputs:(Run.no_inputs g)
      gather_algo
  in
  check_int "bits" 5 m.Run.max_message_bits;
  check_int "messages" 4 m.Run.total_messages;
  check_int "rounds preserved" 1 m.Run.result.Run.rounds

(* ------------------------------------------------------------------ *)
(* Synthesis                                                           *)
(* ------------------------------------------------------------------ *)

(* Even cycle with a proper 2-edge-coloring and mirrored ports: the
   canonical Lemma-12 adversary instance (2-regular, high girth). *)
let mirrored_cycle n =
  assert (n mod 2 = 0);
  let g =
    Graph.of_edges ~n (List.init n (fun i -> (i, (i + 1) mod n)))
  in
  let colors = Array.init n (fun e -> e mod 2) in
  match Dsgraph.Edge_coloring.mirrored_ports g colors with
  | Some gm -> { Synthesis.graph = gm; edge_colors = Some colors }
  | None -> assert false

let mis2 =
  Relim.Parse.problem ~name:"MIS2" ~node:"M M
P O" ~edge:"M [PO]
O O"

let test_synthesis_trivial () =
  let triv = Relim.Parse.problem ~name:"triv" ~node:"A A" ~edge:"A A" in
  match Synthesis.search ~radius:0 triv [ mirrored_cycle 6 ] with
  | Synthesis.Algorithm _ -> ()
  | Synthesis.Impossible -> Alcotest.fail "trivial must be solvable"

let test_synthesis_lemma12_radius0 () =
  (* No 0-round algorithm solves MIS on the mirrored cycle: the
     machine-checked Lemma 12. *)
  match Synthesis.search ~radius:0 mis2 [ mirrored_cycle 6 ] with
  | Synthesis.Impossible -> ()
  | Synthesis.Algorithm _ -> Alcotest.fail "Lemma 12 violated?!"

let test_synthesis_beyond_zero_rounds () =
  (* The mirrored cycle is vertex-transitive with symmetric colors, so
     views coincide at EVERY radius and no T-round algorithm exists —
     brute force confirms it for T = 1, 2. *)
  List.iter
    (fun radius ->
      match Synthesis.search ~radius mis2 [ mirrored_cycle 8 ] with
      | Synthesis.Impossible -> ()
      | Synthesis.Algorithm _ ->
          Alcotest.failf "T=%d algorithm on a symmetric cycle?!" radius)
    [ 1; 2 ]

let test_synthesis_path_solvable () =
  (* On a finite path the leaves break symmetry and a 1-round algorithm
     exists (ends join the MIS, the rest point at them, etc.). *)
  let inst = { Synthesis.graph = Tree_gen.path 4; edge_colors = None } in
  match Synthesis.search ~radius:1 mis2 [ inst ] with
  | Synthesis.Algorithm rows ->
      check_bool "several classes" true (List.length rows >= 2)
  | Synthesis.Impossible -> Alcotest.fail "paths are 1-round solvable"

let test_synthesis_family_lemma12 () =
  (* The paper's family at Delta = 2: unsolvable at radius 0 on the
     mirrored cycle, exactly Lemma 12. *)
  let pi =
    Relim.Parse.problem ~name:"Pi(2,2,0)" ~node:"M M
A A
P O"
      ~edge:"M [PAOX]
O [MAOX]
P [MX]
A [MOX]
X [MPAOX]"
  in
  match Synthesis.search ~radius:0 pi [ mirrored_cycle 6 ] with
  | Synthesis.Impossible -> ()
  | Synthesis.Algorithm _ -> Alcotest.fail "family Lemma 12 violated"

let test_synthesis_multi_instance () =
  (* The same algorithm must work on all instances simultaneously: a
     path alone is solvable, but adding the symmetric cycle makes the
     set unsolvable. *)
  let path = { Synthesis.graph = Tree_gen.path 4; edge_colors = None } in
  (match Synthesis.search ~radius:1 mis2 [ path ] with
  | Synthesis.Algorithm _ -> ()
  | Synthesis.Impossible -> Alcotest.fail "path solvable");
  match Synthesis.search ~radius:1 mis2 [ path; mirrored_cycle 8 ] with
  | Synthesis.Impossible -> ()
  | Synthesis.Algorithm _ -> Alcotest.fail "cycle still blocks"

(* Cross-validation: on the mirrored even cycle the synthesis verdict
   at radius 0 must coincide with the engine's mirrored-port decider
   for random small problems (both implement the same adversary
   independently). *)
let synthesis_vs_zeroround_qcheck =
  [
    QCheck.Test.make ~name:"synthesis-agrees-with-zeroround" ~count:50
      QCheck.(pair (int_range 1 63) (int_range 1 63))
      (fun (node_mask, edge_mask) ->
        (* Random Delta=2 problem over 3 labels. *)
        let alpha_names = [ "A"; "B"; "C" ] in
        let multisets2 =
          [ [ 0; 0 ]; [ 0; 1 ]; [ 0; 2 ]; [ 1; 1 ]; [ 1; 2 ]; [ 2; 2 ] ]
        in
        let node_lines =
          List.filteri (fun i _ -> (node_mask lsr i) land 1 = 1) multisets2
        in
        let edge_lines =
          List.filteri (fun i _ -> (edge_mask lsr i) land 1 = 1) multisets2
        in
        if node_lines = [] || edge_lines = [] then true
        else begin
          let alpha = Relim.Alphabet.create alpha_names in
          let line ls =
            Relim.Line.of_multiset (Relim.Multiset.of_list ls)
          in
          let p =
            Relim.Problem.make ~name:"rnd" ~alpha
              ~node:(Relim.Constr.make (List.map line node_lines))
              ~edge:(Relim.Constr.make (List.map line edge_lines))
          in
          let decider = Relim.Zeroround.solvable_mirrored p <> None in
          let g =
            Graph.of_edges ~n:6 (List.init 6 (fun i -> (i, (i + 1) mod 6)))
          in
          let colors = Array.init 6 (fun e -> e mod 2) in
          let instance =
            match Dsgraph.Edge_coloring.mirrored_ports g colors with
            | Some gm -> { Synthesis.graph = gm; edge_colors = Some colors }
            | None -> assert false
          in
          let synth =
            match Synthesis.search ~radius:0 p [ instance ] with
            | Synthesis.Algorithm _ -> true
            | Synthesis.Impossible -> false
          in
          decider = synth
        end);
  ]

let () =
  Trace.setup_from_env ();
  Alcotest.run "localsim"
    [
      ( "run",
        [
          Alcotest.test_case "zero-rounds" `Quick test_zero_rounds;
          Alcotest.test_case "inbox-routing" `Quick test_inbox_routing;
          Alcotest.test_case "inbox-shuffled-ports" `Quick
            test_inbox_routing_shuffled_ports;
          Alcotest.test_case "anonymous" `Quick test_anonymous;
          Alcotest.test_case "shuffled-ids" `Quick
            test_shuffled_ids_are_permutation;
          Alcotest.test_case "edge-colors" `Quick test_edge_colors_exposed;
          Alcotest.test_case "inputs" `Quick test_inputs_delivered;
          Alcotest.test_case "max-rounds" `Quick test_max_rounds;
          Alcotest.test_case "randomness" `Quick test_randomness_deterministic;
          Alcotest.test_case "outbox-size" `Quick test_wrong_outbox_size;
          Alcotest.test_case "round-counting" `Quick test_round_counting;
        ] );
      ( "views",
        [
          Alcotest.test_case "symmetry" `Quick test_views_symmetry;
          Alcotest.test_case "mirrored adversary" `Quick
            test_views_mirrored_adversary;
          Alcotest.test_case "refinement" `Quick test_views_radius_refines;
          Alcotest.test_case "path ends" `Quick test_views_path_ends;
          Alcotest.test_case "colors split" `Quick test_views_colors_split;
          Alcotest.test_case "partition" `Quick test_views_classes_partition;
        ] );
      ( "measured",
        [
          Alcotest.test_case "never-terminating guard" `Quick (fun () ->
              match test_run_measured () with
              | () -> Alcotest.fail "expected timeout"
              | exception Failure _ -> ());
          Alcotest.test_case "counts" `Quick test_run_measured_counts;
        ] );
      ( "synthesis",
        [
          Alcotest.test_case "trivial" `Quick test_synthesis_trivial;
          Alcotest.test_case "Lemma 12 at T=0" `Quick
            test_synthesis_lemma12_radius0;
          Alcotest.test_case "T=1,2 impossibility" `Quick
            test_synthesis_beyond_zero_rounds;
          Alcotest.test_case "paths solvable" `Quick test_synthesis_path_solvable;
          Alcotest.test_case "family Lemma 12" `Quick
            test_synthesis_family_lemma12;
          Alcotest.test_case "multi-instance" `Quick test_synthesis_multi_instance;
        ] );
      ( "synthesis-props",
        List.map
          (Qseed.to_alcotest)
          synthesis_vs_zeroround_qcheck );
    ]
