(* Pinned randomness for the qcheck property suites.

   Every property test runs from one explicit seed so failures
   reproduce across machines and CI runs.  The seed defaults to a
   fixed value and can be overridden with QCHECK_SEED=<int>; it is
   announced on stderr so a failing run always shows how to reproduce
   it (dune surfaces test output on failure). *)

let default_seed = 20260806

let seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> n
      | None ->
          Printf.eprintf "[qcheck] ignoring unparsable QCHECK_SEED=%S\n%!" s;
          default_seed)
  | None -> default_seed

let announced = ref false

let announce () =
  if not !announced then begin
    announced := true;
    Printf.eprintf
      "[qcheck] running with seed %d (override with QCHECK_SEED=<int>)\n%!"
      seed
  end

(* Each test gets its own state seeded identically, so tests stay
   independent of suite order and of each other. *)
let to_alcotest ?(long = false) cell =
  announce ();
  QCheck_alcotest.to_alcotest ~long ~rand:(Random.State.make [| seed |]) cell
