(* Tests for lib/certify: the independent certificate checkers, the
   engine hooks, the simulator cross-check and the fuzzing harness.

   The suite certifies real engine runs (including the Π(5,4,2)
   pipeline and the SO fixed point), then verifies that *tampered*
   outputs are rejected, and finally that the fuzzing harness catches
   an intentionally injected engine fault and shrinks it to a tiny
   reproducer that round-trips through the parser. *)

open Relim

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mis () = Parse.problem ~name:"MIS" ~node:"M M M\nP O O" ~edge:"M [PO]\nO O"
let trivial () = Parse.problem ~name:"trivial" ~node:"A A A" ~edge:"A A"

let violates f =
  match f () with
  | () -> false
  | (exception Certify.Check.Violation _) -> true

(* ------------------------------------------------------------------ *)
(* Direct certificates on real engine outputs                          *)
(* ------------------------------------------------------------------ *)

let test_r_pass () =
  let p = mis () in
  let d = Rounde.r p in
  Certify.Check.check_r ~source:p d;
  let p' = trivial () in
  Certify.Check.check_r ~source:p' (Rounde.r p')

let test_rbar_pass () =
  let p = mis () in
  let d = Rounde.r p in
  let d2 = Rounde.rbar ~pool:Parallel.Pool.sequential d.Rounde.problem in
  Certify.Check.check_rbar ~source:d.Rounde.problem d2

let test_zero_round_pass () =
  let p = mis () in
  Certify.Check.check_zero_round ~mode:`Mirrored p
    (Zeroround.solvable_mirrored p);
  Certify.Check.check_zero_round ~mode:`Arbitrary p
    (Zeroround.solvable_arbitrary_ports ~pool:Parallel.Pool.sequential p);
  let t = trivial () in
  Certify.Check.check_zero_round ~mode:`Mirrored t
    (Zeroround.solvable_mirrored t)

let test_fixed_point_pass_and_fail () =
  let so = Lcl.Encodings.sinkless_orientation ~delta:3 in
  (match Fixedpoint.detect so with
  | Fixedpoint.Reaches_fixed_point (_, fp) -> Certify.Check.check_fixed_point fp
  | _ -> Alcotest.fail "SO should reach a fixed point");
  (* MIS is not a fixed point of Rbar o R. *)
  check_bool "MIS rejected as fixed point" true
    (violates (fun () -> Certify.Check.check_fixed_point (mis ())))

(* ------------------------------------------------------------------ *)
(* Tampered outputs are rejected                                       *)
(* ------------------------------------------------------------------ *)

let test_tampered_denotation () =
  let p = mis () in
  let d = Rounde.r p in
  (* Shrink the first multi-label denotation: the R edge pair using
     that label stops matching its definitional meaning (validity,
     maximality or distinctness must break). *)
  let tampered =
    let changed = ref false in
    let denots =
      Array.map
        (fun s ->
          if (not !changed) && Labelset.cardinal s >= 2 then begin
            changed := true;
            Labelset.remove (Labelset.choose s) s
          end
          else s)
        d.Rounde.denotations
    in
    { d with Rounde.denotations = denots }
  in
  check_bool "shrunk denotation caught" true
    (violates (fun () -> Certify.Check.check_r ~source:p tampered))

let test_dropped_edge_pair () =
  let p = mis () in
  let d = Rounde.r p in
  let p' = d.Rounde.problem in
  let lines = Constr.lines p'.Problem.edge in
  check_bool "R(MIS) has several edge lines" true (List.length lines >= 2);
  (* Dropping a maximal pair breaks completeness: no remaining pair
     dominates the dropped one. *)
  let tampered =
    {
      d with
      Rounde.problem =
        Problem.make ~name:p'.Problem.name ~alpha:p'.Problem.alpha
          ~node:p'.Problem.node
          ~edge:(Constr.make (List.tl lines));
    }
  in
  check_bool "dropped pair caught" true
    (violates (fun () -> Certify.Check.check_r ~source:p tampered))

let test_tampered_rbar_box () =
  let p = mis () in
  let d = Rounde.r p in
  let d2 = Rounde.rbar ~pool:Parallel.Pool.sequential d.Rounde.problem in
  let p'' = d2.Rounde.problem in
  let lines = Constr.lines p''.Problem.node in
  check_bool "Rbar(R(MIS)) has several boxes" true (List.length lines >= 2);
  (* Dropping a box breaks coverage of the source node constraint. *)
  let tampered =
    {
      d2 with
      Rounde.problem =
        Problem.make ~name:p''.Problem.name ~alpha:p''.Problem.alpha
          ~node:(Constr.make (List.tl lines))
          ~edge:p''.Problem.edge;
    }
  in
  check_bool "dropped box caught" true
    (violates (fun () ->
         Certify.Check.check_rbar ~source:d.Rounde.problem tampered))

let test_tampered_zero_round () =
  let p = mis () in
  (* M^3 is an allowed node configuration but M is not self-compatible
     — a bogus witness. *)
  check_bool "bogus witness caught" true
    (violates (fun () ->
         Certify.Check.check_zero_round ~mode:`Arbitrary p
           (Some (Multiset.of_list [ 0; 0; 0 ]))));
  (* The trivial problem is 0-round solvable — a bogus None. *)
  check_bool "bogus None caught" true
    (violates (fun () ->
         Certify.Check.check_zero_round ~mode:`Mirrored (trivial ()) None))

(* ------------------------------------------------------------------ *)
(* Hooks                                                               *)
(* ------------------------------------------------------------------ *)

let test_hooks_state () =
  Certify.Hooks.uninstall ();
  check_bool "not installed" false (Certify.Hooks.installed ());
  Certify.Hooks.with_hooks (fun () ->
      check_bool "installed inside with_hooks" true (Certify.Hooks.installed ()));
  check_bool "restored after with_hooks" false (Certify.Hooks.installed ());
  Certify.Hooks.install ();
  Certify.Hooks.install ();
  check_bool "install idempotent" true (Certify.Hooks.installed ());
  Certify.Hooks.uninstall ();
  check_bool "uninstalled" false (Certify.Hooks.installed ())

let test_hooks_certify_engine_run () =
  Certify.Check.reset_stats ();
  Certify.Hooks.with_hooks (fun () -> ignore (Rounde.step (mis ())));
  let s = Certify.Check.stats in
  check_int "one R certified" 1 s.Certify.Check.r_certified;
  check_int "one Rbar certified" 1 s.Certify.Check.rbar_certified

(* ------------------------------------------------------------------ *)
(* The Pi(5,4,2) pipeline run, certified end to end                    *)
(* ------------------------------------------------------------------ *)

let test_pi5_run_certified () =
  let pi5 = Core.Family.pi { Core.Family.delta = 5; a = 4; x = 2 } in
  Certify.Check.reset_stats ();
  Certify.Hooks.with_hooks (fun () ->
      (* Iterate the speedup until an engine budget stops it; every
         completed R / Rbar output is certified by the hooks.  (With
         default budgets the Π(5,4,2) pipeline completes step 1 and is
         stopped inside step 2's Rbar.) *)
      let rec go p i =
        if i <= 3 then
          match Rounde.step ~pool:Parallel.Pool.sequential p with
          | d -> go (Simplify.normalize d.Rounde.problem) (i + 1)
          | exception Budget.Budget_exceeded _ -> ()
      in
      go pi5 1);
  let s = Certify.Check.stats in
  check_bool "at least two R steps certified" true
    (s.Certify.Check.r_certified >= 2);
  check_bool "at least one Rbar step certified" true
    (s.Certify.Check.rbar_certified >= 1)

let test_so_fixed_point_certified () =
  Fixedpoint.clear_cache ();
  Certify.Check.reset_stats ();
  Certify.Hooks.with_hooks (fun () ->
      let so = Lcl.Encodings.sinkless_orientation ~delta:3 in
      match Fixedpoint.detect so with
      | Fixedpoint.Reaches_fixed_point _ -> ()
      | _ -> Alcotest.fail "SO should reach a fixed point");
  check_bool "fixed point certified via hook" true
    (Certify.Check.stats.Certify.Check.fixed_points_certified >= 1)

(* ------------------------------------------------------------------ *)
(* Simulator cross-check                                               *)
(* ------------------------------------------------------------------ *)

let test_simcheck_agrees_with_engine () =
  List.iter
    (fun p ->
      Certify.Simcheck.cross_check ~mode:`Mirrored p
        (Zeroround.solvable_mirrored p);
      Certify.Simcheck.cross_check ~mode:`Arbitrary p
        (Zeroround.solvable_arbitrary_ports ~pool:Parallel.Pool.sequential p))
    [
      mis ();
      trivial ();
      Parse.problem ~name:"3col" ~node:"A A\nB B\nC C" ~edge:"A [BC]\nB C";
      Lcl.Encodings.sinkless_orientation ~delta:3;
    ]

let test_simcheck_rejects_bogus_verdicts () =
  check_bool "bogus witness refuted by simulation" true
    (violates (fun () ->
         Certify.Simcheck.cross_check ~mode:`Arbitrary (mis ())
           (Some (Multiset.of_list [ 0; 0; 0 ]))));
  check_bool "bogus None refuted by simulation" true
    (violates (fun () ->
         Certify.Simcheck.cross_check ~mode:`Mirrored (trivial ()) None))

(* ------------------------------------------------------------------ *)
(* Fuzzing harness                                                     *)
(* ------------------------------------------------------------------ *)

let test_clean_fuzz () =
  let report = Certify.Fuzz.run ~count:60 ~seed:Qseed.seed ~domains:2 () in
  check_int "runs" 60 report.Certify.Fuzz.runs;
  check_int "no violations" 0 (List.length report.Certify.Fuzz.reproducers);
  check_bool "most runs certified" true (report.Certify.Fuzz.passed >= 30)

(* The injected engine fault: shrink one denotation of every R output.
   The harness must catch it and shrink the failure to a tiny
   reproducer that round-trips through the parser. *)
let inject_fault (d : Rounde.denoted) =
  let changed = ref false in
  let denots =
    Array.map
      (fun s ->
        if (not !changed) && Labelset.cardinal s >= 2 then begin
          changed := true;
          Labelset.remove (List.hd (List.rev (Labelset.elements s))) s
        end
        else s)
      d.Rounde.denotations
  in
  { d with Rounde.denotations = denots }

let test_injected_fault_caught_and_shrunk () =
  let report =
    Certify.Fuzz.run ~mutate_r:inject_fault ~count:40 ~seed:Qseed.seed
      ~domains:1 ()
  in
  let reps = report.Certify.Fuzz.reproducers in
  check_bool "fault caught at least once" true (List.length reps >= 1);
  List.iter
    (fun r ->
      check_bool "reproducer is tiny (<= 4 labels)" true
        (Problem.label_count r.Certify.Fuzz.problem <= 4);
      (* Satellite: every shrunk reproducer re-parses to an isomorphic
         problem. *)
      check_bool "reproducer round-trips through the parser" true
        r.Certify.Fuzz.roundtrip_ok;
      let back = Serialize.of_string r.Certify.Fuzz.rendered in
      check_bool "rendered syntax parses to the same problem" true
        (Iso.equal_up_to_renaming back r.Certify.Fuzz.problem))
    reps

let fuzz_qcheck =
  [
    QCheck.Test.make ~name:"fuzzed-problems-always-certify" ~count:30
      QCheck.(int_range 0 100_000)
      (fun seed ->
        let rng = Random.State.make [| seed |] in
        let p = Certify.Fuzz.gen_problem rng in
        match Certify.Fuzz.run_one ~sim_seed:seed p with
        | Certify.Fuzz.Passed | Certify.Fuzz.Skipped _ -> true
        | Certify.Fuzz.Failed _ -> false);
  ]

let () =
  Certify.Hooks.install_if_env ();
  Trace.setup_from_env ();
  let qsuite name tests = (name, List.map Qseed.to_alcotest tests) in
  Alcotest.run "certify"
    [
      ( "certificates",
        [
          Alcotest.test_case "R pass" `Quick test_r_pass;
          Alcotest.test_case "Rbar pass" `Quick test_rbar_pass;
          Alcotest.test_case "zero-round pass" `Quick test_zero_round_pass;
          Alcotest.test_case "fixed point pass and fail" `Quick
            test_fixed_point_pass_and_fail;
        ] );
      ( "tampering",
        [
          Alcotest.test_case "shrunk denotation" `Quick test_tampered_denotation;
          Alcotest.test_case "dropped edge pair" `Quick test_dropped_edge_pair;
          Alcotest.test_case "dropped Rbar box" `Quick test_tampered_rbar_box;
          Alcotest.test_case "bogus zero-round verdicts" `Quick
            test_tampered_zero_round;
        ] );
      ( "hooks",
        [
          Alcotest.test_case "install state" `Quick test_hooks_state;
          Alcotest.test_case "hooks certify engine run" `Quick
            test_hooks_certify_engine_run;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "Pi(5,4,2) run certified" `Quick
            test_pi5_run_certified;
          Alcotest.test_case "SO fixed point certified" `Quick
            test_so_fixed_point_certified;
        ] );
      ( "simcheck",
        [
          Alcotest.test_case "agrees with engine" `Quick
            test_simcheck_agrees_with_engine;
          Alcotest.test_case "rejects bogus verdicts" `Quick
            test_simcheck_rejects_bogus_verdicts;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "clean campaign" `Quick test_clean_fuzz;
          Alcotest.test_case "injected fault caught and shrunk" `Quick
            test_injected_fault_caught_and_shrunk;
        ] );
      qsuite "fuzz-props" fuzz_qcheck;
    ]
