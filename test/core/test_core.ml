(* Tests for the paper's contribution: the Π_Δ(a,x) family, the
   mechanized lemmas, the lower-bound chains, and the bound formulas. *)

open Core
module Graph = Dsgraph.Graph
module Tree_gen = Dsgraph.Tree_gen
module Check = Dsgraph.Check

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let params delta a x = { Family.delta; a; x }

(* ------------------------------------------------------------------ *)
(* Family                                                              *)
(* ------------------------------------------------------------------ *)

let test_pi_shape () =
  let p = Family.pi (params 8 6 1) in
  check_int "5 labels" 5 (Relim.Problem.label_count p);
  check_int "arity" 8 (Relim.Problem.delta p);
  check_int "3 node lines" 3 (List.length (Relim.Constr.lines p.node));
  (* k = 0 and a = Delta degenerate cases still build. *)
  ignore (Family.pi (params 4 4 0));
  ignore (Family.pi (params 4 0 4))

let test_pi_mis_special_case () =
  (* Pi_Delta(Delta, 0) restricted to the labels {M, P, O} matches the
     MIS encoding: M^Delta and P O^(Delta-1) node lines; the A-line
     A^Delta is the extra "own all edges" option, and X never helps
     when x = 0.  We check the M and P lines coincide with MIS. *)
  let pi = Family.pi (params 5 5 0) in
  let mis = Lcl.Encodings.mis ~delta:5 in
  let line_strings p =
    List.map
      (Relim.Line.to_string p.Relim.Problem.alpha)
      (Relim.Constr.lines p.Relim.Problem.node)
  in
  let pi_lines = line_strings pi in
  let mis_lines = line_strings mis in
  List.iter
    (fun ml -> check_bool ("pi contains " ^ ml) true (List.mem ml pi_lines))
    mis_lines

let test_pi_edge_constraint () =
  (* MM, PP, AA, PA, PO forbidden; MO, MA, MP, MX, OO, ... allowed. *)
  let p = Family.pi (params 4 3 1) in
  let l name = Relim.Alphabet.find p.alpha name in
  let pair a b = Relim.Multiset.of_list [ l a; l b ] in
  let mem a b = Relim.Constr.mem p.edge (pair a b) in
  check_bool "MM forbidden" false (mem "M" "M");
  check_bool "AA forbidden" false (mem "A" "A");
  check_bool "PP forbidden" false (mem "P" "P");
  check_bool "PA forbidden" false (mem "P" "A");
  check_bool "PO forbidden" false (mem "P" "O");
  List.iter
    (fun (a, b) -> check_bool (a ^ b ^ " allowed") true (mem a b))
    [ ("M", "P"); ("M", "O"); ("M", "A"); ("M", "X"); ("O", "O");
      ("O", "A"); ("O", "X"); ("P", "M"); ("P", "X"); ("A", "X");
      ("X", "X"); ("O", "M") ]

let test_family_edge_diagram_fig4 () =
  (* Figure 4: X is the unique top (everything else points to it);
     A -> O and P -> O?  From the constraint: N(P) = {M,X},
     N(A) = {M,O,X}, N(O) = {M,A,O,X}, N(M) = {P,A,O,X},
     N(X) = all.  So X >= everything; O >= A (N(A) ⊆ N(O));
     O vs M incomparable; A vs P: N(P) ⊆ N(A)? {M,X} ⊆ {M,O,X} yes,
     so A >= P, and O >= P by transitivity. *)
  let p = Family.pi (params 6 4 1) in
  let d = Relim.Diagram.edge_diagram p in
  let l name = Relim.Alphabet.find p.alpha name in
  let geq a b = Relim.Diagram.geq d (l a) (l b) in
  List.iter
    (fun (a, b) -> check_bool (a ^ " >= " ^ b) true (geq a b))
    [ ("X", "M"); ("X", "P"); ("X", "O"); ("X", "A"); ("O", "A");
      ("A", "P"); ("O", "P") ];
  List.iter
    (fun (a, b) -> check_bool (a ^ " not >= " ^ b) false (geq a b))
    [ ("M", "O"); ("O", "M"); ("M", "P"); ("P", "M"); ("A", "O");
      ("P", "A"); ("M", "X") ]

let test_pi_plus_shape () =
  let p = Family.pi_plus (params 8 6 1) in
  check_int "6 labels" 6 (Relim.Problem.label_count p);
  check_int "4 node lines" 4 (List.length (Relim.Constr.lines p.node));
  (* C compatible with exactly M, A, O, X. *)
  let l name = Relim.Alphabet.find p.alpha name in
  let mem a b = Relim.Constr.mem p.edge (Relim.Multiset.of_list [ l a; l b ]) in
  check_bool "CC forbidden" false (mem "C" "C");
  check_bool "CP forbidden" false (mem "C" "P");
  List.iter
    (fun b -> check_bool ("C" ^ b ^ " allowed") true (mem "C" b))
    [ "M"; "A"; "O"; "X" ]

let test_param_validation () =
  Alcotest.check_raises "a too large"
    (Invalid_argument "Family: need 0 <= a <= delta") (fun () ->
      ignore (Family.pi (params 4 5 0)));
  Alcotest.check_raises "pi_plus range"
    (Invalid_argument "Family: requires x + 2 <= a <= delta") (fun () ->
      ignore (Family.pi_plus (params 4 2 1)))

(* ------------------------------------------------------------------ *)
(* Lemma 6                                                             *)
(* ------------------------------------------------------------------ *)

let test_lemma6_exhaustive_small () =
  for delta = 3 to 7 do
    for x = 0 to delta - 2 do
      for a = x + 2 to delta do
        check_bool
          (Printf.sprintf "lemma6 D=%d a=%d x=%d" delta a x)
          true
          (Lemma6.holds (params delta a x))
      done
    done
  done

let test_lemma6_large_delta () =
  List.iter
    (fun (delta, a, x) ->
      check_bool
        (Printf.sprintf "lemma6 D=%d" delta)
        true
        (Lemma6.holds (params delta a x)))
    [ (32, 20, 3); (128, 64, 5); (1024, 700, 10); (4096, 100, 7) ]

let test_lemma6_renaming_is_paper_table () =
  let report = Lemma6.verify (params 8 6 1) in
  match report.renaming with
  | None -> Alcotest.fail "no renaming"
  | Some pairs ->
      (* The computed Galois labels, renamed, must match the paper's
         mapping: MX -> M, OX -> O, MOX -> U, AOX -> A, MAOX -> B,
         PAOX -> P, MPAOX -> Q, X -> X (names in computed problems sort
         members by alphabet index M,P,O,A,X... rendered sorted). *)
      let get computed = List.assoc computed pairs in
      check_bool "X" true (get "X" = "X");
      check_bool "MX" true (get "MX" = "M");
      check_bool "MPAOX -> Q is the full set" true
        (List.exists (fun (c, d) -> d = "Q" && String.length c = 5) pairs)

(* ------------------------------------------------------------------ *)
(* Lemma 8                                                             *)
(* ------------------------------------------------------------------ *)

let test_lemma8_symbolic_exhaustive_small () =
  for delta = 3 to 8 do
    for x = 0 to delta - 2 do
      for a = x + 2 to delta do
        let r = Lemma8.verify_symbolic (params delta a x) in
        check_bool
          (Printf.sprintf "lemma8 D=%d a=%d x=%d" delta a x)
          true (Lemma8.all_ok r)
      done
    done
  done

let test_lemma8_symbolic_large () =
  List.iter
    (fun (delta, a, x) ->
      check_bool
        (Printf.sprintf "lemma8 D=%d" delta)
        true
        (Lemma8.all_ok (Lemma8.verify_symbolic (params delta a x))))
    [ (256, 100, 4); (65536, 4096, 11); (1 lsl 20, 1 lsl 10, 17) ]

let test_lemma8_concrete () =
  List.iter
    (fun (delta, a, x) ->
      let r = Lemma8.verify_concrete (params delta a x) in
      check_bool
        (Printf.sprintf "concrete D=%d a=%d x=%d" delta a x)
        true
        (r.all_relax && r.pi_rel_is_pi_plus_c && r.boxes > 0))
    [ (3, 3, 1); (4, 3, 1); (4, 4, 2); (5, 4, 2) ]

let test_pi_rel_problem () =
  let p = Lemma8.pi_rel_problem (params 8 6 1) in
  check_int "6 labels" 6 (Relim.Problem.label_count p);
  check_bool "equals pi_plus" true
    (Relim.Iso.equal_up_to_renaming p (Family.pi_plus (params 8 6 1)))

(* ------------------------------------------------------------------ *)
(* Lemma 5                                                             *)
(* ------------------------------------------------------------------ *)

let test_lemma5_basic () =
  let g = Tree_gen.balanced ~delta:5 ~depth:3 in
  let k = 1 in
  let r = Distalgo.Kods.via_arbdefective g ~k in
  let labeling, rounds =
    Lemma5.convert g ~k ~a:3 r.Distalgo.Kods.selected r.Distalgo.Kods.orientation
  in
  check_int "one round" 1 rounds;
  check_bool "valid" true
    (Lcl.Labeling.is_valid ~boundary:`Extendable
       (Family.pi (params 5 3 1))
       labeling)

let test_lemma5_rejects_invalid () =
  let g = Tree_gen.path 4 in
  let bad = [| true; true; false; false |] in
  (* 0-outdegree DS with adjacent members and no orientation: invalid *)
  let o = Dsgraph.Orientation.make g [| -1; -1; -1 |] in
  Alcotest.check_raises "invalid input"
    (Invalid_argument "Lemma5.convert: not a k-outdegree dominating set")
    (fun () -> ignore (Lemma5.convert g ~k:0 ~a:1 bad o))

let lemma5_qcheck =
  [
    QCheck.Test.make ~name:"lemma5-pipeline-always-valid" ~count:15
      QCheck.(triple (int_range 4 100) (int_range 3 8) (int_range 0 3))
      (fun (n, max_degree, k) ->
        let g = Tree_gen.random ~n ~max_degree ~seed:(n * 5 + k) in
        let delta = Graph.max_degree g in
        (* A small random tree may realize a max degree below the
           requested k (e.g. a 4-node path has delta = 2); an
           outdegree bound above delta is meaningless and trips the
           Family parameter check inside the conversion. *)
        let k = min k delta in
        let r = Distalgo.Kods.via_arbdefective g ~k in
        let a = delta in
        let labeling, rounds =
          Lemma5.convert g ~k ~a r.Distalgo.Kods.selected
            r.Distalgo.Kods.orientation
        in
        rounds = 1
        && Lcl.Labeling.is_valid ~boundary:`Extendable
             (Family.pi (params delta a (min k delta)))
             labeling);
  ]

(* ------------------------------------------------------------------ *)
(* Lemma 9                                                             *)
(* ------------------------------------------------------------------ *)

let test_lemma9_arithmetic () =
  check_int "target" 2 (Lemma9.target_a ~a:8 ~x:1);
  check_int "threshold" 3 (Lemma9.threshold ~a:8);
  check_int "target 16,0" 7 (Lemma9.target_a ~a:16 ~x:0)

(* End-to-end: kODS -> Lemma 5 -> Pi -> Pi+ -> Lemma 9 -> next Pi. *)
let lemma9_chain_on g k =
  let delta = Graph.max_degree g in
  let a = delta in
  let r = Distalgo.Kods.via_arbdefective g ~k in
  let labeling, _ =
    Lemma5.convert g ~k ~a r.Distalgo.Kods.selected r.Distalgo.Kods.orientation
  in
  let p0 = params delta a k in
  let plus = Lemma9.pi_to_pi_plus p0 labeling in
  let ok_plus =
    Lcl.Labeling.is_valid ~boundary:`Free (Family.pi_plus p0) plus
  in
  let colors = Dsgraph.Edge_coloring.color_tree g in
  let next = Lemma9.convert p0 g colors plus in
  let p1 = params delta (Lemma9.target_a ~a ~x:k) (k + 1) in
  let ok_next = Lcl.Labeling.is_valid ~boundary:`Free (Family.pi p1) next in
  (ok_plus, ok_next, next, p1)

let test_lemma9_balanced () =
  let g = Tree_gen.balanced ~delta:8 ~depth:3 in
  let ok_plus, ok_next, _, _ = lemma9_chain_on g 0 in
  check_bool "pi+ valid" true ok_plus;
  check_bool "converted valid" true ok_next

let test_lemma9_no_aa_edges () =
  (* The heart of the lemma: the conversion can never produce an AA
     edge.  Check explicitly on a large instance. *)
  let g = Tree_gen.balanced ~delta:9 ~depth:3 in
  let _, ok, next, p1 = lemma9_chain_on g 1 in
  check_bool "valid" true ok;
  let target = Family.pi p1 in
  let a_lab = Relim.Alphabet.find target.alpha "A" in
  List.iter
    (fun (u, v) ->
      let e = Graph.edge_id g u (Graph.port_of g u v) in
      let lu = Lcl.Labeling.label_at next ~v:u ~e in
      let lv = Lcl.Labeling.label_at next ~v ~e in
      check_bool "no AA" false (lu = a_lab && lv = a_lab))
    (Graph.edges g)

let lemma9_qcheck =
  [
    QCheck.Test.make ~name:"lemma9-chain-always-valid" ~count:10
      QCheck.(pair (int_range 20 120) (int_range 0 1))
      (fun (n, k) ->
        (* Need 2x+1 <= target chain: max_degree >= 5 ensures a =
           Delta >= 2k+1 for k <= 1. *)
        let g = Tree_gen.random ~n ~max_degree:(6 + (n mod 3)) ~seed:(n * 11) in
        let delta = Graph.max_degree g in
        if delta < 2 * k + 3 then true
        else begin
          let _, ok, _, _ = lemma9_chain_on g k in
          ok
        end);
  ]

(* Exhaustive pipeline over every labeled tree on 6 nodes: k-ODS ->
   Lemma 5 -> Pi -> Pi+ -> Lemma 9 -> valid. *)
let test_lemma9_all_small_trees () =
  let checked = ref 0 in
  Tree_gen.all_trees 6 (fun g ->
      let delta = Graph.max_degree g in
      let k = 0 in
      if delta >= k + 2 && 2 * k + 1 <= delta then begin
        incr checked;
        let r = Distalgo.Kods.via_arbdefective g ~k in
        let labeling, _ =
          Lemma5.convert g ~k ~a:delta r.Distalgo.Kods.selected
            r.Distalgo.Kods.orientation
        in
        let p0 = params delta delta k in
        let plus = Lemma9.pi_to_pi_plus p0 labeling in
        let colors = Dsgraph.Edge_coloring.color_tree g in
        let next = Lemma9.convert p0 g colors plus in
        let p1 = params delta (Lemma9.target_a ~a:delta ~x:k) (k + 1) in
        if not (Lcl.Labeling.is_valid ~boundary:`Free (Family.pi p1) next) then
          Alcotest.failf "invalid conversion on a 6-node tree (Delta=%d)" delta
      end);
  check_int "covered every tree" 1296 !checked

let test_lemma9_all_trees7 () =
  let checked = ref 0 in
  Tree_gen.all_trees 7 (fun g ->
      let delta = Graph.max_degree g in
      List.iter
        (fun k ->
          if delta >= k + 2 && (2 * k) + 1 <= delta then begin
            incr checked;
            let r = Distalgo.Kods.via_arbdefective g ~k in
            let labeling, _ =
              Lemma5.convert g ~k ~a:delta r.Distalgo.Kods.selected
                r.Distalgo.Kods.orientation
            in
            let p0 = params delta delta k in
            let plus = Lemma9.pi_to_pi_plus p0 labeling in
            let colors = Dsgraph.Edge_coloring.color_tree g in
            let next = Lemma9.convert p0 g colors plus in
            let p1 = params delta (Lemma9.target_a ~a:delta ~x:k) (k + 1) in
            if
              not (Lcl.Labeling.is_valid ~boundary:`Free (Family.pi p1) next)
            then
              Alcotest.failf "invalid conversion on a 7-node tree (Delta=%d, k=%d)"
                delta k
          end)
        [ 0; 1 ]);
  check_bool "covered tens of thousands of cases" true (!checked > 25_000)

(* ------------------------------------------------------------------ *)
(* Lemma 11                                                            *)
(* ------------------------------------------------------------------ *)

let test_lemma11 () =
  let g = Tree_gen.balanced ~delta:6 ~depth:2 in
  let k = 1 in
  let r = Distalgo.Kods.via_arbdefective g ~k in
  let labeling, _ =
    Lemma5.convert g ~k ~a:6 r.Distalgo.Kods.selected r.Distalgo.Kods.orientation
  in
  let from_ = params 6 6 1 in
  let to_ = params 6 3 2 in
  let relaxed = Lemma11.relax ~from_ ~to_ labeling in
  check_bool "relaxed valid" true
    (Lcl.Labeling.is_valid ~boundary:`Free (Family.pi to_) relaxed);
  Alcotest.check_raises "wrong direction"
    (Invalid_argument "Lemma11.relax: requires a <= a' and x >= x'")
    (fun () -> ignore (Lemma11.relax ~from_:to_ ~to_:from_ labeling))

let lemma11_qcheck =
  [
    QCheck.Test.make ~name:"lemma11-relax-always-valid" ~count:12
      QCheck.(quad (int_range 10 60) (int_range 0 2) (int_range 0 3) (int_range 0 3))
      (fun (n, k, da, dx) ->
        let g = Tree_gen.random ~n ~max_degree:8 ~seed:(n * 23) in
        let delta = Graph.max_degree g in
        if delta < k + 1 then true
        else begin
          let r = Distalgo.Kods.via_arbdefective g ~k in
          let labeling, _ =
            Lemma5.convert g ~k ~a:delta r.Distalgo.Kods.selected
              r.Distalgo.Kods.orientation
          in
          let from_ = params delta delta k in
          let a = max 0 (delta - da) in
          let x = min delta (k + dx) in
          let to_ = params delta a x in
          let relaxed = Lemma11.relax ~from_ ~to_ labeling in
          Lcl.Labeling.is_valid ~boundary:`Free (Family.pi to_) relaxed
        end);
  ]

let zero_round_qcheck =
  [
    QCheck.Test.make ~name:"lemma12-range-exact" ~count:60
      QCheck.(triple (int_range 2 30) small_nat small_nat)
      (fun (delta, a0, x0) ->
        let a = a0 mod (delta + 1) and x = x0 mod (delta + 1) in
        let in_range = x <= delta - 1 && a >= 1 in
        Zero_round.deterministic_unsolvable (params delta a x) = in_range);
  ]

(* ------------------------------------------------------------------ *)
(* Zero round (Lemmas 12 and 15)                                       *)
(* ------------------------------------------------------------------ *)

let test_zero_round_family () =
  check_bool "standard params" true
    (Zero_round.deterministic_unsolvable (params 6 4 1));
  (* x = Delta: the M-line becomes X^Delta, solvable. *)
  check_bool "x = Delta solvable" false
    (Zero_round.deterministic_unsolvable (params 4 2 4));
  (* a = 0: the A-line becomes X^Delta, solvable. *)
  check_bool "a = 0 solvable" false
    (Zero_round.deterministic_unsolvable (params 4 0 1))

let test_zero_round_randomized () =
  (match Zero_round.randomized_failure_bound (params 6 4 1) with
  | Some b ->
      Alcotest.(check (float 1e-12)) "1/(3*6)^2" (1. /. 324.) b;
      check_bool "at least 1/Delta^8" true (b >= 1. /. (6. ** 8.))
  | None -> Alcotest.fail "expected bound");
  check_bool "none out of range" true
    (Zero_round.randomized_failure_bound (params 4 2 4) = None)

let test_witnesses () =
  let ws = Zero_round.self_incompatible_witnesses (params 5 3 1) in
  check_int "three configurations" 3 (List.length ws);
  Alcotest.(check (list string)) "witness labels" [ "M"; "A"; "P" ]
    (List.map snd ws)

(* ------------------------------------------------------------------ *)
(* Sequence (Lemma 13)                                                 *)
(* ------------------------------------------------------------------ *)

let test_sequence_values () =
  let chain = Sequence.build ~delta:64 ~x0:0 in
  check_int "length" 2 (Sequence.length chain);
  let steps = Array.of_list chain.steps in
  check_int "a0" 64 steps.(0).a;
  check_int "a1" 8 steps.(1).a;
  check_int "a2" 1 steps.(2).a;
  check_int "x2" 2 steps.(2).x

let test_sequence_verified () =
  List.iter
    (fun delta ->
      let chain = Sequence.build ~delta ~x0:0 in
      let checkr = Sequence.verify chain in
      check_bool
        (Printf.sprintf "chain D=%d verified" delta)
        true
        (Sequence.chain_ok checkr))
    [ 16; 64; 256; 1024; 8192 ]

let test_sequence_scaling () =
  (* t grows like log Delta: within [log2 D / 4, log2 D]. *)
  List.iter
    (fun e ->
      let delta = 1 lsl e in
      let t = Sequence.kods_pn_lower_bound ~delta ~k:0 in
      check_bool
        (Printf.sprintf "t(2^%d)=%d in range" e t)
        true
        (t >= (e / 4) - 1 && t <= e))
    [ 6; 10; 14; 20; 26; 40 ]

let test_sequence_monotone_in_delta () =
  let t d = Sequence.kods_pn_lower_bound ~delta:d ~k:0 in
  check_bool "monotone" true (t 64 <= t 512 && t 512 <= t 4096)

let test_sequence_k_dependence () =
  (* Larger k shortens (or keeps) the chain, never lengthens it. *)
  let t k = Sequence.kods_pn_lower_bound ~delta:4096 ~k in
  check_bool "k monotone" true (t 0 >= t 2 && t 2 >= t 8);
  check_bool "huge k kills the chain" true (t 2000 <= 1)

let test_sequence_trivial_delta () =
  (* Tiny Delta: no speedup steps, but the chain object still exists. *)
  let chain = Sequence.build ~delta:3 ~x0:0 in
  check_bool "non-negative" true (Sequence.length chain >= 0)

let test_optimal_chain () =
  (* The exact recurrence gives longer chains, still Theta(log Delta). *)
  List.iter
    (fun e ->
      let delta = 1 lsl e in
      let canon = Sequence.kods_pn_lower_bound ~delta ~k:0 in
      let opt = Sequence.optimal_length ~delta ~x0:0 in
      check_bool
        (Printf.sprintf "optimal >= canonical at 2^%d" e)
        true (opt >= canon);
      check_bool "still at most log2" true (opt <= e))
    [ 8; 12; 20; 30 ];
  (* Optimal chains satisfy the same mechanical certificates. *)
  let chain = Sequence.optimal ~delta:512 ~x0:0 in
  check_bool "optimal chain verified" true
    (Sequence.chain_ok (Sequence.verify chain))

(* ------------------------------------------------------------------ *)
(* k-degree dominating sets (the corollary reduction)                  *)
(* ------------------------------------------------------------------ *)

let test_kdeg_reduction () =
  let g = Tree_gen.random ~n:150 ~max_degree:8 ~seed:81 in
  List.iter
    (fun k ->
      let r = Distalgo.Kods.via_defective g ~k in
      check_bool
        (Printf.sprintf "k=%d reduction" k)
        true
        (Kdeg.reduction_valid g ~k r.Distalgo.Kods.selected))
    [ 0; 1; 2; 4 ]

let test_kdeg_pipeline () =
  let g = Tree_gen.balanced ~delta:6 ~depth:3 in
  let labeling, _ = Kdeg.pipeline g ~k:2 in
  check_bool "labeling valid" true
    (Lcl.Labeling.is_valid ~boundary:`Extendable
       (Family.pi (params 6 6 2))
       labeling)

let test_kdeg_negative () =
  (* The reduction claim is vacuous (hence true) for non-dominating
     sets, and the orientation only touches induced edges. *)
  let g = Tree_gen.path 4 in
  let sel = [| true; false; false; false |] in
  check_bool "vacuous" true (Kdeg.reduction_valid g ~k:0 sel);
  let o = Kdeg.orient_arbitrarily g [| true; true; false; true |] in
  check_bool "only induced edges" true
    (Dsgraph.Orientation.oriented o 0 && not (Dsgraph.Orientation.oriented o 1))

(* ------------------------------------------------------------------ *)
(* Master report                                                       *)
(* ------------------------------------------------------------------ *)

let test_paper_verify () =
  List.iter
    (fun (delta, k) ->
      let report = Paper.verify ~delta ~k () in
      check_bool
        (Printf.sprintf "paper verify D=%d k=%d" delta k)
        true (Paper.all_ok report))
    [ (64, 0); (256, 1); (1024, 2) ];
  let deep = Paper.verify ~concrete_lemma8:true ~delta:64 ~k:0 () in
  check_bool "with concrete cross-check" true (Paper.all_ok deep)

(* ------------------------------------------------------------------ *)
(* Theorem 14                                                          *)
(* ------------------------------------------------------------------ *)

let test_theorem14_certificate () =
  let cert = Theorem14.certify ~delta:1024 ~k:0 in
  check_bool "valid" true (Theorem14.valid cert);
  check_int "t" (Sequence.kods_pn_lower_bound ~delta:1024 ~k:0) cert.Theorem14.t;
  (* Conclusions evaluate and respect the min. *)
  let det = Theorem14.conclusion_det cert ~n:1e30 in
  check_bool "det positive" true (det > 0.);
  check_bool "det bounded by t" true (det <= float_of_int cert.Theorem14.t)

let test_theorem14_k_sweep () =
  List.iter
    (fun k ->
      let cert = Theorem14.certify ~delta:4096 ~k in
      check_bool (Printf.sprintf "k=%d valid" k) true (Theorem14.valid cert))
    [ 0; 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Bounds                                                              *)
(* ------------------------------------------------------------------ *)

let test_log_star () =
  check_int "log* 1" 0 (Bounds.log_star 1.);
  check_int "log* 2" 1 (Bounds.log_star 2.);
  check_int "log* 16" 3 (Bounds.log_star 16.);
  check_int "log* 65536" 4 (Bounds.log_star 65536.);
  check_bool "log* 2^65536 is 5-ish" true (Bounds.log_star 1e300 <= 6)

let test_theorem1_shape () =
  (* For fixed n, the bound grows with Delta up to the crossover and
     then the log_Delta n term takes over. *)
  let n = 2. ** 30. in
  let small = Bounds.theorem1_det ~delta:8. ~n in
  let mid = Bounds.theorem1_det ~delta:(2. ** 5.) ~n in
  check_bool "increasing below crossover" true (small < mid);
  let huge = Bounds.theorem1_det ~delta:(2. ** 25.) ~n in
  check_bool "decreasing above crossover" true (huge < mid);
  (* At the Corollary-2 optimum the two terms balance. *)
  let delta_star = Bounds.best_delta_det ~n in
  let at_star = Bounds.corollary2_det ~delta:delta_star ~n in
  Alcotest.(check (float 1e-6)) "sqrt(log n)" (sqrt 30.) at_star

let test_improvement_over_prior () =
  (* This paper's log Delta beats [5]'s log Delta / loglog Delta. *)
  let delta = 2. ** 20. in
  let n = 2. ** 60. in
  check_bool "improvement" true
    (Bounds.corollary2_det ~delta ~n > Bounds.bbo20_det ~delta ~n)

let test_upper_vs_lower () =
  (* Upper bounds dominate the lower bounds everywhere we evaluate. *)
  List.iter
    (fun (delta, n) ->
      check_bool "MIS upper >= lower" true
        (Bounds.upper_mis ~delta ~n >= Bounds.theorem1_det ~delta ~n);
      check_bool "kods upper >= lower (k=2)" true
        (Bounds.upper_kods ~delta ~k:2. ~n
        >= Bounds.theorem1_det ~delta ~n))
    [ (8., 1e6); (64., 1e9); (1024., 1e12) ]

let bounds_qcheck =
  [
    QCheck.Test.make ~name:"theorem1-monotone-in-n" ~count:100
      QCheck.(pair (int_range 3 30) (int_range 20 200))
      (fun (dexp, nexp) ->
        let delta = 2. ** float_of_int dexp in
        let n1 = 2. ** float_of_int nexp in
        let n2 = 2. ** float_of_int (nexp + 5) in
        Bounds.theorem1_det ~delta ~n:n1 <= Bounds.theorem1_det ~delta ~n:n2
        && Bounds.theorem1_rand ~delta ~n:n1
           <= Bounds.theorem1_rand ~delta ~n:n2);
    QCheck.Test.make ~name:"rand-never-exceeds-det" ~count:100
      QCheck.(pair (int_range 3 30) (int_range 20 200))
      (fun (dexp, nexp) ->
        let delta = 2. ** float_of_int dexp in
        let n = 2. ** float_of_int nexp in
        Bounds.theorem1_rand ~delta ~n <= Bounds.theorem1_det ~delta ~n +. 1e-9);
    QCheck.Test.make ~name:"upper-dominates-lower" ~count:100
      QCheck.(triple (int_range 2 16) (int_range 20 100) (int_range 1 10))
      (fun (dexp, nexp, k) ->
        let delta = 2. ** float_of_int dexp in
        let n = 2. ** float_of_int nexp in
        Bounds.upper_kods ~delta ~k:(float_of_int k) ~n
        >= Bounds.theorem1_det ~delta ~n -. 1e-9);
  ]

let family_qcheck =
  [
    QCheck.Test.make ~name:"pi-always-5-labels-3-lines" ~count:100
      QCheck.(triple (int_range 1 200) small_nat small_nat)
      (fun (delta, a0, x0) ->
        let a = a0 mod (delta + 1) and x = x0 mod (delta + 1) in
        let p = Family.pi (params delta a x) in
        Relim.Problem.label_count p = 5
        && List.length (Relim.Constr.lines p.Relim.Problem.node) <= 3
        && List.length (Relim.Constr.lines p.Relim.Problem.edge) = 5);
    QCheck.Test.make ~name:"lemma6-random-params" ~count:25
      QCheck.(triple (int_range 3 40) small_nat small_nat)
      (fun (delta, a0, x0) ->
        let x = x0 mod (delta - 1) in
        let a = (x + 2) + (a0 mod (delta - x - 1)) in
        Lemma6.holds (params delta a x));
    QCheck.Test.make ~name:"lemma8-random-params" ~count:25
      QCheck.(triple (int_range 3 60) small_nat small_nat)
      (fun (delta, a0, x0) ->
        let x = x0 mod (delta - 1) in
        let a = (x + 2) + (a0 mod (delta - x - 1)) in
        Lemma8.all_ok (Lemma8.verify_symbolic (params delta a x)));
  ]

(* ------------------------------------------------------------------ *)
(* Growth ablation                                                     *)
(* ------------------------------------------------------------------ *)

let test_growth_blowup () =
  let mis = Lcl.Encodings.mis ~delta:3 in
  let trace = Growth.naive_iteration ~steps:3 ~max_labels:60 mis in
  (* Description sizes (not just labels) blow up: edge lines explode. *)
  (match trace.Growth.sizes with
  | first :: rest ->
      check_int "initial edge lines" 2 first.Growth.edge_lines;
      check_bool "edge lines explode" true
        (List.exists (fun s -> s.Growth.edge_lines > 50) rest)
  | [] -> Alcotest.fail "sizes missing");
  (match trace.label_counts with
  | 3 :: 6 :: rest ->
      check_bool "keeps growing" true
        (match rest with c :: _ -> c > 6 | [] -> true)
  | other ->
      Alcotest.failf "unexpected prefix: %s"
        (String.concat "," (List.map string_of_int other)));
  check_bool "exhausts budget" true (trace.stopped = `Exhausted_budget)

let test_family_stays_constant () =
  (* Every problem in the paper's chain uses exactly 5 labels. *)
  let chain = Sequence.build ~delta:1024 ~x0:0 in
  List.iter
    (fun { Sequence.a; x; _ } ->
      check_int "5 labels" 5
        (Relim.Problem.label_count (Family.pi (params 1024 a x))))
    chain.steps

let test_r_label_counts () =
  let mis = Lcl.Encodings.mis ~delta:3 in
  match Growth.r_label_counts ~steps:2 ~max_labels:60 mis with
  | 4 :: _ -> ()
  | other ->
      Alcotest.failf "expected R(MIS) to have 4 labels, got %s"
        (String.concat "," (List.map string_of_int other))

(* ------------------------------------------------------------------ *)
(* Golden snapshots: Pi_Delta(a,x) and its R image (Figs. 4 and 5)     *)
(* ------------------------------------------------------------------ *)

(* Golden files live in test/core/golden/ in the source tree and are
   declared as test deps, so dune copies them next to the test binary
   (cwd is _build/default/test/core).  DUNE_GOLDEN_UPDATE=1 writes the
   current output back to the source tree instead of comparing. *)
let golden_build_dir = "golden"

(* Under `dune runtest` the cwd is _build/default/test/core; under
   `dune exec test/core/test_core.exe` it is the project root. *)
let golden_source_dir () =
  match
    List.find_opt Sys.file_exists
      [ "../../../test/core/golden"; "test/core/golden" ]
  with
  | Some dir -> dir
  | None ->
      Alcotest.fail
        "cannot locate the source test/core/golden directory for \
         DUNE_GOLDEN_UPDATE"

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* A readable unified-ish diff: every differing line, prefixed with the
   1-based line number, capped so a totally rewritten snapshot stays
   reviewable. *)
let golden_diff expected actual =
  let lines s = Array.of_list (String.split_on_char '\n' s) in
  let e = lines expected and a = lines actual in
  let n = max (Array.length e) (Array.length a) in
  let buf = Buffer.create 256 in
  let shown = ref 0 in
  for i = 0 to n - 1 do
    let ei = if i < Array.length e then Some e.(i) else None in
    let ai = if i < Array.length a then Some a.(i) else None in
    if ei <> ai && !shown < 20 then begin
      incr shown;
      (match ei with
      | Some l -> Buffer.add_string buf (Printf.sprintf "  line %d: - %s\n" (i + 1) l)
      | None -> ());
      match ai with
      | Some l -> Buffer.add_string buf (Printf.sprintf "  line %d: + %s\n" (i + 1) l)
      | None -> ()
    end
  done;
  if !shown >= 20 then Buffer.add_string buf "  ... (more differences)\n";
  Buffer.contents buf

let check_golden name actual =
  let file = name ^ ".golden" in
  if Sys.getenv_opt "DUNE_GOLDEN_UPDATE" = Some "1" then begin
    write_file (Filename.concat (golden_source_dir ()) file) actual;
    Printf.printf "golden: regenerated %s\n" file
  end
  else
    let path = Filename.concat golden_build_dir file in
    if not (Sys.file_exists path) then
      Alcotest.failf
        "missing golden file test/core/golden/%s — generate it with \
         DUNE_GOLDEN_UPDATE=1 dune runtest"
        file
    else
      let expected = read_file path in
      if not (String.equal expected actual) then
        Alcotest.failf
          "%s differs from test/core/golden/%s (- expected, + actual):\n\
           %s\n\
           if the change is intended, refresh with DUNE_GOLDEN_UPDATE=1 dune \
           runtest"
          name file (golden_diff expected actual)

(* Two parameter points: the paper's running example Pi_8(6,1) and the
   Pi_5(4,2) instance the benchmarks use.  Four snapshots each: the
   serialized problem, the serialized R image, the edge diagram of Pi
   (Fig. 4), and the node diagram of R(Pi) (Fig. 5). *)
let golden_family_point ~delta ~a ~x () =
  let tag = Printf.sprintf "pi_%d_%d_%d" delta a x in
  let p = Family.pi (params delta a x) in
  check_golden tag (Relim.Serialize.to_string p);
  check_golden
    (tag ^ "_edge_diagram")
    (Format.asprintf "%a" Relim.Diagram.pp (Relim.Diagram.edge_diagram p));
  let { Relim.Rounde.problem = rp; _ } = Relim.Rounde.r p in
  check_golden (tag ^ "_r") (Relim.Serialize.to_string rp);
  check_golden
    (tag ^ "_r_node_diagram")
    (Format.asprintf "%a" Relim.Diagram.pp (Relim.Diagram.node_diagram rp))

let () =
  (* RELIM_CERTIFY=1 re-checks every engine output in this suite with
     the independent certifiers in lib/certify. *)
  Certify.Hooks.install_if_env ();
  (* RELIM_TRACE=<path> records an execution trace of the whole suite
     (the CI trace leg exercises this). *)
  Trace.setup_from_env ();
  let qsuite name tests =
    (name, List.map (Qseed.to_alcotest) tests)
  in
  Alcotest.run "core"
    [
      ( "family",
        [
          Alcotest.test_case "pi shape" `Quick test_pi_shape;
          Alcotest.test_case "MIS special case" `Quick test_pi_mis_special_case;
          Alcotest.test_case "edge constraint" `Quick test_pi_edge_constraint;
          Alcotest.test_case "edge diagram (Fig 4)" `Quick
            test_family_edge_diagram_fig4;
          Alcotest.test_case "pi+ shape" `Quick test_pi_plus_shape;
          Alcotest.test_case "validation" `Quick test_param_validation;
        ] );
      ( "lemma6",
        [
          Alcotest.test_case "exhaustive small Delta" `Slow
            test_lemma6_exhaustive_small;
          Alcotest.test_case "large Delta" `Quick test_lemma6_large_delta;
          Alcotest.test_case "paper renaming" `Quick
            test_lemma6_renaming_is_paper_table;
        ] );
      ( "lemma8",
        [
          Alcotest.test_case "symbolic exhaustive small" `Slow
            test_lemma8_symbolic_exhaustive_small;
          Alcotest.test_case "symbolic large Delta" `Quick
            test_lemma8_symbolic_large;
          Alcotest.test_case "concrete engine" `Slow test_lemma8_concrete;
          Alcotest.test_case "pi_rel = pi_plus" `Quick test_pi_rel_problem;
        ] );
      ( "lemma5",
        [
          Alcotest.test_case "basic" `Quick test_lemma5_basic;
          Alcotest.test_case "rejects invalid" `Quick test_lemma5_rejects_invalid;
        ] );
      qsuite "lemma5-props" lemma5_qcheck;
      ( "lemma9",
        [
          Alcotest.test_case "arithmetic" `Quick test_lemma9_arithmetic;
          Alcotest.test_case "balanced tree" `Quick test_lemma9_balanced;
          Alcotest.test_case "no AA edges" `Quick test_lemma9_no_aa_edges;
        ] );
      qsuite "lemma9-props" lemma9_qcheck;
      ( "lemma9-exhaustive",
        [
          Alcotest.test_case "all 6-node trees" `Slow
            test_lemma9_all_small_trees;
          Alcotest.test_case "all 7-node trees, k=0 and k=1" `Slow
            test_lemma9_all_trees7;
        ] );
      ("lemma11", [ Alcotest.test_case "relax" `Quick test_lemma11 ]);
      qsuite "lemma11-props" lemma11_qcheck;
      qsuite "lemma12-props" zero_round_qcheck;
      ( "zero-round",
        [
          Alcotest.test_case "deterministic" `Quick test_zero_round_family;
          Alcotest.test_case "randomized" `Quick test_zero_round_randomized;
          Alcotest.test_case "witnesses" `Quick test_witnesses;
        ] );
      ( "sequence",
        [
          Alcotest.test_case "values" `Quick test_sequence_values;
          Alcotest.test_case "verified chains" `Slow test_sequence_verified;
          Alcotest.test_case "scaling" `Quick test_sequence_scaling;
          Alcotest.test_case "monotone in Delta" `Quick
            test_sequence_monotone_in_delta;
          Alcotest.test_case "k dependence" `Quick test_sequence_k_dependence;
          Alcotest.test_case "trivial Delta" `Quick test_sequence_trivial_delta;
          Alcotest.test_case "optimal chain" `Quick test_optimal_chain;
        ] );
      ( "kdeg",
        [
          Alcotest.test_case "reduction" `Quick test_kdeg_reduction;
          Alcotest.test_case "pipeline" `Quick test_kdeg_pipeline;
          Alcotest.test_case "negative" `Quick test_kdeg_negative;
        ] );
      ( "paper",
        [ Alcotest.test_case "master report" `Slow test_paper_verify ] );
      ( "theorem14",
        [
          Alcotest.test_case "certificate" `Quick test_theorem14_certificate;
          Alcotest.test_case "k sweep" `Slow test_theorem14_k_sweep;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "log*" `Quick test_log_star;
          Alcotest.test_case "theorem 1 shape" `Quick test_theorem1_shape;
          Alcotest.test_case "improvement over FOCS'20" `Quick
            test_improvement_over_prior;
          Alcotest.test_case "upper vs lower" `Quick test_upper_vs_lower;
        ] );
      qsuite "bounds-props" bounds_qcheck;
      qsuite "family-props" family_qcheck;
      ( "growth",
        [
          Alcotest.test_case "naive blow-up" `Quick test_growth_blowup;
          Alcotest.test_case "family stays at 5" `Quick
            test_family_stays_constant;
          Alcotest.test_case "R label counts" `Quick test_r_label_counts;
        ] );
      ( "golden",
        [
          Alcotest.test_case "Pi_8(6,1) and R image" `Quick
            (golden_family_point ~delta:8 ~a:6 ~x:1);
          Alcotest.test_case "Pi_5(4,2) and R image" `Quick
            (golden_family_point ~delta:5 ~a:4 ~x:2);
        ] );
    ]
