(* Tests for lib/store: the JSON codec, the wire-protocol codec, the
   certificate text format, and the certificate-gated on-disk result
   store (admission gating, warm reload, tamper/truncation rejection,
   hash-collision safety, atomic-write leftovers). *)

open Relim
module Json = Store.Json
module Protocol = Store.Protocol
module Disk = Store.Disk
module Certificate = Certify.Certificate

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* Fresh scratch directory per test. *)
let counter = ref 0
let tmpdir () =
  incr counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "relim-store-test-%d-%d" (Unix.getpid ()) !counter)
  in
  (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("id", Json.Int 42);
        ("name", Json.String "a\nb\t\"c\"\\d");
        ("pi", Json.Float 3.5);
        ("flags", Json.List [ Json.Bool true; Json.Bool false; Json.Null ]);
        ("nested", Json.Obj [ ("x", Json.Int (-7)) ]);
      ]
  in
  let s = Json.to_string v in
  check_bool "printer emits one line" false (String.contains s '\n');
  (match Json.of_string s with
  | Ok v' -> check_bool "roundtrip" true (v = v')
  | Error m -> Alcotest.failf "reparse failed: %s" m);
  (* Field order is construction order: printing is deterministic. *)
  check_string "deterministic print" s
    (Json.to_string
       (match Json.of_string s with Ok v -> v | Error m -> failwith m))

let test_json_unicode () =
  match Json.of_string {|"café 😀"|} with
  | Ok (Json.String s) ->
      check_string "escape decoding to UTF-8" "caf\xc3\xa9 \xf0\x9f\x98\x80" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error m -> Alcotest.failf "parse failed: %s" m

let test_json_garbage () =
  let bad =
    [
      "";
      "{";
      "[1,2";
      "{\"a\":}";
      "\"unterminated";
      "{\"a\":1} trailing";
      "nul";
      "{\"a\" 1}";
      "\"bad \\q escape\"";
      String.concat "" (List.init 600 (fun _ -> "[")) (* depth bomb *);
    ]
  in
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted garbage %S" s
      | Error _ -> ())
    bad

let test_json_numbers () =
  (match Json.of_string "[0,-12,1e3,2.5,-0.125]" with
  | Ok
      (Json.List
        [ Json.Int 0; Json.Int (-12); Json.Float 1000.; Json.Float 2.5; Json.Float f ])
    ->
      check_bool "negative fraction" true (f = -0.125)
  | Ok j -> Alcotest.failf "unexpected parse: %s" (Json.to_string j)
  | Error m -> Alcotest.failf "parse failed: %s" m);
  (* Non-finite floats must not corrupt the JSONL stream. *)
  check_string "nan prints as null" "null" (Json.to_string (Json.Float nan))

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let test_protocol_decode () =
  (match Protocol.decode {|{"id":7,"op":"step","problem":"text"}|} with
  | Ok (Protocol.Step { id = Json.Int 7; problem = "text" }) -> ()
  | _ -> Alcotest.fail "step decode");
  (match
     Protocol.decode {|{"id":"x","op":"fixed-point","problem":"t","max_steps":5}|}
   with
  | Ok
      (Protocol.Fixed_point
        { id = Json.String "x"; problem = "t"; max_steps = Some 5 }) ->
      ()
  | _ -> Alcotest.fail "fixed-point decode");
  (match Protocol.decode {|{"op":"ping"}|} with
  | Ok (Protocol.Ping { id = Json.Null }) -> ()
  | _ -> Alcotest.fail "ping decode, id defaults to null")

let test_protocol_decode_errors () =
  (* Garbage: parse-error, id unknown. *)
  (match Protocol.decode "not json at all" with
  | Error (Json.Null, Protocol.Parse_error, _) -> ()
  | _ -> Alcotest.fail "garbage line");
  (* Well-formed JSON, bad request: the id must still be echoed. *)
  (match Protocol.decode {|{"id":9,"op":"launch-missiles"}|} with
  | Error (Json.Int 9, Protocol.Bad_request, _) -> ()
  | _ -> Alcotest.fail "unknown op keeps id");
  (match Protocol.decode {|{"id":1,"op":"step"}|} with
  | Error (Json.Int 1, Protocol.Bad_request, _) -> ()
  | _ -> Alcotest.fail "step without problem");
  (match Protocol.decode {|{"id":1,"op":"fixed-point","problem":"p","max_steps":"many"}|} with
  | Error (Json.Int 1, Protocol.Bad_request, _) -> ()
  | _ -> Alcotest.fail "non-integer max_steps");
  match Protocol.decode "[1,2,3]" with
  | Error (Json.Null, Protocol.Bad_request, _) -> ()
  | _ -> Alcotest.fail "non-object request"

let test_protocol_render () =
  check_string "error line" {|{"id":3,"ok":false,"error":{"code":"parse-error","message":"bad"}}|}
    (Protocol.error_line ~id:(Json.Int 3) Protocol.Parse_error "bad");
  check_string "ok line with cache flag"
    {|{"id":null,"ok":true,"cached":true,"result":{"n":1}}|}
    (Protocol.ok_line ~id:Json.Null ~cached:true [ ("n", Json.Int 1) ]);
  check_string "ok line without cache flag" {|{"id":1,"ok":true,"result":{}}|}
    (Protocol.ok_line ~id:(Json.Int 1) [])

(* ------------------------------------------------------------------ *)
(* Certificates                                                        *)
(* ------------------------------------------------------------------ *)

let mis () =
  Parse.problem ~name:"MIS" ~node:"M^3\nP O^2" ~edge:"O^2\nM [PO]"

let step_certificate p =
  let rd = Rounde.r p in
  let rbd = Rounde.rbar rd.Rounde.problem in
  let result =
    {
      rbd with
      Rounde.problem =
        { rbd.Rounde.problem with Problem.name = "step(" ^ p.Problem.name ^ ")" };
    }
  in
  Certificate.of_step_parts ~source:p ~r:rd ~result

let test_certificate_roundtrip () =
  let cert = step_certificate (mis ()) in
  let text = Certificate.to_text cert in
  (match Certificate.of_text text with
  | Ok cert' -> check_bool "to_text/of_text roundtrip" true (cert = cert')
  | Error m -> Alcotest.failf "of_text failed: %s" m);
  (match Certificate.validate cert with
  | Ok () -> ()
  | Error m -> Alcotest.failf "honest certificate rejected: %s" m);
  match cert with
  | Certificate.Step s ->
      check_bool "result_text is the step result" true
        (Certificate.result_text cert = s.Certificate.result)
  | _ -> Alcotest.fail "expected a Step certificate"

let test_certificate_tamper () =
  let cert = step_certificate (mis ()) in
  (* Forge: claim the step result is the (unstepped) source problem. *)
  let forged =
    match cert with
    | Certificate.Step s -> Certificate.Step { s with Certificate.result = s.Certificate.source }
    | c -> c
  in
  (match Certificate.validate forged with
  | Ok () -> Alcotest.fail "validate accepted a forged result"
  | Error _ -> ());
  (* Truncated serializations must fail structurally, never raise. *)
  let text = Certificate.to_text cert in
  List.iter
    (fun cut ->
      match Certificate.of_text (String.sub text 0 cut) with
      | Ok _ -> Alcotest.failf "accepted truncation at %d" cut
      | Error _ -> ())
    [ 0; 5; String.length text / 2; String.length text - 2 ];
  match Certificate.of_text "certificate v1 step\ngarbage" with
  | Ok _ -> Alcotest.fail "accepted garbage body"
  | Error _ -> ()

let test_certificate_fixed_point () =
  let so = Parse.problem ~name:"SO" ~node:"O [IO]^2" ~edge:"O I" in
  (match Fixedpoint.detect so with
  | Fixedpoint.Reaches_fixed_point (_, fixed) -> (
      let cert = Certificate.of_fixed_point fixed in
      match Certificate.validate cert with
      | Ok () -> ()
      | Error m -> Alcotest.failf "honest fixed-point rejected: %s" m)
  | _ -> Alcotest.fail "SO should reach a fixed point");
  (* MIS is not a fixed point: a certificate claiming so must fail the
     independent replay. *)
  match Certificate.validate (Certificate.of_fixed_point (mis ())) with
  | Ok () -> Alcotest.fail "validate accepted a false fixed-point claim"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Disk store                                                          *)
(* ------------------------------------------------------------------ *)

let entry_files dir =
  Sys.readdir (Filename.concat dir "entries")
  |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".ent")

let entry_path dir f = Filename.concat (Filename.concat dir "entries") f

let admit_mis t =
  let p = mis () in
  let cert = step_certificate p in
  (match Disk.add_step t ~source:p cert with
  | Ok () -> ()
  | Error m -> Alcotest.failf "admission failed: %s" m);
  (p, Certificate.result_text cert)

let test_disk_roundtrip () =
  let dir = tmpdir () in
  let t = Disk.open_dir dir in
  let p, expect = admit_mis t in
  (match Disk.find_step t p with
  | Some got -> check_string "served text" expect got
  | None -> Alcotest.fail "admitted entry not found");
  check_int "one admission" 1 (Disk.stats t).Disk.admitted;
  check_int "one file" 1 (List.length (entry_files dir));
  (* Re-admitting the same problem is a no-op. *)
  (match Disk.add_step t ~source:p (step_certificate p) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "re-admission failed: %s" m);
  check_int "still one file" 1 (List.length (entry_files dir));
  check_int "still one admission" 1 (Disk.stats t).Disk.admitted;
  (* A renamed-label variant hits the same entry. *)
  let renamed = Iso.apply_renaming p [ ("M", "Z"); ("P", "Q") ] in
  match Disk.find_step t renamed with
  | Some got -> check_string "isomorphic lookup serves stored text" expect got
  | None -> Alcotest.fail "isomorphic variant missed"

let test_disk_warm_reload () =
  let dir = tmpdir () in
  let p, expect =
    let t = Disk.open_dir dir in
    admit_mis t
  in
  (* A fresh handle = a restarted process: the entry must revalidate
     and serve byte-identical text. *)
  let t2 = Disk.open_dir dir in
  (match Disk.find_step t2 p with
  | Some got -> check_string "warm text byte-identical" expect got
  | None -> Alcotest.fail "warm reload missed");
  let s = Disk.stats t2 in
  check_int "warm hit" 1 s.Disk.hits;
  check_int "no rejects on clean store" 0
    (s.Disk.rejected_corrupt + s.Disk.rejected_invalid)

let corrupt_file path f =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let text' = f text in
  let oc = open_out_bin path in
  output_string oc text';
  close_out oc

let test_disk_tamper_rejected () =
  let dir = tmpdir () in
  let p, _ =
    let t = Disk.open_dir dir in
    admit_mis t
  in
  let file = List.hd (entry_files dir) in
  (* Flip one byte in the middle of the entry body. *)
  corrupt_file (entry_path dir file) (fun text ->
      let i = String.length text / 2 in
      let b = Bytes.of_string text in
      Bytes.set b i (if Bytes.get b i = 'x' then 'y' else 'x');
      Bytes.to_string b);
  let t = Disk.open_dir dir in
  (match Disk.find_step t p with
  | None -> ()
  | Some _ -> Alcotest.fail "tampered entry was served");
  check_bool "tamper counted as corrupt" true
    ((Disk.stats t).Disk.rejected_corrupt >= 1);
  let total, ok, rejects = Disk.validate_all t in
  check_int "validate_all sees the file" 1 total;
  check_int "validate_all rejects it" 0 ok;
  match rejects with
  | [ (f, reason) ] ->
      check_string "rejected file name" file f;
      check_bool "reason mentions corruption" true (contains ~sub:"corrupt" reason)
  | _ -> Alcotest.fail "expected exactly one reject"

let test_disk_truncation_rejected () =
  let dir = tmpdir () in
  let p, _ =
    let t = Disk.open_dir dir in
    admit_mis t
  in
  let file = List.hd (entry_files dir) in
  (* Simulate kill -9 mid-write (a partially written file). *)
  corrupt_file (entry_path dir file) (fun text ->
      String.sub text 0 (String.length text / 3));
  let t = Disk.open_dir dir in
  (match Disk.find_step t p with
  | None -> ()
  | Some _ -> Alcotest.fail "truncated entry was served");
  check_bool "truncation counted as corrupt" true
    ((Disk.stats t).Disk.rejected_corrupt >= 1)

(* Checksum-valid but semantically forged entries: recompute the
   checksum over a tampered body with an independent FNV-1a
   implementation, so the file is structurally perfect and rejection
   can only come from certificate re-validation. *)
let refresh_checksum text' =
  let body_end =
    (* The checksum line is the last line of the file. *)
    let rec last_line_start i =
      if i <= 0 then 0
      else if text'.[i - 1] = '\n' then i
      else last_line_start (i - 1)
    in
    last_line_start (String.length text' - 1)
  in
  let body = String.sub text' 0 body_end in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001b3L)
    body;
  Printf.sprintf "%schecksum %016Lx\n" body !h

let test_disk_forged_cert_rejected () =
  let dir = tmpdir () in
  let p, _ =
    let t = Disk.open_dir dir in
    admit_mis t
  in
  let file = List.hd (entry_files dir) in
  (* Corrupt the certificate payload (swap a label name inside it) and
     re-seal the checksum: framing passes, validation must not. *)
  corrupt_file (entry_path dir file) (fun text ->
      let b = Bytes.of_string text in
      let rec patch i patched =
        if i + 2 > Bytes.length b then patched
        else if Bytes.get b i = '^' && Bytes.get b (i + 1) = '3' then begin
          Bytes.set b (i + 1) '2';
          true
        end
        else patch (i + 1) patched
      in
      if not (patch 0 false) then Alcotest.fail "no patch point found";
      refresh_checksum (Bytes.to_string b));
  let t = Disk.open_dir dir in
  (match Disk.find_step t p with
  | None -> ()
  | Some _ -> Alcotest.fail "forged entry was served");
  let s = Disk.stats t in
  check_int "not a framing reject" 0 s.Disk.rejected_corrupt;
  check_bool "rejected by re-validation" true (s.Disk.rejected_invalid >= 1)

let test_disk_tmp_leftover_ignored () =
  let dir = tmpdir () in
  let t = Disk.open_dir dir in
  let p, expect = admit_mis t in
  (* A crash between open and rename leaves a .tmp file behind;
     readers must never consider it. *)
  let oc =
    open_out_bin
      (Filename.concat (Filename.concat dir "entries") ".tmp-999-step-0.ent")
  in
  output_string oc "roundelim-store v1\nkind step\nhalf-writ";
  close_out oc;
  let t2 = Disk.open_dir dir in
  (match Disk.find_step t2 p with
  | Some got -> check_string "real entry still served" expect got
  | None -> Alcotest.fail "real entry lost");
  let total, ok, _ = Disk.validate_all t2 in
  check_int "tmp file not an entry" 1 total;
  check_int "real entry valid" 1 ok

(* The 5-label engineered hash-collision pair from the relim suite:
   both problems land in the same store bucket, and each must be
   served its own result. *)
let collision_pair () =
  let mk name self_loop =
    let k = 5 in
    let names = List.init k (fun i -> Printf.sprintf "l%d" i) in
    let node =
      String.concat "\n"
        (List.mapi
           (fun i n ->
             Printf.sprintf "%s %s" n (List.nth names ((i + 1) mod k)))
           names)
    in
    let edge =
      String.concat "\n"
        (List.mapi
           (fun i n ->
             if self_loop && i = 0 then Printf.sprintf "%s %s" n n
             else Printf.sprintf "%s [%s]" n (String.concat " " names))
           names)
    in
    Parse.problem ~name ~node ~edge
  in
  (mk "collA" false, mk "collB" true)

let test_disk_hash_collision () =
  let a, b = collision_pair () in
  check_int "pair still collides" (Iso.invariant_hash a) (Iso.invariant_hash b);
  check_bool "pair still non-isomorphic" false (Iso.equal_up_to_renaming a b);
  let dir = tmpdir () in
  let t = Disk.open_dir dir in
  let cert_a = step_certificate a and cert_b = step_certificate b in
  (match Disk.add_step t ~source:a cert_a with
  | Ok () -> ()
  | Error m -> Alcotest.failf "admit a: %s" m);
  (match Disk.add_step t ~source:b cert_b with
  | Ok () -> ()
  | Error m -> Alcotest.failf "admit b: %s" m);
  check_int "two files share the bucket" 2 (List.length (entry_files dir));
  (* Cold handle: each colliding problem gets its own result. *)
  let t2 = Disk.open_dir dir in
  (match Disk.find_step t2 b with
  | Some got ->
      check_string "B served B's result" (Certificate.result_text cert_b) got
  | None -> Alcotest.fail "B missed");
  (match Disk.find_step t2 a with
  | Some got ->
      check_string "A served A's result" (Certificate.result_text cert_a) got
  | None -> Alcotest.fail "A missed");
  check_bool "in-bucket conflict observed" true
    ((Disk.stats t2).Disk.hash_conflicts >= 1)

let test_disk_admission_gate () =
  let dir = tmpdir () in
  let t = Disk.open_dir dir in
  let p = mis () in
  (* A forged certificate must be refused before anything is written. *)
  let forged =
    match step_certificate p with
    | Certificate.Step s ->
        Certificate.Step { s with Certificate.result = s.Certificate.source }
    | c -> c
  in
  (match Disk.add_step t ~source:p forged with
  | Ok () -> Alcotest.fail "admitted a forged certificate"
  | Error _ -> ());
  check_int "nothing written" 0 (List.length (entry_files dir));
  (* A valid certificate for a *different* problem must not be
     admissible under this key. *)
  let other = Parse.problem ~name:"other" ~node:"A^3" ~edge:"A^2" in
  (match Disk.add_step t ~source:other (step_certificate p) with
  | Ok () -> Alcotest.fail "admitted a certificate for another problem"
  | Error _ -> ());
  check_int "still nothing written" 0 (List.length (entry_files dir))

let test_disk_fixed_point_entries () =
  let so = Parse.problem ~name:"SO" ~node:"O [IO]^2" ~edge:"O I" in
  match Fixedpoint.detect so with
  | Fixedpoint.Reaches_fixed_point (steps, fixed) -> (
      let dir = tmpdir () in
      let t = Disk.open_dir dir in
      (match
         Disk.add_fixed_point t ~source:so ~steps
           (Certificate.of_fixed_point fixed)
       with
      | Ok () -> ()
      | Error m -> Alcotest.failf "fixed-point admission: %s" m);
      let t2 = Disk.open_dir dir in
      match Disk.find_fixed_point t2 so with
      | Some (steps', text) ->
          check_int "steps preserved" steps steps';
          check_string "fixed problem text preserved"
            (Serialize.to_string fixed) text
      | None -> Alcotest.fail "fixed-point entry missed")
  | _ -> Alcotest.fail "SO should reach a fixed point"

let () =
  Alcotest.run "store"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode;
          Alcotest.test_case "garbage rejected" `Quick test_json_garbage;
          Alcotest.test_case "numbers" `Quick test_json_numbers;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "decode" `Quick test_protocol_decode;
          Alcotest.test_case "decode errors" `Quick test_protocol_decode_errors;
          Alcotest.test_case "render" `Quick test_protocol_render;
        ] );
      ( "certificate",
        [
          Alcotest.test_case "roundtrip + validate" `Quick
            test_certificate_roundtrip;
          Alcotest.test_case "tamper rejected" `Quick test_certificate_tamper;
          Alcotest.test_case "fixed point" `Quick test_certificate_fixed_point;
        ] );
      ( "disk",
        [
          Alcotest.test_case "admit/find roundtrip" `Quick test_disk_roundtrip;
          Alcotest.test_case "warm reload byte-identical" `Quick
            test_disk_warm_reload;
          Alcotest.test_case "tamper rejected" `Quick test_disk_tamper_rejected;
          Alcotest.test_case "truncation rejected" `Quick
            test_disk_truncation_rejected;
          Alcotest.test_case "forged cert rejected" `Quick
            test_disk_forged_cert_rejected;
          Alcotest.test_case "tmp leftover ignored" `Quick
            test_disk_tmp_leftover_ignored;
          Alcotest.test_case "hash collision bucket" `Quick
            test_disk_hash_collision;
          Alcotest.test_case "admission gate" `Quick test_disk_admission_gate;
          Alcotest.test_case "fixed-point entries" `Quick
            test_disk_fixed_point_entries;
        ] );
    ]
