(* Wire-protocol tests against an in-process [roundelimd]: golden
   request/response transcripts, pipelining and concurrent-client
   interleaving, input hardening, and warm-restart byte-identity
   against the certificate-gated store. *)

module Daemon = Store.Daemon
module Client = Store.Client

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let counter = ref 0

let tmpdir () =
  incr counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "relim-daemon-test-%d-%d" (Unix.getpid ()) !counter)
  in
  (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

(* Spawn a daemon on a fresh Unix socket in its own domain; [stop] is
   polled between select rounds, so teardown takes at most one poll
   interval even if no shutdown request was sent. *)
let spawn_daemon ?max_line ?store_dir sock =
  let config =
    {
      Daemon.default_config with
      Daemon.listen = [ Daemon.Unix_socket sock ];
      store_dir;
      max_line =
        Option.value max_line ~default:Daemon.default_config.Daemon.max_line;
    }
  in
  let stop = Atomic.make false in
  let d = Domain.spawn (fun () -> Daemon.serve ~stop:(fun () -> Atomic.get stop) config) in
  (d, stop)

let with_daemon ?max_line ?store_dir f =
  let sock = Filename.concat (tmpdir ()) "d.sock" in
  let d, stop = spawn_daemon ?max_line ?store_dir sock in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join d)
    (fun () -> f sock)

let connect sock =
  match Client.connect ~retries:100 (`Unix sock) with
  | Ok c -> c
  | Error m -> Alcotest.failf "cannot connect: %s" m

let request c line =
  match Client.request c line with
  | Ok r -> r
  | Error m -> Alcotest.failf "request failed: %s" m

(* ------------------------------------------------------------------ *)
(* Golden transcripts                                                  *)
(* ------------------------------------------------------------------ *)

(* Every line below is pinned byte-for-byte: the response format is a
   wire contract, and accidental changes must fail loudly. *)
let golden_transcript =
  [
    ( {|{"id":1,"op":"ping"}|},
      {|{"id":1,"ok":true,"result":{"pong":true}}|} );
    ( {|this is not json|},
      {|{"id":null,"ok":false,"error":{"code":"parse-error","message":"not valid JSON: bad literal at offset 0"}}|}
    );
    ( {|{"id":5,"op":|},
      {|{"id":null,"ok":false,"error":{"code":"parse-error","message":"not valid JSON: unexpected end of input"}}|}
    );
    ( {|{"id":9,"op":"launch"}|},
      {|{"id":9,"ok":false,"error":{"code":"bad-request","message":"unknown op \"launch\""}}|}
    );
    ( {|{"id":2,"op":"step","problem":"not a problem"}|},
      {|{"id":2,"ok":false,"error":{"code":"bad-request","message":"problem text: Serialize.of_string: unexpected line not a problem"}}|}
    );
    ( {|{"id":3,"op":"step","problem":"problem t\ndelta 2\nnode:\nA A\nedge:\nA A\n"}|},
      {|{"id":3,"ok":true,"cached":false,"result":{"problem":"problem step(t)\ndelta 2\nnode:\nA^2\nedge:\nA^2\n","labels":1,"delta":2}}|}
    );
    ( {|{"id":"fp","op":"fixed-point","problem":"problem SO\ndelta 3\nnode:\nO [IO]^2\nedge:\nO I\n"}|},
      {|{"id":"fp","ok":true,"cached":false,"result":{"verdict":"reaches-fixed-point","steps":2,"fixed":"problem step(SO)\ndelta 3\nnode:\nO OI^2\nedge:\nOI^2\nO OI\n","lower_bound":"problem step(SO) is a non-trivial fixed point: Omega(log n) deterministic and Omega(log log n) randomized LOCAL lower bounds"}}|}
    );
  ]

let test_golden_transcript () =
  with_daemon @@ fun sock ->
  let c = connect sock in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  List.iteri
    (fun i (req, expect) ->
      check_string (Printf.sprintf "transcript line %d" i) expect (request c req))
    golden_transcript;
  (* Errors never kill the connection: the daemon is still serving. *)
  check_string "still alive after the error lines"
    {|{"id":99,"ok":true,"result":{"pong":true}}|}
    (request c {|{"id":99,"op":"ping"}|})

(* The stats payload is a wire contract too: pin its exact JSON shape,
   including the engine-wide ZDD counters sampled from [Zdd.stats].
   All global counters are reset before the daemon spawns, so the
   bytes are deterministic regardless of suite order. *)
let test_stats_transcript () =
  Relim.Fixedpoint.reset_stats ();
  Zdd.reset_stats ();
  Relim.Rounde.reset_stats ();
  with_daemon @@ fun sock ->
  let c = connect sock in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  check_string "stats shape, pinned bytes"
    ({|{"id":1,"ok":true,"result":{"requests":1,"served_ok":0,|}
   ^ {|"served_error":0,"fixedpoint_cache":{"hits":0,"misses":0,|}
   ^ {|"hash_conflicts":0},"zdd":{"nodes":0,"cache_hits":0,|}
   ^ {|"peak_unique":0,"maxbox_tuples":0,"maxbox_cubes":0,|}
   ^ {|"maxbox_maximal":0,"maxbox_enumerated":0},"store":null}}|})
    (request c {|{"id":1,"op":"stats"}|});
  (* A ZDD-path engine call moves the zdd counters; the explicit path
     (the daemon's default when RELIM_ZDD is unset) must not.  Under
     RELIM_ZDD=1 the whole suite runs on the compressed path, so only
     the shape — not the zero values — can be pinned then. *)
  let mis = {|{"id":2,"op":"step","problem":"problem MIS\ndelta 3\nnode:\nM^3\nP O^2\nedge:\nO^2\nM [PO]\n"}|} in
  let _ = request c mis in
  let stats = request c {|{"id":3,"op":"stats"}|} in
  if Relim.Parctl.zdd_from_env () then
    check_bool "zdd step moves the zdd counters" true
      (contains ~sub:{|"zdd":{"nodes":|} stats
      && not (contains ~sub:{|"zdd":{"nodes":0,|} stats))
  else
    check_bool "explicit step leaves zdd counters at zero" true
      (contains ~sub:{|"zdd":{"nodes":0,"cache_hits":0,"peak_unique":0,|} stats)

(* Regression: a budget overrun inside the engine used to surface as a
   generic engine-error Failure; it is now a structured "budget" error
   echoing the tripped budget's name and configured limit.  The
   request is the one speedup step past Pi(5,4,2) — its node
   constraint expansion overruns the default engine budget
   immediately. *)
let test_budget_error_transcript () =
  let budget_req =
    let pi = Core.Family.pi { Core.Family.delta = 5; a = 4; x = 2 } in
    let { Relim.Rounde.problem = s1; _ } = Relim.Rounde.step pi in
    let text = Relim.Serialize.to_string (Relim.Simplify.normalize s1) in
    let escaped = String.concat "\\n" (String.split_on_char '\n' text) in
    {|{"id":7,"op":"step","problem":"|} ^ escaped ^ {|"}|}
  in
  with_daemon @@ fun sock ->
  let c = connect sock in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  check_string "structured budget error, pinned bytes"
    {|{"id":7,"ok":false,"error":{"code":"budget","budget":"Rounde.rbar: node constraint expansion","limit":2000000,"message":"budget exceeded: Rounde.rbar: node constraint expansion (limit 2000000)"}}|}
    (request c budget_req);
  (* A budget error is an answer, not a connection failure. *)
  check_string "still serving after the budget error"
    {|{"id":8,"ok":true,"result":{"pong":true}}|}
    (request c {|{"id":8,"op":"ping"}|})

(* The compressed engines trip their own, distinctly named budgets;
   those surface over the wire as the same structured "budget" error.
   A monochromatic 21-color problem with an equality edge constraint
   has a cheap R image (21 singleton Galois pairs) whose R̄ faces the
   2^21 - 1 antichain: Δ·n = 63 bits is past the fully symbolic
   envelope, so the ZDD path streams the box DFS and overruns its
   work budget. *)
let test_zdd_budget_error_transcript () =
  let eqcol_21 =
    let names = List.init 21 (fun i -> Printf.sprintf "c%d" i) in
    let node =
      String.concat "\n"
        (List.map (fun c -> Printf.sprintf "%s %s %s" c c c) names)
    in
    let edge = String.concat "\n" (List.map (fun c -> c ^ " " ^ c) names) in
    Relim.Parse.problem ~name:"eqcol21" ~node ~edge
  in
  let req =
    let text = Relim.Serialize.to_string eqcol_21 in
    let escaped = String.concat "\\n" (String.split_on_char '\n' text) in
    {|{"id":21,"op":"step","problem":"|} ^ escaped ^ {|"}|}
  in
  let saved = Sys.getenv_opt Relim.Parctl.zdd_env_var in
  Unix.putenv Relim.Parctl.zdd_env_var "1";
  Fun.protect ~finally:(fun () ->
      Unix.putenv Relim.Parctl.zdd_env_var (Option.value saved ~default:""))
  @@ fun () ->
  with_daemon @@ fun sock ->
  let c = connect sock in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  check_string "zdd budget error, pinned bytes"
    {|{"id":21,"ok":false,"error":{"code":"budget","budget":"Rounde.rbar: box enumeration work (zdd)","limit":5000000,"message":"budget exceeded: Rounde.rbar: box enumeration work (zdd) (limit 5000000)"}}|}
    (request c req);
  check_string "still serving after the zdd budget error"
    {|{"id":22,"ok":true,"result":{"pong":true}}|}
    (request c {|{"id":22,"op":"ping"}|})

(* ------------------------------------------------------------------ *)
(* Autopilot                                                           *)
(* ------------------------------------------------------------------ *)

let ap_req =
  {|{"id":"ap","op":"autopilot","problem":"problem SO\ndelta 3\nnode:\nO [IO]^2\nedge:\nO I\n"}|}

let ap_expected =
  {|{"id":"ap","ok":true,"cached":false,"result":{"verdict":"fixed-point","steps":2,"candidates":2,"budget_skips":0,"certified":2,"period":1,"fixed":"problem Rbar(R(Rbar(R(SO))))\ndelta 3\nnode:\nO,OI OI,O,OI^2\nedge:\nOI,O,OI^2\nO,OI OI,O,OI\n","lower_bound":"problem SO admits a certified relaxed fixed point: Omega(log n) deterministic and Omega(log log n) randomized LOCAL lower bounds"}}|}

let test_autopilot_op () =
  with_daemon @@ fun sock ->
  let c = connect sock in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  check_string "sinkless orientation rediscovered, pinned bytes" ap_expected
    (request c ap_req);
  (* Same canonicalized problem again: served from the in-run memo. *)
  let again = request c ap_req in
  check_bool "repeat flagged cached" true
    (contains ~sub:{|"cached":true|} again);
  check_bool "repeat carries the same verdict" true
    (contains ~sub:{|"verdict":"fixed-point"|} again);
  (* max_steps is honored over the wire: one accepted step cannot
     close the SO cycle, so the search exhausts. *)
  let capped =
    request c
      {|{"id":"ap1","op":"autopilot","problem":"problem SO\ndelta 3\nnode:\nO [IO]^2\nedge:\nO I\n","max_steps":1}|}
  in
  check_bool "capped search exhausts" true
    (contains ~sub:{|"verdict":"exhausted"|} capped);
  check_bool "capped response reports the last state" true
    (contains ~sub:{|"last":"|} capped)

(* ------------------------------------------------------------------ *)
(* Pipelining and concurrent clients                                   *)
(* ------------------------------------------------------------------ *)

(* One connection, many requests in flight: responses must come back
   in request order with the ids echoed. *)
let test_pipelining () =
  with_daemon @@ fun sock ->
  let c = connect sock in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let n = 50 in
  for i = 0 to n - 1 do
    match Client.send_line c (Printf.sprintf {|{"id":%d,"op":"ping"}|} (100 + i)) with
    | Ok () -> ()
    | Error m -> Alcotest.failf "send %d: %s" i m
  done;
  for i = 0 to n - 1 do
    match Client.recv_line c with
    | Ok r ->
        check_string
          (Printf.sprintf "pipelined response %d in order" i)
          (Printf.sprintf {|{"id":%d,"ok":true,"result":{"pong":true}}|}
             (100 + i))
          r
    | Error m -> Alcotest.failf "recv %d: %s" i m
  done

(* Two simultaneous connections with interleaved sends: each gets its
   own responses, in its own order, regardless of arrival interleaving. *)
let test_concurrent_clients () =
  with_daemon @@ fun sock ->
  let c1 = connect sock in
  let c2 = connect sock in
  Fun.protect
    ~finally:(fun () ->
      Client.close c1;
      Client.close c2)
  @@ fun () ->
  let mis = {|problem MIS\ndelta 3\nnode:\nM^3\nP O^2\nedge:\nO^2\nM [PO]\n|} in
  (* c1 starts an expensive request, c2 slips a cheap one in before
     c1's answer is read — and reads its own answer first. *)
  (match Client.send_line c1 ({|{"id":"big","op":"step","problem":"|} ^ mis ^ {|"}|}) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "c1 send: %s" m);
  (match Client.send_line c2 {|{"id":"small","op":"ping"}|} with
  | Ok () -> ()
  | Error m -> Alcotest.failf "c2 send: %s" m);
  (match Client.recv_line c2 with
  | Ok r ->
      check_string "c2 gets its own response"
        {|{"id":"small","ok":true,"result":{"pong":true}}|} r
  | Error m -> Alcotest.failf "c2 recv: %s" m);
  (match Client.recv_line c1 with
  | Ok r ->
      check_bool "c1 gets its own id" true (contains ~sub:{|"id":"big"|} r);
      check_bool "c1 result is the MIS step" true
        (contains ~sub:{|step(MIS)|} r)
  | Error m -> Alcotest.failf "c1 recv: %s" m);
  (* Interleave again in the opposite order on the same connections. *)
  (match Client.request c2 {|{"id":"again","op":"ping"}|} with
  | Ok r ->
      check_string "c2 still serviced"
        {|{"id":"again","ok":true,"result":{"pong":true}}|} r
  | Error m -> Alcotest.failf "c2 second: %s" m)

(* ------------------------------------------------------------------ *)
(* Input hardening                                                     *)
(* ------------------------------------------------------------------ *)

let test_oversized_line () =
  with_daemon ~max_line:1024 @@ fun sock ->
  let c = connect sock in
  let huge =
    {|{"id":1,"op":"step","problem":"|} ^ String.make 2000 'x' ^ {|"}|}
  in
  (match Client.request c huge with
  | Ok r ->
      check_bool "oversized line answered with a structured error" true
        (contains ~sub:{|"ok":false|} r && contains ~sub:"parse-error" r)
  | Error m -> Alcotest.failf "oversized: %s" m);
  (* The connection is dropped afterwards — bounded buffering — but
     the daemon itself keeps serving new connections. *)
  (match Client.recv_line c with
  | Error _ -> ()
  | Ok r -> Alcotest.failf "connection survived oversize: %s" r);
  Client.close c;
  let c2 = connect sock in
  Fun.protect ~finally:(fun () -> Client.close c2) @@ fun () ->
  check_string "daemon still serving"
    {|{"id":2,"ok":true,"result":{"pong":true}}|}
    (request c2 {|{"id":2,"op":"ping"}|})

let test_abrupt_disconnect () =
  with_daemon @@ fun sock ->
  (* A client that sends half a line and vanishes must not disturb the
     loop. *)
  let c = connect sock in
  (match Client.send_line c {|{"id":1,"op":"pi|} with
  | Ok () -> ()
  | Error m -> Alcotest.failf "partial send: %s" m);
  Client.close c;
  let c2 = connect sock in
  Fun.protect ~finally:(fun () -> Client.close c2) @@ fun () ->
  check_string "daemon unaffected by abrupt disconnect"
    {|{"id":2,"ok":true,"result":{"pong":true}}|}
    (request c2 {|{"id":2,"op":"ping"}|})

(* ------------------------------------------------------------------ *)
(* Warm restart against the store                                      *)
(* ------------------------------------------------------------------ *)

let step_req =
  {|{"id":1,"op":"step","problem":"problem MIS\ndelta 3\nnode:\nM^3\nP O^2\nedge:\nO^2\nM [PO]\n"}|}

let fp_req =
  {|{"id":2,"op":"fixed-point","problem":"problem SO\ndelta 3\nnode:\nO [IO]^2\nedge:\nO I\n"}|}

let shutdown_req = {|{"id":0,"op":"shutdown"}|}

(* Run one daemon lifetime over [store_dir], play [reqs], return the
   responses.  The daemon exits through the shutdown request. *)
let daemon_round ~store_dir reqs =
  let sock = Filename.concat (tmpdir ()) "d.sock" in
  let d, _stop = spawn_daemon ~store_dir sock in
  let c = connect sock in
  let responses = List.map (request c) reqs in
  let bye = request c shutdown_req in
  check_string "clean shutdown" {|{"id":0,"ok":true,"result":{"stopping":true}}|}
    bye;
  Client.close c;
  Domain.join d;
  responses

let test_restart_byte_identity () =
  let store_dir = Filename.concat (tmpdir ()) "store" in
  let cold = daemon_round ~store_dir [ step_req; fp_req ] in
  let warm = daemon_round ~store_dir [ step_req; fp_req ] in
  List.iteri
    (fun i (c, w) ->
      check_bool (Printf.sprintf "cold %d computed fresh" i) true
        (contains ~sub:{|"cached":false|} c);
      check_bool (Printf.sprintf "warm %d served from the store" i) true
        (contains ~sub:{|"cached":true|} w);
      (* Modulo the cache flag, the warm response must be the cold
         response, byte for byte. *)
      let subst s =
        let sub = {|"cached":true|} and rep = {|"cached":false|} in
        let n = String.length sub in
        let rec find i =
          if i + n > String.length s then None
          else if String.sub s i n = sub then Some i
          else find (i + 1)
        in
        match find 0 with
        | Some i ->
            String.sub s 0 i ^ rep
            ^ String.sub s (i + n) (String.length s - i - n)
        | None -> s
      in
      check_string (Printf.sprintf "warm %d byte-identical to cold" i) c
        (subst w))
    (List.combine cold warm)

let test_restart_survives_corruption () =
  let base = tmpdir () in
  let store_dir = Filename.concat base "store" in
  let cold = daemon_round ~store_dir [ step_req ] in
  check_bool "cold computed" true
    (contains ~sub:{|"cached":false|} (List.hd cold));
  (* Simulate kill -9 damage: truncate the step entry on disk. *)
  let entries = Filename.concat store_dir "entries" in
  let step_files =
    Sys.readdir entries |> Array.to_list
    |> List.filter (fun f -> String.starts_with ~prefix:"step-" f)
  in
  check_int "one step entry persisted" 1 (List.length step_files);
  let victim = Filename.concat entries (List.hd step_files) in
  let ic = open_in_bin victim in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin victim in
  output_string oc (String.sub text 0 (String.length text / 2));
  close_out oc;
  (* The damaged entry is rejected, the request recomputed — same
     bytes as the cold run, and the daemon reports the rejection. *)
  let sock = Filename.concat base "d.sock" in
  let d, _stop = spawn_daemon ~store_dir sock in
  let c = connect sock in
  let r = request c step_req in
  check_bool "recomputed, not served from damage" true
    (contains ~sub:{|"cached":false|} r);
  check_string "recomputation byte-identical to cold" (List.hd cold) r;
  let stats = request c {|{"id":9,"op":"stats"}|} in
  check_bool "rejection surfaced in stats" true
    (contains ~sub:{|"rejected_corrupt":1|} stats);
  ignore (request c shutdown_req);
  Client.close c;
  Domain.join d

(* Cold/warm against the store: the period-1 cycle certificate is
   admitted on the cold run, keyed by the cycle state itself (that is
   the problem the certificate proves something about).  A fresh
   daemon serves a request for the cycle state straight from the store
   (re-validating the certificate plus the cycle and hardness
   conditions on load); a request for the original problem repeats the
   search, since the stored entry only witnesses the cycle. *)
let ap_fixed_req =
  {|{"id":"apf","op":"autopilot","problem":"problem Rbar(R(Rbar(R(SO))))\ndelta 3\nnode:\nO,OI OI,O,OI^2\nedge:\nOI,O,OI^2\nO,OI OI,O,OI\n"}|}

let test_autopilot_store_roundtrip () =
  let store_dir = Filename.concat (tmpdir ()) "store" in
  let cold = daemon_round ~store_dir [ ap_req ] in
  check_string "cold run computes and pins the search result" ap_expected
    (List.hd cold);
  let warm = daemon_round ~store_dir [ ap_fixed_req; ap_req ] in
  let on_cycle = List.nth warm 0 and on_request = List.nth warm 1 in
  check_bool "cycle state served from the store" true
    (contains ~sub:{|"cached":true|} on_cycle);
  check_bool "stored verdict is the fixed point" true
    (contains ~sub:{|"verdict":"fixed-point"|} on_cycle);
  check_bool "no search behind the store hit" true
    (contains ~sub:{|"steps":1|} on_cycle);
  check_bool "original request searches again" true
    (contains ~sub:{|"cached":false|} on_request)

(* Within one lifetime, a repeated request is served from memory and
   flagged cached. *)
let test_within_run_dedup () =
  with_daemon @@ fun sock ->
  let c = connect sock in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let first = request c step_req in
  let second = request c step_req in
  check_bool "first computed" true (contains ~sub:{|"cached":false|} first);
  check_bool "repeat flagged cached" true
    (contains ~sub:{|"cached":true|} second)

let () =
  Alcotest.run "daemon"
    [
      ( "wire",
        [
          Alcotest.test_case "golden transcript" `Quick test_golden_transcript;
          Alcotest.test_case "stats transcript" `Quick test_stats_transcript;
          Alcotest.test_case "budget error transcript" `Quick
            test_budget_error_transcript;
          Alcotest.test_case "zdd budget error transcript" `Quick
            test_zdd_budget_error_transcript;
          Alcotest.test_case "pipelining order" `Quick test_pipelining;
          Alcotest.test_case "concurrent clients" `Quick
            test_concurrent_clients;
        ] );
      ( "autopilot",
        [
          Alcotest.test_case "op + memo + max_steps" `Quick test_autopilot_op;
          Alcotest.test_case "store round-trip" `Quick
            test_autopilot_store_roundtrip;
        ] );
      ( "hardening",
        [
          Alcotest.test_case "oversized line" `Quick test_oversized_line;
          Alcotest.test_case "abrupt disconnect" `Quick test_abrupt_disconnect;
        ] );
      ( "store",
        [
          Alcotest.test_case "restart byte-identity" `Quick
            test_restart_byte_identity;
          Alcotest.test_case "restart survives corruption" `Quick
            test_restart_survives_corruption;
          Alcotest.test_case "within-run dedup" `Quick test_within_run_dedup;
        ] );
    ]
