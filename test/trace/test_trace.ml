(* Unit tests for lib/trace: the disabled path is a no-op, both sinks
   emit well-formed output, spans survive exceptions, and per-domain
   events from pool workers are merged deterministically. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let with_temp_trace ?(format = Trace.Jsonl) f =
  let path = Filename.temp_file "trace_test" ".out" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Trace.enable ~path ~format;
      Fun.protect ~finally:Trace.close (fun () -> f ());
      Trace.close ();
      read_file path)

(* Crude field scraping, enough for structural assertions without a
   JSON parser (bench/validate_trace.ml does the full check). *)
let count_substring sub s =
  let n = String.length s and m = String.length sub in
  let rec go i acc =
    if i + m > n then acc
    else if String.sub s i m = sub then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_disabled_noop () =
  check_bool "disabled by default" false (Trace.enabled ());
  (* with_span is transparent when disabled. *)
  check_int "with_span passes the value through" 41
    (Trace.with_span "x" (fun () -> 41));
  (match Trace.with_span "x" (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "exception swallowed"
  | exception Failure _ -> ());
  Trace.instant "nothing";
  Trace.counters [ ("a", 1) ];
  (* Counters do not accumulate while disabled. *)
  let c = Trace.Counter.make "idle" in
  Trace.Counter.incr c;
  Trace.Counter.add c 5;
  check_int "counter frozen while disabled" 0 (Trace.Counter.value c)

let test_enable_disable_cycle () =
  let out =
    with_temp_trace (fun () ->
        check_bool "enabled" true (Trace.enabled ());
        Trace.with_span "outer" (fun () -> Trace.instant "tick"))
  in
  check_bool "disabled after close" false (Trace.enabled ());
  check_bool "output written" true (String.length out > 0);
  (* A second sink works after the first closed. *)
  let out2 = with_temp_trace (fun () -> Trace.instant "again") in
  check_bool "re-enabled sink writes" true
    (count_substring "\"again\"" out2 = 1)

let test_jsonl_structure () =
  let out =
    with_temp_trace (fun () ->
        Trace.with_span "outer"
          ~attrs:[ ("k", "v\"quoted\"") ]
          (fun () ->
            Trace.with_span "inner" (fun () -> Trace.instant "tick");
            Trace.counters [ ("calls", 1) ];
            Trace.counters [ ("calls", 2) ]))
  in
  let ls = String.split_on_char '\n' out |> List.filter (fun l -> l <> "") in
  (* outer b, inner b, tick i, inner e, two counter samples, outer e *)
  check_int "7 events" 7 (List.length ls);
  List.iter
    (fun l ->
      check_bool "line is an object" true
        (String.length l > 1 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    ls;
  check_int "2 begins" 2 (count_substring "\"ev\":\"b\"" out);
  check_int "2 ends" 2 (count_substring "\"ev\":\"e\"" out);
  check_int "1 instant" 1 (count_substring "\"ev\":\"i\"" out);
  check_int "2 counter samples" 2 (count_substring "\"ev\":\"c\"" out);
  check_int "attr string escaped" 1
    (count_substring "\"k\":\"v\\\"quoted\\\"\"" out);
  (* Timestamps are monotone within the (single) domain. *)
  let ts_of l =
    Scanf.sscanf
      (String.sub l (String.length "{\"ev\":\"x\",\"dom\":0,\"ts\":")
         (String.length l - String.length "{\"ev\":\"x\",\"dom\":0,\"ts\":"))
      "%d" Fun.id
  in
  let tss = List.map ts_of ls in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  check_bool "monotone timestamps" true (monotone tss)

let test_span_closed_on_exception () =
  let out =
    with_temp_trace (fun () ->
        match Trace.with_span "failing" (fun () -> failwith "boom") with
        | () -> Alcotest.fail "exception swallowed"
        | exception Failure _ -> ())
  in
  check_int "span opened" 1 (count_substring "\"ev\":\"b\"" out);
  check_int "span closed despite the exception" 1
    (count_substring "\"ev\":\"e\"" out)

let test_chrome_structure () =
  let out =
    with_temp_trace ~format:Trace.Chrome (fun () ->
        Trace.with_span "outer" (fun () ->
            Trace.instant "tick";
            Trace.counters [ ("calls", 3) ]))
  in
  check_bool "traceEvents wrapper" true
    (count_substring "{\"traceEvents\":[" out = 1);
  check_bool "displayTimeUnit trailer" true
    (count_substring "\"displayTimeUnit\":\"ms\"" out = 1);
  check_int "begin phase" 1 (count_substring "\"ph\":\"B\"" out);
  check_int "end phase" 1 (count_substring "\"ph\":\"E\"" out);
  check_int "instant phase" 1 (count_substring "\"ph\":\"i\"" out);
  check_int "counter phase" 1 (count_substring "\"ph\":\"C\"" out)

let test_counter_accumulates_when_enabled () =
  let c = Trace.Counter.make "work" in
  let out =
    with_temp_trace (fun () ->
        Trace.Counter.incr c;
        Trace.Counter.add c 4;
        Trace.Counter.sample c)
  in
  check_int "accumulated" 5 (Trace.Counter.value c);
  check_int "sampled once" 1 (count_substring "\"work\":5" out)

let test_multi_domain_merge () =
  let domains = max 2 (min 4 (Domain.recommended_domain_count ())) in
  let pool = Parallel.Pool.create ~domains in
  let out =
    with_temp_trace (fun () ->
        Parallel.Pool.run ~chunk:1 pool ~n:64
          ~init:(fun () -> ())
          ~body:(fun () i -> if i mod 8 = 0 then Trace.instant "probe")
          ~merge:ignore)
  in
  Parallel.Pool.shutdown pool;
  (* One pool.run span on the caller, one pool.worker span per
     participating domain, and every probe event recorded. *)
  check_int "one pool.run span (begin + end)" 2
    (count_substring "\"pool.run\"" out);
  check_int "8 probes" 8 (count_substring "\"probe\"" out);
  let worker_spans = count_substring "\"pool.worker\"" out in
  check_bool "worker spans recorded" true (worker_spans >= 2);
  (* Events are grouped by domain, domains in increasing order. *)
  let doms =
    List.filter_map
      (fun l ->
        match count_substring "\"dom\":" l with
        | 0 -> None
        | _ ->
            Scanf.sscanf
              (String.sub l
                 (String.length "{\"ev\":\"x\",\"dom\":")
                 (String.length l - String.length "{\"ev\":\"x\",\"dom\":"))
              "%d" Option.some)
      (String.split_on_char '\n' out |> List.filter (fun l -> l <> ""))
  in
  let sorted = List.sort compare doms in
  check_bool "per-domain blocks in increasing domain order" true
    (doms = sorted)

let test_setup_from_env () =
  (* Unset / empty: disabled. *)
  Unix.putenv Trace.env_var "";
  Trace.setup_from_env ();
  check_bool "empty env leaves tracing off" false (Trace.enabled ());
  let path = Filename.temp_file "trace_env" ".jsonl" in
  Unix.putenv Trace.env_var path;
  Unix.putenv Trace.format_env_var "jsonl";
  Trace.setup_from_env ();
  check_bool "env enables tracing" true (Trace.enabled ());
  Trace.instant "env";
  Trace.close ();
  check_int "event written" 1 (count_substring "\"env\"" (read_file path));
  (* "%p" in the path is replaced with the pid, so concurrent processes
     sharing one RELIM_TRACE setting get distinct files. *)
  let dir = Filename.temp_file "trace_env_pid" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Unix.putenv Trace.env_var (Filename.concat dir "t.%p.jsonl");
  Trace.setup_from_env ();
  check_bool "%%p env enables tracing" true (Trace.enabled ());
  Trace.instant "pid";
  Trace.close ();
  let expanded =
    Filename.concat dir
      (Printf.sprintf "t.%d.jsonl" (Unix.getpid ()))
  in
  check_bool "%%p expanded to the pid" true (Sys.file_exists expanded);
  check_int "event written to pid file" 1
    (count_substring "\"pid\"" (read_file expanded));
  Sys.remove expanded;
  Unix.rmdir dir;
  Unix.putenv Trace.env_var "";
  Sys.remove path

let () =
  Alcotest.run "trace"
    [
      ( "trace",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
          Alcotest.test_case "enable/close cycle" `Quick
            test_enable_disable_cycle;
          Alcotest.test_case "jsonl structure" `Quick test_jsonl_structure;
          Alcotest.test_case "span closed on exception" `Quick
            test_span_closed_on_exception;
          Alcotest.test_case "chrome structure" `Quick test_chrome_structure;
          Alcotest.test_case "counter accumulation" `Quick
            test_counter_accumulates_when_enabled;
          Alcotest.test_case "multi-domain merge" `Quick
            test_multi_domain_merge;
          Alcotest.test_case "setup from env" `Quick test_setup_from_env;
        ] );
    ]
