(* Tests for the graph substrate. *)

open Dsgraph

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Graph                                                               *)
(* ------------------------------------------------------------------ *)

let triangle_plus_tail () =
  Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 0); (2, 3) ]

let test_graph_basics () =
  let g = triangle_plus_tail () in
  check_int "n" 4 (Graph.n g);
  check_int "m" 4 (Graph.m g);
  check_int "deg 2" 3 (Graph.degree g 2);
  check_int "deg 3" 1 (Graph.degree g 3);
  check_int "max degree" 3 (Graph.max_degree g);
  check_bool "connected" true (Graph.is_connected g);
  check_bool "not a tree" false (Graph.is_tree g)

let test_graph_ports_consistent () =
  let g = triangle_plus_tail () in
  for v = 0 to Graph.n g - 1 do
    for p = 0 to Graph.degree g v - 1 do
      let u = Graph.neighbor g v p in
      let back = Graph.back_port g v p in
      check_int "back port round-trip" v (Graph.neighbor g u back);
      check_int "same edge" (Graph.edge_id g v p) (Graph.edge_id g u back)
    done
  done

let test_graph_errors () =
  Alcotest.check_raises "self-loop" (Invalid_argument "Graph.of_edges: self-loop")
    (fun () -> ignore (Graph.of_edges ~n:2 [ (0, 0) ]));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Graph.of_edges: duplicate edge") (fun () ->
      ignore (Graph.of_edges ~n:2 [ (0, 1); (1, 0) ]));
  Alcotest.check_raises "range"
    (Invalid_argument "Graph.of_edges: endpoint out of range") (fun () ->
      ignore (Graph.of_edges ~n:2 [ (0, 5) ]))

let test_bfs () =
  let g = Tree_gen.path 5 in
  let dist = Graph.bfs g 0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 4 |] dist;
  check_int "eccentricity" 4 (Graph.eccentricity g 0);
  check_int "diameter" 4 (Graph.diameter g);
  let dist2, parent = Graph.bfs_parents g 2 in
  check_int "dist2" 2 dist2.(4);
  check_int "parent of 4" 3 parent.(4);
  check_int "root parent" 2 parent.(2)

let test_disconnected () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  check_bool "not connected" false (Graph.is_connected g);
  check_bool "not a tree" false (Graph.is_tree g);
  check_int "unreachable" (-1) (Graph.bfs g 0).(2)

let test_permute_ports () =
  let g = Tree_gen.star 4 in
  let perms = [| [| 2; 0; 1 |]; [| 0 |]; [| 0 |]; [| 0 |] |] in
  let g' = Graph.permute_ports g perms in
  (* old port 0 -> new port 2: center's new port 2 leads to node 1. *)
  check_int "moved neighbor" 1 (Graph.neighbor g' 0 2);
  check_int "edges unchanged" (Graph.m g) (Graph.m g');
  (* Consistency still holds. *)
  for p = 0 to 2 do
    let u = Graph.neighbor g' 0 p in
    check_int "round-trip" 0 (Graph.neighbor g' u (Graph.back_port g' 0 p))
  done

(* ------------------------------------------------------------------ *)
(* Tree generators                                                     *)
(* ------------------------------------------------------------------ *)

let test_balanced () =
  let g = Tree_gen.balanced ~delta:3 ~depth:2 in
  (* root(1) + 3 + 3*2 = 10 nodes *)
  check_int "size" 10 (Graph.n g);
  check_bool "tree" true (Graph.is_tree g);
  check_int "root degree" 3 (Graph.degree g 0);
  check_int "max degree" 3 (Graph.max_degree g);
  (* Internal nodes all have degree exactly 3. *)
  for v = 0 to Graph.n g - 1 do
    let d = Graph.degree g v in
    check_bool "degree 3 or leaf" true (d = 3 || d = 1)
  done

let test_balanced_depth0 () =
  let g = Tree_gen.balanced ~delta:4 ~depth:0 in
  check_int "single node" 1 (Graph.n g)

let test_caterpillar () =
  let g = Tree_gen.caterpillar ~spine:4 ~legs:2 in
  check_int "size" 12 (Graph.n g);
  check_bool "tree" true (Graph.is_tree g);
  check_int "spine-interior degree" 4 (Graph.degree g 1)

let test_star_path () =
  check_int "star center" 9 (Graph.degree (Tree_gen.star 10) 0);
  check_bool "path is tree" true (Graph.is_tree (Tree_gen.path 10))

let tree_qcheck =
  let gen = QCheck.(pair (int_range 2 200) (int_range 2 8)) in
  [
    QCheck.Test.make ~name:"random-tree-is-tree" ~count:50 gen
      (fun (n, max_degree) ->
        let g = Tree_gen.random ~n ~max_degree ~seed:(n + max_degree) in
        Graph.is_tree g && Graph.max_degree g <= max_degree);
    QCheck.Test.make ~name:"shuffle-ports-preserves-structure" ~count:30 gen
      (fun (n, max_degree) ->
        let g = Tree_gen.random ~n ~max_degree ~seed:n in
        let g' = Tree_gen.shuffle_ports g ~seed:(n * 7) in
        Graph.is_tree g'
        && List.sort compare (List.map (fun (u, v) -> (min u v, max u v)) (Graph.edges g'))
           = List.sort compare (List.map (fun (u, v) -> (min u v, max u v)) (Graph.edges g)));
  ]

(* ------------------------------------------------------------------ *)
(* Edge coloring                                                       *)
(* ------------------------------------------------------------------ *)

let test_color_balanced () =
  let g = Tree_gen.balanced ~delta:4 ~depth:3 in
  let colors = Edge_coloring.color_tree g in
  check_bool "proper with Delta colors" true
    (Edge_coloring.is_proper ~bound:4 g colors)

let test_color_rejects_non_tree () =
  Alcotest.check_raises "non-tree"
    (Invalid_argument "Edge_coloring.color_tree: not a tree") (fun () ->
      ignore (Edge_coloring.color_tree (triangle_plus_tail ())))

let test_is_proper_negative () =
  let g = Tree_gen.path 3 in
  check_bool "clashing colors rejected" false
    (Edge_coloring.is_proper g [| 0; 0 |]);
  check_bool "short array rejected" false (Edge_coloring.is_proper g [| 0 |]);
  check_bool "out of bound" false (Edge_coloring.is_proper ~bound:1 g [| 0; 1 |])

let test_greedy_coloring () =
  let g = triangle_plus_tail () in
  let colors = Edge_coloring.greedy g in
  check_bool "proper" true (Edge_coloring.is_proper g colors);
  check_bool "within 2*Delta - 1" true
    (Array.for_all (fun c -> c < (2 * Graph.max_degree g) - 1) colors)

let test_mirrored_ports () =
  (* A path with 2 edges colored 0/1: the middle node can mirror, the
     endpoints need their single edge colored 0. *)
  let g = Tree_gen.path 3 in
  let good = [| 0; 0 |] in
  (* Not proper; mirrored_ports should reject at the middle node
     because both its edges have port 0. *)
  check_bool "improper rejected" true (Edge_coloring.mirrored_ports g good = None);
  let proper = [| 0; 1 |] in
  (* Node 2's only edge has color 1 >= degree 1: rejected. *)
  check_bool "leaf color out of range" true
    (Edge_coloring.mirrored_ports g proper = None);
  (* A single edge colored 0 works. *)
  let g2 = Tree_gen.path 2 in
  match Edge_coloring.mirrored_ports g2 [| 0 |] with
  | Some g2' -> check_int "mirrored" 1 (Graph.neighbor g2' 0 0)
  | None -> Alcotest.fail "expected mirrored ports"

let coloring_qcheck =
  [
    QCheck.Test.make ~name:"tree-coloring-always-proper" ~count:50
      QCheck.(pair (int_range 2 300) (int_range 2 9))
      (fun (n, max_degree) ->
        let g = Tree_gen.random ~n ~max_degree ~seed:(n * 13) in
        let colors = Edge_coloring.color_tree g in
        Edge_coloring.is_proper ~bound:(Graph.max_degree g) g colors);
  ]

(* ------------------------------------------------------------------ *)
(* Orientation                                                         *)
(* ------------------------------------------------------------------ *)

let test_towards_root () =
  let g = Tree_gen.balanced ~delta:3 ~depth:2 in
  let o = Orientation.towards_root g in
  check_int "root outdegree" 0 (Orientation.outdegree o 0);
  check_int "max outdegree" 1 (Orientation.max_outdegree o);
  for v = 1 to Graph.n g - 1 do
    check_int "non-root outdegree" 1 (Orientation.outdegree o v)
  done

let test_restrict () =
  let g = Tree_gen.path 4 in
  let o = Orientation.towards_root g in
  let o' = Orientation.restrict o (fun v -> v <= 1) in
  check_bool "kept edge" true (Orientation.oriented o' 0);
  check_bool "dropped edge" false (Orientation.oriented o' 2)

let test_orientation_errors () =
  let g = Tree_gen.path 3 in
  Alcotest.check_raises "bad head"
    (Invalid_argument "Orientation.make: head is not an endpoint") (fun () ->
      ignore (Orientation.make g [| 2; 0 |]))

(* ------------------------------------------------------------------ *)
(* Check (verifiers)                                                   *)
(* ------------------------------------------------------------------ *)

let test_check_mis () =
  let g = Tree_gen.path 4 in
  check_bool "alternating is MIS" true
    (Check.is_mis g [| true; false; true; false |]);
  check_bool "endpoints only is also an MIS" true
    (Check.is_mis g [| true; false; false; true |]);
  check_bool "single endpoint is not (2,3 undominated)" false
    (Check.is_mis g [| true; false; false; false |]);
  check_bool "adjacent selected" false
    (Check.is_mis g [| true; true; false; true |]);
  check_bool "independent but not maximal" false
    (Check.is_independent_set g [| true; true; false; false |]);
  check_bool "empty not dominating" false
    (Check.is_dominating_set g [| false; false; false; false |])

let test_check_kods () =
  let g = Tree_gen.star 5 in
  (* All nodes selected, edges oriented toward the center: center
     outdegree 0, leaves outdegree 1. *)
  let sel = Array.make 5 true in
  let o = Orientation.make g [| 0; 0; 0; 0 |] in
  check_bool "1-outdegree DS" true
    (Check.is_k_outdegree_dominating_set g ~k:1 sel o);
  check_bool "not 0-outdegree" false
    (Check.is_k_outdegree_dominating_set g ~k:0 sel o);
  (* Orientation away from center: center outdegree 4. *)
  let o2 = Orientation.make g [| 1; 2; 3; 4 |] in
  check_bool "4 needed" true (Check.is_k_outdegree_dominating_set g ~k:4 sel o2);
  check_bool "3 too small" false
    (Check.is_k_outdegree_dominating_set g ~k:3 sel o2);
  (* Unoriented induced edge must be rejected. *)
  let o3 = Orientation.make g [| 0; 0; 0; -1 |] in
  check_bool "unoriented rejected" false
    (Check.is_k_outdegree_dominating_set g ~k:4 sel o3)

let test_check_k_degree () =
  let g = Tree_gen.star 4 in
  let all = Array.make 4 true in
  check_bool "3-degree DS" true (Check.is_k_degree_dominating_set g ~k:3 all);
  check_bool "not 2-degree" false (Check.is_k_degree_dominating_set g ~k:2 all);
  check_bool "center alone is MIS" true
    (Check.is_k_degree_dominating_set g ~k:0 [| true; false; false; false |])

let test_check_colorings () =
  let g = Tree_gen.path 4 in
  check_bool "proper" true (Check.is_proper_coloring g [| 0; 1; 0; 1 |]);
  check_bool "improper" false (Check.is_proper_coloring g [| 0; 0; 1; 0 |]);
  check_bool "bound" false
    (Check.is_proper_coloring ~bound:2 g [| 0; 1; 2; 1 |]);
  check_bool "1-defective all same" false
    (Check.is_defective_coloring g ~k:1 [| 0; 0; 0; 0 |]);
  check_bool "middle pair ok for k=1" true
    (Check.is_defective_coloring g ~k:1 [| 0; 1; 1; 0 |])

let test_check_matching () =
  let g = Tree_gen.path 4 in
  (* Edges: 0-1, 1-2, 2-3. *)
  check_bool "maximal" true (Check.is_maximal_matching g [| true; false; true |]);
  check_bool "middle only is maximal" true
    (Check.is_maximal_matching g [| false; true; false |]);
  check_bool "not a matching" false
    (Check.is_maximal_matching g [| true; true; false |]);
  check_bool "not maximal" false
    (Check.is_maximal_matching g [| true; false; false |]);
  check_bool "2-matching" true (Check.is_b_matching g ~b:2 [| true; true; false |])

(* ------------------------------------------------------------------ *)
(* Line graph                                                          *)
(* ------------------------------------------------------------------ *)

let test_line_graph_path () =
  (* line(P_n) = P_{n-1} *)
  let lg = Line_graph.of_graph (Tree_gen.path 5) in
  check_int "nodes = edges" 4 (Graph.n lg);
  check_int "edges" 3 (Graph.m lg);
  check_bool "still a path (tree)" true (Graph.is_tree lg)

let test_line_graph_star () =
  (* line(K_{1,n}) = K_n *)
  let lg = Line_graph.of_graph (Tree_gen.star 5) in
  check_int "nodes" 4 (Graph.n lg);
  check_int "complete" (4 * 3 / 2) (Graph.m lg)

let test_line_graph_triangle () =
  let g = Graph.of_edges ~n:3 [ (0, 1); (1, 2); (2, 0) ] in
  let lg = Line_graph.of_graph g in
  check_int "triangle again" 3 (Graph.m lg)

let test_line_graph_degree_bound () =
  let g = Tree_gen.caterpillar ~spine:5 ~legs:2 in
  let lg = Line_graph.of_graph g in
  check_bool "bound respected" true
    (Graph.max_degree lg <= Line_graph.max_degree_bound g);
  check_int "bound exact here" (Graph.max_degree lg)
    (Line_graph.max_degree_bound g)

let test_graph_dot () =
  let g = Tree_gen.path 3 in
  let dot =
    Graph.to_dot ~edge_colors:[| 0; 1 |] ~highlight:(fun v -> v = 1) g
  in
  let contains needle =
    let len = String.length needle in
    let rec scan i =
      i + len <= String.length dot
      && (String.sub dot i len = needle || scan (i + 1))
    in
    scan 0
  in
  check_bool "edge present" true (contains "0 -- 1");
  check_bool "color label" true (contains "label=\"1\"");
  check_bool "highlight" true (contains "fillcolor")

let test_pruefer () =
  (* 125 labeled trees on 5 nodes, all valid and pairwise distinct. *)
  let canon g =
    List.sort compare
      (List.map (fun (u, v) -> (min u v, max u v)) (Graph.edges g))
  in
  let seen = Hashtbl.create 200 in
  let count = ref 0 in
  Tree_gen.all_trees 5 (fun g ->
      incr count;
      check_bool "is tree" true (Graph.is_tree g);
      let c = canon g in
      check_bool "distinct" false (Hashtbl.mem seen c);
      Hashtbl.add seen c ());
  check_int "5^3 trees" 125 !count;
  (* A constant sequence decodes to a star. *)
  let star = Tree_gen.of_pruefer [| 3; 3; 3; 3 |] in
  check_int "star center" 5 (Graph.degree star 3)

let test_all_trees_coloring () =
  (* Every 6-node tree admits a proper max-degree edge coloring. *)
  Tree_gen.all_trees 6 (fun g ->
      let colors = Edge_coloring.color_tree g in
      check_bool "proper" true
        (Edge_coloring.is_proper ~bound:(Graph.max_degree g) g colors))

let test_girth () =
  check_bool "trees have no cycles" true (Graph.girth (Tree_gen.path 5) = None);
  let cycle n =
    Graph.of_edges ~n (List.init n (fun i -> (i, (i + 1) mod n)))
  in
  check_bool "C5" true (Graph.girth (cycle 5) = Some 5);
  check_bool "C8" true (Graph.girth (cycle 8) = Some 8);
  check_bool "triangle+tail" true (Graph.girth (triangle_plus_tail ()) = Some 3)

let test_regular_bipartite () =
  List.iter
    (fun (delta, half) ->
      let g, colors = Tree_gen.regular_bipartite ~delta ~half ~seed:5 in
      check_int "node count" (2 * half) (Graph.n g);
      for v = 0 to Graph.n g - 1 do
        check_int "regular" delta (Graph.degree g v)
      done;
      check_bool "proper coloring" true
        (Edge_coloring.is_proper ~bound:delta g colors);
      check_bool "bipartite (even girth)" true
        (match Graph.girth g with None -> true | Some girth -> girth mod 2 = 0);
      (* Matching-index colors allow mirrored ports at every node. *)
      check_bool "mirrorable" true (Edge_coloring.mirrored_ports g colors <> None))
    [ (2, 6); (3, 8); (4, 10) ]

(* ------------------------------------------------------------------ *)
(* Graph powers                                                        *)
(* ------------------------------------------------------------------ *)

let test_power_path () =
  let g = Tree_gen.path 5 in
  let g2 = Power.power g ~r:2 in
  (* P5^2: edges {i,i+1} and {i,i+2}: 4 + 3 = 7. *)
  check_int "edge count" 7 (Graph.m g2);
  let g4 = Power.power g ~r:4 in
  check_int "full power is complete" (5 * 4 / 2) (Graph.m g4)

let test_power_r1_identity () =
  let g = Tree_gen.random ~n:60 ~max_degree:5 ~seed:61 in
  let g1 = Power.power g ~r:1 in
  check_int "same edges" (Graph.m g) (Graph.m g1)

let test_all_distances () =
  let g = Tree_gen.path 4 in
  let d = Power.all_distances g in
  check_int "d(0,3)" 3 d.(0).(3);
  check_int "d(2,2)" 0 d.(2).(2);
  check_int "symmetric" d.(1).(3) d.(3).(1)

let () =
  let qsuite name tests =
    (name, List.map (Qseed.to_alcotest) tests)
  in
  Alcotest.run "dsgraph"
    [
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "ports" `Quick test_graph_ports_consistent;
          Alcotest.test_case "errors" `Quick test_graph_errors;
          Alcotest.test_case "bfs" `Quick test_bfs;
          Alcotest.test_case "disconnected" `Quick test_disconnected;
          Alcotest.test_case "permute-ports" `Quick test_permute_ports;
          Alcotest.test_case "dot export" `Quick test_graph_dot;
        ] );
      ( "tree-gen",
        [
          Alcotest.test_case "balanced" `Quick test_balanced;
          Alcotest.test_case "balanced-depth0" `Quick test_balanced_depth0;
          Alcotest.test_case "caterpillar" `Quick test_caterpillar;
          Alcotest.test_case "star-path" `Quick test_star_path;
        ] );
      qsuite "tree-gen-props" tree_qcheck;
      ( "edge-coloring",
        [
          Alcotest.test_case "balanced" `Quick test_color_balanced;
          Alcotest.test_case "non-tree" `Quick test_color_rejects_non_tree;
          Alcotest.test_case "is-proper-negative" `Quick test_is_proper_negative;
          Alcotest.test_case "greedy" `Quick test_greedy_coloring;
          Alcotest.test_case "mirrored-ports" `Quick test_mirrored_ports;
        ] );
      qsuite "edge-coloring-props" coloring_qcheck;
      ( "orientation",
        [
          Alcotest.test_case "towards-root" `Quick test_towards_root;
          Alcotest.test_case "restrict" `Quick test_restrict;
          Alcotest.test_case "errors" `Quick test_orientation_errors;
        ] );
      ( "girth-regular",
        [
          Alcotest.test_case "girth" `Quick test_girth;
          Alcotest.test_case "regular bipartite" `Quick test_regular_bipartite;
        ] );
      ( "pruefer",
        [
          Alcotest.test_case "decode + distinct" `Quick test_pruefer;
          Alcotest.test_case "exhaustive coloring n=6" `Slow
            test_all_trees_coloring;
        ] );
      ( "power",
        [
          Alcotest.test_case "path" `Quick test_power_path;
          Alcotest.test_case "r=1 identity" `Quick test_power_r1_identity;
          Alcotest.test_case "distances" `Quick test_all_distances;
        ] );
      ( "line-graph",
        [
          Alcotest.test_case "path" `Quick test_line_graph_path;
          Alcotest.test_case "star" `Quick test_line_graph_star;
          Alcotest.test_case "triangle" `Quick test_line_graph_triangle;
          Alcotest.test_case "degree bound" `Quick test_line_graph_degree_bound;
        ] );
      ( "check",
        [
          Alcotest.test_case "mis" `Quick test_check_mis;
          Alcotest.test_case "k-outdegree" `Quick test_check_kods;
          Alcotest.test_case "k-degree" `Quick test_check_k_degree;
          Alcotest.test_case "colorings" `Quick test_check_colorings;
          Alcotest.test_case "matching" `Quick test_check_matching;
        ] );
    ]
